// Benchmarks regenerating the paper's evaluation, one per figure (§6), plus
// ablation benches for the design choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The Fig. 3 benches use a scaled-down corpus so the default bench run
// finishes quickly; cmd/share-bench runs the full 1,000,000-row sweep.
package share_test

import (
	"testing"

	"share/internal/baseline"
	"share/internal/core"
	"share/internal/dataset"
	"share/internal/experiments"
	"share/internal/ldp"
	"share/internal/nash"
	"share/internal/shapley"
	"share/internal/stat"
	"share/internal/valuation"
)

func benchGame(b *testing.B, m int) *core.Game {
	b.Helper()
	g := core.PaperGame(m, stat.NewRand(experiments.DefaultSeed))
	if err := g.Validate(); err != nil {
		b.Fatal(err)
	}
	return g
}

// --- Core solver ---

func BenchmarkSolveM100(b *testing.B) {
	g := benchGame(b, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveM1000(b *testing.B) {
	g := benchGame(b, 1000)
	for i := 0; i < b.N; i++ {
		if _, err := g.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveM10000(b *testing.B) {
	g := benchGame(b, 10000)
	for i := 0; i < b.N; i++ {
		if _, err := g.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveCachedM10000 is the Precompute + SolveValidated fast path:
// for a fixed seller population the per-solve cost drops from O(m)
// (validation plus aggregate passes) to O(m) with no sqrt/division work —
// in practice several times faster at m=10000. Results are bit-identical
// to Solve (see core.TestSolveCachedBitIdentical).
func BenchmarkSolveCachedM10000(b *testing.B) {
	g := benchGame(b, 10000)
	if err := g.Precompute(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.SolveValidated(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 2: effectiveness sweeps ---

func BenchmarkFig2a(b *testing.B) {
	g := benchGame(b, 100)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2a(g, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2b(b *testing.B) {
	g := benchGame(b, 100)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2b(g, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2c(b *testing.B) {
	g := benchGame(b, 100)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2c(g, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Sweep compares a full Fig. 2(a) deviation sweep on one worker
// against the package default (GOMAXPROCS workers). Output is byte-identical
// either way (TestParallelSweepsMatchSequential); only wall-clock differs.
func BenchmarkFig2Sweep(b *testing.B) {
	defer experiments.SetWorkers(0)
	for name, workers := range map[string]int{"sequential": 1, "parallel": 0} {
		b.Run(name, func(b *testing.B) {
			g := benchGame(b, 2000)
			experiments.SetWorkers(workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig2a(g, 0, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 3: efficiency (scaled-down corpus; full sweep in share-bench) ---

func BenchmarkFig3TradingRound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, err := experiments.Fig3(experiments.Fig3Options{
			Sizes:               []int{50},
			CorpusRows:          20_000,
			PiecesPerSeller:     50,
			ShapleyPermutations: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figs. 4–8: sensitivity sweeps ---

func benchSweep(b *testing.B, fn func(*core.Game) (*experiments.Series, *experiments.Series, error)) {
	b.Helper()
	g := benchGame(b, 100)
	for i := 0; i < b.N; i++ {
		if _, _, err := fn(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) { benchSweep(b, experiments.Fig4) }
func BenchmarkFig5(b *testing.B) { benchSweep(b, experiments.Fig5) }
func BenchmarkFig6(b *testing.B) { benchSweep(b, experiments.Fig6) }
func BenchmarkFig7(b *testing.B) { benchSweep(b, experiments.Fig7) }
func BenchmarkFig8(b *testing.B) { benchSweep(b, experiments.Fig8) }

// --- Theorem 5.1: mean-field analysis ---

func BenchmarkMeanFieldError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MeanFieldError(0, []int{10, 100, 1000}, experiments.DefaultSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation 2 (DESIGN.md §6): direct derivation vs mean-field shortcut at a
// large seller count — the runtime gap the approximation buys.
func BenchmarkStage3DirectDerivationMF(b *testing.B) {
	g := benchGame(b, 2000)
	p, err := g.Solve()
	if err != nil {
		b.Fatal(err)
	}
	if err := g.ScaleWeightsForBound(p.PD); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.DirectTauMF(p.PD, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStage3MeanField(b *testing.B) {
	g := benchGame(b, 2000)
	p, err := g.Solve()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MeanFieldTau(p.PD)
	}
}

// Ablation 1: Eq. 20 closed form vs the generic numerical Nash solver.
func BenchmarkStage3Analytic(b *testing.B) {
	g := benchGame(b, 50)
	for i := 0; i < b.N; i++ {
		g.Stage3Tau(0.02)
	}
}

func BenchmarkStage3NumericNash(b *testing.B) {
	g := benchGame(b, 50)
	pd := 0.02
	start := g.Stage3Tau(pd)
	ng := &nash.Game{
		Players: g.M(),
		Payoff: func(i int, x float64, s []float64) float64 {
			tau := append([]float64(nil), s...)
			tau[i] = x
			return g.SellerProfit(i, pd, tau)
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ng.Solve(nash.Options{Start: start}); err != nil {
			b.Fatal(err)
		}
	}
}

// Jacobi vs Gauss-Seidel best-response schedules on the Stage-3 seller game:
// Jacobi evaluates all m golden-section best responses against the previous
// profile concurrently (and so scales with cores); Gauss-Seidel updates in
// place. Both converge to the same equilibrium (nash tests).
func benchNashSweep(b *testing.B, m int, opt nash.Options) {
	b.Helper()
	g := benchGame(b, m)
	pd := 0.02
	start := g.Stage3Tau(pd)
	ng := &nash.Game{
		Players: g.M(),
		Payoff: func(i int, x float64, s []float64) float64 {
			tau := append([]float64(nil), s...)
			tau[i] = x
			return g.SellerProfit(i, pd, tau)
		},
	}
	opt.Start = start
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ng.Solve(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNashGaussSeidelM50(b *testing.B) {
	benchNashSweep(b, 50, nash.Options{})
}

func BenchmarkNashJacobiM50(b *testing.B) {
	benchNashSweep(b, 50, nash.Options{Sweep: nash.Jacobi})
}

func BenchmarkNashJacobiM200(b *testing.B) {
	benchNashSweep(b, 200, nash.Options{Sweep: nash.Jacobi})
}

// Ablation 3: Share's Nash selection vs broker-driven baselines.
func BenchmarkAblationMechanisms(b *testing.B) {
	g := benchGame(b, 100)
	rng := stat.NewRand(experiments.DefaultSeed)
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Ablation(g, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation 5: exact vs Monte Carlo vs truncated Shapley.
func BenchmarkShapleyExact12(b *testing.B) {
	u := saturatingUtility()
	for i := 0; i < b.N; i++ {
		if _, err := shapley.Exact(12, u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShapleyMonteCarlo100x100(b *testing.B) {
	u := saturatingUtility()
	rng := stat.NewRand(1)
	for i := 0; i < b.N; i++ {
		if _, err := shapley.MonteCarlo(100, u, 100, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShapleyTruncated100x100(b *testing.B) {
	u := saturatingUtility()
	rng := stat.NewRand(1)
	for i := 0; i < b.N; i++ {
		if _, err := shapley.TruncatedMonteCarlo(100, u, 100, 1e-6, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// saturatingUtility reaches the grand coalition's value once 20 of the 100
// players have joined, so the truncated estimator skips ~80% of the
// evaluations while the plain one scans every prefix.
func saturatingUtility() shapley.Utility {
	return func(coalition []int) float64 {
		n := float64(len(coalition))
		if n >= 20 {
			return 1
		}
		return n / 20
	}
}

// --- Substrate benches ---

func BenchmarkLDPLaplacePerturb(b *testing.B) {
	lo, hi := dataset.CCPPBounds()
	bounds, err := ldp.NewBounds(lo, hi)
	if err != nil {
		b.Fatal(err)
	}
	mech := ldp.NewLaplace(bounds)
	rng := stat.NewRand(2)
	row := []float64{20, 50, 1010, 70}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mech.Perturb(rng, row, 1.0)
	}
}

func BenchmarkSellerShapleyTMC(b *testing.B) {
	rng := stat.NewRand(3)
	full := dataset.SyntheticCCPP(2100, rng)
	train, test := full.Split(2000)
	chunks, err := dataset.PartitionEqual(train.Clone(), 20)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := valuation.SellerShapleyTMC(chunks, test, 5, 0.01, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBrokerLeadingSolve(b *testing.B) {
	g := benchGame(b, 100)
	for i := 0; i < b.N; i++ {
		if _, err := g.SolveBrokerLeading(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineBandit(b *testing.B) {
	g := benchGame(b, 100)
	p, err := g.Solve()
	if err != nil {
		b.Fatal(err)
	}
	rng := stat.NewRand(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.EpsilonGreedyBandit(g, p.PM, p.PD, 25, 50, 0.1, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// Parallel vs sequential Shapley valuation (the production weight-update
// path at scale).
func BenchmarkSellerShapleySequential(b *testing.B) {
	chunks, test := shapleyBenchData(b)
	rng := stat.NewRand(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := valuation.SellerShapleyTMC(chunks, test, 20, 0, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSellerShapleyParallel(b *testing.B) {
	chunks, test := shapleyBenchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := valuation.SellerShapleyParallel(chunks, test, 20, 0, 5, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func shapleyBenchData(b *testing.B) ([]*dataset.Dataset, *dataset.Dataset) {
	b.Helper()
	rng := stat.NewRand(6)
	full := dataset.SyntheticCCPP(4200, rng)
	train, test := full.Split(4000)
	chunks, err := dataset.PartitionEqual(train.Clone(), 40)
	if err != nil {
		b.Fatal(err)
	}
	return chunks, test
}
