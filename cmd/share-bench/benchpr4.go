package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"share/internal/core"
	"share/internal/solve"
	"share/internal/stat"
)

// pr4Report is the BENCH_PR4.json document: the per-request solve path
// (prototype Clone → SetBuyer → Solve, exactly what one market round or one
// HTTP quote pays for its strategy phase) measured for every registered
// solve backend at two market sizes, with per-size slowdown ratios relative
// to the analytic closed form.
type pr4Report struct {
	GoMaxProcs int                `json:"gomaxprocs"`
	Workers    int                `json:"workers"`
	Benchmarks []benchEntry       `json:"benchmarks"`
	Slowdowns  map[string]float64 `json:"slowdowns_vs_analytic"`
}

// writeBenchPR4 runs the backend-latency probes via testing.Benchmark and
// writes BENCH_PR4.json into outDir. workers bounds the general backend's
// Jacobi fan-out (≤0 → GOMAXPROCS); the analytic and mean-field backends are
// single-pass and ignore it.
func writeBenchPR4(outDir string, workers int, seed int64) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := &pr4Report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Slowdowns:  map[string]float64{},
	}
	record := func(name string, w int, r testing.BenchmarkResult) benchEntry {
		e := benchEntry{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			Workers:     w,
			Iterations:  r.N,
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
		log.Printf("bench %-24s %12.0f ns/op  (%d iterations)", name, e.NsPerOp, r.N)
		return e
	}

	// The general backend runs at a loosened price tolerance: the probe
	// measures the cost shape of the numerical cascade, not the last two
	// digits of agreement (the test suite covers those at 1e-9).
	backends := []struct {
		name    string
		b       solve.Backend
		workers int
	}{
		{"analytic", solve.Analytic{}, 1},
		{"meanfield", solve.MeanField{}, 1},
		{"general", solve.General{PriceTol: 1e-4, Workers: workers}, workers},
	}

	for _, m := range []int{100, 1000} {
		g := core.PaperGame(m, stat.NewRand(seed))
		buyer := core.PaperBuyer()
		var analytic float64
		for _, bk := range backends {
			proto, err := bk.b.Precompute(g)
			if err != nil {
				return fmt.Errorf("bench-pr4: %s m=%d: %w", bk.name, m, err)
			}
			label := fmt.Sprintf("round_%s_m%d", bk.name, m)
			e := record(label, bk.workers, testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					prep := proto.Clone()
					prep.SetBuyer(buyer)
					if _, err := prep.Solve(context.Background()); err != nil {
						b.Fatal(err)
					}
				}
			}))
			if bk.name == "analytic" {
				analytic = e.NsPerOp
			} else {
				rep.Slowdowns[label] = e.NsPerOp / analytic
			}
		}
	}

	path := filepath.Join(outDir, "BENCH_PR4.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	log.Printf("wrote %s (vs analytic at m=1000: meanfield %.1fx, general %.0fx)",
		path, rep.Slowdowns["round_meanfield_m1000"], rep.Slowdowns["round_general_m1000"])
	return nil
}
