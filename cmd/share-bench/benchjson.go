package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"share/internal/core"
	"share/internal/experiments"
	"share/internal/nash"
	"share/internal/stat"
)

// benchEntry is one probe's result in BENCH.json.
type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Workers     int     `json:"workers"`
	Iterations  int     `json:"iterations"`
}

// benchReport is the BENCH.json document: machine-readable performance
// numbers for the solver fast path, the parallel sweep engine and the Jacobi
// Nash sweep, plus headline speedup ratios.
type benchReport struct {
	GoMaxProcs int                `json:"gomaxprocs"`
	Workers    int                `json:"workers"`
	Benchmarks []benchEntry       `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups"`
}

// writeBenchJSON runs the performance probes via testing.Benchmark and writes
// BENCH.json into outDir. workers is the sweep fan-out to probe against the
// sequential baseline (≤0 → GOMAXPROCS, the internal/parallel convention).
func writeBenchJSON(outDir string, workers int, seed int64) error {
	rep := &benchReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Speedups:   map[string]float64{},
	}
	record := func(name string, w int, r testing.BenchmarkResult) benchEntry {
		e := benchEntry{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			Workers:     w,
			Iterations:  r.N,
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
		log.Printf("bench %-24s %12.0f ns/op  (%d iterations)", name, e.NsPerOp, r.N)
		return e
	}

	// Core solver: plain Solve vs the Precompute + SolveValidated fast path
	// (bit-identical output; see core's cache tests).
	gSolve := core.PaperGame(10000, stat.NewRand(seed))
	plain := record("solve_m10000", 1, testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gSolve.Solve(); err != nil {
				b.Fatal(err)
			}
		}
	}))
	gCached := core.PaperGame(10000, stat.NewRand(seed))
	if err := gCached.Precompute(); err != nil {
		return err
	}
	cached := record("solve_m10000_cached", 1, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gCached.SolveValidated(); err != nil {
				b.Fatal(err)
			}
		}
	}))
	rep.Speedups["solve_m10000_cached"] = plain.NsPerOp / cached.NsPerOp

	// Figure sweep engine, two comparisons on the Fig. 2(a) deviation grid:
	//
	//  1. uncached vs cached — the same grid evaluated point by point
	//     through the pre-caching API (Stage3Tau recomputing the O(m) sqrt
	//     aggregates and EvaluateProfile copying tau, exactly what every
	//     sweep did before Precompute existed) vs the production Fig2a
	//     harness on one worker. Machine-independent: the algorithmic win
	//     of the solver cache for figure sweeps.
	//  2. sequential vs parallel — Fig2a on one worker vs the requested
	//     fan-out. Output is byte-identical either way (the experiments
	//     package's TestParallelSweepsMatchSequential); only wall-clock
	//     differs, and only multi-core machines show a gap.
	defer experiments.SetWorkers(0)
	gFig := core.PaperGame(2000, stat.NewRand(seed))
	uncached := record("fig2a_sweep_uncached", 1, testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := gFig.Solve()
			if err != nil {
				b.Fatal(err)
			}
			lo, hi := 0.2*p.PM, 2.0*p.PM
			for k := 0; k < experiments.DeviationPoints; k++ {
				x := lo + (hi-lo)*float64(k)/float64(experiments.DeviationPoints-1)
				pd := gFig.Stage2PD(x)
				gFig.EvaluateProfile(x, pd, gFig.Stage3Tau(pd))
			}
		}
	}))
	fig2a := func(w int) testing.BenchmarkResult {
		experiments.SetWorkers(w)
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig2a(gFig, 0, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Fig2a precomputes gFig on first call, so the uncached probe above had
	// to run first, while the game still had no snapshot.
	seq := record("fig2a_sweep_sequential", 1, fig2a(1))
	par := record("fig2a_sweep_parallel", workers, fig2a(workers))
	rep.Speedups["fig2a_sweep_cached"] = uncached.NsPerOp / seq.NsPerOp
	rep.Speedups["fig2a_sweep_parallel"] = seq.NsPerOp / par.NsPerOp

	// Nash best-response schedules on the Stage-3 seller game.
	gNash := core.PaperGame(50, stat.NewRand(seed))
	pd := 0.02
	start := gNash.Stage3Tau(pd)
	ng := &nash.Game{
		Players: gNash.M(),
		Payoff: func(i int, x float64, s []float64) float64 {
			tau := append([]float64(nil), s...)
			tau[i] = x
			return gNash.SellerProfit(i, pd, tau)
		},
	}
	nashBench := func(opt nash.Options) testing.BenchmarkResult {
		opt.Start = start
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ng.Solve(opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	gs := record("nash_gauss_seidel_m50", 1, nashBench(nash.Options{}))
	jc := record("nash_jacobi_m50", workers, nashBench(nash.Options{Sweep: nash.Jacobi, Workers: workers}))
	rep.Speedups["nash_jacobi_m50"] = gs.NsPerOp / jc.NsPerOp

	path := filepath.Join(outDir, "BENCH.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	log.Printf("wrote %s (speedups: cached solve %.2fx, fig2a sweep %.2fx, jacobi %.2fx)",
		path, rep.Speedups["solve_m10000_cached"],
		rep.Speedups["fig2a_sweep_parallel"], rep.Speedups["nash_jacobi_m50"])
	return nil
}
