package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"share/internal/core"
	"share/internal/dataset"
	"share/internal/market"
	"share/internal/stat"
	"share/internal/translog"
	"share/internal/valuation"
)

// pr3Report is the BENCH_PR3.json document: the moment-cached Shapley
// valuation kernel measured against the seed-era row-streaming estimator,
// both as an isolated kernel probe and end-to-end through a full trade
// round, with headline speedup ratios.
type pr3Report struct {
	GoMaxProcs int                `json:"gomaxprocs"`
	Workers    int                `json:"workers"`
	Benchmarks []benchEntry       `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups"`
}

// kernelProbe is one (sellers, rows-per-chunk, permutations) point of the
// isolated estimator comparison.
type kernelProbe struct {
	m, rows, perms int
}

// writeBenchPR3 runs the valuation-kernel performance probes via
// testing.Benchmark and writes BENCH_PR3.json into outDir. workers is the
// fan-out width for the parallel probes (≤0 → GOMAXPROCS).
func writeBenchPR3(outDir string, workers int, seed int64) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := &pr3Report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Speedups:   map[string]float64{},
	}
	record := func(name string, w int, r testing.BenchmarkResult) benchEntry {
		e := benchEntry{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			Workers:     w,
			Iterations:  r.N,
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
		log.Printf("bench %-28s %12.0f ns/op  (%d iterations)", name, e.NsPerOp, r.N)
		return e
	}

	// Isolated kernel: seed-era row-streaming estimator vs the moment-cached
	// kernel on identical chunk sets, at several (m, rows, permutations)
	// points. The rows axis shows the kernel's O(k²) prefix step is
	// independent of chunk size while the seed path scales with it.
	for _, p := range []kernelProbe{
		{m: 20, rows: 50, perms: 50},
		{m: 100, rows: 60, perms: 100},
		{m: 100, rows: 240, perms: 100},
	} {
		rng := stat.NewRand(seed)
		train := dataset.SyntheticCCPP(p.m*p.rows, rng)
		test := dataset.SyntheticCCPP(500, rng)
		chunks, err := dataset.PartitionEqual(train, p.m)
		if err != nil {
			return err
		}
		label := fmt.Sprintf("m%d_rows%d", p.m, p.rows)
		streaming := record("shapley_seed_"+label, 1, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := valuation.SellerShapleyTMC(chunks, test, p.perms, 0, stat.NewRand(seed)); err != nil {
					b.Fatal(err)
				}
			}
		}))
		moment := record("shapley_kernel_"+label, 1, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := valuation.SellerShapleyKernelCtx(context.Background(), chunks, test, p.perms, 0, seed, 1); err != nil {
					b.Fatal(err)
				}
			}
		}))
		rep.Speedups["shapley_kernel_"+label] = streaming.NsPerOp / moment.NsPerOp
	}

	// End-to-end trade round at the acceptance point (m=100, 100
	// permutations): the full Algorithm 1 including strategy solve, LDP
	// perturbation and production, with only the weight-update estimator
	// varying.
	round := func(upd *market.WeightUpdate) testing.BenchmarkResult {
		rng := stat.NewRand(seed)
		full := dataset.SyntheticCCPP(100*60+500, rng)
		train, test := full.Split(100 * 60)
		chunks, err := dataset.PartitionEqual(train, 100)
		if err != nil {
			log.Fatalf("bench round setup: %v", err)
		}
		sellers := make([]*market.Seller, 100)
		for i := range sellers {
			sellers[i] = &market.Seller{
				ID:     fmt.Sprintf("S%d", i),
				Lambda: stat.UniformOpen(rng, 0, 1),
				Data:   chunks[i],
			}
		}
		mkt, err := market.New(sellers, market.Config{
			Cost:    translog.PaperDefaults(),
			TestSet: test,
			Update:  upd,
			Seed:    seed,
		})
		if err != nil {
			log.Fatalf("bench round setup: %v", err)
		}
		buyer := core.PaperBuyer()
		buyer.N = float64(100 * 30)
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mkt.RunRound(buyer); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	legacy := record("runround_m100_seed", 1,
		round(&market.WeightUpdate{Retain: 0.2, Permutations: 100, Legacy: true}))
	kernel := record("runround_m100_kernel", 1,
		round(&market.WeightUpdate{Retain: 0.2, Permutations: 100, Workers: 1}))
	parallelRound := record(fmt.Sprintf("runround_m100_kernel_w%d", workers), workers,
		round(&market.WeightUpdate{Retain: 0.2, Permutations: 100, Workers: workers}))
	rep.Speedups["runround_m100_kernel"] = legacy.NsPerOp / kernel.NsPerOp
	rep.Speedups[fmt.Sprintf("runround_m100_kernel_w%d", workers)] = legacy.NsPerOp / parallelRound.NsPerOp

	path := filepath.Join(outDir, "BENCH_PR3.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	log.Printf("wrote %s (round speedup: kernel %.2fx, w%d %.2fx)",
		path, rep.Speedups["runround_m100_kernel"], workers,
		rep.Speedups[fmt.Sprintf("runround_m100_kernel_w%d", workers)])
	return nil
}
