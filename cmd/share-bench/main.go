// Command share-bench regenerates every figure of the paper's evaluation
// (§6) as CSV, one file per figure, into an output directory:
//
//	fig2a.csv, fig2b.csv, fig2c.csv   effectiveness (profit vs deviation)
//	fig3a.csv, fig3b.csv              efficiency (runtime vs m, ±Shapley)
//	fig4a/b ... fig8a/b .csv          parameter sensitivity sweeps
//	meanfield.csv                     Theorem 5.1 error analysis
//	ablation.csv                      Share vs baseline mechanisms
//	vcg.csv                           Share (Nash) vs VCG procurement
//	welfare.csv                       price of anarchy vs planner
//	fig2c-empirical.csv               Fig. 2(c) with trained products
//	analytic-vs-numeric.csv           Eq. 20 vs numerical Nash solver
//
// Usage:
//
//	share-bench [-out DIR] [-fig NAME] [-seed N] [-m N] [-workers N] [-quick] [-plot] [-bench]
//
// -fig selects a single figure ("2a", "3", "7", "mf", "ablation", "vcg",
// "welfare", "2c-emp", "avn"); the default "all" regenerates everything.
// -quick shrinks the Fig. 3 corpus and m sweep for a fast smoke run;
// -plot additionally renders each figure as an ASCII chart.
// -workers sets the sweep fan-out (0 = GOMAXPROCS, 1 = sequential); every
// figure CSV is byte-identical regardless of the setting — workers only
// change wall-clock. -bench additionally runs the performance probes and
// writes BENCH.json (ns/op, allocs/op and headline speedups for the cached
// solver, the parallel sweep engine and the Jacobi Nash sweep).
// -bench-pr3 runs the valuation-kernel probes and writes BENCH_PR3.json
// (moment-cached Shapley kernel vs the seed-era row-streaming estimator,
// isolated and end-to-end through a trade round); combine with -fig none to
// skip figure regeneration.
// -bench-pr4 runs the solve-backend probes and writes BENCH_PR4.json
// (per-round equilibrium latency of the analytic, mean-field and general
// backends at m ∈ {100, 1000}).
// -bench-pr6 runs the durability probes and writes BENCH_PR6.json (trade
// throughput and commit latency of snapshot-per-trade vs the write-ahead
// log in sync, group-commit and async modes, at m ∈ {20, 100}).
// -bench-pr8 runs the general-backend before/after probes and writes
// BENCH_PR8.json (per-round latency of the optimized numerical cascade vs
// its pre-optimization baseline, for the quadratic, alternative and cubic
// losses at m ∈ {100, 1000}).
// -solver re-renders the sensitivity sweeps (Figs. 4–8) under a different
// equilibrium backend (analytic | meanfield | general); the default analytic
// backend reproduces every CSV byte-for-byte.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"share/internal/core"
	"share/internal/dataset"
	"share/internal/experiments"
	"share/internal/ldp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("share-bench: ")

	var (
		outDir  = flag.String("out", "bench_out", "output directory for CSV files")
		fig     = flag.String("fig", "all", "figure to regenerate (2a,2b,2c,3,3a,3b,4..8,mf,ablation,avn,all)")
		seed    = flag.Int64("seed", experiments.DefaultSeed, "random seed")
		m       = flag.Int("m", core.PaperM, "number of sellers for the analytic figures")
		quick   = flag.Bool("quick", false, "shrink the efficiency sweep for a fast run")
		warm    = flag.Bool("warmup", false, "derive weights via dummy-buyer warm-up (slower, closer to §6.1)")
		plots   = flag.Bool("plot", false, "render each figure as an ASCII chart on stdout")
		report  = flag.Bool("report", false, "also write REPORT.md embedding every figure as an ASCII chart")
		workers = flag.Int("workers", 0, "sweep fan-out width (0 = GOMAXPROCS, 1 = sequential; output is identical)")
		bench   = flag.Bool("bench", false, "run performance probes and write BENCH.json")
		bench3  = flag.Bool("bench-pr3", false, "run valuation-kernel probes and write BENCH_PR3.json")
		bench4  = flag.Bool("bench-pr4", false, "run solve-backend probes and write BENCH_PR4.json")
		bench6  = flag.Bool("bench-pr6", false, "run durability-mode probes and write BENCH_PR6.json")
		bench8  = flag.Bool("bench-pr8", false, "run general-backend before/after probes and write BENCH_PR8.json")
		solver  = flag.String("solver", "", "equilibrium backend for the sensitivity sweeps: analytic | meanfield | general (empty = analytic)")
	)
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatalf("creating %s: %v", *outDir, err)
	}
	experiments.SetWorkers(*workers)
	if err := experiments.SetSolver(*solver); err != nil {
		log.Fatalf("-solver: %v", err)
	}
	if err := run(*outDir, strings.ToLower(*fig), *seed, *m, *workers, *quick, *warm, *plots, *report); err != nil {
		log.Fatal(err)
	}
	if *bench {
		if err := writeBenchJSON(*outDir, *workers, *seed); err != nil {
			log.Fatal(err)
		}
	}
	if *bench3 {
		if err := writeBenchPR3(*outDir, *workers, *seed); err != nil {
			log.Fatal(err)
		}
	}
	if *bench4 {
		if err := writeBenchPR4(*outDir, *workers, *seed); err != nil {
			log.Fatal(err)
		}
	}
	if *bench6 {
		if err := writeBenchPR6(*outDir, *seed); err != nil {
			log.Fatal(err)
		}
	}
	if *bench8 {
		if err := writeBenchPR8(*outDir, *workers, *seed); err != nil {
			log.Fatal(err)
		}
	}
}

func run(outDir, fig string, seed int64, m, workers int, quick, warm, plots, report bool) error {
	var reported []*experiments.Series
	want := func(names ...string) bool {
		if fig == "all" {
			return true
		}
		for _, n := range names {
			if fig == n {
				return true
			}
		}
		return false
	}

	var setup *experiments.Setup
	getSetup := func() (*experiments.Setup, error) {
		if setup == nil {
			var err error
			setup, err = experiments.NewSetup(m, seed, warm)
			if err != nil {
				return nil, err
			}
		}
		return setup, nil
	}

	save := func(s *experiments.Series) error {
		path := filepath.Join(outDir, s.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := s.WriteCSV(f); err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
		log.Printf("wrote %s (%d rows) — %s", path, len(s.Rows), s.Title)
		if plots {
			logX := s.XLabel == "m" // the seller-count sweeps read best on a log axis
			fmt.Println(s.PlotString(logX))
		}
		if report {
			reported = append(reported, s)
		}
		return nil
	}

	// Fig. 2 — effectiveness.
	if want("2", "2a", "2b", "2c", "fig2") {
		s, err := getSetup()
		if err != nil {
			return err
		}
		type mk func(*core.Game, float64, float64) (*experiments.Series, error)
		for name, f := range map[string]mk{"2a": experiments.Fig2a, "2b": experiments.Fig2b, "2c": experiments.Fig2c} {
			if !want("2", "fig2", name) {
				continue
			}
			series, err := f(s.Game, 0, 0)
			if err != nil {
				return fmt.Errorf("fig%s: %w", name, err)
			}
			if err := save(series); err != nil {
				return err
			}
		}
	}

	// Fig. 3 — efficiency.
	if want("3", "3a", "3b", "fig3") {
		opt := experiments.Fig3Options{Seed: seed, Workers: workers}
		if quick {
			opt.Sizes = []int{5, 10, 20, 50, 100, 200, 500}
			opt.CorpusRows = 100_000
		}
		start := time.Now()
		withS, withoutS, err := experiments.Fig3(opt)
		if err != nil {
			return fmt.Errorf("fig3: %w", err)
		}
		log.Printf("fig3 sweep finished in %v", time.Since(start).Round(time.Millisecond))
		if err := save(withS); err != nil {
			return err
		}
		if err := save(withoutS); err != nil {
			return err
		}
	}

	// Figs. 4–8 — sensitivity sweeps.
	type sweepFn func(*core.Game) (*experiments.Series, *experiments.Series, error)
	sweeps := []struct {
		key string
		fn  sweepFn
	}{
		{"4", experiments.Fig4},
		{"5", experiments.Fig5},
		{"6", experiments.Fig6},
		{"7", experiments.Fig7},
		{"8", experiments.Fig8},
	}
	for _, sw := range sweeps {
		if !want(sw.key, "fig"+sw.key) {
			continue
		}
		s, err := getSetup()
		if err != nil {
			return err
		}
		strategies, profits, err := sw.fn(s.Game)
		if err != nil {
			return fmt.Errorf("fig%s: %w", sw.key, err)
		}
		if err := save(strategies); err != nil {
			return err
		}
		if err := save(profits); err != nil {
			return err
		}
	}

	// Theorem 5.1 error analysis.
	if want("mf", "meanfield") {
		series, err := experiments.MeanFieldError(0, nil, seed)
		if err != nil {
			return fmt.Errorf("meanfield: %w", err)
		}
		if err := save(series); err != nil {
			return err
		}
	}

	// Mechanism ablation.
	if want("ablation") {
		s, err := getSetup()
		if err != nil {
			return err
		}
		series, names, err := experiments.Ablation(s.Game, s.Rng)
		if err != nil {
			return fmt.Errorf("ablation: %w", err)
		}
		if err := save(series); err != nil {
			return err
		}
		log.Printf("ablation mechanisms: %s", strings.Join(names, ", "))
	}

	// Empirical Fig. 2(c): trained products in the loop.
	if want("2c-emp", "empirical") {
		s, err := getSetup()
		if err != nil {
			return err
		}
		series, err := empiricalFig2c(s, seed)
		if err != nil {
			return fmt.Errorf("fig2c-empirical: %w", err)
		}
		if err := save(series); err != nil {
			return err
		}
	}

	// Welfare / price-of-anarchy extension.
	if want("welfare", "poa") {
		s, err := getSetup()
		if err != nil {
			return err
		}
		series, err := experiments.WelfareSweep(s.Game, []float64{0.05, 0.1, 0.25, 0.5, 1, 2, 5})
		if err != nil {
			return fmt.Errorf("welfare: %w", err)
		}
		if err := save(series); err != nil {
			return err
		}
	}

	// VCG vs Nash procurement comparison.
	if want("vcg") {
		series, err := experiments.VCGComparison(nil, seed)
		if err != nil {
			return fmt.Errorf("vcg: %w", err)
		}
		if err := save(series); err != nil {
			return err
		}
	}

	// Analytic vs numeric Stage-3 cross-validation.
	if want("avn", "analytic-vs-numeric") {
		s, err := experiments.NewSetup(min(m, 20), seed, false)
		if err != nil {
			return err
		}
		series, err := experiments.AnalyticVsNumeric(s.Game, []float64{0.005, 0.01, 0.02, 0.05, 0.1})
		if err != nil {
			return fmt.Errorf("analytic-vs-numeric: %w", err)
		}
		if err := save(series); err != nil {
			return err
		}
	}

	if report && len(reported) > 0 {
		if err := writeReport(outDir, reported); err != nil {
			return fmt.Errorf("writing report: %w", err)
		}
	}
	return nil
}

// writeReport renders every generated series into a self-contained Markdown
// gallery with ASCII charts, for repositories and code reviews where CSVs
// don't read at a glance.
func writeReport(outDir string, series []*experiments.Series) error {
	path := filepath.Join(outDir, "REPORT.md")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "# Share — generated figure gallery")
	fmt.Fprintln(f)
	fmt.Fprintln(f, "Regenerated by `share-bench -report`. One section per figure;")
	fmt.Fprintln(f, "raw data in the sibling CSV files. See EXPERIMENTS.md for the")
	fmt.Fprintln(f, "paper-vs-measured comparison.")
	for _, s := range series {
		fmt.Fprintf(f, "\n## %s — %s\n\n", s.Name, s.Title)
		fmt.Fprintln(f, "```")
		fmt.Fprint(f, s.PlotString(s.XLabel == "m"))
		fmt.Fprintln(f, "```")
	}
	log.Printf("wrote %s (%d figures)", path, len(series))
	return nil
}

// empiricalFig2c prepares CCPP chunks for the setup's game and runs the
// model-in-the-loop Fig. 2(c) variant.
func empiricalFig2c(s *experiments.Setup, seed int64) (*experiments.Series, error) {
	full := dataset.SyntheticCCPP(0, s.Rng)
	train, test := full.Split(9000)
	chunks, err := dataset.PartitionEqual(train.Clone(), s.Game.M())
	if err != nil {
		return nil, err
	}
	lo, hi := dataset.CCPPBounds()
	bounds, err := ldp.NewBounds(lo, hi)
	if err != nil {
		return nil, err
	}
	return experiments.Fig2cEmpirical(s.Game, chunks, test, ldp.NewLaplace(bounds), s.Rng)
}
