package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"share/internal/core"
	"share/internal/market"
	"share/internal/pool"
)

// pr6Report is the BENCH_PR6.json document: trade throughput and commit
// latency of the durability modes — the legacy full snapshot after every
// trade versus the write-ahead log in its sync, group-commit and async
// flavours — at two market sizes, with the WAL's own counters (records,
// bytes, fsyncs, largest commit batch) alongside each run.
type pr6Report struct {
	GoMaxProcs int                `json:"gomaxprocs"`
	Trades     int                `json:"trades_per_scenario"`
	Traders    int                `json:"concurrent_traders"`
	Scenarios  []pr6Scenario      `json:"scenarios"`
	Speedups   map[string]float64 `json:"speedup_group_vs_snapshot"`
}

// pr6Scenario is one (market size, durability mode) cell.
type pr6Scenario struct {
	Sellers      int     `json:"sellers"`
	Durability   string  `json:"durability"`
	TradesPerSec float64 `json:"trades_per_sec"`
	CommitP50Ms  float64 `json:"commit_p50_ms"`
	CommitP90Ms  float64 `json:"commit_p90_ms"`
	CommitP99Ms  float64 `json:"commit_p99_ms"`
	WALRecords   uint64  `json:"wal_records"`
	WALBytes     uint64  `json:"wal_bytes"`
	WALFsyncs    uint64  `json:"wal_fsyncs"`
	WALBatchMax  int64   `json:"wal_batch_max"`
}

// writeBenchPR6 measures every durability mode end to end — real pool, real
// disk, concurrent traders — and writes BENCH_PR6.json into outDir. Each
// scenario gets a fresh pool over a fresh temp directory so the WAL
// counters isolate cleanly; the seller roster is persisted and the counters
// re-based before the timed window so only the trade path is measured.
func writeBenchPR6(outDir string, seed int64) error {
	const (
		trades  = 30
		traders = 4
	)
	rep := &pr6Report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Trades:     trades,
		Traders:    traders,
		Speedups:   map[string]float64{},
	}
	modes := []pool.Durability{pool.DurSnapshot, pool.DurSync, pool.DurGroup, pool.DurAsync}
	for _, m := range []int{20, 100} {
		perMode := map[pool.Durability]float64{}
		for _, mode := range modes {
			sc, err := runPR6Scenario(m, mode, trades, traders, seed)
			if err != nil {
				return fmt.Errorf("bench-pr6: m=%d %s: %w", m, mode, err)
			}
			rep.Scenarios = append(rep.Scenarios, sc)
			perMode[mode] = sc.TradesPerSec
			log.Printf("bench pr6 m=%-3d %-8s %8.1f trades/s  commit p50 %6.2fms p99 %6.2fms  fsyncs %d batch<=%d",
				m, mode, sc.TradesPerSec, sc.CommitP50Ms, sc.CommitP99Ms, sc.WALFsyncs, sc.WALBatchMax)
		}
		rep.Speedups[fmt.Sprintf("m%d", m)] = perMode[pool.DurGroup] / perMode[pool.DurSnapshot]
	}

	path := filepath.Join(outDir, "BENCH_PR6.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	log.Printf("wrote %s (group WAL vs snapshot-per-trade: m=20 %.1fx, m=100 %.1fx)",
		path, rep.Speedups["m20"], rep.Speedups["m100"])
	return nil
}

// runPR6Scenario trades `trades` rounds through a market of m sellers under
// one durability mode, with `traders` goroutines posting demands
// concurrently so group commit actually has batches to merge.
func runPR6Scenario(m int, mode pool.Durability, trades, traders int, seed int64) (pr6Scenario, error) {
	sc := pr6Scenario{Sellers: m, Durability: string(mode)}
	dir, err := os.MkdirTemp("", "share-bench-pr6-")
	if err != nil {
		return sc, err
	}
	defer os.RemoveAll(dir)

	p := pool.New(pool.Options{
		Seed:        seed,
		SnapshotDir: dir,
		Durability:  string(mode),
		Update:      &market.WeightUpdate{Retain: 0.2, Permutations: 8, TruncateTol: 0.005},
		Logf:        func(string, ...any) {},
	})
	defer p.Close()
	mkt, err := p.Create(pool.Spec{ID: "bench"})
	if err != nil {
		return sc, err
	}
	for i := 0; i < m; i++ {
		if _, err := mkt.RegisterSeller(pool.Registration{
			ID:            fmt.Sprintf("s%03d", i+1),
			Lambda:        0.2 + 0.6*float64(i)/float64(m),
			SyntheticRows: 300,
		}); err != nil {
			return sc, err
		}
	}
	// Re-base the WAL counters so the report covers the trade window only,
	// not the roster registrations above.
	base := p.Metrics().Snapshot()

	latencies := make([]time.Duration, trades)
	next := make(chan int)
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	start := time.Now()
	for w := 0; w < traders; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				buyer := core.PaperBuyer()
				buyer.N, buyer.V = 80+float64(i%7)*10, 0.8
				t0 := time.Now()
				_, err := mkt.Trade(context.Background(), buyer, nil, nil)
				latencies[i] = time.Since(t0)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
		}()
	}
	for i := 0; i < trades; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return sc, firstErr
	}

	snap := p.Metrics().Snapshot()
	sc.TradesPerSec = float64(trades) / elapsed.Seconds()
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	quantile := func(q float64) float64 {
		idx := int(q * float64(len(latencies)))
		if idx >= len(latencies) {
			idx = len(latencies) - 1
		}
		return float64(latencies[idx]) / float64(time.Millisecond)
	}
	sc.CommitP50Ms = quantile(0.50)
	sc.CommitP90Ms = quantile(0.90)
	sc.CommitP99Ms = quantile(0.99)
	sc.WALRecords = snap.Counters["wal/records"] - base.Counters["wal/records"]
	sc.WALBytes = snap.Counters["wal/bytes"] - base.Counters["wal/bytes"]
	sc.WALFsyncs = snap.Counters["wal/fsyncs"] - base.Counters["wal/fsyncs"]
	sc.WALBatchMax = snap.Gauges["wal/batch_max"]
	return sc, nil
}
