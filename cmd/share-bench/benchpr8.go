package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"share/internal/core"
	"share/internal/solve"
	"share/internal/stat"
)

// Committed BENCH_PR4.json reference numbers for the general backend's
// per-round solve (same probe shape: prototype Clone → SetBuyer → Solve,
// quadratic loss, PriceTol 1e-4). The m=1000 baseline takes ~10 minutes per
// solve, so the before/after at that size compares against the recorded
// trajectory instead of re-running the pre-optimization cascade live.
const (
	pr4GeneralM100NsPerOp  = 1_709_690_311.0
	pr4GeneralM1000NsPerOp = 593_434_301_975.0
)

// pr8Probe is one general-backend latency measurement with the Stage-3
// effort counters of a representative solve attached.
type pr8Probe struct {
	benchEntry
	Loss         string `json:"loss"`
	M            int    `json:"m"`
	Mode         string `json:"mode"` // "fast" | "fast_warm" | "baseline"
	Stage3Solves int    `json:"stage3_solves"`
	Stage3Sweeps int    `json:"stage3_sweeps"`
	MemoHits     int    `json:"memo_hits"`
}

// pr8Report is the BENCH_PR8.json document: before/after latency of the
// general equilibrium backend across loss functions and market sizes.
// "fast" probes clone a cold prototype per iteration (exactly the PR 4 probe
// shape, so the speedups_vs_pr4 ratios are apples to apples); "fast_warm"
// re-solves one Prepared so successive rounds chain warm starts, the shape a
// long-lived market sees; "baseline" disables every PR 8 optimization.
type pr8Report struct {
	GoMaxProcs             int                `json:"gomaxprocs"`
	Workers                int                `json:"workers"`
	PR4GeneralM100NsPerOp  float64            `json:"pr4_round_general_m100_ns_per_op"`
	PR4GeneralM1000NsPerOp float64            `json:"pr4_round_general_m1000_ns_per_op"`
	Benchmarks             []pr8Probe         `json:"benchmarks"`
	Speedups               map[string]float64 `json:"speedups"`
}

// writeBenchPR8 runs the general-backend before/after probes and writes
// BENCH_PR8.json into outDir. Baseline probes run at m=100 only — the
// pre-optimization cascade needs ~10 minutes per m=1000 solve, which is the
// point of the PR; the m=1000 speedup is reported against the committed PR 4
// measurement instead.
func writeBenchPR8(outDir string, workers int, seed int64) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := &pr8Report{
		GoMaxProcs:             runtime.GOMAXPROCS(0),
		Workers:                workers,
		PR4GeneralM100NsPerOp:  pr4GeneralM100NsPerOp,
		PR4GeneralM1000NsPerOp: pr4GeneralM1000NsPerOp,
		Speedups:               map[string]float64{},
	}

	losses := []struct {
		name string
		fn   func(g *core.Game) core.LossFunc
	}{
		{"quadratic", nil}, // backend default, Eq. 11
		{"alternative", func(g *core.Game) core.LossFunc { return g.AlternativeLoss() }},
		{"cubic", func(g *core.Game) core.LossFunc { return g.CubicLoss() }},
	}

	record := func(name, loss, mode string, m int, proto solve.Prepared, warm bool) (pr8Probe, error) {
		buyer := core.PaperBuyer()
		// warm probes re-solve one long-lived Prepared so the warm-start
		// chain carries across iterations; cold probes clone per iteration.
		prep := proto.Clone()
		prep.SetBuyer(buyer)
		var stats core.GeneralStats
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !warm {
					prep = proto.Clone()
					prep.SetBuyer(buyer)
				}
				if _, err := prep.Solve(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
			if sp, ok := prep.(solve.StatsProvider); ok {
				stats = sp.SolveStats()
			}
		})
		p := pr8Probe{
			benchEntry: benchEntry{
				Name:        name,
				NsPerOp:     float64(r.NsPerOp()),
				AllocsPerOp: r.AllocsPerOp(),
				Workers:     workers,
				Iterations:  r.N,
			},
			Loss:         loss,
			M:            m,
			Mode:         mode,
			Stage3Solves: stats.Stage3Solves,
			Stage3Sweeps: stats.Stage3Sweeps,
			MemoHits:     stats.MemoHits,
		}
		rep.Benchmarks = append(rep.Benchmarks, p)
		log.Printf("bench %-36s %14.0f ns/op  (%d iterations, %d stage-3 solves)",
			name, p.NsPerOp, r.N, stats.Stage3Solves)
		return p, nil
	}

	for _, m := range []int{100, 1000} {
		g := core.PaperGame(m, stat.NewRand(seed))
		for _, l := range losses {
			fast := solve.General{LossFor: l.fn, PriceTol: 1e-4, Workers: workers}
			proto, err := fast.Precompute(g)
			if err != nil {
				return fmt.Errorf("bench-pr8: %s m=%d: %w", l.name, m, err)
			}
			label := fmt.Sprintf("round_general_%s_m%d", l.name, m)
			cold, err := record(label, l.name, "fast", m, proto, false)
			if err != nil {
				return err
			}
			warm, err := record(label+"_warm", l.name, "fast_warm", m, proto, true)
			if err != nil {
				return err
			}
			if l.name == "quadratic" {
				pr4 := pr4GeneralM100NsPerOp
				if m == 1000 {
					pr4 = pr4GeneralM1000NsPerOp
				}
				rep.Speedups[fmt.Sprintf("round_general_m%d_vs_pr4", m)] = pr4 / cold.NsPerOp
				rep.Speedups[fmt.Sprintf("round_general_m%d_warm_vs_pr4", m)] = pr4 / warm.NsPerOp
			}
			if m == 100 {
				base := solve.General{LossFor: l.fn, PriceTol: 1e-4, Workers: workers, Baseline: true}
				bproto, err := base.Precompute(g)
				if err != nil {
					return fmt.Errorf("bench-pr8: baseline %s m=%d: %w", l.name, m, err)
				}
				bl, err := record(label+"_baseline", l.name, "baseline", m, bproto, false)
				if err != nil {
					return err
				}
				rep.Speedups[fmt.Sprintf("round_general_%s_m%d_vs_baseline", l.name, m)] = bl.NsPerOp / cold.NsPerOp
			}
		}
	}

	path := filepath.Join(outDir, "BENCH_PR8.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	log.Printf("wrote %s (vs PR4: m=100 %.0fx, m=1000 %.0fx)",
		path, rep.Speedups["round_general_m100_vs_pr4"], rep.Speedups["round_general_m1000_vs_pr4"])
	return nil
}
