// Command share-sim runs multi-round market simulations: a stream of buyers
// with randomized demands trades against one persistent market, weights
// evolving via Shapley updates round over round. It prints a per-round table
// and closing summaries, and can persist the market snapshot for later
// sessions.
//
// Usage:
//
//	share-sim [flags]
//
//	-m int          sellers (default 20)
//	-rounds int     buyer arrivals to simulate (default 10)
//	-n-lo/-n-hi     demand-quantity bounds (default 200..800)
//	-v-lo/-v-hi     demanded-performance bounds (default 0.5..0.9)
//	-theta-lo/-hi   θ₁ bounds (default 0.3..0.7)
//	-product        ols | logistic | mean | histogram (default ols)
//	-solver NAME    equilibrium backend: analytic | meanfield | general
//	-snapshot PATH  save the market snapshot JSON on exit
//	-seed int       random seed
//	-workers int    fan the Shapley weight update across n workers (>1).
//	                Purely a latency knob: the moment-cached kernel seeds
//	                each permutation independently, so output is identical
//	                for every worker count (including the default of one)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"share/internal/dataset"
	"share/internal/market"
	"share/internal/product"
	"share/internal/sim"
	"share/internal/solve"
	"share/internal/stat"
	"share/internal/translog"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("share-sim: ")

	var (
		m        = flag.Int("m", 20, "number of sellers")
		rounds   = flag.Int("rounds", 10, "buyer arrivals to simulate")
		nLo      = flag.Float64("n-lo", 200, "minimum demanded data quantity")
		nHi      = flag.Float64("n-hi", 800, "maximum demanded data quantity")
		vLo      = flag.Float64("v-lo", 0.5, "minimum demanded performance")
		vHi      = flag.Float64("v-hi", 0.9, "maximum demanded performance")
		thLo     = flag.Float64("theta-lo", 0.3, "minimum θ₁")
		thHi     = flag.Float64("theta-hi", 0.7, "maximum θ₁")
		prod     = flag.String("product", "ols", "product form: ols | logistic | mean | histogram")
		snapshot = flag.String("snapshot", "", "save the market snapshot JSON here on exit")
		seed     = flag.Int64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "Shapley weight-update workers (>1 fans out; output independent of count)")
		solver   = flag.String("solver", "", "equilibrium backend: analytic | meanfield | general (empty = analytic)")
	)
	flag.Parse()

	if err := run(*m, *rounds, *nLo, *nHi, *vLo, *vHi, *thLo, *thHi, *prod, *snapshot, *solver, *seed, *workers); err != nil {
		log.Fatal(err)
	}
}

func run(m, rounds int, nLo, nHi, vLo, vHi, thLo, thHi float64, prod, snapshot, solver string, seed int64, workers int) error {
	backend, err := solve.Lookup(solver)
	if err != nil {
		return fmt.Errorf("-solver: %w", err)
	}
	rng := stat.NewRand(seed)

	// Assemble the market over synthetic CCPP data.
	full := dataset.SyntheticCCPP(m*80+500, rng)
	train, test := full.Split(m * 80)
	chunks, err := dataset.PartitionEqual(train, m)
	if err != nil {
		return err
	}
	sellers := make([]*market.Seller, m)
	for i := range sellers {
		sellers[i] = &market.Seller{
			ID:     fmt.Sprintf("S%03d", i+1),
			Lambda: stat.UniformOpen(rng, 0, 1),
			Data:   chunks[i],
		}
	}
	builder, err := builderFor(prod, train)
	if err != nil {
		return err
	}
	mkt, err := market.New(sellers, market.Config{
		Cost:    translog.PaperDefaults(),
		Product: builder,
		TestSet: test,
		Update:  &market.WeightUpdate{Retain: 0.2, Permutations: 15, TruncateTol: 0.005, Workers: workers},
		Solver:  backend,
		Seed:    seed,
	})
	if err != nil {
		return err
	}

	dist := sim.BuyerDistribution{
		NLo: nLo, NHi: nHi,
		VLo: vLo, VHi: vHi,
		Theta1Lo: thLo, Theta1Hi: thHi,
	}
	res, err := sim.Run(mkt, dist, rounds, rng)
	if err != nil {
		return err
	}

	fmt.Printf("%-6s %-6s %-5s %-9s %-9s %-9s %-9s %-7s %-8s\n",
		"round", "N", "v", "pM*", "pD*", "payment", "Ω", "perf", "entropy")
	for _, rs := range res.Rounds {
		fmt.Printf("%-6d %-6.0f %-5.2f %-9.5f %-9.5f %-9.5f %-9.5f %-7.3f %-8.3f\n",
			rs.Round, rs.Buyer.N, rs.Buyer.V, rs.ProductPrice, rs.DataPrice,
			rs.Payment, rs.BrokerProfit, rs.Performance, rs.WeightEntropy)
	}

	fmt.Println()
	pm := res.Summarize(func(r sim.RoundStats) float64 { return r.ProductPrice })
	entropy := res.Summarize(func(r sim.RoundStats) float64 { return r.WeightEntropy })
	fmt.Printf("totals: payments %.5f, broker profit %.5f, seller revenue %.5f\n",
		res.TotalPayments, res.TotalBrokerProfit, res.TotalSellerRevenue)
	fmt.Printf("p^M*: mean %.5f in [%.5f, %.5f]\n", pm.Mean, pm.Min, pm.Max)
	fmt.Printf("weight entropy: %.3f → %.3f (falling = broker concentrating on good sellers)\n",
		entropy.Max, entropy.Last)

	// Refit the broker's cost model from the accumulated ledger.
	if obs := mkt.CostObservations(); len(obs) >= 8 {
		if fit, err := translog.Fit(obs); err == nil {
			fmt.Printf("refit translog σ₁=%.3f σ₂=%.3f (truth −2, −3), log-RMSE %.2e\n",
				fit.Sigma1, fit.Sigma2, translog.FitError(fit, obs))
		}
	}

	if snapshot != "" {
		f, err := os.Create(snapshot)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := mkt.Save(f); err != nil {
			return err
		}
		fmt.Printf("snapshot saved to %s\n", snapshot)
	}
	return nil
}

func builderFor(name string, ref *dataset.Dataset) (product.Builder, error) {
	switch name {
	case "ols", "":
		return product.OLS{}, nil
	case "logistic":
		return product.Logistic{Threshold: product.MedianThreshold(ref)}, nil
	case "mean":
		return product.MeanVector{}, nil
	case "histogram":
		return product.Histogram{}, nil
	default:
		return nil, fmt.Errorf("unknown product %q (want ols|logistic|mean|histogram)", name)
	}
}
