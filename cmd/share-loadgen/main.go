// Command share-loadgen drives saturating traffic at a share-server and
// reports what the admission layer did about it.
//
// It sets up M markets, registers sellers in each, and runs two timed
// phases:
//
//	unloaded   closed-loop quote (and batch-quote) workers only — the
//	           latency baseline.
//	loaded     the same quote workload with closed-loop trade flooders
//	           hammering every market's write path at the same time.
//
// Trades are deliberately pushed past each market's admission envelope
// (one slot, no waiting room by default), so a healthy run shows a
// non-zero 429 rejection rate while the quote percentiles stay close to
// the unloaded baseline — the overload-isolation contract, measured.
//
// Usage:
//
//	share-loadgen [-addr URL] [-out DIR] [-markets N] [-sellers N]
//	              [-quote-workers N] [-trade-workers N] [-churn N]
//	              [-duration D] [-quote-rate R] [-batch N] [-trade-queue N]
//	              [-trade-concurrency N] [-seed N] [-bench-pr9] [-bench-pr10]
//
// With no -addr the tool self-hosts an in-process server on a loopback
// listener (with a cheap weight update so trades are fast); point -addr at
// a running share-server to load a real deployment. Quote workers are
// closed-loop by default; -quote-rate R > 0 switches them to open-loop at R
// requests/second each, exposing queueing delay instead of hiding it.
// During the loaded phase, churn workers join and release sellers in a
// tight loop, so the quote percentiles are measured against a roster that
// never stops moving. Results — per-phase latency percentiles, throughput,
// trade rejection rates, churn counts, the quote-p99 degradation ratio and
// the server's own admission counters — are written to DIR/BENCH_PR7.json.
//
// -bench-pr9 runs a different experiment entirely: in-process probes of the
// incremental roster re-preparation (Prepared.Reprepare) against a fresh
// from-scratch Precompute at m = 100 and m = 1000, written to
// DIR/BENCH_PR9.json. The run exits non-zero unless the incremental path is
// at least 10x faster at m = 1000 and the post-churn prices agree with the
// fresh solve to 1e-9.
//
// -bench-pr10 probes the per-seller privacy-budget ledger: identical trade
// scripts against a budget-free market and a generously budgeted twin
// (pinned seeds, so the rounds do identical work) measure the ledger's
// check-and-charge overhead on the trade path, and an ε-starved market
// proves the exhaustion refusal engages. Results go to DIR/BENCH_PR10.json;
// the run exits non-zero if the overhead exceeds 5% or any starved trade
// slips through.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"share/internal/httpapi"
	"share/internal/parallel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("share-loadgen: ")

	var (
		addr      = flag.String("addr", "", "server base URL (empty = self-host an in-process server)")
		outDir    = flag.String("out", "bench_out", "output directory for BENCH_PR7.json")
		markets   = flag.Int("markets", 4, "number of markets to create and load")
		sellers   = flag.Int("sellers", 4, "sellers registered per market")
		rows      = flag.Int("rows", 1500, "synthetic rows per seller (sets per-trade cost)")
		prod      = flag.String("product", "logistic", "data product trades manufacture (ols is cheap, logistic is expensive)")
		tradeN    = flag.Float64("trade-n", 6000, "demanded data quantity per trade (sets per-trade manufacturing cost)")
		quoteW    = flag.Int("quote-workers", 2, "closed-loop quote workers per market")
		tradeW    = flag.Int("trade-workers", 1, "trade flooders per market (loaded phase)")
		burst     = flag.Int("trade-burst", 2, "concurrent trade attempts per flooder burst")
		pause     = flag.Duration("trade-pause", 500*time.Millisecond, "flooder think time between bursts")
		duration  = flag.Duration("duration", 3*time.Second, "length of each timed phase")
		quoteRate = flag.Float64("quote-rate", 0, "open-loop quotes/second per quote worker (0 = closed loop)")
		batchN    = flag.Int("batch", 4, "batch-quote size (every 5th quote issues a batch; 0 disables)")
		queue     = flag.Int("trade-queue", 0, "per-market trade waiting room (spec override)")
		conc      = flag.Int("trade-concurrency", 1, "per-market in-flight trade cap (spec override)")
		churnW    = flag.Int("churn", 1, "roster-churn workers per market (loaded phase; 0 disables)")
		seed      = flag.Int64("seed", 1, "server seed (self-hosted only)")
		benchPR9  = flag.Bool("bench-pr9", false, "run the incremental-vs-fresh re-precompute probes and write BENCH_PR9.json instead of the load phases")
		benchPR10 = flag.Bool("bench-pr10", false, "run the privacy-budget ledger overhead and exhaustion probes and write BENCH_PR10.json instead of the load phases")
	)
	flag.Parse()
	if *benchPR9 {
		if err := runBenchPR9(*outDir); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *benchPR10 {
		if err := runBenchPR10(*outDir); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *markets < 1 || *sellers < 1 || *quoteW < 1 || *tradeW < 1 || *burst < 1 {
		log.Fatal("-markets, -sellers, -quote-workers, -trade-workers and -trade-burst must all be at least 1")
	}

	base := *addr
	var shutdown func()
	if base == "" {
		var err error
		base, shutdown, err = selfHost(*seed)
		if err != nil {
			log.Fatalf("self-hosting: %v", err)
		}
		defer shutdown()
		log.Printf("self-hosted server at %s", base)
	}

	rep, err := run(base, config{
		Markets:          *markets,
		Sellers:          *sellers,
		Rows:             *rows,
		Product:          *prod,
		TradeN:           *tradeN,
		TradeBurst:       *burst,
		TradePause:       *pause,
		QuoteWorkers:     *quoteW,
		TradeWorkers:     *tradeW,
		ChurnWorkers:     *churnW,
		DurationSeconds:  duration.Seconds(),
		QuoteRate:        *quoteRate,
		Batch:            *batchN,
		TradeQueue:       *queue,
		TradeConcurrency: *conc,
		Seed:             *seed,
		SelfHosted:       *addr == "",
	}, *duration)
	if err != nil {
		log.Fatal(err)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatalf("creating %s: %v", *outDir, err)
	}
	path := filepath.Join(*outDir, "BENCH_PR7.json")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", path)
	if !rep.SLO.Within2x {
		log.Fatalf("SLO violated: loaded quote p99 %.2fms is %.2fx the unloaded %.2fms (want <= 2x)",
			rep.SLO.LoadedQuoteP99Ms, rep.SLO.Ratio, rep.SLO.UnloadedQuoteP99Ms)
	}
}

// selfHost starts an in-process server on an ephemeral loopback port with
// the paper-default weight update, so trades carry their real manufacturing
// cost.
func selfHost(seed int64) (baseURL string, shutdown func(), err error) {
	srv := httpapi.NewServer(httpapi.Options{
		Seed: seed,
		Logf: func(string, ...any) {},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		srv.Pool().Close()
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// config echoes the run parameters into the report.
type config struct {
	Markets          int           `json:"markets"`
	Sellers          int           `json:"sellers_per_market"`
	Rows             int           `json:"rows_per_seller"`
	Product          string        `json:"trade_product"`
	TradeN           float64       `json:"trade_demand_n"`
	TradeBurst       int           `json:"trade_burst"`
	TradePause       time.Duration `json:"trade_pause_ns"`
	QuoteWorkers     int           `json:"quote_workers_per_market"`
	TradeWorkers     int           `json:"trade_workers_per_market"`
	ChurnWorkers     int           `json:"churn_workers_per_market"`
	DurationSeconds  float64       `json:"phase_duration_seconds"`
	QuoteRate        float64       `json:"quote_rate_per_worker"`
	Batch            int           `json:"batch_quote_size"`
	TradeQueue       int           `json:"trade_queue"`
	TradeConcurrency int           `json:"trade_concurrency"`
	Seed             int64         `json:"seed"`
	SelfHosted       bool          `json:"self_hosted"`
}

// latStats summarizes one latency series.
type latStats struct {
	Count      int     `json:"count"`
	PerSec     float64 `json:"per_sec"`
	MeanMs     float64 `json:"mean_ms"`
	P50Ms      float64 `json:"p50_ms"`
	P90Ms      float64 `json:"p90_ms"`
	P99Ms      float64 `json:"p99_ms"`
	MaxMs      float64 `json:"max_ms"`
	Errors     int     `json:"errors,omitempty"`
	LastErrMsg string  `json:"last_error,omitempty"`
}

// tradeStats extends latStats with the admission outcomes.
type tradeStats struct {
	latStats
	Rejected      int     `json:"rejected_429"`
	Drained       int     `json:"drained_503"`
	RejectionRate float64 `json:"rejection_rate"`
}

// churnStats counts one phase's roster churn: completed join/leave pairs
// against live markets while the quote and trade workload runs.
type churnStats struct {
	Joins      int    `json:"joins"`
	Leaves     int    `json:"leaves"`
	Errors     int    `json:"errors,omitempty"`
	LastErrMsg string `json:"last_error,omitempty"`
}

// phaseStats is one timed phase's client-side view.
type phaseStats struct {
	Quotes      latStats    `json:"quotes"`
	BatchQuotes *latStats   `json:"batch_quotes,omitempty"`
	Trades      *tradeStats `json:"trades,omitempty"`
	Churn       *churnStats `json:"churn,omitempty"`
}

// sloStats is the headline acceptance number: quote p99 under saturating
// trade load versus unloaded.
type sloStats struct {
	UnloadedQuoteP99Ms float64 `json:"quote_p99_unloaded_ms"`
	LoadedQuoteP99Ms   float64 `json:"quote_p99_loaded_ms"`
	Ratio              float64 `json:"ratio"`
	Within2x           bool    `json:"within_2x"`
}

// marketCounters is the server's own admission accounting for one market.
type marketCounters struct {
	Admitted uint64 `json:"trades_admitted"`
	Rejected uint64 `json:"trades_rejected"`
}

// report is the BENCH_PR7.json document.
type report struct {
	GoMaxProcs int                       `json:"gomaxprocs"`
	Config     config                    `json:"config"`
	Unloaded   phaseStats                `json:"unloaded"`
	Loaded     phaseStats                `json:"loaded"`
	SLO        sloStats                  `json:"slo"`
	Server     map[string]marketCounters `json:"server_admission"`
}

// sampler collects one worker's latency series without sharing: each
// worker owns its sampler by index, and series are merged only after the
// phase barrier.
type sampler struct {
	lats    []time.Duration
	errs    int
	lastErr string
}

func (s *sampler) ok(d time.Duration) { s.lats = append(s.lats, d) }
func (s *sampler) fail(err error)     { s.errs++; s.lastErr = err.Error() }
func (s *sampler) merge(o *sampler) {
	s.lats = append(s.lats, o.lats...)
	s.errs += o.errs
	if o.lastErr != "" {
		s.lastErr = o.lastErr
	}
}

func (s *sampler) stats(window time.Duration) latStats {
	st := latStats{Count: len(s.lats), Errors: s.errs, LastErrMsg: s.lastErr}
	if window > 0 {
		st.PerSec = round2(float64(len(s.lats)) / window.Seconds())
	}
	if len(s.lats) == 0 {
		return st
	}
	sort.Slice(s.lats, func(i, j int) bool { return s.lats[i] < s.lats[j] })
	var sum time.Duration
	for _, d := range s.lats {
		sum += d
	}
	st.MeanMs = ms(sum / time.Duration(len(s.lats)))
	st.P50Ms = ms(pct(s.lats, 0.50))
	st.P90Ms = ms(pct(s.lats, 0.90))
	st.P99Ms = ms(pct(s.lats, 0.99))
	st.MaxMs = ms(s.lats[len(s.lats)-1])
	return st
}

func pct(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func ms(d time.Duration) float64 { return round2(float64(d) / float64(time.Millisecond)) }
func round2(v float64) float64   { return float64(int(v*100+0.5)) / 100 }
func marketID(i int) string      { return fmt.Sprintf("lg-%02d", i) }

func run(base string, cfg config, phaseLen time.Duration) (*report, error) {
	ctx := context.Background()
	c := httpapi.NewClient(base, &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		},
	})
	if _, err := c.Health(ctx); err != nil {
		return nil, fmt.Errorf("server not reachable: %w", err)
	}

	// Setup: M markets with a deliberately tight admission envelope, each
	// with its own seller roster.
	log.Printf("setting up %d markets x %d sellers (admission %d slot(s), queue %d)",
		cfg.Markets, cfg.Sellers, cfg.TradeConcurrency, cfg.TradeQueue)
	for i := 0; i < cfg.Markets; i++ {
		conc, queue := cfg.TradeConcurrency, cfg.TradeQueue
		spec := httpapi.MarketSpec{ID: marketID(i), TradeConcurrency: &conc, TradeQueue: &queue}
		if _, err := c.CreateMarket(ctx, spec); err != nil {
			return nil, fmt.Errorf("creating %s: %w", spec.ID, err)
		}
		for s := 0; s < cfg.Sellers; s++ {
			reg := httpapi.SellerRegistration{
				ID:            fmt.Sprintf("s%02d", s),
				Lambda:        0.25 + 0.1*float64(s),
				SyntheticRows: cfg.Rows,
			}
			if _, err := c.RegisterSellerIn(ctx, spec.ID, reg); err != nil {
				return nil, fmt.Errorf("registering %s/%s: %w", spec.ID, reg.ID, err)
			}
		}
	}

	rep := &report{GoMaxProcs: runtime.GOMAXPROCS(0), Config: cfg}

	log.Printf("phase unloaded: %v of quotes only", phaseLen)
	rep.Unloaded = runPhase(c, cfg, phaseLen, false)
	log.Printf("phase loaded:   %v of quotes + saturating trades", phaseLen)
	rep.Loaded = runPhase(c, cfg, phaseLen, true)

	rep.SLO.UnloadedQuoteP99Ms = rep.Unloaded.Quotes.P99Ms
	rep.SLO.LoadedQuoteP99Ms = rep.Loaded.Quotes.P99Ms
	if rep.SLO.UnloadedQuoteP99Ms > 0 {
		rep.SLO.Ratio = round2(rep.SLO.LoadedQuoteP99Ms / rep.SLO.UnloadedQuoteP99Ms)
	}
	rep.SLO.Within2x = rep.SLO.Ratio <= 2.0

	// The server's own admission accounting closes the loop on the
	// client-side 429 counts.
	if snap, err := c.Metrics(ctx); err == nil {
		rep.Server = make(map[string]marketCounters, cfg.Markets)
		for i := 0; i < cfg.Markets; i++ {
			id := marketID(i)
			rep.Server[id] = marketCounters{
				Admitted: snap.Counters["market/"+id+"/trades_admitted"],
				Rejected: snap.Counters["market/"+id+"/trades_rejected"],
			}
		}
	}

	log.Printf("quotes: unloaded p99 %.2fms, loaded p99 %.2fms (%.2fx)",
		rep.SLO.UnloadedQuoteP99Ms, rep.SLO.LoadedQuoteP99Ms, rep.SLO.Ratio)
	if tr := rep.Loaded.Trades; tr != nil {
		log.Printf("trades: %d committed, %d rejected 429 (rate %.2f), %.1f/s",
			tr.Count, tr.Rejected, tr.RejectionRate, tr.PerSec)
	}
	if ch := rep.Loaded.Churn; ch != nil {
		log.Printf("churn: %d joins, %d leaves, %d errors", ch.Joins, ch.Leaves, ch.Errors)
	}
	return rep, nil
}

// runPhase runs one timed window: quote workers across every market, plus
// (when loaded) closed-loop trade flooders and roster-churn workers. Every
// worker owns its sampler by index — parallel.ForWorker gives each exactly
// one — so the hot loops share nothing.
func runPhase(c *httpapi.Client, cfg config, phaseLen time.Duration, loaded bool) phaseStats {
	nQuote := cfg.Markets * cfg.QuoteWorkers
	nTrade, nChurn := 0, 0
	if loaded {
		nTrade = cfg.Markets * cfg.TradeWorkers
		nChurn = cfg.Markets * cfg.ChurnWorkers
	}
	quoteS := make([]sampler, nQuote)
	batchS := make([]sampler, nQuote)
	tradeS := make([]sampler, nTrade)
	rejected := make([]int, nTrade)
	drained := make([]int, nTrade)
	churnS := make([]churnStats, nChurn)

	deadline := time.Now().Add(phaseLen)
	total := nQuote + nTrade + nChurn
	parallel.ForWorker(total, total, func(_, i int) {
		switch {
		case i < nQuote:
			quoteWorker(c, marketID(i%cfg.Markets), cfg, deadline, &quoteS[i], &batchS[i])
		case i < nQuote+nTrade:
			j := i - nQuote
			tradeWorker(c, marketID(j%cfg.Markets), cfg, deadline, &tradeS[j], &rejected[j], &drained[j])
		default:
			j := i - nQuote - nTrade
			churnWorker(c, marketID(j%cfg.Markets), j, cfg, deadline, &churnS[j])
		}
	})

	var quotes, batches sampler
	for i := range quoteS {
		quotes.merge(&quoteS[i])
		batches.merge(&batchS[i])
	}
	ps := phaseStats{Quotes: quotes.stats(phaseLen)}
	if cfg.Batch > 0 {
		bs := batches.stats(phaseLen)
		ps.BatchQuotes = &bs
	}
	if loaded {
		var trades sampler
		rej, dr := 0, 0
		for i := range tradeS {
			trades.merge(&tradeS[i])
			rej += rejected[i]
			dr += drained[i]
		}
		ts := &tradeStats{latStats: trades.stats(phaseLen), Rejected: rej, Drained: dr}
		if attempts := ts.Count + rej + dr + ts.Errors; attempts > 0 {
			ts.RejectionRate = round2(float64(rej) / float64(attempts))
		}
		ps.Trades = ts
	}
	if nChurn > 0 {
		total := churnStats{}
		for i := range churnS {
			total.Joins += churnS[i].Joins
			total.Leaves += churnS[i].Leaves
			total.Errors += churnS[i].Errors
			if churnS[i].LastErrMsg != "" {
				total.LastErrMsg = churnS[i].LastErrMsg
			}
		}
		ps.Churn = &total
	}
	return ps
}

// churnWorker cycles one transient seller through its market until the
// deadline: join, breathe, leave, breathe. Against a trading market each
// cycle drives the incremental Reprepare path twice while quote workers
// read the copy-on-write views — the churn-vs-quote isolation story under
// real HTTP load. Seller IDs carry the global worker index, so concurrent
// churners in one market never collide.
func churnWorker(c *httpapi.Client, id string, worker int, cfg config, deadline time.Time, s *churnStats) {
	const pause = 50 * time.Millisecond
	for n := 0; time.Now().Before(deadline); n++ {
		ctx, cancel := context.WithDeadline(context.Background(), deadline.Add(10*time.Second))
		sid := fmt.Sprintf("churn-%02d-%d", worker, n)
		reg := httpapi.SellerRegistration{ID: sid, Lambda: 0.3 + 0.05*float64(n%8), SyntheticRows: 60}
		if _, err := c.RegisterSellerIn(ctx, id, reg); err != nil {
			s.Errors++
			s.LastErrMsg = err.Error()
			cancel()
			time.Sleep(pause)
			continue
		}
		s.Joins++
		time.Sleep(pause)
		if err := c.RemoveSellerIn(ctx, id, sid); err != nil {
			s.Errors++
			s.LastErrMsg = err.Error()
		} else {
			s.Leaves++
		}
		cancel()
		time.Sleep(pause)
	}
}

// quoteWorker issues quotes against one market until the deadline: every
// 5th iteration is a batch quote (when enabled), the rest single quotes.
// Quotes are idempotent, so they ride through the opt-in Retry helper —
// overload pushback on reads (none is expected today) would be honored
// rather than surfaced.
func quoteWorker(c *httpapi.Client, id string, cfg config, deadline time.Time, single, batch *sampler) {
	demand := httpapi.Demand{N: 100, V: 0.8}
	var tick *time.Ticker
	if cfg.QuoteRate > 0 {
		tick = time.NewTicker(time.Duration(float64(time.Second) / cfg.QuoteRate))
		defer tick.Stop()
	}
	policy := httpapi.RetryPolicy{Attempts: 2, Base: 5 * time.Millisecond, Max: 50 * time.Millisecond}
	for n := 0; time.Now().Before(deadline); n++ {
		if tick != nil {
			<-tick.C
			if !time.Now().Before(deadline) {
				return
			}
		}
		ctx, cancel := context.WithDeadline(context.Background(), deadline.Add(5*time.Second))
		t0 := time.Now()
		var err error
		isBatch := cfg.Batch > 0 && n%5 == 4
		if isBatch {
			demands := make([]httpapi.Demand, cfg.Batch)
			for i := range demands {
				demands[i] = httpapi.Demand{N: 80 + 10*float64(i), V: 0.8}
			}
			err = httpapi.Retry(ctx, policy, func(ctx context.Context) error {
				_, e := c.QuoteBatch(ctx, id, demands)
				return e
			})
		} else {
			err = httpapi.Retry(ctx, policy, func(ctx context.Context) error {
				_, e := c.QuoteIn(ctx, id, demand)
				return e
			})
		}
		d := time.Since(t0)
		cancel()
		s := single
		if isBatch {
			s = batch
		}
		if err != nil {
			s.fail(err)
			continue
		}
		s.ok(d)
	}
}

// tradeWorker floods one market until the deadline. Each cycle fires a
// burst of concurrent trade attempts — deliberately more than the market's
// admission envelope — then pauses for the flooder's think time. Trades are
// NOT retried (they are not idempotent): a 429 is counted against the
// rejection rate and the worker backs off for the server's Retry-After
// hint, capped at 2s so a long run keeps generating pressure. This is the
// well-behaved-overdemanding-client story: attempted load exceeds capacity
// every burst, admitted load stays at what the market accepted.
func tradeWorker(c *httpapi.Client, id string, cfg config, deadline time.Time, s *sampler, rejected, drained *int) {
	type result struct {
		d   time.Duration
		err error
	}
	for time.Now().Before(deadline) {
		results := make(chan result, cfg.TradeBurst)
		for b := 0; b < cfg.TradeBurst; b++ {
			go func() {
				ctx, cancel := context.WithDeadline(context.Background(), deadline.Add(30*time.Second))
				defer cancel()
				t0 := time.Now()
				_, err := c.TradeIn(ctx, id, httpapi.Demand{N: cfg.TradeN, V: 0.8, Product: cfg.Product})
				results <- result{time.Since(t0), err}
			}()
		}
		wait := cfg.TradePause
		for b := 0; b < cfg.TradeBurst; b++ {
			r := <-results
			if r.err == nil {
				s.ok(r.d)
				continue
			}
			var se *httpapi.StatusError
			switch {
			case errors.As(r.err, &se) && se.Code == http.StatusTooManyRequests:
				*rejected++
				if h := backoff(se.RetryAfter); h > wait {
					wait = h
				}
			case errors.As(r.err, &se) && se.Code == http.StatusServiceUnavailable:
				*drained++
				if h := backoff(se.RetryAfter); h > wait {
					wait = h
				}
			default:
				s.fail(r.err)
			}
		}
		time.Sleep(wait)
	}
}

// backoff bounds a server Retry-After hint for the flooder: at least a
// breath (the server may have sent nothing), at most 2s so the flood keeps
// flooding.
func backoff(hint time.Duration) time.Duration {
	if hint < 2*time.Millisecond {
		return 2 * time.Millisecond
	}
	if hint > 2*time.Second {
		return 2 * time.Second
	}
	return hint
}
