package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"share/internal/budget"
	"share/internal/core"
	"share/internal/pool"
)

// The PR 10 acceptance benchmark: what does the per-seller privacy-budget
// ledger cost on the trade path? Two markets with pinned identical seeds —
// one budget-free, one with a budget generous enough that no trade is ever
// refused — run the same trade script; since budget accounting draws no
// randomness, the two rounds perform identical equilibrium, LDP and Shapley
// work, and the only difference is the ledger's check-and-charge. The run
// also drives an exhaustion workload against a near-zero budget to prove
// the refusal path engages, and gates the measured overhead at 5%.

// benchPR10OverheadLimitPct is the acceptance gate: the budgeted trade path
// may cost at most this much more than the budget-free one.
const benchPR10OverheadLimitPct = 5.0

// benchPR10Report is the BENCH_PR10.json document.
type benchPR10Report struct {
	GoMaxProcs        int     `json:"gomaxprocs"`
	Sellers           int     `json:"sellers"`
	RowsPerSeller     int     `json:"rows_per_seller"`
	Blocks            int     `json:"blocks"`
	TradesPerBlock    int     `json:"trades_per_block"`
	TradesOffNsOp     float64 `json:"trades_off_ns_op"`
	TradesOnNsOp      float64 `json:"trades_on_ns_op"`
	OverheadPct       float64 `json:"overhead_pct"`
	OverheadLimitPct  float64 `json:"overhead_limit_pct"`
	ExhaustedAttempts int     `json:"exhausted_attempts"`
	ExhaustedRefusals int     `json:"exhausted_refusals"`
	Pass              bool    `json:"pass"`
}

func runBenchPR10(outDir string) error {
	const (
		sellers  = 4
		rows     = 200
		blocks   = 20
		perBlock = 20
		warmup   = 5
	)
	rep := benchPR10Report{
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		Sellers:          sellers,
		RowsPerSeller:    rows,
		Blocks:           blocks,
		TradesPerBlock:   perBlock,
		OverheadLimitPct: benchPR10OverheadLimitPct,
	}

	p := pool.New(pool.Options{Seed: 1, Logf: func(string, ...any) {}})
	defer p.Close()
	seed := int64(7)
	generous := 1e18
	off, err := benchMarket(p, pool.Spec{ID: "off", Seed: &seed}, sellers, rows)
	if err != nil {
		return err
	}
	on, err := benchMarket(p, pool.Spec{ID: "on", Seed: &seed, EpsilonBudget: &generous}, sellers, rows)
	if err != nil {
		return err
	}

	buyer := core.PaperBuyer()
	buyer.N, buyer.V = 90, 0.8
	trade := func(m *pool.Market) error {
		_, err := m.Trade(context.Background(), buyer, nil, nil)
		return err
	}
	for i := 0; i < warmup; i++ {
		if err := trade(off); err != nil {
			return fmt.Errorf("warmup off trade %d: %w", i, err)
		}
		if err := trade(on); err != nil {
			return fmt.Errorf("warmup on trade %d: %w", i, err)
		}
	}

	// Trades interleave one-for-one, so both markets walk the same round
	// numbers under the same ambient noise; the per-side minimum is the
	// clean-path cost, immune to GC pauses and scheduler preemption that
	// wall-clock block averages would smear into a 5% gate.
	timed := func(m *pool.Market) (time.Duration, error) {
		t0 := time.Now()
		err := trade(m)
		return time.Since(t0), err
	}
	iters := blocks * perBlock
	minOff, minOn := time.Duration(0), time.Duration(0)
	for i := 0; i < iters; i++ {
		dOff, err := timed(off)
		if err != nil {
			return fmt.Errorf("off trade %d: %w", i, err)
		}
		dOn, err := timed(on)
		if err != nil {
			return fmt.Errorf("on trade %d: %w", i, err)
		}
		if i == 0 || dOff < minOff {
			minOff = dOff
		}
		if i == 0 || dOn < minOn {
			minOn = dOn
		}
	}
	rep.TradesOffNsOp = float64(minOff.Nanoseconds())
	rep.TradesOnNsOp = float64(minOn.Nanoseconds())
	rep.OverheadPct = round2((rep.TradesOnNsOp - rep.TradesOffNsOp) / rep.TradesOffNsOp * 100)
	log.Printf("trade path: budget off %8.0f ns/op, on %8.0f ns/op, overhead %+.2f%% (limit %.0f%%)",
		rep.TradesOffNsOp, rep.TradesOnNsOp, rep.OverheadPct, rep.OverheadLimitPct)

	// The refusal path: a budget far below any single round's ε charge must
	// turn every trade away with the typed exhaustion error, committing
	// nothing.
	tiny := 1e-9
	exhausted, err := benchMarket(p, pool.Spec{ID: "tiny", Seed: &seed, EpsilonBudget: &tiny}, sellers, rows)
	if err != nil {
		return err
	}
	rep.ExhaustedAttempts = 10
	for i := 0; i < rep.ExhaustedAttempts; i++ {
		var ee *budget.ExhaustedError
		if err := trade(exhausted); errors.As(err, &ee) {
			rep.ExhaustedRefusals++
		}
	}
	log.Printf("exhaustion: %d/%d trades refused on the ε-starved market",
		rep.ExhaustedRefusals, rep.ExhaustedAttempts)

	rep.Pass = rep.OverheadPct <= rep.OverheadLimitPct &&
		rep.ExhaustedRefusals == rep.ExhaustedAttempts &&
		len(exhausted.View().Trades) == 0

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("creating %s: %w", outDir, err)
	}
	path := filepath.Join(outDir, "BENCH_PR10.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("wrote %s", path)
	if !rep.Pass {
		return fmt.Errorf("acceptance gate failed: ledger overhead %.2f%% (limit %.0f%%), %d/%d exhausted refusals",
			rep.OverheadPct, rep.OverheadLimitPct, rep.ExhaustedRefusals, rep.ExhaustedAttempts)
	}
	return nil
}

// benchMarket creates one market and fills its roster with synthetic
// sellers. The pinned spec seed keeps the rng streams — and therefore the
// trade-path work — identical across the budget-off and budget-on markets.
func benchMarket(p *pool.Pool, spec pool.Spec, sellers, rows int) (*pool.Market, error) {
	m, err := p.Create(spec)
	if err != nil {
		return nil, fmt.Errorf("creating %s: %w", spec.ID, err)
	}
	for s := 0; s < sellers; s++ {
		reg := pool.Registration{
			ID:            fmt.Sprintf("s%02d", s),
			Lambda:        0.25 + 0.1*float64(s),
			SyntheticRows: rows,
		}
		if _, err := m.RegisterSeller(reg); err != nil {
			return nil, fmt.Errorf("registering %s/%s: %w", spec.ID, reg.ID, err)
		}
	}
	return m, nil
}
