package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"share/internal/core"
	"share/internal/solve"
	"share/internal/stat"
)

// The PR 9 acceptance benchmark: how much cheaper is one incremental
// roster re-preparation (Prepared.Reprepare — the rank-1 aggregate
// adjustment in core) than re-running the full Precompute over the
// post-churn roster? Measured on the analytic backend at the paper's
// m = 100 and at m = 1000, with a correctness cross-check: after the whole
// churn script the incrementally maintained Prepared must price within
// 1e-9 (relative) of a from-scratch Precompute.

// benchPR9SpeedupFloor is the acceptance gate at m = 1000: incremental
// re-preparation must beat full Precompute by at least this factor.
const benchPR9SpeedupFloor = 10.0

// churnProbe is one roster size's measurement.
type churnProbe struct {
	M               int     `json:"m"`
	Iterations      int     `json:"iterations"`
	IncrementalNsOp float64 `json:"incremental_ns_per_op"`
	FreshNsOp       float64 `json:"fresh_ns_per_op"`
	Speedup         float64 `json:"speedup"`
	MaxRelPriceErr  float64 `json:"max_rel_price_err"`
}

// benchPR9Report is the BENCH_PR9.json document.
type benchPR9Report struct {
	GoMaxProcs   int          `json:"gomaxprocs"`
	Solver       string       `json:"solver"`
	Probes       []churnProbe `json:"probes"`
	SpeedupM1000 float64      `json:"speedup_m1000"`
	SpeedupFloor float64      `json:"speedup_floor"`
	Pass         bool         `json:"pass"`
}

func runBenchPR9(outDir string) error {
	backend, err := solve.Lookup("analytic")
	if err != nil {
		return err
	}
	rep := benchPR9Report{
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Solver:       backend.Name(),
		SpeedupFloor: benchPR9SpeedupFloor,
	}
	for _, m := range []int{100, 1000} {
		iters := 200
		if m >= 1000 {
			iters = 100
		}
		probe, err := probeChurn(backend, m, iters)
		if err != nil {
			return fmt.Errorf("probe m=%d: %w", m, err)
		}
		log.Printf("m=%-5d incremental %8.0f ns/op, fresh %10.0f ns/op, speedup %6.1fx, max price err %.2e",
			probe.M, probe.IncrementalNsOp, probe.FreshNsOp, probe.Speedup, probe.MaxRelPriceErr)
		rep.Probes = append(rep.Probes, probe)
		if m == 1000 {
			rep.SpeedupM1000 = probe.Speedup
		}
	}
	rep.Pass = rep.SpeedupM1000 >= benchPR9SpeedupFloor
	for _, p := range rep.Probes {
		if p.MaxRelPriceErr > 1e-9 {
			rep.Pass = false
		}
	}

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("creating %s: %w", outDir, err)
	}
	path := filepath.Join(outDir, "BENCH_PR9.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("wrote %s", path)
	if !rep.Pass {
		return fmt.Errorf("acceptance gate failed: speedup at m=1000 is %.1fx, want >= %.0fx (and prices within 1e-9)",
			rep.SpeedupM1000, benchPR9SpeedupFloor)
	}
	return nil
}

// probeChurn runs an alternating join/leave script of iters steps over an
// m-seller prepared game, timing the incremental Reprepare applied to the
// live Prepared, then times the cost it displaces — a full from-scratch
// Precompute over the post-churn roster — in a separate loop. The loops are
// kept apart deliberately: cloning the game mid-script (as an interleaved
// measurement would) marks the cached per-seller vector shared and pushes
// every subsequent step onto the copy-on-write path, which is the clone
// price, not the steady-state incremental price. Joins and leaves
// alternate, so the roster stays within one seller of m throughout.
func probeChurn(backend solve.Backend, m, iters int) (churnProbe, error) {
	probe := churnProbe{M: m, Iterations: iters}
	rng := stat.NewRand(int64(7 + m))
	g := core.PaperGame(m, rng)
	p, err := backend.Precompute(g)
	if err != nil {
		return probe, err
	}

	var incTotal time.Duration
	epoch := p.Epoch()
	for k := 0; k < iters; k++ {
		epoch++
		var d solve.RosterDelta
		if k%2 == 0 {
			d = solve.RosterDelta{
				Epoch:  epoch,
				Join:   true,
				Index:  p.Game().M(),
				Lambda: 0.2 + 0.6*float64(k%7)/7,
				Weight: 1 / float64(m),
			}
		} else {
			d = solve.RosterDelta{Epoch: epoch, Index: (k * 13) % p.Game().M()}
		}
		t0 := time.Now()
		if err := p.Reprepare(d); err != nil {
			return probe, fmt.Errorf("reprepare step %d: %w", k, err)
		}
		incTotal += time.Since(t0)
	}

	// The displaced cost: from-scratch Precomputes over the final roster.
	// The snapshot clone stays outside the timer; the backend's own deep
	// clone inside Precompute is part of the real fresh-path cost and stays
	// in.
	snap := p.Game().Clone()
	var freshTotal time.Duration
	for k := 0; k < iters; k++ {
		t0 := time.Now()
		if _, err := backend.Precompute(snap); err != nil {
			return probe, fmt.Errorf("fresh precompute step %d: %w", k, err)
		}
		freshTotal += time.Since(t0)
	}

	probe.IncrementalNsOp = float64(incTotal.Nanoseconds()) / float64(iters)
	probe.FreshNsOp = float64(freshTotal.Nanoseconds()) / float64(iters)
	if probe.IncrementalNsOp > 0 {
		probe.Speedup = round2(probe.FreshNsOp / probe.IncrementalNsOp)
	}

	// Correctness: after the whole script, the incrementally maintained
	// Prepared must agree with a fresh Precompute over its final roster.
	fresh, err := backend.Precompute(p.Game().Clone())
	if err != nil {
		return probe, err
	}
	buyer := core.PaperBuyer()
	p.SetBuyer(buyer)
	fresh.SetBuyer(buyer)
	got, err := p.Solve(context.Background())
	if err != nil {
		return probe, err
	}
	want, err := fresh.Solve(context.Background())
	if err != nil {
		return probe, err
	}
	probe.MaxRelPriceErr = math.Max(relErr(got.PM, want.PM), relErr(got.PD, want.PD))
	return probe, nil
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
