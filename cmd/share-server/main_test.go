package main

import (
	"strings"
	"testing"
)

func TestSnapshotFlagDeprecation(t *testing.T) {
	if got := snapshotFlagDeprecation(""); got != "" {
		t.Fatalf("no warning expected without -snapshot, got %q", got)
	}
	got := snapshotFlagDeprecation("market.json")
	if !strings.Contains(got, "deprecated") {
		t.Fatalf("warning should say the flag is deprecated, got %q", got)
	}
	if !strings.Contains(got, "market.json") {
		t.Fatalf("warning should echo the configured path, got %q", got)
	}
	if !strings.Contains(got, "-snapshot-dir") {
		t.Fatalf("warning should point at -snapshot-dir, got %q", got)
	}
}
