// Command share-server runs the Share data market as a JSON-over-HTTP
// service. Sellers register with their privacy sensitivity and data, buyers
// post demands, and each demand executes one round of the Stackelberg-Nash
// trading algorithm (Algorithm 1). See internal/httpapi for the endpoint
// reference.
//
// Usage:
//
//	share-server [-addr :8080] [-seed N] [-demo M]
//
// With -demo M the server pre-registers M synthetic sellers so the market is
// immediately tradable:
//
//	share-server -demo 10 &
//	curl -s localhost:8080/v1/quote -d '{"n":200,"v":0.8}'
//	curl -s localhost:8080/v1/trades -d '{"n":200,"v":0.8}'
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"share/internal/httpapi"
	"share/internal/stat"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("share-server: ")

	var (
		addr = flag.String("addr", ":8080", "listen address")
		seed = flag.Int64("seed", 1, "random seed")
		demo = flag.Int("demo", 0, "pre-register this many synthetic sellers")
	)
	flag.Parse()

	srv := httpapi.NewServer(httpapi.Options{Seed: *seed, Logf: log.Printf})
	handler := srv.Handler()

	if *demo > 0 {
		if err := registerDemoSellers(handler, *demo, *seed); err != nil {
			log.Fatalf("demo setup: %v", err)
		}
		log.Printf("pre-registered %d synthetic sellers", *demo)
	}

	httpServer := &http.Server{
		Addr:         *addr,
		Handler:      handler,
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 5 * time.Minute, // Shapley rounds can take a while
	}
	log.Printf("listening on %s", *addr)
	if err := httpServer.ListenAndServe(); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

// registerDemoSellers seeds the market through its own HTTP surface so the
// demo path exercises exactly what external clients would.
func registerDemoSellers(handler http.Handler, n int, seed int64) error {
	rng := stat.NewRand(seed)
	for i := 0; i < n; i++ {
		reg := httpapi.SellerRegistration{
			ID:            fmt.Sprintf("demo-seller-%02d", i+1),
			Lambda:        stat.UniformOpen(rng, 0, 1),
			SyntheticRows: 200,
		}
		body, err := json.Marshal(reg)
		if err != nil {
			return err
		}
		req := httptest.NewRequest(http.MethodPost, "/v1/sellers", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusCreated {
			return fmt.Errorf("registering %s: %d %s", reg.ID, rec.Code, rec.Body.String())
		}
	}
	return nil
}
