// Command share-server runs the Share data market as a JSON-over-HTTP
// service. Sellers register with their privacy sensitivity and data, buyers
// post demands, and each demand executes one round of the Stackelberg-Nash
// trading algorithm (Algorithm 1). See internal/httpapi for the endpoint
// reference.
//
// Usage:
//
//	share-server [-addr :8080] [-seed N] [-demo M] [-snapshot-dir DIR]
//	             [-durability MODE] [-max-body BYTES] [-trade-timeout D]
//	             [-trade-queue N] [-trade-concurrency N] [-drain D]
//	             [-workers N] [-pprof ADDR] [-solver NAME]
//	             [-epsilon-budget ε] [-composition RULE]
//	             [-similarity-discount γ] [-similarity-threshold r]
//
// -epsilon-budget gives every seller in new markets a privacy budget: each
// trade's LDP application charges the seller's per-round ε to a durable
// ledger, composed by -composition (basic sum or the advanced
// strong-composition bound), and a trade that would overrun any
// participant's budget is refused with 409 budget_exhausted until the
// seller is topped up. /v2 market creation overrides both via the spec's
// "epsilon_budget" and "composition" fields. -similarity-discount enables
// similarity-aware pricing: sellers whose data is pairwise redundant above
// -similarity-threshold have their Shapley payouts discounted by up to γ.
//
// -trade-concurrency and -trade-queue set every market's admission
// envelope: at most N trades execute per market while up to Q more wait in
// a bounded queue; trades beyond that answer 429 with a Retry-After hint
// instead of piling onto the write path. /v2 market creation overrides both
// per market via the spec's "trade_concurrency" and "trade_queue" fields.
// During graceful shutdown the pool drains first, so late writes get 503 +
// Retry-After while in-flight rounds finish.
//
// -solver picks the default equilibrium backend (analytic | meanfield |
// general); individual requests override it with a "solver" field on the
// demand body.
//
// -workers fans each trade's Shapley valuation across N workers (0 = one
// worker; results are identical for every value). -pprof serves the Go
// net/http/pprof profiling endpoints on a side listener, kept off the main
// address so profiling can stay firewalled:
//
//	share-server -demo 10 -workers 8 -pprof localhost:6060 &
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
//
// With -demo M the server pre-registers M synthetic sellers so the market is
// immediately tradable:
//
//	share-server -demo 10 &
//	curl -s localhost:8080/v1/quote -d '{"n":200,"v":0.8}'
//	curl -s localhost:8080/v1/trades -d '{"n":200,"v":0.8}'
//	curl -s localhost:8080/v1/metrics
//
// With -snapshot PATH the server restores its default market from PATH on
// boot (when the file exists) and persists it back — via an atomic
// write-temp-then-rename — on graceful shutdown (SIGINT/SIGTERM) and after
// every trade, so a crash loses at most the in-flight round. The flag is
// deprecated in favour of -snapshot-dir and kept as a compatibility shim.
//
// With -snapshot-dir DIR every hosted market persists under DIR: committed
// trades append to a write-ahead log DIR/<id>.wal (group-committed fsyncs)
// that is periodically compacted into DIR/<id>.json, and the whole pool —
// snapshots plus WAL tails — is replayed on boot; a corrupt file is skipped
// with a warning. -durability picks the default commit mode for new markets
// (snapshot | sync | group | async; see internal/pool); individual markets
// override it with a "durability" field on the /v2/markets create body. The
// two snapshot flags are mutually exclusive; prefer -snapshot-dir for
// multi-market (/v2) servers.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux for -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"share/internal/budget"
	"share/internal/httpapi"
	"share/internal/market"
	"share/internal/pool"
	"share/internal/solve"
	"share/internal/stat"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("share-server: ")

	var (
		addr         = flag.String("addr", ":8080", "listen address")
		seed         = flag.Int64("seed", 1, "random seed")
		demo         = flag.Int("demo", 0, "pre-register this many synthetic sellers")
		snapshot     = flag.String("snapshot", "", "deprecated: restore the default market from this file on boot, persist on shutdown and after each trade (use -snapshot-dir)")
		snapshotDir  = flag.String("snapshot-dir", "", "per-market persistence directory: restore snapshots and replay WAL tails from DIR on boot, group-commit trades to DIR/<id>.wal (mutually exclusive with -snapshot)")
		maxBody      = flag.Int64("max-body", 0, "request body cap in bytes (0 = 8 MiB default)")
		tradeTimeout = flag.Duration("trade-timeout", 0, "server-side deadline per trading round (0 = none)")
		drain        = flag.Duration("drain", 2*time.Minute, "graceful-shutdown drain window for in-flight requests")
		workers      = flag.Int("workers", 0, "Shapley valuation worker pool per trade (0 or 1 = one worker; results are identical for every value)")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6060; empty = disabled)")
		tradeQueue   = flag.Int("trade-queue", 0, "per-market trade waiting room: trades beyond -trade-concurrency park here, the rest get 429 + Retry-After (0 = default 64, negative = no waiting room)")
		tradeConc    = flag.Int("trade-concurrency", 0, "max trades executing per market at once (0 = default 1); /v2 market creation overrides via the spec's \"trade_concurrency\" field")
		solver       = flag.String("solver", "", "default equilibrium backend: analytic | meanfield | general (empty = analytic); requests override per-trade via the demand's \"solver\" field")
		durability   = flag.String("durability", "", "default market commit mode with -snapshot-dir: snapshot | sync | group | async (empty = group); /v2 market creation overrides per-market via the spec's \"durability\" field")
		epsBudget    = flag.Float64("epsilon-budget", 0, "default per-seller privacy budget ε for new markets (0 = budgeting disabled); /v2 market creation overrides via the spec's \"epsilon_budget\" field")
		composition  = flag.String("composition", "", "default ε-composition rule for budgeted markets: basic | advanced (empty = basic); /v2 market creation overrides via the spec's \"composition\" field")
		simDiscount  = flag.Float64("similarity-discount", 0, "similarity-aware pricing: max fraction shaved off a fully redundant seller's payout, in (0,1] (0 = disabled)")
		simThreshold = flag.Float64("similarity-threshold", 0.9, "pairwise redundancy at or below which no discount applies, in [0,1); only meaningful with -similarity-discount")
	)
	flag.Parse()

	if _, err := solve.Lookup(*solver); err != nil {
		log.Fatalf("-solver: %v", err)
	}
	if _, err := pool.ParseDurability(*durability); err != nil {
		log.Fatalf("-durability: %v", err)
	}
	if !(*epsBudget >= 0) || math.IsInf(*epsBudget, 0) {
		log.Fatalf("-epsilon-budget: %g is not a finite non-negative ε", *epsBudget)
	}
	if _, err := budget.ParseComposition(*composition); err != nil {
		log.Fatalf("-composition: %v", err)
	}
	if *simDiscount != 0 {
		dc := market.DiscountConfig{Factor: *simDiscount, Threshold: *simThreshold}
		if err := dc.Validate(); err != nil {
			log.Fatalf("-similarity-discount: %v", err)
		}
	}
	if *snapshot != "" && *snapshotDir != "" {
		log.Fatalf("-snapshot and -snapshot-dir are mutually exclusive")
	}
	if msg := snapshotFlagDeprecation(*snapshot); msg != "" {
		log.Printf("%s", msg)
	}

	if *pprofAddr != "" {
		// The pprof handlers register themselves on http.DefaultServeMux at
		// import; the side listener keeps them off the public API address.
		go func() {
			log.Printf("pprof listening on %s (/debug/pprof/)", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	srv := httpapi.NewServer(httpapi.Options{
		Seed:              *seed,
		Logf:              log.Printf,
		MaxBodyBytes:      *maxBody,
		TradeTimeout:      *tradeTimeout,
		Workers:           *workers,
		Solver:            *solver,
		SnapshotDir:       *snapshotDir,
		Durability:        *durability,
		TradeConcurrency:  *tradeConc,
		TradeQueue:        *tradeQueue,
		EpsilonBudget:     *epsBudget,
		Composition:       *composition,
		DiscountFactor:    *simDiscount,
		DiscountThreshold: *simThreshold,
	})
	handler := srv.Handler()

	restored := false
	switch {
	case *snapshot != "":
		switch err := srv.RestoreSnapshot(*snapshot); {
		case err == nil:
			log.Printf("restored market state from %s", *snapshot)
			restored = true
		case errors.Is(err, os.ErrNotExist):
			log.Printf("no snapshot at %s yet; starting empty", *snapshot)
		default:
			log.Fatalf("restoring snapshot: %v", err)
		}
	case *snapshotDir != "":
		ids, err := srv.Pool().RestoreAll()
		if err != nil {
			log.Fatalf("restoring snapshot directory: %v", err)
		}
		if len(ids) > 0 {
			log.Printf("restored %d market(s) from %s: %v", len(ids), *snapshotDir, ids)
		} else {
			log.Printf("no snapshots under %s yet; starting empty", *snapshotDir)
		}
		for _, id := range ids {
			if id == srv.DefaultMarket() {
				restored = true // don't overlay demo sellers on a restored default market
			}
		}
	}

	if *demo > 0 && !restored {
		if err := registerDemoSellers(handler, *demo, *seed); err != nil {
			log.Fatalf("demo setup: %v", err)
		}
		log.Printf("pre-registered %d synthetic sellers", *demo)
	}

	httpServer := &http.Server{
		Addr:         *addr,
		Handler:      withSnapshotAfterTrade(handler, srv, *snapshot),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 5 * time.Minute, // Shapley rounds can take a while
	}

	// Signal-driven lifecycle: serve until SIGINT/SIGTERM, then drain
	// in-flight requests and persist the market before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- httpServer.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
		stop()
		// Refuse new writes right away: parked and late trades answer 503 +
		// Retry-After instead of hanging into a dying process, while rounds
		// already executing finish and quotes keep serving through the drain.
		srv.Pool().Drain()
		log.Printf("shutdown signal received; draining (up to %s)", *drain)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpServer.Shutdown(drainCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	switch {
	case *snapshot != "":
		if err := srv.SaveSnapshot(*snapshot); err != nil {
			log.Fatalf("saving snapshot: %v", err)
		}
		log.Printf("market state saved to %s", *snapshot)
	case *snapshotDir != "":
		if err := srv.Pool().SaveAll(); err != nil {
			log.Fatalf("saving snapshot directory: %v", err)
		}
		log.Printf("all markets saved under %s", *snapshotDir)
	}
	// Terminal close: waits out any straggling rounds and flushes async WAL
	// tails so an orderly exit never loses acknowledged trades.
	srv.Pool().Close()
	log.Printf("bye")
}

// snapshotFlagDeprecation returns the one-line warning emitted when the
// deprecated -snapshot flag is in use, or "" when it isn't. The flag keeps
// working so existing deployments don't break, but -snapshot-dir is the
// supported path: it adds the write-ahead log, group commit and /v2
// multi-market persistence.
func snapshotFlagDeprecation(path string) string {
	if path == "" {
		return ""
	}
	return fmt.Sprintf("warning: -snapshot %s is deprecated; use -snapshot-dir DIR for WAL-backed persistence", path)
}

// withSnapshotAfterTrade persists the market after every successful trade
// so a crash (as opposed to a graceful shutdown) loses at most the round in
// flight. Saves are serialized by the server's own write lock.
func withSnapshotAfterTrade(h http.Handler, srv *httpapi.Server, path string) http.Handler {
	if path == "" {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.ServeHTTP(w, r)
		if r.Method == http.MethodPost && r.URL.Path == "/v1/trades" {
			if err := srv.SaveSnapshot(path); err != nil {
				log.Printf("snapshot after trade: %v", err)
			}
		}
	})
}

// registerDemoSellers seeds the market through its own HTTP surface so the
// demo path exercises exactly what external clients would.
func registerDemoSellers(handler http.Handler, n int, seed int64) error {
	rng := stat.NewRand(seed)
	for i := 0; i < n; i++ {
		reg := httpapi.SellerRegistration{
			ID:            fmt.Sprintf("demo-seller-%02d", i+1),
			Lambda:        stat.UniformOpen(rng, 0, 1),
			SyntheticRows: 200,
		}
		body, err := json.Marshal(reg)
		if err != nil {
			return err
		}
		req := httptest.NewRequest(http.MethodPost, "/v1/sellers", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusCreated {
			return fmt.Errorf("registering %s: %d %s", reg.ID, rec.Code, rec.Body.String())
		}
	}
	return nil
}
