// Command share-client talks to a running share-server from the command
// line: register sellers, fetch quotes, execute trades, inspect the ledger
// and weights.
//
// Usage:
//
//	share-client [-server URL] <command> [flags]
//
// Commands:
//
//	health                          server liveness and market state
//	register -id ID -lambda λ [-rows N]   register a synthetic-data seller
//	sellers                         list sellers with weights
//	quote  [-n N] [-v V] [...]      solve the game without trading
//	trade  [-n N] [-v V] [...]      execute one trading round
//	trades                          print the transaction ledger
//	weights                         print the broker's dataset weights
//
// Example session (against `share-server -demo 10`):
//
//	share-client quote -n 200 -v 0.8
//	share-client trade -n 200 -v 0.8
//	share-client trades
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"share/internal/httpapi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("share-client: ")

	server := flag.String("server", "http://localhost:8080", "share-server base URL")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}

	client := httpapi.NewClient(*server, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	cmd := flag.Arg(0)
	args := flag.Args()[1:]
	if err := dispatch(ctx, client, cmd, args); err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: share-client [-server URL] <command> [flags]

commands:
  health      server liveness and market state
  register    register a seller: -id ID -lambda λ [-rows N]
  sellers     list registered sellers
  quote       equilibrium quote: [-n N] [-v V] [-theta1 θ] [-rho1 ρ] [-rho2 ρ]
  trade       execute one round (same flags as quote)
  trades      print the transaction ledger
  weights     print broker dataset weights
`)
}

func dispatch(ctx context.Context, c *httpapi.Client, cmd string, args []string) error {
	switch cmd {
	case "health":
		h, err := c.Health(ctx)
		if err != nil {
			return err
		}
		return printJSON(h)
	case "register":
		fs := flag.NewFlagSet("register", flag.ExitOnError)
		id := fs.String("id", "", "seller id (required)")
		lambda := fs.Float64("lambda", 0.5, "privacy sensitivity λ")
		rows := fs.Int("rows", 200, "synthetic rows to mint")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if *id == "" {
			return fmt.Errorf("register: -id is required")
		}
		info, err := c.RegisterSeller(ctx, httpapi.SellerRegistration{
			ID: *id, Lambda: *lambda, SyntheticRows: *rows,
		})
		if err != nil {
			return err
		}
		return printJSON(info)
	case "sellers":
		s, err := c.Sellers(ctx)
		if err != nil {
			return err
		}
		return printJSON(s)
	case "quote", "trade":
		d, err := parseDemand(cmd, args)
		if err != nil {
			return err
		}
		if cmd == "quote" {
			q, err := c.Quote(ctx, d)
			if err != nil {
				return err
			}
			return printJSON(q)
		}
		tr, err := c.Trade(ctx, d)
		if err != nil {
			return err
		}
		return printJSON(tr)
	case "trades":
		ts, err := c.Trades(ctx)
		if err != nil {
			return err
		}
		return printJSON(ts)
	case "weights":
		w, err := c.Weights(ctx)
		if err != nil {
			return err
		}
		return printJSON(w)
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func parseDemand(cmd string, args []string) (httpapi.Demand, error) {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	n := fs.Float64("n", 500, "demanded data quantity N")
	v := fs.Float64("v", 0.8, "required performance v")
	theta1 := fs.Float64("theta1", 0, "dataset-quality concern θ₁ (0 = server default)")
	rho1 := fs.Float64("rho1", 0, "dataset-quality sensitivity ρ₁ (0 = server default)")
	rho2 := fs.Float64("rho2", 0, "performance sensitivity ρ₂ (0 = server default)")
	if err := fs.Parse(args); err != nil {
		return httpapi.Demand{}, err
	}
	return httpapi.Demand{N: *n, V: *v, Theta1: *theta1, Rho1: *rho1, Rho2: *rho2}, nil
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
