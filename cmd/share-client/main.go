// Command share-client talks to a running share-server from the command
// line: manage markets, register sellers, fetch quotes, execute trades,
// inspect the ledger and weights.
//
// Usage:
//
//	share-client [-server URL] [-market ID] <command> [flags]
//
// Commands:
//
//	health                          server liveness and default-market state
//	markets                         list hosted markets
//	create-market -id ID [...]      create a market
//	delete-market -id ID            drain and delete a market
//	register -id ID -lambda λ [-rows N]   register a synthetic-data seller
//	add-seller                      alias for register (roster-churn phrasing)
//	remove-seller -id ID            release a seller from the roster
//	seller -id ID                   fetch one seller resource (weight, ε budget)
//	topup-budget -id ID -add X      grant a seller X more ε budget
//	sellers  [-limit N] [-offset N] list sellers with weights
//	watch                           follow the market's live event stream (SSE)
//	quote  [-n N] [-v V] [...]      solve the game without trading
//	quotes -demands JSON            solve a batch of demands concurrently
//	trade  [-n N] [-v V] [...]      execute one trading round
//	trades [-limit N] [-offset N]   print the transaction ledger
//	weights                         print the broker's dataset weights
//
// With -market ID the per-market commands go through the /v2 resource API
// against that market; without it they use the flat /v1 aliases (the
// server's default market).
//
// Example session (against `share-server -demo 10`):
//
//	share-client quote -n 200 -v 0.8
//	share-client create-market -id alpha
//	share-client -market alpha register -id s1 -lambda 0.4
//	share-client -market alpha quotes -demands '[{"n":200,"v":0.8},{"n":400,"v":0.9}]'
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"share/internal/httpapi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("share-client: ")

	server := flag.String("server", "http://localhost:8080", "share-server base URL")
	marketID := flag.String("market", "", "operate on this market via /v2 (empty = the default market via /v1)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}

	client := httpapi.NewClient(*server, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	cmd := flag.Arg(0)
	args := flag.Args()[1:]
	if err := dispatch(ctx, client, *marketID, cmd, args); err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: share-client [-server URL] [-market ID] <command> [flags]

commands:
  health         server liveness and default-market state
  markets        list hosted markets
  create-market  create a market: -id ID [-solver NAME] [-seed N] [-durability MODE]
                 [-epsilon-budget ε] [-composition basic|advanced]
  delete-market  drain and delete a market: -id ID
  register       register a seller: -id ID -lambda λ [-rows N]
  add-seller     alias for register
  remove-seller  release a seller from the roster: -id ID
  seller         fetch one seller resource (weight, roster epoch, ε budget): -id ID
  topup-budget   grant a seller more ε budget: -id ID -add X
  sellers        list registered sellers: [-limit N] [-offset N]
  watch          follow the market's live event stream until interrupted
  quote          equilibrium quote: [-n N] [-v V] [-theta1 θ] [-rho1 ρ] [-rho2 ρ] [-solver NAME]
  quotes         batch quotes: -demands '[{"n":...,"v":...},...]' (or "-" for stdin)
  trade          execute one round (same flags as quote, plus -product)
  trades         print the transaction ledger: [-limit N] [-offset N]
  weights        print broker dataset weights

-market ID routes the per-market commands through /v2/markets/ID; without
it they use the flat /v1 aliases (the server's default market).
`)
}

func dispatch(ctx context.Context, c *httpapi.Client, marketID, cmd string, args []string) error {
	switch cmd {
	case "health":
		h, err := c.Health(ctx)
		if err != nil {
			return err
		}
		return printJSON(h)
	case "markets":
		ms, err := c.Markets(ctx)
		if err != nil {
			return err
		}
		return printJSON(ms)
	case "create-market":
		fs := flag.NewFlagSet("create-market", flag.ExitOnError)
		id := fs.String("id", "", "market id (required)")
		solver := fs.String("solver", "", "equilibrium backend for the market (empty = server default)")
		seed := fs.Int64("seed", 0, "pin the market's random seed")
		durability := fs.String("durability", "", "commit mode for the market: snapshot | sync | group | async (empty = server default)")
		epsBudget := fs.Float64("epsilon-budget", 0, "per-seller privacy budget ε (explicit 0 disables budgeting; unset = server default)")
		composition := fs.String("composition", "", "ε-composition rule: basic | advanced (empty = basic)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if *id == "" {
			return fmt.Errorf("create-market: -id is required")
		}
		spec := httpapi.MarketSpec{ID: *id, Solver: *solver, Durability: *durability, Composition: *composition}
		if flagSet(fs, "seed") {
			spec.Seed = seed
		}
		if flagSet(fs, "epsilon-budget") {
			spec.EpsilonBudget = epsBudget
		}
		info, err := c.CreateMarket(ctx, spec)
		if err != nil {
			return err
		}
		return printJSON(info)
	case "delete-market":
		fs := flag.NewFlagSet("delete-market", flag.ExitOnError)
		id := fs.String("id", "", "market id (required)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if *id == "" {
			return fmt.Errorf("delete-market: -id is required")
		}
		if err := c.DeleteMarket(ctx, *id); err != nil {
			return err
		}
		fmt.Printf("market %q deleted\n", *id)
		return nil
	case "register", "add-seller":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		id := fs.String("id", "", "seller id (required)")
		lambda := fs.Float64("lambda", 0.5, "privacy sensitivity λ")
		rows := fs.Int("rows", 200, "synthetic rows to mint")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if *id == "" {
			return fmt.Errorf("register: -id is required")
		}
		reg := httpapi.SellerRegistration{ID: *id, Lambda: *lambda, SyntheticRows: *rows}
		var (
			info httpapi.SellerInfo
			err  error
		)
		if marketID != "" {
			info, err = c.RegisterSellerIn(ctx, marketID, reg)
		} else {
			info, err = c.RegisterSeller(ctx, reg)
		}
		if err != nil {
			return err
		}
		return printJSON(info)
	case "remove-seller":
		fs := flag.NewFlagSet("remove-seller", flag.ExitOnError)
		id := fs.String("id", "", "seller id (required)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if *id == "" {
			return fmt.Errorf("remove-seller: -id is required")
		}
		if err := c.RemoveSellerIn(ctx, orDefault(marketID), *id); err != nil {
			return err
		}
		fmt.Printf("seller %q released\n", *id)
		return nil
	case "seller":
		fs := flag.NewFlagSet("seller", flag.ExitOnError)
		id := fs.String("id", "", "seller id (required)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if *id == "" {
			return fmt.Errorf("seller: -id is required")
		}
		info, err := c.SellerIn(ctx, orDefault(marketID), *id)
		if err != nil {
			return err
		}
		return printJSON(info)
	case "topup-budget":
		fs := flag.NewFlagSet("topup-budget", flag.ExitOnError)
		id := fs.String("id", "", "seller id (required)")
		add := fs.Float64("add", 0, "ε to grant on top of the seller's budget (required, > 0)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if *id == "" {
			return fmt.Errorf("topup-budget: -id is required")
		}
		info, err := c.TopUpBudgetIn(ctx, orDefault(marketID), *id, *add)
		if err != nil {
			return err
		}
		return printJSON(info)
	case "watch":
		// The stream is open-ended: bypass the dispatch deadline and run
		// until the user interrupts (^C) or the server closes the stream.
		wctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		err := c.Watch(wctx, orDefault(marketID), func(ev httpapi.StreamEvent) error {
			return printJSON(ev)
		})
		if err == context.Canceled || wctx.Err() != nil {
			return nil
		}
		return err
	case "sellers":
		page, err := parsePage(cmd, args)
		if err != nil {
			return err
		}
		var s []httpapi.SellerInfo
		if marketID != "" || page != (httpapi.Page{}) {
			s, err = c.SellersIn(ctx, orDefault(marketID), page)
		} else {
			s, err = c.Sellers(ctx)
		}
		if err != nil {
			return err
		}
		return printJSON(s)
	case "quote", "trade":
		d, err := parseDemand(cmd, args)
		if err != nil {
			return err
		}
		if cmd == "quote" {
			if marketID != "" {
				qs, err := c.QuoteBatch(ctx, marketID, []httpapi.Demand{d})
				if err != nil {
					return err
				}
				return printJSON(qs[0])
			}
			q, err := c.Quote(ctx, d)
			if err != nil {
				return err
			}
			return printJSON(q)
		}
		var tr httpapi.TradeResult
		if marketID != "" {
			tr, err = c.TradeIn(ctx, marketID, d)
		} else {
			tr, err = c.Trade(ctx, d)
		}
		if err != nil {
			return err
		}
		return printJSON(tr)
	case "quotes":
		fs := flag.NewFlagSet("quotes", flag.ExitOnError)
		raw := fs.String("demands", "", `JSON array of demands, e.g. '[{"n":200,"v":0.8}]' ("-" reads stdin; required)`)
		if err := fs.Parse(args); err != nil {
			return err
		}
		demands, err := parseDemands(*raw)
		if err != nil {
			return err
		}
		qs, err := c.QuoteBatch(ctx, orDefault(marketID), demands)
		if err != nil {
			return err
		}
		return printJSON(qs)
	case "trades":
		page, err := parsePage(cmd, args)
		if err != nil {
			return err
		}
		var ts []httpapi.TradeResult
		if marketID != "" || page != (httpapi.Page{}) {
			ts, err = c.TradesIn(ctx, orDefault(marketID), page)
		} else {
			ts, err = c.Trades(ctx)
		}
		if err != nil {
			return err
		}
		return printJSON(ts)
	case "weights":
		var (
			w   []float64
			err error
		)
		if marketID != "" {
			w, err = c.WeightsIn(ctx, marketID)
		} else {
			w, err = c.Weights(ctx)
		}
		if err != nil {
			return err
		}
		return printJSON(w)
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// orDefault maps an unset -market onto the server's default-market ID for
// commands that only exist on /v2.
func orDefault(marketID string) string {
	if marketID == "" {
		return httpapi.DefaultMarketID
	}
	return marketID
}

// flagSet reports whether the named flag was passed explicitly (0 is a
// valid seed and a meaningful ε budget — "disable" — so default values
// cannot signal absence).
func flagSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func parsePage(cmd string, args []string) (httpapi.Page, error) {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	limit := fs.Int("limit", 0, "cap the listing (0 = no limit)")
	offset := fs.Int("offset", 0, "skip the first N items")
	if err := fs.Parse(args); err != nil {
		return httpapi.Page{}, err
	}
	return httpapi.Page{Limit: *limit, Offset: *offset}, nil
}

func parseDemand(cmd string, args []string) (httpapi.Demand, error) {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	n := fs.Float64("n", 500, "demanded data quantity N")
	v := fs.Float64("v", 0.8, "required performance v")
	theta1 := fs.Float64("theta1", 0, "dataset-quality concern θ₁ (0 = server default)")
	rho1 := fs.Float64("rho1", 0, "dataset-quality sensitivity ρ₁ (0 = server default)")
	rho2 := fs.Float64("rho2", 0, "performance sensitivity ρ₂ (0 = server default)")
	product := fs.String("product", "", "data product for trades: ols|ridge|logistic|mean|histogram (empty = ols)")
	solver := fs.String("solver", "", "equilibrium backend for this request (empty = market default)")
	if err := fs.Parse(args); err != nil {
		return httpapi.Demand{}, err
	}
	return httpapi.Demand{
		N: *n, V: *v, Theta1: *theta1, Rho1: *rho1, Rho2: *rho2,
		Product: *product, Solver: *solver,
	}, nil
}

// parseDemands decodes the -demands JSON array; "-" reads it from stdin.
func parseDemands(raw string) ([]httpapi.Demand, error) {
	if raw == "" {
		return nil, fmt.Errorf("quotes: -demands is required")
	}
	if raw == "-" {
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, fmt.Errorf("quotes: reading stdin: %w", err)
		}
		raw = string(b)
	}
	dec := json.NewDecoder(strings.NewReader(raw))
	dec.DisallowUnknownFields()
	var demands []httpapi.Demand
	if err := dec.Decode(&demands); err != nil {
		return nil, fmt.Errorf("quotes: decoding -demands: %w", err)
	}
	return demands, nil
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
