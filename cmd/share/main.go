// Command share runs Stackelberg-Nash data-market simulations from the
// command line: it solves the three-stage game for a configurable buyer
// demand, verifies the Stackelberg-Nash Equilibrium, optionally executes
// full trading rounds (LDP data transaction, product manufacture, Shapley
// weight updates) on synthetic CCPP data, and prints a human-readable
// report.
//
// Usage:
//
//	share [flags]
//
//	-m int        number of sellers (default 100)
//	-n float      demanded data quantity N (default 500)
//	-v float      required product performance v (default 0.8)
//	-theta1 float buyer's dataset-quality concern θ₁ (default 0.5)
//	-rho1 float   buyer's dataset-quality sensitivity ρ₁ (default 0.5)
//	-rho2 float   buyer's performance sensitivity ρ₂ (default 250)
//	-rounds int   full market rounds to execute (0 = solve only)
//	-warmup int   dummy-buyer warm-up iterations before trading (default 0)
//	-seed int     random seed (default 20240601)
//	-broker-lead  also solve the broker-leading market variant
//	-json         emit machine-readable JSON instead of text
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"share/internal/core"
	"share/internal/experiments"
	"share/internal/market"
	"share/internal/stat"
	"share/internal/translog"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("share: ")

	var (
		m          = flag.Int("m", core.PaperM, "number of sellers")
		n          = flag.Float64("n", 500, "demanded data quantity N")
		v          = flag.Float64("v", 0.8, "required product performance v")
		theta1     = flag.Float64("theta1", 0.5, "buyer's dataset-quality concern θ₁")
		rho1       = flag.Float64("rho1", 0.5, "buyer's dataset-quality sensitivity ρ₁")
		rho2       = flag.Float64("rho2", 250, "buyer's performance sensitivity ρ₂")
		rounds     = flag.Int("rounds", 0, "full market rounds to execute (0 = solve only)")
		warmup     = flag.Int("warmup", 0, "dummy-buyer warm-up iterations before trading")
		seed       = flag.Int64("seed", experiments.DefaultSeed, "random seed")
		brokerLead = flag.Bool("broker-lead", false, "also solve the broker-leading variant")
		analyze    = flag.Bool("analyze", false, "print comparative statics and the truthfulness analysis")
		asJSON     = flag.Bool("json", false, "emit JSON output")
	)
	flag.Parse()

	if err := run(*m, *n, *v, *theta1, *rho1, *rho2, *rounds, *warmup, *seed, *brokerLead, *analyze, *asJSON); err != nil {
		log.Fatal(err)
	}
}

type report struct {
	Equilibrium  *core.Profile          `json:"equilibrium"`
	MaxDeviation float64                `json:"max_deviation_gain"`
	BrokerLead   *core.Profile          `json:"broker_leading,omitempty"`
	Rounds       []*market.Transaction  `json:"rounds,omitempty"`
	CostFit      *translog.Params       `json:"refit_cost_params,omitempty"`
	Game         map[string]interface{} `json:"game"`
}

func run(m int, n, v, theta1, rho1, rho2 float64, rounds, warmup int, seed int64, brokerLead, analyze, asJSON bool) error {
	rng := stat.NewRand(seed)
	g := core.PaperGame(m, rng)
	g.Buyer.N = n
	g.Buyer.V = v
	g.Buyer.Theta1, g.Buyer.Theta2 = theta1, 1-theta1
	g.Buyer.Rho1, g.Buyer.Rho2 = rho1, rho2
	if err := g.Validate(); err != nil {
		return err
	}

	p, err := g.Solve()
	if err != nil {
		return fmt.Errorf("solving game: %w", err)
	}
	dev := g.VerifySNE(p)

	rep := &report{
		Equilibrium:  p,
		MaxDeviation: dev.MaxGain(),
		Game: map[string]interface{}{
			"m": m, "n": n, "v": v,
			"theta1": theta1, "rho1": rho1, "rho2": rho2, "seed": seed,
		},
	}

	if brokerLead {
		bl, err := g.SolveBrokerLeading(0)
		if err != nil {
			return fmt.Errorf("solving broker-leading variant: %w", err)
		}
		rep.BrokerLead = bl
	}

	if rounds > 0 || warmup > 0 {
		mkt, _, err := experiments.BuildCCPPMarket(g, rng, seed)
		if err != nil {
			return fmt.Errorf("building market: %w", err)
		}
		if warmup > 0 {
			if err := mkt.Warmup(g.Buyer, warmup); err != nil {
				return fmt.Errorf("warm-up: %w", err)
			}
		}
		for r := 0; r < rounds; r++ {
			if _, err := mkt.RunRound(g.Buyer); err != nil {
				return fmt.Errorf("round %d: %w", r+1, err)
			}
		}
		rep.Rounds = mkt.Ledger()
		if obs := mkt.CostObservations(); len(obs) >= 6 {
			if fit, err := translog.Fit(obs); err == nil {
				rep.CostFit = &fit
			}
		}
	}

	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	printText(rep, g)
	if analyze {
		if err := printAnalysis(g, p); err != nil {
			return err
		}
	}
	return nil
}

// printAnalysis reports the comparative statics and truthfulness analytics
// at the solved equilibrium.
func printAnalysis(g *core.Game, p *core.Profile) error {
	fmt.Println()
	fmt.Println("Comparative statics (equilibrium price derivatives)")
	th := g.SensitivityTheta1()
	r1 := g.SensitivityRho1()
	sv, err := g.SensitivityV()
	if err != nil {
		return err
	}
	l0, err := g.SensitivityLambda(0)
	if err != nil {
		return err
	}
	fmt.Printf("  ∂p^M*/∂θ₁ = %+.5g   ∂p^D*/∂θ₁ = %+.5g\n", th.DPM, th.DPD)
	fmt.Printf("  ∂p^M*/∂ρ₁ = %+.5g   ∂p^M*/∂ρ₂ = 0 (exactly)\n", r1.DPM)
	fmt.Printf("  ∂p^M*/∂v  = %+.5g   ∂p^M*/∂λ₁ = %+.5g   ∂p^M*/∂ωᵢ = 0 (exactly)\n", sv.DPM, l0.DPM)
	fmt.Printf("  elasticity of p^M* in θ₁: %.4f\n",
		core.Elasticity(g.Buyer.Theta1, p.PM, th.DPM))

	fmt.Println()
	fmt.Println("Truthfulness (seller S₁ misreporting her privacy sensitivity)")
	for _, f := range []float64{0.5, 0.9, 1.1, 2} {
		out, err := g.Misreport(0, f)
		if err != nil {
			return err
		}
		fmt.Printf("  report %.1f·λ₁: profit %+.3e (gain %+.3e)\n",
			f, out.RealizedProfit, out.Gain)
	}
	best, err := g.BestMisreport(0, 0, 0)
	if err != nil {
		return err
	}
	fmt.Printf("  best misreport factor %.4f, gain %+.3e — approximately strategy-proof\n",
		best.Factor, best.Gain)
	return nil
}

func printText(rep *report, g *core.Game) {
	p := rep.Equilibrium
	fmt.Println("Stackelberg-Nash Equilibrium")
	fmt.Println("============================")
	fmt.Printf("  product price p^M* : %.6g\n", p.PM)
	fmt.Printf("  data price    p^D* : %.6g\n", p.PD)
	fmt.Printf("  fidelity τ₁*/τ̄    : %.6g / %.6g\n", p.Tau[0], mean(p.Tau))
	fmt.Printf("  dataset quality q^D: %.6g   product quality q^M: %.6g\n", p.QD, p.QM)
	fmt.Println()
	fmt.Println("Profits")
	fmt.Printf("  buyer  Φ : %.6g\n", p.BuyerProfit)
	fmt.Printf("  broker Ω : %.6g\n", p.BrokerProfit)
	fmt.Printf("  sellers Σ: %.6g (S₁: %.6g)\n", sum(p.SellerProfits), p.SellerProfits[0])
	fmt.Printf("  max unilateral deviation gain: %.3g (≤0 ⇒ SNE verified)\n", rep.MaxDeviation)

	if rep.BrokerLead != nil {
		bl := rep.BrokerLead
		fmt.Println()
		fmt.Println("Broker-leading variant")
		fmt.Printf("  p^M: %.6g  p^D: %.6g  Φ: %.6g  Ω: %.6g\n",
			bl.PM, bl.PD, bl.BuyerProfit, bl.BrokerProfit)
	}

	for _, tx := range rep.Rounds {
		fmt.Println()
		fmt.Printf("Round %d\n", tx.Round)
		fmt.Printf("  payment: %.6g  manufacturing cost: %.6g\n", tx.Payment, tx.ManufacturingCost)
		fmt.Printf("  product performance: %.4f  RMSE: %.4g\n",
			tx.Metrics.Performance, tx.Metrics.Detail["rmse"])
		fmt.Printf("  phase times: strategy %v, transaction %v, production %v, shapley %v\n",
			tx.Timings.Strategy, tx.Timings.DataTransaction, tx.Timings.Production, tx.Timings.WeightUpdate)
	}
	if rep.CostFit != nil {
		fmt.Println()
		fmt.Printf("Refit translog cost parameters from %d ledger records:\n", len(rep.Rounds))
		fmt.Printf("  σ = [%.4g %.4g %.4g %.4g %.4g %.4g]\n",
			rep.CostFit.Sigma0, rep.CostFit.Sigma1, rep.CostFit.Sigma2,
			rep.CostFit.Sigma3, rep.CostFit.Sigma4, rep.CostFit.Sigma5)
	}
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return sum(xs) / float64(len(xs))
}
