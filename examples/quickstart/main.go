// Quickstart: solve one Stackelberg-Nash data-market game end to end.
//
// This example builds the paper's default market (§6.1) — one buyer, one
// broker, 100 sellers with random privacy sensitivities — solves the
// three-stage game by backward induction, verifies the equilibrium, and
// shows what each participant earns and how the trade would settle.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"share/internal/core"
	"share/internal/ldp"
	"share/internal/stat"
)

func main() {
	log.SetFlags(0)

	// 1. Assemble the game. PaperGame gives the evaluation defaults:
	//    N = 500 data pieces, required performance v = 0.8, balanced
	//    utility weights θ₁ = θ₂ = 0.5, and λᵢ ~ U(0,1) privacy
	//    sensitivities for m = 100 sellers.
	rng := stat.NewRand(42)
	game := core.PaperGame(100, rng)

	// 2. Solve the three-stage game: Stage 1 gives the buyer's product
	//    price, Stage 2 the broker's data price, Stage 3 the sellers'
	//    inner Nash equilibrium fidelities.
	profile, err := game.Solve()
	if err != nil {
		log.Fatalf("solving: %v", err)
	}

	fmt.Println("Equilibrium strategy profile ⟨p^M*, p^D*, τ*⟩")
	fmt.Printf("  product price p^M* = %.5f  (the buyer's strategy)\n", profile.PM)
	fmt.Printf("  data price    p^D* = %.5f  (the broker's strategy)\n", profile.PD)
	fmt.Printf("  fidelity τ₁*       = %.5f  (seller S₁'s strategy)\n\n", profile.Tau[0])

	// 3. The equilibrium allocation: how many of the N = 500 pieces each
	//    seller wins in the fidelity competition (Eq. 13), and what ε-LDP
	//    budget her chosen fidelity implies (Eq. 10).
	fmt.Println("Seller S₁'s market outcome")
	fmt.Printf("  allocation χ₁ = %.2f data pieces\n", profile.Chi[0])
	fmt.Printf("  privacy budget ε₁ = %.5f (from τ₁ via the fidelity map)\n", ldp.EpsilonForFidelity(profile.Tau[0]))
	fmt.Printf("  compensation p^D·χ₁τ₁ = %.6f\n\n", profile.PD*profile.Chi[0]*profile.Tau[0])

	// 4. Everyone profits at equilibrium.
	var sellerTotal float64
	for _, s := range profile.SellerProfits {
		sellerTotal += s
	}
	fmt.Println("Profits (all maximized simultaneously)")
	fmt.Printf("  buyer   Φ = %.5f\n", profile.BuyerProfit)
	fmt.Printf("  broker  Ω = %.5f\n", profile.BrokerProfit)
	fmt.Printf("  sellers Σψ = %.5f\n\n", sellerTotal)

	// 5. Verify the Stackelberg-Nash Equilibrium (Def. 4.2): no participant
	//    can gain by unilaterally deviating.
	if err := game.CheckSNE(profile, 0); err != nil {
		log.Fatalf("not an equilibrium: %v", err)
	}
	report := game.VerifySNE(profile)
	fmt.Printf("SNE verified: best unilateral deviation gains %.2e (buyer), %.2e (broker)\n",
		report.BuyerGain, report.BrokerGain)
}
