// Multi-round dynamics: weight evolution across repeated transactions.
//
// The broker's dataset weights ω encode each seller's historical
// contribution and are refreshed after every round with the paper's rule
// ω' = 0.2·ω + 0.8·SV (§5.2). This example runs a sequence of buyers
// through the same market — first the §6.1 dummy-buyer warm-up, then four
// genuine buyers with different demands — and traces how the weights, the
// equilibrium prices, and the broker's ledger evolve. Finally it refits the
// broker's translog cost parameters from the accumulated ledger, the
// parameter-fitting extension the paper's conclusion calls out.
//
// Run with:
//
//	go run ./examples/multiround
package main

import (
	"fmt"
	"log"

	"share/internal/core"
	"share/internal/dataset"
	"share/internal/market"
	"share/internal/stat"
	"share/internal/translog"
)

func main() {
	log.SetFlags(0)
	rng := stat.NewRand(99)

	// Twelve sellers; give the first three conspicuously better (cleaner)
	// data by sorting the corpus so quality concentrates up front.
	full := dataset.SyntheticCCPP(1700, rng)
	train, test := full.Split(1440)
	chunks, err := dataset.PartitionEqual(train.Clone(), 12)
	if err != nil {
		log.Fatal(err)
	}
	sellers := make([]*market.Seller, 12)
	for i := range sellers {
		sellers[i] = &market.Seller{
			ID:     fmt.Sprintf("seller-%02d", i+1),
			Lambda: stat.UniformOpen(rng, 0.2, 0.9),
			Data:   chunks[i],
		}
	}

	mkt, err := market.New(sellers, market.Config{
		Cost:    translog.PaperDefaults(),
		TestSet: test,
		Update:  &market.WeightUpdate{Retain: 0.2, Permutations: 30, TruncateTol: 0.005},
		Seed:    99,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Warm-up: dummy-buyer iterations to move weights off uniform (§6.1
	// uses five).
	warmBuyer := core.PaperBuyer()
	warmBuyer.N = 600
	fmt.Println("Warm-up: 5 dummy-buyer rounds to stabilize weights…")
	if err := mkt.Warmup(warmBuyer, 5); err != nil {
		log.Fatal(err)
	}
	printWeights("after warm-up", mkt.Weights())

	// A parade of genuine buyers with different demands.
	buyers := []struct {
		label string
		n     float64
		v     float64
		th1   float64
	}{
		{"small exploratory buyer", 300, 0.70, 0.5},
		{"quality-obsessed buyer", 600, 0.80, 0.8},
		{"bulk buyer", 1200, 0.75, 0.4},
		{"performance-demanding buyer", 600, 0.92, 0.5},
		{"budget buyer", 200, 0.55, 0.5},
		{"mid-market buyer", 850, 0.65, 0.6},
		{"premium buyer", 1500, 0.88, 0.7},
	}
	for _, b := range buyers {
		buyer := core.Buyer{N: b.n, V: b.v, Theta1: b.th1, Theta2: 1 - b.th1, Rho1: 0.5, Rho2: 250}
		tx, err := mkt.RunRound(buyer)
		if err != nil {
			log.Fatalf("%s: %v", b.label, err)
		}
		fmt.Printf("\nRound %d — %s (N=%.0f, v=%.2f, θ₁=%.1f)\n", tx.Round, b.label, b.n, b.v, b.th1)
		fmt.Printf("  p^M*=%.5f  p^D*=%.5f  payment=%.5f  broker profit=%.5f\n",
			tx.Profile.PM, tx.Profile.PD, tx.Payment, tx.Profile.BrokerProfit)
		top, w := argmaxF(tx.Weights)
		fmt.Printf("  weight leader: %s (ω=%.4f)\n", sellers[top].ID, w)
	}

	printWeights("\nfinal", mkt.Weights())

	// Parameter-fitting extension: recover the broker's translog σ from
	// the ledger's (N, v, cost) records.
	obs := mkt.CostObservations()
	fmt.Printf("\nRefitting translog cost parameters from %d ledger records…\n", len(obs))
	fit, err := translog.Fit(obs)
	if err != nil {
		// Four distinct (N, v) pairs cannot identify six coefficients —
		// warm-up rounds share one demand. Report rather than fail.
		fmt.Printf("  fit not identified from this ledger: %v\n", err)
		return
	}
	truth := translog.PaperDefaults()
	fmt.Printf("  true σ₁=%.3f σ₂=%.3f — refit σ₁=%.3f σ₂=%.3f (RMSE %.2e in log-cost)\n",
		truth.Sigma1, truth.Sigma2, fit.Sigma1, fit.Sigma2, translog.FitError(fit, obs))
}

func printWeights(label string, w []float64) {
	fmt.Printf("%s weights:", label)
	for _, x := range w {
		fmt.Printf(" %.3f", x)
	}
	fmt.Println()
}

func argmaxF(xs []float64) (int, float64) {
	bi, bv := 0, xs[0]
	for i, x := range xs[1:] {
		if x > bv {
			bi, bv = i+1, x
		}
	}
	return bi, bv
}
