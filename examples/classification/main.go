// Classification market: alternative data products.
//
// The paper leaves the product form open ("from simple data aggregation to
// deep learning models", §5.2). This example trades two non-regression
// products through the identical market mechanism: a logistic classifier
// ("will the plant produce above-median output?") and an
// aggregate-statistics product (per-feature means). Only the product builder
// changes — prices, fidelities and allocations still come from the same
// three-stage Stackelberg-Nash game.
//
// Run with:
//
//	go run ./examples/classification
package main

import (
	"fmt"
	"log"

	"share/internal/core"
	"share/internal/dataset"
	"share/internal/market"
	"share/internal/product"
	"share/internal/stat"
	"share/internal/translog"
)

func main() {
	log.SetFlags(0)
	rng := stat.NewRand(11)

	full := dataset.SyntheticCCPP(2500, rng)
	train, test := full.Split(2000)
	chunks, err := dataset.PartitionEqual(train.Clone(), 8)
	if err != nil {
		log.Fatal(err)
	}

	// Low privacy sensitivity so equilibrium fidelities clamp at 1 and the
	// products train on clean data — this example is about product forms,
	// not the privacy/price trade-off (see examples/energy for that).
	mkSellers := func() []*market.Seller {
		sellers := make([]*market.Seller, len(chunks))
		for i := range sellers {
			sellers[i] = &market.Seller{
				ID:     fmt.Sprintf("site-%d", i+1),
				Lambda: 1e-9,
				Data:   chunks[i],
			}
		}
		return sellers
	}

	buyer := core.Buyer{N: 800, V: 0.9, Theta1: 0.5, Theta2: 0.5, Rho1: 0.5, Rho2: 250}

	builders := []product.Builder{
		product.OLS{},
		product.Logistic{Threshold: product.MedianThreshold(train)},
		product.MeanVector{},
	}
	fmt.Println("Same mechanism, three product forms")
	fmt.Println("===================================")
	for _, b := range builders {
		mkt, err := market.New(mkSellers(), market.Config{
			Cost:    translog.PaperDefaults(),
			Product: b,
			TestSet: test,
			Update:  &market.WeightUpdate{Retain: 0.2, Permutations: 10},
			Seed:    11,
		})
		if err != nil {
			log.Fatalf("%s: %v", b.Name(), err)
		}
		tx, err := mkt.RunRound(buyer)
		if err != nil {
			log.Fatalf("%s: %v", b.Name(), err)
		}
		fmt.Printf("\n%s\n", b.Name())
		fmt.Printf("  p^M*=%.5f  p^D*=%.5f  payment=%.5f  (identical game, identical prices)\n",
			tx.Profile.PM, tx.Profile.PD, tx.Payment)
		fmt.Printf("  realized performance: %.4f\n", tx.Metrics.Performance)
		switch b.(type) {
		case product.Logistic:
			fmt.Printf("  logloss: %.4f  base rate: %.3f\n",
				tx.Metrics.Detail["logloss"], tx.Metrics.Detail["base_rate"])
		case product.MeanVector:
			fmt.Printf("  mean normalized error: %.5f\n", tx.Metrics.Detail["mean_normalized_error"])
		default:
			fmt.Printf("  explained variance: %.4f  RMSE: %.3f\n",
				tx.Metrics.Detail["explained_variance"], tx.Metrics.Detail["rmse"])
		}
	}

	fmt.Println()
	fmt.Println("The strategy profile ⟨p^M*, p^D*, τ*⟩ is product-agnostic: the game")
	fmt.Println("prices dataset quality, and the broker is free to manufacture any")
	fmt.Println("product from the purchased data. Only the realized performance —")
	fmt.Println("and hence the Shapley-updated weights — depends on the product form.")
}
