// Energy forecasting market: the paper's evaluation pipeline (§6.1) end to
// end on CCPP-like data.
//
// A grid operator (buyer) wants a linear-regression model predicting a
// combined-cycle power plant's electrical output. Twenty plant operators
// (sellers) each hold a slice of the historical telemetry, quality-sorted by
// point-level Shapley value. One full trading round runs: the game sets
// prices and fidelities, each operator perturbs its slice under ε-LDP, the
// broker trains the model, scores it, computes per-seller Shapley values,
// and updates the dataset weights for the next round.
//
// Run with:
//
//	go run ./examples/energy
package main

import (
	"fmt"
	"log"

	"share/internal/core"
	"share/internal/dataset"
	"share/internal/market"
	"share/internal/regress"
	"share/internal/stat"
	"share/internal/translog"
	"share/internal/valuation"
)

func main() {
	log.SetFlags(0)
	rng := stat.NewRand(7)

	// --- Data preparation (the §6.1 recipe, scaled down) ---
	full := dataset.SyntheticCCPP(2400, rng)
	train, test := full.Split(2000)
	train = train.Clone()

	fmt.Println("Scoring 2,000 telemetry records by Monte Carlo Shapley value…")
	scores, err := valuation.QualitySort(train, test, valuation.PointShapleyOptions{
		Permutations: 20,
		EvalSample:   64,
	}, rng)
	if err != nil {
		log.Fatalf("quality sort: %v", err)
	}
	fmt.Printf("  best record SV %.3e, worst %.3e\n\n", scores[0], scores[len(scores)-1])

	const m = 20
	chunks, err := dataset.PartitionEqual(train, m)
	if err != nil {
		log.Fatalf("partitioning: %v", err)
	}
	sellers := make([]*market.Seller, m)
	for i := range sellers {
		sellers[i] = &market.Seller{
			ID:     fmt.Sprintf("plant-%02d", i+1),
			Lambda: stat.UniformOpen(rng, 0, 1),
			Data:   chunks[i],
		}
	}

	// --- Market setup with Shapley-driven weight updates ---
	mkt, err := market.New(sellers, market.Config{
		Cost:    translog.PaperDefaults(),
		TestSet: test,
		Update:  &market.WeightUpdate{Retain: 0.2, Permutations: 25, TruncateTol: 0.005},
		Seed:    7,
	})
	if err != nil {
		log.Fatalf("market: %v", err)
	}

	// Reference: what would a model on the pooled *raw* data achieve?
	rawModel, err := regress.Fit(train)
	if err != nil {
		log.Fatalf("raw fit: %v", err)
	}
	rawMetrics, err := regress.Evaluate(rawModel, test)
	if err != nil {
		log.Fatalf("raw eval: %v", err)
	}

	// --- One trading round (Algorithm 1) ---
	buyer := core.Buyer{N: 1000, V: rawMetrics.ExplainedVariance, Theta1: 0.5, Theta2: 0.5, Rho1: 0.5, Rho2: 250}
	tx, err := mkt.RunRound(buyer)
	if err != nil {
		log.Fatalf("trading round: %v", err)
	}

	fmt.Println("Trading round settled")
	fmt.Printf("  model price p^M* = %.5f, data price p^D* = %.5f\n", tx.Profile.PM, tx.Profile.PD)
	fmt.Printf("  grid operator pays %.5f; manufacturing cost %.3g\n", tx.Payment, tx.ManufacturingCost)
	fmt.Printf("  model on raw pooled data: EV = %.4f (RMSE %.2f)\n", rawMetrics.ExplainedVariance, rawMetrics.RMSE)
	fmt.Printf("  model on LDP market data: EV = %.4f (RMSE %.2f)\n\n", tx.Metrics.Performance, tx.Metrics.Detail["rmse"])

	fmt.Println("Top plants by post-round dataset weight (Shapley-updated):")
	type ranked struct {
		id     string
		weight float64
		pieces int
	}
	rows := make([]ranked, m)
	for i := range rows {
		rows[i] = ranked{sellers[i].ID, tx.Weights[i], tx.Pieces[i]}
	}
	// Simple selection of the top 5 by weight.
	for k := 0; k < 5; k++ {
		best := k
		for j := k + 1; j < m; j++ {
			if rows[j].weight > rows[best].weight {
				best = j
			}
		}
		rows[k], rows[best] = rows[best], rows[k]
		fmt.Printf("  %d. %-10s weight %.4f  sold %d pieces\n", k+1, rows[k].id, rows[k].weight, rows[k].pieces)
	}

	fmt.Println()
	fmt.Println("Note: at equilibrium the sellers' optimal fidelities are small —")
	fmt.Println("privacy is expensive relative to the data price — so the traded")
	fmt.Println("model is heavily noised. That is the mechanism telling the buyer")
	fmt.Println("that better models require paying more (raise ρ₁ and watch the")
	fmt.Println("fidelities climb, as in Fig. 5 of the paper).")
}
