// Medical data market: the paper's motivating scenario (§1).
//
// A drug company (buyer) needs a model trained on real medical data to
// decide drug supply. A data trading center (broker) buys data from
// hospitals (sellers), each of which protects its patients with local
// differential privacy calibrated to its own privacy sensitivity — a
// hospital bound by a strict patient consent agreement has a high λ and
// offers lower-fidelity data.
//
// The example contrasts three buyer postures (quality-focused, balanced,
// performance-focused) and shows how the buyer's leadership propagates:
// her concern parameter θ₁ moves every price and every hospital's fidelity
// choice, exactly the Fig. 4 dynamics.
//
// Run with:
//
//	go run ./examples/medical
package main

import (
	"fmt"
	"log"

	"share/internal/core"
	"share/internal/dataset"
	"share/internal/ldp"
	"share/internal/market"
	"share/internal/stat"
	"share/internal/translog"
)

func main() {
	log.SetFlags(0)

	// Five hospitals with heterogeneous privacy postures. λ is each
	// hospital's privacy sensitivity: the teaching hospital has strict
	// consent agreements (high λ); the research institute trades more
	// freely (low λ).
	hospitals := []struct {
		name   string
		lambda float64
	}{
		{"St. Mary's Teaching Hospital", 0.90},
		{"County General", 0.55},
		{"Lakeside Clinic", 0.40},
		{"University Research Institute", 0.15},
		{"Harbor Medical Center", 0.30},
	}
	lambdas := make([]float64, len(hospitals))
	for i, h := range hospitals {
		lambdas[i] = h.lambda
	}

	// The trading center weights hospitals by their data's historical
	// contribution (normally learned via Shapley updates; fixed here).
	weights := []float64{0.15, 0.2, 0.2, 0.3, 0.15}

	for _, posture := range []struct {
		label  string
		theta1 float64
	}{
		{"quality-focused buyer   (θ₁=0.7)", 0.7},
		{"balanced buyer          (θ₁=0.5)", 0.5},
		{"performance-focused buyer (θ₁=0.3)", 0.3},
	} {
		game := &core.Game{
			Buyer: core.Buyer{
				N:      1000, // data pieces for training
				V:      0.85, // demanded model performance
				Theta1: posture.theta1,
				Theta2: 1 - posture.theta1,
				Rho1:   0.6,
				Rho2:   200,
			},
			Broker:  core.Broker{Cost: translog.PaperDefaults(), Weights: weights},
			Sellers: core.Sellers{Lambda: lambdas},
		}
		profile, err := game.Solve()
		if err != nil {
			log.Fatalf("%s: %v", posture.label, err)
		}
		if err := game.CheckSNE(profile, 0); err != nil {
			log.Fatalf("%s: equilibrium check failed: %v", posture.label, err)
		}

		fmt.Printf("%s\n", posture.label)
		fmt.Printf("  model price %.5f, data price %.5f, company profit %.4f, center profit %.4f\n",
			profile.PM, profile.PD, profile.BuyerProfit, profile.BrokerProfit)
		for i, h := range hospitals {
			fmt.Printf("    %-30s λ=%.2f  fidelity %.5f  ε=%.5f  sells %5.1f records  earns %.6f\n",
				h.name, h.lambda, profile.Tau[i],
				ldp.EpsilonForFidelity(profile.Tau[i]),
				profile.Chi[i], profile.SellerProfits[i])
		}
		fmt.Println()
	}

	fmt.Println("Reading the output:")
	fmt.Println("  • More quality concern (higher θ₁) raises both prices and every")
	fmt.Println("    hospital's fidelity — the buyer's leadership steers the market.")
	fmt.Println("  • Privacy-tolerant hospitals (low λ) offer higher fidelity, win")
	fmt.Println("    larger allocations, and earn more — seller selection emerges")
	fmt.Println("    from the inner Nash competition, with no broker intervention.")

	// --- Part 2: an actual trade on synthetic patient records ---
	//
	// The trading center buys real (synthetic) patient rows, each hospital
	// perturbs its records under its equilibrium LDP budget, and the drug
	// company's dose-response model is trained on the purchase.
	fmt.Println()
	fmt.Println("Executing the balanced buyer's trade on patient records…")
	rng := stat.NewRand(2024)
	corpus := dataset.SyntheticMedical(5500, rng)
	train, test := corpus.Split(5000)
	chunks, err := dataset.PartitionEqual(train, len(hospitals))
	if err != nil {
		log.Fatal(err)
	}
	sellers := make([]*market.Seller, len(hospitals))
	for i, h := range hospitals {
		sellers[i] = &market.Seller{ID: h.name, Lambda: h.lambda, Data: chunks[i]}
	}
	mkt, err := market.New(sellers, market.Config{
		Cost:    translog.PaperDefaults(),
		TestSet: test,
		Update:  &market.WeightUpdate{Retain: 0.2, Permutations: 20},
		Seed:    2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	buyer := core.Buyer{N: 1000, V: 0.85, Theta1: 0.5, Theta2: 0.5, Rho1: 0.6, Rho2: 200}
	tx, err := mkt.RunRound(buyer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  company paid %.5f for the model; hospitals received %.5f in total\n",
		tx.Payment, sum(tx.Compensations))
	fmt.Printf("  dose-response model explained variance on held-out patients: %.4f\n",
		tx.Metrics.Performance)
	fmt.Println("  (low at equilibrium fidelities — strong privacy protection has a")
	fmt.Println("   real modeling cost; compare examples/classification on clean data)")
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
