#!/bin/sh
# make cover: per-package statement coverage for the whole module, with hard
# floors on internal/solve — the solver-backend seam every consumer routes
# through — internal/pool — the multi-market engine behind the /v2 API —
# internal/wal — the write-ahead log every committed trade rides on —
# internal/numeric — the optimizer toolbox under every price search and
# best response of the general cascade — internal/market — the
# round-trip engine that owns roster churn and the weight trajectory —
# and internal/budget — the ε-ledger every budgeted trade charges.
set -eu

FLOOR=80.0

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

go test -cover ./... | tee "$out"

check_floor() {
    pkg="$1"
    pct=$(awk -v pkg="$pkg" '$0 ~ pkg { if (match($0, /coverage: [0-9.]+%/)) { s = substr($0, RSTART + 10, RLENGTH - 11); print s; exit } }' "$out")
    if [ -z "$pct" ]; then
        echo "cover: no coverage reported for $pkg" >&2
        exit 1
    fi
    if [ "$(awk -v p="$pct" -v f="$FLOOR" 'BEGIN { print (p + 0 >= f + 0) ? "ok" : "low" }')" != ok ]; then
        echo "cover: $pkg at ${pct}% is below the ${FLOOR}% floor" >&2
        exit 1
    fi
    echo "cover: $pkg at ${pct}% meets the ${FLOOR}% floor"
}

check_floor 'share/internal/solve'
check_floor 'share/internal/pool'
check_floor 'share/internal/wal'
check_floor 'share/internal/numeric'
check_floor 'share/internal/market'
check_floor 'share/internal/budget'
