#!/bin/sh
# make cover: per-package statement coverage for the whole module, with a
# hard floor on internal/solve — the solver-backend seam every consumer now
# routes through must stay thoroughly tested.
set -eu

FLOOR=80.0

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

go test -cover ./... | tee "$out"

pct=$(awk '/share\/internal\/solve/ { if (match($0, /coverage: [0-9.]+%/)) { s = substr($0, RSTART + 10, RLENGTH - 11); print s; exit } }' "$out")
if [ -z "$pct" ]; then
    echo "cover: no coverage reported for share/internal/solve" >&2
    exit 1
fi
if [ "$(awk -v p="$pct" -v f="$FLOOR" 'BEGIN { print (p + 0 >= f + 0) ? "ok" : "low" }')" != ok ]; then
    echo "cover: share/internal/solve at ${pct}% is below the ${FLOOR}% floor" >&2
    exit 1
fi
echo "cover: share/internal/solve at ${pct}% meets the ${FLOOR}% floor"
