#!/bin/sh
# make bench-compare: re-run the general-backend probes (-bench-pr8) and
# diff them against the committed bench_out/BENCH_PR8.json trajectory.
# Exits non-zero when any fast-path probe (mode "fast" or "fast_warm")
# regresses by more than 25% — the guard that keeps the interactive-range
# cascade interactive. Baseline probes are informational (they measure the
# deliberately unoptimized reference) and are not gated.
#
# The roster-churn probe (share-loadgen -bench-pr9) is gated too: the
# committed bench_out/BENCH_PR9.json must pass, and a fresh run must keep
# incremental re-preparation at least 10x faster than a full Precompute at
# m=1000 (the loadgen enforces its own floor and exits non-zero below it).
#
# The privacy-budget probe (share-loadgen -bench-pr10) closes the set: the
# committed bench_out/BENCH_PR10.json must pass, and a fresh run must keep
# the ledger's trade-path overhead within 5% with every ε-starved trade
# refused (again the loadgen enforces its own gate).
set -eu

REPO_DIR=$(cd "$(dirname "$0")/.." && pwd)
cd "$REPO_DIR"

COMMITTED=bench_out/BENCH_PR8.json
THRESHOLD=1.25

if [ ! -s "$COMMITTED" ]; then
    echo "bench_compare: missing $COMMITTED — run 'make bench' and commit it first" >&2
    exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "bench_compare: running fresh -bench-pr8 probes into $tmp"
go run ./cmd/share-bench -fig none -out "$tmp" -bench-pr8

FRESH="$tmp/BENCH_PR8.json"
[ -s "$FRESH" ] || { echo "bench_compare: fresh run wrote no report" >&2; exit 1; }

status=0
for name in $(jq -r '.benchmarks[] | select(.mode == "fast" or .mode == "fast_warm") | .name' "$FRESH"); do
    fresh_ns=$(jq -r --arg n "$name" '[.benchmarks[] | select(.name == $n)][0].ns_per_op' "$FRESH")
    committed_ns=$(jq -r --arg n "$name" '[.benchmarks[] | select(.name == $n)][0].ns_per_op // empty' "$COMMITTED")
    if [ -z "$committed_ns" ]; then
        echo "bench_compare: $name has no committed reference — skipping"
        continue
    fi
    verdict=$(awk -v f="$fresh_ns" -v c="$committed_ns" -v t="$THRESHOLD" \
        'BEGIN { r = f / c; printf "%.2f", r; exit (r > t) ? 1 : 0 }') || {
        echo "bench_compare: REGRESSION $name: ${fresh_ns} ns/op vs committed ${committed_ns} ns/op (${verdict}x > ${THRESHOLD}x)" >&2
        status=1
        continue
    }
    echo "bench_compare: $name ok (${verdict}x of committed)"
done

if [ "$status" -ne 0 ]; then
    echo "bench_compare: general-backend probes regressed beyond ${THRESHOLD}x" >&2
fi

# Roster-churn gate: the committed report must pass, and a fresh probe must
# clear the same floor on this machine.
COMMITTED_PR9=bench_out/BENCH_PR9.json
if [ ! -s "$COMMITTED_PR9" ]; then
    echo "bench_compare: missing $COMMITTED_PR9 — run 'share-loadgen -bench-pr9' and commit it first" >&2
    exit 1
fi
if [ "$(jq -r '.pass' "$COMMITTED_PR9")" != true ]; then
    echo "bench_compare: committed $COMMITTED_PR9 does not pass its own gate" >&2
    exit 1
fi
echo "bench_compare: running fresh -bench-pr9 churn probes into $tmp"
if go run ./cmd/share-loadgen -bench-pr9 -out "$tmp"; then
    echo "bench_compare: churn probe ok ($(jq -r '.speedup_m1000' "$tmp/BENCH_PR9.json")x incremental speedup at m=1000)"
else
    echo "bench_compare: REGRESSION churn probe below its $(jq -r '.speedup_floor' "$COMMITTED_PR9")x floor" >&2
    status=1
fi

# Privacy-budget gate: the committed report must pass, and a fresh probe
# must keep the ledger overhead within its 5% limit on this machine.
COMMITTED_PR10=bench_out/BENCH_PR10.json
if [ ! -s "$COMMITTED_PR10" ]; then
    echo "bench_compare: missing $COMMITTED_PR10 — run 'share-loadgen -bench-pr10' and commit it first" >&2
    exit 1
fi
if [ "$(jq -r '.pass' "$COMMITTED_PR10")" != true ]; then
    echo "bench_compare: committed $COMMITTED_PR10 does not pass its own gate" >&2
    exit 1
fi
echo "bench_compare: running fresh -bench-pr10 budget-ledger probes into $tmp"
if go run ./cmd/share-loadgen -bench-pr10 -out "$tmp"; then
    echo "bench_compare: budget probe ok ($(jq -r '.overhead_pct' "$tmp/BENCH_PR10.json")% ledger overhead, $(jq -r '.exhausted_refusals' "$tmp/BENCH_PR10.json") exhausted refusals)"
else
    echo "bench_compare: REGRESSION budget ledger past its $(jq -r '.overhead_limit_pct' "$COMMITTED_PR10")% overhead limit" >&2
    status=1
fi
exit "$status"
