#!/usr/bin/env sh
# serve_smoke.sh — boot share-server, exercise the full service surface
# (register, quote, trade, metrics, snapshot), then SIGTERM it to verify
# graceful shutdown and snapshot persistence. Run via `make serve-smoke`.
set -eu

ADDR="${SMOKE_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
BIN="$WORK/share-server"
SNAP="$WORK/market.json"
LOG="$WORK/server.log"

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building share-server"
go build -o "$BIN" ./cmd/share-server

"$BIN" -addr "$ADDR" -demo 4 -snapshot "$SNAP" >"$LOG" 2>&1 &
PID=$!

# Wait for the server to come up.
i=0
until curl -fs "$BASE/v1/health" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: server never became healthy" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done
echo "serve-smoke: server healthy"

fail() {
    echo "serve-smoke: $1" >&2
    cat "$LOG" >&2
    exit 1
}

# Quote, trade, read-backs.
curl -fs "$BASE/v1/quote" -d '{"n":120,"v":0.8}' | grep -q product_price \
    || fail "quote failed"
curl -fs "$BASE/v1/trades" -d '{"n":120,"v":0.8}' | grep -q '"round": *1' \
    || fail "trade failed"
curl -fs "$BASE/v1/weights" >/dev/null || fail "weights failed"
curl -fs "$BASE/v1/sellers" >/dev/null || fail "sellers failed"

# Error paths: invalid demand is a field-level 400, never a 5xx.
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/quote" -d '{"n":120,"v":0.8,"theta1":7}')
[ "$code" = "400" ] || fail "invalid theta1 returned $code, want 400"

# Metrics report the traffic just generated.
curl -fs "$BASE/v1/metrics" | grep -q '"POST /v1/trades"' || fail "metrics missing trade endpoint"

# Graceful shutdown on SIGTERM persists the snapshot and exits 0.
kill -TERM "$PID"
if ! wait "$PID"; then
    fail "server exited non-zero on SIGTERM"
fi
PID=""
[ -s "$SNAP" ] || fail "no snapshot written on shutdown"
grep -q '"ledger"' "$SNAP" || fail "snapshot missing ledger"

# Reboot from the snapshot: the ledger must survive the restart.
"$BIN" -addr "$ADDR" -snapshot "$SNAP" >"$LOG" 2>&1 &
PID=$!
i=0
until curl -fs "$BASE/v1/health" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "restarted server never became healthy"
    sleep 0.1
done
curl -fs "$BASE/v1/trades" | grep -q '"round": *1' || fail "ledger lost across restart"
kill -TERM "$PID"
wait "$PID" || fail "restarted server exited non-zero on SIGTERM"
PID=""

echo "serve-smoke: OK (quote, trade, metrics, graceful shutdown, snapshot restore)"
