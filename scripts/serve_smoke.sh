#!/usr/bin/env sh
# serve_smoke.sh — boot share-server, exercise the full service surface
# (register, quote, trade, metrics, snapshot, the /v2 market lifecycle),
# then SIGTERM it to verify graceful shutdown and snapshot persistence —
# single-file mode and per-market -snapshot-dir mode. Run via
# `make serve-smoke`.
set -eu

ADDR="${SMOKE_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
BIN="$WORK/share-server"
SNAP="$WORK/market.json"
SNAPDIR="$WORK/markets"
LOG="$WORK/server.log"

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building share-server"
go build -o "$BIN" ./cmd/share-server

"$BIN" -addr "$ADDR" -demo 4 -snapshot "$SNAP" >"$LOG" 2>&1 &
PID=$!

# Wait for the server to come up.
wait_healthy() {
    i=0
    until curl -fs "$BASE/v1/health" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "serve-smoke: server never became healthy" >&2
            cat "$LOG" >&2
            exit 1
        fi
        sleep 0.1
    done
}
wait_healthy
echo "serve-smoke: server healthy"

fail() {
    echo "serve-smoke: $1" >&2
    cat "$LOG" >&2
    exit 1
}

# Quote, trade, read-backs.
curl -fs "$BASE/v1/quote" -d '{"n":120,"v":0.8}' | grep -q product_price \
    || fail "quote failed"
curl -fs "$BASE/v1/trades" -d '{"n":120,"v":0.8}' | grep -q '"round": *1' \
    || fail "trade failed"
curl -fs "$BASE/v1/weights" >/dev/null || fail "weights failed"
curl -fs "$BASE/v1/sellers" >/dev/null || fail "sellers failed"

# Error paths: invalid demand is a field-level 400 in the unified envelope,
# never a 5xx.
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/quote" -d '{"n":120,"v":0.8,"theta1":7}')
[ "$code" = "400" ] || fail "invalid theta1 returned $code, want 400"
curl -s "$BASE/v1/quote" -d '{"n":120,"v":0.8,"theta1":7}' | grep -q '"error"' \
    || fail "400 body missing the error envelope"

# v1 routes alias the default market on /v2.
curl -fs "$BASE/v2/markets/default" | grep -q '"trades": *1' \
    || fail "/v2 default-market alias missing the trade"

# /v2 market lifecycle: create → register → batch quote → trade → delete.
curl -fs "$BASE/v2/markets" -d '{"id":"smoke"}' | grep -q '"id": *"smoke"' \
    || fail "create market failed"
curl -fs "$BASE/v2/markets/smoke/sellers" -d '{"id":"s1","lambda":0.4,"synthetic_rows":80}' >/dev/null \
    || fail "v2 seller registration failed"
curl -fs "$BASE/v2/markets/smoke/sellers" -d '{"id":"s2","lambda":0.6,"synthetic_rows":80}' >/dev/null \
    || fail "v2 seller registration failed"
curl -fs "$BASE/v2/markets/smoke/quotes" -d '{"demands":[{"n":100,"v":0.8},{"n":200,"v":0.85}]}' \
    | grep -q '"quotes"' || fail "batch quote failed"
curl -fs "$BASE/v2/markets/smoke/trades" -d '{"n":90,"v":0.8}' | grep -q '"round": *1' \
    || fail "v2 trade failed"
curl -fs "$BASE/v2/markets/smoke/trades?limit=1" >/dev/null || fail "paginated ledger failed"
curl -fsX DELETE "$BASE/v2/markets/smoke" || fail "delete market failed"
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v2/markets/smoke")
[ "$code" = "404" ] || fail "deleted market answered $code, want 404"
code=$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "$BASE/v2/markets/default")
[ "$code" = "409" ] || fail "deleting the default market answered $code, want 409"

# Metrics report the traffic just generated, including per-market series.
curl -fs "$BASE/v1/metrics" | grep -q '"POST /v1/trades"' || fail "metrics missing trade endpoint"
curl -fs "$BASE/v1/metrics" | grep -q 'market/smoke/trade' || fail "metrics missing per-market series"

# Graceful shutdown on SIGTERM persists the snapshot and exits 0.
kill -TERM "$PID"
if ! wait "$PID"; then
    fail "server exited non-zero on SIGTERM"
fi
PID=""
[ -s "$SNAP" ] || fail "no snapshot written on shutdown"
grep -q '"ledger"' "$SNAP" || fail "snapshot missing ledger"

# Reboot from the snapshot: the ledger must survive the restart.
"$BIN" -addr "$ADDR" -snapshot "$SNAP" >"$LOG" 2>&1 &
PID=$!
wait_healthy
curl -fs "$BASE/v1/trades" | grep -q '"round": *1' || fail "ledger lost across restart"
kill -TERM "$PID"
wait "$PID" || fail "restarted server exited non-zero on SIGTERM"
PID=""

# Per-market persistence: boot with -snapshot-dir, trade in a named market,
# SIGTERM, reboot from the directory — every market must come back.
"$BIN" -addr "$ADDR" -demo 3 -snapshot-dir "$SNAPDIR" >"$LOG" 2>&1 &
PID=$!
wait_healthy
curl -fs "$BASE/v2/markets" -d '{"id":"beta"}' >/dev/null || fail "dir-mode create failed"
curl -fs "$BASE/v2/markets/beta/sellers" -d '{"id":"b1","lambda":0.5,"synthetic_rows":80}' >/dev/null \
    || fail "dir-mode registration failed"
curl -fs "$BASE/v2/markets/beta/trades" -d '{"n":90,"v":0.8}' >/dev/null || fail "dir-mode trade failed"
curl -fs "$BASE/v1/trades" -d '{"n":120,"v":0.8}' >/dev/null || fail "dir-mode default trade failed"
kill -TERM "$PID"
wait "$PID" || fail "dir-mode server exited non-zero on SIGTERM"
PID=""
[ -s "$SNAPDIR/beta.json" ] || fail "no per-market snapshot for beta"
[ -s "$SNAPDIR/default.json" ] || fail "no per-market snapshot for default"

"$BIN" -addr "$ADDR" -snapshot-dir "$SNAPDIR" >"$LOG" 2>&1 &
PID=$!
wait_healthy
curl -fs "$BASE/v2/markets/beta/trades" | grep -q '"round": *1' \
    || fail "beta ledger lost across dir-mode restart"
curl -fs "$BASE/v1/trades" | grep -q '"round": *1' \
    || fail "default ledger lost across dir-mode restart"

# Crash recovery: trade again so the newest round lives only in the
# write-ahead log (the snapshot on disk still ends at round 1), verify the
# WAL series are live in /v1/metrics, then kill -9 — no drain, no SaveAll —
# and reboot. Replay must reconstruct the post-snapshot round from the WAL.
curl -fs "$BASE/v2/markets/beta/trades" -d '{"n":110,"v":0.8}' | grep -q '"round": *2' \
    || fail "pre-crash beta trade failed"
curl -fs "$BASE/v1/metrics" | grep -q '"wal/fsyncs"' || fail "metrics missing wal/fsyncs counter"
[ -s "$SNAPDIR/beta.wal" ] || fail "no WAL segment for beta before crash"
kill -KILL "$PID"
wait "$PID" 2>/dev/null || true
PID=""

"$BIN" -addr "$ADDR" -snapshot-dir "$SNAPDIR" >"$LOG" 2>&1 &
PID=$!
wait_healthy
curl -fs "$BASE/v2/markets/beta/trades" | grep -q '"round": *2' \
    || fail "WAL replay lost the post-snapshot round after kill -9"
curl -fs "$BASE/v1/trades" | grep -q '"round": *1' \
    || fail "default ledger lost across crash reboot"
kill -TERM "$PID"
wait "$PID" || fail "crash-recovered server exited non-zero on SIGTERM"
PID=""

# Saturating traffic: a short share-loadgen run (self-hosted server, full
# HTTP stack) must finish with the quote SLO intact — the binary exits
# non-zero when loaded quote p99 exceeds 2x unloaded — and emit the
# machine-readable report.
echo "serve-smoke: running share-loadgen saturation phase"
go run ./cmd/share-loadgen -out "$WORK/bench" -markets 2 -sellers 3 -rows 300 \
    -product ols -trade-n 800 -trade-burst 1 -trade-pause 100ms -duration 1s \
    >"$LOG" 2>&1 || fail "share-loadgen run failed (SLO or transport)"
[ -s "$WORK/bench/BENCH_PR7.json" ] || fail "share-loadgen wrote no report"
grep -q '"within_2x": true' "$WORK/bench/BENCH_PR7.json" \
    || fail "share-loadgen report missing SLO verdict"
grep -q '"server_admission"' "$WORK/bench/BENCH_PR7.json" \
    || fail "share-loadgen report missing admission counters"

echo "serve-smoke: OK (quote, trade, metrics, v2 lifecycle, graceful shutdown, snapshot + snapshot-dir restore, kill -9 WAL replay, loadgen saturation)"
