package core

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"share/internal/stat"
)

// A context canceled mid-search must surface context.Canceled out of
// SolveGeneralCtx — the regression for the seed-era bug where the golden
// search masked the inner error behind a sentinel value and misreported
// "stage 3 failed at the optimal prices" with a nil error.
func TestSolveGeneralCancellationPropagates(t *testing.T) {
	g := PaperGame(20, stat.NewRand(3))
	ctx, cancel := context.WithCancel(context.Background())
	var evals atomic.Int64
	loss := func(i int, chi, tau float64) float64 {
		// Cancel from deep inside the cascade, well past the first few
		// Stage-3 solves so the abort happens mid-bracket, not at entry.
		if evals.Add(1) == 5000 {
			cancel()
		}
		q := chi * tau
		return g.Sellers.Lambda[i] * q * q
	}
	_, err := g.SolveGeneralCtx(ctx, GeneralOptions{Loss: loss})
	if err == nil {
		t.Fatal("SolveGeneralCtx returned nil error after mid-search cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(err, context.Canceled)", err)
	}
}

// The baseline cascade (no incremental payoffs, no warm starts, no
// tolerance schedule, no memoization, sequential golden search) and the
// optimized one must agree on the equilibrium for every loss shape — the
// optimizations are allowed to change who computes what when, never where
// the prices land.
func TestSolveGeneralFastMatchesBaseline(t *testing.T) {
	g := PaperGame(4, stat.NewRand(11))
	losses := []struct {
		name string
		loss LossFunc
	}{
		{"quadratic", g.QuadraticLoss()},
		{"alternative", g.AlternativeLoss()},
		{"cubic", g.CubicLoss()},
	}
	for _, l := range losses {
		l := l
		t.Run(l.name, func(t *testing.T) {
			const priceTol = 1e-5
			fast, err := g.SolveGeneral(GeneralOptions{Loss: l.loss, PriceTol: priceTol})
			if err != nil {
				t.Fatalf("fast solve: %v", err)
			}
			base, err := g.SolveGeneral(GeneralOptions{Loss: l.loss, PriceTol: priceTol, Baseline: true})
			if err != nil {
				t.Fatalf("baseline solve: %v", err)
			}
			// Nested golden search carries the inner pd localization error
			// into the outer pm comparisons, so at interactive tolerances
			// the located prices scatter within the flat top of the buyer's
			// profit — a few percent — while the achieved profit pins the
			// optimum orders of magnitude tighter. Assert accordingly: the
			// profit is the precision check, the prices a sanity band.
			fb := g.EvaluateProfile(fast.PM, fast.PD, fast.Tau).BuyerProfit
			bb := g.EvaluateProfile(base.PM, base.PD, base.Tau).BuyerProfit
			if d := math.Abs(fb - bb); d > 1e-4*math.Abs(bb) {
				t.Errorf("buyer profit: fast %.10g vs baseline %.10g (rel Δ %g)", fb, bb, d/math.Abs(bb))
			}
			if d := math.Abs(fast.PM - base.PM); d > 0.05*base.PM {
				t.Errorf("p^M: fast %g vs baseline %g (Δ %g)", fast.PM, base.PM, d)
			}
			if d := math.Abs(fast.PD - base.PD); d > 0.05*base.PD {
				t.Errorf("p^D: fast %g vs baseline %g (Δ %g)", fast.PD, base.PD, d)
			}
			for i := range fast.Tau {
				if d := math.Abs(fast.Tau[i] - base.Tau[i]); d > 0.02 {
					t.Errorf("τ[%d]: fast %g vs baseline %g", i, fast.Tau[i], base.Tau[i])
				}
			}
		})
	}
}

// Warm-starting from a neighboring round's profile must not move the
// answer beyond the price-localization scatter, and must not cost extra
// Stage-3 sweeps. The cubic loss is the interesting case: its closed-form
// cold start is only approximate, so the carried profile genuinely
// replaces iteration work (for the quadratic loss Stage3Tau is exact and
// warm starts have nothing to improve).
func TestSolveGeneralWarmStartAgreesWithCold(t *testing.T) {
	g := PaperGame(10, stat.NewRand(5))
	loss := g.CubicLoss()
	var coldStats, warmStats GeneralStats
	cold, err := g.SolveGeneral(GeneralOptions{Loss: loss, PriceTol: 1e-6, Stats: &coldStats})
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	warm, err := g.SolveGeneral(GeneralOptions{
		Loss: loss, PriceTol: 1e-6,
		WarmPD: cold.PD, WarmTau: cold.Tau,
		Stats: &warmStats,
	})
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	if d := math.Abs(warm.PM - cold.PM); d > 0.05*cold.PM {
		t.Errorf("p^M moved by %g under warm start (cold %g)", d, cold.PM)
	}
	if d := math.Abs(warm.PD - cold.PD); d > 0.05*cold.PD {
		t.Errorf("p^D moved by %g under warm start (cold %g)", d, cold.PD)
	}
	if warmStats.Stage3Sweeps > coldStats.Stage3Sweeps {
		t.Errorf("warm start swept %d times vs cold's %d; want no more",
			warmStats.Stage3Sweeps, coldStats.Stage3Sweeps)
	}
}

// The stats sink must report the cascade's effort; a fresh solve performs
// hundreds of Stage-3 solves, each at least one sweep.
func TestSolveGeneralStatsPopulated(t *testing.T) {
	g := PaperGame(5, stat.NewRand(2))
	var stats GeneralStats
	if _, err := g.SolveGeneral(GeneralOptions{Loss: g.QuadraticLoss(), PriceTol: 1e-4, Stats: &stats}); err != nil {
		t.Fatalf("SolveGeneral: %v", err)
	}
	if stats.Stage3Solves <= 0 || stats.Stage3Sweeps < stats.Stage3Solves || stats.Stage3Time <= 0 {
		t.Fatalf("implausible stats: %+v", stats)
	}
}
