package core

import (
	"math"
	"testing"
)

func TestMisreportTruthfulIsNeutral(t *testing.T) {
	g := paperTestGame(t, 20, 100)
	out, err := g.Misreport(0, 1)
	if err != nil {
		t.Fatalf("Misreport: %v", err)
	}
	if math.Abs(out.Gain) > 1e-12 {
		t.Errorf("truthful report has gain %v, want 0", out.Gain)
	}
	if out.RealizedProfit != out.TruthfulProfit {
		t.Errorf("realized %v != truthful %v at factor 1", out.RealizedProfit, out.TruthfulProfit)
	}
}

func TestMisreportValidation(t *testing.T) {
	g := paperTestGame(t, 5, 101)
	if _, err := g.Misreport(-1, 1); err == nil {
		t.Error("accepted negative index")
	}
	if _, err := g.Misreport(5, 1); err == nil {
		t.Error("accepted out-of-range index")
	}
	if _, err := g.Misreport(0, 0); err == nil {
		t.Error("accepted zero factor")
	}
}

// TestApproximateStrategyProofness documents the quantified result of the
// truthfulness analysis: both gross under- and over-reporting of λ strictly
// hurt the deviating seller (the allocation gain is cancelled by the loss
// charged at the true λ), the best misreport sits within a hair of
// truthful reporting, and its residual gain — driven only by the O(1/m)
// price feedback through S = Σ1/λ — shrinks as the market grows.
func TestApproximateStrategyProofness(t *testing.T) {
	g := paperTestGame(t, 20, 102)
	under, err := g.Misreport(0, 0.5)
	if err != nil {
		t.Fatalf("Misreport: %v", err)
	}
	if under.Gain >= 0 {
		t.Errorf("halving the report gains %v, want a strict loss", under.Gain)
	}
	over, err := g.Misreport(0, 2)
	if err != nil {
		t.Fatalf("Misreport: %v", err)
	}
	if over.Gain >= 0 {
		t.Errorf("doubling the report gains %v, want a strict loss", over.Gain)
	}
	best, err := g.BestMisreport(0, 0, 0)
	if err != nil {
		t.Fatalf("BestMisreport: %v", err)
	}
	if math.Abs(best.Factor-1) > 0.1 {
		t.Errorf("best misreport factor = %v, want ≈1 (approximate truthfulness)", best.Factor)
	}
	truthful, _ := g.Solve()
	scale := math.Abs(truthful.SellerProfits[0]) + 1e-30
	if best.Gain/scale > 0.05 {
		t.Errorf("best misreport gain is %.2f%% of profit; approximate strategy-proofness broken", best.Gain/scale*100)
	}
}

// TestMisreportGainShrinksWithMarketSize: the residual price-feedback gain
// is O(1/m).
func TestMisreportGainShrinksWithMarketSize(t *testing.T) {
	gainAt := func(m int) float64 {
		g := paperTestGame(t, m, 103)
		best, err := g.BestMisreport(0, 0.5, 1.5)
		if err != nil {
			t.Fatalf("m=%d BestMisreport: %v", m, err)
		}
		truthful, _ := g.Solve()
		return best.Gain / (math.Abs(truthful.SellerProfits[0]) + 1e-30)
	}
	small, large := gainAt(5), gainAt(200)
	if large > small+1e-9 {
		t.Errorf("relative misreport gain grew with m: %v → %v", small, large)
	}
}
