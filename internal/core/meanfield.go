package core

import (
	"errors"
	"fmt"
	"math"

	"share/internal/numeric"
)

// This file implements §5.1.1's mean-field machinery for "complicated cases":
// the alternative privacy-loss form L_i(τᵢ) = λᵢ·χᵢ·τᵢ² for which the paper
// demonstrates the method, the mean-field optimum τᵢ* = 2p^D/(3λᵢ) (Eq. 23),
// the exact per-seller best response of that loss (the quadratic root of
// Eq. 24) solved as a coupled fixed point ("direct derivation" comparator),
// and the Theorem 5.1 error bounds with the ω-scaling precondition.

// MFSellerProfit evaluates seller i's profit under the alternative loss form
// (Eq. 22): Ψᵢ = p^D·χᵢτᵢ − λᵢ·χᵢ·τᵢ², with χᵢ from the allocation rule.
func (g *Game) MFSellerProfit(i int, pD float64, tau []float64) float64 {
	chi := g.Allocation(tau)
	return pD*chi[i]*tau[i] - g.Sellers.Lambda[i]*chi[i]*tau[i]*tau[i]
}

// MeanFieldTau returns the sellers' approximate Nash equilibrium under the
// alternative loss, treating the weighted mean fidelity τ̄ = Σωⱼτⱼ/m as an
// exogenous mean-field state (Eq. 23): τᵢ* = 2p^D/(3λᵢ), clamped to [0, 1].
func (g *Game) MeanFieldTau(pD float64) []float64 {
	tau := make([]float64, g.M())
	if pD <= 0 {
		return tau
	}
	for i, l := range g.Sellers.Lambda {
		tau[i] = math.Min(1, 2*pD/(3*l))
	}
	return tau
}

// MeanFieldState returns τ̄ = Σᵢωᵢτᵢ/m (Eq. 21), the mean-field aggregate.
func (g *Game) MeanFieldState(tau []float64) float64 {
	var s float64
	for i, t := range tau {
		s += g.Broker.Weights[i] * t
	}
	return s / float64(g.M())
}

// mfBestResponse returns seller i's exact best response under the
// alternative loss given the rivals' weighted fidelity mass
// Σ₋ᵢ = Σ_{j≠i} ωⱼτⱼ (Eq. 24):
//
//	τᵢ* = [p^Dωᵢ − 3λᵢΣ₋ᵢ + √((3λᵢΣ₋ᵢ − p^Dωᵢ)² + 16·p^Dλᵢωᵢ·Σ₋ᵢ)] / (4λᵢωᵢ),
//
// clamped to [0, 1]. A zero rival mass degenerates to the monopoly case,
// where χᵢ = N regardless of τᵢ and the FOC gives τᵢ = p^D/(2λᵢ)... — in
// fact with Σ₋ᵢ = 0 Eq. 24 reduces to τᵢ = p^D·ωᵢ·2/(4λᵢωᵢ) = p^D/(2λᵢ).
func (g *Game) mfBestResponse(i int, pD, rivalMass float64) float64 {
	wi, li := g.Broker.Weights[i], g.Sellers.Lambda[i]
	if rivalMass <= 0 {
		return numeric.Clamp(pD/(2*li), 0, 1)
	}
	a := 3*li*rivalMass - pD*wi
	disc := a*a + 16*pD*li*wi*rivalMass
	t := (pD*wi - 3*li*rivalMass + math.Sqrt(disc)) / (4 * li * wi)
	return numeric.Clamp(t, 0, 1)
}

// DirectTauMF computes the exact inner Nash equilibrium under the
// alternative loss by damped fixed-point iteration on the coupled best
// responses of Eq. 24 — the "direct derivation" Theorem 5.1 compares the
// mean-field approximation against. It starts from the mean-field profile
// and iterates until the fidelity vector is stable to within tol (pass 0
// for 1e-12).
func (g *Game) DirectTauMF(pD, tol float64, maxIter int) ([]float64, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 500
	}
	m := g.M()
	tau := g.MeanFieldTau(pD)
	if pD <= 0 {
		return tau, nil
	}
	var total float64
	for i, t := range tau {
		total += g.Broker.Weights[i] * t
	}
	const damp = 0.7
	for iter := 0; iter < maxIter; iter++ {
		var maxDelta float64
		for i := 0; i < m; i++ {
			rival := total - g.Broker.Weights[i]*tau[i]
			br := g.mfBestResponse(i, pD, rival)
			next := (1-damp)*tau[i] + damp*br
			delta := math.Abs(next - tau[i])
			if delta > maxDelta {
				maxDelta = delta
			}
			total += g.Broker.Weights[i] * (next - tau[i])
			tau[i] = next
		}
		if maxDelta < tol {
			return tau, nil
		}
	}
	return nil, errors.New("core: mean-field direct derivation did not converge")
}

// MeanFieldError compares the exact ("direct derivation") and mean-field
// equilibria under the alternative loss at data price pD, returning the
// signed error τ̄^DD − τ̄^MF of Theorem 5.1 along with both aggregates.
func (g *Game) MeanFieldError(pD float64) (err, ddBar, mfBar float64, solveErr error) {
	dd, solveErr := g.DirectTauMF(pD, 0, 0)
	if solveErr != nil {
		return 0, 0, 0, solveErr
	}
	mf := g.MeanFieldTau(pD)
	ddBar = g.MeanFieldState(dd)
	mfBar = g.MeanFieldState(mf)
	return ddBar - mfBar, ddBar, mfBar, nil
}

// Theorem51Bounds returns the error interval of Theorem 5.1 for m sellers:
// (−1/(6m²), 1/m − 2/(3m²)).
func Theorem51Bounds(m int) (lo, hi float64) {
	fm := float64(m)
	return -1 / (6 * fm * fm), 1/fm - 2/(3*fm*fm)
}

// ScaleWeightsForBound rescales the broker's weights in place so that the
// Theorem 5.1 precondition ωᵢ/λᵢ ≤ 1/(p^D·m²) holds with equality for the
// tightest seller. Only the weights' proportions matter to the allocation
// rule (the paper notes they may be scaled arbitrarily), so this preserves
// market behaviour while activating the error guarantee.
func (g *Game) ScaleWeightsForBound(pD float64) error {
	if pD <= 0 {
		return fmt.Errorf("core: cannot scale weights for non-positive data price %g", pD)
	}
	m := float64(g.M())
	var worst float64
	for i, w := range g.Broker.Weights {
		r := w / g.Sellers.Lambda[i]
		if r > worst {
			worst = r
		}
	}
	if worst <= 0 {
		return errors.New("core: degenerate weights")
	}
	target := 1 / (pD * m * m)
	scale := target / worst
	for i := range g.Broker.Weights {
		g.Broker.Weights[i] *= scale
	}
	g.Invalidate()
	return nil
}

// BoundCondition reports whether the Theorem 5.1 precondition
// ωᵢ/λᵢ ≤ 1/(p^D·m²) holds for every seller.
func (g *Game) BoundCondition(pD float64) bool {
	m := float64(g.M())
	limit := 1 / (pD * m * m)
	for i, w := range g.Broker.Weights {
		if w/g.Sellers.Lambda[i] > limit*(1+1e-12) {
			return false
		}
	}
	return true
}
