package core_test

import (
	"fmt"

	"share/internal/core"
	"share/internal/translog"
)

// fixedGame builds a small deterministic game for the examples.
func fixedGame() *core.Game {
	return &core.Game{
		Buyer: core.Buyer{N: 100, V: 0.8, Theta1: 0.5, Theta2: 0.5, Rho1: 0.5, Rho2: 250},
		Broker: core.Broker{
			Cost:    translog.PaperDefaults(),
			Weights: []float64{0.25, 0.25, 0.25, 0.25},
		},
		Sellers: core.Sellers{Lambda: []float64{0.2, 0.4, 0.6, 0.8}},
	}
}

func ExampleGame_Solve() {
	g := fixedGame()
	p, err := g.Solve()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("p^M* = %.4f\n", p.PM)
	fmt.Printf("p^D* = %.4f\n", p.PD)
	fmt.Printf("Σχ   = %.0f\n", p.Chi[0]+p.Chi[1]+p.Chi[2]+p.Chi[3])
	// Output:
	// p^M* = 0.1368
	// p^D* = 0.0547
	// Σχ   = 100
}

func ExampleGame_CheckSNE() {
	g := fixedGame()
	p, _ := g.Solve()
	if err := g.CheckSNE(p, 0); err != nil {
		fmt.Println("not an equilibrium:", err)
		return
	}
	fmt.Println("SNE verified: no profitable unilateral deviation")
	// Output:
	// SNE verified: no profitable unilateral deviation
}

func ExampleGame_Stage2PD() {
	g := fixedGame()
	// Eq. 25: the broker's optimal data price is v·p^M/2.
	fmt.Printf("%.3f\n", g.Stage2PD(0.5))
	// Output:
	// 0.200
}

func ExampleTheorem51Bounds() {
	lo, hi := core.Theorem51Bounds(100)
	fmt.Printf("(%.2e, %.2e)\n", lo, hi)
	// Output:
	// (-1.67e-05, 9.93e-03)
}
