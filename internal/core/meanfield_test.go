package core

import (
	"math"
	"testing"
	"testing/quick"

	"share/internal/nash"
	"share/internal/stat"
)

func TestMeanFieldClosedForm(t *testing.T) {
	g := paperTestGame(t, 5, 50)
	g.Sellers.Lambda = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	pd := 0.03
	tau := g.MeanFieldTau(pd)
	for i, l := range g.Sellers.Lambda {
		want := math.Min(1, 2*pd/(3*l))
		if math.Abs(tau[i]-want) > 1e-15 {
			t.Errorf("τ^MF[%d] = %v, want %v", i, tau[i], want)
		}
	}
	for _, x := range g.MeanFieldTau(0) {
		if x != 0 {
			t.Error("mean-field τ at p^D = 0 should be 0")
		}
	}
	// Clamping.
	for _, x := range g.MeanFieldTau(1e3) {
		if x != 1 {
			t.Error("mean-field τ should clamp at 1")
		}
	}
}

func TestMeanFieldState(t *testing.T) {
	g := paperTestGame(t, 2, 51)
	g.Broker.Weights = []float64{1, 3}
	// τ̄ = (1·0.5 + 3·0.1)/2 = 0.4.
	if got := g.MeanFieldState([]float64{0.5, 0.1}); math.Abs(got-0.4) > 1e-15 {
		t.Errorf("τ̄ = %v, want 0.4", got)
	}
}

// TestDirectTauMFIsNashEquilibrium cross-validates the Eq. 24 fixed point
// against the numerical Nash solver on the alternative-loss profit
// functions.
func TestDirectTauMFIsNashEquilibrium(t *testing.T) {
	g := paperTestGame(t, 10, 52)
	pd := 0.05
	dd, err := g.DirectTauMF(pd, 0, 0)
	if err != nil {
		t.Fatalf("DirectTauMF: %v", err)
	}
	ng := &nash.Game{
		Players: g.M(),
		Payoff: func(i int, x float64, s []float64) float64 {
			tau := append([]float64(nil), s...)
			tau[i] = x
			return g.MFSellerProfit(i, pd, tau)
		},
	}
	resid, err := ng.VerifyEquilibrium(dd)
	if err != nil {
		t.Fatalf("VerifyEquilibrium: %v", err)
	}
	if resid > 1e-6 {
		t.Errorf("Eq. 24 fixed point leaves deviation gain %v", resid)
	}
}

// TestTheorem51BoundHolds verifies the paper's error bound: with the
// ω-scaling precondition, τ̄^DD − τ̄^MF ∈ (−1/6m², 1/m − 2/3m²).
func TestTheorem51BoundHolds(t *testing.T) {
	for _, m := range []int{10, 50, 100, 500} {
		g := paperTestGame(t, m, int64(53+m))
		p, err := g.Solve()
		if err != nil {
			t.Fatalf("m=%d Solve: %v", m, err)
		}
		if err := g.ScaleWeightsForBound(p.PD); err != nil {
			t.Fatalf("m=%d ScaleWeightsForBound: %v", m, err)
		}
		if !g.BoundCondition(p.PD) {
			t.Fatalf("m=%d: scaling did not establish the precondition", m)
		}
		errVal, _, _, err := g.MeanFieldError(p.PD)
		if err != nil {
			t.Fatalf("m=%d MeanFieldError: %v", m, err)
		}
		lo, hi := Theorem51Bounds(m)
		if errVal <= lo || errVal >= hi {
			t.Errorf("m=%d: error %v outside (%v, %v)", m, errVal, lo, hi)
		}
	}
}

// TestMeanFieldErrorShrinksWithM verifies the empirical conclusion of the
// error analysis: more sellers → smaller approximation error.
func TestMeanFieldErrorShrinksWithM(t *testing.T) {
	errAt := func(m int) float64 {
		g := paperTestGame(t, m, 60)
		p, err := g.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if err := g.ScaleWeightsForBound(p.PD); err != nil {
			t.Fatalf("ScaleWeightsForBound: %v", err)
		}
		e, _, _, err := g.MeanFieldError(p.PD)
		if err != nil {
			t.Fatalf("MeanFieldError: %v", err)
		}
		return math.Abs(e)
	}
	small, large := errAt(10), errAt(1000)
	if large >= small {
		t.Errorf("error did not shrink: |err(10)| = %v, |err(1000)| = %v", small, large)
	}
}

func TestTheorem51Bounds(t *testing.T) {
	lo, hi := Theorem51Bounds(10)
	if math.Abs(lo+1.0/600) > 1e-15 {
		t.Errorf("lower bound = %v, want −1/600", lo)
	}
	if math.Abs(hi-(0.1-2.0/300)) > 1e-15 {
		t.Errorf("upper bound = %v, want 1/10 − 2/300", hi)
	}
}

func TestScaleWeightsForBound(t *testing.T) {
	g := paperTestGame(t, 20, 61)
	if err := g.ScaleWeightsForBound(0); err == nil {
		t.Error("accepted non-positive price")
	}
	pd := 0.02
	if err := g.ScaleWeightsForBound(pd); err != nil {
		t.Fatalf("ScaleWeightsForBound: %v", err)
	}
	m := float64(g.M())
	limit := 1 / (pd * m * m)
	tight := false
	for i, w := range g.Broker.Weights {
		r := w / g.Sellers.Lambda[i]
		if r > limit*(1+1e-9) {
			t.Errorf("seller %d violates the precondition: %v > %v", i, r, limit)
		}
		if r > limit*(1-1e-9) {
			tight = true
		}
	}
	if !tight {
		t.Error("scaling should make the precondition tight for some seller")
	}
}

// TestBoundConditionDetection: unscaled paper weights generally violate the
// precondition at equilibrium prices.
func TestBoundConditionDetection(t *testing.T) {
	g := paperTestGame(t, 100, 62)
	if g.BoundCondition(10) {
		t.Error("BoundCondition accepted clearly violating weights (p^D = 10)")
	}
}

// Property: the mean-field fixed point is stable — re-deriving each seller's
// best response at the equilibrium profile reproduces her strategy.
func TestDirectTauMFFixedPointProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := stat.NewRand(seed)
		m := 3 + rng.Intn(20)
		g := PaperGame(m, rng)
		pd := 0.01 + 0.05*rng.Float64()
		tau, err := g.DirectTauMF(pd, 0, 0)
		if err != nil {
			return false
		}
		var total float64
		for i, x := range tau {
			total += g.Broker.Weights[i] * x
		}
		for i, x := range tau {
			rival := total - g.Broker.Weights[i]*x
			br := g.mfBestResponse(i, pd, rival)
			if math.Abs(br-x) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
