package core

import (
	"math"
	"testing"
	"testing/quick"

	"share/internal/stat"
)

func TestAllocationSumsToN(t *testing.T) {
	g := paperTestGame(t, 50, 10)
	tau := make([]float64, 50)
	rng := stat.NewRand(11)
	for i := range tau {
		tau[i] = rng.Float64()
	}
	chi := g.Allocation(tau)
	var total float64
	for _, c := range chi {
		if c < 0 {
			t.Fatalf("negative allocation %v", c)
		}
		total += c
	}
	if math.Abs(total-g.Buyer.N) > 1e-9 {
		t.Errorf("Σχ = %v, want N = %v", total, g.Buyer.N)
	}
}

func TestAllocationZeroFidelity(t *testing.T) {
	g := paperTestGame(t, 5, 12)
	chi := g.Allocation(make([]float64, 5))
	for i, c := range chi {
		if c != 0 {
			t.Errorf("χ[%d] = %v with all-zero τ, want 0", i, c)
		}
	}
}

func TestAllocationProportionalToWeightTimesFidelity(t *testing.T) {
	g := paperTestGame(t, 3, 13)
	g.Broker.Weights = []float64{1, 2, 3}
	tau := []float64{0.3, 0.3, 0.1}
	chi := g.Allocation(tau)
	// ωτ = 0.3, 0.6, 0.3 → proportions 1/4, 1/2, 1/4 of N=500.
	want := []float64{125, 250, 125}
	for i := range want {
		if math.Abs(chi[i]-want[i]) > 1e-9 {
			t.Errorf("χ[%d] = %v, want %v", i, chi[i], want[i])
		}
	}
}

// Property (Eq. 13 competitiveness): raising one seller's fidelity strictly
// increases her allocation and decreases everyone else's.
func TestAllocationMonotonicityProperty(t *testing.T) {
	g := paperTestGame(t, 8, 14)
	prop := func(seed int64) bool {
		rng := stat.NewRand(seed)
		tau := make([]float64, 8)
		for i := range tau {
			tau[i] = 0.05 + 0.9*rng.Float64()
		}
		i := rng.Intn(8)
		before := g.Allocation(tau)
		tau[i] *= 1.2
		after := g.Allocation(tau)
		if after[i] <= before[i] {
			return false
		}
		for j := range tau {
			if j != i && after[j] > before[j]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUtilityComponents(t *testing.T) {
	g := paperTestGame(t, 5, 15)
	// At q^D = 0 only the performance term remains.
	want := g.Buyer.Theta2 * math.Log(1+g.Buyer.Rho2*g.Buyer.V)
	if got := g.Utility(0); math.Abs(got-want) > 1e-12 {
		t.Errorf("Utility(0) = %v, want %v", got, want)
	}
	// Utility is increasing and concave in q^D (diminishing marginal).
	u1, u2, u3 := g.Utility(1), g.Utility(2), g.Utility(3)
	if !(u2 > u1 && u3 > u2) {
		t.Error("utility not increasing in q^D")
	}
	if (u3 - u2) >= (u2 - u1) {
		t.Error("utility not concave in q^D")
	}
}

func TestProfitAccountingIdentity(t *testing.T) {
	// Money conservation: buyer payment = broker revenue; broker data
	// spending = Σ seller revenues. Total welfare = utility − cost − Σloss.
	g := paperTestGame(t, 20, 16)
	p, err := g.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	var sellerRevenue, sellerLoss float64
	for i := range p.Tau {
		q := p.Chi[i] * p.Tau[i]
		sellerRevenue += p.PD * q
		sellerLoss += g.Sellers.Lambda[i] * q * q
	}
	// Broker profit = payment − cost − seller revenue.
	wantBroker := p.PM*p.QM - g.ManufacturingCost() - sellerRevenue
	if math.Abs(p.BrokerProfit-wantBroker) > 1e-9*(1+math.Abs(wantBroker)) {
		t.Errorf("broker profit = %v, want %v", p.BrokerProfit, wantBroker)
	}
	// Welfare identity.
	var sellerTotal float64
	for _, s := range p.SellerProfits {
		sellerTotal += s
	}
	welfare := p.BuyerProfit + p.BrokerProfit + sellerTotal
	wantWelfare := g.Utility(p.QD) - g.ManufacturingCost() - sellerLoss
	if math.Abs(welfare-wantWelfare) > 1e-9*(1+math.Abs(wantWelfare)) {
		t.Errorf("welfare = %v, want %v", welfare, wantWelfare)
	}
}

func TestSellerProfitsMatchesPerSeller(t *testing.T) {
	g := paperTestGame(t, 10, 17)
	rng := stat.NewRand(18)
	tau := make([]float64, 10)
	for i := range tau {
		tau[i] = rng.Float64()
	}
	batch := g.SellerProfits(0.02, tau)
	for i := range tau {
		if got := g.SellerProfit(i, 0.02, tau); math.Abs(got-batch[i]) > 1e-12 {
			t.Errorf("SellerProfit(%d) = %v, batch %v", i, got, batch[i])
		}
	}
}

func TestPrivacyLossQuadratic(t *testing.T) {
	g := paperTestGame(t, 2, 19)
	g.Broker.Weights = []float64{1, 1}
	g.Sellers.Lambda = []float64{0.5, 0.5}
	tau := []float64{0.4, 0.4}
	// χ = (250, 250); q = 100; loss = 0.5·100² = 5000.
	if got := g.PrivacyLoss(0, tau); math.Abs(got-5000) > 1e-9 {
		t.Errorf("PrivacyLoss = %v, want 5000", got)
	}
}

func TestProductQualityInstantiation(t *testing.T) {
	g := paperTestGame(t, 2, 20)
	if got := g.ProductQuality(10); math.Abs(got-10*g.Buyer.V) > 1e-12 {
		t.Errorf("q^M = %v, want q^D·v = %v", got, 10*g.Buyer.V)
	}
}
