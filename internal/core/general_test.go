package core

import (
	"math"
	"testing"

	"share/internal/nash"
)

func TestGeneralSellerProfitMatchesQuadratic(t *testing.T) {
	g := paperTestGame(t, 8, 80)
	tau := g.Stage3Tau(0.02)
	loss := g.QuadraticLoss()
	for i := range tau {
		want := g.SellerProfit(i, 0.02, tau)
		got := g.GeneralSellerProfit(i, 0.02, tau, loss)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("seller %d: general %v vs specific %v", i, got, want)
		}
	}
}

func TestGeneralSellerProfitMatchesAlternative(t *testing.T) {
	g := paperTestGame(t, 8, 81)
	tau := g.MeanFieldTau(0.02)
	loss := g.AlternativeLoss()
	for i := range tau {
		want := g.MFSellerProfit(i, 0.02, tau)
		got := g.GeneralSellerProfit(i, 0.02, tau, loss)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("seller %d: general %v vs MF-specific %v", i, got, want)
		}
	}
}

// TestSolveGeneralReproducesAnalyticSNE is the key regression: on the
// paper's quadratic loss, the fully numerical backward induction must land
// on the same equilibrium as the closed forms.
func TestSolveGeneralReproducesAnalyticSNE(t *testing.T) {
	g := paperTestGame(t, 10, 82)
	analytic, err := g.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	general, err := g.SolveGeneral(GeneralOptions{Loss: g.QuadraticLoss()})
	if err != nil {
		t.Fatalf("SolveGeneral: %v", err)
	}
	if math.Abs(general.PM-analytic.PM) > 1e-3*(1+analytic.PM) {
		t.Errorf("p^M: general %v vs analytic %v", general.PM, analytic.PM)
	}
	if math.Abs(general.PD-analytic.PD) > 1e-3*(1+analytic.PD) {
		t.Errorf("p^D: general %v vs analytic %v", general.PD, analytic.PD)
	}
	for i := range analytic.Tau {
		if math.Abs(general.Tau[i]-analytic.Tau[i]) > 1e-3*(1+analytic.Tau[i]) {
			t.Errorf("τ[%d]: general %v vs analytic %v", i, general.Tau[i], analytic.Tau[i])
		}
	}
	// Profits agree too.
	if math.Abs(general.BuyerProfit-analytic.BuyerProfit) > 1e-4*(1+math.Abs(analytic.BuyerProfit)) {
		t.Errorf("buyer profit: general %v vs analytic %v", general.BuyerProfit, analytic.BuyerProfit)
	}
}

// TestSolveGeneralCubicLossIsEquilibrium solves a loss with no closed form
// and verifies the Stage-3 outcome is a true Nash equilibrium of that game.
func TestSolveGeneralCubicLossIsEquilibrium(t *testing.T) {
	g := paperTestGame(t, 6, 83)
	loss := g.CubicLoss()
	p, err := g.SolveGeneral(GeneralOptions{Loss: loss})
	if err != nil {
		t.Fatalf("SolveGeneral: %v", err)
	}
	if !(p.PM > 0) || !(p.PD > 0) {
		t.Fatalf("degenerate prices: %+v", p)
	}
	ng := &nash.Game{
		Players: g.M(),
		Payoff: func(i int, x float64, s []float64) float64 {
			tau := append([]float64(nil), s...)
			tau[i] = x
			return g.GeneralSellerProfit(i, p.PD, tau, loss)
		},
	}
	resid, err := ng.VerifyEquilibrium(p.Tau)
	if err != nil {
		t.Fatalf("VerifyEquilibrium: %v", err)
	}
	if resid > 1e-6 {
		t.Errorf("cubic-loss Stage 3 leaves deviation gain %v", resid)
	}
	// Seller profits recorded under the cubic loss, not the quadratic one.
	for i := range p.Tau {
		want := g.GeneralSellerProfit(i, p.PD, p.Tau, loss)
		if math.Abs(p.SellerProfits[i]-want) > 1e-9 {
			t.Errorf("seller %d profit = %v, want %v under cubic loss", i, p.SellerProfits[i], want)
		}
	}
}

// TestSolveGeneralTauUpperBoundary drives Stage 3 to the τ = 1 corner: a
// vanishing privacy loss makes full fidelity dominant for every seller
// (payoff p^D·χτ − ε·τ is increasing on [0, 1]), so the numerical cascade
// must land on the boundary rather than stall at an interior golden-section
// midpoint.
func TestSolveGeneralTauUpperBoundary(t *testing.T) {
	g := paperTestGame(t, 5, 85)
	negligible := func(i int, chi, tau float64) float64 { return 1e-12 * tau }
	p, err := g.SolveGeneral(GeneralOptions{Loss: negligible})
	if err != nil {
		t.Fatalf("SolveGeneral: %v", err)
	}
	for i, tau := range p.Tau {
		if tau < 1-1e-6 {
			t.Errorf("τ[%d] = %v, want the upper boundary 1 under a negligible loss", i, tau)
		}
	}
}

// TestSolveGeneralTauLowerBoundary drives Stage 3 to the τ = 0 corner: a
// loss growing linearly in τ with a slope far above any attainable data
// price makes every positive fidelity strictly unprofitable. The cascade
// must settle on (near-)zero strategies without tripping on the allocation
// rule's denominator at τ = 0.
func TestSolveGeneralTauLowerBoundary(t *testing.T) {
	g := paperTestGame(t, 5, 86)
	prohibitive := func(i int, chi, tau float64) float64 { return 1e6 * g.Sellers.Lambda[i] * chi * tau }
	p, err := g.SolveGeneral(GeneralOptions{Loss: prohibitive})
	if err != nil {
		t.Fatalf("SolveGeneral: %v", err)
	}
	for i, tau := range p.Tau {
		if tau > 1e-6 {
			t.Errorf("τ[%d] = %v, want the lower boundary 0 under a prohibitive loss", i, tau)
		}
	}
}

func TestSolveGeneralValidation(t *testing.T) {
	g := paperTestGame(t, 4, 84)
	if _, err := g.SolveGeneral(GeneralOptions{}); err == nil {
		t.Error("accepted a nil loss function")
	}
	bad := g.Clone()
	bad.Sellers.Lambda = bad.Sellers.Lambda[:3]
	if _, err := bad.SolveGeneral(GeneralOptions{Loss: g.QuadraticLoss()}); err == nil {
		t.Error("accepted an invalid game")
	}
}
