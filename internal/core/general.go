package core

import (
	"context"
	"errors"
	"fmt"

	"share/internal/nash"
	"share/internal/numeric"
)

// This file generalizes the mechanism beyond the closed-form losses of the
// paper. §5.1.1 motivates the mean-field method with "complicated function
// forms (e.g., more complicated loss function rather than the used quadratic
// one)" where the direct derivation of analytic expressions fails. Here we
// go one step further and make the whole backward induction work for an
// arbitrary privacy-loss function: Stage 3 is solved by the generic
// numerical Nash solver, and Stages 2 and 1 by nested golden-section
// maximization over the numerical reaction functions. For the paper's
// quadratic loss this reproduces the analytic SNE (tested); for any other
// loss it is the production path.

// LossFunc computes seller i's privacy loss given her data quantity χ and
// fidelity τ. The paper's two instantiations:
//
//	quadratic (Eq. 11):  λᵢ·(χτ)²
//	alternative (§5.1.1): λᵢ·χ·τ²
//
// Implementations must be increasing in τ on [0, 1] for every χ > 0 and
// satisfy L(χ, 0) = 0.
type LossFunc func(i int, chi, tau float64) float64

// QuadraticLoss is Eq. 11, the paper's primary loss form.
func (g *Game) QuadraticLoss() LossFunc {
	return func(i int, chi, tau float64) float64 {
		q := chi * tau
		return g.Sellers.Lambda[i] * q * q
	}
}

// AlternativeLoss is the §5.1.1 mean-field demonstration form λᵢ·χ·τ².
func (g *Game) AlternativeLoss() LossFunc {
	return func(i int, chi, tau float64) float64 {
		return g.Sellers.Lambda[i] * chi * tau * tau
	}
}

// GeneralSellerProfit evaluates Ψᵢ = p^D·χᵢτᵢ − L(i, χᵢ, τᵢ) under an
// arbitrary loss, with χ from the Eq. 13 allocation rule.
func (g *Game) GeneralSellerProfit(i int, pD float64, tau []float64, loss LossFunc) float64 {
	chi := g.Allocation(tau)
	return pD*chi[i]*tau[i] - loss(i, chi[i], tau[i])
}

// GeneralOptions tune the numerical backward induction.
type GeneralOptions struct {
	// Loss is the sellers' privacy-loss function (required).
	Loss LossFunc
	// PMHi bounds the Stage-1 search for the product price (0 → 4× the
	// quadratic-loss closed form, a generous bracket).
	PMHi float64
	// PriceTol is the golden-section tolerance of the nested Stage 1–2
	// price searches (0 → 1e-6). Tightening it multiplies the Stage-3
	// solve count logarithmically; the cross-backend agreement tests use
	// 1e-9 to pin the numerical cascade to the closed forms.
	PriceTol float64
	// Nash tunes the inner Stage-3 solver.
	Nash nash.Options
}

// stage3Numeric solves the sellers' inner Nash game for a given p^D and an
// arbitrary loss.
func (g *Game) stage3Numeric(ctx context.Context, pD float64, opt GeneralOptions) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ng := &nash.Game{
		Players: g.M(),
		Payoff: func(i int, x float64, s []float64) float64 {
			tau := append([]float64(nil), s...)
			tau[i] = x
			return g.GeneralSellerProfit(i, pD, tau, opt.Loss)
		},
	}
	nopt := opt.Nash
	if nopt.Start == nil {
		// The quadratic closed form is a serviceable warm start for any
		// loss with comparable curvature.
		nopt.Start = g.Stage3Tau(pD)
	}
	res, err := ng.SolveCtx(ctx, nopt)
	if err != nil {
		return nil, fmt.Errorf("core: stage 3 numeric Nash at p^D=%g: %w", pD, err)
	}
	return res.Strategies, nil
}

// SolveGeneral runs the full backward induction with numerical stages for an
// arbitrary seller loss function: for each candidate p^M the broker's best
// p^D is found by golden search over the numerical Stage-3 reaction, and the
// buyer's best p^M by golden search over that. The result is the SNE of the
// generalized game.
//
// Cost: O(log²(1/tol)) Stage-3 solves; at m = 100 a solve takes ~10 ms, so
// the whole cascade lands well under a minute. For the paper's closed-form
// losses prefer Solve (microseconds).
func (g *Game) SolveGeneral(opt GeneralOptions) (*Profile, error) {
	return g.SolveGeneralCtx(context.Background(), opt)
}

// SolveGeneralCtx is SolveGeneral under a cancellation context, checked at
// every Stage-3 solve (inner sweeps included via nash.SolveCtx) and between
// the nested golden-section phases. With a background context results are
// bit-identical to SolveGeneral.
func (g *Game) SolveGeneralCtx(ctx context.Context, opt GeneralOptions) (*Profile, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if opt.Loss == nil {
		return nil, errors.New("core: SolveGeneral requires a loss function")
	}
	pmHi := opt.PMHi
	if pmHi <= 0 {
		pm, err := g.Stage1PM()
		if err != nil {
			return nil, fmt.Errorf("core: bracketing p^M: %w", err)
		}
		pmHi = 4 * pm
	}

	// Default to coarse tolerances for the nested searches: each objective
	// evaluation is itself an iterative solve, and profit functions are
	// flat near their optima (quadratic error in the argument).
	priceTol := opt.PriceTol
	if priceTol <= 0 {
		priceTol = 1e-6
	}

	stage2 := func(pm float64) (float64, []float64) {
		pdHi := g.Stage2PD(pm) * 4
		if pdHi <= 0 {
			pdHi = pm
		}
		var bestTau []float64
		pd := numeric.GoldenMax(func(pd float64) float64 {
			tau, err := g.stage3Numeric(ctx, pd, opt)
			if err != nil {
				return negInf
			}
			return g.BrokerProfit(pm, pd, tau)
		}, 0, pdHi, priceTol)
		bestTau, err := g.stage3Numeric(ctx, pd, opt)
		if err != nil {
			return pd, nil
		}
		return pd, bestTau
	}

	pmStar := numeric.GoldenMax(func(pm float64) float64 {
		pd, tau := stage2(pm)
		if tau == nil {
			return negInf
		}
		_ = pd
		return g.BuyerProfit(pm, tau)
	}, 0, pmHi, priceTol)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: general solve canceled: %w", err)
	}

	pdStar, tauStar := stage2(pmStar)
	if tauStar == nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: general solve canceled: %w", err)
		}
		return nil, errors.New("core: stage 3 failed at the optimal prices")
	}
	p := g.EvaluateProfile(pmStar, pdStar, tauStar)
	// Seller profits under the general loss differ from the quadratic ones
	// EvaluateProfile assumes; recompute them.
	for i := range p.SellerProfits {
		p.SellerProfits[i] = g.GeneralSellerProfit(i, pdStar, tauStar, opt.Loss)
	}
	return p, nil
}

const negInf = -1e308

// CubicLoss is an example "complicated case": L = λᵢ·χ·τ³·(1+τ). It has no
// closed-form simultaneous solution — exactly the situation §5.1.1's
// mean-field discussion targets — and is used by tests and benches to
// exercise SolveGeneral beyond the paper's forms.
func (g *Game) CubicLoss() LossFunc {
	return func(i int, chi, tau float64) float64 {
		return g.Sellers.Lambda[i] * chi * tau * tau * tau * (1 + tau)
	}
}
