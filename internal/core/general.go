package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"share/internal/nash"
	"share/internal/numeric"
	"share/internal/parallel"
)

// This file generalizes the mechanism beyond the closed-form losses of the
// paper. §5.1.1 motivates the mean-field method with "complicated function
// forms (e.g., more complicated loss function rather than the used quadratic
// one)" where the direct derivation of analytic expressions fails. Here we
// go one step further and make the whole backward induction work for an
// arbitrary privacy-loss function: Stage 3 is solved by the generic
// numerical Nash solver, and Stages 2 and 1 by nested golden-section
// maximization over the numerical reaction functions. For the paper's
// quadratic loss this reproduces the analytic SNE (tested); for any other
// loss it is the production path.
//
// The cascade is built to be interactive, not offline (DESIGN.md §14):
//
//   - Stage-3 payoffs go through an allocation-free nash.SweepPayoff —
//     χᵢ depends on the opponents only through Σωⱼτⱼ, maintained
//     incrementally — so one best-response sweep is O(m), not O(m²).
//   - Every Stage-3 solve warm-starts from the τ-profile of the nearest
//     previously probed price (scaled by the price ratio, which is exact
//     for the quadratic loss), falling back to the Eq. 20 closed form.
//   - Stage-3 tolerances follow the golden brackets: coarse while a
//     bracket is wide, geometrically tighter as it closes, and solutions
//     are memoized per price so re-probes cost nothing.
//   - The price searches propagate real errors (numeric.GoldenMaxErr /
//     GoldenMaxSpec) instead of masking cancellation behind a sentinel,
//     and Stage 2 evaluates its probe pairs concurrently.

// LossFunc computes seller i's privacy loss given her data quantity χ and
// fidelity τ. The paper's two instantiations:
//
//	quadratic (Eq. 11):  λᵢ·(χτ)²
//	alternative (§5.1.1): λᵢ·χ·τ²
//
// Implementations must be increasing in τ on [0, 1] for every χ > 0 and
// satisfy L(χ, 0) = 0.
type LossFunc func(i int, chi, tau float64) float64

// QuadraticLoss is Eq. 11, the paper's primary loss form.
func (g *Game) QuadraticLoss() LossFunc {
	return func(i int, chi, tau float64) float64 {
		q := chi * tau
		return g.Sellers.Lambda[i] * q * q
	}
}

// AlternativeLoss is the §5.1.1 mean-field demonstration form λᵢ·χ·τ².
func (g *Game) AlternativeLoss() LossFunc {
	return func(i int, chi, tau float64) float64 {
		return g.Sellers.Lambda[i] * chi * tau * tau
	}
}

// CubicLoss is an example "complicated case": L = λᵢ·χ·τ³·(1+τ). It has no
// closed-form simultaneous solution — exactly the situation §5.1.1's
// mean-field discussion targets — and is used by tests and benches to
// exercise SolveGeneral beyond the paper's forms.
func (g *Game) CubicLoss() LossFunc {
	return func(i int, chi, tau float64) float64 {
		return g.Sellers.Lambda[i] * chi * tau * tau * tau * (1 + tau)
	}
}

// GeneralSellerProfit evaluates Ψᵢ = p^D·χᵢτᵢ − L(i, χᵢ, τᵢ) under an
// arbitrary loss, with χ from the Eq. 13 allocation rule.
func (g *Game) GeneralSellerProfit(i int, pD float64, tau []float64, loss LossFunc) float64 {
	chi := g.Allocation(tau)
	return pD*chi[i]*tau[i] - loss(i, chi[i], tau[i])
}

// GeneralStats reports where one SolveGeneralCtx call spent its effort; the
// solve backend surfaces them as the solve/general/stage3 latency series
// and its iteration counters.
type GeneralStats struct {
	// Stage3Solves is the number of numerical Nash solves performed.
	Stage3Solves int
	// Stage3Sweeps is the total best-response sweeps across those solves.
	Stage3Sweeps int
	// MemoHits is the number of Stage-3 probes served from the price memo
	// instead of a fresh solve.
	MemoHits int
	// Stage3Time is the wall time spent inside Stage-3 solves.
	Stage3Time time.Duration
}

// GeneralOptions tune the numerical backward induction.
type GeneralOptions struct {
	// Loss is the sellers' privacy-loss function (required).
	Loss LossFunc
	// PMHi bounds the Stage-1 search for the product price (0 → 4× the
	// quadratic-loss closed form, a generous bracket).
	PMHi float64
	// PriceTol is the golden-section tolerance of the nested Stage 1–2
	// price searches (0 → 1e-6). Tightening it multiplies the Stage-3
	// solve count logarithmically; the cross-backend agreement tests use
	// 1e-9 to pin the numerical cascade to the closed forms.
	PriceTol float64
	// Nash tunes the inner Stage-3 solver. Tol and InnerTol set the FINAL
	// tolerances — intermediate probes run coarser per the bracket-width
	// schedule and only the refits at the located prices pay full price.
	Nash nash.Options
	// WarmTau optionally seeds the first Stage-3 solve with an equilibrium
	// profile from a previous round, solved at data price WarmPD. Golden
	// probes are nested, so successive rounds' prices are close and the
	// carried profile is usually within a sweep or two of the answer.
	WarmTau []float64
	// WarmPD is the data price WarmTau was solved at (required with
	// WarmTau; the warm profile is rescaled by the price ratio).
	WarmPD float64
	// Stats, when non-nil, receives the solve's effort counters.
	Stats *GeneralStats
	// Baseline disables every PR 8 fast path — incremental payoffs,
	// warm-start chaining, tolerance scheduling, memoization and the
	// speculative search — recovering the original O(m²)-per-sweep
	// cascade. The before/after bench probes and the equivalence tests
	// use it; production callers never should.
	Baseline bool
}

// generalSweep is the allocation-free nash.SweepPayoff of the generalized
// Stage-3 seller game. χᵢ depends on the opponents only through the
// allocation denominator D = Σωⱼτⱼ, so a frozen profile is fully captured
// by D and the per-seller products ωᵢτᵢ: a deviation probe reads
// D − ωᵢτᵢ + ωᵢx and never touches the other m−1 strategies.
type generalSweep struct {
	n    float64 // buyer demand N
	pd   float64 // data price of this Stage-3 game
	loss LossFunc
	w    []float64 // seller weights ω (read-only)
	ws   []float64 // ωᵢτᵢ of the frozen profile
	d    float64   // Σ ωⱼτⱼ of the frozen profile
}

func newGeneralSweep(g *Game, pd float64, loss LossFunc) *generalSweep {
	return &generalSweep{
		n:    g.Buyer.N,
		pd:   pd,
		loss: loss,
		w:    g.Broker.Weights,
		ws:   make([]float64, g.M()),
	}
}

// Freeze sums in seller order, so the frozen aggregate is identical for
// every worker count.
func (sw *generalSweep) Freeze(s []float64) {
	var d float64
	for j, x := range s {
		p := sw.w[j] * x
		sw.ws[j] = p
		d += p
	}
	sw.d = d
}

// At is the O(1) deviation payoff: pure over the frozen state, safe for the
// Jacobi fan-out.
func (sw *generalSweep) At(i int, x float64) float64 {
	denom := sw.d - sw.ws[i] + sw.w[i]*x
	if denom <= 0 {
		// No data changes hands (Eq. 13's zero-fidelity corner): χᵢ = 0.
		return -sw.loss(i, 0, x)
	}
	chi := sw.n * sw.w[i] * x / denom
	return sw.pd*chi*x - sw.loss(i, chi, x)
}

func (sw *generalSweep) Update(i int, x float64) {
	p := sw.w[i] * x
	sw.d += p - sw.ws[i]
	sw.ws[i] = p
}

// stage3Entry memoizes one solved Stage-3 equilibrium. tau*(p^D) does not
// depend on p^M, so the memo spans the whole cascade: every golden probe of
// every Stage-2 search shares it. Entries are append-only and immutable
// once stored.
type stage3Entry struct {
	pd  float64
	tol float64   // Stage-3 Tol the entry was solved at
	tau []float64 // read-only equilibrium profile
	qD  float64   // DatasetQuality(tau), the sufficient statistic of Stages 1–2
}

// generalState carries one SolveGeneralCtx invocation's shared machinery:
// the memo table, the tolerance schedule and the effort counters.
type generalState struct {
	g        *Game
	loss     LossFunc
	nash     nash.Options // final tolerances; probes run scheduled copies
	priceTol float64
	loose    float64 // coarsest scheduled Stage-3 Tol, tied to priceTol
	mc       float64 // manufacturing cost, constant across the cascade

	// Stage-2 window prediction: the broker reaction p^D*(p^M) is close to
	// linear through the origin (exactly v·p^M/2 for the quadratic loss),
	// so each Stage-2 search brackets around lastPD·(pm/lastPM) with a
	// radius scaled to the last observed prediction error — full bracket
	// until one has been measured, or when the windowed optimum presses
	// against its edge.
	lastPD  float64
	lastPM  float64
	predErr float64

	warmPD  float64
	warmTau []float64

	entries []*stage3Entry
	pmEvals int
	stats   GeneralStats
}

// looseTolCap caps how coarse the scheduled Stage-3 tolerance may start;
// the per-solve cap additionally tracks PriceTol (see SolveGeneralCtx) so
// tight price searches get a proportionally quiet noise floor.
const looseTolCap = 1e-5

// schedTol maps a golden bracket's remaining width fraction onto a Stage-3
// tolerance: loose·frac², clamped to [floor, loose]. The quadratic law is
// signal-matched, not arbitrary: profit differences golden compares shrink
// as curvature·width² while the profit noise a Stage-3 solve at Tol = t
// contributes is ∝ t, so t ∝ width² keeps the noise a constant fraction of
// the signal at every width — including inside a narrowed window, where
// frac is measured against the full bracket, never the window.
func (st *generalState) schedTol(floor, frac float64) float64 {
	tol := st.loose * frac * frac
	if tol < floor {
		return floor
	}
	if tol > st.loose {
		return st.loose
	}
	return tol
}

// innerFor derives the per-best-response golden tolerance from the sweep
// tolerance: strategies cannot settle below the accuracy each response is
// located to, so the inner search tracks the outer schedule — coarse sweeps
// get coarse (cheap) best responses.
func (st *generalState) innerFor(tol float64) float64 {
	inner := tol / 16
	if inner < st.nash.InnerTol {
		inner = st.nash.InnerTol
	}
	if inner > 1e-7 {
		inner = 1e-7
	}
	return inner
}

// lookup returns a memoized entry at exactly pd solved at least as tightly
// as tol, scanning only the first frozen entries (concurrent probe pairs
// freeze the table so both evaluations see identical state regardless of
// worker count).
func (st *generalState) lookup(pd, tol float64, frozen int) *stage3Entry {
	for _, e := range st.entries[:frozen] {
		if e.pd == pd && e.tol <= tol {
			return e
		}
	}
	return nil
}

// startFor builds the warm-start profile for a Stage-3 solve at pd: the
// τ-profile of the nearest previously probed price — the carried previous
// round's profile counts as probe zero — rescaled by the price ratio
// (exact for the quadratic loss, whose Eq. 20 fidelities are linear in
// p^D below the clamp), else the quadratic closed form.
func (st *generalState) startFor(pd float64, frozen int) []float64 {
	bestPD := st.warmPD
	bestTau := st.warmTau
	for _, e := range st.entries[:frozen] {
		if bestTau == nil || math.Abs(e.pd-pd) < math.Abs(bestPD-pd) {
			bestPD, bestTau = e.pd, e.tau
		}
	}
	if bestTau == nil {
		return st.g.Stage3Tau(pd)
	}
	start := make([]float64, len(bestTau))
	scale := 1.0
	if bestPD > 0 {
		scale = pd / bestPD
	}
	for i, t := range bestTau {
		s := t * scale
		if s > 1 {
			s = 1
		}
		start[i] = s
	}
	return start
}

// solveStage3 runs one numerical Nash solve at pd against the frozen memo
// prefix. It does not touch shared state — callers append the entry and
// fold the iteration count in a deterministic order.
func (st *generalState) solveStage3(ctx context.Context, pd, tol, inner float64, frozen int) (*stage3Entry, int, error) {
	nopt := st.nash
	nopt.Start = st.startFor(pd, frozen)
	nopt.Tol = tol
	nopt.InnerTol = inner
	nopt.NoAudit = true
	// Warm starts land within a few price-tolerances of the equilibrium, so
	// most best responses sit deep inside a ±0.05 window of the current
	// strategy; nash's full-bracket fallback keeps exactness when they don't.
	nopt.LocalRadius = 0.05
	ng := &nash.Game{
		Players: st.g.M(),
		Sweeper: newGeneralSweep(st.g, pd, st.loss),
	}
	res, err := ng.SolveCtx(ctx, nopt)
	if err != nil {
		return nil, 0, fmt.Errorf("core: stage 3 numeric Nash at p^D=%g: %w", pd, err)
	}
	return &stage3Entry{
		pd:  pd,
		tol: tol,
		tau: res.Strategies,
		qD:  st.g.DatasetQuality(res.Strategies),
	}, res.Iterations, nil
}

// stage3At resolves one Stage-3 equilibrium at pd — memo hit or fresh
// solve — and records it.
func (st *generalState) stage3At(ctx context.Context, pd, tol float64) (*stage3Entry, error) {
	if e := st.lookup(pd, tol, len(st.entries)); e != nil {
		st.stats.MemoHits++
		return e, nil
	}
	t0 := time.Now()
	e, iters, err := st.solveStage3(ctx, pd, tol, st.innerFor(tol), len(st.entries))
	st.stats.Stage3Time += time.Since(t0)
	if err != nil {
		return nil, err
	}
	st.stats.Stage3Solves++
	st.stats.Stage3Sweeps += iters
	st.entries = append(st.entries, e)
	return e, nil
}

// stage3Pair resolves the two probes of one speculative golden step. Both
// evaluations read the memo frozen at entry — concurrent workers see the
// same state — and results are folded in argument order, so the table's
// evolution is bit-identical for every worker count.
func (st *generalState) stage3Pair(ctx context.Context, workers int, pd1, pd2, tol float64) (*stage3Entry, *stage3Entry, error) {
	if pd1 == pd2 {
		e, err := st.stage3At(ctx, pd1, tol)
		return e, e, err
	}
	frozen := len(st.entries)
	out := [2]*stage3Entry{st.lookup(pd1, tol, frozen), st.lookup(pd2, tol, frozen)}
	iters := [2]int{}
	errs := [2]error{}
	pds := [2]float64{pd1, pd2}
	inner := st.innerFor(tol)
	t0 := time.Now()
	parallel.For(workers, 2, func(i int) {
		if out[i] != nil {
			return
		}
		out[i], iters[i], errs[i] = st.solveStage3(ctx, pds[i], tol, inner, frozen)
	})
	st.stats.Stage3Time += time.Since(t0)
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			return nil, nil, errs[i]
		}
		if iters[i] > 0 {
			st.stats.Stage3Solves++
			st.stats.Stage3Sweeps += iters[i]
			st.entries = append(st.entries, out[i])
		} else {
			st.stats.MemoHits++
		}
	}
	return out[0], out[1], nil
}

// brokerProfit evaluates Ω(p^M, p^D, τ) from a memoized entry's dataset
// quality — the same arithmetic as Game.BrokerProfit without the O(m)
// re-aggregation.
func (st *generalState) brokerProfit(pm, pd float64, e *stage3Entry) float64 {
	return pm*st.g.ProductQuality(e.qD) - st.mc - pd*e.qD
}

// buyerProfit is Game.BuyerProfit from a memoized dataset quality.
func (st *generalState) buyerProfit(pm float64, e *stage3Entry) float64 {
	return st.g.Utility(e.qD) - pm*st.g.ProductQuality(e.qD)
}

// goldenPD runs one speculative golden search for the broker's best p^D on
// [lo, hi]. Probe tolerances are scheduled against the FULL bracket width
// (not the window's): golden compares profit differences that shrink with
// width² of the distance to the optimum, so keeping the Stage-3 noise a
// fixed fraction of that signal means tol ∝ (width/full)² regardless of
// where the search started.
func (st *generalState) goldenPD(ctx context.Context, workers int, pm, lo, hi, full, tolF float64) (float64, error) {
	return numeric.GoldenMaxSpec(func(x1, x2, width float64) (float64, float64, error) {
		if err := ctx.Err(); err != nil {
			return 0, 0, err
		}
		frac := width / full
		tol := st.schedTol(tolF, frac*frac)
		e1, e2, err := st.stage3Pair(ctx, workers, x1, x2, tol)
		if err != nil {
			return 0, 0, err
		}
		return st.brokerProfit(pm, x1, e1), st.brokerProfit(pm, x2, e2), nil
	}, lo, hi, st.priceTol)
}

// stage2 locates the broker's best p^D for a given p^M by speculative
// golden search over the memoized Stage-3 reaction, then refits Stage 3 at
// the located price to tolF — the accuracy this Stage-2 call owes its
// caller (coarse during Stage 1's early bracket, finalTol at the end).
//
// Consecutive calls exploit the near-linearity of the broker reaction:
// each search brackets around lastPD·(pm/lastPM) with a radius scaled to
// the last prediction error, falling back to the full [0, 4·Stage2PD]
// bracket when no error has been measured yet or when the windowed optimum
// presses against its edge (the prediction was wrong — golden on a bracket
// excluding the optimum converges to the boundary, which the margin test
// catches).
func (st *generalState) stage2(ctx context.Context, workers int, pm, tolF float64) (float64, *stage3Entry, error) {
	full := st.g.Stage2PD(pm) * 4
	if full <= 0 {
		full = pm
	}
	lo, hi := 0.0, full
	windowed := false
	if st.lastPD > 0 && st.lastPM > 0 && !math.IsInf(st.predErr, 1) {
		pred := st.lastPD * (pm / st.lastPM)
		r := 4*st.predErr + 8*st.priceTol
		if pred-r > lo && pred+r < hi {
			lo, hi = pred-r, pred+r
			windowed = true
		}
	}
	pd, err := st.goldenPD(ctx, workers, pm, lo, hi, full, tolF)
	if err != nil {
		return 0, nil, err
	}
	if windowed && (pd-lo < 4*st.priceTol || hi-pd < 4*st.priceTol) {
		pd, err = st.goldenPD(ctx, workers, pm, 0, full, full, tolF)
		if err != nil {
			return 0, nil, err
		}
	}
	if st.lastPD > 0 && st.lastPM > 0 {
		st.predErr = math.Abs(pd - st.lastPD*(pm/st.lastPM))
	}
	st.lastPD, st.lastPM = pd, pm
	e, err := st.stage3At(ctx, pd, tolF)
	if err != nil {
		return 0, nil, err
	}
	return pd, e, nil
}

// SolveGeneral runs the full backward induction with numerical stages for an
// arbitrary seller loss function: for each candidate p^M the broker's best
// p^D is found by golden search over the numerical Stage-3 reaction, and the
// buyer's best p^M by golden search over that. The result is the SNE of the
// generalized game.
//
// Cost: O(log²(1/tol)) Stage-3 solves, each O(m · sweeps) thanks to the
// incremental payoff contract, warm-started from its nearest probed
// neighbour and solved no tighter than its golden bracket warrants. At
// m = 100 the whole cascade lands in a few milliseconds (BENCH_PR8.json) —
// interactive, though the closed-form Solve remains ~10³× faster for the
// paper's quadratic loss.
func (g *Game) SolveGeneral(opt GeneralOptions) (*Profile, error) {
	return g.SolveGeneralCtx(context.Background(), opt)
}

// SolveGeneralCtx is SolveGeneral under a cancellation context, checked at
// every Stage-3 solve (inner sweeps included via nash.SolveCtx) and between
// the nested golden-section phases; a mid-search cancellation surfaces as
// the context's error, never as a fabricated profile. With a background
// context results are bit-identical to SolveGeneral.
func (g *Game) SolveGeneralCtx(ctx context.Context, opt GeneralOptions) (*Profile, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if opt.Loss == nil {
		return nil, errors.New("core: SolveGeneral requires a loss function")
	}
	pmHi := opt.PMHi
	pmCenter := 0.0 // quadratic closed-form guess; 0 disables windowing
	if pmHi <= 0 {
		pm, err := g.Stage1PM()
		if err != nil {
			return nil, fmt.Errorf("core: bracketing p^M: %w", err)
		}
		pmHi = 4 * pm
		pmCenter = pm
	}

	// Default to coarse tolerances for the nested searches: each objective
	// evaluation is itself an iterative solve, and profit functions are
	// flat near their optima (quadratic error in the argument).
	priceTol := opt.PriceTol
	if priceTol <= 0 {
		priceTol = 1e-6
	}
	if opt.Baseline {
		return g.solveGeneralBaseline(ctx, opt, pmHi, priceTol)
	}

	nopt := opt.Nash
	if nopt.Tol <= 0 {
		nopt.Tol = 1e-9
	}
	if nopt.InnerTol <= 0 {
		nopt.InnerTol = 1e-11
	}
	// The loose cap of the tolerance schedule tracks the price tolerance:
	// a caller asking for 1e-9 prices needs the Stage-3 noise floor far
	// below what a 1e-4 interactive solve tolerates.
	loose := 10 * priceTol
	if loose > looseTolCap {
		loose = looseTolCap
	}
	if loose < nopt.Tol {
		loose = nopt.Tol
	}
	st := &generalState{
		g:        g,
		loss:     opt.Loss,
		nash:     nopt,
		priceTol: priceTol,
		loose:    loose,
		mc:       g.ManufacturingCost(),
		predErr:  math.Inf(1),
		warmPD:   opt.WarmPD,
		warmTau:  opt.WarmTau,
	}
	if st.warmTau != nil && len(st.warmTau) != g.M() {
		return nil, fmt.Errorf("core: warm-start profile has %d entries for %d sellers", len(st.warmTau), g.M())
	}
	workers := nopt.Workers

	// stage1 golden-searches the buyer's price over [lo, hi]. Golden
	// evaluates its two initial interior points at the starting width and
	// one probe per shrink step after, so the k-th evaluation sees bracket
	// width W·invPhi^(k−1); each probe's Stage-2 call owes only the
	// Stage-3 accuracy that width warrants (measured against the full
	// bracket, exactly like the Stage-2 schedule).
	stage1 := func(lo, hi float64) (float64, error) {
		evals := 0
		w := hi - lo
		return numeric.GoldenMaxErr(func(pm float64) (float64, error) {
			width := w * math.Pow(numeric.InvPhi, float64(max(evals-1, 0)))
			evals++
			st.pmEvals++
			_, e, err := st.stage2(ctx, workers, pm, st.schedTol(st.nash.Tol, width/pmHi))
			if err != nil {
				return 0, err
			}
			return st.buyerProfit(pm, e), nil
		}, lo, hi, priceTol)
	}

	// The quadratic closed form is an excellent p^M guess for losses of
	// comparable curvature (exact for the quadratic itself), so Stage 1
	// first searches a window around it and falls back to the full
	// bracket when the windowed optimum presses against an edge.
	pmLo, pmW := 0.0, pmHi
	windowed := false
	if pmCenter > 0 {
		if lo, hi := 0.75*pmCenter, 1.25*pmCenter; hi < pmHi {
			pmLo, pmW = lo, hi
			windowed = true
		}
	}
	pmStar, err := stage1(pmLo, pmW)
	if err != nil {
		return nil, fmt.Errorf("core: general solve: %w", err)
	}
	if windowed && (pmStar-pmLo < 4*priceTol || pmW-pmStar < 4*priceTol) {
		pmStar, err = stage1(0, pmHi)
		if err != nil {
			return nil, fmt.Errorf("core: general solve: %w", err)
		}
	}

	// Final descent at full accuracy: the Stage-2 refit and the Stage-3
	// solves behind it reuse the memo, so the tight pass costs a handful
	// of warm-started sweeps.
	pdStar, eStar, err := st.stage2(ctx, workers, pmStar, st.nash.Tol)
	if err != nil {
		return nil, fmt.Errorf("core: general solve: %w", err)
	}
	if opt.Stats != nil {
		*opt.Stats = st.stats
	}
	p := g.EvaluateProfile(pmStar, pdStar, eStar.tau)
	// Seller profits under the general loss differ from the quadratic ones
	// EvaluateProfile assumes; recompute them.
	for i := range p.SellerProfits {
		p.SellerProfits[i] = g.GeneralSellerProfit(i, pdStar, eStar.tau, opt.Loss)
	}
	return p, nil
}

// solveGeneralBaseline is the pre-optimization cascade — per-evaluation
// allocation of the full χ-vector, cold closed-form starts, fixed final
// tolerances, no memo, sequential searches — kept as the before/after
// reference for the BENCH_PR8 probes and the fast-vs-baseline equivalence
// tests. Error propagation matches the fast path: the searches thread the
// real Stage-3 error out instead of masking it behind a sentinel.
func (g *Game) solveGeneralBaseline(ctx context.Context, opt GeneralOptions, pmHi, priceTol float64) (*Profile, error) {
	stage3 := func(pd float64) ([]float64, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ng := &nash.Game{
			Players: g.M(),
			Payoff: func(i int, x float64, s []float64) float64 {
				tau := append([]float64(nil), s...)
				tau[i] = x
				return g.GeneralSellerProfit(i, pd, tau, opt.Loss)
			},
		}
		nopt := opt.Nash
		if nopt.Start == nil {
			// The quadratic closed form is a serviceable warm start for any
			// loss with comparable curvature.
			nopt.Start = g.Stage3Tau(pd)
		}
		res, err := ng.SolveCtx(ctx, nopt)
		if err != nil {
			return nil, fmt.Errorf("core: stage 3 numeric Nash at p^D=%g: %w", pd, err)
		}
		return res.Strategies, nil
	}

	stage2 := func(pm float64) (float64, []float64, error) {
		pdHi := g.Stage2PD(pm) * 4
		if pdHi <= 0 {
			pdHi = pm
		}
		pd, err := numeric.GoldenMaxErr(func(pd float64) (float64, error) {
			tau, err := stage3(pd)
			if err != nil {
				return 0, err
			}
			return g.BrokerProfit(pm, pd, tau), nil
		}, 0, pdHi, priceTol)
		if err != nil {
			return 0, nil, err
		}
		tau, err := stage3(pd)
		if err != nil {
			return 0, nil, err
		}
		return pd, tau, nil
	}

	pmStar, err := numeric.GoldenMaxErr(func(pm float64) (float64, error) {
		_, tau, err := stage2(pm)
		if err != nil {
			return 0, err
		}
		return g.BuyerProfit(pm, tau), nil
	}, 0, pmHi, priceTol)
	if err != nil {
		return nil, fmt.Errorf("core: general solve: %w", err)
	}

	pdStar, tauStar, err := stage2(pmStar)
	if err != nil {
		return nil, fmt.Errorf("core: general solve: %w", err)
	}
	p := g.EvaluateProfile(pmStar, pdStar, tauStar)
	for i := range p.SellerProfits {
		p.SellerProfits[i] = g.GeneralSellerProfit(i, pdStar, tauStar, opt.Loss)
	}
	return p, nil
}
