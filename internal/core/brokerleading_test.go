package core

import (
	"math"
	"testing"
)

func TestBrokerLeadingExtractsBuyerSurplus(t *testing.T) {
	g := paperTestGame(t, 50, 70)
	p, err := g.SolveBrokerLeading(0)
	if err != nil {
		t.Fatalf("SolveBrokerLeading: %v", err)
	}
	// Participation binds: the buyer is left with (numerically) zero profit.
	if math.Abs(p.BuyerProfit) > 1e-6*(1+math.Abs(p.PM*p.QM)) {
		t.Errorf("buyer profit = %v, want ≈0 under full surplus extraction", p.BuyerProfit)
	}
}

func TestBrokerLeadingBeatsBuyerLeadingForBroker(t *testing.T) {
	g := paperTestGame(t, 50, 71)
	buyerLed, err := g.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	brokerLed, err := g.SolveBrokerLeading(0)
	if err != nil {
		t.Fatalf("SolveBrokerLeading: %v", err)
	}
	if brokerLed.BrokerProfit < buyerLed.BrokerProfit-1e-9 {
		t.Errorf("leading broker earns %v < following broker's %v", brokerLed.BrokerProfit, buyerLed.BrokerProfit)
	}
	// And symmetrically, the buyer is worse off when she loses leadership.
	if brokerLed.BuyerProfit > buyerLed.BuyerProfit+1e-9 {
		t.Errorf("buyer better off without leadership: %v > %v", brokerLed.BuyerProfit, buyerLed.BuyerProfit)
	}
}

func TestBrokerLeadingSellersStillAtNash(t *testing.T) {
	g := paperTestGame(t, 20, 72)
	p, err := g.SolveBrokerLeading(0)
	if err != nil {
		t.Fatalf("SolveBrokerLeading: %v", err)
	}
	want := g.Stage3Tau(p.PD)
	for i := range want {
		if math.Abs(p.Tau[i]-want[i]) > 1e-12 {
			t.Errorf("τ[%d] = %v, want Eq. 20 reaction %v", i, p.Tau[i], want[i])
		}
	}
}

func TestBrokerLeadingValidates(t *testing.T) {
	g := paperTestGame(t, 5, 73)
	g.Sellers.Lambda = g.Sellers.Lambda[:4]
	if _, err := g.SolveBrokerLeading(0); err == nil {
		t.Error("accepted an invalid game")
	}
}
