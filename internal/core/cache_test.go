package core

import (
	"math"
	"testing"

	"share/internal/stat"
)

// TestSolveCachedBitIdentical is the core guarantee of the Precompute fast
// path: cached and uncached solves produce bit-for-bit identical profiles
// (the cache stores the same intermediate values the uncached path computes,
// summed in the same order).
func TestSolveCachedBitIdentical(t *testing.T) {
	for _, m := range []int{1, 2, 17, 100, 1000} {
		g := PaperGame(m, stat.NewRand(99))
		plain, err := g.Solve()
		if err != nil {
			t.Fatalf("m=%d Solve: %v", m, err)
		}
		if err := g.Precompute(); err != nil {
			t.Fatalf("m=%d Precompute: %v", m, err)
		}
		cached, err := g.SolveValidated()
		if err != nil {
			t.Fatalf("m=%d SolveValidated: %v", m, err)
		}
		if plain.PM != cached.PM || plain.PD != cached.PD {
			t.Fatalf("m=%d: cached prices (%v, %v) != uncached (%v, %v)",
				m, cached.PM, cached.PD, plain.PM, plain.PD)
		}
		for i := range plain.Tau {
			if plain.Tau[i] != cached.Tau[i] || plain.Chi[i] != cached.Chi[i] ||
				plain.SellerProfits[i] != cached.SellerProfits[i] {
				t.Fatalf("m=%d seller %d: cached profile differs from uncached", m, i)
			}
		}
		if plain.BuyerProfit != cached.BuyerProfit || plain.BrokerProfit != cached.BrokerProfit {
			t.Fatalf("m=%d: cached profits differ from uncached", m)
		}
	}
}

func TestPrecomputeAggregatesMatch(t *testing.T) {
	g := PaperGame(50, stat.NewRand(3))
	wantS, wantW := g.SumInvLambda(), g.SumSqrtWeightOverLambda()
	if err := g.Precompute(); err != nil {
		t.Fatal(err)
	}
	if got := g.SumInvLambda(); got != wantS {
		t.Errorf("cached SumInvLambda = %v, want %v", got, wantS)
	}
	if got := g.SumSqrtWeightOverLambda(); got != wantW {
		t.Errorf("cached SumSqrtWeightOverLambda = %v, want %v", got, wantW)
	}
}

func TestPrecomputeRejectsInvalidGame(t *testing.T) {
	g := PaperGame(5, stat.NewRand(4))
	g.Sellers.Lambda[2] = -1
	if err := g.Precompute(); err == nil {
		t.Fatal("Precompute accepted a negative λ")
	}
	// A failed Precompute must not leave a snapshot behind.
	g.Sellers.Lambda[2] = 0.5
	if got, want := g.SumInvLambda(), sumInv(g.Sellers.Lambda); got != want {
		t.Errorf("after failed Precompute: SumInvLambda = %v, want fresh %v", got, want)
	}
}

// TestSetMutatorsInvalidate: SetLambda/SetWeight drop the snapshot so the
// next solve sees the new parameters.
func TestSetMutatorsInvalidate(t *testing.T) {
	g := PaperGame(10, stat.NewRand(5))
	if err := g.Precompute(); err != nil {
		t.Fatal(err)
	}
	before := g.SumInvLambda()
	g.SetLambda(0, g.Sellers.Lambda[0]/2)
	after := g.SumInvLambda()
	if after == before {
		t.Error("SetLambda did not invalidate the cached SumInvLambda")
	}
	if want := sumInv(g.Sellers.Lambda); after != want {
		t.Errorf("SumInvLambda after SetLambda = %v, want %v", after, want)
	}

	if err := g.Precompute(); err != nil {
		t.Fatal(err)
	}
	w0 := g.SumSqrtWeightOverLambda()
	g.SetWeight(0, g.Broker.Weights[0]*4)
	if g.SumSqrtWeightOverLambda() == w0 {
		t.Error("SetWeight did not invalidate the cached aggregate")
	}
}

// TestSliceReplacementInvalidates: replacing or truncating the seller slices
// is caught by the pointer/length guard without an explicit Invalidate.
func TestSliceReplacementInvalidates(t *testing.T) {
	g := PaperGame(10, stat.NewRand(6))
	if err := g.Precompute(); err != nil {
		t.Fatal(err)
	}
	g.Sellers.Lambda = append([]float64(nil), g.Sellers.Lambda...)
	for i := range g.Sellers.Lambda {
		g.Sellers.Lambda[i] *= 3
	}
	if want := sumInv(g.Sellers.Lambda); g.SumInvLambda() != want {
		t.Error("slice replacement served a stale SumInvLambda")
	}

	if err := g.Precompute(); err != nil {
		t.Fatal(err)
	}
	g.Sellers.Lambda = g.Sellers.Lambda[:4]
	if _, err := g.Solve(); err == nil {
		t.Error("Solve accepted mismatched seller counts after truncation (stale validation)")
	}
}

// TestInvalidateAfterDirectWrite documents the escape hatch for in-place
// element writes.
func TestInvalidateAfterDirectWrite(t *testing.T) {
	g := PaperGame(10, stat.NewRand(7))
	if err := g.Precompute(); err != nil {
		t.Fatal(err)
	}
	g.Sellers.Lambda[3] *= 10
	g.Invalidate()
	if want := sumInv(g.Sellers.Lambda); g.SumInvLambda() != want {
		t.Errorf("SumInvLambda after Invalidate = %v, want %v", g.SumInvLambda(), want)
	}
}

// TestCloneCarriesSnapshot: clones keep the O(1) fast path, and mutating the
// clone never leaks back into the original.
func TestCloneCarriesSnapshot(t *testing.T) {
	g := PaperGame(20, stat.NewRand(8))
	if err := g.Precompute(); err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	cp, err := c.SolveValidated()
	if err != nil {
		t.Fatal(err)
	}
	gp, err := g.SolveValidated()
	if err != nil {
		t.Fatal(err)
	}
	if cp.PM != gp.PM {
		t.Errorf("clone solve %v != original %v", cp.PM, gp.PM)
	}

	c.SetLambda(0, c.Sellers.Lambda[0]*5)
	if g.SumInvLambda() == c.SumInvLambda() {
		t.Error("mutating the clone changed the original's aggregate")
	}
	if want := sumInv(c.Sellers.Lambda); c.SumInvLambda() != want {
		t.Errorf("clone aggregate stale after SetLambda: %v, want %v", c.SumInvLambda(), want)
	}
}

// TestSolveStillValidatesBuyerWhenCached: the cached Solve path keeps the
// O(1) buyer validation so buyer-parameter sweeps cannot slip invalid
// values through.
func TestSolveStillValidatesBuyerWhenCached(t *testing.T) {
	g := PaperGame(10, stat.NewRand(9))
	if err := g.Precompute(); err != nil {
		t.Fatal(err)
	}
	g.Buyer.Theta1, g.Buyer.Theta2 = 1.5, -0.5
	if _, err := g.Solve(); err == nil {
		t.Error("cached Solve accepted θ₁ = 1.5")
	}
}

func TestStage3TauCachedBitIdentical(t *testing.T) {
	g := PaperGame(64, stat.NewRand(10))
	for _, pd := range []float64{0, 0.001, 0.02, 0.5, 10} {
		plain := g.Stage3Tau(pd)
		if err := g.Precompute(); err != nil {
			t.Fatal(err)
		}
		cached := g.Stage3Tau(pd)
		g.Invalidate()
		for i := range plain {
			if plain[i] != cached[i] {
				t.Fatalf("pd=%g seller %d: cached τ=%v, uncached τ=%v (want bit-exact)",
					pd, i, cached[i], plain[i])
			}
		}
	}
}

// TestDeviationProfitsBitIdentical pins the allocation-free sweep evaluator
// to EvaluateProfile: identical bits for buyer, broker and the requested
// seller profits, cached or not, including the zero-fidelity edge case.
func TestDeviationProfitsBitIdentical(t *testing.T) {
	for _, m := range []int{2, 17, 400} {
		g := PaperGame(m, stat.NewRand(99))
		for _, precompute := range []bool{false, true} {
			if precompute {
				if err := g.Precompute(); err != nil {
					t.Fatal(err)
				}
			}
			for _, pd := range []float64{0, 0.01, 0.05} {
				tau := g.Stage3Tau(pd)
				into := g.Stage3TauInto(pd, make([]float64, m))
				for i := range tau {
					if tau[i] != into[i] {
						t.Fatalf("m=%d pd=%g: Stage3TauInto[%d]=%g != Stage3Tau=%g", m, pd, i, into[i], tau[i])
					}
				}
				prof := g.EvaluateProfile(0.04, pd, tau)
				sp := make([]float64, 2)
				buyer, broker := g.DeviationProfits(0.04, pd, tau, sp)
				if buyer != prof.BuyerProfit || broker != prof.BrokerProfit {
					t.Fatalf("m=%d pd=%g: DeviationProfits (%g, %g) != Profile (%g, %g)",
						m, pd, buyer, broker, prof.BuyerProfit, prof.BrokerProfit)
				}
				for i := range sp {
					if sp[i] != prof.SellerProfits[i] {
						t.Fatalf("m=%d pd=%g: seller %d profit %g != %g", m, pd, i, sp[i], prof.SellerProfits[i])
					}
				}
			}
		}
	}
}

func sumInv(lambda []float64) float64 {
	var s float64
	for _, l := range lambda {
		s += 1 / l
	}
	return s
}

// sanity: the guard must not misfire on ordinary precomputed games.
func TestCachedGuardAcceptsValidSnapshot(t *testing.T) {
	g := PaperGame(5, stat.NewRand(11))
	if err := g.Precompute(); err != nil {
		t.Fatal(err)
	}
	if g.cached() == nil {
		t.Fatal("guard rejected a fresh snapshot")
	}
	if math.IsNaN(g.cached().sumSqrtWL) {
		t.Fatal("snapshot holds NaN aggregate")
	}
}
