package core

import (
	"fmt"
	"math"

	"share/internal/numeric"
)

// DeviationReport records how much any single participant could gain by
// unilaterally deviating from a profile — the operational test of Def. 4.2.
// At a true SNE every gain is ≤ 0 up to numerical tolerance.
//
// Stackelberg semantics: as in the paper's own existence proof (§5.1.4,
// "when the broker and sellers hold the optimal strategy *expressions* in
// Eq. 25 and Eq. 20"), a leader's deviation is judged with the lower stages
// re-reacting along their reaction functions — a deviated p^M induces
// p^D = v·p^M/2 and then τ*(p^D); a deviated p^D induces τ*(p^D). The
// sellers, being the last stage, deviate against *fixed* rivals — the
// ordinary Nash condition (Eq. 16). This also matches how Fig. 2 of the
// paper is generated (broker and seller profits move with the deviated
// upstream price, which only happens when downstream stages re-react).
type DeviationReport struct {
	// BuyerGain is max over p^M of Φ along the reaction-substituted
	// objective, minus Φ at p^M*.
	BuyerGain float64
	// BuyerBest is the deviating product price achieving BuyerGain.
	BuyerBest float64
	// BrokerGain is max over p^D of Ω(p^M*, p^D, τ*(p^D)) minus Ω at p^D*.
	BrokerGain float64
	// BrokerBest is the deviating data price achieving BrokerGain.
	BrokerBest float64
	// SellerGains[i] is max over τᵢ ∈ [0,1] of Ψᵢ(p^D*, τ*₋ᵢ, τᵢ) minus
	// Ψᵢ(p^D*, τ*), rivals held fixed.
	SellerGains []float64
	// SellerBest[i] is the deviating fidelity achieving SellerGains[i].
	SellerBest []float64
}

// MaxGain returns the largest profitable deviation across all participants.
func (r *DeviationReport) MaxGain() float64 {
	g := math.Max(r.BuyerGain, r.BrokerGain)
	for _, s := range r.SellerGains {
		if s > g {
			g = s
		}
	}
	return g
}

// BuyerObjective is the buyer's profit at product price pM with the broker
// and sellers re-reacting along Eqs. 25 and 20 — the objective Stage 1
// maximizes, evaluated through the full profile machinery (not the reduced
// closed form), so it remains exact when fidelities clamp at τ = 1.
func (g *Game) BuyerObjective(pM float64) float64 {
	pd := g.Stage2PD(pM)
	return g.BuyerProfit(pM, g.Stage3Tau(pd))
}

// BrokerObjective is the broker's profit at data price pD with the buyer's
// price fixed at pM and the sellers re-reacting along Eq. 20.
func (g *Game) BrokerObjective(pM, pD float64) float64 {
	return g.BrokerProfit(pM, pD, g.Stage3Tau(pD))
}

// VerifySNE searches for profitable unilateral deviations from profile p.
// Price deviations are searched on [0, 3·x*] brackets around the equilibrium
// (wide enough to catch any concave objective's maximum; both objectives
// are single-peaked); seller deviations over the feasible fidelity range
// [0, 1]. All searches use golden-section on the exact profit functions, so
// the report remains valid when fidelities are clamped at the boundary.
func (g *Game) VerifySNE(p *Profile) *DeviationReport {
	r := &DeviationReport{
		SellerGains: make([]float64, g.M()),
		SellerBest:  make([]float64, g.M()),
	}

	base := g.BuyerObjective(p.PM)
	best := numeric.GoldenMax(g.BuyerObjective, 0, 3*p.PM+1e-9, 0)
	r.BuyerBest = best
	r.BuyerGain = g.BuyerObjective(best) - base

	brokerObj := func(pd float64) float64 { return g.BrokerObjective(p.PM, pd) }
	baseB := brokerObj(p.PD)
	bestB := numeric.GoldenMax(brokerObj, 0, 3*p.PD+1e-9, 0)
	r.BrokerBest = bestB
	r.BrokerGain = brokerObj(bestB) - baseB

	tau := append([]float64(nil), p.Tau...)
	for i := range tau {
		orig := tau[i]
		obj := func(t float64) float64 {
			tau[i] = t
			v := g.SellerProfit(i, p.PD, tau)
			tau[i] = orig
			return v
		}
		baseS := obj(orig)
		bestS := numeric.GoldenMax(obj, 0, 1, 0)
		r.SellerBest[i] = bestS
		r.SellerGains[i] = obj(bestS) - baseS
	}
	return r
}

// FirstOrderResiduals holds the first-order-condition residuals at a
// profile: the derivative of each participant's objective with respect to
// her own strategy, computed numerically. At an interior SNE all residuals
// are ~0; sellers clamped at τ = 1 may legitimately have positive residuals
// (their profit is still increasing at the boundary).
type FirstOrderResiduals struct {
	// Buyer is dΦ/dp^M at p^M* along the reaction-substituted objective.
	Buyer float64
	// Broker is dΩ/dp^D at p^D* along the reactive objective.
	Broker float64
	// Sellers[i] is ∂Ψᵢ/∂τᵢ at τᵢ* holding τ₋ᵢ* fixed.
	Sellers []float64
	// Clamped[i] reports whether seller i's fidelity sits at the boundary
	// τ = 1.
	Clamped []bool
}

// FirstOrder computes the first-order residuals at profile p.
func (g *Game) FirstOrder(p *Profile) *FirstOrderResiduals {
	res := &FirstOrderResiduals{
		Sellers: make([]float64, g.M()),
		Clamped: make([]bool, g.M()),
	}
	res.Buyer = numeric.Derivative(g.BuyerObjective, p.PM, 0)
	res.Broker = numeric.Derivative(func(pd float64) float64 {
		return g.BrokerObjective(p.PM, pd)
	}, p.PD, 0)
	tau := append([]float64(nil), p.Tau...)
	for i := range tau {
		orig := tau[i]
		res.Clamped[i] = orig >= 1
		res.Sellers[i] = numeric.Derivative(func(t float64) float64 {
			tau[i] = t
			v := g.SellerProfit(i, p.PD, tau)
			tau[i] = orig
			return v
		}, orig, 0)
	}
	return res
}

// CheckSNE verifies profile p satisfies Def. 4.2 within tolerance tol on
// profit gains (pass 0 for a default of 1e-6, applied relative to each
// party's profit scale). It returns nil when no participant can improve by
// more than the tolerance, and a descriptive error naming the most
// profitable deviation otherwise.
func (g *Game) CheckSNE(p *Profile, tol float64) error {
	if tol <= 0 {
		tol = 1e-6
	}
	r := g.VerifySNE(p)
	scale := 1 + math.Abs(p.BuyerProfit)
	if r.BuyerGain > tol*scale {
		return fmt.Errorf("core: buyer can gain %g by deviating to p^M=%g", r.BuyerGain, r.BuyerBest)
	}
	scale = 1 + math.Abs(p.BrokerProfit)
	if r.BrokerGain > tol*scale {
		return fmt.Errorf("core: broker can gain %g by deviating to p^D=%g", r.BrokerGain, r.BrokerBest)
	}
	for i, gain := range r.SellerGains {
		scale = 1 + math.Abs(p.SellerProfits[i])
		if gain > tol*scale {
			return fmt.Errorf("core: seller %d can gain %g by deviating to τ=%g", i, gain, r.SellerBest[i])
		}
	}
	return nil
}
