package core

import (
	"errors"
	"fmt"
	"math"
)

// Stage3Tau returns the sellers' inner Nash equilibrium fidelities for a
// given unit data price p^D by the paper's direct derivation (Eq. 20):
//
//	τᵢ* = p^D / (2N·√(ωᵢλᵢ)) · Σⱼ √(ωⱼ/λⱼ),
//
// clamped to the feasible range [0, 1]: when the interior optimum exceeds 1,
// each seller's profit is monotonically increasing on [0, 1] and is maximized
// at the right endpoint (equilibrium analysis in §5.1.4).
func (g *Game) Stage3Tau(pD float64) []float64 {
	return g.Stage3TauInto(pD, make([]float64, g.M()))
}

// Stage3TauInto is Stage3Tau writing into dst (length ≥ m), for sweep hot
// paths that reuse a per-worker buffer instead of allocating per call. It
// returns dst[:m]; values are bit-identical to Stage3Tau's.
func (g *Game) Stage3TauInto(pD float64, dst []float64) []float64 {
	sum := g.SumSqrtWeightOverLambda()
	tau := dst[:g.M()]
	if pD <= 0 {
		for i := range tau {
			tau[i] = 0
		}
		return tau
	}
	// The Precompute snapshot supplies √(ωᵢλᵢ) directly; the expression is
	// otherwise evaluated with the exact same operations, so cached and
	// uncached fidelities are bit-for-bit identical.
	twoN := 2 * g.Buyer.N
	if agg := g.cached(); agg != nil {
		for i := range tau {
			t := pD / (twoN * agg.sqrtWL[i]) * sum
			if t > 1 {
				t = 1
			}
			tau[i] = t
		}
		return tau
	}
	for i := range tau {
		t := pD / (twoN * math.Sqrt(g.Broker.Weights[i]*g.Sellers.Lambda[i])) * sum
		if t > 1 {
			t = 1
		}
		tau[i] = t
	}
	return tau
}

// Stage2PD returns the broker's optimal unit data price for a given unit
// product price p^M (Eq. 25): p^D* = v·p^M/2. The closed form follows from
// substituting the sellers' reaction (Eq. 20) into the broker's profit and
// solving the first-order condition; the profit is strictly concave in p^D
// (second derivative −Σ1/λᵢ < 0).
func (g *Game) Stage2PD(pM float64) float64 {
	if pM <= 0 {
		return 0
	}
	return g.Buyer.V * pM / 2
}

// StageCoefficients returns the aggregates c₁ = ρ₁vS/4 and c₂ = v²S/(2θ₁)
// with S = Σ1/λᵢ, the constants of the buyer's reduced profit
// Φ(p^M) = θ₁ln(1+c₁p^M) + θ₂ln(1+ρ₂v) − (c₂θ₁/2)·(p^M)² (§5.1.3).
func (g *Game) StageCoefficients() (c1, c2 float64) {
	s := g.SumInvLambda()
	c1 = g.Buyer.Rho1 * g.Buyer.V * s / 4
	c2 = g.Buyer.V * g.Buyer.V * s / (2 * g.Buyer.Theta1)
	return c1, c2
}

// ReducedBuyerProfit evaluates the buyer's profit as a function of p^M alone,
// with the broker and sellers already at their optimal reactions — the
// objective Stage 1 maximizes.
func (g *Game) ReducedBuyerProfit(pM float64) float64 {
	c1, c2 := g.StageCoefficients()
	return g.Buyer.Theta1*math.Log(1+c1*pM) +
		g.Buyer.Theta2*math.Log(1+g.Buyer.Rho2*g.Buyer.V) -
		c2*g.Buyer.Theta1/2*pM*pM
}

// Stage1PM returns the buyer's optimal unit product price (Eq. 27), the
// positive root of c₁c₂·(p^M)² + c₂·p^M − c₁ = 0:
//
//	p^M* = (−c₂ + √(c₂² + 4c₁²c₂)) / (2c₁c₂).
//
// It errs if the aggregates degenerate (possible only with invalid
// parameters, e.g. infinite λ).
func (g *Game) Stage1PM() (float64, error) {
	c1, c2 := g.StageCoefficients()
	if !(c1 > 0) || !(c2 > 0) || math.IsInf(c1, 0) || math.IsInf(c2, 0) {
		return 0, fmt.Errorf("core: degenerate stage-1 coefficients c₁=%g c₂=%g", c1, c2)
	}
	disc := c2*c2 + 4*c1*c1*c2
	pm := (-c2 + math.Sqrt(disc)) / (2 * c1 * c2)
	if !(pm > 0) || math.IsNaN(pm) {
		return 0, errors.New("core: stage 1 produced a non-positive product price")
	}
	return pm, nil
}

// ApproxBound documents the quality guarantee of an approximately-solved
// equilibrium: the Theorem 5.1 interval for the mean-fidelity error
// τ̄^exact − τ̄^approx, and whether the theorem's ω-scaling precondition
// (ωᵢ/λᵢ ≤ 1/(p^D·m²)) held at the solved data price. Exact solvers leave
// Profile.Approx nil.
type ApproxBound struct {
	// Lo and Hi bound the signed mean-fidelity error (Theorem 5.1).
	Lo, Hi float64
	// ConditionHolds reports whether the theorem's precondition held, i.e.
	// whether the interval is an actual guarantee rather than a heuristic.
	ConditionHolds bool
}

// Profile is a complete strategy profile with its realized quantities and
// profits — the output of Solve, or of evaluating a deviated profile.
type Profile struct {
	// PM is the unit product price p^M (the buyer's strategy).
	PM float64
	// PD is the unit data price p^D (the broker's strategy).
	PD float64
	// Tau are the sellers' data fidelities τᵢ (the followers' strategies).
	Tau []float64
	// Chi is the realized allocation χᵢ (Eq. 13); Σχᵢ = N whenever any
	// fidelity is positive.
	Chi []float64
	// QD is the total manufacturing dataset quality q^D.
	QD float64
	// QM is the product quality q^M = q^D·v.
	QM float64
	// BuyerProfit is Φ at this profile.
	BuyerProfit float64
	// BrokerProfit is Ω at this profile.
	BrokerProfit float64
	// SellerProfits are Ψᵢ at this profile.
	SellerProfits []float64
	// Approx carries the error guarantee when the profile came from an
	// approximate solver (the mean-field backend); nil for exact solves.
	Approx *ApproxBound
}

// EvaluateProfile computes allocations, qualities and all profits for an
// arbitrary strategy profile (p^M, p^D, τ). It is the workhorse behind both
// Solve and the unilateral-deviation experiments of Fig. 2.
func (g *Game) EvaluateProfile(pM, pD float64, tau []float64) *Profile {
	return g.EvaluateProfileOwned(pM, pD, append([]float64(nil), tau...))
}

// EvaluateProfileOwned is EvaluateProfile taking ownership of tau — the
// caller must not use the slice afterwards (it becomes Profile.Tau). The
// solve path and the deviation sweeps hand over slices they just built,
// skipping an O(m) copy per evaluation. The allocation, quality and profit
// passes are fused into one loop; every arithmetic expression and
// accumulation order matches the Allocation / SellerQuality / SellerProfits
// definitions, so results are bit-identical to evaluating them separately.
func (g *Game) EvaluateProfileOwned(pM, pD float64, tau []float64) *Profile {
	chi := make([]float64, len(tau))
	profits := make([]float64, len(tau))
	var denom float64
	for j, t := range tau {
		denom += g.Broker.Weights[j] * t
	}
	var qD float64
	if denom > 0 {
		for i, t := range tau {
			c := g.Buyer.N * g.Broker.Weights[i] * t / denom
			chi[i] = c
			q := c * t
			qD += q
			profits[i] = pD*q - g.Sellers.Lambda[i]*q*q
		}
	}
	qM := g.ProductQuality(qD)
	return &Profile{
		PM:            pM,
		PD:            pD,
		Tau:           tau,
		Chi:           chi,
		QD:            qD,
		QM:            qM,
		BuyerProfit:   g.Utility(qD) - pM*qM,
		BrokerProfit:  pM*qM - g.ManufacturingCost() - pD*qD,
		SellerProfits: profits,
	}
}

// Solve runs the full backward induction (§5.1): Stage 3 yields the sellers'
// reaction expression, Stage 2 the broker's reaction, Stage 1 the buyer's
// optimal price value; substituting back produces the complete optimal
// strategy profile ⟨p^M*, p^D*, τ*⟩ — the Stackelberg-Nash Equilibrium
// (Thm. 5.2 proves it exists and is unique).
//
// Validation contract: parameters are validated once per construction or
// mutation, not once per solve. Without a Precompute snapshot Solve runs the
// full O(m) Validate as before; with a valid snapshot the seller side was
// already validated by Precompute and only the (O(1), freely mutable) buyer
// parameters are re-checked. Direct writes to λ/ω on a precomputed game must
// go through SetLambda/SetWeight or be followed by Invalidate.
func (g *Game) Solve() (*Profile, error) {
	if g.cached() == nil {
		if err := g.Validate(); err != nil {
			return nil, err
		}
	} else if err := g.Buyer.Validate(); err != nil {
		return nil, err
	}
	return g.solve()
}

// SolveValidated is Solve minus all validation — the fast path for sweeps
// that re-solve one validated game thousands of times. Contract: the caller
// guarantees Validate would pass (e.g. Precompute returned nil and no
// mutation followed); behaviour on an invalid game is undefined. Combined
// with Precompute, the per-solve overhead of Stages 1–2 drops from O(m)
// to O(1); results are bit-for-bit identical to Solve.
func (g *Game) SolveValidated() (*Profile, error) {
	return g.solve()
}

// solve is the shared backward-induction body of Solve and SolveValidated.
func (g *Game) solve() (*Profile, error) {
	pm, err := g.Stage1PM()
	if err != nil {
		return nil, err
	}
	pd := g.Stage2PD(pm)
	tau := g.Stage3Tau(pd)
	return g.EvaluateProfileOwned(pm, pd, tau), nil
}
