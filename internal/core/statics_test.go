package core

import (
	"math"
	"testing"

	"share/internal/numeric"
)

// numericDPM differentiates p^M* numerically with respect to a game
// mutation.
func numericDPM(t *testing.T, g *Game, x float64, set func(*Game, float64)) float64 {
	t.Helper()
	return numeric.Derivative(func(v float64) float64 {
		gx := g.Clone()
		set(gx, v)
		pm, err := gx.Stage1PM()
		if err != nil {
			t.Fatalf("Stage1PM during differentiation: %v", err)
		}
		return pm
	}, x, 0)
}

func numericDPD(t *testing.T, g *Game, x float64, set func(*Game, float64)) float64 {
	t.Helper()
	return numeric.Derivative(func(v float64) float64 {
		gx := g.Clone()
		set(gx, v)
		pm, err := gx.Stage1PM()
		if err != nil {
			t.Fatalf("Stage1PM during differentiation: %v", err)
		}
		return gx.Stage2PD(pm)
	}, x, 0)
}

func checkClose(t *testing.T, name string, analytic, numeric float64) {
	t.Helper()
	tol := 1e-5 * (1 + math.Abs(numeric))
	if math.Abs(analytic-numeric) > tol {
		t.Errorf("%s: analytic %v vs numeric %v", name, analytic, numeric)
	}
}

func TestSensitivityTheta1MatchesNumeric(t *testing.T) {
	g := paperTestGame(t, 40, 90)
	s := g.SensitivityTheta1()
	num := numericDPM(t, g, g.Buyer.Theta1, func(gx *Game, v float64) {
		gx.Buyer.Theta1, gx.Buyer.Theta2 = v, 1-v
	})
	checkClose(t, "∂pM/∂θ1", s.DPM, num)
	numPD := numericDPD(t, g, g.Buyer.Theta1, func(gx *Game, v float64) {
		gx.Buyer.Theta1, gx.Buyer.Theta2 = v, 1-v
	})
	checkClose(t, "∂pD/∂θ1", s.DPD, numPD)
	// Fig. 4: strategies rise with θ₁.
	if s.DPM <= 0 {
		t.Errorf("∂pM/∂θ1 = %v, want positive", s.DPM)
	}
}

func TestSensitivityRho1MatchesNumeric(t *testing.T) {
	g := paperTestGame(t, 40, 91)
	s := g.SensitivityRho1()
	num := numericDPM(t, g, g.Buyer.Rho1, func(gx *Game, v float64) { gx.Buyer.Rho1 = v })
	checkClose(t, "∂pM/∂ρ1", s.DPM, num)
	if s.DPM <= 0 {
		t.Errorf("∂pM/∂ρ1 = %v, want positive (Fig. 5)", s.DPM)
	}
	// Saturation: the derivative shrinks as ρ₁ grows.
	big := g.Clone()
	big.Buyer.Rho1 = 50
	if bs := big.SensitivityRho1(); bs.DPM >= s.DPM {
		t.Errorf("∂pM/∂ρ1 should shrink at large ρ1: %v vs %v", bs.DPM, s.DPM)
	}
}

func TestSensitivityRho2IsZero(t *testing.T) {
	g := paperTestGame(t, 20, 92)
	s := g.SensitivityRho2()
	if s.DPM != 0 || s.DPD != 0 {
		t.Errorf("ρ₂ sensitivity = %+v, want zero (Fig. 6)", s)
	}
	num := numericDPM(t, g, g.Buyer.Rho2, func(gx *Game, v float64) { gx.Buyer.Rho2 = v })
	if math.Abs(num) > 1e-12 {
		t.Errorf("numeric ∂pM/∂ρ2 = %v, want 0", num)
	}
}

func TestSensitivityVMatchesNumeric(t *testing.T) {
	g := paperTestGame(t, 40, 93)
	s, err := g.SensitivityV()
	if err != nil {
		t.Fatalf("SensitivityV: %v", err)
	}
	num := numericDPM(t, g, g.Buyer.V, func(gx *Game, v float64) { gx.Buyer.V = v })
	checkClose(t, "∂pM/∂v", s.DPM, num)
	numPD := numericDPD(t, g, g.Buyer.V, func(gx *Game, v float64) { gx.Buyer.V = v })
	checkClose(t, "∂pD/∂v", s.DPD, numPD)
}

func TestSensitivityLambdaMatchesNumeric(t *testing.T) {
	g := paperTestGame(t, 40, 94)
	s, err := g.SensitivityLambda(0)
	if err != nil {
		t.Fatalf("SensitivityLambda: %v", err)
	}
	num := numericDPM(t, g, g.Sellers.Lambda[0], func(gx *Game, v float64) { gx.Sellers.Lambda[0] = v })
	checkClose(t, "∂pM/∂λ1", s.DPM, num)
	// Fig. 8: prices rise with λ₁.
	if s.DPM <= 0 {
		t.Errorf("∂pM/∂λ1 = %v, want positive", s.DPM)
	}
	if _, err := g.SensitivityLambda(-1); err == nil {
		t.Error("accepted a negative index")
	}
	if _, err := g.SensitivityLambda(40); err == nil {
		t.Error("accepted an out-of-range index")
	}
}

func TestSensitivityWeightIsZero(t *testing.T) {
	g := paperTestGame(t, 20, 95)
	if s := g.SensitivityWeight(); s.DPM != 0 || s.DPD != 0 {
		t.Errorf("weight sensitivity = %+v, want zero (Fig. 7)", s)
	}
	num := numericDPM(t, g, g.Broker.Weights[0], func(gx *Game, v float64) { gx.Broker.Weights[0] = v })
	if math.Abs(num) > 1e-12 {
		t.Errorf("numeric ∂pM/∂ω1 = %v, want 0", num)
	}
}

func TestTauSensitivityOwnLambda(t *testing.T) {
	g := paperTestGame(t, 20, 96)
	pd := 0.02
	d, err := g.TauSensitivityOwnLambda(0, pd)
	if err != nil {
		t.Fatalf("TauSensitivityOwnLambda: %v", err)
	}
	num := numeric.Derivative(func(v float64) float64 {
		gx := g.Clone()
		gx.Sellers.Lambda[0] = v
		return gx.Stage3Tau(pd)[0]
	}, g.Sellers.Lambda[0], 0)
	checkClose(t, "∂τ1/∂λ1", d, num)
	// Fig. 8: fidelity sinks with own privacy sensitivity.
	if d >= 0 {
		t.Errorf("∂τ1/∂λ1 = %v, want negative", d)
	}
	if _, err := g.TauSensitivityOwnLambda(99, pd); err == nil {
		t.Error("accepted an out-of-range index")
	}
}

func TestElasticity(t *testing.T) {
	if got := Elasticity(2, 4, 6); got != 3 {
		t.Errorf("Elasticity = %v, want 3", got)
	}
	if got := Elasticity(2, 0, 6); got != 0 {
		t.Errorf("Elasticity with y=0 = %v, want 0", got)
	}
}
