package core

import (
	"fmt"

	"share/internal/numeric"
)

// Truthfulness analysis. The paper assumes participants report their true
// parameters "in line with the practical situation under the supervision of
// market regulators (e.g., by regular spot-check)" (§5.2). This file
// quantifies what that supervision is worth: how much a seller could gain
// by *misreporting* her privacy sensitivity λᵢ.
//
// Mechanics of a misreport: the market solves the game with the reported
// λ̂ᵢ — prices and the Eq. 20 fidelity prescription all use λ̂ᵢ — but the
// seller's realized privacy loss is governed by her true λᵢ. Her realized
// profit is therefore
//
//	Ψᵢ = p^D(λ̂)·χᵢ(λ̂)·τᵢ(λ̂) − λᵢ·(χᵢ(λ̂)·τᵢ(λ̂))².
//
// The perhaps surprising result (verified in the tests): the mechanism is
// *approximately strategy-proof* in λ. At equilibrium, seller i's delivered
// quality is qᵢ = p^D/(2λ̂ᵢ), so her realized profit is
//
//	p^D²/(2λ̂ᵢ) − λᵢ·p^D²/(4λ̂ᵢ²),
//
// which — holding p^D fixed — is maximized exactly at λ̂ᵢ = λᵢ: the larger
// allocation an under-reporter wins is precisely cancelled by the
// quadratic loss charged at her true sensitivity. The only remaining gain
// channel is the O(1/m) feedback of λ̂ᵢ on the prices through S = Σ1/λⱼ,
// which vanishes as the market grows. The regulator's spot-checks (§5.2)
// therefore only need to police the *price-feedback* channel, not the
// allocation itself.

// MisreportOutcome records the consequence of seller i reporting factor·λᵢ.
type MisreportOutcome struct {
	// Factor is the misreport ratio λ̂ᵢ/λᵢ (1 = truthful).
	Factor float64
	// ReportedLambda is λ̂ᵢ.
	ReportedLambda float64
	// RealizedProfit is the seller's profit with the loss charged at her
	// true λᵢ.
	RealizedProfit float64
	// TruthfulProfit is her profit under truthful reporting.
	TruthfulProfit float64
	// Gain is RealizedProfit − TruthfulProfit.
	Gain float64
}

// Misreport evaluates seller i reporting factor·λᵢ while her true
// sensitivity stays λᵢ. factor must be positive.
func (g *Game) Misreport(i int, factor float64) (*MisreportOutcome, error) {
	if i < 0 || i >= g.M() {
		return nil, fmt.Errorf("core: seller index %d out of range", i)
	}
	if !(factor > 0) {
		return nil, fmt.Errorf("core: misreport factor must be positive, got %g", factor)
	}
	truthful, err := g.Solve()
	if err != nil {
		return nil, err
	}
	trueLambda := g.Sellers.Lambda[i]

	reported := g.Clone()
	reported.SetLambda(i, factor*trueLambda)
	lied, err := reported.Solve()
	if err != nil {
		return nil, err
	}
	// Realized quality the seller delivers under the reported-game profile.
	q := lied.Chi[i] * lied.Tau[i]
	realized := lied.PD*q - trueLambda*q*q
	return &MisreportOutcome{
		Factor:         factor,
		ReportedLambda: factor * trueLambda,
		RealizedProfit: realized,
		TruthfulProfit: truthful.SellerProfits[i],
		Gain:           realized - truthful.SellerProfits[i],
	}, nil
}

// BestMisreport searches factor ∈ [lo, hi] (defaults [0.05, 3] when zero)
// for seller i's most profitable misreport. A result with Gain ≤ tol means
// truth-telling is (locally) optimal for this parameterization.
func (g *Game) BestMisreport(i int, lo, hi float64) (*MisreportOutcome, error) {
	if lo <= 0 {
		lo = 0.05
	}
	if hi <= lo {
		hi = 3
	}
	if i < 0 || i >= g.M() {
		return nil, fmt.Errorf("core: seller index %d out of range", i)
	}
	// negInf poisons invalid reports out of the bracket; Misreport errors
	// here are parameterization limits, not cancellations, so a sentinel
	// (unlike the general cascade's error propagation) is appropriate.
	const negInf = -1e308
	obj := func(f float64) float64 {
		out, err := g.Misreport(i, f)
		if err != nil {
			return negInf
		}
		return out.RealizedProfit
	}
	best := numeric.GoldenMax(obj, lo, hi, 1e-6)
	return g.Misreport(i, best)
}
