package core

import (
	"math"
	"testing"
	"testing/quick"

	"share/internal/nash"
	"share/internal/stat"
)

// TestSolveSatisfiesSNE is the headline correctness test: the
// backward-induction profile admits no profitable unilateral deviation for
// any participant (Def. 4.2 / Thm. 5.2).
func TestSolveSatisfiesSNE(t *testing.T) {
	for _, m := range []int{2, 10, 100} {
		g := paperTestGame(t, m, int64(40+m))
		p, err := g.Solve()
		if err != nil {
			t.Fatalf("m=%d Solve: %v", m, err)
		}
		if err := g.CheckSNE(p, 1e-7); err != nil {
			t.Errorf("m=%d: %v", m, err)
		}
	}
}

// TestSolveSNEProperty fuzzes parameterizations and requires the SNE
// property to hold everywhere.
func TestSolveSNEProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := stat.NewRand(seed)
		m := 2 + rng.Intn(30)
		g := PaperGame(m, rng)
		g.Buyer.V = 0.2 + 0.7*rng.Float64()
		g.Buyer.Rho1 = 0.1 + 3*rng.Float64()
		th := 0.2 + 0.6*rng.Float64()
		g.Buyer.Theta1, g.Buyer.Theta2 = th, 1-th
		p, err := g.Solve()
		if err != nil {
			return false
		}
		return g.CheckSNE(p, 1e-6) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestStage3AgreesWithNumericalNash cross-validates the Eq. 20 closed form
// against the generic iterated-best-response solver on the true profit
// functions.
func TestStage3AgreesWithNumericalNash(t *testing.T) {
	g := paperTestGame(t, 12, 44)
	pd := 0.02
	analytic := g.Stage3Tau(pd)
	ng := &nash.Game{
		Players: g.M(),
		Payoff: func(i int, x float64, s []float64) float64 {
			tau := append([]float64(nil), s...)
			tau[i] = x
			return g.SellerProfit(i, pd, tau)
		},
	}
	res, err := ng.Solve(nash.Options{})
	if err != nil {
		t.Fatalf("numerical Nash: %v", err)
	}
	for i := range analytic {
		if math.Abs(res.Strategies[i]-analytic[i]) > 1e-5 {
			t.Errorf("τ[%d]: numeric %v vs analytic %v", i, res.Strategies[i], analytic[i])
		}
	}
}

func TestFirstOrderResidualsVanish(t *testing.T) {
	g := paperTestGame(t, 50, 45)
	p, err := g.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	fo := g.FirstOrder(p)
	if math.Abs(fo.Buyer) > 1e-5 {
		t.Errorf("buyer FOC residual = %v", fo.Buyer)
	}
	if math.Abs(fo.Broker) > 1e-5 {
		t.Errorf("broker FOC residual = %v", fo.Broker)
	}
	for i, r := range fo.Sellers {
		if fo.Clamped[i] {
			continue
		}
		if math.Abs(r) > 1e-4 {
			t.Errorf("seller %d FOC residual = %v", i, r)
		}
	}
}

// TestSecondOrderConcavity numerically confirms the strict concavity claims
// of Thm. 5.2: each objective's second derivative is negative at the
// optimum.
func TestSecondOrderConcavity(t *testing.T) {
	g := paperTestGame(t, 30, 46)
	p, err := g.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	d2 := secondDeriv(g.ReducedBuyerProfit, p.PM)
	if d2 >= 0 {
		t.Errorf("buyer objective not concave at optimum: %v", d2)
	}
	d2 = secondDeriv(func(pd float64) float64 { return g.BrokerObjective(p.PM, pd) }, p.PD)
	if d2 >= 0 {
		t.Errorf("broker objective not concave at optimum: %v", d2)
	}
	tau := append([]float64(nil), p.Tau...)
	for i := 0; i < 3; i++ {
		orig := tau[i]
		d2 = secondDeriv(func(x float64) float64 {
			tau[i] = x
			v := g.SellerProfit(i, p.PD, tau)
			tau[i] = orig
			return v
		}, orig)
		if d2 >= 0 {
			t.Errorf("seller %d objective not concave at optimum: %v", i, d2)
		}
	}
}

func secondDeriv(f func(float64) float64, x float64) float64 {
	h := 1e-4 * (1 + math.Abs(x))
	return (f(x+h) - 2*f(x) + f(x-h)) / (h * h)
}

// TestDeviationReportAtNonEquilibrium: starting from a perturbed profile the
// report must expose profitable deviations pointing back toward the SNE.
func TestDeviationReportAtNonEquilibrium(t *testing.T) {
	g := paperTestGame(t, 20, 47)
	p, err := g.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	perturbed := g.EvaluateProfile(p.PM*1.5, p.PD, p.Tau)
	r := g.VerifySNE(perturbed)
	if r.BuyerGain <= 0 {
		t.Errorf("perturbed buyer should have a profitable deviation, gain = %v", r.BuyerGain)
	}
	if math.Abs(r.BuyerBest-p.PM) > 1e-4*(1+p.PM) {
		t.Errorf("buyer's best deviation %v should point to p^M* = %v", r.BuyerBest, p.PM)
	}
	if err := g.CheckSNE(perturbed, 1e-7); err == nil {
		t.Error("CheckSNE accepted a perturbed profile")
	}
}

// TestEquilibriumUniqueness probes Thm. 5.2's uniqueness: different starting
// points of the numerical Nash solver land on the same Stage-3 equilibrium.
func TestEquilibriumUniqueness(t *testing.T) {
	g := paperTestGame(t, 8, 48)
	pd := 0.02
	ng := &nash.Game{
		Players: g.M(),
		Payoff: func(i int, x float64, s []float64) float64 {
			tau := append([]float64(nil), s...)
			tau[i] = x
			return g.SellerProfit(i, pd, tau)
		},
	}
	starts := [][]float64{
		nil,
		make([]float64, 8), // all zeros
		{1, 1, 1, 1, 1, 1, 1, 1},
		{0.9, 0.1, 0.9, 0.1, 0.9, 0.1, 0.9, 0.1},
	}
	var first []float64
	for si, start := range starts {
		res, err := ng.Solve(nash.Options{Start: start})
		if err != nil {
			t.Fatalf("start %d: %v", si, err)
		}
		if first == nil {
			first = res.Strategies
			continue
		}
		for i := range first {
			if math.Abs(res.Strategies[i]-first[i]) > 1e-5 {
				t.Errorf("start %d: τ[%d] = %v differs from %v (non-unique?)", si, i, res.Strategies[i], first[i])
			}
		}
	}
}

// TestBuyerLeadingAdvantage: the leader's equilibrium profit weakly exceeds
// what she would get at any other price — and specifically at the price a
// naive "cost-plus" buyer might post.
func TestBuyerLeadingAdvantage(t *testing.T) {
	g := paperTestGame(t, 50, 49)
	p, err := g.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for _, alt := range []float64{p.PM * 0.5, p.PM * 0.9, p.PM * 1.1, p.PM * 2} {
		if g.BuyerObjective(alt) > p.BuyerProfit+1e-9 {
			t.Errorf("buyer does better at %v than at the SNE price", alt)
		}
	}
}
