package core

import (
	"math"
	"testing"

	"share/internal/stat"
	"share/internal/translog"
)

func paperTestGame(t *testing.T, m int, seed int64) *Game {
	t.Helper()
	g := PaperGame(m, stat.NewRand(seed))
	if err := g.Validate(); err != nil {
		t.Fatalf("paper game invalid: %v", err)
	}
	return g
}

func TestBuyerValidate(t *testing.T) {
	ok := PaperBuyer()
	if err := ok.Validate(); err != nil {
		t.Errorf("paper buyer rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Buyer)
	}{
		{"zero N", func(b *Buyer) { b.N = 0 }},
		{"negative v", func(b *Buyer) { b.V = -1 }},
		{"theta1 zero", func(b *Buyer) { b.Theta1 = 0; b.Theta2 = 1 }},
		{"theta sum", func(b *Buyer) { b.Theta1 = 0.5; b.Theta2 = 0.6 }},
		{"rho1 zero", func(b *Buyer) { b.Rho1 = 0 }},
		{"rho2 negative", func(b *Buyer) { b.Rho2 = -2 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := PaperBuyer()
			c.mutate(&b)
			if err := b.Validate(); err == nil {
				t.Errorf("%s accepted", c.name)
			}
		})
	}
}

func TestBrokerSellersValidate(t *testing.T) {
	if err := (Broker{}).Validate(); err == nil {
		t.Error("broker with no weights accepted")
	}
	if err := (Broker{Weights: []float64{1, 0}}).Validate(); err == nil {
		t.Error("zero weight accepted")
	}
	if err := (Broker{Weights: []float64{1, math.Inf(1)}}).Validate(); err == nil {
		t.Error("infinite weight accepted")
	}
	if err := (Sellers{}).Validate(); err == nil {
		t.Error("no sellers accepted")
	}
	if err := (Sellers{Lambda: []float64{0.5, -1}}).Validate(); err == nil {
		t.Error("negative λ accepted")
	}
}

func TestGameValidateJoint(t *testing.T) {
	g := paperTestGame(t, 10, 1)
	g.Broker.Weights = g.Broker.Weights[:9]
	if err := g.Validate(); err == nil {
		t.Error("weight/λ count mismatch accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := paperTestGame(t, 5, 2)
	c := g.Clone()
	c.Broker.Weights[0] = 99
	c.Sellers.Lambda[0] = 99
	c.Buyer.N = 1
	if g.Broker.Weights[0] == 99 || g.Sellers.Lambda[0] == 99 || g.Buyer.N == 1 {
		t.Error("Clone shares state with the original")
	}
}

func TestAggregates(t *testing.T) {
	g := &Game{
		Buyer:   PaperBuyer(),
		Broker:  Broker{Cost: translog.PaperDefaults(), Weights: []float64{1, 4}},
		Sellers: Sellers{Lambda: []float64{0.25, 1}},
	}
	if got := g.SumInvLambda(); got != 5 {
		t.Errorf("SumInvLambda = %v, want 5", got)
	}
	// √(1/0.25) + √(4/1) = 2 + 2 = 4.
	if got := g.SumSqrtWeightOverLambda(); got != 4 {
		t.Errorf("SumSqrtWeightOverLambda = %v, want 4", got)
	}
}

func TestUniformWeights(t *testing.T) {
	w := UniformWeights(4)
	for _, x := range w {
		if x != 0.25 {
			t.Errorf("UniformWeights = %v", w)
		}
	}
}

func TestRandomLambdasInOpenInterval(t *testing.T) {
	rng := stat.NewRand(3)
	ls := RandomLambdas(1000, rng)
	for i, l := range ls {
		if l <= 0 || l >= 1 {
			t.Fatalf("λ[%d] = %v outside (0,1)", i, l)
		}
	}
}

func TestPaperGameDefaults(t *testing.T) {
	g := PaperGame(0, stat.NewRand(4))
	if g.M() != PaperM {
		t.Errorf("default m = %d, want %d", g.M(), PaperM)
	}
	if g.Buyer.N != 500 || g.Buyer.V != 0.8 || g.Buyer.Rho2 != 250 {
		t.Errorf("paper buyer parameters wrong: %+v", g.Buyer)
	}
	if g.Broker.Cost != translog.PaperDefaults() {
		t.Error("paper cost parameters wrong")
	}
}
