package core

import (
	"math"
	"testing"

	"share/internal/stat"
)

// freshTwin rebuilds a game from g's current slices and precomputes it from
// scratch — the reference every incremental churn result is held against.
func freshTwin(t *testing.T, g *Game) *Game {
	t.Helper()
	f := &Game{
		Buyer:   g.Buyer,
		Broker:  Broker{Cost: g.Broker.Cost, Weights: append([]float64(nil), g.Broker.Weights...)},
		Sellers: Sellers{Lambda: append([]float64(nil), g.Sellers.Lambda...)},
	}
	if err := f.Precompute(); err != nil {
		t.Fatalf("precomputing fresh twin: %v", err)
	}
	return f
}

func assertAgreesWithFresh(t *testing.T, g *Game, tol float64) {
	t.Helper()
	f := freshTwin(t, g)
	if d := math.Abs(g.SumInvLambda() - f.SumInvLambda()); d > tol*f.SumInvLambda() {
		t.Fatalf("SumInvLambda drifted by %g (incremental %g, fresh %g)", d, g.SumInvLambda(), f.SumInvLambda())
	}
	if d := math.Abs(g.SumSqrtWeightOverLambda() - f.SumSqrtWeightOverLambda()); d > tol*f.SumSqrtWeightOverLambda() {
		t.Fatalf("SumSqrtWeightOverLambda drifted by %g", d)
	}
	gp, err := g.Solve()
	if err != nil {
		t.Fatalf("solving churned game: %v", err)
	}
	fp, err := f.Solve()
	if err != nil {
		t.Fatalf("solving fresh twin: %v", err)
	}
	if d := math.Abs(gp.PM - fp.PM); d > tol*math.Abs(fp.PM) {
		t.Fatalf("PM disagrees after churn: incremental %g, fresh %g", gp.PM, fp.PM)
	}
	if d := math.Abs(gp.PD - fp.PD); d > tol*math.Abs(fp.PD) {
		t.Fatalf("PD disagrees after churn: incremental %g, fresh %g", gp.PD, fp.PD)
	}
	for i := range gp.Tau {
		if d := math.Abs(gp.Tau[i] - fp.Tau[i]); d > tol {
			t.Fatalf("Tau[%d] disagrees after churn: incremental %g, fresh %g", i, gp.Tau[i], fp.Tau[i])
		}
	}
}

func TestRosterChurnMatchesFreshPrecompute(t *testing.T) {
	g := paperTestGame(t, 40, 11)
	if err := g.Precompute(); err != nil {
		t.Fatalf("precompute: %v", err)
	}
	rng := stat.NewRand(23)
	for step := 0; step < 200; step++ {
		if g.M() > 2 && rng.Float64() < 0.4 {
			if err := g.RemoveSellerAt(rng.Intn(g.M())); err != nil {
				t.Fatalf("step %d: remove: %v", step, err)
			}
		} else {
			if err := g.AppendSeller(0.2+rng.Float64(), 0.5+rng.Float64()); err != nil {
				t.Fatalf("step %d: append: %v", step, err)
			}
		}
		if !g.Precomputed() {
			t.Fatalf("step %d: churn dropped the snapshot", step)
		}
	}
	assertAgreesWithFresh(t, g, 1e-9)
}

func TestRosterChurnWithoutSnapshot(t *testing.T) {
	g := paperTestGame(t, 5, 3)
	if err := g.AppendSeller(0.7, 1.2); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := g.RemoveSellerAt(0); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if g.M() != 5 || len(g.Broker.Weights) != 5 {
		t.Fatalf("roster size after churn: %d sellers, %d weights", g.M(), len(g.Broker.Weights))
	}
	if g.Precomputed() {
		t.Fatal("churn on an un-precomputed game must not mint a snapshot")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("churned game invalid: %v", err)
	}
}

func TestRosterChurnPreservesClones(t *testing.T) {
	g := paperTestGame(t, 10, 7)
	if err := g.Precompute(); err != nil {
		t.Fatalf("precompute: %v", err)
	}
	clone := g.Clone()
	before, err := clone.Solve()
	if err != nil {
		t.Fatalf("clone solve: %v", err)
	}
	if err := g.AppendSeller(0.9, 1.1); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := g.RemoveSellerAt(2); err != nil {
		t.Fatalf("remove: %v", err)
	}
	after, err := clone.Solve()
	if err != nil {
		t.Fatalf("clone solve after ancestor churn: %v", err)
	}
	if before.PM != after.PM || before.PD != after.PD {
		t.Fatalf("ancestor churn disturbed a clone: PM %g→%g, PD %g→%g", before.PM, after.PM, before.PD, after.PD)
	}
	for i := range before.Tau {
		if before.Tau[i] != after.Tau[i] {
			t.Fatalf("ancestor churn disturbed clone Tau[%d]: %g→%g", i, before.Tau[i], after.Tau[i])
		}
	}
}

func TestRosterChurnRejectsBadInput(t *testing.T) {
	g := paperTestGame(t, 3, 1)
	if err := g.Precompute(); err != nil {
		t.Fatalf("precompute: %v", err)
	}
	if err := g.AppendSeller(0, 1); err == nil {
		t.Error("append with λ=0 accepted")
	}
	if err := g.AppendSeller(1, math.Inf(1)); err == nil {
		t.Error("append with ω=+Inf accepted")
	}
	if err := g.RemoveSellerAt(-1); err == nil {
		t.Error("remove at -1 accepted")
	}
	if err := g.RemoveSellerAt(3); err == nil {
		t.Error("remove past the roster accepted")
	}
	if g.M() != 3 {
		t.Fatalf("rejected ops mutated the roster: m=%d", g.M())
	}
	if err := g.RemoveSellerAt(0); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if err := g.RemoveSellerAt(0); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if err := g.RemoveSellerAt(0); err == nil {
		t.Error("removing the last seller accepted")
	}
}

func TestRosterDriftFallbackRebuildsAggregates(t *testing.T) {
	g := paperTestGame(t, 8, 5)
	if err := g.Precompute(); err != nil {
		t.Fatalf("precompute: %v", err)
	}
	// Force the drift estimate over the tolerance: a churn counter this
	// large makes est·peak exceed tol·sum for any realistic aggregates.
	g.agg.churn = 1 << 40
	if err := g.AppendSeller(0.8, 1.0); err != nil {
		t.Fatalf("append: %v", err)
	}
	if g.agg == nil {
		t.Fatal("drift fallback dropped the snapshot instead of rebuilding it")
	}
	if g.agg.churn != 0 {
		t.Fatalf("drift fallback did not run a full Precompute: churn=%d", g.agg.churn)
	}
	assertAgreesWithFresh(t, g, 0) // a rebuilt snapshot is bit-identical
}
