package core

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Roster churn: sellers joining and leaving a live game between rounds.
//
// Precompute's seller aggregates are sums over the roster, so one seller
// joining or leaving is a rank-1 adjustment: add or subtract that seller's
// 1/λ and √(ω/λ) terms and splice her √(ωλ) entry — never an O(m)
// re-aggregation. The slices are spliced in place when this game owns them
// exclusively (λ/ω always are — Clone deep-copies them; √(ωλ) whenever the
// shared flag says no clone holds the array), which makes steady-state
// churn amortized O(1) arithmetic for joins and one memmove for leaves. A
// shared √(ωλ) array is instead rebuilt copy-on-write with headroom, so
// clones are never disturbed and the new array is owned from then on.
// Each adjustment accrues at most one rounding error per running sum;
// refreshIfDrifted bounds the accumulation and falls back to a full
// Precompute before it can matter, so arbitrarily long churn histories stay
// within rosterDriftTol of a from-scratch build.
//
// Ownership contract: AppendSeller and RemoveSellerAt splice g's λ/ω slices
// in place, so the game must own their backing arrays exclusively. Any game
// built by Clone or handed out by a solver backend's Precompute does; a
// hand-assembled Game sharing slices with its builder does not, and the
// sharer would observe the splice.

const (
	// rosterDriftTol is the relative rounding drift tolerated in the
	// incrementally maintained aggregates before a full Precompute rebuilds
	// them. It sits three orders of magnitude under the repo's 1e-9
	// cross-path agreement budget.
	rosterDriftTol = 1e-12
	// machineEps is the double-precision unit roundoff.
	machineEps = 0x1p-52
)

// growSqrtWL returns a fresh copy of src with the element at index n set
// aside for the caller and geometric headroom, so the new exclusively-owned
// array absorbs future appends without reallocating.
func growSqrtWL(src []float64, n int) []float64 {
	sq := make([]float64, n, n+n/4+8)
	copy(sq, src)
	return sq
}

// AppendSeller admits one seller (privacy sensitivity λ, dataset weight ω)
// at the end of the roster. A live Precompute snapshot is adjusted
// incrementally; without one, the slices grow and the game stays
// un-precomputed, exactly as if it had been constructed with the seller.
func (g *Game) AppendSeller(lambda, weight float64) error {
	if !(lambda > 0) || math.IsInf(lambda, 0) {
		return fmt.Errorf("core: joining seller needs a positive finite λ, got %g", lambda)
	}
	if !(weight > 0) || math.IsInf(weight, 0) {
		return fmt.Errorf("core: joining seller needs a positive finite weight ω, got %g", weight)
	}
	a := g.cached()
	g.Sellers.Lambda = append(g.Sellers.Lambda, lambda)
	g.Broker.Weights = append(g.Broker.Weights, weight)
	if a == nil {
		g.agg = nil
		return nil
	}
	m := a.m + 1
	var sq []float64
	shared := a.sqrtShared
	if shared.Load() {
		// Clones hold the array: rebuild copy-on-write with headroom and
		// take exclusive ownership of the result.
		sq = growSqrtWL(a.sqrtWL, m)
		shared = new(atomic.Bool)
	} else {
		// Exclusively owned: grow in place (amortized O(1); a reallocation
		// by append leaves the abandoned array to this game alone).
		sq = append(a.sqrtWL, 0)
	}
	sq[m-1] = math.Sqrt(weight * lambda)
	na := &sellerAgg{
		// The appends above may have reallocated the slices; re-anchor the
		// snapshot's identity guards to the current backing arrays.
		lambdaPtr:    &g.Sellers.Lambda[0],
		weightPtr:    &g.Broker.Weights[0],
		m:            m,
		sumInvLambda: a.sumInvLambda + 1/lambda,
		sumSqrtWL:    a.sumSqrtWL + math.Sqrt(weight/lambda),
		sqrtWL:       sq,
		sqrtShared:   shared,
		churn:        a.churn + 1,
	}
	na.peakInv = math.Max(a.peakInv, na.sumInvLambda)
	na.peakSqrt = math.Max(a.peakSqrt, na.sumSqrtWL)
	g.agg = na
	return g.refreshIfDrifted()
}

// spliceOut removes the i-th element in place (one memmove, no allocation).
// The caller must own the backing array exclusively.
func spliceOut(s []float64, i int) []float64 {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

// RemoveSellerAt removes the i-th seller from the roster. The last seller
// cannot leave — a market needs at least one follower. Like AppendSeller,
// a live Precompute snapshot is adjusted incrementally; subtraction is
// where cancellation can erode the running sums, which the drift guard
// watches via the peak magnitudes.
func (g *Game) RemoveSellerAt(i int) error {
	m := g.M()
	if i < 0 || i >= m || i >= len(g.Broker.Weights) {
		return fmt.Errorf("core: removing seller %d of a %d-seller roster", i, m)
	}
	if m == 1 {
		return fmt.Errorf("core: cannot remove the last seller")
	}
	lambda, weight := g.Sellers.Lambda[i], g.Broker.Weights[i]
	a := g.cached()
	// λ/ω are exclusively owned (Clone deep-copies them): splice in place.
	g.Sellers.Lambda = spliceOut(g.Sellers.Lambda, i)
	g.Broker.Weights = spliceOut(g.Broker.Weights, i)
	if a == nil {
		g.agg = nil
		return nil
	}
	var sq []float64
	shared := a.sqrtShared
	if shared.Load() {
		sq = growSqrtWL(a.sqrtWL[:i], m-1)
		copy(sq[i:], a.sqrtWL[i+1:])
		shared = new(atomic.Bool)
	} else {
		sq = spliceOut(a.sqrtWL, i)
	}
	na := &sellerAgg{
		lambdaPtr:    &g.Sellers.Lambda[0],
		weightPtr:    &g.Broker.Weights[0],
		m:            m - 1,
		sumInvLambda: a.sumInvLambda - 1/lambda,
		sumSqrtWL:    a.sumSqrtWL - math.Sqrt(weight/lambda),
		sqrtWL:       sq,
		sqrtShared:   shared,
		churn:        a.churn + 1,
		peakInv:      a.peakInv,
		peakSqrt:     a.peakSqrt,
	}
	g.agg = na
	return g.refreshIfDrifted()
}

// refreshIfDrifted rebuilds the snapshot with a full Precompute once the
// incremental aggregates may have drifted past rosterDriftTol relative to
// their live values, or when cancellation pushed a running sum out of its
// positive domain. The error estimate is churn·ε scaled by the peak sum
// magnitude — every term entering the sums is positive, so cancellation
// only arises from removals, which the peak/current ratio captures.
func (g *Game) refreshIfDrifted() error {
	a := g.agg
	if a == nil {
		return nil
	}
	est := float64(a.churn) * machineEps
	if a.sumInvLambda > 0 && a.sumSqrtWL > 0 &&
		est*a.peakInv <= rosterDriftTol*a.sumInvLambda &&
		est*a.peakSqrt <= rosterDriftTol*a.sumSqrtWL {
		return nil
	}
	return g.Precompute()
}
