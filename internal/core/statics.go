package core

import (
	"fmt"
	"math"
)

// Comparative statics: closed-form derivatives of the equilibrium prices
// with respect to the market parameters. These are the analytic versions of
// the sensitivity sweeps in Figs. 4–8 — they state *why* each curve has its
// shape (e.g. ∂p^M*/∂ρ₂ ≡ 0 explains Fig. 6's flat strategies) and let
// callers compute elasticities without finite differencing. Each derivative
// is verified against numerical differentiation in the test suite.
//
// Notation: S = Σ1/λᵢ, c₁ = ρ₁vS/4, c₂ = v²S/(2θ₁), D = √(c₂²+4c₁²c₂), and
// p^M* = (−c₂+D)/(2c₁c₂) (Eq. 27). The chain rule routes every parameter
// through (c₁, c₂).

// dPMdC returns the partial derivatives of p^M* with respect to c₁ and c₂.
func dPMdC(c1, c2 float64) (dc1, dc2 float64) {
	d := math.Sqrt(c2*c2 + 4*c1*c1*c2)
	num := -c2 + d
	den := 2 * c1 * c2
	// ∂D/∂c1 and ∂D/∂c2.
	dDdc1 := 4 * c1 * c2 / d
	dDdc2 := (c2 + 2*c1*c1) / d
	// Quotient rule on p^M = num/den.
	dc1 = (dDdc1*den - num*2*c2) / (den * den)
	dc2 = ((-1+dDdc2)*den - num*2*c1) / (den * den)
	return dc1, dc2
}

// PriceSensitivity holds the equilibrium price derivatives with respect to
// one scalar parameter.
type PriceSensitivity struct {
	// DPM is ∂p^M*/∂x.
	DPM float64
	// DPD is ∂p^D*/∂x = v/2·∂p^M*/∂x (+ p^M/2 when x is v itself).
	DPD float64
}

// SensitivityTheta1 returns the equilibrium price derivatives with respect
// to θ₁ (holding θ₂ = 1−θ₁, as in Fig. 4). c₁ is θ-free; c₂ ∝ 1/θ₁.
func (g *Game) SensitivityTheta1() PriceSensitivity {
	c1, c2 := g.StageCoefficients()
	_, dc2 := dPMdC(c1, c2)
	dPM := dc2 * (-c2 / g.Buyer.Theta1)
	return PriceSensitivity{DPM: dPM, DPD: g.Buyer.V / 2 * dPM}
}

// SensitivityRho1 returns the derivatives with respect to ρ₁ (Fig. 5).
// c₁ ∝ ρ₁; c₂ is ρ₁-free.
func (g *Game) SensitivityRho1() PriceSensitivity {
	c1, c2 := g.StageCoefficients()
	dc1, _ := dPMdC(c1, c2)
	dPM := dc1 * (c1 / g.Buyer.Rho1)
	return PriceSensitivity{DPM: dPM, DPD: g.Buyer.V / 2 * dPM}
}

// SensitivityRho2 returns the derivatives with respect to ρ₂ (Fig. 6).
// Neither c₁ nor c₂ involves ρ₂, so both derivatives are identically zero —
// the analytic statement of Fig. 6's flat strategy curves.
func (g *Game) SensitivityRho2() PriceSensitivity {
	return PriceSensitivity{}
}

// SensitivityV returns the derivatives with respect to the demanded
// performance v. c₁ ∝ v and c₂ ∝ v²; p^D* = v·p^M*/2 picks up the direct
// term p^M*/2 as well.
func (g *Game) SensitivityV() (PriceSensitivity, error) {
	c1, c2 := g.StageCoefficients()
	dc1, dc2 := dPMdC(c1, c2)
	v := g.Buyer.V
	dPM := dc1*(c1/v) + dc2*(2*c2/v)
	pm, err := g.Stage1PM()
	if err != nil {
		return PriceSensitivity{}, fmt.Errorf("core: sensitivity to v: %w", err)
	}
	return PriceSensitivity{DPM: dPM, DPD: pm/2 + v/2*dPM}, nil
}

// SensitivityLambda returns the derivatives with respect to one seller's
// privacy sensitivity λᵢ (Fig. 8). Both coefficients depend on λᵢ only
// through S: ∂S/∂λᵢ = −1/λᵢ².
func (g *Game) SensitivityLambda(i int) (PriceSensitivity, error) {
	if i < 0 || i >= g.M() {
		return PriceSensitivity{}, fmt.Errorf("core: seller index %d out of range", i)
	}
	c1, c2 := g.StageCoefficients()
	dc1, dc2 := dPMdC(c1, c2)
	s := g.SumInvLambda()
	li := g.Sellers.Lambda[i]
	dS := -1 / (li * li)
	dPM := (dc1*(c1/s) + dc2*(c2/s)) * dS
	return PriceSensitivity{DPM: dPM, DPD: g.Buyer.V / 2 * dPM}, nil
}

// SensitivityWeight returns the derivatives with respect to any ωᵢ: zero,
// since the weights never enter Stages 1–2 (Fig. 7's flat price curves).
func (g *Game) SensitivityWeight() PriceSensitivity {
	return PriceSensitivity{}
}

// TauSensitivityOwnLambda returns ∂τᵢ*/∂λᵢ at the current equilibrium,
// holding p^D fixed (the follower-stage effect in Fig. 8; the full effect
// adds the small price channel). From Eq. 20, τᵢ* = K·(ωᵢλᵢ)^(−1/2) + K′
// where the Σ√(ωⱼ/λⱼ) aggregate also contains the i-th term:
//
//	τᵢ* = p^D/(2N)·[ Σ_{j≠i}√(ωⱼ/λⱼ)/√(ωᵢλᵢ) + 1/λᵢ ].
func (g *Game) TauSensitivityOwnLambda(i int, pD float64) (float64, error) {
	if i < 0 || i >= g.M() {
		return 0, fmt.Errorf("core: seller index %d out of range", i)
	}
	wi, li := g.Broker.Weights[i], g.Sellers.Lambda[i]
	var rest float64
	for j, wj := range g.Broker.Weights {
		if j == i {
			continue
		}
		rest += math.Sqrt(wj / g.Sellers.Lambda[j])
	}
	// d/dλᵢ [ rest·(ωᵢλᵢ)^(−1/2) + λᵢ^(−1) ]
	//   = rest·(−1/2)·ωᵢ·(ωᵢλᵢ)^(−3/2) − λᵢ^(−2).
	d := rest*(-0.5)*wi*math.Pow(wi*li, -1.5) - 1/(li*li)
	return pD / (2 * g.Buyer.N) * d, nil
}

// Elasticity converts a derivative into an elasticity (x/y)·(dy/dx) at the
// point (x, y); it returns 0 when y is 0.
func Elasticity(x, y, dydx float64) float64 {
	if y == 0 {
		return 0
	}
	return x / y * dydx
}
