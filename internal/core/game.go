// Package core implements the paper's primary contribution: the three-stage
// Stackelberg-Nash game over a buyer (leader), a broker (sub-leader) and m
// competing sellers (followers), its profit functions (Eqs. 5–13), the
// backward-induction equilibrium derivation (Eqs. 20, 25, 27), the
// Stackelberg-Nash Equilibrium definition and verification (Def. 4.2,
// Thm. 5.2), and the mean-field approximate Nash solver with its Theorem 5.1
// error bounds.
//
// A Game value captures one transaction's parameters: the buyer's demand
// (N, v) and utility parameters (θ, ρ), the broker's translog cost parameters
// and the per-seller dataset weights ω, and each seller's privacy sensitivity
// λ. Solve runs the full backward induction and returns the optimal strategy
// profile ⟨p^M*, p^D*, τ*⟩ together with realized allocations and profits.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"share/internal/translog"
)

// Buyer holds the leader's demand and utility parameters (§4.1.1).
type Buyer struct {
	// N is the total data quantity demanded for manufacturing (Σχᵢ = N).
	N float64
	// V is the required product performance (e.g. explained variance for a
	// regression product). Must be positive.
	V float64
	// Theta1 and Theta2 weight the buyer's concern for dataset quality and
	// product performance; they must be in (0, 1) and sum to 1 (Eq. 6).
	Theta1, Theta2 float64
	// Rho1 and Rho2 are the buyer's sensitivities to dataset quality and
	// product performance (Eq. 5); both must be positive.
	Rho1, Rho2 float64
}

// Validate checks the buyer parameters against the paper's constraints.
func (b Buyer) Validate() error {
	if !(b.N > 0) {
		return fmt.Errorf("core: buyer data quantity N must be positive, got %g", b.N)
	}
	if !(b.V > 0) {
		return fmt.Errorf("core: required performance v must be positive, got %g", b.V)
	}
	if !(b.Theta1 > 0 && b.Theta1 < 1) || !(b.Theta2 > 0 && b.Theta2 < 1) {
		return fmt.Errorf("core: θ₁, θ₂ must lie in (0,1), got θ₁=%g θ₂=%g", b.Theta1, b.Theta2)
	}
	if math.Abs(b.Theta1+b.Theta2-1) > 1e-9 {
		return fmt.Errorf("core: θ₁+θ₂ must equal 1, got %g", b.Theta1+b.Theta2)
	}
	if !(b.Rho1 > 0) || !(b.Rho2 > 0) {
		return fmt.Errorf("core: ρ₁, ρ₂ must be positive, got ρ₁=%g ρ₂=%g", b.Rho1, b.Rho2)
	}
	return nil
}

// Broker holds the sub-leader's manufacturing cost model and the dataset
// weights ω it maintains for the sellers (§4.1.2, Eq. 13).
type Broker struct {
	// Cost holds the translog cost parameters σ₀..σ₅ (Eq. 8).
	Cost translog.Params
	// Weights are the per-seller dataset weights ω₁..ω_m reflecting
	// historical data quality; all must be positive. Only their
	// proportions matter to the allocation rule, but their absolute scale
	// enters the Theorem 5.1 error-bound condition.
	Weights []float64
}

// Validate checks the broker parameters.
func (a Broker) Validate() error {
	if len(a.Weights) == 0 {
		return errors.New("core: broker has no seller weights")
	}
	for i, w := range a.Weights {
		if !(w > 0) || math.IsInf(w, 0) {
			return fmt.Errorf("core: weight ω[%d] must be positive and finite, got %g", i, w)
		}
	}
	return nil
}

// Sellers holds the followers' privacy sensitivities λ₁..λ_m (§4.1.3).
type Sellers struct {
	// Lambda are the privacy sensitivities; all must be positive.
	Lambda []float64
}

// Validate checks the seller parameters.
func (s Sellers) Validate() error {
	if len(s.Lambda) == 0 {
		return errors.New("core: no sellers")
	}
	for i, l := range s.Lambda {
		if !(l > 0) || math.IsInf(l, 0) {
			return fmt.Errorf("core: privacy sensitivity λ[%d] must be positive and finite, got %g", i, l)
		}
	}
	return nil
}

// Game is one transaction's complete parameterization.
//
// Sweeps re-solve thousands of games whose sellers never change; Precompute
// snapshots the seller-side aggregates so those solves skip the O(m) passes
// (see Precompute for the mutation contract).
type Game struct {
	Buyer   Buyer
	Broker  Broker
	Sellers Sellers

	// agg is the seller-aggregate snapshot established by Precompute and
	// dropped by Invalidate / the Set* mutators. Nil means "no snapshot";
	// every path then recomputes from the slices, as before.
	agg *sellerAgg
}

// sellerAgg caches everything Solve needs that depends only on the seller
// side (ω, λ): the Stage 1–2 aggregates and the per-seller √(ωᵢλᵢ) factors
// of the Stage 3 closed form. The first-element pointers and length guard
// against the snapshot outliving a slice replacement (g.Broker.Weights =
// other) or truncation; in-place element writes cannot be detected and must
// go through SetLambda/SetWeight or be followed by Invalidate.
type sellerAgg struct {
	lambdaPtr, weightPtr *float64
	m                    int

	sumInvLambda float64   // Σ 1/λᵢ
	sumSqrtWL    float64   // Σ √(ωⱼ/λⱼ)
	sqrtWL       []float64 // √(ωᵢλᵢ); sharing discipline governed by sqrtShared

	// sqrtShared marks the sqrtWL backing array as visible to more than one
	// game: Clone flips it (atomically — prototypes are cloned concurrently)
	// and both parties keep the same flag. Roster churn splices an
	// exclusively owned vector in place — the amortized-O(1) fast path — and
	// falls back to copy-on-write with a fresh flag the moment the array is
	// shared, so no clone ever observes another's mutation.
	sqrtShared *atomic.Bool

	// Roster-churn drift bookkeeping (see roster.go): churn counts the
	// incremental join/leave adjustments applied since the last full
	// aggregation, peakInv/peakSqrt the largest magnitude each running sum
	// reached along the way — together they bound the accumulated rounding
	// error of the incremental path.
	churn             int
	peakInv, peakSqrt float64
}

// Precompute validates the game and snapshots the seller-side aggregates,
// making subsequent Solve calls O(1) in the Stage 1–2 work (Validate and the
// aggregate passes are skipped while the snapshot stays valid). All sums run
// in seller order, so cached and uncached solves are bit-for-bit identical.
//
// Contract: the snapshot survives Clone and any Buyer/Cost mutation (those
// never enter the cached aggregates). Mutating λ or ω must go through
// SetLambda/SetWeight, or be followed by Invalidate — replacing or
// truncating the slices is detected automatically, element writes are not.
func (g *Game) Precompute() error {
	g.agg = nil
	if err := g.Validate(); err != nil {
		return err
	}
	m := g.M()
	a := &sellerAgg{
		lambdaPtr:  &g.Sellers.Lambda[0],
		weightPtr:  &g.Broker.Weights[0],
		m:          m,
		sqrtWL:     make([]float64, m),
		sqrtShared: new(atomic.Bool),
	}
	for _, l := range g.Sellers.Lambda {
		a.sumInvLambda += 1 / l
	}
	for j, w := range g.Broker.Weights {
		a.sumSqrtWL += math.Sqrt(w / g.Sellers.Lambda[j])
		a.sqrtWL[j] = math.Sqrt(w * g.Sellers.Lambda[j])
	}
	a.peakInv, a.peakSqrt = a.sumInvLambda, a.sumSqrtWL
	g.agg = a
	return nil
}

// Invalidate drops the Precompute snapshot. Call it after writing seller
// fields directly (g.Sellers.Lambda[i] = x) on a precomputed game.
func (g *Game) Invalidate() { g.agg = nil }

// SetLambda sets λᵢ and invalidates the precomputed snapshot.
func (g *Game) SetLambda(i int, v float64) {
	g.Sellers.Lambda[i] = v
	g.agg = nil
}

// SetWeight sets ωᵢ and invalidates the precomputed snapshot.
func (g *Game) SetWeight(i int, v float64) {
	g.Broker.Weights[i] = v
	g.agg = nil
}

// cached returns the Precompute snapshot if it is still valid for the
// game's current slices, nil otherwise.
func (g *Game) cached() *sellerAgg {
	a := g.agg
	if a == nil || a.m == 0 ||
		a.m != len(g.Sellers.Lambda) || a.m != len(g.Broker.Weights) ||
		a.lambdaPtr != &g.Sellers.Lambda[0] || a.weightPtr != &g.Broker.Weights[0] {
		return nil
	}
	return a
}

// Precomputed reports whether a valid Precompute snapshot is live, i.e.
// whether the seller side is already validated and the cheap buyer-only
// revalidation suffices before a solve. Solver backends outside this package
// use it to replicate Solve's validation contract.
func (g *Game) Precomputed() bool { return g.cached() != nil }

// M returns the number of sellers.
func (g *Game) M() int { return len(g.Sellers.Lambda) }

// Validate checks all parameters jointly (weights and sensitivities must
// agree on the seller count).
func (g *Game) Validate() error {
	if err := g.Buyer.Validate(); err != nil {
		return err
	}
	if err := g.Broker.Validate(); err != nil {
		return err
	}
	if err := g.Sellers.Validate(); err != nil {
		return err
	}
	if len(g.Broker.Weights) != len(g.Sellers.Lambda) {
		return fmt.Errorf("core: %d weights for %d sellers", len(g.Broker.Weights), len(g.Sellers.Lambda))
	}
	return nil
}

// Clone returns a deep copy of the game (weights and sensitivities copied).
// A valid Precompute snapshot carries over — the clone's seller data is
// identical — which is what makes cloned sweeps over buyer parameters O(1)
// per solve. The sqrtWL vector is shared read-only between the two games
// (the shared flag keeps roster churn from splicing it under anyone — see
// roster.go); mutating the clone's sellers through SetLambda/SetWeight
// detaches it.
func (g *Game) Clone() *Game {
	c := &Game{
		Buyer: g.Buyer,
		Broker: Broker{
			Cost:    g.Broker.Cost,
			Weights: append([]float64(nil), g.Broker.Weights...),
		},
		Sellers: Sellers{Lambda: append([]float64(nil), g.Sellers.Lambda...)},
	}
	if a := g.cached(); a != nil {
		a.sqrtShared.Store(true)
		ac := *a
		ac.lambdaPtr = &c.Sellers.Lambda[0]
		ac.weightPtr = &c.Broker.Weights[0]
		c.agg = &ac
	}
	return c
}

// SumInvLambda returns S = Σ 1/λᵢ, the aggregate privacy elasticity that the
// Stage 1 and Stage 2 closed forms depend on. O(1) after Precompute.
func (g *Game) SumInvLambda() float64 {
	if a := g.cached(); a != nil {
		return a.sumInvLambda
	}
	var s float64
	for _, l := range g.Sellers.Lambda {
		s += 1 / l
	}
	return s
}

// SumSqrtWeightOverLambda returns Σ √(ωⱼ/λⱼ), the aggregate appearing in the
// Stage 3 closed form (Eq. 20). O(1) after Precompute.
func (g *Game) SumSqrtWeightOverLambda() float64 {
	if a := g.cached(); a != nil {
		return a.sumSqrtWL
	}
	var s float64
	for j, w := range g.Broker.Weights {
		s += math.Sqrt(w / g.Sellers.Lambda[j])
	}
	return s
}
