package core

import (
	"math"
	"testing"

	"share/internal/nash"
	"share/internal/stat"
)

// TestJacobiMatchesGaussSeidelOnStage3Game cross-checks the two
// best-response schedules on the paper's actual Stage-3 seller game at the
// equilibrium data price: both must converge, agree with each other, and
// agree with the Eq. 20 closed form. This is the "cross-check both converge
// to the same equilibrium" guarantee for the Jacobi fast path.
func TestJacobiMatchesGaussSeidelOnStage3Game(t *testing.T) {
	const m = 25
	g := PaperGame(m, stat.NewRand(20240601))
	p, err := g.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	pd := p.PD
	analytic := g.Stage3Tau(pd)
	ng := &nash.Game{
		Players: m,
		Payoff: func(i int, x float64, s []float64) float64 {
			tau := append([]float64(nil), s...)
			tau[i] = x
			return g.SellerProfit(i, pd, tau)
		},
	}
	gs, err := ng.Solve(nash.Options{Start: analytic})
	if err != nil {
		t.Fatalf("Gauss-Seidel: %v", err)
	}
	for _, workers := range []int{1, 0} {
		jc, err := ng.Solve(nash.Options{Start: analytic, Sweep: nash.Jacobi, Workers: workers})
		if err != nil {
			t.Fatalf("Jacobi workers=%d: %v", workers, err)
		}
		for i := range gs.Strategies {
			if d := math.Abs(gs.Strategies[i] - jc.Strategies[i]); d > 1e-6 {
				t.Errorf("workers=%d seller %d: Gauss-Seidel τ=%v vs Jacobi τ=%v (Δ=%v)",
					workers, i, gs.Strategies[i], jc.Strategies[i], d)
			}
			if d := math.Abs(jc.Strategies[i] - analytic[i]); d > 1e-5 {
				t.Errorf("workers=%d seller %d: Jacobi τ=%v vs Eq. 20 τ=%v (Δ=%v)",
					workers, i, jc.Strategies[i], analytic[i], d)
			}
		}
		if jc.Residual > 1e-7 {
			t.Errorf("workers=%d: Jacobi equilibrium residual %v", workers, jc.Residual)
		}
	}
}
