package core

import (
	"errors"

	"share/internal/numeric"
)

// This file implements the broker-leading market variant the paper's
// conclusion names as a direct adaptation of the mechanism ("our data market
// model can be easily adapted to a variety of market settings, e.g.,
// broker-leading instead of buyer-leading").
//
// In the broker-leading market the broker moves first, announcing both the
// unit data price p^D (to the sellers) and the unit product price p^M (to
// the buyer). Sellers still play their inner Nash game and react along
// Eq. 20. The buyer is now a price-taker whose only decision is whether to
// participate; she buys exactly when her profit is non-negative. The broker
// therefore maximizes Ω subject to the buyer's participation constraint
// Φ(p^M, τ*(p^D)) ≥ 0.
//
// For a fixed p^D, Ω is linear and increasing in p^M, so the broker raises
// p^M until participation binds: p^M = U(q^D*)/q^M*. Substituting leaves a
// single-variable concave problem in p^D, solved by golden-section search.

// ErrNoViableTrade reports that no broker-leading price pair gives the
// broker a non-negative profit (manufacturing cost exceeds the buyer's
// total willingness to pay at any data price).
var ErrNoViableTrade = errors.New("core: no broker-leading price yields the broker non-negative profit")

// participationPM returns the largest product price the buyer accepts given
// fidelity profile tau: U(q^D)/q^M, i.e. Φ = 0. A zero-quality product has
// no finite price; it returns 0 (no trade).
func (g *Game) participationPM(tau []float64) float64 {
	qD := g.DatasetQuality(tau)
	qM := g.ProductQuality(qD)
	if qM <= 0 {
		return 0
	}
	return g.Utility(qD) / qM
}

// BrokerLeadingObjective is the broker's profit when she leads: at data
// price pD, sellers react along Eq. 20 and the product price extracts the
// buyer's full surplus.
func (g *Game) BrokerLeadingObjective(pD float64) float64 {
	tau := g.Stage3Tau(pD)
	pM := g.participationPM(tau)
	return g.BrokerProfit(pM, pD, tau)
}

// SolveBrokerLeading computes the broker-leading market outcome. The search
// bracket for p^D is [0, hi] where hi defaults (when ≤ 0) to four times the
// buyer-leading equilibrium data price — comfortably past the concave
// objective's peak, since surplus extraction only strengthens the broker's
// incentive to buy quality relative to the buyer-leading market.
func (g *Game) SolveBrokerLeading(hi float64) (*Profile, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if hi <= 0 {
		pm, err := g.Stage1PM()
		if err != nil {
			return nil, err
		}
		hi = 4 * g.Stage2PD(pm)
		if hi <= 0 {
			return nil, ErrNoViableTrade
		}
	}
	pd := numeric.GoldenMax(g.BrokerLeadingObjective, 0, hi, 0)
	tau := g.Stage3Tau(pd)
	pm := g.participationPM(tau)
	prof := g.EvaluateProfile(pm, pd, tau)
	if prof.BrokerProfit < 0 {
		return prof, ErrNoViableTrade
	}
	return prof, nil
}
