package core

import (
	"math/rand"

	"share/internal/stat"
	"share/internal/translog"
)

// Paper default parameters (§6.1): N = 500, v = 0.8, θ₁ = θ₂ = 0.5,
// ρ₁ = 0.5, ρ₂ = 250, σ₀ = 1e−3, σ₁ = −2, σ₂ = −3, σ₃ = 1e−3, σ₄ = 2e−3,
// σ₅ = 1e−3, m = 100, λᵢ drawn uniformly from (0, 1).

// PaperM is the default seller count used by the paper's experiments.
const PaperM = 100

// PaperBuyer returns the buyer parameters of §6.1.
func PaperBuyer() Buyer {
	return Buyer{
		N:      500,
		V:      0.8,
		Theta1: 0.5,
		Theta2: 0.5,
		Rho1:   0.5,
		Rho2:   250,
	}
}

// UniformWeights returns m equal weights summing to 1 — the weight state of
// a freshly established market, before any dummy-buyer iterations (§5.2).
func UniformWeights(m int) []float64 {
	w := make([]float64, m)
	for i := range w {
		w[i] = 1 / float64(m)
	}
	return w
}

// RandomLambdas draws m privacy sensitivities uniformly from the open
// interval (0, 1) as in §6.1. The open interval matters: λ = 0 voids the
// privacy loss and makes 1/λ diverge.
func RandomLambdas(m int, rng *rand.Rand) []float64 {
	ls := make([]float64, m)
	for i := range ls {
		ls[i] = stat.UniformOpen(rng, 0, 1)
	}
	return ls
}

// PaperGame assembles a game with the paper's default parameters: m sellers
// (pass 0 for the default 100), uniform weights, λ ~ U(0,1) drawn from rng.
func PaperGame(m int, rng *rand.Rand) *Game {
	if m <= 0 {
		m = PaperM
	}
	return &Game{
		Buyer: PaperBuyer(),
		Broker: Broker{
			Cost:    translog.PaperDefaults(),
			Weights: UniformWeights(m),
		},
		Sellers: Sellers{Lambda: RandomLambdas(m, rng)},
	}
}
