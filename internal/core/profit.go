package core

import (
	"math"
)

// Allocation computes the data quantity χᵢ each seller sells under fidelity
// profile tau (Eq. 13): χᵢ = N·ωᵢτᵢ / Σⱼωⱼτⱼ. If every seller offers zero
// fidelity the allocation is zero for everyone (no data changes hands).
func (g *Game) Allocation(tau []float64) []float64 {
	chi := make([]float64, len(tau))
	var denom float64
	for j, t := range tau {
		denom += g.Broker.Weights[j] * t
	}
	if denom <= 0 {
		return chi
	}
	for i, t := range tau {
		chi[i] = g.Buyer.N * g.Broker.Weights[i] * t / denom
	}
	return chi
}

// SellerQuality returns q^D_i = g(χᵢ, τᵢ) = χᵢ·τᵢ, the dataset quality seller
// i contributes (the paper's instantiation in §5.1.1).
func SellerQuality(chi, tau float64) float64 { return chi * tau }

// DatasetQuality returns the total manufacturing dataset quality
// q^D = Σᵢ χᵢτᵢ under fidelity profile tau.
func (g *Game) DatasetQuality(tau []float64) float64 {
	chi := g.Allocation(tau)
	var q float64
	for i, t := range tau {
		q += SellerQuality(chi[i], t)
	}
	return q
}

// ProductQuality returns q^M = h(q^D, v) = q^D·v, the paper's instantiation
// of product quality (§5.1.2).
func (g *Game) ProductQuality(qD float64) float64 { return qD * g.Buyer.V }

// Utility returns the buyer's product utility U(χ, τ, v) =
// θ₁·ln(1+ρ₁q^D) + θ₂·ln(1+ρ₂v) (Eqs. 5–6).
func (g *Game) Utility(qD float64) float64 {
	return g.Buyer.Theta1*math.Log(1+g.Buyer.Rho1*qD) +
		g.Buyer.Theta2*math.Log(1+g.Buyer.Rho2*g.Buyer.V)
}

// BuyerProfit evaluates Φ(p^M, τ) = U − p^M·q^M (Eq. 7) for an arbitrary
// product price and fidelity profile.
func (g *Game) BuyerProfit(pM float64, tau []float64) float64 {
	qD := g.DatasetQuality(tau)
	return g.Utility(qD) - pM*g.ProductQuality(qD)
}

// ManufacturingCost returns C(N, v) from the broker's translog parameters
// (Eq. 8).
func (g *Game) ManufacturingCost() float64 {
	return g.Broker.Cost.MustCost(g.Buyer.N, g.Buyer.V)
}

// BrokerProfit evaluates Ω(p^M, p^D, τ) = p^M·q^M − C(N, v) − p^D·q^D
// (Eq. 9).
func (g *Game) BrokerProfit(pM, pD float64, tau []float64) float64 {
	qD := g.DatasetQuality(tau)
	return pM*g.ProductQuality(qD) - g.ManufacturingCost() - pD*qD
}

// PrivacyLoss returns seller i's loss L_i(τᵢ) = λᵢ·(χᵢτᵢ)² (Eq. 11), taking
// the allocation χᵢ implied by the full fidelity profile.
func (g *Game) PrivacyLoss(i int, tau []float64) float64 {
	chi := g.Allocation(tau)
	q := SellerQuality(chi[i], tau[i])
	return g.Sellers.Lambda[i] * q * q
}

// SellerProfit evaluates Ψᵢ(p^D, τ) = p^D·q^D_i − λᵢ(χᵢτᵢ)² (Eq. 12) for
// seller i under an arbitrary fidelity profile. The profile couples sellers
// through the allocation rule: raising τᵢ wins seller i a larger χᵢ at the
// expense of the others.
func (g *Game) SellerProfit(i int, pD float64, tau []float64) float64 {
	chi := g.Allocation(tau)
	q := SellerQuality(chi[i], tau[i])
	return pD*q - g.Sellers.Lambda[i]*q*q
}

// DeviationProfits evaluates the buyer's and broker's profits plus the first
// len(sellerProfits) sellers' profits at an arbitrary profile (pM, pD, tau)
// without materializing a Profile — the allocation-free evaluator behind the
// Fig. 2 deviation sweeps, which re-evaluate thousands of profiles but read
// only a handful of fields from each. Every arithmetic expression and the
// qD accumulation order match EvaluateProfile exactly, so the returned
// values are bit-identical to the corresponding Profile fields.
func (g *Game) DeviationProfits(pM, pD float64, tau []float64, sellerProfits []float64) (buyerProfit, brokerProfit float64) {
	var denom float64
	for j, t := range tau {
		denom += g.Broker.Weights[j] * t
	}
	var qD float64
	if denom > 0 {
		for i, t := range tau {
			c := g.Buyer.N * g.Broker.Weights[i] * t / denom
			q := c * t
			qD += q
			if i < len(sellerProfits) {
				sellerProfits[i] = pD*q - g.Sellers.Lambda[i]*q*q
			}
		}
	} else {
		for i := range sellerProfits {
			sellerProfits[i] = 0
		}
	}
	qM := g.ProductQuality(qD)
	return g.Utility(qD) - pM*qM, pM*qM - g.ManufacturingCost() - pD*qD
}

// SellerProfits evaluates every seller's profit in one pass (one allocation
// computation instead of m).
func (g *Game) SellerProfits(pD float64, tau []float64) []float64 {
	chi := g.Allocation(tau)
	out := make([]float64, len(tau))
	for i, t := range tau {
		q := SellerQuality(chi[i], t)
		out[i] = pD*q - g.Sellers.Lambda[i]*q*q
	}
	return out
}
