package core

import (
	"math"
	"testing"
	"testing/quick"

	"share/internal/numeric"
	"share/internal/stat"
)

// TestStage3SatisfiesFOCSystem verifies that Eq. 20 solves the simultaneous
// first-order system of Eq. 18: p^D·Σωⱼτⱼ − 2Nλᵢωᵢτᵢ² = 0 for every i.
func TestStage3SatisfiesFOCSystem(t *testing.T) {
	g := paperTestGame(t, 30, 21)
	pd := 0.02
	tau := g.Stage3Tau(pd)
	var sum float64
	for j, tj := range tau {
		sum += g.Broker.Weights[j] * tj
	}
	for i, ti := range tau {
		if ti >= 1 {
			continue // clamped: interior FOC need not hold
		}
		resid := pd*sum - 2*g.Buyer.N*g.Sellers.Lambda[i]*g.Broker.Weights[i]*ti*ti
		if math.Abs(resid) > 1e-9*(1+pd*sum) {
			t.Errorf("Eq. 18 residual for seller %d = %v", i, resid)
		}
	}
}

// TestStage3IsNashEquilibrium checks Eq. 20 directly against the profit
// functions: no seller can gain by unilaterally moving τᵢ within [0, 1].
func TestStage3IsNashEquilibrium(t *testing.T) {
	g := paperTestGame(t, 25, 22)
	for _, pd := range []float64{0.005, 0.02, 0.1} {
		tau := g.Stage3Tau(pd)
		for i := range tau {
			base := g.SellerProfit(i, pd, tau)
			work := append([]float64(nil), tau...)
			best := numeric.GoldenMax(func(x float64) float64 {
				work[i] = x
				v := g.SellerProfit(i, pd, work)
				work[i] = tau[i]
				return v
			}, 0, 1, 0)
			work[i] = best
			gain := g.SellerProfit(i, pd, work) - base
			if gain > 1e-9*(1+math.Abs(base)) {
				t.Errorf("pd=%v: seller %d gains %v deviating to %v from %v", pd, i, gain, best, tau[i])
			}
		}
	}
}

func TestStage3ScalesLinearlyInPD(t *testing.T) {
	g := paperTestGame(t, 10, 23)
	t1 := g.Stage3Tau(0.01)
	t2 := g.Stage3Tau(0.02)
	for i := range t1 {
		if t1[i] >= 1 || t2[i] >= 1 {
			continue
		}
		if math.Abs(t2[i]-2*t1[i]) > 1e-12 {
			t.Errorf("τ[%d] not linear in p^D: %v vs %v", i, t1[i], t2[i])
		}
	}
}

func TestStage3ClampsAtOne(t *testing.T) {
	g := paperTestGame(t, 10, 24)
	tau := g.Stage3Tau(1e6)
	for i, x := range tau {
		if x != 1 {
			t.Errorf("τ[%d] = %v at huge p^D, want clamp at 1", i, x)
		}
	}
	tau = g.Stage3Tau(0)
	for i, x := range tau {
		if x != 0 {
			t.Errorf("τ[%d] = %v at p^D = 0, want 0", i, x)
		}
	}
}

func TestStage3WeightScaleInvariance(t *testing.T) {
	// Only weight proportions matter... — they do NOT for Eq. 20: τᵢ*
	// depends on the absolute ω scale through √(ωᵢλᵢ) vs Σ√(ωⱼ/λⱼ).
	// Verify the actual homogeneity: scaling all ω by k scales each τᵢ*
	// by... √(k)/√(k) = 1 in the ratio part — check numerically.
	g := paperTestGame(t, 10, 25)
	before := g.Stage3Tau(0.01)
	for i := range g.Broker.Weights {
		g.Broker.Weights[i] *= 7
	}
	after := g.Stage3Tau(0.01)
	for i := range before {
		if math.Abs(before[i]-after[i]) > 1e-12 {
			t.Errorf("τ[%d] changed under uniform weight scaling: %v vs %v", i, before[i], after[i])
		}
	}
}

func TestStage2ClosedForm(t *testing.T) {
	g := paperTestGame(t, 10, 26)
	if got := g.Stage2PD(0.05); math.Abs(got-0.8*0.05/2) > 1e-15 {
		t.Errorf("p^D = %v, want v·p^M/2", got)
	}
	if got := g.Stage2PD(0); got != 0 {
		t.Errorf("p^D at p^M=0 should be 0, got %v", got)
	}
}

// TestStage2MaximizesBrokerProfit confirms Eq. 25 is the argmax of the
// broker's reactive objective.
func TestStage2MaximizesBrokerProfit(t *testing.T) {
	g := paperTestGame(t, 40, 27)
	pm := 0.05
	pdStar := g.Stage2PD(pm)
	numericBest := numeric.GoldenMax(func(pd float64) float64 {
		return g.BrokerObjective(pm, pd)
	}, 0, 5*pdStar, 0)
	if math.Abs(numericBest-pdStar) > 1e-6*(1+pdStar) {
		t.Errorf("broker argmax = %v, closed form %v", numericBest, pdStar)
	}
}

func TestStageCoefficients(t *testing.T) {
	g := paperTestGame(t, 10, 28)
	s := g.SumInvLambda()
	c1, c2 := g.StageCoefficients()
	if math.Abs(c1-g.Buyer.Rho1*g.Buyer.V*s/4) > 1e-12 {
		t.Errorf("c1 = %v", c1)
	}
	if math.Abs(c2-g.Buyer.V*g.Buyer.V*s/(2*g.Buyer.Theta1)) > 1e-12 {
		t.Errorf("c2 = %v", c2)
	}
}

// TestStage1RootSolvesQuadratic verifies Eq. 27 satisfies
// c₁c₂·p² + c₂·p − c₁ = 0 with p > 0.
func TestStage1RootSolvesQuadratic(t *testing.T) {
	g := paperTestGame(t, 100, 29)
	pm, err := g.Stage1PM()
	if err != nil {
		t.Fatalf("Stage1PM: %v", err)
	}
	c1, c2 := g.StageCoefficients()
	resid := c1*c2*pm*pm + c2*pm - c1
	if math.Abs(resid) > 1e-9*(c1+c2) {
		t.Errorf("quadratic residual = %v", resid)
	}
	if pm <= 0 {
		t.Errorf("p^M* = %v, want positive", pm)
	}
}

// TestStage1MaximizesReducedProfit confirms Eq. 27 is the argmax of the
// reduced buyer objective, and that the reduced closed form agrees with the
// full profile evaluation along the reaction path.
func TestStage1MaximizesReducedProfit(t *testing.T) {
	g := paperTestGame(t, 60, 30)
	pm, err := g.Stage1PM()
	if err != nil {
		t.Fatalf("Stage1PM: %v", err)
	}
	best := numeric.GoldenMax(g.ReducedBuyerProfit, 0, 5*pm, 0)
	if math.Abs(best-pm) > 1e-6*(1+pm) {
		t.Errorf("buyer argmax = %v, closed form %v", best, pm)
	}
	// Consistency of the reduced form with the explicit profile machinery.
	for _, x := range []float64{pm / 2, pm, 2 * pm} {
		reduced := g.ReducedBuyerProfit(x)
		full := g.BuyerObjective(x)
		if math.Abs(reduced-full) > 1e-9*(1+math.Abs(full)) {
			t.Errorf("reduced(%v) = %v, full = %v", x, reduced, full)
		}
	}
}

func TestStage1DegenerateParameters(t *testing.T) {
	g := paperTestGame(t, 3, 31)
	g.Sellers.Lambda = []float64{math.Inf(1), math.Inf(1), math.Inf(1)}
	if _, err := g.Stage1PM(); err == nil {
		t.Error("Stage1PM accepted infinite λ (c₁ = 0)")
	}
}

func TestEvaluateProfileConsistency(t *testing.T) {
	g := paperTestGame(t, 15, 32)
	rng := stat.NewRand(33)
	tau := make([]float64, 15)
	for i := range tau {
		tau[i] = rng.Float64()
	}
	p := g.EvaluateProfile(0.04, 0.015, tau)
	if math.Abs(p.BuyerProfit-g.BuyerProfit(0.04, tau)) > 1e-12 {
		t.Error("profile buyer profit differs from direct evaluation")
	}
	if math.Abs(p.BrokerProfit-g.BrokerProfit(0.04, 0.015, tau)) > 1e-12 {
		t.Error("profile broker profit differs from direct evaluation")
	}
	for i := range tau {
		if math.Abs(p.SellerProfits[i]-g.SellerProfit(i, 0.015, tau)) > 1e-12 {
			t.Errorf("profile seller %d profit differs", i)
		}
	}
	if math.Abs(p.QM-p.QD*g.Buyer.V) > 1e-12 {
		t.Error("q^M != q^D·v")
	}
	// The profile must own its tau copy.
	tau[0] = -1
	if p.Tau[0] == -1 {
		t.Error("EvaluateProfile aliases the caller's tau slice")
	}
}

// Property: for random parameterizations, Solve returns a profile whose
// prices and fidelities are positive, finite, with Σχ = N.
func TestSolveWellFormedProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := stat.NewRand(seed)
		m := 2 + rng.Intn(60)
		g := PaperGame(m, rng)
		// Randomize the buyer a bit too.
		g.Buyer.N = float64(100 + rng.Intn(2000))
		g.Buyer.V = 0.1 + 0.89*rng.Float64()
		th := 0.1 + 0.8*rng.Float64()
		g.Buyer.Theta1, g.Buyer.Theta2 = th, 1-th
		g.Buyer.Rho1 = 0.05 + 5*rng.Float64()
		p, err := g.Solve()
		if err != nil {
			return false
		}
		if !(p.PM > 0) || !(p.PD > 0) || math.IsInf(p.PM, 0) || math.IsNaN(p.PM) {
			return false
		}
		var total float64
		for i, x := range p.Tau {
			if x < 0 || x > 1 {
				return false
			}
			total += p.Chi[i]
		}
		return math.Abs(total-g.Buyer.N) < 1e-6*g.Buyer.N
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
