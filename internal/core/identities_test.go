package core

import (
	"math"
	"testing"
	"testing/quick"

	"share/internal/stat"
)

// Closed-form identities that must hold at every equilibrium. These pin the
// implementation to the paper's algebra far more tightly than smoke tests:
// any drift in Solve's internals breaks one of them.

// q^D* = p^D*·S/2 with S = Σ1/λᵢ (derived in §5.1.2).
func TestIdentityDatasetQuality(t *testing.T) {
	prop := func(seed int64) bool {
		rng := stat.NewRand(seed)
		g := PaperGame(2+rng.Intn(50), rng)
		p, err := g.Solve()
		if err != nil {
			return false
		}
		if clamped(p.Tau) {
			return true // identity only holds at interior solutions
		}
		want := p.PD * g.SumInvLambda() / 2
		return math.Abs(p.QD-want) < 1e-9*(1+want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Seller compensation p^D·q^D equals exactly half the buyer's payment:
// p^D·q^D = (v·p^M/2)·q^D = p^M·q^M/2 since q^M = v·q^D. So the broker's
// gross margin on data is always 50% at equilibrium.
func TestIdentityBrokerMargin(t *testing.T) {
	prop := func(seed int64) bool {
		rng := stat.NewRand(seed)
		g := PaperGame(2+rng.Intn(50), rng)
		p, err := g.Solve()
		if err != nil {
			return false
		}
		payment := p.PM * p.QM
		dataSpend := p.PD * p.QD
		return math.Abs(dataSpend-payment/2) < 1e-9*(1+payment)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Broker profit decomposes as Ω* = p^M·q^M/2 − C(N, v).
func TestIdentityBrokerProfit(t *testing.T) {
	prop := func(seed int64) bool {
		rng := stat.NewRand(seed)
		g := PaperGame(2+rng.Intn(50), rng)
		p, err := g.Solve()
		if err != nil {
			return false
		}
		want := p.PM*p.QM/2 - g.ManufacturingCost()
		return math.Abs(p.BrokerProfit-want) < 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Each seller's quality is qᵢ = p^D/(2λᵢ) at interior equilibria — the load-
// bearing fact behind both the VCG-coincidence result and approximate
// truthfulness.
func TestIdentitySellerQuality(t *testing.T) {
	prop := func(seed int64) bool {
		rng := stat.NewRand(seed)
		g := PaperGame(2+rng.Intn(40), rng)
		p, err := g.Solve()
		if err != nil {
			return false
		}
		if clamped(p.Tau) {
			return true
		}
		for i := range p.Tau {
			q := p.Chi[i] * p.Tau[i]
			want := p.PD / (2 * g.Sellers.Lambda[i])
			if math.Abs(q-want) > 1e-9*(1+want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Seller profit at interior equilibrium simplifies to λᵢqᵢ² = p^D²/(4λᵢ):
// Ψᵢ = p^D·qᵢ − λᵢqᵢ² with qᵢ = p^D/(2λᵢ) gives p^D²/(2λᵢ) − p^D²/(4λᵢ).
func TestIdentitySellerProfit(t *testing.T) {
	prop := func(seed int64) bool {
		rng := stat.NewRand(seed)
		g := PaperGame(2+rng.Intn(40), rng)
		p, err := g.Solve()
		if err != nil {
			return false
		}
		if clamped(p.Tau) {
			return true
		}
		for i := range p.SellerProfits {
			want := p.PD * p.PD / (4 * g.Sellers.Lambda[i])
			if math.Abs(p.SellerProfits[i]-want) > 1e-9*(1+want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Equilibrium invariance: scaling all weights uniformly changes nothing
// observable.
func TestIdentityWeightScaleInvariance(t *testing.T) {
	prop := func(seed int64) bool {
		rng := stat.NewRand(seed)
		g := PaperGame(2+rng.Intn(30), rng)
		p1, err := g.Solve()
		if err != nil {
			return false
		}
		scale := 0.1 + 10*rng.Float64()
		g2 := g.Clone()
		for i := range g2.Broker.Weights {
			g2.Broker.Weights[i] *= scale
		}
		p2, err := g2.Solve()
		if err != nil {
			return false
		}
		if math.Abs(p1.PM-p2.PM) > 1e-12*(1+p1.PM) {
			return false
		}
		for i := range p1.Tau {
			if math.Abs(p1.Tau[i]-p2.Tau[i]) > 1e-9*(1+p1.Tau[i]) {
				return false
			}
			if math.Abs(p1.Chi[i]-p2.Chi[i]) > 1e-6*(1+p1.Chi[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func clamped(tau []float64) bool {
	for _, t := range tau {
		if t >= 1 {
			return true
		}
	}
	return false
}
