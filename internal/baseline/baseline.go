// Package baseline implements the comparator mechanisms Share is ablated
// against. The paper's central design choices are (a) letting seller
// selection emerge from the sellers' inner Nash competition instead of being
// imposed by the broker (as in Dealer and the CMAB market of An et al.), and
// (b) deriving absolute prices from the game instead of fixing them
// exogenously. Each baseline removes one of those choices while keeping the
// rest of the pipeline identical, so differences in outcome are attributable
// to the mechanism:
//
//   - FixedPrice: exogenous prices, sellers still Nash-compete (ablates the
//     Stackelberg price derivation).
//   - GreedyTopK: the broker hand-picks the k highest-weight sellers and
//     splits N equally among them (Dealer-style broker selection).
//   - RandomK: as GreedyTopK but with uniformly random winners.
//   - UniformAllocation: every seller receives N/m (no selection at all).
//   - EpsilonGreedyBandit: a multi-round explore/exploit broker that learns
//     seller quality from realized deliveries (An et al.-style bandit
//     selection, simplified to ε-greedy).
//
// Sellers remain rational everywhere: under an imposed allocation χᵢ a
// seller's profit p^D·χᵢτᵢ − λᵢ(χᵢτᵢ)² is maximized at τᵢ = p^D/(2λᵢχᵢ),
// clamped to [0, 1]; under the Nash allocation rule they play Eq. 20.
package baseline

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"share/internal/core"
	"share/internal/numeric"
)

// Outcome summarizes a mechanism's result in the same units as a
// core.Profile, so Share and the baselines can be tabled side by side.
type Outcome struct {
	// Name identifies the mechanism.
	Name string
	// PM and PD are the (possibly exogenous) unit prices.
	PM, PD float64
	// Tau and Chi are the realized fidelities and allocations.
	Tau, Chi []float64
	// QD and QM are the realized dataset and product qualities.
	QD, QM float64
	// BuyerProfit, BrokerProfit and SellerProfitTotal are the realized
	// profits (sellers aggregated).
	BuyerProfit, BrokerProfit, SellerProfitTotal float64
}

// evaluate computes an Outcome for explicit fidelities and allocations using
// the game's profit formulas (Eqs. 5–12) without the Eq. 13 allocation rule.
func evaluate(name string, g *core.Game, pM, pD float64, tau, chi []float64) *Outcome {
	var qD float64
	for i := range tau {
		qD += chi[i] * tau[i]
	}
	qM := g.ProductQuality(qD)
	o := &Outcome{
		Name: name, PM: pM, PD: pD,
		Tau: tau, Chi: chi,
		QD: qD, QM: qM,
		BuyerProfit:  g.Utility(qD) - pM*qM,
		BrokerProfit: pM*qM - g.ManufacturingCost() - pD*qD,
	}
	for i := range tau {
		q := chi[i] * tau[i]
		o.SellerProfitTotal += pD*q - g.Sellers.Lambda[i]*q*q
	}
	return o
}

// imposedResponse returns a seller's optimal fidelity when her allocation is
// fixed at chi (no competition): argmax p^D·χτ − λ(χτ)² = p^D/(2λχ), clamped
// to [0, 1]. A zero allocation leaves fidelity at zero.
func imposedResponse(pD, lambda, chi float64) float64 {
	if chi <= 0 || pD <= 0 {
		return 0
	}
	return numeric.Clamp(pD/(2*lambda*chi), 0, 1)
}

// Share runs the full Stackelberg-Nash mechanism and adapts its profile into
// an Outcome, for direct comparison.
func Share(g *core.Game) (*Outcome, error) {
	p, err := g.Solve()
	if err != nil {
		return nil, err
	}
	var sellers float64
	for _, s := range p.SellerProfits {
		sellers += s
	}
	return &Outcome{
		Name: "share", PM: p.PM, PD: p.PD,
		Tau: p.Tau, Chi: p.Chi, QD: p.QD, QM: p.QM,
		BuyerProfit: p.BuyerProfit, BrokerProfit: p.BrokerProfit,
		SellerProfitTotal: sellers,
	}, nil
}

// FixedPrice evaluates the market under exogenous prices: sellers still play
// their inner Nash game (Eq. 20 at the given p^D), but neither the buyer nor
// the broker optimizes. This ablates the game-derived absolute pricing.
func FixedPrice(g *core.Game, pM, pD float64) (*Outcome, error) {
	if pM < 0 || pD < 0 {
		return nil, fmt.Errorf("baseline: negative price (p^M=%g, p^D=%g)", pM, pD)
	}
	tau := g.Stage3Tau(pD)
	chi := g.Allocation(tau)
	return evaluate("fixed-price", g, pM, pD, tau, chi), nil
}

// GreedyTopK has the broker select the k sellers with the largest weights
// and split N equally among them — the Dealer-style broker-driven selection.
// Prices are taken from Share's equilibrium so only the selection rule
// differs.
func GreedyTopK(g *core.Game, pM, pD float64, k int) (*Outcome, error) {
	idx, err := topKByWeight(g, k)
	if err != nil {
		return nil, err
	}
	return imposed("greedy-topk", g, pM, pD, idx), nil
}

// RandomK selects k sellers uniformly at random and splits N equally.
func RandomK(g *core.Game, pM, pD float64, k int, rng *rand.Rand) (*Outcome, error) {
	m := g.M()
	if k <= 0 || k > m {
		return nil, fmt.Errorf("baseline: invalid selection size %d of %d sellers", k, m)
	}
	if rng == nil {
		return nil, errors.New("baseline: nil random source")
	}
	idx := rng.Perm(m)[:k]
	return imposed("random-k", g, pM, pD, idx), nil
}

// UniformAllocation gives every seller N/m pieces (no selection).
func UniformAllocation(g *core.Game, pM, pD float64) *Outcome {
	idx := make([]int, g.M())
	for i := range idx {
		idx[i] = i
	}
	return imposed("uniform", g, pM, pD, idx)
}

// imposed builds the outcome for an imposed equal split over the selected
// sellers, with each responding optimally to her own fixed allocation.
func imposed(name string, g *core.Game, pM, pD float64, selected []int) *Outcome {
	m := g.M()
	tau := make([]float64, m)
	chi := make([]float64, m)
	share := g.Buyer.N / float64(len(selected))
	for _, i := range selected {
		chi[i] = share
		tau[i] = imposedResponse(pD, g.Sellers.Lambda[i], share)
	}
	return evaluate(name, g, pM, pD, tau, chi)
}

func topKByWeight(g *core.Game, k int) ([]int, error) {
	m := g.M()
	if k <= 0 || k > m {
		return nil, fmt.Errorf("baseline: invalid selection size %d of %d sellers", k, m)
	}
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	w := g.Broker.Weights
	sort.SliceStable(idx, func(a, b int) bool { return w[idx[a]] > w[idx[b]] })
	return idx[:k], nil
}

// BanditResult reports a multi-round bandit-selection run.
type BanditResult struct {
	// Rounds is the number of transactions simulated.
	Rounds int
	// CumulativeQuality is Σ over rounds of the realized q^D.
	CumulativeQuality float64
	// FinalOutcome is the last round's market outcome.
	FinalOutcome *Outcome
	// PullCounts records how often each seller was selected.
	PullCounts []int
}

// EpsilonGreedyBandit simulates an An et al.-style learning broker: for
// `rounds` transactions it selects k sellers — exploring uniformly with
// probability eps, otherwise exploiting the highest observed mean per-piece
// quality — splits N equally among them, and observes the quality each
// delivers (her rational response to the imposed allocation). It measures
// how much dataset quality a broker-driven selection can accumulate without
// the inner Nash competition.
func EpsilonGreedyBandit(g *core.Game, pM, pD float64, k, rounds int, eps float64, rng *rand.Rand) (*BanditResult, error) {
	m := g.M()
	if k <= 0 || k > m {
		return nil, fmt.Errorf("baseline: invalid selection size %d of %d sellers", k, m)
	}
	if rounds <= 0 {
		return nil, fmt.Errorf("baseline: invalid round count %d", rounds)
	}
	if eps < 0 || eps > 1 {
		return nil, fmt.Errorf("baseline: exploration rate %g outside [0,1]", eps)
	}
	if rng == nil {
		return nil, errors.New("baseline: nil random source")
	}
	counts := make([]int, m)
	means := make([]float64, m)
	res := &BanditResult{Rounds: rounds, PullCounts: counts}
	for r := 0; r < rounds; r++ {
		var selected []int
		if rng.Float64() < eps {
			selected = rng.Perm(m)[:k]
		} else {
			selected = topKByScore(means, counts, k)
		}
		out := imposed("eps-greedy-bandit", g, pM, pD, selected)
		res.CumulativeQuality += out.QD
		share := g.Buyer.N / float64(k)
		for _, i := range selected {
			q := share * out.Tau[i] // realized per-seller quality
			counts[i]++
			means[i] += (q/share - means[i]) / float64(counts[i]) // per-piece quality
		}
		res.FinalOutcome = out
	}
	return res, nil
}

// topKByScore returns the k indices with the best optimistic score: unseen
// sellers first (forced exploration), then by observed mean quality.
func topKByScore(means []float64, counts []int, k int) []int {
	idx := make([]int, len(means))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if (counts[ia] == 0) != (counts[ib] == 0) {
			return counts[ia] == 0
		}
		return means[ia] > means[ib]
	})
	return idx[:k]
}
