package baseline

import (
	"math"
	"testing"

	"share/internal/core"
	"share/internal/stat"
)

func testGame(t *testing.T, m int, seed int64) *core.Game {
	t.Helper()
	g := core.PaperGame(m, stat.NewRand(seed))
	if err := g.Validate(); err != nil {
		t.Fatalf("game invalid: %v", err)
	}
	return g
}

func TestShareOutcomeMatchesSolve(t *testing.T) {
	g := testGame(t, 20, 1)
	o, err := Share(g)
	if err != nil {
		t.Fatalf("Share: %v", err)
	}
	p, err := g.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if o.PM != p.PM || o.PD != p.PD || o.QD != p.QD {
		t.Error("Share outcome diverges from Solve")
	}
	var sellers float64
	for _, s := range p.SellerProfits {
		sellers += s
	}
	if math.Abs(o.SellerProfitTotal-sellers) > 1e-12 {
		t.Errorf("seller total = %v, want %v", o.SellerProfitTotal, sellers)
	}
}

func TestFixedPriceSellersStillReact(t *testing.T) {
	g := testGame(t, 15, 2)
	o, err := FixedPrice(g, 0.05, 0.02)
	if err != nil {
		t.Fatalf("FixedPrice: %v", err)
	}
	want := g.Stage3Tau(0.02)
	for i := range want {
		if math.Abs(o.Tau[i]-want[i]) > 1e-12 {
			t.Errorf("τ[%d] = %v, want Eq. 20 reaction %v", i, o.Tau[i], want[i])
		}
	}
	if _, err := FixedPrice(g, -1, 0.02); err == nil {
		t.Error("accepted a negative price")
	}
}

// The headline ablation claim: at Share's own equilibrium prices, no
// broker-imposed selection (greedy/random/uniform) extracts more dataset
// quality than the Nash competition does — and the buyer is never better
// off under imposed selection.
func TestShareSelectionBeatsImposedSelection(t *testing.T) {
	g := testGame(t, 40, 3)
	share, err := Share(g)
	if err != nil {
		t.Fatalf("Share: %v", err)
	}
	rng := stat.NewRand(4)
	greedy, err := GreedyTopK(g, share.PM, share.PD, 10)
	if err != nil {
		t.Fatalf("GreedyTopK: %v", err)
	}
	random, err := RandomK(g, share.PM, share.PD, 10, rng)
	if err != nil {
		t.Fatalf("RandomK: %v", err)
	}
	uniform := UniformAllocation(g, share.PM, share.PD)
	for _, o := range []*Outcome{greedy, random, uniform} {
		if o.QD > share.QD+1e-9 {
			t.Errorf("%s extracts more quality (%v) than Share (%v)", o.Name, o.QD, share.QD)
		}
		if o.BuyerProfit > share.BuyerProfit+1e-9 {
			t.Errorf("%s gives the buyer more profit (%v) than Share (%v)", o.Name, o.BuyerProfit, share.BuyerProfit)
		}
	}
}

func TestImposedAllocationsSumToN(t *testing.T) {
	g := testGame(t, 12, 5)
	share, _ := Share(g)
	uniform := UniformAllocation(g, share.PM, share.PD)
	var total float64
	for _, c := range uniform.Chi {
		total += c
	}
	if math.Abs(total-g.Buyer.N) > 1e-9 {
		t.Errorf("uniform Σχ = %v, want %v", total, g.Buyer.N)
	}
	greedy, _ := GreedyTopK(g, share.PM, share.PD, 3)
	total = 0
	selected := 0
	for _, c := range greedy.Chi {
		total += c
		if c > 0 {
			selected++
		}
	}
	if math.Abs(total-g.Buyer.N) > 1e-9 || selected != 3 {
		t.Errorf("greedy: Σχ = %v over %d sellers, want %v over 3", total, selected, g.Buyer.N)
	}
}

func TestGreedyPicksHighestWeights(t *testing.T) {
	g := testGame(t, 5, 6)
	g.Broker.Weights = []float64{0.1, 0.5, 0.2, 0.9, 0.3}
	o, err := GreedyTopK(g, 0.05, 0.02, 2)
	if err != nil {
		t.Fatalf("GreedyTopK: %v", err)
	}
	if o.Chi[3] == 0 || o.Chi[1] == 0 {
		t.Errorf("greedy should select sellers 3 and 1: χ = %v", o.Chi)
	}
	for _, i := range []int{0, 2, 4} {
		if o.Chi[i] != 0 {
			t.Errorf("greedy selected low-weight seller %d", i)
		}
	}
}

func TestSelectionValidation(t *testing.T) {
	g := testGame(t, 5, 7)
	if _, err := GreedyTopK(g, 0.05, 0.02, 0); err == nil {
		t.Error("accepted k = 0")
	}
	if _, err := GreedyTopK(g, 0.05, 0.02, 6); err == nil {
		t.Error("accepted k > m")
	}
	if _, err := RandomK(g, 0.05, 0.02, 2, nil); err == nil {
		t.Error("accepted nil rng")
	}
}

func TestImposedResponseSellerRationality(t *testing.T) {
	// Under an imposed allocation the chosen fidelity maximizes the
	// seller's profit: verify against a grid.
	pD, lambda, chi := 0.05, 0.4, 80.0
	best := imposedResponse(pD, lambda, chi)
	profit := func(tau float64) float64 {
		q := chi * tau
		return pD*q - lambda*q*q
	}
	base := profit(best)
	for _, tau := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if profit(tau) > base+1e-12 {
			t.Errorf("imposed response %v beaten by τ = %v", best, tau)
		}
	}
	if got := imposedResponse(pD, lambda, 0); got != 0 {
		t.Errorf("zero allocation should yield zero fidelity, got %v", got)
	}
}

func TestEpsilonGreedyBanditLearnsGoodSellers(t *testing.T) {
	g := testGame(t, 10, 8)
	// Make sellers 0 and 1 dramatically cheaper to provide fidelity.
	for i := range g.Sellers.Lambda {
		g.Sellers.Lambda[i] = 5
	}
	g.Sellers.Lambda[0] = 0.01
	g.Sellers.Lambda[1] = 0.01
	rng := stat.NewRand(9)
	res, err := EpsilonGreedyBandit(g, 0.05, 0.02, 2, 200, 0.1, rng)
	if err != nil {
		t.Fatalf("EpsilonGreedyBandit: %v", err)
	}
	// The two cheap sellers should dominate the pulls.
	cheap := res.PullCounts[0] + res.PullCounts[1]
	var total int
	for _, c := range res.PullCounts {
		total += c
	}
	if float64(cheap)/float64(total) < 0.6 {
		t.Errorf("bandit failed to exploit cheap sellers: %v", res.PullCounts)
	}
	if res.CumulativeQuality <= 0 {
		t.Errorf("cumulative quality = %v", res.CumulativeQuality)
	}
	if res.FinalOutcome == nil {
		t.Error("no final outcome recorded")
	}
}

func TestEpsilonGreedyBanditValidation(t *testing.T) {
	g := testGame(t, 5, 10)
	rng := stat.NewRand(11)
	if _, err := EpsilonGreedyBandit(g, 0.05, 0.02, 0, 10, 0.1, rng); err == nil {
		t.Error("accepted k = 0")
	}
	if _, err := EpsilonGreedyBandit(g, 0.05, 0.02, 2, 0, 0.1, rng); err == nil {
		t.Error("accepted zero rounds")
	}
	if _, err := EpsilonGreedyBandit(g, 0.05, 0.02, 2, 10, 1.5, rng); err == nil {
		t.Error("accepted ε > 1")
	}
	if _, err := EpsilonGreedyBandit(g, 0.05, 0.02, 2, 10, 0.1, nil); err == nil {
		t.Error("accepted nil rng")
	}
}
