package baseline

import (
	"errors"
	"fmt"
	"math"

	"share/internal/core"
)

// VCG procurement: a centralized, strategy-proof comparator to Share's
// decentralized Nash competition. The broker procures a total dataset
// quality Q directly: sellers report their privacy sensitivities, the
// broker computes the cost-minimizing quality split, and pays each seller
// her Clarke-pivot (VCG) transfer, which makes truthful reporting a
// dominant strategy.
//
// With quadratic privacy costs cᵢ(q) = λᵢq² (Eq. 11 with q = χτ), the
// cost-minimizing split of a total Q solves min Σλᵢqᵢ² s.t. Σqᵢ = Q, giving
//
//	qᵢ = Q/(λᵢ·S),  S = Σ1/λⱼ,  total cost Q²/S.
//
// Strikingly, this is exactly the per-seller quality profile Share's inner
// Nash game induces at equilibrium (qᵢ* = p^D/(2λᵢ) with Q* = p^D·S/2): the
// sellers' decentralized fidelity competition reproduces the centrally
// cost-efficient procurement — one of the strongest things one can say for
// the Eq. 13 allocation rule. What differs is the *payment*: VCG's pivot
// transfers overpay relative to Share's uniform quality price whenever
// sellers are heterogeneous, which is the classic price of strategy-
// proofness (the tests quantify it).
type VCGOutcome struct {
	// Quality is the procured per-seller quality qᵢ.
	Quality []float64
	// Payments are the Clarke-pivot transfers to each seller.
	Payments []float64
	// TotalQuality is Q.
	TotalQuality float64
	// TotalPayment is Σ payments (the broker's procurement spend).
	TotalPayment float64
	// TotalCost is the sellers' total privacy cost Q²/S.
	TotalCost float64
	// SellerSurplus is TotalPayment − TotalCost (each seller's surplus is
	// her payment minus her own cost; all are non-negative under VCG).
	SellerSurplus float64
}

// VCGProcure computes the VCG procurement of total quality q from the
// game's sellers.
func VCGProcure(g *core.Game, q float64) (*VCGOutcome, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if !(q > 0) {
		return nil, fmt.Errorf("baseline: procurement quality must be positive, got %g", q)
	}
	m := g.M()
	if m < 2 {
		return nil, errors.New("baseline: VCG procurement needs at least two sellers (the pivot removes one)")
	}
	s := g.SumInvLambda()
	out := &VCGOutcome{
		Quality:      make([]float64, m),
		Payments:     make([]float64, m),
		TotalQuality: q,
		TotalCost:    q * q / s,
	}
	for i, li := range g.Sellers.Lambda {
		qi := q / (li * s)
		out.Quality[i] = qi
		// Clarke pivot: welfare of others without i minus with i.
		// Without seller i the others deliver Q at cost Q²/S₋ᵢ; with her
		// they bear Q²/S − λᵢqᵢ².
		sWithout := s - 1/li
		costOthersWithout := q * q / sWithout
		costOthersWith := out.TotalCost - li*qi*qi
		out.Payments[i] = costOthersWithout - costOthersWith
		out.TotalPayment += out.Payments[i]
	}
	out.SellerSurplus = out.TotalPayment - out.TotalCost
	return out, nil
}

// VCGVersusShare compares the two procurement routes at Share's equilibrium
// quality: same quality profile, different payments.
type VCGVersusShare struct {
	Share *Outcome
	VCG   *VCGOutcome
	// PaymentRatio is VCG total payment / Share's data spending p^D·q^D.
	PaymentRatio float64
	// MaxQualityGap is the largest |qᵢ^VCG − qᵢ^Share| (zero up to float
	// error: the allocations provably coincide).
	MaxQualityGap float64
}

// CompareVCG runs Share, then VCG-procures the identical total quality, and
// reports the comparison.
func CompareVCG(g *core.Game) (*VCGVersusShare, error) {
	share, err := Share(g)
	if err != nil {
		return nil, err
	}
	if !(share.QD > 0) {
		return nil, errors.New("baseline: Share equilibrium procured no quality")
	}
	vcg, err := VCGProcure(g, share.QD)
	if err != nil {
		return nil, err
	}
	cmp := &VCGVersusShare{Share: share, VCG: vcg}
	shareSpend := share.PD * share.QD
	if shareSpend > 0 {
		cmp.PaymentRatio = vcg.TotalPayment / shareSpend
	}
	for i := range vcg.Quality {
		shareQ := share.Chi[i] * share.Tau[i]
		if d := math.Abs(vcg.Quality[i] - shareQ); d > cmp.MaxQualityGap {
			cmp.MaxQualityGap = d
		}
	}
	return cmp, nil
}
