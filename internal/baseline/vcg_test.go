package baseline

import (
	"math"
	"testing"
	"testing/quick"

	"share/internal/core"
	"share/internal/stat"
)

func TestVCGAllocationMinimizesCost(t *testing.T) {
	g := testGame(t, 10, 20)
	out, err := VCGProcure(g, 5)
	if err != nil {
		t.Fatalf("VCGProcure: %v", err)
	}
	// Quality sums to Q.
	var total float64
	for _, q := range out.Quality {
		total += q
	}
	if math.Abs(total-5) > 1e-9 {
		t.Errorf("ΣQ = %v, want 5", total)
	}
	// Cost matches the closed form Q²/S.
	s := g.SumInvLambda()
	if math.Abs(out.TotalCost-25/s) > 1e-9 {
		t.Errorf("total cost = %v, want %v", out.TotalCost, 25/s)
	}
	// No perturbation of the split lowers the cost (optimality): move
	// mass δ from seller a to seller b and check the cost rises.
	cost := func(qs []float64) float64 {
		var c float64
		for i, q := range qs {
			c += g.Sellers.Lambda[i] * q * q
		}
		return c
	}
	base := cost(out.Quality)
	for a := 0; a < 3; a++ {
		for b := 5; b < 8; b++ {
			alt := append([]float64(nil), out.Quality...)
			alt[a] += 0.1
			alt[b] -= 0.1
			if cost(alt) < base-1e-9 {
				t.Errorf("perturbed split (%d→%d) beats the 'optimal' one", b, a)
			}
		}
	}
}

func TestVCGIndividualRationality(t *testing.T) {
	// Every seller's payment covers her own cost (IR), strictly when she
	// has competition.
	g := testGame(t, 8, 21)
	out, err := VCGProcure(g, 3)
	if err != nil {
		t.Fatalf("VCGProcure: %v", err)
	}
	for i, pay := range out.Payments {
		own := g.Sellers.Lambda[i] * out.Quality[i] * out.Quality[i]
		if pay < own-1e-12 {
			t.Errorf("seller %d paid %v below her cost %v", i, pay, own)
		}
	}
	if out.SellerSurplus < 0 {
		t.Errorf("aggregate seller surplus = %v", out.SellerSurplus)
	}
}

// TestVCGTruthfulness verifies the dominant-strategy property empirically:
// misreporting λ̂ᵢ never increases seller i's utility (payment − true cost).
func TestVCGTruthfulness(t *testing.T) {
	g := testGame(t, 6, 22)
	const q = 4.0
	truthful, err := VCGProcure(g, q)
	if err != nil {
		t.Fatalf("VCGProcure: %v", err)
	}
	i := 2
	trueLambda := g.Sellers.Lambda[i]
	truthUtil := truthful.Payments[i] - trueLambda*truthful.Quality[i]*truthful.Quality[i]
	for _, factor := range []float64{0.25, 0.5, 0.8, 1.25, 2, 4} {
		lied := g.Clone()
		lied.Sellers.Lambda[i] = factor * trueLambda
		out, err := VCGProcure(lied, q)
		if err != nil {
			t.Fatalf("VCGProcure(misreport %v): %v", factor, err)
		}
		util := out.Payments[i] - trueLambda*out.Quality[i]*out.Quality[i]
		if util > truthUtil+1e-9 {
			t.Errorf("misreport ×%v utility %v beats truthful %v — VCG truthfulness broken", factor, util, truthUtil)
		}
	}
}

// TestCompareVCGAllocationsCoincide confirms the headline structural fact:
// Share's Nash equilibrium induces exactly the VCG/cost-efficient quality
// split — and pays less for it.
func TestCompareVCGAllocationsCoincide(t *testing.T) {
	g := testGame(t, 30, 23)
	cmp, err := CompareVCG(g)
	if err != nil {
		t.Fatalf("CompareVCG: %v", err)
	}
	if cmp.MaxQualityGap > 1e-9*(1+cmp.Share.QD) {
		t.Errorf("quality profiles differ by %v; they should coincide", cmp.MaxQualityGap)
	}
	// VCG overpays relative to Share's uniform quality price: each pivot
	// payment exceeds λᵢqᵢ² and the pricing rule is designed to leave
	// information rents.
	if cmp.PaymentRatio <= 1 {
		t.Errorf("payment ratio = %v; VCG should cost the broker more than the Nash route", cmp.PaymentRatio)
	}
}

// Property: individual rationality and the quality budget hold across
// random games and procurement targets.
func TestVCGPropertyIR(t *testing.T) {
	prop := func(seed int64) bool {
		rng := stat.NewRand(seed)
		m := 2 + rng.Intn(20)
		gg := core.PaperGame(m, rng)
		q := 0.5 + 10*rng.Float64()
		out, err := VCGProcure(gg, q)
		if err != nil {
			return false
		}
		var total float64
		for i, pay := range out.Payments {
			own := gg.Sellers.Lambda[i] * out.Quality[i] * out.Quality[i]
			if pay < own-1e-9 {
				return false
			}
			total += out.Quality[i]
		}
		return math.Abs(total-q) < 1e-6*q
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
