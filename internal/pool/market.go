package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"share/internal/budget"
	"share/internal/core"
	"share/internal/dataset"
	"share/internal/market"
	"share/internal/obs"
	"share/internal/parallel"
	"share/internal/product"
	"share/internal/solve"
	"share/internal/stat"
	"share/internal/translog"
	"share/internal/wal"
)

// Market is one hosted market: an independent broker with its own seller
// roster, weight trajectory, ledger and solver default.
//
// Locking: writeMu serializes the mutating operations (registration,
// trades, snapshot save/restore) of THIS market only. Read paths — View,
// Quote, QuoteBatch, Info — never take it; they load the atomically
// published View. stateMu guards only the admission gate (closed flag +
// in-flight counter) used by Delete's drain.
type Market struct {
	id     string
	p      *Pool
	seed   int64
	solver solve.Backend

	stateMu  sync.Mutex
	closeErr error         // nil while open; the begin-rejection reason once closing
	closing  chan struct{} // closed (once) alongside closeErr being set
	inFlight sync.WaitGroup

	// adm is the trade-admission gate: a slot semaphore bounding in-flight
	// rounds plus a bounded waiting room. Quotes are never gated.
	adm *gate

	writeMu sync.Mutex
	view    atomic.Pointer[View]
	cfg     market.Config
	sellers []*market.Seller // guarded by writeMu
	mkt     *market.Market   // guarded by writeMu

	// rosterEpoch counts every roster mutation over the market's life —
	// pre-trade registrations as well as mid-life joins and leaves — and
	// mirrors the inner market's epoch once trading has begun. Guarded by
	// writeMu; the published View carries the epoch it was built at.
	rosterEpoch uint64

	// Event fan-out for the streaming API: subscribers receive roster and
	// weight events after each committed mutation. subMu guards the map;
	// emit never blocks (slow subscribers drop events).
	subMu   sync.Mutex
	subs    map[int]chan Event
	nextSub int

	// durability selects the persistence mode; log is the market's WAL
	// segment, opened lazily at the first persisted mutation (or attached
	// with replay at restore). Both guarded by writeMu; the commit wait
	// itself happens outside the lock so fsyncs overlap the next round.
	durability Durability
	log        *wal.Log

	// ledger is the market's per-seller privacy-budget ledger (nil when
	// budgeting is disabled). The inner market charges it at trade commit;
	// the pool persists every charge as a budget_charge WAL record and
	// restores it through snapshots. Guarded by writeMu like the rest of
	// the trading state; epsBudget and composition are immutable after
	// creation.
	ledger      *budget.Ledger
	epsBudget   float64
	composition budget.Composition

	quoteObs  *obs.Endpoint // per-market equilibrium-quote latency
	tradeObs  *obs.Endpoint // per-market full-round latency
	reprepObs *obs.Endpoint // incremental re-preparation latency on churn

	rosterGauge *obs.Gauge   // current roster size
	subGauge    *obs.Gauge   // live stream subscribers
	exhaustedC  *obs.Counter // trades refused on budget exhaustion (nil without a ledger)
}

// View is an immutable snapshot of everything a market's read paths serve.
// Writers build a fresh View under writeMu and publish it atomically;
// nothing reachable from a published View is ever mutated.
type View struct {
	// Protos holds one validated, precomputed solver prototype per
	// registered backend over the current sellers and weights (nil until
	// the first seller registers). A quote Clones the requested backend's
	// prototype — O(m) copy, seller aggregates carried.
	Protos map[string]solve.Prepared
	// Sellers is the roster with current weights.
	Sellers []SellerState
	// Weights is the broker's weight vector (uniform length-1 placeholder
	// while the roster is empty, matching the single-market server).
	Weights []float64
	// Trades is the committed ledger; every entry is a deep copy.
	Trades []*market.Transaction
	// Trading reports whether the first round has executed (the point past
	// which roster changes go through the churn path instead of plain
	// registration).
	Trading bool
	// Epoch is the roster epoch the view was published at.
	Epoch uint64
}

// SellerState is one roster entry of a View. The budget fields are zero
// when the market has no privacy-budget ledger; Discount is the similarity
// factor applied to the seller's payout in the last committed round (1 when
// discounting is enabled but no round has priced the seller yet, 0 when
// discounting is disabled).
type SellerState struct {
	ID       string
	Lambda   float64
	Rows     int
	Weight   float64
	Budget   float64
	Spent    float64
	Discount float64
}

// Registration is a seller joining a market. Exactly one of Rows/Targets
// or SyntheticRows must supply data.
type Registration struct {
	ID            string
	Lambda        float64
	Rows          [][]float64
	Targets       []float64
	SyntheticRows int
}

// BatchDemand is one entry of a batch quote: a validated buyer plus the
// requested solver backend ("" → the market's default).
type BatchDemand struct {
	Buyer  core.Buyer
	Solver string
}

// newMarket builds an empty market with a published empty view. The
// market's synthetic test set derives from its seed exactly as the
// single-market server's did, so the pool's default market is
// bit-compatible with the pre-pool service.
func (p *Pool) newMarket(id string, backend solve.Backend, seed int64, durability Durability, concurrency, queue int, epsBudget float64, composition budget.Composition) *Market {
	var ledger *budget.Ledger
	if epsBudget > 0 {
		l, err := budget.NewLedger(budget.Config{Epsilon: epsBudget, Composition: composition})
		if err != nil {
			// Create validated the config; this is unreachable short of a
			// programming error, and disabling beats refusing the market.
			p.logf("pool: market %q: budget ledger: %v; disabling budgets", id, err)
			epsBudget = 0
		} else {
			ledger = l
		}
	}
	m := &Market{
		id:          id,
		p:           p,
		seed:        seed,
		solver:      backend,
		closing:     make(chan struct{}),
		adm:         newGate(p.metrics, id, concurrency, queue),
		durability:  durability,
		ledger:      ledger,
		epsBudget:   epsBudget,
		composition: composition,
		cfg: market.Config{
			Cost:     p.cost,
			TestSet:  dataset.SyntheticCCPP(p.testRows, stat.NewRand(seed+7)),
			Update:   p.update,
			Solver:   backend,
			Seed:     seed,
			Budget:   ledger,
			Discount: p.discount,
		},
		quoteObs:    p.metrics.Endpoint("market/" + id + "/quote"),
		tradeObs:    p.metrics.Endpoint("market/" + id + "/trade"),
		reprepObs:   p.metrics.Endpoint("market/" + id + "/reprepare"),
		rosterGauge: p.metrics.Gauge("market/" + id + "/roster_size"),
		subGauge:    p.metrics.Gauge("market/" + id + "/stream_subscribers"),
		subs:        make(map[int]chan Event),
	}
	if ledger != nil {
		m.exhaustedC = p.metrics.Counter("market/" + id + "/budget_exhausted")
	}
	m.view.Store(&View{Weights: core.UniformWeights(1)})
	return m
}

// ID returns the market's pool-unique name.
func (m *Market) ID() string { return m.id }

// Seed returns the market's random seed.
func (m *Market) Seed() int64 { return m.seed }

// Solver names the market's default equilibrium backend.
func (m *Market) Solver() string { return m.solver.Name() }

// TestSet exposes the market's held-out scoring dataset (the reference
// data product builders calibrate against).
func (m *Market) TestSet() *dataset.Dataset { return m.cfg.TestSet }

// View returns the current immutable market view.
func (m *Market) View() *View { return m.view.Load() }

// Info summarizes the market from its lock-free view.
func (m *Market) Info() Info {
	v := m.view.Load()
	return Info{
		ID:               m.id,
		Solver:           m.solver.Name(),
		Seed:             m.seed,
		Durability:       string(m.durability),
		TradeConcurrency: cap(m.adm.slots),
		TradeQueue:       m.adm.queueCap,
		Sellers:          len(v.Sellers),
		Trades:           len(v.Trades),
		Trading:          v.Trading,
		RosterEpoch:      v.Epoch,
		EpsilonBudget:    m.epsBudget,
		Composition:      m.compositionName(),
	}
}

// compositionName reports the market's ε-composition rule, empty when
// budgeting is disabled (so Info and snapshots omit it).
func (m *Market) compositionName() string {
	if m.ledger == nil {
		return ""
	}
	return string(m.composition)
}

// Durability reports the market's persistence mode.
func (m *Market) Durability() Durability { return m.durability }

// close marks the market as draining with the given begin-rejection
// reason (ErrMarketClosed for a Delete, ErrDraining for pool shutdown) and
// wakes every trade parked in the admission queue. The first reason wins.
func (m *Market) close(reason error) {
	m.stateMu.Lock()
	if m.closeErr == nil {
		m.closeErr = reason
		close(m.closing)
	}
	m.stateMu.Unlock()
}

// closeReason reports why the market is draining (nil while open).
func (m *Market) closeReason() error {
	m.stateMu.Lock()
	defer m.stateMu.Unlock()
	return m.closeErr
}

// begin admits one mutating operation, failing once the market is
// draining. The paired end releases the drain counter.
func (m *Market) begin() error {
	m.stateMu.Lock()
	defer m.stateMu.Unlock()
	if m.closeErr != nil {
		return fmt.Errorf("market %q: %w", m.id, m.closeErr)
	}
	m.inFlight.Add(1)
	return nil
}

func (m *Market) end() { m.inFlight.Done() }

// RegisterSeller admits a seller, before the first trade or mid-life. The
// returned state carries the seller's materialized row count and, for a
// mid-life join, the weight she was admitted at (pre-trade rosters start
// uniform). With WAL persistence on, the admission is logged and its
// durability barrier awaited before returning.
func (m *Market) RegisterSeller(reg Registration) (SellerState, error) {
	if err := m.begin(); err != nil {
		return SellerState{}, err
	}
	defer m.end()
	st, l, seq, err := m.registerLocked(reg)
	if err != nil {
		return SellerState{}, err
	}
	m.commitWal(l, seq)
	return st, nil
}

// registerLocked is RegisterSeller's write-lock section: admission checks,
// roster append (or mid-life join through the inner market's incremental
// churn path), view publication and the WAL append.
func (m *Market) registerLocked(reg Registration) (SellerState, *wal.Log, uint64, error) {
	m.writeMu.Lock()
	defer m.writeMu.Unlock()
	if reg.ID == "" {
		return SellerState{}, nil, 0, &FieldError{Field: "id", Msg: "seller id is required"}
	}
	for _, existing := range m.sellers {
		if existing.ID == reg.ID {
			return SellerState{}, nil, 0, fmt.Errorf("seller %q: %w", reg.ID, ErrSellerExists)
		}
	}
	if !(reg.Lambda > 0) {
		return SellerState{}, nil, 0, &FieldError{Field: "lambda", Msg: fmt.Sprintf("must be positive, got %g", reg.Lambda)}
	}
	data, err := m.sellerData(reg)
	if err != nil {
		return SellerState{}, nil, 0, err
	}
	// The market's LDP mechanism and product builders need one common
	// schema; a mismatched roster would otherwise only blow up at the
	// first trade.
	if len(m.sellers) > 0 {
		if want, got := m.sellers[0].Data.NumFeatures(), data.NumFeatures(); got != want {
			return SellerState{}, nil, 0, &FieldError{Field: "rows", Msg: fmt.Sprintf(
				"expected %d features per row to match the registered roster, got %d", want, got)}
		}
	}
	sel := &market.Seller{ID: reg.ID, Lambda: reg.Lambda, Data: data}
	if m.mkt != nil {
		// Mid-life join: the inner market stages an incremental solver
		// re-preparation (rank-1 aggregate adjustment) and commits it with
		// the roster in one step; the view swap reuses the same delta.
		weight, err := m.mkt.AddSeller(sel)
		if err != nil {
			return SellerState{}, nil, 0, err
		}
		m.sellers = append(m.sellers, sel)
		m.rosterEpoch = m.mkt.Epoch()
		m.publishChurnView(solve.RosterDelta{
			Epoch:  m.rosterEpoch,
			Join:   true,
			Index:  len(m.sellers) - 1,
			Lambda: reg.Lambda,
			Weight: weight,
		})
		l, seq := m.persistJoinLocked(joinRecord{
			Seller: StoredSeller{ID: reg.ID, Lambda: reg.Lambda, Rows: data.X, Targets: data.Y},
			Weight: weight,
			Epoch:  m.rosterEpoch,
		})
		m.emitRoster("join", reg.ID)
		m.p.logf("pool: market %q admitted seller %q mid-life (%d rows, λ=%g, ω=%g, epoch %d)",
			m.id, reg.ID, data.Len(), reg.Lambda, weight, m.rosterEpoch)
		return SellerState{ID: reg.ID, Lambda: reg.Lambda, Rows: data.Len(), Weight: weight}, l, seq, nil
	}
	m.sellers = append(m.sellers, sel)
	m.rosterEpoch++
	if err := m.publishView(); err != nil {
		// Roll the registration back: a roster the game rejects (e.g. a
		// pathological λ passing the > 0 check but failing validation)
		// must not be half-admitted.
		m.sellers = m.sellers[:len(m.sellers)-1]
		m.rosterEpoch--
		return SellerState{}, nil, 0, &FieldError{Field: "lambda", Msg: err.Error()}
	}
	l, seq := m.persistRegisterLocked(StoredSeller{ID: reg.ID, Lambda: reg.Lambda, Rows: data.X, Targets: data.Y})
	m.emitRoster("join", reg.ID)
	m.p.logf("pool: market %q registered seller %q (%d rows, λ=%g)", m.id, reg.ID, data.Len(), reg.Lambda)
	return SellerState{ID: reg.ID, Lambda: reg.Lambda, Rows: data.Len()}, l, seq, nil
}

// sellerData materializes a registration's dataset: inline rows validated,
// or a synthetic CCPP-like set minted from the market seed and roster
// position (identical to the single-market server's demo path).
func (m *Market) sellerData(reg Registration) (*dataset.Dataset, error) {
	switch {
	case reg.SyntheticRows > 0 && reg.Rows != nil:
		return nil, &FieldError{Field: "synthetic_rows", Msg: "provide either inline rows or synthetic_rows, not both"}
	case reg.SyntheticRows > 0:
		return dataset.SyntheticCCPP(reg.SyntheticRows, stat.NewRand(m.cfg.Seed+int64(len(m.sellers)))), nil
	case len(reg.Rows) > 0:
		if len(reg.Rows) != len(reg.Targets) {
			return nil, &FieldError{Field: "targets", Msg: fmt.Sprintf("%d rows but %d targets", len(reg.Rows), len(reg.Targets))}
		}
		d := &dataset.Dataset{X: reg.Rows, Y: reg.Targets}
		if err := d.Validate(); err != nil {
			return nil, &FieldError{Field: "rows", Msg: err.Error()}
		}
		return d, nil
	default:
		return nil, &FieldError{Field: "rows", Msg: "seller data required: inline rows or synthetic_rows"}
	}
}

// resolveProto maps a requested solver name onto the view's prepared
// prototype, defaulting to the market's own backend.
func (m *Market) resolveProto(v *View, requested string) (string, solve.Prepared, error) {
	name := requested
	if name == "" {
		name = m.solver.Name()
	}
	proto, ok := v.Protos[name]
	if !ok {
		if _, err := solve.Lookup(name); err != nil {
			return name, nil, &FieldError{Field: "solver", Msg: err.Error()}
		}
		return name, nil, fmt.Errorf("market %q: %w", m.id, ErrNoSellers)
	}
	return name, proto, nil
}

// Quote solves the game for one buyer against the published view — no
// locks, so quotes stay responsive while a trade holds the write path.
// The returned name is the backend that actually solved.
func (m *Market) Quote(ctx context.Context, b core.Buyer, solverName string) (*core.Profile, string, error) {
	v := m.view.Load()
	name, proto, err := m.resolveProto(v, solverName)
	if err != nil {
		return nil, name, err
	}
	prep := proto.Clone()
	prep.SetBuyer(b)
	t0 := time.Now()
	prof, err := prep.Solve(ctx)
	if err != nil {
		return nil, name, err
	}
	d := time.Since(t0)
	if ep := m.p.solveObs[name]; ep != nil {
		ep.Observe(d)
	}
	if sp, ok := prep.(solve.StatsProvider); ok {
		m.p.observeStage3(sp.SolveStats())
	}
	m.quoteObs.Observe(d)
	return prof, name, nil
}

// QuoteBatch solves many demands concurrently against ONE consistent view
// snapshot, fanned across the pool's shared worker budget. Each index owns
// its clone and its output slot and results are collected in order, so the
// batch is byte-identical for every worker count. A failing demand aborts
// the batch with a BatchError naming the lowest failing index (quotes have
// no side effects, so the all-or-nothing contract is cheap and keeps the
// error deterministic).
func (m *Market) QuoteBatch(ctx context.Context, demands []BatchDemand) ([]*core.Profile, []string, error) {
	v := m.view.Load()
	names := make([]string, len(demands))
	t0 := time.Now()
	profiles, err := parallel.Map(m.p.workers, len(demands), func(i int) (*core.Profile, error) {
		name, proto, err := m.resolveProto(v, demands[i].Solver)
		names[i] = name
		if err != nil {
			return nil, &BatchError{Index: i, Err: err}
		}
		prep := proto.Clone()
		prep.SetBuyer(demands[i].Buyer)
		s0 := time.Now()
		prof, err := prep.Solve(ctx)
		if err != nil {
			return nil, &BatchError{Index: i, Err: err}
		}
		if ep := m.p.solveObs[name]; ep != nil {
			ep.Observe(time.Since(s0))
		}
		if sp, ok := prep.(solve.StatsProvider); ok {
			m.p.observeStage3(sp.SolveStats())
		}
		return prof, nil
	})
	if err != nil {
		return nil, nil, err
	}
	m.quoteObs.Observe(time.Since(t0))
	return profiles, names, nil
}

// Trade runs one full round of Algorithm 1 for the buyer, with this
// market's write path held for the solve and commit. builder nil means the
// market's configured product; backend nil means the market's default
// solver. On success the new view is published and, with persistence on,
// the trade is made durable per the market's mode: a WAL record appended
// under the lock and committed after it is released — so the fsync of this
// trade overlaps the next round's solve, and concurrent commits share one
// group-commit barrier — or, in snapshot mode, the legacy full-snapshot
// rewrite. A failed write logs and never fails the committed trade.
//
// Admission: before touching the write path the trade passes the market's
// gate — a bounded concurrency limit plus a bounded waiting room — so a
// saturating flood is rejected with ErrOverloaded (wrapped in an
// *OverloadError carrying a Retry-After estimate) instead of queueing
// unboundedly on writeMu. The slot is released after the write lock is
// dropped but before the commit wait, preserving the fsync/next-solve
// overlap group commit batches on.
func (m *Market) Trade(ctx context.Context, b core.Buyer, builder product.Builder, backend solve.Backend) (*market.Transaction, error) {
	if err := m.begin(); err != nil {
		return nil, err
	}
	defer m.end()
	release, err := m.acquireTrade(ctx)
	if err != nil {
		return nil, err
	}
	tx, l, seq, err := m.tradeLocked(ctx, b, builder, backend)
	release()
	if err != nil {
		var ee *budget.ExhaustedError
		if m.exhaustedC != nil && errors.As(err, &ee) {
			m.exhaustedC.Add(1)
		}
		return nil, err
	}
	m.commitWal(l, seq)
	return tx, nil
}

// tradeLocked is Trade's write-lock section: the round itself, view
// publication, metrics and the WAL append (or snapshot fallback).
func (m *Market) tradeLocked(ctx context.Context, b core.Buyer, builder product.Builder, backend solve.Backend) (*market.Transaction, *wal.Log, uint64, error) {
	m.writeMu.Lock()
	defer m.writeMu.Unlock()
	if m.mkt == nil {
		if len(m.sellers) == 0 {
			return nil, nil, 0, fmt.Errorf("market %q: %w", m.id, ErrNoSellers)
		}
		mkt, err := market.New(m.sellers, m.cfg)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("market %q: building market: %w", m.id, err)
		}
		mkt.SetEpoch(m.rosterEpoch)
		m.mkt = mkt
	}
	if m.p.tradeTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.p.tradeTimeout)
		defer cancel()
	}
	start := time.Now()
	tx, err := m.mkt.RunRoundBackend(ctx, b, builder, backend)
	if err != nil {
		return nil, nil, 0, err
	}
	if err := m.publishView(); err != nil {
		return nil, nil, 0, fmt.Errorf("market %q: republishing view: %w", m.id, err)
	}
	if tx.Timings.WeightUpdate > 0 {
		m.p.valuation.Observe(tx.Timings.WeightUpdate)
	}
	if ep := m.p.solveObs[tx.Solver]; ep != nil {
		ep.Observe(tx.Timings.Strategy)
	}
	if tx.SolveEffort != nil {
		m.p.observeStage3(*tx.SolveEffort)
	}
	m.tradeObs.Observe(time.Since(start))
	m.emitWeights(tx)
	l, seq := m.persistTradeLocked(tx, translog.Observation{N: b.N, V: b.V, Cost: tx.ManufacturingCost})
	m.p.logf("pool: market %q trade %d executed (p^M=%g, p^D=%g, EV=%.4f)",
		m.id, tx.Round, tx.Profile.PM, tx.Profile.PD, tx.Metrics.Performance)
	return tx, l, seq, nil
}

// buildView renders the market's mutable state into a fresh immutable
// view. Must be called with writeMu held.
func (m *Market) buildView() (*View, error) {
	v := &View{Trading: m.mkt != nil, Epoch: m.rosterEpoch}

	weights := core.UniformWeights(max(1, len(m.sellers)))
	if m.mkt != nil {
		weights = m.mkt.Weights()
	}
	v.Weights = weights

	if m.mkt != nil {
		v.Trades = m.mkt.Ledger()
	}
	v.Sellers = m.sellerStates(weights, v.Trades)

	if len(m.sellers) > 0 {
		lambdas := make([]float64, len(m.sellers))
		for i, sel := range m.sellers {
			lambdas[i] = sel.Lambda
		}
		g := &core.Game{
			Buyer:   core.PaperBuyer(), // placeholder; quotes overwrite it
			Broker:  core.Broker{Cost: m.cfg.Cost, Weights: append([]float64(nil), weights...)},
			Sellers: core.Sellers{Lambda: lambdas},
		}
		names := solve.Names()
		v.Protos = make(map[string]solve.Prepared, len(names))
		for _, name := range names {
			b, err := solve.Lookup(name)
			if err != nil {
				return nil, err
			}
			p, err := b.Precompute(g)
			if err != nil {
				return nil, err
			}
			v.Protos[name] = p
		}
	}
	return v, nil
}

// sellerStates renders the roster into view entries, folding in each
// seller's budget state and the similarity discount of the last committed
// round (writeMu held). trades is the ledger the view will carry — the
// last transaction's Discounts apply only while it matches the current
// roster (same epoch, same length); after churn the factors are stale and
// the sellers reset to the no-discount 1 until the next round prices them.
func (m *Market) sellerStates(weights []float64, trades []*market.Transaction) []SellerState {
	var discounts []float64
	if m.cfg.Discount != nil && len(trades) > 0 {
		if last := trades[len(trades)-1]; last.Epoch == m.rosterEpoch && len(last.Discounts) == len(m.sellers) {
			discounts = last.Discounts
		}
	}
	out := make([]SellerState, len(m.sellers))
	for i, sel := range m.sellers {
		st := SellerState{ID: sel.ID, Lambda: sel.Lambda, Rows: sel.Data.Len(), Weight: weights[i]}
		if m.ledger != nil {
			st.Budget = m.ledger.Budget(sel.ID)
			st.Spent = m.ledger.Spent(sel.ID)
		}
		if m.cfg.Discount != nil {
			st.Discount = 1
			if discounts != nil {
				st.Discount = discounts[i]
			}
		}
		out[i] = st
	}
	return out
}

// publishView renders and atomically publishes a new view. Must be called
// with writeMu held.
func (m *Market) publishView() error {
	v, err := m.buildView()
	if err != nil {
		return err
	}
	m.view.Store(v)
	m.rosterGauge.Set(int64(len(v.Sellers)))
	m.updateBudgetGauges(v)
	return nil
}

// updateBudgetGauges refreshes the per-seller ε-spent gauges (milli-ε, the
// registry is integer-valued) after a view publish. A no-op without a
// ledger.
func (m *Market) updateBudgetGauges(v *View) {
	if m.ledger == nil {
		return
	}
	for _, s := range v.Sellers {
		m.p.metrics.Gauge("market/" + m.id + "/seller/" + s.ID + "/eps_spent_milli").Set(int64(s.Spent * 1000))
	}
}

// Seller returns one roster entry by ID from the lock-free view, plus the
// roster epoch it was read at. Unknown IDs return ErrSellerNotFound.
func (m *Market) Seller(id string) (SellerState, uint64, error) {
	v := m.view.Load()
	for _, s := range v.Sellers {
		if s.ID == id {
			return s, v.Epoch, nil
		}
	}
	return SellerState{}, v.Epoch, fmt.Errorf("seller %q: %w", id, ErrSellerNotFound)
}

// TopUpBudget raises one seller's privacy budget by add (ε). The grant is
// persisted as a budget_charge WAL record — it must survive a reboot with
// the same exactness as the charges it offsets — and the refreshed view is
// published before returning. Markets without a ledger refuse with a
// field-level error; unknown sellers with ErrSellerNotFound.
func (m *Market) TopUpBudget(id string, add float64) (SellerState, error) {
	if err := m.begin(); err != nil {
		return SellerState{}, err
	}
	defer m.end()
	st, l, seq, err := m.topUpLocked(id, add)
	if err != nil {
		return SellerState{}, err
	}
	m.commitWal(l, seq)
	return st, nil
}

// topUpLocked is TopUpBudget's write-lock section.
func (m *Market) topUpLocked(id string, add float64) (SellerState, *wal.Log, uint64, error) {
	m.writeMu.Lock()
	defer m.writeMu.Unlock()
	if m.ledger == nil {
		return SellerState{}, nil, 0, &FieldError{Field: "add", Msg: "market has no privacy budget configured"}
	}
	found := false
	for _, sel := range m.sellers {
		if sel.ID == id {
			found = true
			break
		}
	}
	if !found {
		return SellerState{}, nil, 0, fmt.Errorf("seller %q: %w", id, ErrSellerNotFound)
	}
	if _, err := m.ledger.TopUp(id, add); err != nil {
		return SellerState{}, nil, 0, &FieldError{Field: "add", Msg: err.Error()}
	}
	if err := m.publishView(); err != nil {
		m.p.logf("pool: market %q: view rebuild after top-up for %q: %v", m.id, id, err)
	}
	l, seq := m.persistBudgetLocked(budgetRecord{
		Epoch:       m.rosterEpoch,
		TopUpSeller: id,
		TopUpAmount: add,
	})
	m.p.logf("pool: market %q: seller %q budget topped up by ε=%g (total %g)", m.id, id, add, m.ledger.Budget(id))
	st, _, err := m.Seller(id)
	return st, l, seq, err
}
