package pool

import (
	"context"
	"errors"
	"testing"
	"time"
)

// admissionSpec builds a Spec with explicit per-market admission overrides.
func admissionSpec(id string, conc, queue int) Spec {
	return Spec{ID: id, TradeConcurrency: &conc, TradeQueue: &queue}
}

// TestAdmissionRejectsWhenQueueFull: with one slot and no waiting room, a
// second concurrent trade is refused immediately with a typed OverloadError
// that unwraps to ErrOverloaded and carries a positive Retry-After hint.
func TestAdmissionRejectsWhenQueueFull(t *testing.T) {
	p := New(quietOptions())
	m, err := p.Create(admissionSpec("tight", 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if info := m.Info(); info.TradeConcurrency != 1 || info.TradeQueue != 0 {
		t.Fatalf("admission config = %d/%d, want 1/0", info.TradeConcurrency, info.TradeQueue)
	}
	register(t, m, 3)

	bb := newBlockingBuilder()
	wedged := make(chan error, 1)
	go func() {
		_, err := m.Trade(context.Background(), demoBuyer(90, 0.8), bb, nil)
		wedged <- err
	}()
	select {
	case <-bb.started:
	case <-time.After(10 * time.Second):
		t.Fatal("first trade never reached manufacturing")
	}

	_, err = m.Trade(context.Background(), demoBuyer(90, 0.8), nil, nil)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second trade = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("second trade error type = %T, want *OverloadError", err)
	}
	if oe.Market != "tight" || oe.Queue != 0 || oe.RetryAfter <= 0 {
		t.Errorf("overload error = %+v, want market tight, queue 0, positive hint", oe)
	}

	snap := p.Metrics().Snapshot()
	if got := snap.Counters["market/tight/trades_rejected"]; got != 1 {
		t.Errorf("trades_rejected = %d, want 1", got)
	}

	// Release the wedge: the first trade lands, and with the slot free a
	// retried trade is admitted.
	close(bb.release)
	if err := <-wedged; err != nil {
		t.Fatalf("wedged trade failed after release: %v", err)
	}
	if _, err := m.Trade(context.Background(), demoBuyer(90, 0.8), nil, nil); err != nil {
		t.Fatalf("retried trade after release: %v", err)
	}
	if got := len(m.View().Trades); got != 2 {
		t.Errorf("ledger = %d trades, want 2", got)
	}
	snap = p.Metrics().Snapshot()
	if got := snap.Counters["market/tight/trades_admitted"]; got != 2 {
		t.Errorf("trades_admitted = %d, want 2", got)
	}
}

// TestAdmissionQueueWaitsForSlot: a trade that finds the slot busy but the
// waiting room open parks until the slot frees, then completes — it is
// never rejected.
func TestAdmissionQueueWaitsForSlot(t *testing.T) {
	p := New(quietOptions())
	m, err := p.Create(admissionSpec("queued", 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	register(t, m, 3)

	bb := newBlockingBuilder()
	first := make(chan error, 1)
	go func() {
		_, err := m.Trade(context.Background(), demoBuyer(90, 0.8), bb, nil)
		first <- err
	}()
	select {
	case <-bb.started:
	case <-time.After(10 * time.Second):
		t.Fatal("first trade never reached manufacturing")
	}

	second := make(chan error, 1)
	go func() {
		_, err := m.Trade(context.Background(), demoBuyer(90, 0.8), nil, nil)
		second <- err
	}()
	// The waiter must be parked, not failed: give it a moment to show up in
	// the queue-depth gauge, then confirm it has not returned.
	deadline := time.Now().Add(5 * time.Second)
	for p.Metrics().Snapshot().Gauges["market/queued/queue_depth"] != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued trade never registered in the depth gauge")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-second:
		t.Fatalf("queued trade returned early: %v", err)
	default:
	}

	close(bb.release)
	if err := <-first; err != nil {
		t.Fatalf("first trade: %v", err)
	}
	if err := <-second; err != nil {
		t.Fatalf("queued trade: %v", err)
	}
	if got := len(m.View().Trades); got != 2 {
		t.Errorf("ledger = %d trades, want 2", got)
	}
	if got := p.Metrics().Snapshot().Gauges["market/queued/queue_depth"]; got != 0 {
		t.Errorf("queue depth after drain = %d, want 0", got)
	}
}

// TestAdmissionQueuedTradeHonorsContext: a parked trade abandons the queue
// when its context is canceled, and the queue slot it held is returned.
func TestAdmissionQueuedTradeHonorsContext(t *testing.T) {
	p := New(quietOptions())
	m, err := p.Create(admissionSpec("cancel", 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	register(t, m, 3)

	bb := newBlockingBuilder()
	first := make(chan error, 1)
	go func() {
		_, err := m.Trade(context.Background(), demoBuyer(90, 0.8), bb, nil)
		first <- err
	}()
	select {
	case <-bb.started:
	case <-time.After(10 * time.Second):
		t.Fatal("first trade never reached manufacturing")
	}

	ctx, cancel := context.WithCancel(context.Background())
	second := make(chan error, 1)
	go func() {
		_, err := m.Trade(ctx, demoBuyer(90, 0.8), nil, nil)
		second <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for p.Metrics().Snapshot().Gauges["market/cancel/queue_depth"] != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued trade never registered in the depth gauge")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-second:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled waiter = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled waiter never returned")
	}
	// The abandoned queue position is free again: a new trade queues (and
	// completes once the wedge clears) rather than being rejected.
	third := make(chan error, 1)
	go func() {
		_, err := m.Trade(context.Background(), demoBuyer(90, 0.8), nil, nil)
		third <- err
	}()
	close(bb.release)
	if err := <-first; err != nil {
		t.Fatalf("first trade: %v", err)
	}
	if err := <-third; err != nil {
		t.Fatalf("requeued trade: %v", err)
	}
}

// TestAdmissionSpecValidation: per-market overrides are validated at
// creation with field-level errors.
func TestAdmissionSpecValidation(t *testing.T) {
	p := New(quietOptions())
	zero, negative := 0, -1
	var fe *FieldError
	if _, err := p.Create(Spec{ID: "a", TradeConcurrency: &zero}); !errors.As(err, &fe) || fe.Field != "trade_concurrency" {
		t.Errorf("zero concurrency = %v, want FieldError on trade_concurrency", err)
	}
	if _, err := p.Create(Spec{ID: "b", TradeQueue: &negative}); !errors.As(err, &fe) || fe.Field != "trade_queue" {
		t.Errorf("negative queue = %v, want FieldError on trade_queue", err)
	}
	// An explicit zero queue is valid: no waiting room at all.
	m, err := p.Create(Spec{ID: "c", TradeQueue: &zero})
	if err != nil {
		t.Fatalf("zero queue rejected: %v", err)
	}
	if info := m.Info(); info.TradeQueue != 0 || info.TradeConcurrency != DefaultTradeConcurrency {
		t.Errorf("explicit-zero queue info = %d/%d, want %d/0", info.TradeConcurrency, info.TradeQueue, DefaultTradeConcurrency)
	}
}

// TestAdmissionPoolDefaults: pool-level Options set every market's envelope
// unless the Spec overrides it.
func TestAdmissionPoolDefaults(t *testing.T) {
	opts := quietOptions()
	opts.TradeConcurrency = 2
	opts.TradeQueue = 7
	p := New(opts)
	m, err := p.Create(Spec{ID: "inherit"})
	if err != nil {
		t.Fatal(err)
	}
	if info := m.Info(); info.TradeConcurrency != 2 || info.TradeQueue != 7 {
		t.Errorf("inherited admission = %d/%d, want 2/7", info.TradeConcurrency, info.TradeQueue)
	}
	three := 3
	o, err := p.Create(Spec{ID: "override", TradeQueue: &three})
	if err != nil {
		t.Fatal(err)
	}
	if info := o.Info(); info.TradeConcurrency != 2 || info.TradeQueue != 3 {
		t.Errorf("overridden admission = %d/%d, want 2/3", info.TradeConcurrency, info.TradeQueue)
	}

	// Negative pool-level queue means "no waiting room anywhere".
	opts = quietOptions()
	opts.TradeQueue = -1
	none, err := New(opts).Create(Spec{ID: "bare"})
	if err != nil {
		t.Fatal(err)
	}
	if info := none.Info(); info.TradeQueue != 0 {
		t.Errorf("negative pool queue → market queue = %d, want 0", info.TradeQueue)
	}
}
