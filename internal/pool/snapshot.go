package pool

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"share/internal/budget"
	"share/internal/dataset"
	"share/internal/market"
	"share/internal/solve"
	"share/internal/stat"
)

// MarketSnapshot is the crash-safe persisted state of one market: the full
// seller roster (the market.Snapshot alone deliberately omits seller data —
// the pool owns the registrations, so it persists them) plus the market's
// learned weights, ledger and cost log. A market restored from a snapshot
// quotes and trades exactly as the one that saved it.
//
// The format is a strict superset of the single-market server's historical
// snapshot file (version 1): the ID, Solver and Seed fields are omitted by
// old writers and optional for readers, so every pre-pool snapshot still
// restores.
type MarketSnapshot struct {
	// Version guards the wire format.
	Version int `json:"version"`
	// ID names the market the snapshot belongs to ("" in legacy
	// single-market files).
	ID string `json:"id,omitempty"`
	// Solver names the market's default equilibrium backend ("" keeps the
	// restoring market's default).
	Solver string `json:"solver,omitempty"`
	// Seed pins the market seed (nil keeps the restoring market's seed).
	Seed *int64 `json:"seed,omitempty"`
	// Durability names the market's persistence mode ("" — including every
	// pre-WAL file — keeps the restoring pool's default).
	Durability string `json:"durability,omitempty"`
	// WalSeq is the highest WAL sequence number this snapshot reflects
	// (0 in pre-WAL files and for markets without WAL activity). Replay
	// skips records at or below it.
	WalSeq uint64 `json:"wal_seq,omitempty"`
	// RosterEpoch counts the roster mutations (registrations, joins,
	// leaves) behind the stored roster, so WAL replay on top of the restored
	// snapshot validates each churn record against the history it actually
	// extends. 0 in pre-churn files, whose epoch replay re-derives from the
	// register records.
	RosterEpoch uint64 `json:"roster_epoch,omitempty"`
	// EpsilonBudget and Composition carry the market's privacy-budget
	// configuration (0/"" — including every pre-budget file — disables,
	// or keeps the restoring market's configuration).
	EpsilonBudget float64 `json:"epsilon_budget,omitempty"`
	Composition   string  `json:"composition,omitempty"`
	// BudgetAccounts is each seller's ledger account at save time, keyed
	// by seller ID; sellers who never charged are omitted. Restored
	// verbatim, so the composed ε-spent after a reboot is bit-identical
	// to the spend at save time.
	BudgetAccounts map[string]budget.Account `json:"budget_accounts,omitempty"`
	// Sellers is the registered roster in order.
	Sellers []StoredSeller `json:"sellers"`
	// Market is the trading state; nil when no trade has executed yet.
	Market *market.Snapshot `json:"market,omitempty"`
}

// StoredSeller serializes one registration.
type StoredSeller struct {
	ID      string      `json:"id"`
	Lambda  float64     `json:"lambda"`
	Rows    [][]float64 `json:"rows"`
	Targets []float64   `json:"targets"`
}

// snapshotVersion is the current wire-format version (shared with the
// legacy single-market server snapshot).
const snapshotVersion = 1

// snapshotExt is the per-market snapshot file suffix under the pool's
// snapshot directory.
const snapshotExt = ".json"

// Snapshot captures the market's full persistent state. It takes the
// market's write lock, so the snapshot is consistent with respect to
// concurrent trades.
func (m *Market) Snapshot() *MarketSnapshot {
	m.writeMu.Lock()
	defer m.writeMu.Unlock()
	return m.snapshotLocked()
}

// snapshotLocked is Snapshot with writeMu already held.
func (m *Market) snapshotLocked() *MarketSnapshot {
	seed := m.seed
	snap := &MarketSnapshot{
		Version:    snapshotVersion,
		ID:         m.id,
		Solver:     m.solver.Name(),
		Seed:       &seed,
		Durability: string(m.durability),
	}
	if m.log != nil {
		snap.WalSeq = m.log.LastSeq()
	}
	snap.RosterEpoch = m.rosterEpoch
	if m.ledger != nil {
		snap.EpsilonBudget = m.epsBudget
		snap.Composition = m.compositionName()
		snap.BudgetAccounts = m.ledger.Accounts()
	}
	for _, sel := range m.sellers {
		snap.Sellers = append(snap.Sellers, StoredSeller{
			ID:      sel.ID,
			Lambda:  sel.Lambda,
			Rows:    sel.Data.X,
			Targets: sel.Data.Y,
		})
	}
	if m.mkt != nil {
		snap.Market = m.mkt.Snapshot()
	}
	return snap
}

// RestoreSnapshot loads a snapshot into a fresh market (no registrations,
// no trades). The roster is re-registered from the stored data and, when
// the snapshot was trading, the inner market is rebuilt with its weights,
// ledger and cost log. A stored seed different from the market's rebuilds
// the market's test set and sampling stream so post-restore behavior
// matches the saving process, not the restoring one.
func (m *Market) RestoreSnapshot(snap *MarketSnapshot) error {
	if snap == nil {
		return errors.New("pool: nil snapshot")
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("pool: unsupported snapshot version %d", snap.Version)
	}
	if snap.ID != "" && snap.ID != m.id {
		return fmt.Errorf("pool: snapshot belongs to market %q, not %q", snap.ID, m.id)
	}
	m.writeMu.Lock()
	defer m.writeMu.Unlock()
	if len(m.sellers) > 0 || m.mkt != nil {
		return errors.New("pool: snapshot restore requires a fresh market")
	}
	if snap.Seed != nil && *snap.Seed != m.seed {
		m.seed = *snap.Seed
		m.cfg.Seed = *snap.Seed
		m.cfg.TestSet = dataset.SyntheticCCPP(m.p.testRows, stat.NewRand(*snap.Seed+7))
	}
	if snap.Solver != "" && snap.Solver != m.solver.Name() {
		// Legacy files never carry Solver, so this only fires for
		// pool-written snapshots, whose backend was validated at save time.
		b, err := solve.Lookup(snap.Solver)
		if err != nil {
			return fmt.Errorf("pool: restoring solver: %w", err)
		}
		m.solver = b
		m.cfg.Solver = b
	}
	if snap.Durability != "" {
		// Same rule as Solver: legacy files never carry Durability, so a
		// bare file keeps the restoring pool's default.
		d, err := ParseDurability(snap.Durability)
		if err != nil {
			return fmt.Errorf("pool: restoring durability: %w", err)
		}
		m.durability = d
	}
	if snap.EpsilonBudget != 0 {
		// Budget config follows the Solver/Durability rule (absent keeps
		// the restoring market's configuration); the ledger itself is
		// rebuilt before the inner market so trades wire to it, and the
		// saved accounts restore the composed spend exactly.
		comp, err := budget.ParseComposition(snap.Composition)
		if err != nil {
			return fmt.Errorf("pool: restoring composition: %w", err)
		}
		led, err := budget.NewLedger(budget.Config{Epsilon: snap.EpsilonBudget, Composition: comp})
		if err != nil {
			return fmt.Errorf("pool: restoring privacy budget: %w", err)
		}
		m.ledger = led
		m.epsBudget = snap.EpsilonBudget
		m.composition = comp
		m.cfg.Budget = led
		if m.exhaustedC == nil {
			m.exhaustedC = m.p.metrics.Counter("market/" + m.id + "/budget_exhausted")
		}
	}
	if m.ledger != nil {
		m.ledger.Restore(snap.BudgetAccounts)
	}
	sellers := make([]*market.Seller, len(snap.Sellers))
	for i, st := range snap.Sellers {
		d := &dataset.Dataset{X: st.Rows, Y: st.Targets}
		if err := d.Validate(); err != nil {
			return fmt.Errorf("pool: snapshot seller %q: %w", st.ID, err)
		}
		// Same schema rule RegisterSeller enforces: a mixed-width roster
		// would panic the LDP mechanism at the first trade.
		if want := sellers[0]; i > 0 && d.NumFeatures() != want.Data.NumFeatures() {
			return fmt.Errorf("pool: snapshot seller %q: %d features per row, roster has %d",
				st.ID, d.NumFeatures(), want.Data.NumFeatures())
		}
		sellers[i] = &market.Seller{ID: st.ID, Lambda: st.Lambda, Data: d}
	}
	var mkt *market.Market
	if snap.Market != nil {
		var err error
		mkt, err = market.New(sellers, m.cfg)
		if err != nil {
			return fmt.Errorf("pool: rebuilding market from snapshot: %w", err)
		}
		if err := mkt.Restore(snap.Market); err != nil {
			return err
		}
	}
	m.sellers = sellers
	m.mkt = mkt
	m.rosterEpoch = snap.RosterEpoch
	if mkt != nil && snap.Market != nil && snap.Market.Epoch != snap.RosterEpoch {
		// Pool and market snapshots are written together, so their epochs
		// agree for every pool-written file; legacy files carry neither
		// (both read back 0). A mismatch means the file pair was spliced.
		m.sellers, m.mkt, m.rosterEpoch = nil, nil, 0
		return fmt.Errorf("pool: snapshot state rejected: %w", &market.RosterError{Msg: fmt.Sprintf(
			"market snapshot at epoch %d, pool snapshot at epoch %d", snap.Market.Epoch, snap.RosterEpoch)})
	}
	if err := m.publishView(); err != nil {
		m.sellers, m.mkt, m.rosterEpoch = nil, nil, 0
		return fmt.Errorf("pool: snapshot state rejected: %w", err)
	}
	return nil
}

// Save persists the market's snapshot to path: the JSON is written to a
// temp file in the same directory, synced, and renamed over the target, so
// a crash mid-save never corrupts an existing snapshot.
func (m *Market) Save(path string) error {
	return writeSnapshotFile(path, m.Snapshot())
}

// snapshotPath is the market's snapshot file path under the pool's
// snapshot directory.
func (m *Market) snapshotPath() string {
	return filepath.Join(m.p.snapshotDir, m.id+snapshotExt)
}

// saveLocked persists the market under the pool's snapshot directory with
// writeMu already held (the snapshot-durability after-trade hook and the
// WAL fallback). Failures log — a committed trade must not be reported
// failed because the disk was.
func (m *Market) saveLocked() {
	if m.p.snapshotDir == "" {
		return
	}
	if err := writeSnapshotFile(m.snapshotPath(), m.snapshotLocked()); err != nil {
		m.p.logf("pool: snapshot after trade for market %q: %v", m.id, err)
	}
}

// writeSnapshotFile atomically writes one snapshot: temp file, sync,
// rename.
func writeSnapshotFile(path string, snap *MarketSnapshot) error {
	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("pool: encoding snapshot: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".share-snapshot-*")
	if err != nil {
		return fmt.Errorf("pool: creating snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	// Any failure from here on removes the temp file; the target is only
	// ever replaced by a complete, synced rename.
	if _, err := tmp.Write(raw); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("pool: writing snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("pool: publishing snapshot: %w", err)
	}
	return nil
}

// ReadSnapshotFile loads one snapshot file written by Save or SaveAll.
func ReadSnapshotFile(path string) (*MarketSnapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("pool: reading snapshot: %w", err)
	}
	var snap MarketSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("pool: decoding snapshot %s: %w", path, err)
	}
	return &snap, nil
}

// SaveAll persists every hosted market under the snapshot directory (the
// SIGTERM hook). Each market's snapshot and WAL truncation happen under
// one write-lock hold, so a trade committed mid-SaveAll is captured by
// either its snapshot or its (untruncated) log, never lost. Markets are
// saved in ID order; the first error aborts.
func (p *Pool) SaveAll() error {
	if p.snapshotDir == "" {
		return errors.New("pool: no snapshot directory configured")
	}
	if err := os.MkdirAll(p.snapshotDir, 0o755); err != nil {
		return fmt.Errorf("pool: creating snapshot directory: %w", err)
	}
	p.mu.RLock()
	ids := make([]string, 0, len(p.markets))
	byID := make(map[string]*Market, len(p.markets))
	for id, m := range p.markets {
		ids = append(ids, id)
		byID[id] = m
	}
	p.mu.RUnlock()
	sort.Strings(ids)
	for _, id := range ids {
		if err := byID[id].checkpoint(filepath.Join(p.snapshotDir, id+snapshotExt)); err != nil {
			return fmt.Errorf("pool: saving market %q: %w", id, err)
		}
	}
	return nil
}

// RestoreAll rebuilds markets from every *.json snapshot and *.wal segment
// under the snapshot directory (the boot hook). A market's newest snapshot
// restores first, then the WAL tail past the snapshot's watermark replays
// on top — so trades committed after the last compaction or checkpoint
// survive a crash. A market with a WAL segment but no snapshot (crashed
// before its first compaction) rebuilds from the log alone. A file that
// fails to decode or replay is skipped with a logged warning; the
// remaining markets still restore. A snapshot whose market already exists
// in the pool restores into it when that market is still fresh (the server
// pre-creates its default market) and is skipped otherwise. Returns the
// restored IDs in directory order.
//
// Call RestoreAll before serving traffic: a market that appends to its WAL
// segment before RestoreAll reaches it treats the segment's contents as
// orphaned and truncates them.
func (p *Pool) RestoreAll() ([]string, error) {
	if p.snapshotDir == "" {
		return nil, errors.New("pool: no snapshot directory configured")
	}
	entries, err := os.ReadDir(p.snapshotDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil // first boot: nothing to restore
		}
		return nil, fmt.Errorf("pool: reading snapshot directory: %w", err)
	}
	type files struct {
		snap string
		wal  string
	}
	var ids []string
	byID := make(map[string]*files)
	note := func(id, path string, isWal bool) {
		f := byID[id]
		if f == nil {
			f = &files{}
			byID[id] = f
			ids = append(ids, id)
		}
		if isWal {
			f.wal = path
		} else {
			f.snap = path
		}
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.HasPrefix(name, ".") {
			continue
		}
		path := filepath.Join(p.snapshotDir, name)
		switch {
		case strings.HasSuffix(name, snapshotExt):
			note(strings.TrimSuffix(name, snapshotExt), path, false)
		case strings.HasSuffix(name, walExt):
			note(strings.TrimSuffix(name, walExt), path, true)
		}
	}
	var restored []string
	for _, id := range ids {
		f := byID[id]
		if err := p.restoreOne(id, f.snap, f.wal); err != nil {
			path := f.snap
			if path == "" {
				path = f.wal
			}
			p.logf("pool: skipping snapshot %s: %v", path, err)
			continue
		}
		restored = append(restored, id)
	}
	return restored, nil
}

// restoreOne loads one market from its snapshot file and/or WAL segment,
// creating the market if it does not exist yet. A half-created market is
// torn down on failure.
func (p *Pool) restoreOne(id, snapPath, walPath string) error {
	var snap *MarketSnapshot
	if snapPath != "" {
		var err error
		snap, err = ReadSnapshotFile(snapPath)
		if err != nil {
			return err
		}
	}
	m, getErr := p.Get(id)
	created := false
	if getErr != nil {
		spec := Spec{ID: id}
		if snap != nil {
			spec.Solver = snap.Solver
			spec.Seed = snap.Seed
			spec.Durability = snap.Durability
			if snap.EpsilonBudget != 0 {
				eb := snap.EpsilonBudget
				spec.EpsilonBudget = &eb
				spec.Composition = snap.Composition
			}
		}
		var err error
		m, err = p.Create(spec)
		if err != nil {
			return err
		}
		created = true
	}
	teardown := func(err error) error {
		if created {
			p.mu.Lock()
			delete(p.markets, id)
			p.mu.Unlock()
		}
		return err
	}
	var walFloor uint64
	if snap != nil {
		if err := m.RestoreSnapshot(snap); err != nil {
			return teardown(err)
		}
		walFloor = snap.WalSeq
	}
	// Attach the WAL — replaying its tail when a segment exists, creating
	// an empty one otherwise — so the restored market appends where the
	// crashed process stopped. With no snapshot, the whole market rebuilds
	// from the log, which requires a fresh target.
	if walPath != "" || m.durability != DurSnapshot {
		if err := m.attachLogReplay(walFloor, snap == nil); err != nil {
			return teardown(err)
		}
	}
	return nil
}
