package pool

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"share/internal/market"
	"share/internal/wal"
)

// fastWalOptions builds pool options tuned for WAL tests: persistence into
// dir, a cheap weight update so trades take milliseconds, and compaction
// pushed out of the way unless a test lowers it.
func fastWalOptions(dir string) Options {
	opts := quietOptions()
	opts.SnapshotDir = dir
	opts.Update = &market.WeightUpdate{Retain: 0.2, Permutations: 2, TruncateTol: 0.005}
	opts.CompactRecords = 1 << 20
	opts.CompactBytes = 1 << 40
	return opts
}

// canonicalState renders everything a restored market must reproduce —
// roster epoch, roster, weights, ledger, trading flag — as canonical JSON. Both the
// reference and the replayed state pass through one marshal/unmarshal
// round trip, so float formatting is identical on both sides.
func canonicalState(t *testing.T, m *Market) string {
	t.Helper()
	v := m.View()
	raw, err := json.Marshal(struct {
		Epoch   uint64                `json:"epoch"`
		Sellers []SellerState         `json:"sellers"`
		Weights []float64             `json:"weights"`
		Trades  []*market.Transaction `json:"trades"`
		Trading bool                  `json:"trading"`
	}{v.Epoch, v.Sellers, v.Weights, v.Trades, v.Trading})
	if err != nil {
		t.Fatalf("marshaling market state: %v", err)
	}
	var any1 any
	if err := json.Unmarshal(raw, &any1); err != nil {
		t.Fatal(err)
	}
	norm, err := json.Marshal(any1)
	if err != nil {
		t.Fatal(err)
	}
	return string(norm)
}

// TestWALTortureRecovery is the crash-recovery torture test: build a
// market whose whole history lives in the WAL, record the canonical state
// after every logged record, then truncate the segment at a dense sweep of
// byte offsets — record boundaries, off-by-one and mid-record cuts — and
// assert that replay restores exactly the state of the longest committed
// prefix that survived the cut.
func TestWALTortureRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := fastWalOptions(dir)
	p := New(opts)
	m, err := p.Create(Spec{ID: "tort"})
	if err != nil {
		t.Fatal(err)
	}
	// states[k] is the canonical state after k WAL records.
	states := []string{canonicalState(t, m)}
	for i := 0; i < 3; i++ {
		if _, err := m.RegisterSeller(Registration{
			ID:            fmt.Sprintf("s%02d", i+1),
			Lambda:        0.3 + 0.1*float64(i),
			SyntheticRows: 40,
		}); err != nil {
			t.Fatal(err)
		}
		states = append(states, canonicalState(t, m))
	}
	const trades = 5
	for i := 0; i < trades; i++ {
		if _, err := m.Trade(context.Background(), demoBuyer(80+10*float64(i), 0.8), nil, nil); err != nil {
			t.Fatal(err)
		}
		states = append(states, canonicalState(t, m))
	}
	p.Close()

	walPath := filepath.Join(dir, "tort"+walExt)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	var ends []int64
	if _, _, err := wal.Scan(walPath, func(_ *wal.Record, end int64) error {
		ends = append(ends, end)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(ends) != len(states)-1 {
		t.Fatalf("wal holds %d records, want %d", len(ends), len(states)-1)
	}
	if ends[len(ends)-1] != int64(len(raw)) {
		t.Fatalf("last record ends at %d, file is %d bytes", ends[len(ends)-1], len(raw))
	}

	// Cut points: every record boundary, boundary±1 and ±3, each record's
	// midpoint, plus a coarse stride over the whole file.
	cuts := map[int64]bool{0: true, int64(len(raw)): true}
	prev := int64(0)
	for _, e := range ends {
		for _, c := range []int64{e, e - 1, e + 1, e - 3, e + 3, (prev + e) / 2} {
			if c >= 0 && c <= int64(len(raw)) {
				cuts[c] = true
			}
		}
		prev = e
	}
	stride := int64(len(raw) / 64)
	if stride < 1 {
		stride = 1
	}
	for c := int64(0); c <= int64(len(raw)); c += stride {
		cuts[c] = true
	}

	for cut := range cuts {
		// Committed prefix: every record fully inside the cut.
		want := 0
		for _, e := range ends {
			if e <= cut {
				want++
			}
		}
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, "tort"+walExt), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		p2 := New(fastWalOptions(sub))
		restored, err := p2.RestoreAll()
		if err != nil {
			t.Fatalf("cut %d: RestoreAll: %v", cut, err)
		}
		if len(restored) != 1 || restored[0] != "tort" {
			t.Fatalf("cut %d: restored %v, want [tort]", cut, restored)
		}
		m2, err := p2.Get("tort")
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got := canonicalState(t, m2); got != states[want] {
			t.Fatalf("cut %d: replayed state diverges from the %d-record reference\n got: %.200s\nwant: %.200s",
				cut, want, got, states[want])
		}
		p2.Close()
	}
}

// TestWALRecoveredMarketKeepsTrading: after a mid-record truncation, the
// restored market must accept new registrations-free trades and persist
// them — recovery is a working market, not a read-only archive.
func TestWALRecoveredMarketKeepsTrading(t *testing.T) {
	dir := t.TempDir()
	p := New(fastWalOptions(dir))
	m, err := p.Create(Spec{ID: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	register(t, m, 2)
	if _, err := m.Trade(context.Background(), demoBuyer(90, 0.8), nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Trade(context.Background(), demoBuyer(100, 0.8), nil, nil); err != nil {
		t.Fatal(err)
	}
	p.Close()
	// Tear the final record.
	walPath := filepath.Join(dir, "alpha"+walExt)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	p2 := New(fastWalOptions(dir))
	if _, err := p2.RestoreAll(); err != nil {
		t.Fatal(err)
	}
	m2, err := p2.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m2.View().Trades); got != 1 {
		t.Fatalf("restored ledger has %d trades, want 1 (second record torn)", got)
	}
	if _, err := m2.Trade(context.Background(), demoBuyer(110, 0.8), nil, nil); err != nil {
		t.Fatalf("trade after recovery: %v", err)
	}
	p2.Close()
	// The post-recovery trade must itself survive the next reboot.
	p3 := New(fastWalOptions(dir))
	if _, err := p3.RestoreAll(); err != nil {
		t.Fatal(err)
	}
	m3, err := p3.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m3.View().Trades); got != 2 {
		t.Fatalf("ledger has %d trades after second reboot, want 2", got)
	}
	p3.Close()
}

// TestDeleteRemovesWALSegment: Delete must remove the market's WAL segment
// with its snapshot, and a recreated market under the same name must start
// empty — an orphaned log replayed into it would resurrect the deleted
// market's trades.
func TestDeleteRemovesWALSegment(t *testing.T) {
	dir := t.TempDir()
	p := New(fastWalOptions(dir))
	m, err := p.Create(Spec{ID: "gone"})
	if err != nil {
		t.Fatal(err)
	}
	register(t, m, 2)
	if _, err := m.Trade(context.Background(), demoBuyer(90, 0.8), nil, nil); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "gone"+walExt)
	if fi, err := os.Stat(walPath); err != nil || fi.Size() == 0 {
		t.Fatalf("wal segment missing or empty after trade: %v", err)
	}
	if err := p.Delete(context.Background(), "gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(walPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("wal segment survives delete: %v", err)
	}
	// Same name, new life: must be empty, and a reboot must not resurrect
	// the deleted market's history.
	m2, err := p.Create(Spec{ID: "gone"})
	if err != nil {
		t.Fatal(err)
	}
	register(t, m2, 1)
	p.Close()
	p2 := New(fastWalOptions(dir))
	if _, err := p2.RestoreAll(); err != nil {
		t.Fatal(err)
	}
	m3, err := p2.Get("gone")
	if err != nil {
		t.Fatal(err)
	}
	v := m3.View()
	if len(v.Sellers) != 1 || len(v.Trades) != 0 {
		t.Fatalf("recreated market restored %d sellers / %d trades, want 1 / 0", len(v.Sellers), len(v.Trades))
	}
	p2.Close()
}

// TestOrphanedWALSegmentTruncatedNotReplayed: a stray segment left under a
// market's name (a cleanup that never ran) must be truncated at the
// market's first append, never replayed into it.
func TestOrphanedWALSegmentTruncatedNotReplayed(t *testing.T) {
	dir := t.TempDir()
	// Mint a real segment under the name "reborn" from a throwaway pool.
	p0 := New(fastWalOptions(dir))
	m0, err := p0.Create(Spec{ID: "reborn"})
	if err != nil {
		t.Fatal(err)
	}
	register(t, m0, 2)
	if _, err := m0.Trade(context.Background(), demoBuyer(90, 0.8), nil, nil); err != nil {
		t.Fatal(err)
	}
	p0.Close()

	// A fresh pool creates "reborn" anew without restoring — the stale
	// segment is now an orphan.
	var warnings []string
	var mu sync.Mutex
	opts := fastWalOptions(dir)
	opts.Logf = func(format string, args ...any) {
		mu.Lock()
		warnings = append(warnings, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	p := New(opts)
	m, err := p.Create(Spec{ID: "reborn"})
	if err != nil {
		t.Fatal(err)
	}
	register(t, m, 1)
	v := m.View()
	if len(v.Sellers) != 1 || v.Trading {
		t.Fatalf("orphaned wal leaked into the new market: %d sellers, trading=%v", len(v.Sellers), v.Trading)
	}
	mu.Lock()
	warned := false
	for _, w := range warnings {
		if strings.Contains(w, "orphaned wal") {
			warned = true
		}
	}
	mu.Unlock()
	if !warned {
		t.Fatalf("no orphaned-wal warning in %q", warnings)
	}
	p.Close()
	// Reboot: only the new market's single registration replays.
	p2 := New(fastWalOptions(dir))
	if _, err := p2.RestoreAll(); err != nil {
		t.Fatal(err)
	}
	m2, err := p2.Get("reborn")
	if err != nil {
		t.Fatal(err)
	}
	v2 := m2.View()
	if len(v2.Sellers) != 1 || len(v2.Trades) != 0 {
		t.Fatalf("reboot restored %d sellers / %d trades, want 1 / 0", len(v2.Sellers), len(v2.Trades))
	}
	p2.Close()
}

// TestLegacyDirRestoresWithoutWAL: a PR 5-era snapshot directory — .json
// files only, no wal_seq or durability fields, no segments — must boot
// cleanly under the WAL-era pool, and the restored market must trade and
// log into a fresh segment.
func TestLegacyDirRestoresWithoutWAL(t *testing.T) {
	dir := t.TempDir()
	// Produce a snapshot via the legacy per-trade path, then strip the
	// WAL-era fields to mimic a PR 5 file byte-for-byte.
	opts := fastWalOptions(dir)
	opts.Durability = string(DurSnapshot)
	p0 := New(opts)
	m0, err := p0.Create(Spec{ID: "old"})
	if err != nil {
		t.Fatal(err)
	}
	register(t, m0, 2)
	if _, err := m0.Trade(context.Background(), demoBuyer(90, 0.8), nil, nil); err != nil {
		t.Fatal(err)
	}
	p0.Close()
	path := filepath.Join(dir, "old.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	delete(doc, "durability")
	delete(doc, "wal_seq")
	stripped, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, stripped, 0o644); err != nil {
		t.Fatal(err)
	}

	p := New(fastWalOptions(dir))
	restored, err := p.RestoreAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 1 || restored[0] != "old" {
		t.Fatalf("restored %v, want [old]", restored)
	}
	m, err := p.Get("old")
	if err != nil {
		t.Fatal(err)
	}
	// A bare legacy file keeps the restoring pool's default mode.
	if m.Durability() != DurGroup {
		t.Fatalf("legacy market durability = %q, want %q", m.Durability(), DurGroup)
	}
	if got := len(m.View().Trades); got != 1 {
		t.Fatalf("legacy ledger has %d trades, want 1", got)
	}
	if _, err := m.Trade(context.Background(), demoBuyer(100, 0.8), nil, nil); err != nil {
		t.Fatalf("trade after legacy restore: %v", err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "old"+walExt)); err != nil || fi.Size() == 0 {
		t.Fatalf("post-restore trade not logged to wal: %v", err)
	}
	p.Close()
}

// TestDurabilityModes: each mode round-trips Create → Info → reboot, and
// an unknown mode is a field-level error.
func TestDurabilityModes(t *testing.T) {
	dir := t.TempDir()
	p := New(fastWalOptions(dir))
	for _, d := range []Durability{DurSnapshot, DurSync, DurGroup, DurAsync} {
		id := "m-" + string(d)
		m, err := p.Create(Spec{ID: id, Durability: string(d)})
		if err != nil {
			t.Fatalf("Create(%s): %v", d, err)
		}
		if m.Info().Durability != string(d) {
			t.Fatalf("Info().Durability = %q, want %q", m.Info().Durability, d)
		}
		register(t, m, 2)
		if _, err := m.Trade(context.Background(), demoBuyer(90, 0.8), nil, nil); err != nil {
			t.Fatalf("trade under %s: %v", d, err)
		}
	}
	var fe *FieldError
	if _, err := p.Create(Spec{ID: "bad", Durability: "fsync-maybe"}); !errors.As(err, &fe) || fe.Field != "durability" {
		t.Fatalf("unknown durability = %v, want FieldError on durability", err)
	}
	if err := p.SaveAll(); err != nil {
		t.Fatal(err)
	}
	p.Close()

	p2 := New(fastWalOptions(dir))
	if _, err := p2.RestoreAll(); err != nil {
		t.Fatal(err)
	}
	for _, d := range []Durability{DurSnapshot, DurSync, DurGroup, DurAsync} {
		m, err := p2.Get("m-" + string(d))
		if err != nil {
			t.Fatalf("Get(m-%s): %v", d, err)
		}
		if m.Durability() != d {
			t.Fatalf("restored durability = %q, want %q", m.Durability(), d)
		}
		if got := len(m.View().Trades); got != 1 {
			t.Fatalf("mode %s: restored ledger has %d trades, want 1", d, got)
		}
	}
	p2.Close()
}

// TestWALCompaction: crossing the record threshold folds the log into a
// snapshot and truncates the segment, and the snapshot's watermark stops a
// reboot from double-replaying compacted records.
func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := fastWalOptions(dir)
	opts.CompactRecords = 4
	p := New(opts)
	m, err := p.Create(Spec{ID: "cpt"})
	if err != nil {
		t.Fatal(err)
	}
	register(t, m, 2) // 2 records
	for i := 0; i < 3; i++ { // crosses the 4-record threshold
		if _, err := m.Trade(context.Background(), demoBuyer(90+float64(i), 0.8), nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	want := canonicalState(t, m)
	snap, err := ReadSnapshotFile(filepath.Join(dir, "cpt.json"))
	if err != nil {
		t.Fatalf("no compaction snapshot: %v", err)
	}
	if snap.WalSeq == 0 {
		t.Fatal("compaction snapshot has no wal watermark")
	}
	p.Close()
	p2 := New(opts)
	if _, err := p2.RestoreAll(); err != nil {
		t.Fatal(err)
	}
	m2, err := p2.Get("cpt")
	if err != nil {
		t.Fatal(err)
	}
	if got := canonicalState(t, m2); got != want {
		t.Fatalf("state diverges after compaction + reboot\n got: %.200s\nwant: %.200s", got, want)
	}
	p2.Close()
}

// TestConcurrentTradesGroupCommit: concurrent traders on one group-commit
// market all succeed, every commit lands in the WAL, and a reboot replays
// the full ledger — the group-commit path loses nothing under contention.
func TestConcurrentTradesGroupCommit(t *testing.T) {
	dir := t.TempDir()
	p := New(fastWalOptions(dir))
	m, err := p.Create(Spec{ID: "busy"})
	if err != nil {
		t.Fatal(err)
	}
	register(t, m, 2)
	const traders, per = 4, 3
	var wg sync.WaitGroup
	errs := make(chan error, traders)
	for w := 0; w < traders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := m.Trade(context.Background(), demoBuyer(80+float64(w*per+i), 0.8), nil, nil); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent trade: %v", err)
	}
	want := canonicalState(t, m)
	p.Close()
	p2 := New(fastWalOptions(dir))
	if _, err := p2.RestoreAll(); err != nil {
		t.Fatal(err)
	}
	m2, err := p2.Get("busy")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m2.View().Trades); got != traders*per {
		t.Fatalf("replayed %d trades, want %d", got, traders*per)
	}
	if got := canonicalState(t, m2); got != want {
		t.Fatal("replayed state diverges from the committed state")
	}
	p2.Close()
}

// TestWALOnlyMarketKeepsSpec: a market that crashes before its first
// compaction has no full snapshot — only the WAL segment plus the
// roster-free spec snapshot written when the segment was created. Reboot
// must restore the market's pinned solver, seed and durability, not the
// pool defaults, and replay the whole history from the log.
func TestWALOnlyMarketKeepsSpec(t *testing.T) {
	dir := t.TempDir()
	p := New(fastWalOptions(dir)) // pool defaults: analytic solver, group durability
	seed := int64(4242)
	m, err := p.Create(Spec{ID: "spec", Solver: "meanfield", Seed: &seed, Durability: string(DurSync)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RegisterSeller(Registration{ID: "s1", Lambda: 0.4, SyntheticRows: 40}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Trade(context.Background(), demoBuyer(90, 0.8), nil, nil); err != nil {
		t.Fatal(err)
	}
	want := canonicalState(t, m)
	// Crash: flush the log but never SaveAll, so the snapshot on disk
	// stays the roster-free spec written at segment creation.
	p.Close()
	snap, err := ReadSnapshotFile(filepath.Join(dir, "spec.json"))
	if err != nil {
		t.Fatalf("spec snapshot missing: %v", err)
	}
	if len(snap.Sellers) != 0 || snap.Market != nil {
		t.Fatalf("spec snapshot should be roster-free, got %d sellers", len(snap.Sellers))
	}

	p2 := New(fastWalOptions(dir))
	if _, err := p2.RestoreAll(); err != nil {
		t.Fatal(err)
	}
	m2, err := p2.Get("spec")
	if err != nil {
		t.Fatal(err)
	}
	info := m2.Info()
	if info.Durability != string(DurSync) || info.Solver != "meanfield" || info.Seed != seed {
		t.Fatalf("restored spec = solver %q seed %d durability %q, want meanfield/%d/sync",
			info.Solver, info.Seed, info.Durability, seed)
	}
	if got := canonicalState(t, m2); got != want {
		t.Fatalf("replayed state differs from pre-crash state\n got: %s\nwant: %s", got, want)
	}
}

// TestCloseSealsPoolAgainstStragglers pins the shutdown-ordering fix: Close
// is terminal. A trade, registration or market creation racing in after
// Close must fail with ErrDraining — before the fix the straggler reopened
// the just-closed segment, truncated the acknowledged history as "orphaned",
// and the market failed to restore on the next boot.
func TestCloseSealsPoolAgainstStragglers(t *testing.T) {
	dir := t.TempDir()
	p := New(fastWalOptions(dir))
	m, err := p.Create(Spec{ID: "seal"})
	if err != nil {
		t.Fatal(err)
	}
	register(t, m, 3)
	if _, err := m.Trade(context.Background(), demoBuyer(90, 0.8), nil, nil); err != nil {
		t.Fatalf("trade: %v", err)
	}
	want := canonicalState(t, m)
	p.Close()

	// Every mutation after Close is refused — none may touch the segment.
	if _, err := m.Trade(context.Background(), demoBuyer(90, 0.8), nil, nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("straggler trade after Close = %v, want ErrDraining", err)
	}
	if _, err := m.RegisterSeller(Registration{ID: "late", Lambda: 0.5, SyntheticRows: 10}); !errors.Is(err, ErrDraining) {
		t.Fatalf("straggler registration after Close = %v, want ErrDraining", err)
	}
	if _, err := p.Create(Spec{ID: "late"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Create after Close = %v, want ErrDraining", err)
	}

	// The acknowledged history survives intact into the next boot.
	p2 := New(fastWalOptions(dir))
	if _, err := p2.RestoreAll(); err != nil {
		t.Fatalf("RestoreAll after sealed shutdown: %v", err)
	}
	m2, err := p2.Get("seal")
	if err != nil {
		t.Fatalf("market lost across sealed shutdown: %v", err)
	}
	if got := canonicalState(t, m2); got != want {
		t.Fatalf("restored state diverged:\n got %s\nwant %s", got, want)
	}
}

// TestAsyncCloseFlushesTail: with async durability the acknowledgment
// races ahead of the fsync — Close must still flush the buffered tail, so
// every acknowledged trade survives an orderly shutdown (crash-loss is
// async's documented trade-off; shutdown-loss is not).
func TestAsyncCloseFlushesTail(t *testing.T) {
	dir := t.TempDir()
	p := New(fastWalOptions(dir))
	m, err := p.Create(Spec{ID: "tail", Durability: string(DurAsync)})
	if err != nil {
		t.Fatal(err)
	}
	register(t, m, 3)
	const trades = 3
	for i := 0; i < trades; i++ {
		if _, err := m.Trade(context.Background(), demoBuyer(80+10*float64(i), 0.8), nil, nil); err != nil {
			t.Fatalf("trade %d: %v", i, err)
		}
	}
	want := canonicalState(t, m)
	p.Close()

	p2 := New(fastWalOptions(dir))
	if _, err := p2.RestoreAll(); err != nil {
		t.Fatalf("RestoreAll: %v", err)
	}
	m2, err := p2.Get("tail")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m2.View().Trades); got != trades {
		t.Fatalf("restored ledger = %d trades, want %d (async tail dropped on Close)", got, trades)
	}
	if got := canonicalState(t, m2); got != want {
		t.Fatalf("restored state diverged:\n got %s\nwant %s", got, want)
	}
}
