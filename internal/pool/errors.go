package pool

import (
	"errors"
	"fmt"
	"time"
)

// Sentinel errors returned by pool and market operations. The HTTP layer
// maps each onto a stable machine-readable error code; everything else in
// the repo matches them with errors.Is.
var (
	// ErrMarketNotFound: the named market is not hosted by this pool.
	ErrMarketNotFound = errors.New("market not found")
	// ErrMarketExists: Create was asked for an ID that is already hosted.
	ErrMarketExists = errors.New("market already exists")
	// ErrMarketClosed: the market is draining for deletion; no new rounds
	// or registrations are admitted.
	ErrMarketClosed = errors.New("market is shutting down")
	// ErrNoSellers: a quote or trade was requested before any seller
	// registered.
	ErrNoSellers = errors.New("no sellers registered")
	// ErrSellerExists: a registration reused an existing seller ID.
	ErrSellerExists = errors.New("seller already registered")
	// ErrSellerNotFound: a seller sub-resource operation (fetch, removal,
	// budget top-up) named an ID absent from the roster. The HTTP layer
	// renders it as a 404 with field "sid".
	ErrSellerNotFound = errors.New("seller not found")
	// ErrOverloaded: the market's trade queue is full; the caller should
	// back off and retry. Rejections carry an *OverloadError (which unwraps
	// to this sentinel) with a Retry-After estimate.
	ErrOverloaded = errors.New("market trade queue is full")
	// ErrDraining: the pool is shutting down; no new trades or
	// registrations are admitted anywhere. Distinct from ErrMarketClosed
	// (one market deleted) so the HTTP layer can answer 503 + Retry-After
	// instead of a terminal 409.
	ErrDraining = errors.New("pool is draining for shutdown")
)

// OverloadError rejects a trade that found the market's bounded waiting
// room full. It unwraps to ErrOverloaded; RetryAfter estimates when the
// queue should have drained enough to admit a retry.
type OverloadError struct {
	// Market names the overloaded market.
	Market string
	// Queue is the market's configured waiting-room capacity.
	Queue int
	// RetryAfter is the server's backoff hint, clamped to [1s, 60s].
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("market %q: %v (queue %d, retry after %s)", e.Market, ErrOverloaded, e.Queue, e.RetryAfter)
}

func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// FieldError reports a request field that failed validation. The HTTP layer
// renders it as a field-level 400 with the field name in the error envelope.
type FieldError struct {
	Field string
	Msg   string
}

func (e *FieldError) Error() string { return fmt.Sprintf("field %q: %s", e.Field, e.Msg) }

// BatchError localizes a batch-quote failure to one demand. It unwraps to
// the underlying error so errors.Is / errors.As classification still works.
type BatchError struct {
	Index int
	Err   error
}

func (e *BatchError) Error() string { return fmt.Sprintf("demand %d: %v", e.Index, e.Err) }

func (e *BatchError) Unwrap() error { return e.Err }
