package pool

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"share/internal/core"
	"share/internal/dataset"
	"share/internal/product"
)

// quietOptions builds pool options that keep test logs silent.
func quietOptions() Options {
	return Options{Seed: 1, Logf: func(string, ...any) {}}
}

// register adds n synthetic sellers to m.
func register(t *testing.T, m *Market, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		_, err := m.RegisterSeller(Registration{
			ID:            fmt.Sprintf("s%02d", i+1),
			Lambda:        0.3 + 0.1*float64(i),
			SyntheticRows: 60,
		})
		if err != nil {
			t.Fatalf("registering seller %d: %v", i, err)
		}
	}
}

func demoBuyer(n, v float64) core.Buyer {
	b := core.PaperBuyer()
	b.N, b.V = n, v
	return b
}

func TestValidateID(t *testing.T) {
	for _, id := range []string{"a", "default", "Market-1", "a.b_c-9", strings.Repeat("x", 64)} {
		if err := ValidateID(id); err != nil {
			t.Errorf("ValidateID(%q) = %v, want nil", id, err)
		}
	}
	for _, id := range []string{"", ".hidden", "-lead", "_lead", "has space", "slash/у", strings.Repeat("x", 65)} {
		err := ValidateID(id)
		var fe *FieldError
		if !errors.As(err, &fe) || fe.Field != "id" {
			t.Errorf("ValidateID(%q) = %v, want FieldError on id", id, err)
		}
	}
}

func TestPoolLifecycle(t *testing.T) {
	p := New(quietOptions())
	m, err := p.Create(Spec{ID: "alpha"})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := p.Create(Spec{ID: "alpha"}); !errors.Is(err, ErrMarketExists) {
		t.Fatalf("duplicate Create = %v, want ErrMarketExists", err)
	}
	if _, err := p.Create(Spec{ID: "beta", Solver: "no-such-solver"}); err == nil {
		t.Fatal("Create with unknown solver succeeded")
	}
	got, err := p.Get("alpha")
	if err != nil || got != m {
		t.Fatalf("Get = (%v, %v), want the created market", got, err)
	}
	if _, err := p.Get("ghost"); !errors.Is(err, ErrMarketNotFound) {
		t.Fatalf("Get(ghost) = %v, want ErrMarketNotFound", err)
	}
	if _, err := p.Create(Spec{ID: "beta"}); err != nil {
		t.Fatalf("Create beta: %v", err)
	}
	infos := p.List()
	if len(infos) != 2 || infos[0].ID != "alpha" || infos[1].ID != "beta" {
		t.Fatalf("List = %+v, want [alpha beta]", infos)
	}
	if err := p.Delete(context.Background(), "beta"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := p.Get("beta"); !errors.Is(err, ErrMarketNotFound) {
		t.Fatalf("Get after Delete = %v, want ErrMarketNotFound", err)
	}
	if err := p.Delete(context.Background(), "beta"); !errors.Is(err, ErrMarketNotFound) {
		t.Fatalf("second Delete = %v, want ErrMarketNotFound", err)
	}
}

// TestDerivedSeedsAreStable pins the recreate-determinism contract: the
// same pool seed and market ID always derive the same market seed, and an
// explicit Spec.Seed (including zero) wins over derivation.
func TestDerivedSeedsAreStable(t *testing.T) {
	p1, p2 := New(quietOptions()), New(quietOptions())
	a1, _ := p1.Create(Spec{ID: "alpha"})
	a2, _ := p2.Create(Spec{ID: "alpha"})
	if a1.Seed() != a2.Seed() {
		t.Fatalf("derived seeds differ: %d vs %d", a1.Seed(), a2.Seed())
	}
	b1, _ := p1.Create(Spec{ID: "beta"})
	if b1.Seed() == a1.Seed() {
		t.Fatalf("distinct IDs derived the same seed %d", a1.Seed())
	}
	zero := int64(0)
	z, _ := p1.Create(Spec{ID: "zed", Seed: &zero})
	if z.Seed() != 0 {
		t.Fatalf("explicit zero seed not honored: %d", z.Seed())
	}
}

// blockingBuilder parks a trade inside product manufacturing so tests can
// probe what the rest of the pool does while one market's write path is
// held.
type blockingBuilder struct {
	once    sync.Once
	started chan struct{}
	release chan struct{}
}

func newBlockingBuilder() *blockingBuilder {
	return &blockingBuilder{started: make(chan struct{}), release: make(chan struct{})}
}

func (b *blockingBuilder) Name() string { return "blocking" }

func (b *blockingBuilder) Build(train, test *dataset.Dataset) (product.Report, error) {
	b.once.Do(func() { close(b.started) })
	<-b.release
	return product.OLS{}.Build(train, test)
}

// TestMarketsAreIsolated is the tentpole contract: a round wedged in market
// A — holding A's write path — never delays quotes OR trades in market B.
func TestMarketsAreIsolated(t *testing.T) {
	p := New(quietOptions())
	a, err := p.Create(Spec{ID: "blocked"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Create(Spec{ID: "free"})
	if err != nil {
		t.Fatal(err)
	}
	register(t, a, 3)
	register(t, b, 3)

	bb := newBlockingBuilder()
	tradeDone := make(chan error, 1)
	go func() {
		_, err := a.Trade(context.Background(), demoBuyer(90, 0.8), bb, nil)
		tradeDone <- err
	}()
	select {
	case <-bb.started:
	case <-time.After(10 * time.Second):
		t.Fatal("market A's trade never reached manufacturing")
	}

	// With A wedged, B must quote and trade promptly.
	done := make(chan error, 1)
	go func() {
		if _, _, err := b.Quote(context.Background(), demoBuyer(120, 0.8), ""); err != nil {
			done <- fmt.Errorf("quote in B: %w", err)
			return
		}
		if _, err := b.Trade(context.Background(), demoBuyer(90, 0.8), nil, nil); err != nil {
			done <- fmt.Errorf("trade in B: %w", err)
			return
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("market B was delayed by market A's in-flight round")
	}
	// Quotes against A itself stay lock-free too.
	if _, _, err := a.Quote(context.Background(), demoBuyer(120, 0.8), ""); err != nil {
		t.Fatalf("lock-free quote in A while trading: %v", err)
	}

	close(bb.release)
	if err := <-tradeDone; err != nil {
		t.Fatalf("market A's trade failed after release: %v", err)
	}
}

// TestDeleteDrainsInFlightRounds races Delete against a wedged round: the
// market unlinks immediately, the drain respects the caller's context, a
// stale handle rejects new work, and the drain completes once the round
// releases.
func TestDeleteDrainsInFlightRounds(t *testing.T) {
	p := New(quietOptions())
	m, err := p.Create(Spec{ID: "doomed"})
	if err != nil {
		t.Fatal(err)
	}
	register(t, m, 3)

	bb := newBlockingBuilder()
	tradeDone := make(chan error, 1)
	go func() {
		_, err := m.Trade(context.Background(), demoBuyer(90, 0.8), bb, nil)
		tradeDone <- err
	}()
	select {
	case <-bb.started:
	case <-time.After(10 * time.Second):
		t.Fatal("trade never reached manufacturing")
	}

	// Delete under a short deadline: the round is still wedged, so the
	// drain must time out — but the market is already unlinked.
	shortCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := p.Delete(shortCtx, "doomed"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Delete under wedged round = %v, want DeadlineExceeded", err)
	}
	if _, err := p.Get("doomed"); !errors.Is(err, ErrMarketNotFound) {
		t.Fatalf("market still routable after Delete: %v", err)
	}
	// The stale handle is draining: new mutating work is refused.
	if _, err := m.RegisterSeller(Registration{ID: "late", Lambda: 0.5, SyntheticRows: 40}); !errors.Is(err, ErrMarketClosed) {
		t.Fatalf("RegisterSeller on draining market = %v, want ErrMarketClosed", err)
	}
	if _, err := m.Trade(context.Background(), demoBuyer(90, 0.8), nil, nil); !errors.Is(err, ErrMarketClosed) {
		t.Fatalf("Trade on draining market = %v, want ErrMarketClosed", err)
	}

	// Release the wedged round; it must complete (it was admitted before
	// the close) and the drain must finish.
	close(bb.release)
	if err := <-tradeDone; err != nil {
		t.Fatalf("in-flight trade failed after release: %v", err)
	}
	drained := make(chan struct{})
	go func() { m.inFlight.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("drain never completed after round release")
	}
}

// TestBatchQuoteDeterminism pins the parallel.Map contract end-to-end: the
// same batch solved under different worker budgets yields byte-identical
// profiles, including the mixed-solver case.
func TestBatchQuoteDeterminism(t *testing.T) {
	demands := []BatchDemand{
		{Buyer: demoBuyer(100, 0.75)},
		{Buyer: demoBuyer(200, 0.8), Solver: "meanfield"},
		{Buyer: demoBuyer(300, 0.85), Solver: "general"},
		{Buyer: demoBuyer(400, 0.9), Solver: "analytic"},
		{Buyer: demoBuyer(500, 0.95)},
	}
	var want []byte
	for _, workers := range []int{1, 4, 8} {
		opts := quietOptions()
		opts.Workers = workers
		p := New(opts)
		m, err := p.Create(Spec{ID: "batch"})
		if err != nil {
			t.Fatal(err)
		}
		register(t, m, 4)
		profiles, names, err := m.QuoteBatch(context.Background(), demands)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if names[0] != "analytic" || names[1] != "meanfield" || names[2] != "general" {
			t.Fatalf("workers=%d: solver names = %v", workers, names)
		}
		got, err := json.Marshal(profiles)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if string(got) != string(want) {
			t.Fatalf("workers=%d: batch result differs from workers=1", workers)
		}
	}
}

// TestBatchQuoteReportsLowestFailingIndex pins the deterministic error
// contract: with several failing demands the batch reports the lowest
// index, regardless of worker interleaving.
func TestBatchQuoteReportsLowestFailingIndex(t *testing.T) {
	opts := quietOptions()
	opts.Workers = 4
	p := New(opts)
	m, err := p.Create(Spec{ID: "batch"})
	if err != nil {
		t.Fatal(err)
	}
	register(t, m, 3)
	demands := []BatchDemand{
		{Buyer: demoBuyer(100, 0.8)},
		{Buyer: demoBuyer(200, 0.8), Solver: "bogus"},
		{Buyer: demoBuyer(300, 0.8), Solver: "also-bogus"},
	}
	_, _, err = m.QuoteBatch(context.Background(), demands)
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 1 {
		t.Fatalf("QuoteBatch error = %v, want BatchError at index 1", err)
	}
	var fe *FieldError
	if !errors.As(err, &fe) || fe.Field != "solver" {
		t.Fatalf("QuoteBatch error = %v, want wrapped FieldError on solver", err)
	}
}

func TestSnapshotDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := quietOptions()
	opts.SnapshotDir = dir
	p := New(opts)
	for _, id := range []string{"alpha", "beta"} {
		m, err := p.Create(Spec{ID: id})
		if err != nil {
			t.Fatal(err)
		}
		register(t, m, 3)
		if _, err := m.Trade(context.Background(), demoBuyer(90, 0.8), nil, nil); err != nil {
			t.Fatalf("trade in %s: %v", id, err)
		}
	}
	if err := p.SaveAll(); err != nil {
		t.Fatalf("SaveAll: %v", err)
	}

	opts2 := quietOptions()
	opts2.SnapshotDir = dir
	p2 := New(opts2)
	ids, err := p2.RestoreAll()
	if err != nil {
		t.Fatalf("RestoreAll: %v", err)
	}
	if len(ids) != 2 {
		t.Fatalf("restored %v, want [alpha beta]", ids)
	}
	for _, id := range ids {
		orig, _ := p.Get(id)
		got, err := p2.Get(id)
		if err != nil {
			t.Fatalf("restored market %s missing: %v", id, err)
		}
		ov, gv := orig.View(), got.View()
		if len(gv.Trades) != len(ov.Trades) || !gv.Trading {
			t.Fatalf("%s: restored ledger %d trades (trading=%v), want %d", id, len(gv.Trades), gv.Trading, len(ov.Trades))
		}
		ow, _ := json.Marshal(ov.Weights)
		gw, _ := json.Marshal(gv.Weights)
		if string(ow) != string(gw) {
			t.Fatalf("%s: restored weights %s, want %s", id, gw, ow)
		}
		if got.Seed() != orig.Seed() {
			t.Fatalf("%s: restored seed %d, want %d", id, got.Seed(), orig.Seed())
		}
		// Post-restore the market keeps trading.
		if _, err := got.Trade(context.Background(), demoBuyer(120, 0.8), nil, nil); err != nil {
			t.Fatalf("%s: trade after restore: %v", id, err)
		}
	}
}

// TestRestoreAllSkipsCorruptSnapshot: one corrupt file must not take down
// boot — it is skipped with a logged warning and every healthy market
// restores.
func TestRestoreAllSkipsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	opts := quietOptions()
	opts.SnapshotDir = dir
	p := New(opts)
	m, err := p.Create(Spec{ID: "good"})
	if err != nil {
		t.Fatal(err)
	}
	register(t, m, 2)
	if err := p.SaveAll(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Unrelated entries must be ignored outright.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "subdir.json"), 0o755); err != nil {
		t.Fatal(err)
	}

	var warnings []string
	opts2 := quietOptions()
	opts2.SnapshotDir = dir
	opts2.Logf = func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}
	p2 := New(opts2)
	ids, err := p2.RestoreAll()
	if err != nil {
		t.Fatalf("RestoreAll: %v", err)
	}
	if len(ids) != 1 || ids[0] != "good" {
		t.Fatalf("restored %v, want [good]", ids)
	}
	found := false
	for _, w := range warnings {
		if strings.Contains(w, "skipping snapshot") && strings.Contains(w, "bad.json") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no skip warning for bad.json in %q", warnings)
	}
	if _, err := p2.Get("bad"); !errors.Is(err, ErrMarketNotFound) {
		t.Fatalf("corrupt snapshot produced a market: %v", err)
	}
}

// TestDeleteRemovesSnapshot: a deleted market's snapshot file must go with
// it, so a reboot cannot resurrect it. Pinned to snapshot durability — the
// mode that writes <id>.json per trade; the WAL modes are covered by
// TestDeleteRemovesWALSegment.
func TestDeleteRemovesSnapshot(t *testing.T) {
	dir := t.TempDir()
	opts := quietOptions()
	opts.SnapshotDir = dir
	opts.Durability = string(DurSnapshot)
	p := New(opts)
	m, err := p.Create(Spec{ID: "gone"})
	if err != nil {
		t.Fatal(err)
	}
	register(t, m, 3)
	if _, err := m.Trade(context.Background(), demoBuyer(90, 0.8), nil, nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "gone.json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot not written after trade: %v", err)
	}
	if err := p.Delete(context.Background(), "gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("snapshot survives delete: %v", err)
	}
}

// TestLegacySnapshotRestores: a pre-pool single-market snapshot (no
// id/solver/seed fields) restores into a market unchanged.
func TestLegacySnapshotRestores(t *testing.T) {
	p := New(quietOptions())
	src, err := p.Create(Spec{ID: "src"})
	if err != nil {
		t.Fatal(err)
	}
	register(t, src, 2)
	snap := src.Snapshot()
	// Strip the pool-era fields to mimic a legacy file.
	snap.ID, snap.Solver, snap.Seed = "", "", nil
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var legacy MarketSnapshot
	if err := json.Unmarshal(raw, &legacy); err != nil {
		t.Fatal(err)
	}
	dst, err := p.Create(Spec{ID: "dst"})
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.RestoreSnapshot(&legacy); err != nil {
		t.Fatalf("restoring legacy snapshot: %v", err)
	}
	if got := len(dst.View().Sellers); got != 2 {
		t.Fatalf("restored %d sellers, want 2", got)
	}
}

// TestAccessorsAndErrorStrings sweeps the small surface the other tests
// reach only implicitly: accessors, error rendering, and registration
// validation branches.
func TestAccessorsAndErrorStrings(t *testing.T) {
	opts := quietOptions()
	opts.Workers = 3
	p := New(opts)
	if p.Metrics() == nil || p.Workers() != 3 || p.DefaultSolver() != "analytic" {
		t.Fatalf("pool accessors: metrics=%v workers=%d solver=%q", p.Metrics(), p.Workers(), p.DefaultSolver())
	}
	m, err := p.Create(Spec{ID: "acc", Solver: "meanfield"})
	if err != nil {
		t.Fatal(err)
	}
	if m.ID() != "acc" || m.Solver() != "meanfield" || m.TestSet() == nil {
		t.Fatalf("market accessors: id=%q solver=%q", m.ID(), m.Solver())
	}

	fe := &FieldError{Field: "x", Msg: "boom"}
	if s := fe.Error(); !strings.Contains(s, "x") || !strings.Contains(s, "boom") {
		t.Fatalf("FieldError.Error() = %q", s)
	}
	be := &BatchError{Index: 2, Err: fe}
	if s := be.Error(); !strings.Contains(s, "2") || !strings.Contains(s, "boom") {
		t.Fatalf("BatchError.Error() = %q", s)
	}
	if !errors.Is(be, be) || be.Unwrap() != fe {
		t.Fatal("BatchError does not unwrap its inner error")
	}

	// Registration validation branches.
	cases := []struct {
		name  string
		reg   Registration
		field string
	}{
		{"missing id", Registration{Lambda: 0.5, SyntheticRows: 10}, "id"},
		{"bad lambda", Registration{ID: "a", Lambda: 0, SyntheticRows: 10}, "lambda"},
		{"both sources", Registration{ID: "a", Lambda: 0.5, SyntheticRows: 10, Rows: [][]float64{{1, 2}}}, "synthetic_rows"},
		{"row/target mismatch", Registration{ID: "a", Lambda: 0.5, Rows: [][]float64{{1, 2}}, Targets: []float64{1, 2}}, "targets"},
		{"invalid rows", Registration{ID: "a", Lambda: 0.5, Rows: [][]float64{{1, 2}, {1}}, Targets: []float64{1, 2}}, "rows"},
		{"no data", Registration{ID: "a", Lambda: 0.5}, "rows"},
	}
	for _, tc := range cases {
		_, err := m.RegisterSeller(tc.reg)
		var got *FieldError
		if !errors.As(err, &got) || got.Field != tc.field {
			t.Errorf("%s: err = %v, want FieldError on %q", tc.name, err, tc.field)
		}
	}

	// Inline rows register fine (4 features, matching the CCPP schema the
	// synthetic sellers below use); duplicates conflict, and a seller whose
	// rows are a different width than the roster is rejected up front
	// rather than panicking the LDP mechanism at trade time.
	inline := Registration{
		ID: "inline", Lambda: 0.5,
		Rows: [][]float64{
			{1, 2, 3, 4}, {2, 3, 4, 5}, {3, 4, 5, 6},
			{4, 5, 6, 7}, {5, 6, 7, 8}, {6, 7, 8, 9},
		},
		Targets: []float64{1, 2, 3, 4, 5, 6},
	}
	if _, err := m.RegisterSeller(inline); err != nil {
		t.Fatalf("inline registration: %v", err)
	}
	if _, err := m.RegisterSeller(inline); !errors.Is(err, ErrSellerExists) {
		t.Fatalf("duplicate registration = %v, want ErrSellerExists", err)
	}
	narrow := Registration{
		ID: "narrow", Lambda: 0.5,
		Rows:    [][]float64{{1, 2}, {2, 3}, {3, 4}},
		Targets: []float64{1, 2, 3},
	}
	if _, err := m.RegisterSeller(narrow); err == nil {
		t.Fatal("mismatched feature width accepted")
	} else {
		var fe *FieldError
		if !errors.As(err, &fe) || fe.Field != "rows" {
			t.Fatalf("mismatched width err = %v, want FieldError on rows", err)
		}
	}

	// Quote with an unknown solver is a field error; trade on an empty
	// market is ErrNoSellers; registration closes after the first trade.
	if _, _, err := m.Quote(context.Background(), demoBuyer(100, 0.8), "bogus"); err == nil {
		t.Fatal("unknown solver quote succeeded")
	}
	empty, err := p.Create(Spec{ID: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.Trade(context.Background(), demoBuyer(90, 0.8), nil, nil); !errors.Is(err, ErrNoSellers) {
		t.Fatalf("trade on empty market = %v, want ErrNoSellers", err)
	}
	if _, _, err := empty.Quote(context.Background(), demoBuyer(90, 0.8), ""); !errors.Is(err, ErrNoSellers) {
		t.Fatalf("quote on empty market = %v, want ErrNoSellers", err)
	}
	register(t, m, 1)
	if _, err := m.Trade(context.Background(), demoBuyer(90, 0.8), nil, nil); err != nil {
		t.Fatalf("trade: %v", err)
	}
	// Registration no longer closes at the first trade: a late seller joins
	// mid-life at the mean of the current weights.
	late, err := m.RegisterSeller(Registration{ID: "late", Lambda: 0.5, SyntheticRows: 10})
	if err != nil {
		t.Fatalf("post-trade registration: %v", err)
	}
	if !(late.Weight > 0) {
		t.Fatalf("mid-life join weight = %g, want positive", late.Weight)
	}
}

// TestRestoreSnapshotRejections covers the snapshot guard rails: version,
// ID mismatch, non-fresh market, and bad stored sellers.
func TestRestoreSnapshotRejections(t *testing.T) {
	p := New(quietOptions())
	m, err := p.Create(Spec{ID: "guard"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RestoreSnapshot(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	if err := m.RestoreSnapshot(&MarketSnapshot{Version: 99}); err == nil {
		t.Fatal("unsupported version accepted")
	}
	if err := m.RestoreSnapshot(&MarketSnapshot{Version: 1, ID: "other"}); err == nil {
		t.Fatal("ID-mismatched snapshot accepted")
	}
	if err := m.RestoreSnapshot(&MarketSnapshot{Version: 1, Sellers: []StoredSeller{
		{ID: "bad", Lambda: 0.5, Rows: [][]float64{{1, 2}, {1}}, Targets: []float64{1, 2}},
	}}); err == nil {
		t.Fatal("invalid stored seller accepted")
	}
	if err := m.RestoreSnapshot(&MarketSnapshot{Version: 1, Sellers: []StoredSeller{
		{ID: "wide", Lambda: 0.5, Rows: [][]float64{{1, 2, 3}, {2, 3, 4}}, Targets: []float64{1, 2}},
		{ID: "thin", Lambda: 0.5, Rows: [][]float64{{1, 2}, {2, 3}}, Targets: []float64{1, 2}},
	}}); err == nil {
		t.Fatal("mixed-width snapshot roster accepted")
	}
	register(t, m, 1)
	if err := m.RestoreSnapshot(&MarketSnapshot{Version: 1}); err == nil {
		t.Fatal("restore into non-fresh market accepted")
	}
	// SaveAll/RestoreAll without a configured directory are errors.
	if err := p.SaveAll(); err == nil {
		t.Fatal("SaveAll without snapshot dir succeeded")
	}
	if _, err := p.RestoreAll(); err == nil {
		t.Fatal("RestoreAll without snapshot dir succeeded")
	}
	// RestoreAll on a missing directory is a clean first boot.
	opts := quietOptions()
	opts.SnapshotDir = filepath.Join(t.TempDir(), "does-not-exist")
	ids, err := New(opts).RestoreAll()
	if err != nil || ids != nil {
		t.Fatalf("RestoreAll on missing dir = (%v, %v), want (nil, nil)", ids, err)
	}
}

// TestSnapshotSeedOverride: restoring a snapshot with a different stored
// seed rebuilds the market's test set and sampling stream so post-restore
// behavior matches the saving process.
func TestSnapshotSeedOverride(t *testing.T) {
	p := New(quietOptions())
	src, err := p.Create(Spec{ID: "src"})
	if err != nil {
		t.Fatal(err)
	}
	register(t, src, 2)
	snap := src.Snapshot()
	snap.ID = "" // legacy-style file restored under a different name
	dst, err := p.Create(Spec{ID: "dst"})
	if err != nil {
		t.Fatal(err)
	}
	if dst.Seed() == src.Seed() {
		t.Fatal("test premise broken: derived seeds collide")
	}
	if err := dst.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if dst.Seed() != src.Seed() {
		t.Fatalf("restored seed %d, want the stored %d", dst.Seed(), src.Seed())
	}
}
