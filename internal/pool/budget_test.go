package pool

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"share/internal/budget"
	"share/internal/wal"
)

// fptr is a Spec pointer-field helper.
func fptr(v float64) *float64 { return &v }

func TestCreateBudgetSpecValidation(t *testing.T) {
	p := New(quietOptions())
	for i, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		_, err := p.Create(Spec{ID: fmt.Sprintf("bad%d", i), EpsilonBudget: fptr(bad)})
		var fe *FieldError
		if !errors.As(err, &fe) || fe.Field != "epsilon_budget" {
			t.Errorf("Create(epsilon_budget=%g) = %v, want FieldError on epsilon_budget", bad, err)
		}
	}
	_, err := p.Create(Spec{ID: "badcomp", EpsilonBudget: fptr(5), Composition: "fancy"})
	var fe *FieldError
	if !errors.As(err, &fe) || fe.Field != "composition" {
		t.Errorf("Create(composition=fancy) = %v, want FieldError on composition", err)
	}

	m, err := p.Create(Spec{ID: "ok", EpsilonBudget: fptr(5), Composition: "advanced"})
	if err != nil {
		t.Fatal(err)
	}
	if info := m.Info(); info.EpsilonBudget != 5 || info.Composition != "advanced" {
		t.Errorf("Info = %+v, want epsilon_budget 5 composition advanced", info)
	}
	plain, err := p.Create(Spec{ID: "plain"})
	if err != nil {
		t.Fatal(err)
	}
	if info := plain.Info(); info.EpsilonBudget != 0 || info.Composition != "" {
		t.Errorf("budget-free Info = %+v, want zero epsilon_budget and empty composition", info)
	}

	// Pool-level default applies unless the spec overrides it; an explicit
	// zero disables budgeting for that market alone.
	dOpts := quietOptions()
	dOpts.EpsilonBudget = 3
	dp := New(dOpts)
	dm, err := dp.Create(Spec{ID: "inherit"})
	if err != nil {
		t.Fatal(err)
	}
	if info := dm.Info(); info.EpsilonBudget != 3 || info.Composition != "basic" {
		t.Errorf("inherited Info = %+v, want epsilon_budget 3 composition basic", info)
	}
	zm, err := dp.Create(Spec{ID: "optout", EpsilonBudget: fptr(0)})
	if err != nil {
		t.Fatal(err)
	}
	if info := zm.Info(); info.EpsilonBudget != 0 || info.Composition != "" {
		t.Errorf("opted-out Info = %+v, want budgeting disabled", info)
	}

	// Invalid pool-level defaults fall back to disabled (mirroring Solver),
	// never to a broken pool.
	bOpts := quietOptions()
	bOpts.EpsilonBudget = -5
	bp := New(bOpts)
	bm, err := bp.Create(Spec{ID: "fallback"})
	if err != nil {
		t.Fatal(err)
	}
	if info := bm.Info(); info.EpsilonBudget != 0 {
		t.Errorf("invalid pool default leaked into Info = %+v", info)
	}
}

func TestBudgetedTradeChargesLedger(t *testing.T) {
	p := New(quietOptions())
	m, err := p.Create(Spec{ID: "bt", EpsilonBudget: fptr(1e18)})
	if err != nil {
		t.Fatal(err)
	}
	register(t, m, 2)
	if _, err := m.Trade(context.Background(), demoBuyer(90, 0.8), nil, nil); err != nil {
		t.Fatal(err)
	}
	v := m.View()
	if len(v.Trades) != 1 {
		t.Fatalf("committed %d trades, want 1", len(v.Trades))
	}
	if got := v.Trades[0].BudgetSpent; len(got) != 2 {
		t.Fatalf("transaction BudgetSpent = %v, want one entry per seller", got)
	}
	for _, s := range v.Sellers {
		if s.Budget != 1e18 {
			t.Errorf("seller %s budget %g, want 1e18", s.ID, s.Budget)
		}
		if !(s.Spent > 0) {
			t.Errorf("seller %s spent %g after a trade, want > 0", s.ID, s.Spent)
		}
		st, epoch, err := m.Seller(s.ID)
		if err != nil {
			t.Fatalf("Seller(%s): %v", s.ID, err)
		}
		if st != s || epoch != v.Epoch {
			t.Errorf("Seller(%s) = %+v at epoch %d, view has %+v at epoch %d", s.ID, st, epoch, s, v.Epoch)
		}
	}
	if _, _, err := m.Seller("ghost"); !errors.Is(err, ErrSellerNotFound) {
		t.Errorf("Seller(ghost) = %v, want ErrSellerNotFound", err)
	}
}

// probeRoundSpends runs rounds generous-budget rounds on a market named id
// and returns the per-seller ε-spent map after each round. The derived seed
// depends only on the pool seed and the market ID, and budgets draw no
// randomness of their own, so a second market under the same ID replays the
// same per-round ε exactly.
func probeRoundSpends(t *testing.T, id string, sellers, rounds int) []map[string]float64 {
	t.Helper()
	p := New(quietOptions())
	m, err := p.Create(Spec{ID: id, EpsilonBudget: fptr(1e18)})
	if err != nil {
		t.Fatal(err)
	}
	register(t, m, sellers)
	out := make([]map[string]float64, rounds)
	for r := 0; r < rounds; r++ {
		if _, err := m.Trade(context.Background(), demoBuyer(90+10*float64(r), 0.8), nil, nil); err != nil {
			t.Fatalf("probe round %d: %v", r+1, err)
		}
		spent := make(map[string]float64)
		for _, s := range m.View().Sellers {
			spent[s.ID] = s.Spent
		}
		out[r] = spent
	}
	return out
}

func TestBudgetExhaustionExcludesTradeUntilTopUp(t *testing.T) {
	spends := probeRoundSpends(t, "bx", 2, 2)
	s1, s2 := spends[0], spends[1]
	maxID, maxS1 := "", 0.0
	for id, s := range s1 {
		if s > maxS1 {
			maxID, maxS1 = id, s
		}
	}
	if maxS1 <= 0 {
		t.Fatalf("probe round 1 charged nothing: %v", s1)
	}
	delta := s2[maxID] - maxS1
	if delta <= 0 {
		t.Fatalf("probe round 2 charged seller %s nothing (spent %v then %v)", maxID, s1, s2)
	}
	// Room for round 1 for every seller, but not for the hungriest seller's
	// second charge.
	B := maxS1 + 0.5*delta

	p := New(quietOptions())
	m, err := p.Create(Spec{ID: "bx", EpsilonBudget: fptr(B)})
	if err != nil {
		t.Fatal(err)
	}
	register(t, m, 2)
	if _, err := m.Trade(context.Background(), demoBuyer(90, 0.8), nil, nil); err != nil {
		t.Fatalf("round 1 within budget: %v", err)
	}
	for id, want := range s1 {
		st, _, err := m.Seller(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Spent != want {
			t.Errorf("seller %s spent %v, probe says %v (budget must not perturb the round)", id, st.Spent, want)
		}
	}

	_, err = m.Trade(context.Background(), demoBuyer(100, 0.8), nil, nil)
	var ee *budget.ExhaustedError
	if !errors.As(err, &ee) {
		t.Fatalf("round 2 over budget = %v, want *budget.ExhaustedError", err)
	}
	if ee.SellerID == "" || ee.Budget != B || !(ee.Spent+ee.Requested > B) {
		t.Errorf("exhaustion error %+v inconsistent with budget %g", ee, B)
	}
	if got := m.exhaustedC.Value(); got != 1 {
		t.Errorf("budget_exhausted counter = %d, want 1", got)
	}
	// The refused round committed nothing: no trade, no charge.
	if v := m.View(); len(v.Trades) != 1 {
		t.Fatalf("refused round still committed: %d trades", len(v.Trades))
	}
	for id, want := range s1 {
		st, _, _ := m.Seller(id)
		if st.Spent != want {
			t.Errorf("seller %s spent %v after refused round, want unchanged %v", id, st.Spent, want)
		}
	}
	// Quotes keep flowing against the published view.
	if _, _, err := m.Quote(context.Background(), demoBuyer(120, 0.9), ""); err != nil {
		t.Fatalf("quote after exhaustion: %v", err)
	}

	for id := range s1 {
		st, err := m.TopUpBudget(id, 10*s2[maxID])
		if err != nil {
			t.Fatalf("TopUpBudget(%s): %v", id, err)
		}
		if st.Budget <= B {
			t.Errorf("seller %s budget %g after top-up, want > %g", id, st.Budget, B)
		}
	}
	tx, err := m.Trade(context.Background(), demoBuyer(100, 0.8), nil, nil)
	if err != nil {
		t.Fatalf("round 2 after top-up: %v", err)
	}
	if tx.Round != 2 {
		t.Errorf("post-top-up round numbered %d, want 2 (a refused round must not burn a number)", tx.Round)
	}
}

func TestTopUpBudgetValidation(t *testing.T) {
	p := New(quietOptions())
	plain, err := p.Create(Spec{ID: "nb"})
	if err != nil {
		t.Fatal(err)
	}
	register(t, plain, 1)
	var fe *FieldError
	if _, err := plain.TopUpBudget("s01", 1); !errors.As(err, &fe) || fe.Field != "add" {
		t.Errorf("TopUpBudget on budget-free market = %v, want FieldError on add", err)
	}

	bm, err := p.Create(Spec{ID: "wb", EpsilonBudget: fptr(4)})
	if err != nil {
		t.Fatal(err)
	}
	register(t, bm, 1)
	if _, err := bm.TopUpBudget("ghost", 1); !errors.Is(err, ErrSellerNotFound) {
		t.Errorf("TopUpBudget(ghost) = %v, want ErrSellerNotFound", err)
	}
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := bm.TopUpBudget("s01", bad); !errors.As(err, &fe) || fe.Field != "add" {
			t.Errorf("TopUpBudget(add=%g) = %v, want FieldError on add", bad, err)
		}
	}
	st, err := bm.TopUpBudget("s01", 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Budget != 6 {
		t.Errorf("budget after top-up = %g, want 6", st.Budget)
	}
	if got, _, _ := bm.Seller("s01"); got.Budget != 6 {
		t.Errorf("published view budget = %g, want 6", got.Budget)
	}
}

func TestRemoveSellerUnknownNotFound(t *testing.T) {
	p := New(quietOptions())
	m, err := p.Create(Spec{ID: "rm"})
	if err != nil {
		t.Fatal(err)
	}
	register(t, m, 2)
	if err := m.RemoveSeller("ghost"); !errors.Is(err, ErrSellerNotFound) {
		t.Errorf("RemoveSeller(ghost) = %v, want ErrSellerNotFound", err)
	}
}

// TestExhaustedTradesLeaveQuotesUndisturbed hammers one exhausted market
// with concurrent trades and quotes: every trade must refuse with the typed
// exhaustion error, every quote must succeed, and the ledger must stay
// untouched. Run under -race this pins that the refusal path shares no
// unsynchronized state with the lock-free quote path.
func TestExhaustedTradesLeaveQuotesUndisturbed(t *testing.T) {
	s1 := probeRoundSpends(t, "biso", 2, 1)[0]
	minS1 := math.Inf(1)
	for _, s := range s1 {
		if s > 0 && s < minS1 {
			minS1 = s
		}
	}
	if math.IsInf(minS1, 1) {
		t.Fatalf("probe charged nothing: %v", s1)
	}

	p := New(quietOptions())
	conc, queue := 4, 64
	m, err := p.Create(Spec{
		ID:               "biso",
		EpsilonBudget:    fptr(0.5 * minS1), // below every seller's first charge
		TradeConcurrency: &conc,
		TradeQueue:       &queue,
	})
	if err != nil {
		t.Fatal(err)
	}
	register(t, m, 2)

	const traders, tradesEach = 4, 5
	const quoters, quotesEach = 4, 10
	errs := make(chan error, traders*tradesEach+quoters*quotesEach)
	var wg sync.WaitGroup
	for g := 0; g < traders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < tradesEach; i++ {
				_, err := m.Trade(context.Background(), demoBuyer(90, 0.8), nil, nil)
				var ee *budget.ExhaustedError
				if !errors.As(err, &ee) {
					errs <- fmt.Errorf("trade = %v, want *budget.ExhaustedError", err)
				}
			}
		}()
	}
	for g := 0; g < quoters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < quotesEach; i++ {
				if _, _, err := m.Quote(context.Background(), demoBuyer(100, 0.9), ""); err != nil {
					errs <- fmt.Errorf("quote: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := m.exhaustedC.Value(); got != traders*tradesEach {
		t.Errorf("budget_exhausted counter = %d, want %d", got, traders*tradesEach)
	}
	if v := m.View(); len(v.Trades) != 0 {
		t.Errorf("exhausted market committed %d trades", len(v.Trades))
	}
	for id := range s1 {
		if st, _, _ := m.Seller(id); st.Spent != 0 {
			t.Errorf("seller %s spent %g on refused rounds, want 0", id, st.Spent)
		}
	}
}

func TestBudgetWalReplayExactness(t *testing.T) {
	dir := t.TempDir()
	opts := fastWalOptions(dir)
	opts.EpsilonBudget = 1e15
	opts.Composition = "advanced"
	p := New(opts)
	m, err := p.Create(Spec{ID: "bwal"})
	if err != nil {
		t.Fatal(err)
	}
	register(t, m, 3)
	for i := 0; i < 3; i++ {
		if _, err := m.Trade(context.Background(), demoBuyer(80+10*float64(i), 0.8), nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.TopUpBudget("s01", 3.25); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Trade(context.Background(), demoBuyer(120, 0.7), nil, nil); err != nil {
		t.Fatal(err)
	}
	ref := canonicalState(t, m)
	refInfo := m.Info()
	refSellers := m.View().Sellers
	p.Close()

	p2 := New(opts)
	restored, err := p2.RestoreAll()
	if err != nil {
		t.Fatalf("RestoreAll: %v", err)
	}
	if len(restored) != 1 || restored[0] != "bwal" {
		t.Fatalf("restored %v, want [bwal]", restored)
	}
	m2, err := p2.Get("bwal")
	if err != nil {
		t.Fatal(err)
	}
	if got := canonicalState(t, m2); got != ref {
		t.Errorf("replayed state diverges\n got: %.300s\nwant: %.300s", got, ref)
	}
	if info := m2.Info(); info.EpsilonBudget != refInfo.EpsilonBudget || info.Composition != refInfo.Composition {
		t.Errorf("restored Info = %+v, want budget config of %+v", info, refInfo)
	}
	for _, want := range refSellers {
		got, _, err := m2.Seller(want.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Spent != want.Spent || got.Budget != want.Budget {
			t.Errorf("seller %s replayed spent/budget %v/%v, want exactly %v/%v",
				want.ID, got.Spent, got.Budget, want.Spent, want.Budget)
		}
	}
	p2.Close()
}

func TestBudgetCompactionCarriesAccounts(t *testing.T) {
	dir := t.TempDir()
	opts := fastWalOptions(dir)
	opts.EpsilonBudget = 1e15
	// Compact after the first trade's pair of records so the final state is
	// a snapshot carrying ledger accounts plus a replayed WAL tail whose
	// budget_charge cross-check would catch a zeroed or double-applied
	// ledger.
	opts.CompactRecords = 4
	p := New(opts)
	m, err := p.Create(Spec{ID: "bcomp"})
	if err != nil {
		t.Fatal(err)
	}
	register(t, m, 2)
	if _, err := m.Trade(context.Background(), demoBuyer(90, 0.8), nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.TopUpBudget("s02", 1.5); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Trade(context.Background(), demoBuyer(100, 0.8), nil, nil); err != nil {
		t.Fatal(err)
	}
	ref := canonicalState(t, m)
	p.Close()

	p2 := New(opts)
	if _, err := p2.RestoreAll(); err != nil {
		t.Fatalf("RestoreAll: %v", err)
	}
	m2, err := p2.Get("bcomp")
	if err != nil {
		t.Fatal(err)
	}
	if got := canonicalState(t, m2); got != ref {
		t.Errorf("compacted replay diverges\n got: %.300s\nwant: %.300s", got, ref)
	}
	p2.Close()
}

// TestWALTortureBudgetRecovery extends the crash-recovery torture sweep to
// budget_charge frames: a budgeted market's WAL is truncated at a dense set
// of byte offsets and replay must restore exactly the longest committed
// record prefix. Budgeted trades write TWO records (trade, then its charge),
// so a cut between them legitimately restores a trade whose ε has not been
// charged yet — a state no live observation matches — which is why the
// expectations here derive from the committed records themselves rather
// than from live state snapshots.
func TestWALTortureBudgetRecovery(t *testing.T) {
	const eps = 1e15
	dir := t.TempDir()
	opts := fastWalOptions(dir)
	opts.EpsilonBudget = eps
	p := New(opts)
	m, err := p.Create(Spec{ID: "btort"})
	if err != nil {
		t.Fatal(err)
	}
	register(t, m, 3)
	for i := 0; i < 2; i++ {
		if _, err := m.Trade(context.Background(), demoBuyer(80+10*float64(i), 0.8), nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.TopUpBudget("s01", 2.5); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 4; i++ {
		if _, err := m.Trade(context.Background(), demoBuyer(80+10*float64(i), 0.8), nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()

	walPath := filepath.Join(dir, "btort"+walExt)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	type recInfo struct {
		end     int64
		kind    string
		seller  string       // register records
		charges budgetRecord // budget records
	}
	var recs []recInfo
	if _, _, err := wal.Scan(walPath, func(rec *wal.Record, end int64) error {
		ri := recInfo{end: end, kind: rec.Kind}
		switch rec.Kind {
		case recordRegister:
			var st StoredSeller
			if err := json.Unmarshal(rec.Data, &st); err != nil {
				return err
			}
			ri.seller = st.ID
		case recordBudget:
			if err := json.Unmarshal(rec.Data, &ri.charges); err != nil {
				return err
			}
		}
		recs = append(recs, ri)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// 3 registers + 4 trades × (trade + budget_charge) + 1 top-up.
	if len(recs) != 12 {
		t.Fatalf("wal holds %d records, want 12", len(recs))
	}

	cuts := map[int64]bool{0: true, int64(len(raw)): true}
	prev := int64(0)
	for _, r := range recs {
		for _, c := range []int64{r.end, r.end - 1, r.end + 1, r.end - 3, r.end + 3, (prev + r.end) / 2} {
			if c >= 0 && c <= int64(len(raw)) {
				cuts[c] = true
			}
		}
		prev = r.end
	}
	stride := int64(len(raw) / 64)
	if stride < 1 {
		stride = 1
	}
	for c := int64(0); c <= int64(len(raw)); c += stride {
		cuts[c] = true
	}

	for cut := range cuts {
		// Expectations from the committed prefix: roster, trade count and
		// each seller's exact ε-spent (basic composition sums charges in
		// record order — the same float additions the ledger performs).
		var roster []string
		trades := 0
		spent := map[string]float64{}
		extra := map[string]float64{}
		for _, r := range recs {
			if r.end > cut {
				break
			}
			switch r.kind {
			case recordRegister:
				roster = append(roster, r.seller)
			case recordTrade:
				trades++
			case recordBudget:
				if r.charges.TopUpSeller != "" {
					extra[r.charges.TopUpSeller] += r.charges.TopUpAmount
					continue
				}
				for _, id := range roster {
					if e, ok := r.charges.Charges[id]; ok {
						spent[id] += e
					}
				}
			}
		}

		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, "btort"+walExt), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		subOpts := fastWalOptions(sub)
		subOpts.EpsilonBudget = eps
		p2 := New(subOpts)
		restored, err := p2.RestoreAll()
		if err != nil {
			t.Fatalf("cut %d: RestoreAll: %v", cut, err)
		}
		if len(restored) != 1 || restored[0] != "btort" {
			t.Fatalf("cut %d: restored %v, want [btort]", cut, restored)
		}
		m2, err := p2.Get("btort")
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		v := m2.View()
		if len(v.Trades) != trades {
			t.Fatalf("cut %d: replayed %d trades, committed prefix holds %d", cut, len(v.Trades), trades)
		}
		if len(v.Sellers) != len(roster) {
			t.Fatalf("cut %d: replayed %d sellers, committed prefix holds %d", cut, len(v.Sellers), len(roster))
		}
		for i, s := range v.Sellers {
			if s.ID != roster[i] {
				t.Fatalf("cut %d: roster[%d] = %s, want %s", cut, i, s.ID, roster[i])
			}
			if s.Spent != spent[s.ID] {
				t.Errorf("cut %d: seller %s ε-spent %v, committed prefix says exactly %v", cut, s.ID, s.Spent, spent[s.ID])
			}
			if want := eps + extra[s.ID]; s.Budget != want {
				t.Errorf("cut %d: seller %s budget %v, committed prefix says exactly %v", cut, s.ID, s.Budget, want)
			}
		}
		p2.Close()
	}
}
