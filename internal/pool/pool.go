// Package pool hosts many named Stackelberg-Nash markets in one process —
// the multi-tenant core behind the service's /v2 resource API. The paper
// frames the broker as an intermediary serving many concurrent buyer
// demands over seller populations (§4, Algorithm 1); a Pool realizes that
// at the process level: each market is an independent broker with its own
// seller roster, weight trajectory, ledger and equilibrium solver default,
// while all markets share one worker budget, one metrics registry and one
// snapshot directory.
//
// Concurrency model (per market, inherited from the single-market server):
// reads are lock-free against an immutable copy-on-write View; trades and
// registrations serialize behind the market's own write mutex. Markets
// never share locks — a round wedged in market A cannot delay a quote or a
// trade in market B. The pool-level mutex guards only the name→market map
// and is held for map operations alone, never across a solve or a round.
//
// Lifecycle: Create admits a market under a validated ID; Delete unlinks it
// (new requests stop routing immediately) and then drains in-flight rounds
// under the caller's context. With a snapshot directory configured, every
// market persists to <dir>/<id>.json via atomic write-temp-then-rename:
// after each trade, on SaveAll (shutdown), and restored by RestoreAll on
// boot — a corrupt file is skipped with a logged warning, never fatal.
package pool

import (
	"context"
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"share/internal/budget"
	"share/internal/core"
	"share/internal/market"
	"share/internal/obs"
	"share/internal/solve"
	"share/internal/translog"
	"share/internal/wal"
)

// Options configure a Pool; they are the template every hosted market is
// built from.
type Options struct {
	// Cost is the brokers' translog cost model (nil: paper defaults).
	Cost *translog.Params
	// TestRows sizes each market's held-out synthetic test set (0 → 500).
	TestRows int
	// Update configures Shapley weight refreshing (nil → the paper's
	// ω' = 0.2ω + 0.8·SV with 20 permutations).
	Update *market.WeightUpdate
	// Workers is the shared worker budget: it caps the Shapley valuation
	// pool per trade and the fan-out of each batch quote (0 keeps the
	// Update's own setting for valuation and means GOMAXPROCS for batches).
	Workers int
	// Solver names the default equilibrium backend for new markets
	// ("" → analytic). Unknown names fall back to the default with a log
	// line, mirroring the server's historical behavior.
	Solver string
	// Seed is the base seed; each market derives its own from it unless a
	// Spec pins one explicitly.
	Seed int64
	// TradeTimeout bounds one trading round beyond the caller's context
	// (0 → none).
	TradeTimeout time.Duration
	// TradeConcurrency caps in-flight trades per market (0 →
	// DefaultTradeConcurrency; values < 1 are clamped to 1). Markets may
	// override it at creation via Spec.TradeConcurrency.
	TradeConcurrency int
	// TradeQueue sizes each market's trade waiting room (0 →
	// DefaultTradeQueue; negative → no waiting room, reject the moment
	// every slot is busy). Arrivals past the queue fail with ErrOverloaded.
	// Markets may override it at creation via Spec.TradeQueue.
	TradeQueue int
	// SnapshotDir enables per-market persistence under this directory
	// ("" → disabled).
	SnapshotDir string
	// Durability is the default persistence mode for new markets:
	// "snapshot" (legacy full snapshot per trade), "sync" (per-commit
	// fsync), "group" (batched fsync, the default) or "async" (background
	// flush). Unknown names fall back to the default with a log line,
	// mirroring Solver.
	Durability string
	// CompactRecords triggers WAL compaction — snapshot plus truncate —
	// once a market's segment holds this many records (0 → 256).
	CompactRecords int
	// CompactBytes triggers WAL compaction once a market's segment reaches
	// this size (0 → 4 MiB).
	CompactBytes int64
	// EpsilonBudget is the default per-seller privacy budget (total ε a
	// seller's data may absorb across rounds) for new markets. 0 disables
	// budgeting; markets may override it at creation via
	// Spec.EpsilonBudget. Invalid values fall back to disabled with a log
	// line, mirroring Solver.
	EpsilonBudget float64
	// Composition selects how per-round ε charges compose into a seller's
	// spent total for new markets: "basic" (plain sum, the default) or
	// "advanced" (the strong-composition bound). Unknown names fall back
	// to basic with a log line.
	Composition string
	// DiscountFactor enables similarity-aware pricing: the maximum
	// fraction shaved off a fully redundant seller's Shapley payout
	// (0 disables, must be ≤ 1). Invalid values fall back to disabled
	// with a log line.
	DiscountFactor float64
	// DiscountThreshold is the pairwise-redundancy level below which no
	// discount applies (default 0 discounts any redundancy; must be < 1).
	DiscountThreshold float64
	// Metrics receives per-market and per-backend latency series (nil → a
	// private registry).
	Metrics *obs.Registry
	// Logf receives pool-level log lines (nil → log.Printf).
	Logf func(format string, args ...any)
}

// Pool hosts a set of named markets. Safe for concurrent use.
type Pool struct {
	cost         translog.Params
	testRows     int
	update       *market.WeightUpdate
	workers      int
	solver       solve.Backend
	seed         int64
	tradeTimeout time.Duration
	snapshotDir  string
	durability   Durability
	logf         func(format string, args ...any)

	compactRecords int
	compactBytes   int64
	tradeConc      int
	tradeQueue     int
	epsBudget      float64
	composition    budget.Composition
	discount       *market.DiscountConfig

	metrics   *obs.Registry
	valuation *obs.Endpoint            // Shapley weight-update latency, all markets
	solveObs  map[string]*obs.Endpoint // per-backend equilibrium-solve latency
	walMet    wal.Metrics              // shared WAL series, all markets

	// Per-stage effort series of the general backend's numerical cascade,
	// fed from solve.StatsProvider after each general solve: time spent in
	// Stage-3 inner Nash solves, and cumulative solve/sweep/memo counters.
	stage3Obs    *obs.Endpoint
	stage3Solves *obs.Counter
	stage3Sweeps *obs.Counter
	stage3Memo   *obs.Counter

	mu       sync.RWMutex
	markets  map[string]*Market
	draining bool // set by Drain/Close; Create refuses with ErrDraining
}

// Spec names and configures one market to create.
type Spec struct {
	// ID is the market's name: 1–64 characters from [A-Za-z0-9._-],
	// starting with a letter or digit (it doubles as the snapshot file
	// stem and the metric-label segment).
	ID string
	// Solver overrides the pool's default equilibrium backend for this
	// market ("" → pool default). Unknown names are a field-level error.
	Solver string
	// Seed pins the market's random seed (nil → derived deterministically
	// from the pool seed and the ID).
	Seed *int64
	// Durability overrides the pool's default persistence mode for this
	// market ("" → pool default). Unknown names are a field-level error.
	Durability string
	// TradeConcurrency overrides the pool's in-flight trade cap for this
	// market (nil → pool default; values < 1 are a field-level error).
	TradeConcurrency *int
	// TradeQueue overrides the pool's trade waiting-room size for this
	// market (nil → pool default). An explicit 0 means no waiting room —
	// reject the moment every slot is busy; negative values are a
	// field-level error.
	TradeQueue *int
	// EpsilonBudget overrides the pool's default per-seller privacy
	// budget for this market (nil → pool default; explicit 0 disables
	// budgeting; negative or non-finite values are a field-level error).
	EpsilonBudget *float64
	// Composition overrides the pool's ε-composition rule for this market
	// ("" → pool default). Unknown names are a field-level error.
	Composition string
}

// Info is the externally visible state of one hosted market.
type Info struct {
	ID               string `json:"id"`
	Solver           string `json:"solver"`
	Seed             int64  `json:"seed"`
	Durability       string `json:"durability"`
	TradeConcurrency int    `json:"trade_concurrency"`
	TradeQueue       int    `json:"trade_queue"`
	Sellers          int    `json:"sellers"`
	Trades           int    `json:"trades"`
	Trading          bool   `json:"trading"`
	RosterEpoch      uint64 `json:"roster_epoch"`
	// EpsilonBudget and Composition describe the market's per-seller
	// privacy-budget configuration; both are zero-valued (and omitted on
	// the wire) when budgeting is disabled.
	EpsilonBudget float64 `json:"epsilon_budget,omitempty"`
	Composition   string  `json:"composition,omitempty"`
}

// New builds an empty pool. An unknown Options.Solver falls back to the
// analytic default with a logged warning (CLI entry points validate the
// flag before getting here).
func New(opts Options) *Pool {
	logf := opts.Logf
	if logf == nil {
		logf = log.Printf
	}
	cost := translog.PaperDefaults()
	if opts.Cost != nil {
		cost = *opts.Cost
	}
	testRows := opts.TestRows
	if testRows <= 0 {
		testRows = 500
	}
	upd := opts.Update
	if upd == nil {
		upd = &market.WeightUpdate{Retain: 0.2, Permutations: 20, TruncateTol: 0.005}
	}
	if opts.Workers != 0 {
		u := *upd // don't mutate the caller's struct
		u.Workers = opts.Workers
		upd = &u
	}
	backend, err := solve.Lookup(opts.Solver)
	if err != nil {
		logf("pool: %v; falling back to %q", err, solve.DefaultName)
		backend, _ = solve.Lookup(solve.DefaultName)
	}
	durability, err := ParseDurability(opts.Durability)
	if err != nil {
		logf("pool: %v; falling back to %q", err, DurGroup)
		durability = DurGroup
	}
	compactRecords := opts.CompactRecords
	if compactRecords <= 0 {
		compactRecords = 256
	}
	compactBytes := opts.CompactBytes
	if compactBytes <= 0 {
		compactBytes = 4 << 20
	}
	tradeConc := opts.TradeConcurrency
	if tradeConc == 0 {
		tradeConc = DefaultTradeConcurrency
	}
	if tradeConc < 1 {
		tradeConc = 1
	}
	tradeQueue := opts.TradeQueue
	if tradeQueue == 0 {
		tradeQueue = DefaultTradeQueue
	}
	if tradeQueue < 0 {
		tradeQueue = 0
	}
	composition, err := budget.ParseComposition(opts.Composition)
	if err != nil {
		logf("pool: %v; falling back to %q composition", err, budget.Basic)
		composition = budget.Basic
	}
	epsBudget := opts.EpsilonBudget
	if epsBudget != 0 {
		if err := (budget.Config{Epsilon: epsBudget, Composition: composition}).Validate(); err != nil {
			logf("pool: default epsilon budget: %v; disabling budgets", err)
			epsBudget = 0
		}
	}
	var discount *market.DiscountConfig
	if opts.DiscountFactor != 0 {
		d := &market.DiscountConfig{Factor: opts.DiscountFactor, Threshold: opts.DiscountThreshold}
		if err := d.Validate(); err != nil {
			logf("pool: similarity discount: %v; disabling discounts", err)
		} else {
			discount = d
		}
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = obs.NewRegistry()
	}
	p := &Pool{
		cost:           cost,
		testRows:       testRows,
		update:         upd,
		workers:        opts.Workers,
		solver:         backend,
		seed:           opts.Seed,
		tradeTimeout:   opts.TradeTimeout,
		snapshotDir:    opts.SnapshotDir,
		durability:     durability,
		compactRecords: compactRecords,
		compactBytes:   compactBytes,
		tradeConc:      tradeConc,
		tradeQueue:     tradeQueue,
		epsBudget:      epsBudget,
		composition:    composition,
		discount:       discount,
		logf:           logf,
		metrics:        metrics,
		valuation:      metrics.Endpoint("trade/valuation"),
		solveObs:       make(map[string]*obs.Endpoint, len(solve.Names())),
		stage3Obs:      metrics.Endpoint("solve/general/stage3"),
		stage3Solves:   metrics.Counter("solve/general/stage3_solves"),
		stage3Sweeps:   metrics.Counter("solve/general/stage3_sweeps"),
		stage3Memo:     metrics.Counter("solve/general/memo_hits"),
		walMet: wal.Metrics{
			Fsync:    metrics.Endpoint("wal/fsync"),
			Fsyncs:   metrics.Counter("wal/fsyncs"),
			Records:  metrics.Counter("wal/records"),
			Bytes:    metrics.Counter("wal/bytes"),
			BatchMax: metrics.Gauge("wal/batch_max"),
		},
		markets: make(map[string]*Market),
	}
	for _, name := range solve.Names() {
		p.solveObs[name] = p.metrics.Endpoint("solve/" + name)
	}
	return p
}

// Metrics exposes the registry the pool's markets report into.
func (p *Pool) Metrics() *obs.Registry { return p.metrics }

// observeStage3 folds one general solve's per-stage effort counters into
// the pool's solve/general/* series. Closed-form backends report nothing
// (Stage3Solves == 0) and are skipped.
func (p *Pool) observeStage3(st core.GeneralStats) {
	if st.Stage3Solves <= 0 {
		return
	}
	p.stage3Obs.Observe(st.Stage3Time)
	p.stage3Solves.Add(uint64(st.Stage3Solves))
	p.stage3Sweeps.Add(uint64(st.Stage3Sweeps))
	p.stage3Memo.Add(uint64(st.MemoHits))
}

// Workers reports the pool's shared worker budget (0 = GOMAXPROCS for
// batch fan-out).
func (p *Pool) Workers() int { return p.workers }

// DefaultSolver names the backend new markets default to.
func (p *Pool) DefaultSolver() string { return p.solver.Name() }

// DefaultDurability names the persistence mode new markets default to.
func (p *Pool) DefaultDurability() Durability { return p.durability }

// ValidateID checks that id is usable as a market name, snapshot file stem
// and metric-label segment.
func ValidateID(id string) error {
	if id == "" {
		return &FieldError{Field: "id", Msg: "market id is required"}
	}
	if len(id) > 64 {
		return &FieldError{Field: "id", Msg: fmt.Sprintf("market id exceeds 64 characters (%d)", len(id))}
	}
	for i, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case i > 0 && (r == '.' || r == '_' || r == '-'):
		default:
			return &FieldError{Field: "id", Msg: fmt.Sprintf(
				"market id must match [A-Za-z0-9][A-Za-z0-9._-]*, got %q", id)}
		}
	}
	return nil
}

// deriveSeed maps a market ID onto a deterministic per-market seed so a
// recreated market (same pool seed, same ID) replays the same synthetic
// test set and data sampling.
func (p *Pool) deriveSeed(id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return p.seed + int64(h.Sum64()&0x7fffffff)
}

// Create admits a new empty market under spec.ID.
func (p *Pool) Create(spec Spec) (*Market, error) {
	if err := ValidateID(spec.ID); err != nil {
		return nil, err
	}
	backend := p.solver
	if spec.Solver != "" {
		b, err := solve.Lookup(spec.Solver)
		if err != nil {
			return nil, &FieldError{Field: "solver", Msg: err.Error()}
		}
		backend = b
	}
	durability := p.durability
	if spec.Durability != "" {
		d, err := ParseDurability(spec.Durability)
		if err != nil {
			return nil, &FieldError{Field: "durability", Msg: err.Error()}
		}
		durability = d
	}
	seed := p.deriveSeed(spec.ID)
	if spec.Seed != nil {
		seed = *spec.Seed
	}
	conc := p.tradeConc
	if spec.TradeConcurrency != nil {
		if *spec.TradeConcurrency < 1 {
			return nil, &FieldError{Field: "trade_concurrency", Msg: fmt.Sprintf("must be at least 1, got %d", *spec.TradeConcurrency)}
		}
		conc = *spec.TradeConcurrency
	}
	queue := p.tradeQueue
	if spec.TradeQueue != nil {
		if *spec.TradeQueue < 0 {
			return nil, &FieldError{Field: "trade_queue", Msg: fmt.Sprintf("must be non-negative, got %d", *spec.TradeQueue)}
		}
		queue = *spec.TradeQueue
	}
	composition := p.composition
	if spec.Composition != "" {
		c, err := budget.ParseComposition(spec.Composition)
		if err != nil {
			return nil, &FieldError{Field: "composition", Msg: err.Error()}
		}
		composition = c
	}
	epsBudget := p.epsBudget
	if spec.EpsilonBudget != nil {
		epsBudget = *spec.EpsilonBudget
	}
	if epsBudget != 0 {
		if err := (budget.Config{Epsilon: epsBudget, Composition: composition}).Validate(); err != nil {
			return nil, &FieldError{Field: "epsilon_budget", Msg: err.Error()}
		}
	}
	m := p.newMarket(spec.ID, backend, seed, durability, conc, queue, epsBudget, composition)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return nil, fmt.Errorf("market %q: %w", spec.ID, ErrDraining)
	}
	if _, ok := p.markets[spec.ID]; ok {
		return nil, fmt.Errorf("market %q: %w", spec.ID, ErrMarketExists)
	}
	p.markets[spec.ID] = m
	return m, nil
}

// Get returns the named market or ErrMarketNotFound.
func (p *Pool) Get(id string) (*Market, error) {
	p.mu.RLock()
	m := p.markets[id]
	p.mu.RUnlock()
	if m == nil {
		return nil, fmt.Errorf("market %q: %w", id, ErrMarketNotFound)
	}
	return m, nil
}

// List reports every hosted market, sorted by ID.
func (p *Pool) List() []Info {
	p.mu.RLock()
	ms := make([]*Market, 0, len(p.markets))
	for _, m := range p.markets {
		ms = append(ms, m)
	}
	p.mu.RUnlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].id < ms[j].id })
	out := make([]Info, len(ms))
	for i, m := range ms {
		out[i] = m.Info()
	}
	return out
}

// Delete unlinks the named market — new requests stop routing to it
// immediately — then drains its in-flight rounds under ctx. When the drain
// completes (even after Delete has returned with ctx's error) the market's
// WAL segment is closed and its persisted files — snapshot and segment —
// are removed, so a later RestoreAll (or a recreated market under the same
// name) can never resurrect its state. A ctx expiry means the market is
// gone from the pool but a wedged round may still be finishing in the
// background.
func (p *Pool) Delete(ctx context.Context, id string) error {
	p.mu.Lock()
	m, ok := p.markets[id]
	if ok {
		delete(p.markets, id)
	}
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("market %q: %w", id, ErrMarketNotFound)
	}
	m.close(ErrMarketClosed)
	drained := make(chan struct{})
	go func() {
		m.inFlight.Wait()
		m.closeLog()
		p.removeSnapshot(id)
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("pool: draining market %q: %w", id, ctx.Err())
	}
}

// removeSnapshot deletes a market's persisted files — the snapshot and the
// WAL segment — if persistence is on. An orphaned segment left behind here
// would replay a dead market's trades into a recreated market of the same
// name.
func (p *Pool) removeSnapshot(id string) {
	if p.snapshotDir == "" {
		return
	}
	for _, path := range []string{
		filepath.Join(p.snapshotDir, id+snapshotExt),
		filepath.Join(p.snapshotDir, id+walExt),
	} {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			p.logf("pool: removing %s: %v", path, err)
		}
	}
}
