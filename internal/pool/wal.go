package pool

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"share/internal/dataset"
	"share/internal/market"
	"share/internal/translog"
	"share/internal/wal"
)

// Durability names a market's trade-persistence mode: how a committed
// trade reaches disk before (or after) it is acknowledged.
type Durability string

const (
	// DurSnapshot is the legacy model (PR 2–5): a full market snapshot is
	// atomically rewritten after every committed trade. O(market size)
	// disk work per trade; kept for benchmarking and as a conservative
	// fallback.
	DurSnapshot Durability = "snapshot"
	// DurSync appends one WAL record per commit and fsyncs it inline
	// before acknowledging. Strongest latency-per-commit guarantee, no
	// batching.
	DurSync Durability = "sync"
	// DurGroup (default) appends one WAL record per commit; a dedicated
	// syncer goroutine batches concurrent commits into one fsync and each
	// commit is acknowledged once its covering fsync lands.
	DurGroup Durability = "group"
	// DurAsync appends and acknowledges immediately; the syncer flushes in
	// the background. A crash can lose the most recent commits.
	DurAsync Durability = "async"
)

// ParseDurability maps a durability name onto a Durability ("" → DurGroup,
// the group-commit default).
func ParseDurability(s string) (Durability, error) {
	switch Durability(s) {
	case "":
		return DurGroup, nil
	case DurSnapshot, DurSync, DurGroup, DurAsync:
		return Durability(s), nil
	}
	return "", fmt.Errorf("unknown durability %q (want snapshot, sync, group or async)", s)
}

// walMode maps the WAL-backed durability levels onto the log's commit
// protocol.
func (d Durability) walMode() wal.Mode {
	switch d {
	case DurSync:
		return wal.ModeSync
	case DurAsync:
		return wal.ModeAsync
	default:
		return wal.ModeGroup
	}
}

// walExt is the per-market WAL segment file suffix under the pool's
// snapshot directory.
const walExt = ".wal"

// WAL record kinds.
const (
	// recordRegister logs one pre-trade seller admission (payload:
	// StoredSeller).
	recordRegister = "register"
	// recordTrade logs one committed trading round (payload: tradeRecord).
	recordTrade = "trade"
	// recordJoin logs one mid-life seller admission (payload: joinRecord —
	// the registration plus the admission weight and roster epoch).
	recordJoin = "seller_join"
	// recordLeave logs one seller release at any point of the market's life
	// (payload: leaveRecord).
	recordLeave = "seller_leave"
	// recordBudget logs one privacy-ledger mutation (payload: budgetRecord):
	// the per-seller ε charges of a committed trade, written right after its
	// trade record, or a budget top-up grant.
	recordBudget = "budget_charge"
)

// tradeRecord is the WAL payload of one committed trade: the transaction
// (which carries the post-update weight vector) plus the round's
// manufacturing-cost observation, which the transaction alone does not
// carry but replay must restore into the cost log.
type tradeRecord struct {
	Tx  *market.Transaction  `json:"tx"`
	Obs translog.Observation `json:"obs"`
}

// joinRecord is the WAL payload of one mid-life admission. The recorded
// admission weight is replayed verbatim — replay must reproduce the live
// market's weight vector bit for bit, not re-derive it — and the epoch lets
// replay validate the record against the roster history it lands on.
type joinRecord struct {
	Seller StoredSeller `json:"seller"`
	Weight float64      `json:"weight"`
	Epoch  uint64       `json:"epoch"`
}

// leaveRecord is the WAL payload of one seller release.
type leaveRecord struct {
	ID    string `json:"id"`
	Epoch uint64 `json:"epoch"`
}

// budgetRecord is the WAL payload of one privacy-ledger mutation. Trade
// charges carry Round and the charged sellers' ε; top-ups carry the grant.
// Replay validates Epoch against the roster history it lands on — the same
// discipline as churn records, except a ledger mutation extends the current
// epoch rather than opening the next one — applies the mutation verbatim,
// and cross-checks the recomputed composed spend against Spent bit for bit
// (Go's JSON float round-trip is exact, so any divergence is real state
// drift, not encoding noise).
type budgetRecord struct {
	Round       int                `json:"round,omitempty"`
	Epoch       uint64             `json:"epoch"`
	Charges     map[string]float64 `json:"charges,omitempty"`
	TopUpSeller string             `json:"topup_seller,omitempty"`
	TopUpAmount float64            `json:"topup_amount,omitempty"`
	Spent       map[string]float64 `json:"spent,omitempty"`
}

// walPath is the market's WAL segment path.
func (m *Market) walPath() string {
	return filepath.Join(m.p.snapshotDir, m.id+walExt)
}

// ensureLogLocked opens the market's WAL segment on first use (writeMu
// held). A leftover segment that still holds records belongs to no live
// state — an orphan from a deleted same-named market whose cleanup failed —
// and is truncated with a warning rather than ever replayed into this
// market. If the segment cannot be opened the market downgrades to
// snapshot-per-trade durability so committed trades stay persistent.
// Reports whether a usable log is attached.
func (m *Market) ensureLogLocked() bool {
	if m.log != nil {
		return true
	}
	if m.p.snapshotDir == "" || m.durability == DurSnapshot {
		return false
	}
	err := os.MkdirAll(m.p.snapshotDir, 0o755)
	var l *wal.Log
	if err == nil {
		l, err = wal.Open(m.walPath(), wal.Options{Mode: m.durability.walMode(), Metrics: m.p.walMet})
	}
	if err != nil {
		m.p.logf("pool: market %q: opening wal: %v; falling back to snapshot-per-trade durability", m.id, err)
		m.durability = DurSnapshot
		return false
	}
	if n := l.Records(); n > 0 {
		m.p.logf("pool: market %q: truncating orphaned wal segment (%d stale records)", m.id, n)
		if err := l.Reset(); err != nil {
			m.p.logf("pool: market %q: resetting orphaned wal: %v; falling back to snapshot-per-trade durability", m.id, err)
			l.Close()
			m.durability = DurSnapshot
			return false
		}
	}
	// Until the first compaction the market's whole history lives in the
	// log, which carries records but not configuration. Drop a roster-free
	// spec snapshot next to the fresh segment so a crash-reboot restores
	// the market's solver, seed and durability before replaying — the
	// roster itself replays from the log (every admission is a record).
	if _, err := os.Stat(m.snapshotPath()); errors.Is(err, os.ErrNotExist) {
		seed := m.seed
		spec := &MarketSnapshot{
			Version:    snapshotVersion,
			ID:         m.id,
			Solver:     m.solver.Name(),
			Seed:       &seed,
			Durability: string(m.durability),
			// Budget configuration only — never accounts: the log holds the
			// market's whole charge history, so replay rebuilds every spend
			// from a zeroed ledger.
			EpsilonBudget: m.epsBudget,
			Composition:   m.compositionName(),
		}
		if err := writeSnapshotFile(m.snapshotPath(), spec); err != nil {
			m.p.logf("pool: market %q: writing spec snapshot: %v", m.id, err)
		}
	}
	m.log = l
	return true
}

// attachLogReplay opens the market's WAL segment at restore time and
// replays every record past the snapshot watermark into the market
// (RestoreAll's boot path). requireFresh guards the no-snapshot case: a
// market that already holds state must not absorb a log replay on top of
// it. For snapshot-durability markets a leftover segment (the market
// traded under a WAL mode in a previous life) is folded into a fresh
// snapshot and removed.
func (m *Market) attachLogReplay(walFloor uint64, requireFresh bool) error {
	m.writeMu.Lock()
	defer m.writeMu.Unlock()
	if m.log != nil {
		return fmt.Errorf("pool: market %q already has an open wal segment", m.id)
	}
	if requireFresh && (len(m.sellers) > 0 || m.mkt != nil) {
		return fmt.Errorf("pool: market %q is not fresh; refusing wal replay", m.id)
	}
	path := m.walPath()
	fold := false
	if m.durability == DurSnapshot {
		if _, err := os.Stat(path); err != nil {
			return nil // snapshot-mode market, no segment: nothing to do
		}
		fold = true
	}
	applied := 0
	l, err := wal.Open(path, wal.Options{
		Mode:    m.durability.walMode(),
		MinSeq:  walFloor,
		Metrics: m.p.walMet,
		Replay: func(rec *wal.Record) error {
			if rec.Seq <= walFloor {
				return nil // already reflected in the restored snapshot
			}
			if err := m.applyRecordLocked(rec); err != nil {
				return err
			}
			applied++
			return nil
		},
	})
	if err != nil {
		return err
	}
	if applied > 0 {
		if err := m.publishView(); err != nil {
			l.Close()
			return fmt.Errorf("pool: market %q: replayed wal state rejected: %w", m.id, err)
		}
		m.p.logf("pool: market %q: replayed %d wal record(s) past snapshot seq %d", m.id, applied, walFloor)
	}
	if fold {
		// Snapshot-durability market: persist the replayed state as a
		// fresh snapshot and retire the segment.
		err := writeSnapshotFile(m.snapshotPath(), m.snapshotLocked())
		if cerr := l.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("pool: market %q: folding wal into snapshot: %w", m.id, err)
		}
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			m.p.logf("pool: market %q: removing folded wal segment: %v", m.id, err)
		}
		return nil
	}
	m.log = l
	return nil
}

// applyRecordLocked replays one WAL record into the market (writeMu held).
// The caller publishes the view once after the batch.
func (m *Market) applyRecordLocked(rec *wal.Record) error {
	switch rec.Kind {
	case recordRegister:
		if m.mkt != nil {
			return fmt.Errorf("pool: register record %d after trading began", rec.Seq)
		}
		var st StoredSeller
		if err := json.Unmarshal(rec.Data, &st); err != nil {
			return fmt.Errorf("pool: decoding register record %d: %w", rec.Seq, err)
		}
		d := &dataset.Dataset{X: st.Rows, Y: st.Targets}
		if err := d.Validate(); err != nil {
			return fmt.Errorf("pool: register record %d seller %q: %w", rec.Seq, st.ID, err)
		}
		if len(m.sellers) > 0 && d.NumFeatures() != m.sellers[0].Data.NumFeatures() {
			return fmt.Errorf("pool: register record %d seller %q: %d features per row, roster has %d",
				rec.Seq, st.ID, d.NumFeatures(), m.sellers[0].Data.NumFeatures())
		}
		m.sellers = append(m.sellers, &market.Seller{ID: st.ID, Lambda: st.Lambda, Data: d})
		m.rosterEpoch++
		return nil
	case recordTrade:
		var tr tradeRecord
		if err := json.Unmarshal(rec.Data, &tr); err != nil {
			return fmt.Errorf("pool: decoding trade record %d: %w", rec.Seq, err)
		}
		if m.mkt == nil {
			if len(m.sellers) == 0 {
				return fmt.Errorf("pool: trade record %d with an empty roster", rec.Seq)
			}
			mkt, err := market.New(m.sellers, m.cfg)
			if err != nil {
				return fmt.Errorf("pool: rebuilding market for wal replay: %w", err)
			}
			mkt.SetEpoch(m.rosterEpoch)
			m.mkt = mkt
		}
		if err := m.mkt.ApplyCommitted(tr.Tx, tr.Obs); err != nil {
			return fmt.Errorf("pool: trade record %d: %w", rec.Seq, err)
		}
		return nil
	case recordJoin:
		var jr joinRecord
		if err := json.Unmarshal(rec.Data, &jr); err != nil {
			return fmt.Errorf("pool: decoding join record %d: %w", rec.Seq, err)
		}
		if m.mkt == nil {
			return fmt.Errorf("pool: join record %d before trading began: %w", rec.Seq,
				&market.RosterError{SellerID: jr.Seller.ID, Msg: "mid-life join replayed onto a pre-trade market"})
		}
		d := &dataset.Dataset{X: jr.Seller.Rows, Y: jr.Seller.Targets}
		if err := d.Validate(); err != nil {
			return fmt.Errorf("pool: join record %d seller %q: %w", rec.Seq, jr.Seller.ID, err)
		}
		sel := &market.Seller{ID: jr.Seller.ID, Lambda: jr.Seller.Lambda, Data: d}
		if err := m.mkt.ApplyJoin(sel, jr.Weight, jr.Epoch); err != nil {
			return fmt.Errorf("pool: join record %d: %w", rec.Seq, err)
		}
		m.sellers = append(m.sellers, sel)
		m.rosterEpoch = jr.Epoch
		return nil
	case recordBudget:
		var br budgetRecord
		if err := json.Unmarshal(rec.Data, &br); err != nil {
			return fmt.Errorf("pool: decoding budget record %d: %w", rec.Seq, err)
		}
		if m.ledger == nil {
			return fmt.Errorf("pool: budget record %d replayed into a market without a privacy budget", rec.Seq)
		}
		// Ledger mutations never advance the epoch, so the record must sit
		// exactly on the roster history it was written under — the same
		// validation trades get in ApplyCommitted.
		if br.Epoch != m.rosterEpoch {
			return fmt.Errorf("pool: budget record %d: %w", rec.Seq,
				&market.RosterError{Msg: fmt.Sprintf("record at epoch %d, roster at epoch %d", br.Epoch, m.rosterEpoch)})
		}
		if br.TopUpSeller != "" {
			if _, err := m.ledger.TopUp(br.TopUpSeller, br.TopUpAmount); err != nil {
				return fmt.Errorf("pool: budget record %d: replaying top-up: %w", rec.Seq, err)
			}
			return nil
		}
		ids := make([]string, 0, len(br.Charges))
		for id := range br.Charges {
			ids = append(ids, id)
		}
		sort.Strings(ids) // per-seller accounts are independent; sorted for determinism
		eps := make([]float64, len(ids))
		for i, id := range ids {
			eps[i] = br.Charges[id]
		}
		m.ledger.Charge(ids, eps)
		for id, want := range br.Spent {
			if got := m.ledger.Spent(id); got != want {
				return fmt.Errorf("pool: budget record %d: replayed ε-spent for seller %q is %v, record says %v",
					rec.Seq, id, got, want)
			}
		}
		return nil
	case recordLeave:
		var lr leaveRecord
		if err := json.Unmarshal(rec.Data, &lr); err != nil {
			return fmt.Errorf("pool: decoding leave record %d: %w", rec.Seq, err)
		}
		idx := -1
		for i, sel := range m.sellers {
			if sel.ID == lr.ID {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("pool: leave record %d: %w", rec.Seq,
				&market.RosterError{SellerID: lr.ID, Msg: "unknown seller"})
		}
		if m.mkt != nil {
			if err := m.mkt.ApplyLeave(lr.ID, lr.Epoch); err != nil {
				return fmt.Errorf("pool: leave record %d: %w", rec.Seq, err)
			}
		} else if lr.Epoch != m.rosterEpoch+1 {
			return fmt.Errorf("pool: leave record %d: %w", rec.Seq,
				&market.RosterError{Msg: fmt.Sprintf("epoch %d does not follow roster epoch %d", lr.Epoch, m.rosterEpoch)})
		}
		m.sellers = append(m.sellers[:idx:idx], m.sellers[idx+1:]...)
		m.rosterEpoch = lr.Epoch
		return nil
	default:
		return fmt.Errorf("pool: unknown wal record kind %q (record %d)", rec.Kind, rec.Seq)
	}
}

// persistTradeLocked makes one committed trade durable (writeMu held). WAL
// modes append a record and return its sequence number for the caller to
// Commit outside the lock; snapshot mode (and any WAL failure) falls back
// to the legacy full-snapshot write and returns 0. A committed trade is
// never failed because the disk was — failures log, matching saveLocked.
func (m *Market) persistTradeLocked(tx *market.Transaction, obs translog.Observation) (*wal.Log, uint64) {
	if m.p.snapshotDir == "" {
		return nil, 0
	}
	if !m.ensureLogLocked() {
		m.saveLocked()
		return nil, 0
	}
	seq, err := m.log.Append(recordTrade, tradeRecord{Tx: tx, Obs: obs})
	if err != nil {
		m.p.logf("pool: market %q: wal append failed: %v; writing full snapshot instead", m.id, err)
		m.saveLocked()
		return nil, 0
	}
	if m.ledger != nil {
		if bseq, ok := m.appendTradeChargeLocked(tx); ok {
			seq = bseq // commit the later record; the barrier covers both
		} else {
			// The trade record landed but its charge did not: fall back to a
			// full snapshot (which carries the ledger accounts) so a reboot
			// cannot replay the trade with its ε charge missing.
			m.saveLocked()
			return nil, 0
		}
	}
	m.maybeCompactLocked()
	return m.log, seq
}

// appendTradeChargeLocked writes one committed trade's budget_charge record
// (writeMu held). The charge set derives from the transaction — every
// seller who sold perturbed records at ε > 0 — and the record carries each
// charged seller's post-charge composed spend for the replay cross-check.
func (m *Market) appendTradeChargeLocked(tx *market.Transaction) (uint64, bool) {
	rec := budgetRecord{
		Round:   tx.Round,
		Epoch:   m.rosterEpoch,
		Charges: make(map[string]float64),
		Spent:   make(map[string]float64),
	}
	for i, s := range m.sellers {
		if i < len(tx.Pieces) && i < len(tx.Epsilons) && tx.Pieces[i] > 0 && tx.Epsilons[i] > 0 {
			rec.Charges[s.ID] = tx.Epsilons[i]
			rec.Spent[s.ID] = m.ledger.Spent(s.ID)
		}
	}
	seq, err := m.log.Append(recordBudget, rec)
	if err != nil {
		m.p.logf("pool: market %q: wal budget append failed: %v", m.id, err)
		return 0, false
	}
	return seq, true
}

// persistBudgetLocked logs one standalone ledger mutation — a top-up —
// (writeMu held), falling back to a full snapshot on append failure.
// Snapshot mode saves immediately, like a leave: a crash that forgot a
// granted top-up would wrongly exclude the seller from later rounds.
func (m *Market) persistBudgetLocked(rec budgetRecord) (*wal.Log, uint64) {
	l, seq := m.persistRosterLocked(recordBudget, rec)
	if l == nil && m.p.snapshotDir != "" && m.durability == DurSnapshot {
		m.saveLocked()
	}
	return l, seq
}

// persistRegisterLocked logs one seller admission (writeMu held). Snapshot
// mode keeps the legacy behavior — registrations persist at the next
// SaveAll — so it returns 0.
func (m *Market) persistRegisterLocked(st StoredSeller) (*wal.Log, uint64) {
	return m.persistRosterLocked(recordRegister, st)
}

// persistJoinLocked logs one mid-life admission (writeMu held).
func (m *Market) persistJoinLocked(jr joinRecord) (*wal.Log, uint64) {
	return m.persistRosterLocked(recordJoin, jr)
}

// persistLeaveLocked logs one seller release (writeMu held). Snapshot mode
// falls back to an immediate full snapshot: unlike a registration, a leave
// shrinks state, and waiting for the next SaveAll would let a crash
// resurrect the departed seller.
func (m *Market) persistLeaveLocked(lr leaveRecord) (*wal.Log, uint64) {
	l, seq := m.persistRosterLocked(recordLeave, lr)
	if l == nil && m.p.snapshotDir != "" && m.durability == DurSnapshot {
		m.saveLocked()
	}
	return l, seq
}

// persistRosterLocked appends one roster-mutation record (writeMu held),
// falling back to a full snapshot on append failure.
func (m *Market) persistRosterLocked(kind string, payload any) (*wal.Log, uint64) {
	if m.p.snapshotDir == "" || !m.ensureLogLocked() {
		return nil, 0
	}
	seq, err := m.log.Append(kind, payload)
	if err != nil {
		m.p.logf("pool: market %q: wal append failed: %v; writing full snapshot instead", m.id, err)
		m.saveLocked()
		return nil, 0
	}
	m.maybeCompactLocked()
	return m.log, seq
}

// commitWal waits out one record's durability barrier per the log's mode.
// Called outside writeMu so fsyncs overlap the next round's solve — that
// overlap is what the group-commit syncer batches.
func (m *Market) commitWal(l *wal.Log, seq uint64) {
	if l == nil || seq == 0 {
		return
	}
	if err := l.Commit(seq); err != nil {
		m.p.logf("pool: market %q: wal commit (seq %d): %v", m.id, seq, err)
	}
}

// maybeCompactLocked folds the WAL into a fresh snapshot and truncates the
// segment once it crosses the pool's record-count or byte threshold
// (writeMu held), bounding boot-time replay. The snapshot records the
// covered watermark (WalSeq) so a reboot never replays compacted records.
func (m *Market) maybeCompactLocked() {
	l := m.log
	if l == nil {
		return
	}
	if l.Records() < m.p.compactRecords && l.Size() < m.p.compactBytes {
		return
	}
	if err := writeSnapshotFile(m.snapshotPath(), m.snapshotLocked()); err != nil {
		m.p.logf("pool: market %q: compaction snapshot: %v", m.id, err)
		return
	}
	if err := l.Reset(); err != nil {
		m.p.logf("pool: market %q: truncating wal after compaction: %v", m.id, err)
		return
	}
	m.p.logf("pool: market %q: compacted wal into snapshot (seq %d)", m.id, l.LastSeq())
}

// checkpoint persists the market's snapshot to path and truncates its WAL
// under one write-lock hold, so no record committed between the two steps
// can be lost to the truncation (SaveAll's shutdown path).
func (m *Market) checkpoint(path string) error {
	m.writeMu.Lock()
	defer m.writeMu.Unlock()
	if err := writeSnapshotFile(path, m.snapshotLocked()); err != nil {
		return err
	}
	if m.log != nil {
		if err := m.log.Reset(); err != nil {
			m.p.logf("pool: market %q: truncating wal after checkpoint: %v", m.id, err)
		}
	}
	return nil
}

// closeLog flushes and closes the market's WAL segment, if open.
func (m *Market) closeLog() {
	m.writeMu.Lock()
	defer m.writeMu.Unlock()
	if m.log == nil {
		return
	}
	if err := m.log.Close(); err != nil {
		m.p.logf("pool: market %q: closing wal: %v", m.id, err)
	}
	m.log = nil
}

// Drain marks the pool as shutting down: every hosted market (and any
// future Create) refuses new trades and registrations with ErrDraining,
// and trades parked in admission queues are woken and rejected. In-flight
// rounds keep running — Close waits them out. Safe to call more than once;
// the HTTP layer maps ErrDraining onto 503 + Retry-After so clients fail
// over instead of hanging into a dying process.
func (p *Pool) Drain() {
	p.mu.Lock()
	p.draining = true
	ms := make([]*Market, 0, len(p.markets))
	for _, m := range p.markets {
		ms = append(ms, m)
	}
	p.mu.Unlock()
	for _, m := range ms {
		m.close(ErrDraining)
	}
}

// Close terminally shuts the pool down: Drain, wait out every market's
// in-flight rounds, then flush and close every WAL segment (the shutdown
// hook, after SaveAll). Close is the end of the pool's life — a later
// mutation fails with ErrDraining rather than silently reopening (and
// truncating, as "orphaned") a segment whose flushed history was already
// acknowledged.
func (p *Pool) Close() {
	p.Drain()
	p.mu.RLock()
	ms := make([]*Market, 0, len(p.markets))
	for _, m := range p.markets {
		ms = append(ms, m)
	}
	p.mu.RUnlock()
	for _, m := range ms {
		m.inFlight.Wait()
		m.closeLog()
	}
}
