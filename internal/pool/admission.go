package pool

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"share/internal/obs"
)

// Admission-control defaults for Options.TradeQueue and
// Options.TradeConcurrency (0 in either selects the default).
const (
	// DefaultTradeQueue is the per-market waiting room: trades beyond the
	// concurrency limit queue here; arrivals past it are rejected with
	// ErrOverloaded. Sized so a short burst rides out a slow Shapley round
	// without letting a sustained flood pin unbounded goroutines.
	DefaultTradeQueue = 64
	// DefaultTradeConcurrency is the per-market in-flight trade limit.
	// Trades serialize behind the market's write mutex anyway, so one slot
	// is the honest default; raising it only adds writeMu contention overlap.
	DefaultTradeConcurrency = 1
)

// Bounds on the Retry-After estimate attached to an OverloadError: always
// at least a second (sub-second retries would re-saturate the queue) and
// never more than a minute (beyond that the estimate is noise).
const (
	minRetryAfter = 1 * time.Second
	maxRetryAfter = 60 * time.Second
)

// gate is one market's trade-admission control: a slot semaphore bounding
// in-flight rounds plus a counted waiting room bounding the queue behind
// them. Arrivals past the waiting room are rejected immediately — the
// bounded queue is what keeps a saturating trade flood from pinning
// unbounded goroutines (and their request bodies) while quotes stay
// lock-free and ungated.
type gate struct {
	slots    chan struct{} // semaphore: capacity = in-flight concurrency
	queueCap int           // waiting room size; 0 = reject when all slots busy
	waiting  atomic.Int64  // current waiting-room occupancy

	depth    *obs.Gauge    // market/<id>/queue_depth
	waitObs  *obs.Endpoint // market/<id>/queue_wait — time spent queued
	admitted *obs.Counter  // market/<id>/trades_admitted
	rejected *obs.Counter  // market/<id>/trades_rejected
}

// newGate builds a market's admission gate and registers its obs series.
func newGate(reg *obs.Registry, marketID string, concurrency, queue int) *gate {
	if concurrency < 1 {
		concurrency = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &gate{
		slots:    make(chan struct{}, concurrency),
		queueCap: queue,
		depth:    reg.Gauge("market/" + marketID + "/queue_depth"),
		waitObs:  reg.Endpoint("market/" + marketID + "/queue_wait"),
		admitted: reg.Counter("market/" + marketID + "/trades_admitted"),
		rejected: reg.Counter("market/" + marketID + "/trades_rejected"),
	}
}

// release frees one in-flight slot, waking the longest-waiting queued trade.
func (g *gate) release() { <-g.slots }

// acquireTrade admits one trade through the market's gate, returning the
// release func. The fast path takes a free slot without queueing; otherwise
// the trade joins the bounded waiting room until a slot frees, the caller's
// context expires, or the market starts draining. A full waiting room
// rejects immediately with an OverloadError carrying a Retry-After estimate
// — the caller never blocks on a queue it has no position in.
func (m *Market) acquireTrade(ctx context.Context) (func(), error) {
	g := m.adm
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return g.release, nil
	default:
	}
	pos := g.waiting.Add(1)
	if pos > int64(g.queueCap) {
		g.depth.Set(g.waiting.Add(-1))
		g.rejected.Add(1)
		return nil, m.overloadError(pos)
	}
	g.depth.Set(pos)
	t0 := time.Now()
	defer func() { g.depth.Set(g.waiting.Add(-1)) }()
	select {
	case g.slots <- struct{}{}:
		g.waitObs.Observe(time.Since(t0))
		g.admitted.Add(1)
		return g.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-m.closing:
		return nil, fmt.Errorf("market %q: %w", m.id, m.closeReason())
	}
}

// overloadError builds the rejection for a trade that found the waiting
// room full. The Retry-After estimate is the queue's expected drain time:
// position × the market's observed mean round latency, divided by the slot
// count, clamped to [1s, 60s]. A market that has never traded estimates one
// second — the floor, not a guess at round cost.
func (m *Market) overloadError(pos int64) error {
	mean := m.tradeObs.Stats().Latency.MeanSeconds
	if mean <= 0 {
		mean = 0 // floor below covers the no-history case
	}
	est := time.Duration(float64(pos) * mean / float64(cap(m.adm.slots)) * float64(time.Second))
	if est < minRetryAfter {
		est = minRetryAfter
	}
	if est > maxRetryAfter {
		est = maxRetryAfter
	}
	return &OverloadError{Market: m.id, Queue: m.adm.queueCap, RetryAfter: est}
}
