package pool

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"share/internal/wal"
)

// Roster-churn persistence and isolation tests: the WAL torture sweep
// extended over seller_join / seller_leave frames, the checkpoint
// round-trip of a churned market, and the churn-vs-quote isolation test
// that `make race` runs under the race detector.

// churnHistory drives one market through a history exercising every roster
// record kind: pre-trade registrations, a pre-trade removal, trades,
// mid-life joins and mid-life leaves. It returns the canonical state after
// each WAL record, index 0 being the empty market.
func churnHistory(t *testing.T, m *Market) []string {
	t.Helper()
	states := []string{canonicalState(t, m)}
	step := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		states = append(states, canonicalState(t, m))
	}
	reg := func(id string, lambda float64) {
		t.Helper()
		_, err := m.RegisterSeller(Registration{ID: id, Lambda: lambda, SyntheticRows: 40})
		step(err)
	}
	trade := func(n float64) {
		t.Helper()
		_, err := m.Trade(context.Background(), demoBuyer(n, 0.8), nil, nil)
		step(err)
	}
	reg("s01", 0.3)
	reg("s02", 0.4)
	reg("s03", 0.5)
	step(m.RemoveSeller("s02")) // pre-trade leave
	trade(80)
	trade(90)
	reg("j01", 0.45) // mid-life join
	trade(100)
	step(m.RemoveSeller("s01")) // mid-life leave
	reg("j02", 0.35)
	trade(110)
	return states
}

// TestWALTortureRecoveryChurn runs the crash-recovery torture sweep over a
// history whose log holds every record kind — register, pre-trade and
// mid-life seller_leave, mid-life seller_join, trade — truncating the
// segment at record boundaries, off-by-one and mid-record cuts, and
// asserting that replay restores exactly the longest committed prefix,
// roster epoch included.
func TestWALTortureRecoveryChurn(t *testing.T) {
	dir := t.TempDir()
	opts := fastWalOptions(dir)
	p := New(opts)
	m, err := p.Create(Spec{ID: "churn"})
	if err != nil {
		t.Fatal(err)
	}
	states := churnHistory(t, m)
	p.Close()

	walPath := filepath.Join(dir, "churn"+walExt)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	var ends []int64
	if _, _, err := wal.Scan(walPath, func(_ *wal.Record, end int64) error {
		ends = append(ends, end)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(ends) != len(states)-1 {
		t.Fatalf("wal holds %d records, want %d", len(ends), len(states)-1)
	}

	cuts := map[int64]bool{0: true, int64(len(raw)): true}
	prev := int64(0)
	for _, e := range ends {
		for _, c := range []int64{e, e - 1, e + 1, e - 3, e + 3, (prev + e) / 2} {
			if c >= 0 && c <= int64(len(raw)) {
				cuts[c] = true
			}
		}
		prev = e
	}
	stride := int64(len(raw) / 64)
	if stride < 1 {
		stride = 1
	}
	for c := int64(0); c <= int64(len(raw)); c += stride {
		cuts[c] = true
	}

	for cut := range cuts {
		want := 0
		for _, e := range ends {
			if e <= cut {
				want++
			}
		}
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, "churn"+walExt), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		p2 := New(fastWalOptions(sub))
		restored, err := p2.RestoreAll()
		if err != nil {
			t.Fatalf("cut %d: RestoreAll: %v", cut, err)
		}
		if len(restored) != 1 || restored[0] != "churn" {
			t.Fatalf("cut %d: restored %v, want [churn]", cut, restored)
		}
		m2, err := p2.Get("churn")
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got := canonicalState(t, m2); got != states[want] {
			t.Fatalf("cut %d: replayed state diverges from the %d-record reference\n got: %.200s\nwant: %.200s",
				cut, want, got, states[want])
		}
		p2.Close()
	}
}

// TestChurnSurvivesCheckpoint pins the snapshot side of roster churn: after
// mid-life joins and leaves, SaveAll folds the whole history — roster epoch
// included — into the snapshot and truncates the log, and the rebooted
// market resumes at the same epoch, keeps trading, and keeps churning.
func TestChurnSurvivesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	p := New(fastWalOptions(dir))
	m, err := p.Create(Spec{ID: "ckpt"})
	if err != nil {
		t.Fatal(err)
	}
	churnHistory(t, m)
	want := canonicalState(t, m)
	wantEpoch := m.Info().RosterEpoch
	if wantEpoch == 0 {
		t.Fatal("churned market reports roster epoch 0")
	}
	if err := p.SaveAll(); err != nil {
		t.Fatal(err)
	}
	p.Close()
	// The checkpoint folded everything into the snapshot: replay must not
	// be needed, so an (empty) segment plus the snapshot is the whole truth.
	snap, err := ReadSnapshotFile(filepath.Join(dir, "ckpt.json"))
	if err != nil {
		t.Fatal(err)
	}
	if snap.RosterEpoch != wantEpoch {
		t.Fatalf("snapshot roster epoch = %d, want %d", snap.RosterEpoch, wantEpoch)
	}

	p2 := New(fastWalOptions(dir))
	if _, err := p2.RestoreAll(); err != nil {
		t.Fatal(err)
	}
	m2, err := p2.Get("ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if got := canonicalState(t, m2); got != want {
		t.Fatalf("restored state diverges\n got: %.200s\nwant: %.200s", got, want)
	}
	if got := m2.Info().RosterEpoch; got != wantEpoch {
		t.Fatalf("restored roster epoch = %d, want %d", got, wantEpoch)
	}
	// The restored market is live: it trades and churns, and both advance
	// the epoch from where the snapshot left off.
	if _, err := m2.Trade(context.Background(), demoBuyer(120, 0.8), nil, nil); err != nil {
		t.Fatalf("trade after restore: %v", err)
	}
	if _, err := m2.RegisterSeller(Registration{ID: "j03", Lambda: 0.5, SyntheticRows: 40}); err != nil {
		t.Fatalf("join after restore: %v", err)
	}
	if err := m2.RemoveSeller("j03"); err != nil {
		t.Fatalf("leave after restore: %v", err)
	}
	if got := m2.Info().RosterEpoch; got != wantEpoch+2 {
		t.Fatalf("post-restore churn advanced epoch to %d, want %d", got, wantEpoch+2)
	}
	p2.Close()
}

// TestChurnReplayRejectsSplicedHistory: a join record replayed onto a
// roster history it does not extend (its epoch does not follow) must not
// silently re-number the history — the boot skips the spliced market with a
// logged roster-epoch complaint instead of serving a roster the log never
// described.
func TestChurnReplayRejectsSplicedHistory(t *testing.T) {
	dir := t.TempDir()
	p := New(fastWalOptions(dir))
	m, err := p.Create(Spec{ID: "splice"})
	if err != nil {
		t.Fatal(err)
	}
	register(t, m, 2)
	if _, err := m.Trade(context.Background(), demoBuyer(90, 0.8), nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RegisterSeller(Registration{ID: "j01", Lambda: 0.4, SyntheticRows: 40}); err != nil {
		t.Fatal(err)
	}
	p.Close()
	// Rewrite the segment through the wal package itself, skewing only the
	// join record's epoch, so every frame stays structurally intact and the
	// rejection can only come from the roster-history check.
	walPath := filepath.Join(dir, "splice"+walExt)
	var recs []*wal.Record
	if _, _, err := wal.Scan(walPath, func(r *wal.Record, _ int64) error {
		cp := *r
		cp.Data = append([]byte(nil), r.Data...)
		recs = append(recs, &cp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(walPath); err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(walPath, wal.Options{Mode: wal.ModeSync})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Kind == recordJoin {
			// Skew the epoch so the join no longer extends the history.
			var jr joinRecord
			if err := json.Unmarshal(r.Data, &jr); err != nil {
				t.Fatal(err)
			}
			jr.Epoch += 7
			if _, err := l.Append(r.Kind, jr); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if _, err := l.Append(r.Kind, r.Data); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var warnings []string
	var mu sync.Mutex
	opts := fastWalOptions(dir)
	opts.Logf = func(format string, args ...any) {
		mu.Lock()
		warnings = append(warnings, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	p2 := New(opts)
	restored, err := p2.RestoreAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 0 {
		t.Fatalf("spliced market restored as %v, want it skipped", restored)
	}
	if _, err := p2.Get("splice"); !errors.Is(err, ErrMarketNotFound) {
		t.Fatalf("Get(splice) after spliced boot = %v, want ErrMarketNotFound", err)
	}
	mu.Lock()
	warned := false
	for _, w := range warnings {
		if strings.Contains(w, "epoch") {
			warned = true
		}
	}
	mu.Unlock()
	if !warned {
		t.Fatalf("no epoch complaint in boot warnings %q", warnings)
	}
	p2.Close()
}

// TestChurnQuoteIsolation is the churn-vs-quote race test (`make race` runs
// it under the race detector): while sellers join and leave continuously,
// concurrent quotes, view reads and a live subscriber must always observe a
// consistent roster — matching seller/weight lengths, positive prices —
// because churn swaps the view copy-on-write and never mutates a published
// one.
func TestChurnQuoteIsolation(t *testing.T) {
	p := New(quietOptions())
	defer p.Close()
	m, err := p.Create(Spec{ID: "iso"})
	if err != nil {
		t.Fatal(err)
	}
	register(t, m, 3)
	if _, err := m.Trade(context.Background(), demoBuyer(90, 0.8), nil, nil); err != nil {
		t.Fatal(err)
	}

	const cycles = 40
	ch, cancel := m.Subscribe(4) // deliberately small: drops must stay safe
	defer cancel()
	done := make(chan struct{})
	var consumed int
	go func() {
		defer close(done)
		for range ch {
			consumed++
		}
	}()

	var churners, loopers sync.WaitGroup
	errs := make(chan error, 8)
	stop := make(chan struct{})
	// Churner: join then leave, forever advancing the epoch.
	churners.Add(1)
	go func() {
		defer churners.Done()
		for i := 0; i < cycles; i++ {
			id := fmt.Sprintf("churn-%d", i)
			if _, err := m.RegisterSeller(Registration{ID: id, Lambda: 0.4, SyntheticRows: 40}); err != nil {
				errs <- fmt.Errorf("join %s: %w", id, err)
				return
			}
			if err := m.RemoveSeller(id); err != nil {
				errs <- fmt.Errorf("leave %s: %w", id, err)
				return
			}
		}
	}()
	// Quoters: every quote must solve against some consistent roster.
	for q := 0; q < 2; q++ {
		loopers.Add(1)
		go func() {
			defer loopers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				prof, _, err := m.Quote(context.Background(), demoBuyer(100, 0.8), "")
				if err != nil {
					errs <- fmt.Errorf("quote during churn: %w", err)
					return
				}
				if !(prof.PM > 0) || !(prof.PD > 0) {
					errs <- fmt.Errorf("quote during churn priced PM=%g PD=%g", prof.PM, prof.PD)
					return
				}
			}
		}()
	}
	// View reader: a published view is internally consistent, always.
	loopers.Add(1)
	go func() {
		defer loopers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := m.View()
			if len(v.Sellers) != len(v.Weights) {
				errs <- fmt.Errorf("view holds %d sellers but %d weights", len(v.Sellers), len(v.Weights))
				return
			}
		}
	}()

	churners.Wait()
	close(stop)
	loopers.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	cancel()
	<-done
	if consumed == 0 {
		t.Fatal("subscriber saw no churn events")
	}
	if got, want := m.Info().RosterEpoch, uint64(3+2*cycles); got != want {
		t.Fatalf("roster epoch after churn = %d, want %d", got, want)
	}
}
