package pool

import (
	"context"
	"testing"
)

// A quote through the general backend must feed the solve/general/* effort
// series; the closed-form default must leave them untouched.
func TestGeneralQuoteFeedsStage3Series(t *testing.T) {
	p := New(quietOptions())
	m, err := p.Create(Spec{ID: "general", Solver: "general"})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	register(t, m, 3)

	snap := p.Metrics().Snapshot()
	if got := snap.Counters["solve/general/stage3_solves"]; got != 0 {
		t.Fatalf("stage3_solves = %d before any general solve", got)
	}

	if _, _, err := m.Quote(context.Background(), demoBuyer(120, 0.8), ""); err != nil {
		t.Fatalf("Quote: %v", err)
	}
	snap = p.Metrics().Snapshot()
	if got := snap.Counters["solve/general/stage3_solves"]; got == 0 {
		t.Error("stage3_solves stayed zero after a general quote")
	}
	if got := snap.Counters["solve/general/stage3_sweeps"]; got == 0 {
		t.Error("stage3_sweeps stayed zero after a general quote")
	}
	ep, ok := snap.Endpoints["solve/general/stage3"]
	if !ok || ep.Latency.MaxSeconds <= 0 {
		t.Errorf("solve/general/stage3 latency series empty after a general quote: %+v", ep)
	}

	// An analytic quote against the same pool must not move the counters.
	a, err := p.Create(Spec{ID: "closed-form"})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	register(t, a, 3)
	before := p.Metrics().Snapshot().Counters["solve/general/stage3_solves"]
	if _, _, err := a.Quote(context.Background(), demoBuyer(120, 0.8), ""); err != nil {
		t.Fatalf("analytic Quote: %v", err)
	}
	after := p.Metrics().Snapshot().Counters["solve/general/stage3_solves"]
	if after != before {
		t.Errorf("analytic quote moved stage3_solves from %d to %d", before, after)
	}
}
