package pool

import (
	"context"
	"fmt"
	"time"

	"share/internal/core"
	"share/internal/market"
	"share/internal/solve"
	"share/internal/wal"
)

// Pool-level roster churn and the live event stream. A market's roster is
// mutable over its whole life: RegisterSeller admits sellers mid-trading
// through the inner market's incremental churn path, RemoveSeller releases
// them, and both swap the published View copy-on-write — quotes running
// against the old view finish undisturbed, quotes arriving after the swap
// see the new roster. Subscribers opened with Subscribe receive an Event
// after every committed roster change and trade.

// Event is one entry of a market's live stream.
type Event struct {
	// Type is "roster" (a join or leave) or "weights" (a committed trade
	// moved the weight vector).
	Type string `json:"type"`
	// Market names the emitting market.
	Market string `json:"market"`
	// Epoch is the roster epoch after the event.
	Epoch uint64 `json:"epoch"`
	// Round is the committed round for weights events (0 for roster events).
	Round int `json:"round,omitempty"`
	// Seller and Action describe roster events: who joined or left.
	Seller string `json:"seller,omitempty"`
	Action string `json:"action,omitempty"`
	// Sellers is the roster after the event, in order.
	Sellers []string `json:"sellers"`
	// Weights is the broker's weight vector after the event.
	Weights []float64 `json:"weights"`
	// PM and PD are the prototype equilibrium prices over the post-event
	// roster (the paper's reference buyer for roster events, the committed
	// round's profile for weights events). Zero when no prototype solves.
	PM float64 `json:"pm,omitempty"`
	PD float64 `json:"pd,omitempty"`
}

// RemoveSeller releases the identified seller from the roster. Before the
// first trade the seller is simply unregistered (down to an empty roster);
// mid-life the inner market applies the incremental leave (the last seller
// cannot be removed). Unknown IDs return a *market.RosterError. The removal
// is logged to the WAL like any other roster mutation, so replay reproduces
// the exact roster history.
func (m *Market) RemoveSeller(id string) error {
	if err := m.begin(); err != nil {
		return err
	}
	defer m.end()
	l, seq, err := m.removeLocked(id)
	if err != nil {
		return err
	}
	m.commitWal(l, seq)
	return nil
}

// removeLocked is RemoveSeller's write-lock section.
func (m *Market) removeLocked(id string) (*wal.Log, uint64, error) {
	m.writeMu.Lock()
	defer m.writeMu.Unlock()
	idx := -1
	for i, sel := range m.sellers {
		if sel.ID == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, 0, fmt.Errorf("seller %q: %w", id, ErrSellerNotFound)
	}
	if m.mkt != nil {
		if err := m.mkt.RemoveSeller(id); err != nil {
			return nil, 0, err
		}
		m.sellers = append(m.sellers[:idx:idx], m.sellers[idx+1:]...)
		m.rosterEpoch = m.mkt.Epoch()
		m.publishChurnView(solve.RosterDelta{Epoch: m.rosterEpoch, Index: idx})
	} else {
		m.sellers = append(m.sellers[:idx:idx], m.sellers[idx+1:]...)
		m.rosterEpoch++
		if err := m.publishView(); err != nil {
			// An already-admitted roster minus one seller re-validates by
			// construction; a failure here means the view could not be
			// rebuilt at all. Keep the removal and log — the next publish
			// refreshes the view.
			m.p.logf("pool: market %q: view rebuild after removing %q: %v", m.id, id, err)
		}
	}
	wl, wseq := m.persistLeaveLocked(leaveRecord{ID: id, Epoch: m.rosterEpoch})
	m.emitRoster("leave", id)
	m.p.logf("pool: market %q released seller %q (epoch %d)", m.id, id, m.rosterEpoch)
	return wl, wseq, nil
}

// publishChurnView swaps the view after a mid-life roster change without
// re-precomputing from scratch: each backend prototype of the outgoing view
// is cloned and incrementally re-prepared with the same delta the inner
// market committed — the O(1)-per-backend path the PR exists for. Any
// failure falls back to a full rebuild. Must be called with writeMu held.
func (m *Market) publishChurnView(d solve.RosterDelta) {
	t0 := time.Now()
	old := m.view.Load()
	v, err := m.buildChurnView(old, d)
	if err != nil {
		m.p.logf("pool: market %q: incremental view swap: %v; rebuilding from scratch", m.id, err)
		if err := m.publishView(); err != nil {
			m.p.logf("pool: market %q: view rebuild after churn: %v (serving stale view until next publish)", m.id, err)
		}
		return
	}
	m.view.Store(v)
	m.rosterGauge.Set(int64(len(v.Sellers)))
	m.updateBudgetGauges(v)
	m.reprepObs.Observe(time.Since(t0))
}

// buildChurnView derives the post-churn view from the outgoing one: roster
// and weights re-read from the inner market, the ledger carried over (churn
// commits no trade), and every solver prototype re-prepared incrementally.
func (m *Market) buildChurnView(old *View, d solve.RosterDelta) (*View, error) {
	if old == nil || old.Protos == nil {
		return nil, &market.RosterError{Msg: "no prepared view to re-prepare"}
	}
	v := &View{Trading: m.mkt != nil, Epoch: m.rosterEpoch}
	v.Weights = m.mkt.Weights()
	v.Trades = old.Trades // immutable by contract; churn does not trade
	v.Sellers = m.sellerStates(v.Weights, v.Trades)
	v.Protos = make(map[string]solve.Prepared, len(old.Protos))
	for name, proto := range old.Protos {
		np := proto.Clone()
		if err := np.Reprepare(d); err != nil {
			return nil, err
		}
		v.Protos[name] = np
	}
	return v, nil
}

// Subscribe opens a live event channel with the given buffer (≤ 0 selects
// 16). Events published while the buffer is full are dropped for that
// subscriber — a stalled consumer can fall behind but can never stall the
// market's write path. The returned cancel closes the channel and releases
// the slot; it is safe to call more than once.
func (m *Market) Subscribe(buf int) (<-chan Event, func()) {
	if buf <= 0 {
		buf = 16
	}
	ch := make(chan Event, buf)
	m.subMu.Lock()
	id := m.nextSub
	m.nextSub++
	m.subs[id] = ch
	m.subGauge.Set(int64(len(m.subs)))
	m.subMu.Unlock()
	cancel := func() {
		m.subMu.Lock()
		defer m.subMu.Unlock()
		if _, ok := m.subs[id]; !ok {
			return
		}
		delete(m.subs, id)
		m.subGauge.Set(int64(len(m.subs)))
		close(ch)
	}
	return ch, cancel
}

// emit fans one event out to every subscriber without blocking. Sends and
// channel closes are both serialized under subMu, so emit never races a
// cancel.
func (m *Market) emit(ev Event) {
	m.subMu.Lock()
	defer m.subMu.Unlock()
	for _, ch := range m.subs {
		select {
		case ch <- ev:
		default: // subscriber behind; drop
		}
	}
}

// snapshotEvent seeds an event with the just-published view's roster state.
func (m *Market) snapshotEvent(typ string) Event {
	v := m.view.Load()
	ev := Event{Type: typ, Market: m.id, Epoch: v.Epoch, Weights: v.Weights}
	ev.Sellers = make([]string, len(v.Sellers))
	for i, s := range v.Sellers {
		ev.Sellers[i] = s.ID
	}
	return ev
}

// emitRoster publishes a roster event, with prototype prices solved against
// the new view's default backend when the roster is non-empty. Called under
// writeMu after the view swap; churn is rare, so the prototype solve's cost
// (microseconds on the closed forms) stays off every hot path.
func (m *Market) emitRoster(action, seller string) {
	if !m.hasSubscribers() {
		return
	}
	ev := m.snapshotEvent("roster")
	ev.Action = action
	ev.Seller = seller
	if proto, ok := m.view.Load().Protos[m.solver.Name()]; ok {
		prep := proto.Clone()
		prep.SetBuyer(core.PaperBuyer())
		if prof, err := prep.Solve(context.Background()); err == nil {
			ev.PM, ev.PD = prof.PM, prof.PD
		}
	}
	m.emit(ev)
}

// emitWeights publishes a weight-trajectory event for one committed trade.
func (m *Market) emitWeights(tx *market.Transaction) {
	if !m.hasSubscribers() {
		return
	}
	ev := m.snapshotEvent("weights")
	ev.Round = tx.Round
	if tx.Profile != nil {
		ev.PM, ev.PD = tx.Profile.PM, tx.Profile.PD
	}
	m.emit(ev)
}

// hasSubscribers reports whether anyone is listening, letting emitters skip
// event assembly (and the roster prototype solve) entirely when nobody is.
func (m *Market) hasSubscribers() bool {
	m.subMu.Lock()
	defer m.subMu.Unlock()
	return len(m.subs) > 0
}
