package shapley

import (
	"math"
	"testing"
	"testing/quick"

	"share/internal/stat"
)

// additiveUtility returns a utility where each player contributes a fixed
// amount independently — Shapley values equal the contributions exactly.
func additiveUtility(contrib []float64) Utility {
	return func(coalition []int) float64 {
		var s float64
		for _, i := range coalition {
			s += contrib[i]
		}
		return s
	}
}

func TestExactAdditiveGame(t *testing.T) {
	contrib := []float64{1, 2, 3, 4}
	sv, err := Exact(4, additiveUtility(contrib))
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	for i, want := range contrib {
		if math.Abs(sv[i]-want) > 1e-12 {
			t.Errorf("SV[%d] = %v, want %v", i, sv[i], want)
		}
	}
}

func TestExactGloveGame(t *testing.T) {
	// Classic glove game: players 0,1 own left gloves, player 2 a right
	// glove; a pair is worth 1. Known Shapley values: (1/6, 1/6, 2/3).
	u := func(coalition []int) float64 {
		var left, right int
		for _, p := range coalition {
			if p == 2 {
				right++
			} else {
				left++
			}
		}
		if left >= 1 && right >= 1 {
			return 1
		}
		return 0
	}
	sv, err := Exact(3, u)
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	want := []float64{1.0 / 6, 1.0 / 6, 2.0 / 3}
	for i := range want {
		if math.Abs(sv[i]-want[i]) > 1e-12 {
			t.Errorf("glove SV[%d] = %v, want %v", i, sv[i], want[i])
		}
	}
}

func TestExactRejectsBadInput(t *testing.T) {
	if _, err := Exact(0, additiveUtility(nil)); err == nil {
		t.Error("Exact accepted zero players")
	}
	if _, err := Exact(31, additiveUtility(make([]float64, 31))); err == nil {
		t.Error("Exact accepted 31 players")
	}
}

// Efficiency axiom: Shapley values sum to v(grand) − v(∅).
func TestExactEfficiencyProperty(t *testing.T) {
	rng := stat.NewRand(1)
	prop := func(seed int64) bool {
		r := stat.NewRand(seed)
		m := 2 + r.Intn(6)
		// Random supermodular-ish utility: value of a coalition is a random
		// but fixed function of its bitmask.
		vals := make([]float64, 1<<uint(m))
		for i := range vals {
			vals[i] = r.Float64() * 10
		}
		vals[0] = r.Float64() // arbitrary v(∅)
		u := func(coalition []int) float64 {
			mask := 0
			for _, p := range coalition {
				mask |= 1 << uint(p)
			}
			return vals[mask]
		}
		sv, err := Exact(m, u)
		if err != nil {
			return false
		}
		var total float64
		for _, v := range sv {
			total += v
		}
		want := vals[len(vals)-1] - vals[0]
		return math.Abs(total-want) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Symmetry axiom: interchangeable players receive equal values.
func TestExactSymmetry(t *testing.T) {
	// Players 0 and 1 are symmetric (both contribute 5); player 2
	// contributes 1.
	sv, err := Exact(3, additiveUtility([]float64{5, 5, 1}))
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	if math.Abs(sv[0]-sv[1]) > 1e-12 {
		t.Errorf("symmetric players got %v and %v", sv[0], sv[1])
	}
}

// Null player axiom: a player who never changes the utility gets zero.
func TestExactNullPlayer(t *testing.T) {
	sv, err := Exact(4, additiveUtility([]float64{3, 0, 2, 7}))
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	if math.Abs(sv[1]) > 1e-12 {
		t.Errorf("null player received %v", sv[1])
	}
}

func TestMonteCarloConvergesToExact(t *testing.T) {
	rng := stat.NewRand(42)
	u := func(coalition []int) float64 {
		// Superadditive: quadratic in coalition size plus member identity.
		var s float64
		for _, p := range coalition {
			s += float64(p + 1)
		}
		return s + float64(len(coalition)*len(coalition))
	}
	exact, err := Exact(5, u)
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	mc, err := MonteCarlo(5, u, 20_000, rng)
	if err != nil {
		t.Fatalf("MonteCarlo: %v", err)
	}
	for i := range exact {
		if math.Abs(mc[i]-exact[i]) > 0.15 {
			t.Errorf("MC SV[%d] = %v, exact %v", i, mc[i], exact[i])
		}
	}
}

func TestMonteCarloEfficiency(t *testing.T) {
	// The permutation estimator preserves efficiency exactly per
	// permutation, hence exactly in the average.
	rng := stat.NewRand(7)
	contrib := []float64{2, 4, 6}
	u := additiveUtility(contrib)
	sv, err := MonteCarlo(3, u, 50, rng)
	if err != nil {
		t.Fatalf("MonteCarlo: %v", err)
	}
	var total float64
	for _, v := range sv {
		total += v
	}
	if math.Abs(total-12) > 1e-9 {
		t.Errorf("MC efficiency violated: sum = %v, want 12", total)
	}
}

func TestMonteCarloValidation(t *testing.T) {
	u := additiveUtility([]float64{1})
	if _, err := MonteCarlo(0, u, 10, stat.NewRand(1)); err == nil {
		t.Error("accepted zero players")
	}
	if _, err := MonteCarlo(1, u, 0, stat.NewRand(1)); err == nil {
		t.Error("accepted zero permutations")
	}
	if _, err := MonteCarlo(1, u, 10, nil); err == nil {
		t.Error("accepted nil rng")
	}
}

func TestTruncatedMonteCarloSkipsTail(t *testing.T) {
	// Utility saturates once any two players are present; truncation should
	// cut most evaluations while matching plain MC closely.
	rng := stat.NewRand(9)
	var calls int
	u := func(coalition []int) float64 {
		calls++
		if len(coalition) >= 2 {
			return 1
		}
		return float64(len(coalition)) * 0.4
	}
	m := 30
	calls = 0
	if _, err := TruncatedMonteCarlo(m, u, 50, 1e-9, rng); err != nil {
		t.Fatalf("TruncatedMonteCarlo: %v", err)
	}
	truncCalls := calls
	calls = 0
	if _, err := MonteCarlo(m, u, 50, rng); err != nil {
		t.Fatalf("MonteCarlo: %v", err)
	}
	fullCalls := calls
	if truncCalls >= fullCalls/2 {
		t.Errorf("truncation saved too little: %d vs %d calls", truncCalls, fullCalls)
	}
}

func TestTruncatedMatchesExactOnSaturatingGame(t *testing.T) {
	rng := stat.NewRand(11)
	u := func(coalition []int) float64 {
		if len(coalition) >= 1 {
			return 1
		}
		return 0
	}
	// Every player's SV is 1/m by symmetry.
	m := 6
	sv, err := TruncatedMonteCarlo(m, u, 5000, 1e-12, rng)
	if err != nil {
		t.Fatalf("TruncatedMonteCarlo: %v", err)
	}
	for i, v := range sv {
		if math.Abs(v-1.0/6) > 0.03 {
			t.Errorf("SV[%d] = %v, want 1/6", i, v)
		}
	}
}

func TestNormalize(t *testing.T) {
	// Ordering preserved, all positive, sums to 1.
	out := Normalize([]float64{1, 3, 2})
	if !(out[1] > out[2] && out[2] > out[0]) {
		t.Errorf("Normalize lost ordering: %v", out)
	}
	var total float64
	for _, v := range out {
		if v <= 0 {
			t.Errorf("non-positive weight: %v", out)
		}
		total += v
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("Normalize sum = %v", total)
	}
	// Negative inputs still produce positive weights with order preserved.
	out = Normalize([]float64{-5, 1})
	if out[0] <= 0 || out[1] <= out[0] {
		t.Errorf("Normalize on negatives = %v", out)
	}
	// Constant input degrades to uniform.
	out = Normalize([]float64{-1, -1, -1})
	for _, v := range out {
		if math.Abs(v-1.0/3) > 1e-9 {
			t.Errorf("constant Normalize = %v, want uniform", out)
		}
	}
	// Tiny spreads still differentiate (no floor collapse): values a hair
	// apart must not normalize to uniform.
	out = Normalize([]float64{1e-9, 3e-9})
	if math.Abs(out[1]-out[0]) < 0.1 {
		t.Errorf("tiny-spread Normalize collapsed: %v", out)
	}
	if Normalize(nil) != nil {
		t.Error("Normalize(nil) should be nil")
	}
}
