package shapley_test

import (
	"fmt"

	"share/internal/shapley"
	"share/internal/stat"
)

// The classic glove game: two players hold left gloves, one holds a right
// glove; only a pair has value. The right-glove holder captures 2/3 of the
// surplus — scarcity is rewarded.
func ExampleExact() {
	u := func(coalition []int) float64 {
		var left, right int
		for _, p := range coalition {
			if p == 2 {
				right++
			} else {
				left++
			}
		}
		if left >= 1 && right >= 1 {
			return 1
		}
		return 0
	}
	sv, err := shapley.Exact(3, u)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("left:  %.4f\n", sv[0])
	fmt.Printf("left:  %.4f\n", sv[1])
	fmt.Printf("right: %.4f\n", sv[2])
	// Output:
	// left:  0.1667
	// left:  0.1667
	// right: 0.6667
}

// Monte Carlo estimation preserves the efficiency axiom exactly: values sum
// to the grand coalition's utility.
func ExampleMonteCarlo() {
	contrib := []float64{2, 3, 5}
	u := func(coalition []int) float64 {
		var s float64
		for _, p := range coalition {
			s += contrib[p]
		}
		return s
	}
	sv, err := shapley.MonteCarlo(3, u, 200, stat.NewRand(1))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("sum = %.1f\n", sv[0]+sv[1]+sv[2])
	// Output:
	// sum = 10.0
}
