// Package shapley computes Shapley values (Def. 3.2 of the paper) for
// arbitrary coalition utility functions. Share uses it twice: to score
// individual data points when building the quality-sorted seller partition
// (§6.1), and to measure each seller's contribution to the trained data
// product so the broker can update dataset weights after a transaction
// (ω' = 0.2·ω + 0.8·SV, §5.2).
//
// Exact computation enumerates all 2^(m−1) marginal coalitions and is
// feasible only for small player counts; the Monte Carlo permutation
// estimator of Castro, Gómez & Tejada (2009) scales to the thousands of
// players the efficiency experiments require, and the truncated variant
// stops scanning a permutation once the running coalition's utility is
// within tolerance of the grand coalition's.
package shapley

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"share/internal/stat"
)

// Utility evaluates a coalition, given as a set of player indices in
// ascending order. Implementations must be deterministic for a fixed
// coalition within one Shapley computation; the empty coalition must be
// valid.
type Utility func(coalition []int) float64

// ErrTooManyPlayers reports an Exact call whose player count would require
// more than 2^30 coalition evaluations.
var ErrTooManyPlayers = errors.New("shapley: too many players for exact computation (max 30)")

// Exact computes exact Shapley values for m players by full subset
// enumeration, evaluating the utility once per subset (2^m evaluations) and
// distributing marginals per Def. 3.2. m must be at most 30.
func Exact(m int, u Utility) ([]float64, error) {
	if m <= 0 {
		return nil, fmt.Errorf("shapley: invalid player count %d", m)
	}
	if m > 30 {
		return nil, ErrTooManyPlayers
	}
	// Cache every subset's utility keyed by bitmask.
	vals := make([]float64, 1<<uint(m))
	buf := make([]int, 0, m)
	for mask := 0; mask < len(vals); mask++ {
		buf = buf[:0]
		for i := 0; i < m; i++ {
			if mask&(1<<uint(i)) != 0 {
				buf = append(buf, i)
			}
		}
		vals[mask] = u(buf)
	}
	// SVᵢ = Σ_{S ∌ i} |S|!·(m−1−|S|)!/m! · (v(S∪{i}) − v(S)).
	fact := make([]float64, m+1)
	fact[0] = 1
	for i := 1; i <= m; i++ {
		fact[i] = fact[i-1] * float64(i)
	}
	sv := make([]float64, m)
	for i := 0; i < m; i++ {
		bit := 1 << uint(i)
		for mask := 0; mask < len(vals); mask++ {
			if mask&bit != 0 {
				continue
			}
			s := bits.OnesCount(uint(mask))
			w := fact[s] * fact[m-1-s] / fact[m]
			sv[i] += w * (vals[mask|bit] - vals[mask])
		}
	}
	return sv, nil
}

// MonteCarlo estimates Shapley values with the permutation-sampling
// estimator: for each of `permutations` random orderings it scans players in
// order, crediting each with the marginal utility of joining the running
// coalition. The estimate is unbiased; its standard error shrinks as
// 1/√permutations. The paper's experiments use 100 permutations.
func MonteCarlo(m int, u Utility, permutations int, rng *rand.Rand) ([]float64, error) {
	return monteCarlo(context.Background(), m, u, permutations, rng, math.Inf(1))
}

// MonteCarloCtx is MonteCarlo with cooperative cancellation: ctx is checked
// once per permutation, so a canceled estimate returns ctx.Err() within one
// permutation's work. Results are bit-identical to MonteCarlo when ctx is
// never canceled.
func MonteCarloCtx(ctx context.Context, m int, u Utility, permutations int, rng *rand.Rand) ([]float64, error) {
	return monteCarlo(ctx, m, u, permutations, rng, math.Inf(1))
}

// TruncatedMonteCarlo is MonteCarlo with per-permutation truncation: once the
// running coalition's utility is within tol of the grand coalition's, all
// remaining players in the permutation are credited zero marginal and the
// (expensive) utility evaluations are skipped. This is the standard
// Truncated MC Shapley speedup and is what makes the m = 10,000 efficiency
// experiments tractable.
func TruncatedMonteCarlo(m int, u Utility, permutations int, tol float64, rng *rand.Rand) ([]float64, error) {
	return TruncatedMonteCarloCtx(context.Background(), m, u, permutations, tol, rng)
}

// TruncatedMonteCarloCtx is TruncatedMonteCarlo with per-permutation
// cancellation (see MonteCarloCtx).
func TruncatedMonteCarloCtx(ctx context.Context, m int, u Utility, permutations int, tol float64, rng *rand.Rand) ([]float64, error) {
	if tol < 0 {
		tol = 0
	}
	return monteCarlo(ctx, m, u, permutations, rng, tol)
}

func monteCarlo(ctx context.Context, m int, u Utility, permutations int, rng *rand.Rand, tol float64) ([]float64, error) {
	if m <= 0 {
		return nil, fmt.Errorf("shapley: invalid player count %d", m)
	}
	if permutations <= 0 {
		return nil, fmt.Errorf("shapley: invalid permutation count %d", permutations)
	}
	if rng == nil {
		return nil, errors.New("shapley: nil random source")
	}
	var grand float64
	truncating := !math.IsInf(tol, 1)
	if truncating {
		full := make([]int, m)
		for i := range full {
			full[i] = i
		}
		grand = u(full)
	}
	empty := u(nil)
	sv := make([]float64, m)
	coalition := make([]int, 0, m)
	sorted := make([]int, 0, m)
	for p := 0; p < permutations; p++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("shapley: canceled after %d/%d permutations: %w", p, permutations, err)
		}
		perm := stat.Perm(rng, m)
		coalition = coalition[:0]
		prev := empty
		done := false
		for _, player := range perm {
			if done {
				// Within tolerance of the grand coalition: remaining
				// marginals are credited zero.
				continue
			}
			coalition = append(coalition, player)
			sorted = sorted[:len(coalition)]
			copy(sorted, coalition)
			insertionSort(sorted)
			cur := u(sorted)
			sv[player] += cur - prev
			prev = cur
			if truncating && math.Abs(grand-cur) <= tol {
				done = true
			}
		}
	}
	inv := 1 / float64(permutations)
	for i := range sv {
		sv[i] *= inv
	}
	return sv, nil
}

// insertionSort sorts small int slices in place; coalition prefixes are
// nearly sorted between iterations so this beats sort.Ints here.
func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// Normalize converts Shapley values into market weights: positive, summing
// to 1, and preserving the values' relative ordering and spread. It shifts
// the values so the minimum lands at a small positive offset (1% of the
// spread) rather than flooring, because near-equilibrium fidelities are low
// and per-seller utilities cluster near zero — a hard floor would collapse
// every round's valuation to the uniform distribution and freeze the
// broker's weight learning (§5.2). Degenerate inputs (all equal, or empty)
// yield the uniform distribution.
func Normalize(sv []float64) []float64 {
	if len(sv) == 0 {
		return nil
	}
	lo, hi := sv[0], sv[0]
	for _, v := range sv[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]float64, len(sv))
	spread := hi - lo
	if spread <= 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	offset := 0.01 * spread
	var total float64
	for i, v := range sv {
		out[i] = v - lo + offset
		total += out[i]
	}
	for i := range out {
		out[i] /= total
	}
	return out
}
