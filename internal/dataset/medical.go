package dataset

import (
	"math/rand"

	"share/internal/stat"
)

// SyntheticMedical generates patient-record-like data for the paper's
// motivating scenario (§1: a drug company buying hospital data). Each row is
// one patient with clinically plausible marginals:
//
//	AGE   18 .. 90 years
//	BMI   16 .. 45 kg/m²
//	SBP   90 .. 200 mmHg (systolic blood pressure, correlated with age/BMI)
//	CHOL 120 .. 320 mg/dL (total cholesterol, correlated with BMI)
//	DOSE   0 .. 100 mg (administered trial dose)
//
// The target is a treatment-response score in [0, 100]: rising in dose with
// diminishing returns, depressed by age, hypertension and cholesterol, plus
// patient-level noise. A linear model explains most (~85%) of the variance,
// leaving headroom that a better product could capture — mirroring real
// clinical data's partial linearity.
func SyntheticMedical(n int, rng *rand.Rand) *Dataset {
	if n <= 0 {
		n = 5000
	}
	d := &Dataset{
		Features: []string{"AGE", "BMI", "SBP", "CHOL", "DOSE"},
		Target:   "RESPONSE",
		X:        make([][]float64, n),
		Y:        make([]float64, n),
	}
	for i := 0; i < n; i++ {
		age := stat.Uniform(rng, 18, 90)
		bmi := clampTo(stat.Gaussian(rng, 27, 5), 16, 45)
		sbp := clampTo(stat.Gaussian(rng, 95+0.45*age+0.8*bmi, 12), 90, 200)
		chol := clampTo(stat.Gaussian(rng, 140+2.2*bmi, 30), 120, 320)
		dose := stat.Uniform(rng, 0, 100)
		// Response surface: concave in dose, penalized by risk factors.
		resp := 20 +
			0.9*dose - 0.004*dose*dose -
			0.25*(age-50) -
			0.12*(sbp-130) -
			0.05*(chol-200) +
			stat.Gaussian(rng, 0, 6)
		resp = clampTo(resp, 0, 100)
		d.X[i] = []float64{age, bmi, sbp, chol, dose}
		d.Y[i] = resp
	}
	return d
}

// MedicalBounds returns per-feature bounds for calibrating LDP mechanisms
// over SyntheticMedical data (features only; append the 0..100 response
// range for full-record perturbation).
func MedicalBounds() (lo, hi []float64) {
	return []float64{18, 16, 90, 120, 0},
		[]float64{90, 45, 200, 320, 100}
}
