package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"share/internal/stat"
)

func sample() *Dataset {
	return &Dataset{
		Features: []string{"a", "b"},
		Target:   "y",
		X:        [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}},
		Y:        []float64{10, 20, 30, 40},
	}
}

func TestValidate(t *testing.T) {
	d := sample()
	if err := d.Validate(); err != nil {
		t.Errorf("valid dataset rejected: %v", err)
	}
	bad := sample()
	bad.Y = bad.Y[:3]
	if err := bad.Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
	bad = sample()
	bad.X[2] = []float64{1}
	if err := bad.Validate(); err == nil {
		t.Error("ragged row accepted")
	}
	bad = sample()
	bad.Features = []string{"a"}
	if err := bad.Validate(); err == nil {
		t.Error("feature-name mismatch accepted")
	}
	empty := &Dataset{}
	if err := empty.Validate(); err != nil {
		t.Errorf("empty dataset rejected: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := sample()
	c := d.Clone()
	c.X[0][0] = 99
	c.Y[0] = 99
	if d.X[0][0] == 99 || d.Y[0] == 99 {
		t.Error("Clone shares row storage with the original")
	}
}

func TestSubsetCopiesRows(t *testing.T) {
	d := sample()
	s := d.Subset([]int{2, 0})
	if s.Len() != 2 || s.Y[0] != 30 || s.Y[1] != 10 {
		t.Fatalf("Subset content wrong: %+v", s)
	}
	s.X[0][0] = -1
	if d.X[2][0] == -1 {
		t.Error("Subset shares row storage with the original")
	}
}

func TestHead(t *testing.T) {
	d := sample()
	if got := d.Head(2).Len(); got != 2 {
		t.Errorf("Head(2) length = %d", got)
	}
	if got := d.Head(100).Len(); got != 4 {
		t.Errorf("Head(100) length = %d, want 4", got)
	}
}

func TestAppendAndConcat(t *testing.T) {
	a, b := sample(), sample()
	if err := a.Append(b); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if a.Len() != 8 {
		t.Errorf("appended length = %d, want 8", a.Len())
	}
	wide := &Dataset{X: [][]float64{{1, 2, 3}}, Y: []float64{1}}
	if err := a.Append(wide); err == nil {
		t.Error("Append accepted mismatched widths")
	}
	c, err := Concat(sample(), nil, &Dataset{}, sample())
	if err != nil {
		t.Fatalf("Concat: %v", err)
	}
	if c.Len() != 8 {
		t.Errorf("Concat length = %d, want 8", c.Len())
	}
	if c.Features == nil || c.Features[0] != "a" {
		t.Error("Concat lost feature names")
	}
}

func TestSplit(t *testing.T) {
	d := sample()
	train, test := d.Split(3)
	if train.Len() != 3 || test.Len() != 1 {
		t.Errorf("Split sizes = %d, %d", train.Len(), test.Len())
	}
	train, test = d.Split(-1)
	if train.Len() != 0 || test.Len() != 4 {
		t.Errorf("Split(-1) sizes = %d, %d", train.Len(), test.Len())
	}
	train, test = d.Split(99)
	if train.Len() != 4 || test.Len() != 0 {
		t.Errorf("Split(99) sizes = %d, %d", train.Len(), test.Len())
	}
}

func TestSortByScoreDescending(t *testing.T) {
	d := sample()
	scores := []float64{0.1, 0.9, 0.5, 0.3}
	if err := d.SortByScore(scores); err != nil {
		t.Fatalf("SortByScore: %v", err)
	}
	wantY := []float64{20, 30, 40, 10}
	for i := range wantY {
		if d.Y[i] != wantY[i] {
			t.Errorf("after sort Y[%d] = %v, want %v", i, d.Y[i], wantY[i])
		}
	}
	if err := d.SortByScore([]float64{1}); err == nil {
		t.Error("SortByScore accepted wrong score count")
	}
}

func TestPartitionEqual(t *testing.T) {
	rng := stat.NewRand(1)
	d := SyntheticCCPP(90, rng)
	parts, err := PartitionEqual(d, 9)
	if err != nil {
		t.Fatalf("PartitionEqual: %v", err)
	}
	if len(parts) != 9 {
		t.Fatalf("got %d parts", len(parts))
	}
	total := 0
	for _, p := range parts {
		if p.Len() != 10 {
			t.Errorf("part size = %d, want 10", p.Len())
		}
		total += p.Len()
	}
	if total != 90 {
		t.Errorf("parts cover %d rows, want 90", total)
	}
	if _, err := PartitionEqual(d, 0); err == nil {
		t.Error("PartitionEqual accepted m=0")
	}
	if _, err := PartitionEqual(d, 91); err == nil {
		t.Error("PartitionEqual accepted more chunks than rows")
	}
}

// Property: partitions are disjoint and ordered — chunk k holds rows
// k·per..(k+1)·per−1 of the source.
func TestPartitionContiguityProperty(t *testing.T) {
	rng := stat.NewRand(2)
	prop := func(seed int64) bool {
		r := stat.NewRand(seed)
		n := 20 + r.Intn(200)
		m := 1 + r.Intn(10)
		d := SyntheticCCPP(n, r)
		parts, err := PartitionEqual(d, m)
		if err != nil {
			return false
		}
		per := n / m
		for k, p := range parts {
			if p.Len() != per {
				return false
			}
			for j := 0; j < per; j++ {
				src := d.X[k*per+j]
				for c := range src {
					if p.X[j][c] != src[c] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestAugmentSizeAndNoise(t *testing.T) {
	rng := stat.NewRand(3)
	d := SyntheticCCPP(100, rng)
	aug := Augment(d, 5, 0.1, rng)
	if aug.Len() != 500 {
		t.Fatalf("Augment length = %d, want 500", aug.Len())
	}
	// Noise should be small but non-zero.
	var diff float64
	for i := 0; i < 100; i++ {
		diff += math.Abs(aug.X[i][0] - d.X[i][0])
	}
	avg := diff / 100
	if avg == 0 {
		t.Error("Augment added no noise")
	}
	if avg > 0.5 {
		t.Errorf("Augment noise too large: mean |Δ| = %v for σ=0.1", avg)
	}
}

func TestShuffleKeepsRowsPaired(t *testing.T) {
	rng := stat.NewRand(4)
	d := SyntheticCCPP(50, rng)
	// Tag targets so we can verify pairing: Y = f(X) originally; use AT.
	orig := map[float64]float64{}
	for i, row := range d.X {
		orig[row[0]] = d.Y[i]
	}
	d.Shuffle(rng)
	for i, row := range d.X {
		if orig[row[0]] != d.Y[i] {
			t.Fatal("Shuffle broke X/Y pairing")
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if back.Len() != d.Len() || back.Target != "y" || back.Features[1] != "b" {
		t.Fatalf("round trip lost structure: %+v", back)
	}
	for i := range d.Y {
		if back.Y[i] != d.Y[i] {
			t.Errorf("Y[%d] = %v, want %v", i, back.Y[i], d.Y[i])
		}
		for j := range d.X[i] {
			if back.X[i][j] != d.X[i][j] {
				t.Errorf("X[%d][%d] = %v, want %v", i, j, back.X[i][j], d.X[i][j])
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("only_one_col\n1\n")); err == nil {
		t.Error("ReadCSV accepted a single-column file")
	}
	if _, err := ReadCSV(strings.NewReader("a,y\nnot_a_number,1\n")); err == nil {
		t.Error("ReadCSV accepted a non-numeric feature")
	}
	if _, err := ReadCSV(strings.NewReader("a,y\n1,nan_text\n")); err == nil {
		t.Error("ReadCSV accepted a non-numeric target")
	}
}

func TestSyntheticCCPPRanges(t *testing.T) {
	rng := stat.NewRand(5)
	d := SyntheticCCPP(0, rng)
	if d.Len() != CCPPSize {
		t.Fatalf("default size = %d, want %d", d.Len(), CCPPSize)
	}
	lo, hi := CCPPBounds()
	for i, row := range d.X {
		for j, v := range row {
			if v < lo[j] || v > hi[j] {
				t.Fatalf("row %d feature %d = %v outside [%v, %v]", i, j, v, lo[j], hi[j])
			}
		}
	}
	// Target stays within a plausible CCPP band (generator noise can
	// slightly exceed the historical record extremes).
	ylo, yhi := d.Y[0], d.Y[0]
	for _, y := range d.Y {
		if y < ylo {
			ylo = y
		}
		if y > yhi {
			yhi = y
		}
	}
	if ylo < 400 || yhi > 520 {
		t.Errorf("PE range [%v, %v] implausible for CCPP", ylo, yhi)
	}
}

func TestSyntheticCCPPCorrelationATV(t *testing.T) {
	rng := stat.NewRand(6)
	d := SyntheticCCPP(5000, rng)
	at := make([]float64, d.Len())
	v := make([]float64, d.Len())
	for i, row := range d.X {
		at[i], v[i] = row[0], row[1]
	}
	corr := correlation(at, v)
	if corr < 0.6 {
		t.Errorf("corr(AT, V) = %v, want strongly positive (real data ≈ 0.84)", corr)
	}
}

func TestSyntheticCCPPTargetDrivenByAT(t *testing.T) {
	rng := stat.NewRand(7)
	d := SyntheticCCPP(5000, rng)
	at := make([]float64, d.Len())
	for i, row := range d.X {
		at[i] = row[0]
	}
	corr := correlation(at, d.Y)
	if corr > -0.8 {
		t.Errorf("corr(AT, PE) = %v, want strongly negative (real data ≈ −0.95)", corr)
	}
}

func correlation(a, b []float64) float64 {
	ma, mb := stat.Mean(a), stat.Mean(b)
	var num, da, db float64
	for i := range a {
		num += (a[i] - ma) * (b[i] - mb)
		da += (a[i] - ma) * (a[i] - ma)
		db += (b[i] - mb) * (b[i] - mb)
	}
	return num / math.Sqrt(da*db)
}

func TestPartitionProportional(t *testing.T) {
	rng := stat.NewRand(8)
	d := SyntheticCCPP(100, rng)
	parts, err := PartitionProportional(d, []float64{1, 2, 7})
	if err != nil {
		t.Fatalf("PartitionProportional: %v", err)
	}
	if len(parts) != 3 {
		t.Fatalf("got %d parts", len(parts))
	}
	sizes := []int{parts[0].Len(), parts[1].Len(), parts[2].Len()}
	if sizes[0] != 10 || sizes[1] != 20 || sizes[2] != 70 {
		t.Errorf("sizes = %v, want [10 20 70]", sizes)
	}
	total := sizes[0] + sizes[1] + sizes[2]
	if total != 100 {
		t.Errorf("rows covered = %d", total)
	}
	// Chunks are contiguous and ordered.
	if parts[1].X[0][0] != d.X[10][0] || parts[2].X[0][0] != d.X[30][0] {
		t.Error("chunks not contiguous")
	}
	// Validation.
	if _, err := PartitionProportional(d, nil); err == nil {
		t.Error("accepted no shares")
	}
	if _, err := PartitionProportional(d, []float64{1, 0}); err == nil {
		t.Error("accepted a zero share")
	}
	if _, err := PartitionProportional(d.Head(2), []float64{1, 1, 1}); err == nil {
		t.Error("accepted more chunks than rows")
	}
}

// Property: proportional partitions always cover every row exactly once,
// give every chunk at least one row, and track the requested proportions to
// within one row.
func TestPartitionProportionalProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := stat.NewRand(seed)
		m := 1 + rng.Intn(8)
		n := m + rng.Intn(300)
		d := SyntheticCCPP(n, rng)
		shares := make([]float64, m)
		var total float64
		for i := range shares {
			shares[i] = 0.1 + rng.Float64()*5
			total += shares[i]
		}
		parts, err := PartitionProportional(d, shares)
		if err != nil {
			return false
		}
		covered := 0
		for i, p := range parts {
			if p.Len() < 1 {
				return false
			}
			covered += p.Len()
			exact := shares[i] / total * float64(n)
			if math.Abs(float64(p.Len())-exact) > float64(m)+1 {
				return false
			}
		}
		return covered == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
