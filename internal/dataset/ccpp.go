package dataset

import (
	"math/rand"

	"share/internal/stat"
)

// CCPP feature ranges as published for the UCI Combined Cycle Power Plant
// dataset (hourly averages over 2006–2011):
//
//	AT  ambient temperature      1.81 .. 37.11 °C
//	V   exhaust vacuum          25.36 .. 81.56 cm Hg
//	AP  ambient pressure       992.89 .. 1033.30 millibar
//	RH  relative humidity       25.56 .. 100.16 %
//	PE  net electrical output  420.26 .. 495.76 MW (target)
//
// The generator below reproduces these marginals, the strong AT–V
// correlation present in the real plant data, and a target whose ordinary
// least squares fit attains explained variance ≈ 0.93 — the figure the real
// dataset yields — so the market pipeline behaves as it would on the genuine
// file.
const (
	ccppATLo, ccppATHi = 1.81, 37.11
	ccppVLo, ccppVHi   = 25.36, 81.56
	ccppAPLo, ccppAPHi = 992.89, 1033.30
	ccppRHLo, ccppRHHi = 25.56, 100.16
)

// CCPPFeatureNames are the canonical CCPP column names.
var CCPPFeatureNames = []string{"AT", "V", "AP", "RH"}

// CCPPTargetName is the canonical CCPP target column name.
const CCPPTargetName = "PE"

// CCPPSize is the row count of the real UCI dataset; SyntheticCCPP defaults
// to it when asked for a non-positive number of rows.
const CCPPSize = 9568

// CCPPBounds returns per-feature lower and upper bounds for calibrating LDP
// mechanisms over CCPP-shaped data.
func CCPPBounds() (lo, hi []float64) {
	return []float64{ccppATLo, ccppVLo, ccppAPLo, ccppRHLo},
		[]float64{ccppATHi, ccppVHi, ccppAPHi, ccppRHHi}
}

// SyntheticCCPP generates n rows of CCPP-like data (pass n <= 0 for the real
// dataset's 9,568 rows). The target is a calibrated linear combination of the
// features plus a small AT×V interaction and Gaussian noise; the coefficients
// approximate the published OLS fit on the real data (PE falls ~1.97 MW per
// °C of AT, ~0.23 MW per cm Hg of V, rises ~0.06 MW per millibar of AP and
// falls ~0.16 MW per % of RH).
func SyntheticCCPP(n int, rng *rand.Rand) *Dataset {
	if n <= 0 {
		n = CCPPSize
	}
	d := &Dataset{
		Features: CCPPFeatureNames,
		Target:   CCPPTargetName,
		X:        make([][]float64, n),
		Y:        make([]float64, n),
	}
	for i := 0; i < n; i++ {
		// AT drives the plant: draw it first, then V strongly correlated
		// with it (the real corpus has corr(AT, V) ≈ 0.84).
		at := stat.Uniform(rng, ccppATLo, ccppATHi)
		vMean := ccppVLo + (ccppVHi-ccppVLo)*(at-ccppATLo)/(ccppATHi-ccppATLo)
		v := clampTo(stat.Gaussian(rng, vMean, 7.0), ccppVLo, ccppVHi)
		ap := clampTo(stat.Gaussian(rng, 1013.2, 5.9), ccppAPLo, ccppAPHi)
		rh := clampTo(stat.Gaussian(rng, 73.3, 14.6), ccppRHLo, ccppRHHi)
		// Calibrated response surface. The interaction term and noise scale
		// are tuned so a plain OLS fit explains ≈ 93% of the variance,
		// matching the real dataset.
		pe := 454.0 -
			1.60*(at-19.65) -
			0.12*(v-54.3) +
			0.06*(ap-1013.2) -
			0.10*(rh-73.3) -
			0.006*(at-19.65)*(v-54.3) +
			stat.Gaussian(rng, 0, 4.7)
		d.X[i] = []float64{at, v, ap, rh}
		d.Y[i] = pe
	}
	return d
}

func clampTo(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
