package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary byte streams to the CSV reader: it must never
// panic, and anything it accepts must round-trip through WriteCSV/ReadCSV
// to an identical dataset.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b,y\n1,2,3\n4,5,6\n")
	f.Add("x,y\n1.5,-2e10\n")
	f.Add("")
	f.Add("a,y\nnan,1\n")
	f.Add("a,y\n1\n")
	f.Add("a,y\n1,2,3\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("accepted dataset fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatalf("writing accepted dataset: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-reading own output: %v", err)
		}
		if back.Len() != d.Len() || back.NumFeatures() != d.NumFeatures() {
			t.Fatalf("round trip changed shape: %dx%d → %dx%d",
				d.Len(), d.NumFeatures(), back.Len(), back.NumFeatures())
		}
		for i := range d.Y {
			if back.Y[i] != d.Y[i] {
				// NaN never round-trips equal; only flag real drift.
				if back.Y[i] == back.Y[i] || d.Y[i] == d.Y[i] {
					t.Fatalf("row %d target drifted: %v → %v", i, d.Y[i], back.Y[i])
				}
			}
			for j := range d.X[i] {
				if back.X[i][j] != d.X[i][j] &&
					(back.X[i][j] == back.X[i][j] || d.X[i][j] == d.X[i][j]) {
					t.Fatalf("row %d feature %d drifted: %v → %v", i, j, d.X[i][j], back.X[i][j])
				}
			}
		}
	})
}
