// Package dataset provides the data substrate of Share: a tabular Dataset
// type, CSV input/output, the synthetic Combined Cycle Power Plant (CCPP)
// generator standing in for the UCI dataset the paper evaluates on, the
// ×100 + Gaussian-noise augmentation used for the 1M-row efficiency
// experiments, quality-based ordering, and partitioning across sellers.
//
// Substitution note (see DESIGN.md §2): the module is built offline, so the
// real UCI CCPP file is unavailable. SyntheticCCPP generates rows with the
// published feature ranges and a calibrated noisy linear-plus-interaction
// target so that ordinary least squares reaches explained variance ≈ 0.93,
// matching the linear-regression fit on the genuine dataset. The market
// mechanism observes the data only through OLS metrics, Shapley
// contributions, and LDP perturbation, all of which this generator exercises
// identically.
package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"share/internal/stat"
)

// Dataset is an in-memory tabular dataset: a feature matrix X (rows ×
// features) and a target vector Y of equal length.
type Dataset struct {
	// Features names each column of X; optional but carried through
	// subsetting operations when present.
	Features []string
	// Target names the Y column.
	Target string
	// X holds one feature vector per row.
	X [][]float64
	// Y holds the regression target for each row.
	Y []float64
}

// Len returns the number of rows.
func (d *Dataset) Len() int { return len(d.X) }

// NumFeatures returns the number of feature columns (0 for an empty set).
func (d *Dataset) NumFeatures() int {
	if len(d.X) == 0 {
		return len(d.Features)
	}
	return len(d.X[0])
}

// Validate checks internal consistency: X and Y have equal length and every
// row has the same width.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("dataset: %d feature rows but %d targets", len(d.X), len(d.Y))
	}
	if len(d.X) == 0 {
		return nil
	}
	w := len(d.X[0])
	for i, row := range d.X {
		if len(row) != w {
			return fmt.Errorf("dataset: row %d has %d features, want %d", i, len(row), w)
		}
	}
	if d.Features != nil && len(d.Features) != w {
		return fmt.Errorf("dataset: %d feature names for %d columns", len(d.Features), w)
	}
	return nil
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{
		Features: append([]string(nil), d.Features...),
		Target:   d.Target,
		X:        make([][]float64, len(d.X)),
		Y:        append([]float64(nil), d.Y...),
	}
	for i, row := range d.X {
		out.X[i] = append([]float64(nil), row...)
	}
	return out
}

// Subset returns a new dataset containing the rows at the given indices, in
// order. Rows are deep-copied so the subset can be perturbed independently.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{
		Features: d.Features,
		Target:   d.Target,
		X:        make([][]float64, len(idx)),
		Y:        make([]float64, len(idx)),
	}
	for k, i := range idx {
		out.X[k] = append([]float64(nil), d.X[i]...)
		out.Y[k] = d.Y[i]
	}
	return out
}

// Head returns a subset of the first n rows (or all rows if n exceeds Len).
func (d *Dataset) Head(n int) *Dataset {
	if n > d.Len() {
		n = d.Len()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return d.Subset(idx)
}

// Append concatenates other onto d in place. The feature widths must match.
func (d *Dataset) Append(other *Dataset) error {
	if d.Len() > 0 && other.Len() > 0 && d.NumFeatures() != other.NumFeatures() {
		return fmt.Errorf("dataset: cannot append %d-feature rows to %d-feature dataset",
			other.NumFeatures(), d.NumFeatures())
	}
	d.X = append(d.X, other.X...)
	d.Y = append(d.Y, other.Y...)
	return nil
}

// Concat returns the concatenation of the given datasets as a new dataset.
// Nil and empty inputs are skipped.
func Concat(parts ...*Dataset) (*Dataset, error) {
	out := &Dataset{}
	for _, p := range parts {
		if p == nil || p.Len() == 0 {
			continue
		}
		if out.Features == nil {
			out.Features = p.Features
			out.Target = p.Target
		}
		if err := out.Append(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Shuffle permutes the rows of d in place using rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	for i := d.Len() - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	}
}

// Split partitions d into a training set of the first n rows and a test set
// of the remainder. It returns views backed by fresh slices of row pointers;
// row contents are shared.
func (d *Dataset) Split(n int) (train, test *Dataset) {
	if n < 0 {
		n = 0
	}
	if n > d.Len() {
		n = d.Len()
	}
	train = &Dataset{Features: d.Features, Target: d.Target, X: d.X[:n], Y: d.Y[:n]}
	test = &Dataset{Features: d.Features, Target: d.Target, X: d.X[n:], Y: d.Y[n:]}
	return train, test
}

// SortByScore reorders the rows of d in place so that scores descend:
// the highest-quality row (largest score) comes first. scores must have one
// entry per row. This implements the paper's quality sort, where per-point
// quality is measured by Monte Carlo Shapley contribution to model training.
func (d *Dataset) SortByScore(scores []float64) error {
	if len(scores) != d.Len() {
		return fmt.Errorf("dataset: %d scores for %d rows", len(scores), d.Len())
	}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	newX := make([][]float64, len(idx))
	newY := make([]float64, len(idx))
	for k, i := range idx {
		newX[k] = d.X[i]
		newY[k] = d.Y[i]
	}
	d.X, d.Y = newX, newY
	return nil
}

// PartitionEqual splits d into m contiguous chunks of equal size (the paper
// distributes 9,000 quality-sorted CCPP rows over 100 sellers, 90 each). Rows
// beyond m·⌊Len/m⌋ are dropped, mirroring the paper's exact split. Chunks are
// contiguous, so after a quality sort the sellers receive data of distinctly
// graded quality — chunk 0 the best block, the last chunk the worst — which
// is what lets the Shapley weight updates differentiate them.
func PartitionEqual(d *Dataset, m int) ([]*Dataset, error) {
	if m <= 0 {
		return nil, fmt.Errorf("dataset: cannot partition into %d chunks", m)
	}
	per := d.Len() / m
	if per == 0 {
		return nil, fmt.Errorf("dataset: %d rows cannot fill %d chunks", d.Len(), m)
	}
	parts := make([]*Dataset, m)
	for k := 0; k < m; k++ {
		idx := make([]int, per)
		for j := 0; j < per; j++ {
			idx[j] = k*per + j
		}
		parts[k] = d.Subset(idx)
	}
	return parts, nil
}

// PartitionProportional splits d into contiguous chunks sized proportionally
// to shares (which need not be normalized). Every share must be positive and
// every chunk gets at least one row; rounding remainders go to the largest
// shares. Use this for markets whose sellers hold differently-sized datasets
// (the paper's equal split is the shares-all-equal special case).
func PartitionProportional(d *Dataset, shares []float64) ([]*Dataset, error) {
	m := len(shares)
	if m == 0 {
		return nil, errors.New("dataset: no shares")
	}
	var total float64
	for i, s := range shares {
		if !(s > 0) {
			return nil, fmt.Errorf("dataset: share %d must be positive, got %g", i, s)
		}
		total += s
	}
	if d.Len() < m {
		return nil, fmt.Errorf("dataset: %d rows cannot fill %d chunks", d.Len(), m)
	}
	// Largest-remainder apportionment with a floor of one row each.
	sizes := make([]int, m)
	fracs := make([]float64, m)
	assigned := 0
	for i, s := range shares {
		exact := s / total * float64(d.Len())
		sizes[i] = int(math.Floor(exact))
		if sizes[i] < 1 {
			sizes[i] = 1
		}
		fracs[i] = exact - math.Floor(exact)
		assigned += sizes[i]
	}
	// Distribute leftovers (or claw back overshoot from the floor rule).
	for assigned < d.Len() {
		best := 0
		for i := 1; i < m; i++ {
			if fracs[i] > fracs[best] {
				best = i
			}
		}
		sizes[best]++
		fracs[best] = -1
		assigned++
	}
	for assigned > d.Len() {
		// Shrink the largest chunk above one row.
		big := -1
		for i := 0; i < m; i++ {
			if sizes[i] > 1 && (big < 0 || sizes[i] > sizes[big]) {
				big = i
			}
		}
		if big < 0 {
			return nil, fmt.Errorf("dataset: cannot apportion %d rows over %d chunks", d.Len(), m)
		}
		sizes[big]--
		assigned--
	}
	parts := make([]*Dataset, m)
	offset := 0
	for k, size := range sizes {
		idx := make([]int, size)
		for j := range idx {
			idx[j] = offset + j
		}
		parts[k] = d.Subset(idx)
		offset += size
	}
	return parts, nil
}

// Augment replicates d `times` times and adds N(0, sigma²) noise to every
// feature and target, reproducing the paper's synthetic 1,000,000-row corpus
// (CCPP ×100 with N(0, 0.1²) noise).
func Augment(d *Dataset, times int, sigma float64, rng *rand.Rand) *Dataset {
	out := &Dataset{
		Features: d.Features,
		Target:   d.Target,
		X:        make([][]float64, 0, d.Len()*times),
		Y:        make([]float64, 0, d.Len()*times),
	}
	for t := 0; t < times; t++ {
		for i, row := range d.X {
			nr := make([]float64, len(row))
			for j, v := range row {
				nr[j] = v + stat.Gaussian(rng, 0, sigma)
			}
			out.X = append(out.X, nr)
			out.Y = append(out.Y, d.Y[i]+stat.Gaussian(rng, 0, sigma))
		}
	}
	return out
}

// WriteCSV writes the dataset with a header row (feature names then target).
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append(append([]string{}, d.Features...), d.Target)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing header: %w", err)
	}
	rec := make([]string, d.NumFeatures()+1)
	for i, row := range d.X {
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		rec[len(rec)-1] = strconv.FormatFloat(d.Y[i], 'g', -1, 64)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a dataset written by WriteCSV (or any CSV whose last column
// is the numeric target and preceding columns are numeric features), with a
// header row.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("dataset: need at least one feature and one target column, got %d columns", len(header))
	}
	d := &Dataset{
		Features: header[:len(header)-1],
		Target:   header[len(header)-1],
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: line %d has %d fields, want %d", line, len(rec), len(header))
		}
		row := make([]float64, len(rec)-1)
		for j := range row {
			row[j], err = strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d field %d: %w", line, j, err)
			}
		}
		y, err := strconv.ParseFloat(rec[len(rec)-1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d target: %w", line, err)
		}
		d.X = append(d.X, row)
		d.Y = append(d.Y, y)
	}
	return d, nil
}
