package dataset

import (
	"testing"

	"share/internal/stat"
)

func TestSyntheticMedicalRanges(t *testing.T) {
	rng := stat.NewRand(1)
	d := SyntheticMedical(3000, rng)
	if d.Len() != 3000 || d.NumFeatures() != 5 {
		t.Fatalf("shape = %dx%d", d.Len(), d.NumFeatures())
	}
	lo, hi := MedicalBounds()
	for i, row := range d.X {
		for j, v := range row {
			if v < lo[j] || v > hi[j] {
				t.Fatalf("row %d feature %d = %v outside [%v, %v]", i, j, v, lo[j], hi[j])
			}
		}
		if d.Y[i] < 0 || d.Y[i] > 100 {
			t.Fatalf("response %v outside [0, 100]", d.Y[i])
		}
	}
	if d.Features[4] != "DOSE" || d.Target != "RESPONSE" {
		t.Error("schema labels wrong")
	}
}

func TestSyntheticMedicalDefaultSize(t *testing.T) {
	d := SyntheticMedical(0, stat.NewRand(2))
	if d.Len() != 5000 {
		t.Errorf("default size = %d", d.Len())
	}
}

func TestSyntheticMedicalClinicalStructure(t *testing.T) {
	rng := stat.NewRand(3)
	d := SyntheticMedical(8000, rng)
	col := func(j int) []float64 {
		out := make([]float64, d.Len())
		for i, row := range d.X {
			out[i] = row[j]
		}
		return out
	}
	// Blood pressure rises with age.
	if c := correlation(col(0), col(2)); c < 0.4 {
		t.Errorf("corr(AGE, SBP) = %v, want clearly positive", c)
	}
	// Cholesterol rises with BMI.
	if c := correlation(col(1), col(3)); c < 0.25 {
		t.Errorf("corr(BMI, CHOL) = %v, want positive", c)
	}
	// Response rises with dose and falls with age.
	if c := correlation(col(4), d.Y); c < 0.5 {
		t.Errorf("corr(DOSE, RESPONSE) = %v, want strongly positive", c)
	}
	if c := correlation(col(0), d.Y); c > -0.2 {
		t.Errorf("corr(AGE, RESPONSE) = %v, want negative", c)
	}
}
