package product

import (
	"testing"

	"share/internal/dataset"
	"share/internal/stat"
)

func TestHistogramPerfectOnSameDistribution(t *testing.T) {
	train, test := ccppSplit(t, 6000, 20)
	rep, err := Histogram{}.Build(train, test)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if rep.Performance < 0.9 {
		t.Errorf("same-distribution histogram fidelity = %v", rep.Performance)
	}
	if _, ok := rep.Detail["total_variation"]; !ok {
		t.Error("missing total_variation detail")
	}
}

func TestHistogramDetectsShift(t *testing.T) {
	train, test := ccppSplit(t, 3000, 21)
	shifted := train.Clone()
	for i := range shifted.Y {
		shifted.Y[i] += 40 // push most mass into the top bin
	}
	clean, err := Histogram{}.Build(train, test)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Histogram{}.Build(shifted, test)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Performance >= clean.Performance {
		t.Errorf("shifted histogram scored %v ≥ clean %v", bad.Performance, clean.Performance)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	_, test := ccppSplit(t, 500, 22)
	if _, err := (Histogram{}).Build(test, &dataset.Dataset{}); err == nil {
		t.Error("accepted empty test set")
	}
	rep, err := Histogram{}.Build(&dataset.Dataset{}, test)
	if err != nil || rep.Performance != 0 {
		t.Errorf("empty train: rep=%+v err=%v", rep, err)
	}
	constant := &dataset.Dataset{X: [][]float64{{1}, {1}}, Y: []float64{5, 5}}
	if _, err := (Histogram{}).Build(constant, constant); err == nil {
		t.Error("accepted a degenerate target range")
	}
	// Out-of-range values land in edge bins rather than panicking.
	train := test.Clone()
	train.Y[0] = -1e9
	train.Y[1] = 1e9
	if _, err := (Histogram{Bins: 5}).Build(train, test); err != nil {
		t.Errorf("out-of-range values should clamp: %v", err)
	}
}

func TestHistogramBinsParameter(t *testing.T) {
	rng := stat.NewRand(23)
	train := dataset.SyntheticCCPP(2000, rng)
	test := dataset.SyntheticCCPP(2000, rng)
	coarse, err := Histogram{Bins: 2}.Build(train, test)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Histogram{Bins: 50}.Build(train, test)
	if err != nil {
		t.Fatal(err)
	}
	// Finer bins are strictly harder to match: TV distance can only grow
	// under refinement.
	if fine.Performance > coarse.Performance+1e-9 {
		t.Errorf("finer bins scored higher: %v vs %v", fine.Performance, coarse.Performance)
	}
}
