// Package product abstracts the data products a Share broker can
// manufacture. The paper keeps the product form open ("the form of the
// product is not restricted from simple data aggregation to deep learning
// models", §5.2) and evaluates on a linear-regression model; this package
// provides the Builder interface the market engine consumes and three
// concrete products:
//
//   - OLS: the paper's linear-regression product (performance = explained
//     variance),
//   - Logistic: a binary classifier trained by iteratively reweighted least
//     squares (performance = held-out accuracy),
//   - MeanVector: an aggregate-statistics product — per-feature means
//     estimated from the (noisy) purchased data (performance = 1 −
//     normalized error against the clean test set).
//
// All performances are normalized to [0, 1] so they can serve as the
// buyer's realized v̂ indicator interchangeably.
package product

import (
	"errors"
	"fmt"
	"math"

	"share/internal/dataset"
	"share/internal/regress"
)

// Report is a manufactured product's evaluation.
type Report struct {
	// Performance is the product's headline indicator in [0, 1] — the
	// realized counterpart of the buyer's demanded v (explained variance,
	// accuracy, or statistic fidelity depending on the product).
	Performance float64
	// Detail carries product-specific metrics (e.g. rmse, logloss).
	Detail map[string]float64
}

// Builder manufactures one product from purchased data and scores it on a
// clean held-out set. Implementations must be safe for sequential reuse
// (one Build per market round) and must tolerate heavily-noised and even
// degenerate training data, returning a zero-performance report rather than
// an error when the data is merely bad (errors are for structural problems:
// empty sets, shape mismatches).
type Builder interface {
	// Name identifies the product type in ledgers.
	Name() string
	// Build trains on train and evaluates on test.
	Build(train, test *dataset.Dataset) (Report, error)
}

// clamp01 confines a performance indicator to [0, 1].
func clamp01(x float64) float64 {
	if math.IsNaN(x) || x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// --- OLS: the paper's product ---

// OLS is the linear-regression product of the paper's evaluation.
type OLS struct{}

// Name implements Builder.
func (OLS) Name() string { return "ols-regression" }

// Build implements Builder.
func (OLS) Build(train, test *dataset.Dataset) (Report, error) {
	if test.Len() == 0 {
		return Report{}, errors.New("product: empty test set")
	}
	if train.Len() == 0 {
		return Report{Performance: 0, Detail: map[string]float64{}}, nil
	}
	m, err := regress.Fit(train)
	if err != nil {
		return Report{}, fmt.Errorf("product: OLS fit: %w", err)
	}
	met, err := regress.Evaluate(m, test)
	if err != nil {
		return Report{}, fmt.Errorf("product: OLS eval: %w", err)
	}
	return Report{
		Performance: clamp01(met.ExplainedVariance),
		Detail: map[string]float64{
			"explained_variance": met.ExplainedVariance,
			"r2":                 met.R2,
			"mse":                met.MSE,
			"rmse":               met.RMSE,
			"mae":                met.MAE,
		},
	}, nil
}

// --- Ridge: regularized regression product ---

// Ridge is an L2-regularized linear-regression product. On Share's
// LDP-noised purchases the regularization's variance reduction can beat
// plain OLS out of sample; Alpha tunes the penalty (0 behaves as OLS).
type Ridge struct {
	// Alpha is the L2 penalty weight.
	Alpha float64
}

// Name implements Builder.
func (r Ridge) Name() string { return "ridge-regression" }

// Build implements Builder.
func (r Ridge) Build(train, test *dataset.Dataset) (Report, error) {
	if test.Len() == 0 {
		return Report{}, errors.New("product: empty test set")
	}
	if train.Len() == 0 {
		return Report{Performance: 0, Detail: map[string]float64{}}, nil
	}
	m, err := regress.FitRidge(train, r.Alpha)
	if err != nil {
		return Report{}, fmt.Errorf("product: ridge fit: %w", err)
	}
	met, err := regress.Evaluate(m, test)
	if err != nil {
		return Report{}, fmt.Errorf("product: ridge eval: %w", err)
	}
	return Report{
		Performance: clamp01(met.ExplainedVariance),
		Detail: map[string]float64{
			"explained_variance": met.ExplainedVariance,
			"r2":                 met.R2,
			"rmse":               met.RMSE,
			"alpha":              r.Alpha,
		},
	}, nil
}

// --- MeanVector: aggregate-statistics product ---

// MeanVector is an aggregate-statistics product: the broker publishes the
// per-feature (and target) means of the purchased data. Performance is
// 1 − mean over columns of |est − true| / range, computed against the clean
// test set — 1 when the noisy purchase reproduces the population means
// exactly, decaying toward 0 as LDP noise or selection bias distorts them.
type MeanVector struct{}

// Name implements Builder.
func (MeanVector) Name() string { return "mean-vector" }

// Build implements Builder.
func (MeanVector) Build(train, test *dataset.Dataset) (Report, error) {
	if test.Len() == 0 {
		return Report{}, errors.New("product: empty test set")
	}
	if train.Len() == 0 {
		return Report{Performance: 0, Detail: map[string]float64{}}, nil
	}
	k := test.NumFeatures()
	if train.NumFeatures() != k {
		return Report{}, fmt.Errorf("product: train has %d features, test %d", train.NumFeatures(), k)
	}
	// Column means and ranges from the clean test set.
	trueMean := make([]float64, k+1)
	lo := make([]float64, k+1)
	hi := make([]float64, k+1)
	for j := range lo {
		lo[j] = math.Inf(1)
		hi[j] = math.Inf(-1)
	}
	col := func(row []float64, y float64, j int) float64 {
		if j < k {
			return row[j]
		}
		return y
	}
	for i, row := range test.X {
		for j := 0; j <= k; j++ {
			v := col(row, test.Y[i], j)
			trueMean[j] += v
			lo[j] = math.Min(lo[j], v)
			hi[j] = math.Max(hi[j], v)
		}
	}
	for j := range trueMean {
		trueMean[j] /= float64(test.Len())
	}
	// Estimated means from the purchased data.
	est := make([]float64, k+1)
	for i, row := range train.X {
		for j := 0; j <= k; j++ {
			est[j] += col(row, train.Y[i], j)
		}
	}
	detail := make(map[string]float64, k+2)
	var errSum float64
	for j := range est {
		est[j] /= float64(train.Len())
		span := hi[j] - lo[j]
		if span <= 0 {
			span = 1
		}
		e := math.Abs(est[j]-trueMean[j]) / span
		errSum += e
		name := "target"
		if j < k && j < len(test.Features) {
			name = test.Features[j]
		} else if j < k {
			name = fmt.Sprintf("f%d", j)
		}
		detail["err_"+name] = e
	}
	meanErr := errSum / float64(k+1)
	detail["mean_normalized_error"] = meanErr
	return Report{Performance: clamp01(1 - meanErr), Detail: detail}, nil
}
