package product

import (
	"math"
	"testing"

	"share/internal/dataset"
	"share/internal/stat"
)

func ccppSplit(t *testing.T, n int, seed int64) (train, test *dataset.Dataset) {
	t.Helper()
	rng := stat.NewRand(seed)
	full := dataset.SyntheticCCPP(n, rng)
	return full.Split(n * 4 / 5)
}

func TestOLSBuildMatchesExpectedQuality(t *testing.T) {
	train, test := ccppSplit(t, 3000, 1)
	rep, err := OLS{}.Build(train, test)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if rep.Performance < 0.9 || rep.Performance > 0.97 {
		t.Errorf("OLS performance = %v, want ≈0.93", rep.Performance)
	}
	for _, key := range []string{"explained_variance", "r2", "mse", "rmse", "mae"} {
		if _, ok := rep.Detail[key]; !ok {
			t.Errorf("missing detail %q", key)
		}
	}
	if (OLS{}).Name() == "" {
		t.Error("empty name")
	}
}

func TestOLSBuildDegenerateInputs(t *testing.T) {
	train, test := ccppSplit(t, 500, 2)
	if _, err := (OLS{}).Build(train, &dataset.Dataset{}); err == nil {
		t.Error("accepted an empty test set")
	}
	rep, err := OLS{}.Build(&dataset.Dataset{}, test)
	if err != nil {
		t.Fatalf("empty train should score 0, not error: %v", err)
	}
	if rep.Performance != 0 {
		t.Errorf("empty-train performance = %v", rep.Performance)
	}
}

func TestMeanVectorPerfectOnCleanData(t *testing.T) {
	train, test := ccppSplit(t, 4000, 3)
	rep, err := MeanVector{}.Build(train, test)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Same-distribution means: near-perfect fidelity.
	if rep.Performance < 0.95 {
		t.Errorf("clean mean-vector performance = %v", rep.Performance)
	}
}

func TestMeanVectorDetectsBias(t *testing.T) {
	train, test := ccppSplit(t, 2000, 4)
	// Shift every feature massively: estimated means are far off.
	biased := train.Clone()
	for _, row := range biased.X {
		for j := range row {
			row[j] += 1000
		}
	}
	clean, err := MeanVector{}.Build(train, test)
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := MeanVector{}.Build(biased, test)
	if err != nil {
		t.Fatal(err)
	}
	if shifted.Performance >= clean.Performance {
		t.Errorf("biased purchase scored %v ≥ clean %v", shifted.Performance, clean.Performance)
	}
}

func TestMeanVectorShapeMismatch(t *testing.T) {
	train, test := ccppSplit(t, 500, 5)
	narrow := &dataset.Dataset{X: [][]float64{{1}}, Y: []float64{1}}
	if _, err := (MeanVector{}).Build(narrow, test); err == nil {
		t.Error("accepted mismatched feature counts")
	}
	_ = train
}

func TestLogisticSeparatesLinearClasses(t *testing.T) {
	rng := stat.NewRand(6)
	mk := func(n int) *dataset.Dataset {
		d := &dataset.Dataset{Features: []string{"x1", "x2"}, Target: "y"}
		for i := 0; i < n; i++ {
			x1 := stat.Uniform(rng, -3, 3)
			x2 := stat.Uniform(rng, -3, 3)
			// Continuous target whose sign region is linearly separable
			// with margin noise.
			y := 2*x1 - x2 + stat.Gaussian(rng, 0, 0.3)
			d.X = append(d.X, []float64{x1, x2})
			d.Y = append(d.Y, y)
		}
		return d
	}
	train, test := mk(800), mk(400)
	rep, err := Logistic{Threshold: 0}.Build(train, test)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if rep.Performance < 0.9 {
		t.Errorf("logistic accuracy = %v on a near-separable task", rep.Performance)
	}
	if rep.Detail["logloss"] <= 0 {
		t.Errorf("logloss = %v", rep.Detail["logloss"])
	}
}

func TestLogisticCCPPMedianSplit(t *testing.T) {
	train, test := ccppSplit(t, 3000, 7)
	thr := MedianThreshold(train)
	rep, err := Logistic{Threshold: thr}.Build(train, test)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// The CCPP relationship is strongly linear; the classifier should beat
	// the ~0.5 base rate decisively.
	if rep.Performance < 0.85 {
		t.Errorf("CCPP classification accuracy = %v", rep.Performance)
	}
	if br := rep.Detail["base_rate"]; br < 0.35 || br > 0.65 {
		t.Errorf("median split base rate = %v, want ≈0.5", br)
	}
}

func TestLogisticDegenerateSingleClass(t *testing.T) {
	// All targets above threshold → single-class purchase → constant
	// classifier scored honestly.
	train := &dataset.Dataset{
		X: [][]float64{{1}, {2}, {3}},
		Y: []float64{10, 11, 12},
	}
	test := &dataset.Dataset{
		X: [][]float64{{1}, {2}, {3}, {4}},
		Y: []float64{10, 11, -5, -6},
	}
	rep, err := Logistic{Threshold: 0}.Build(train, test)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if rep.Detail["degenerate"] != 1 {
		t.Error("degenerate flag not set")
	}
	if math.Abs(rep.Performance-0.5) > 1e-12 {
		t.Errorf("constant classifier accuracy = %v, want 0.5", rep.Performance)
	}
}

func TestFitLogisticValidation(t *testing.T) {
	if _, err := FitLogistic(nil, nil, 0, 0); err == nil {
		t.Error("accepted empty input")
	}
	if _, err := FitLogistic([][]float64{{1}}, []float64{0.5}, 0, 0); err == nil {
		t.Error("accepted a non-binary label")
	}
	if _, err := FitLogistic([][]float64{{1}, {2}}, []float64{1, 1}, 0, 0); err == nil {
		t.Error("accepted a single-class sample")
	}
}

func TestFitLogisticRecoversDecisionBoundary(t *testing.T) {
	rng := stat.NewRand(8)
	var x [][]float64
	var y []float64
	for i := 0; i < 2000; i++ {
		v := stat.Uniform(rng, -4, 4)
		x = append(x, []float64{v})
		// True boundary at v = 1.
		if v > 1 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	m, err := FitLogistic(x, y, 50, 1e-6)
	if err != nil {
		t.Fatalf("FitLogistic: %v", err)
	}
	// Decision boundary: intercept + coef·v = 0 → v = −intercept/coef ≈ 1.
	boundary := -m.Intercept / m.Coef[0]
	if math.Abs(boundary-1) > 0.1 {
		t.Errorf("boundary = %v, want ≈1", boundary)
	}
	if m.Prob([]float64{3}) < 0.95 || m.Prob([]float64{-3}) > 0.05 {
		t.Error("probabilities not saturating away from the boundary")
	}
}

func TestMedianThreshold(t *testing.T) {
	d := &dataset.Dataset{Y: []float64{5, 1, 3}}
	d.X = [][]float64{{0}, {0}, {0}}
	if got := MedianThreshold(d); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	if got := MedianThreshold(&dataset.Dataset{}); got != 0 {
		t.Errorf("empty median = %v", got)
	}
	// Input must not be reordered.
	if d.Y[0] != 5 {
		t.Error("MedianThreshold mutated the dataset")
	}
}

func TestRidgeBuild(t *testing.T) {
	train, test := ccppSplit(t, 3000, 40)
	rep, err := Ridge{Alpha: 1}.Build(train, test)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if rep.Performance < 0.9 {
		t.Errorf("ridge performance = %v on clean CCPP", rep.Performance)
	}
	if rep.Detail["alpha"] != 1 {
		t.Error("alpha not recorded")
	}
	// Heavy regularization hurts on clean data.
	heavy, err := Ridge{Alpha: 1e9}.Build(train, test)
	if err != nil {
		t.Fatal(err)
	}
	if heavy.Performance >= rep.Performance {
		t.Errorf("huge α scored %v ≥ moderate %v", heavy.Performance, rep.Performance)
	}
	if _, err := (Ridge{Alpha: -1}).Build(train, test); err == nil {
		t.Error("accepted negative alpha")
	}
	empty, err := Ridge{Alpha: 1}.Build(&dataset.Dataset{}, test)
	if err != nil || empty.Performance != 0 {
		t.Errorf("empty train: %+v, %v", empty, err)
	}
}
