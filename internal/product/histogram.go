package product

import (
	"errors"
	"fmt"
	"math"

	"share/internal/dataset"
)

// Histogram is an aggregate-statistics product: the distribution of the
// target variable over k equal-width bins (e.g. "how often does the plant
// produce 420–440 MW?"). Performance is 1 − total-variation distance between
// the histogram of the purchased data and the clean test set's — 1 for a
// perfect reproduction, 0 for disjoint distributions.
//
// Bin edges come from the clean test set so the comparison is well-defined
// even when LDP noise pushes purchased values outside the physical range
// (they land in the edge bins).
type Histogram struct {
	// Bins is the bin count (0 → 10).
	Bins int
}

// Name implements Builder.
func (h Histogram) Name() string { return "target-histogram" }

// Build implements Builder.
func (h Histogram) Build(train, test *dataset.Dataset) (Report, error) {
	if test.Len() == 0 {
		return Report{}, errors.New("product: empty test set")
	}
	bins := h.Bins
	if bins <= 0 {
		bins = 10
	}
	if train.Len() == 0 {
		return Report{Performance: 0, Detail: map[string]float64{}}, nil
	}
	lo, hi := test.Y[0], test.Y[0]
	for _, y := range test.Y {
		lo = math.Min(lo, y)
		hi = math.Max(hi, y)
	}
	if !(lo < hi) {
		return Report{}, fmt.Errorf("product: degenerate target range [%g, %g]", lo, hi)
	}
	truth := histogram(test.Y, lo, hi, bins)
	est := histogram(train.Y, lo, hi, bins)
	var tv float64
	detail := make(map[string]float64, bins+1)
	for j := 0; j < bins; j++ {
		tv += math.Abs(truth[j] - est[j])
		detail[fmt.Sprintf("bin_%02d_err", j)] = est[j] - truth[j]
	}
	tv /= 2
	detail["total_variation"] = tv
	return Report{Performance: clamp01(1 - tv), Detail: detail}, nil
}

// histogram bins values into k equal-width bins over [lo, hi], clamping
// out-of-range values into the edge bins, and returns bin frequencies.
func histogram(ys []float64, lo, hi float64, k int) []float64 {
	counts := make([]float64, k)
	width := (hi - lo) / float64(k)
	for _, y := range ys {
		j := int((y - lo) / width)
		if j < 0 {
			j = 0
		}
		if j >= k {
			j = k - 1
		}
		counts[j]++
	}
	for j := range counts {
		counts[j] /= float64(len(ys))
	}
	return counts
}
