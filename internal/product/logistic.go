package product

import (
	"errors"
	"fmt"
	"math"

	"share/internal/dataset"
	"share/internal/linalg"
)

// Logistic is a binary-classification product trained by iteratively
// reweighted least squares (Newton-Raphson on the log-likelihood). The
// continuous target is binarized on the fly: class 1 iff y > Threshold —
// for CCPP-like data, "is the plant's output above X MW". Performance is
// held-out accuracy.
type Logistic struct {
	// Threshold splits the continuous target into classes. Use
	// MedianThreshold to balance classes on a reference set.
	Threshold float64
	// MaxIter bounds IRLS iterations (0 → 25).
	MaxIter int
	// Ridge is the L2 damping added to the Hessian for stability
	// (0 → 1e-6).
	Ridge float64
}

// MedianThreshold returns the median target of d, the natural class split.
func MedianThreshold(d *dataset.Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	ys := append([]float64(nil), d.Y...)
	// Insertion-free selection: full sort is fine at dataset sizes here.
	sortFloats(ys)
	return ys[len(ys)/2]
}

func sortFloats(a []float64) {
	// Simple heapsort to avoid importing sort for one call site.
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(a, i, n)
	}
	for end := n - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftDown(a, 0, end)
	}
}

func siftDown(a []float64, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && a[child+1] > a[child] {
			child++
		}
		if a[root] >= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}

// Name implements Builder.
func (l Logistic) Name() string { return "logistic-classifier" }

// LogisticModel is a fitted logistic regression.
type LogisticModel struct {
	Intercept float64
	Coef      []float64
}

// Prob returns P(class 1 | x).
func (m *LogisticModel) Prob(x []float64) float64 {
	s := m.Intercept
	for j, c := range m.Coef {
		s += c * x[j]
	}
	return 1 / (1 + math.Exp(-s))
}

// FitLogistic trains a logistic regression on features x and binary labels
// y (0/1) by IRLS. It needs both classes present; with one class it returns
// an error (callers decide how to score a degenerate product).
func FitLogistic(x [][]float64, y []float64, maxIter int, ridge float64) (*LogisticModel, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("product: logistic fit on %d/%d rows", n, len(y))
	}
	k := len(x[0])
	if maxIter <= 0 {
		maxIter = 25
	}
	if ridge <= 0 {
		ridge = 1e-6
	}
	var pos int
	for _, v := range y {
		if v != 0 && v != 1 {
			return nil, fmt.Errorf("product: logistic label %v not in {0,1}", v)
		}
		if v == 1 {
			pos++
		}
	}
	if pos == 0 || pos == n {
		return nil, errors.New("product: logistic fit needs both classes")
	}

	beta := make([]float64, k+1)
	aug := make([]float64, k+1)
	for iter := 0; iter < maxIter; iter++ {
		// Assemble XᵀWX + ridge·I and Xᵀ(y − p) for the Newton step.
		hess := linalg.NewMatrix(k+1, k+1)
		grad := make([]float64, k+1)
		for i := 0; i < n; i++ {
			aug[0] = 1
			copy(aug[1:], x[i])
			var eta float64
			for j, b := range beta {
				eta += b * aug[j]
			}
			p := 1 / (1 + math.Exp(-eta))
			w := p * (1 - p)
			if w < 1e-10 {
				w = 1e-10
			}
			r := y[i] - p
			for a := 0; a <= k; a++ {
				if aug[a] == 0 {
					continue
				}
				grad[a] += aug[a] * r
				row := hess.Row(a)
				wa := w * aug[a]
				for b := 0; b <= k; b++ {
					row[b] += wa * aug[b]
				}
			}
		}
		for a := 0; a <= k; a++ {
			hess.Set(a, a, hess.At(a, a)+ridge)
		}
		step, err := linalg.SolveSPD(hess, grad)
		if err != nil {
			return nil, fmt.Errorf("product: IRLS step: %w", err)
		}
		var maxStep float64
		for j := range beta {
			beta[j] += step[j]
			if s := math.Abs(step[j]); s > maxStep {
				maxStep = s
			}
		}
		if maxStep < 1e-10 {
			break
		}
	}
	return &LogisticModel{Intercept: beta[0], Coef: beta[1:]}, nil
}

// Build implements Builder.
func (l Logistic) Build(train, test *dataset.Dataset) (Report, error) {
	if test.Len() == 0 {
		return Report{}, errors.New("product: empty test set")
	}
	if train.Len() == 0 {
		return Report{Performance: 0, Detail: map[string]float64{}}, nil
	}
	labels := make([]float64, train.Len())
	for i, y := range train.Y {
		if y > l.Threshold {
			labels[i] = 1
		}
	}
	model, err := FitLogistic(train.X, labels, l.MaxIter, l.Ridge)
	if err != nil {
		// Degenerate purchase (single class): a constant classifier —
		// score it honestly on the test set rather than failing the round.
		majority := 0.0
		if labels[0] == 1 {
			majority = 1
		}
		acc, base := l.scoreConstant(test, majority)
		return Report{Performance: clamp01(acc), Detail: map[string]float64{
			"accuracy": acc, "base_rate": base, "degenerate": 1,
		}}, nil
	}

	var correct int
	var logloss float64
	var positives int
	for i, row := range test.X {
		truth := 0.0
		if test.Y[i] > l.Threshold {
			truth = 1
			positives++
		}
		p := model.Prob(row)
		pred := 0.0
		if p >= 0.5 {
			pred = 1
		}
		if pred == truth {
			correct++
		}
		pc := math.Min(math.Max(p, 1e-12), 1-1e-12)
		if truth == 1 {
			logloss -= math.Log(pc)
		} else {
			logloss -= math.Log(1 - pc)
		}
	}
	n := float64(test.Len())
	acc := float64(correct) / n
	return Report{
		Performance: clamp01(acc),
		Detail: map[string]float64{
			"accuracy":  acc,
			"logloss":   logloss / n,
			"base_rate": float64(positives) / n,
		},
	}, nil
}

// scoreConstant scores an always-majority classifier.
func (l Logistic) scoreConstant(test *dataset.Dataset, class float64) (acc, baseRate float64) {
	var correct, positives int
	for _, y := range test.Y {
		truth := 0.0
		if y > l.Threshold {
			truth = 1
			positives++
		}
		if truth == class {
			correct++
		}
	}
	n := float64(test.Len())
	return float64(correct) / n, float64(positives) / n
}
