package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLaplaceMomentsMatchDistribution(t *testing.T) {
	rng := NewRand(42)
	const n = 200_000
	mu, b := 1.5, 2.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := Laplace(rng, mu, b)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-mu) > 0.05 {
		t.Errorf("Laplace mean = %v, want %v", mean, mu)
	}
	// Var = 2b² = 8.
	if math.Abs(variance-8) > 0.3 {
		t.Errorf("Laplace variance = %v, want 8", variance)
	}
}

func TestLaplaceSymmetry(t *testing.T) {
	rng := NewRand(7)
	const n = 100_000
	above := 0
	for i := 0; i < n; i++ {
		if Laplace(rng, 0, 1) > 0 {
			above++
		}
	}
	frac := float64(above) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("Laplace positive fraction = %v, want 0.5", frac)
	}
}

func TestGaussianMoments(t *testing.T) {
	rng := NewRand(11)
	const n = 200_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := Gaussian(rng, 3, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-3) > 0.03 {
		t.Errorf("Gaussian mean = %v, want 3", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Errorf("Gaussian variance = %v, want 4", variance)
	}
}

func TestUniformRange(t *testing.T) {
	rng := NewRand(5)
	for i := 0; i < 10_000; i++ {
		x := Uniform(rng, -2, 5)
		if x < -2 || x >= 5 {
			t.Fatalf("Uniform(-2,5) produced %v", x)
		}
	}
}

func TestUniformOpenExcludesLowerEndpoint(t *testing.T) {
	rng := NewRand(5)
	for i := 0; i < 10_000; i++ {
		if x := UniformOpen(rng, 0, 1); x == 0 {
			t.Fatal("UniformOpen returned the open endpoint")
		}
	}
}

func TestMeanVarianceKnownValues(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty-slice statistics should be 0")
	}
}

func TestWeightedMean(t *testing.T) {
	if got := WeightedMean([]float64{1, 3}, []float64{1, 1}); got != 2 {
		t.Errorf("WeightedMean = %v, want 2", got)
	}
	if got := WeightedMean([]float64{1, 3}, []float64{3, 1}); got != 1.5 {
		t.Errorf("WeightedMean = %v, want 1.5", got)
	}
	if got := WeightedMean([]float64{1, 3}, []float64{0, 0}); got != 0 {
		t.Errorf("WeightedMean with zero weights = %v, want 0", got)
	}
}

func TestSumMinMax(t *testing.T) {
	if Sum([]float64{1, 2, 3}) != 6 {
		t.Error("Sum wrong")
	}
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Error("MinMax of empty slice should panic")
		}
	}()
	MinMax(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.5); got != 5 {
		t.Errorf("Quantile interpolation = %v, want 5", got)
	}
	// Input must not be mutated.
	in := []float64{3, 1, 2}
	Quantile(in, 0.5)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestPermIsPermutation(t *testing.T) {
	rng := NewRand(3)
	prop := func(seed int64) bool {
		n := int(seed%20) + 1
		if n < 0 {
			n = -n + 1
		}
		p := Perm(rng, n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestShuffleUniformity(t *testing.T) {
	// Chi-square style sanity: each element lands in each position roughly
	// uniformly over many shuffles.
	rng := NewRand(17)
	const trials = 60_000
	counts := [3][3]int{}
	for tr := 0; tr < trials; tr++ {
		xs := []int{0, 1, 2}
		Shuffle(rng, xs)
		for pos, v := range xs {
			counts[v][pos]++
		}
	}
	want := float64(trials) / 3
	for v := range counts {
		for pos := range counts[v] {
			got := float64(counts[v][pos])
			if math.Abs(got-want)/want > 0.05 {
				t.Errorf("element %d at position %d: count %v, want ≈%v", v, pos, got, want)
			}
		}
	}
}

func TestSeededReproducibility(t *testing.T) {
	a, b := NewRand(123), NewRand(123)
	for i := 0; i < 100; i++ {
		if Laplace(a, 0, 1) != Laplace(b, 0, 1) {
			t.Fatal("same seed diverged")
		}
	}
}
