// Package stat provides the random sampling and summary statistics used
// across Share: Laplace and Gaussian noise sources for the LDP mechanisms,
// seeded uniform generators for reproducible experiments, and the usual
// mean/variance/quantile helpers.
//
// All randomness flows through *rand.Rand instances supplied by the caller so
// that every experiment in the paper reproduction is deterministic under a
// fixed seed.
package stat

import (
	"math"
	"math/rand"
	"sort"
)

// NewRand returns a seeded *rand.Rand. Centralizing construction here keeps
// the door open for swapping the source (e.g. to math/rand/v2) in one place.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Laplace draws a sample from the Laplace distribution with location mu and
// scale b > 0 by inverse-CDF sampling.
func Laplace(rng *rand.Rand, mu, b float64) float64 {
	// u uniform on (-1/2, 1/2); the open interval avoids log(0).
	u := rng.Float64() - 0.5
	for u == 0.5 || u == -0.5 {
		u = rng.Float64() - 0.5
	}
	return mu - b*math.Copysign(math.Log(1-2*math.Abs(u)), u)
}

// Gaussian draws a sample from N(mu, sigma²).
func Gaussian(rng *rand.Rand, mu, sigma float64) float64 {
	return mu + sigma*rng.NormFloat64()
}

// Uniform draws a sample from the uniform distribution on [lo, hi).
func Uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + (hi-lo)*rng.Float64()
}

// UniformOpen draws from the open interval (lo, hi), never returning either
// endpoint. The paper draws privacy sensitivities λᵢ from (0, 1); an exact
// zero would make the seller's loss vanish and 1/λ diverge.
func UniformOpen(rng *rand.Rand, lo, hi float64) float64 {
	for {
		v := Uniform(rng, lo, hi)
		if v != lo {
			return v
		}
	}
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// WeightedMean returns Σwᵢxᵢ / Σwᵢ, or 0 when the weights sum to zero.
func WeightedMean(xs, ws []float64) float64 {
	var num, den float64
	for i, x := range xs {
		num += ws[i] * x
		den += ws[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Variance returns the population variance of xs (denominator n).
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// MinMax returns the minimum and maximum of xs; it panics on an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stat: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It copies and sorts its input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Shuffle permutes the ints in place using rng (Fisher-Yates).
func Shuffle(rng *rand.Rand, xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Perm returns a random permutation of [0, n) using rng.
func Perm(rng *rand.Rand, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	Shuffle(rng, p)
	return p
}
