package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"share/internal/obs"
)

type payload struct {
	N int    `json:"n"`
	S string `json:"s"`
}

func openT(t *testing.T, path string, opts Options) *Log {
	t.Helper()
	l, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func appendCommit(t *testing.T, l *Log, kind string, v any) uint64 {
	t.Helper()
	seq, err := l.Append(kind, v)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Commit(seq); err != nil {
		t.Fatalf("Commit(%d): %v", seq, err)
	}
	return seq
}

func TestAppendReplayRoundTrip(t *testing.T) {
	for _, mode := range []Mode{ModeSync, ModeGroup, ModeAsync} {
		t.Run(mode.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "seg.wal")
			l := openT(t, path, Options{Mode: mode})
			for i := 1; i <= 5; i++ {
				seq := appendCommit(t, l, "p", payload{N: i, S: "x"})
				if seq != uint64(i) {
					t.Fatalf("seq = %d, want %d", seq, i)
				}
			}
			if got := l.Records(); got != 5 {
				t.Fatalf("Records = %d, want 5", got)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			var replayed []payload
			l2 := openT(t, path, Options{Replay: func(rec *Record) error {
				if rec.Kind != "p" {
					return fmt.Errorf("kind %q", rec.Kind)
				}
				var p payload
				if err := json.Unmarshal(rec.Data, &p); err != nil {
					return err
				}
				replayed = append(replayed, p)
				return nil
			}})
			if len(replayed) != 5 {
				t.Fatalf("replayed %d records, want 5", len(replayed))
			}
			for i, p := range replayed {
				if p.N != i+1 || p.S != "x" {
					t.Fatalf("record %d = %+v", i, p)
				}
			}
			if got := l2.LastSeq(); got != 5 {
				t.Fatalf("LastSeq = %d, want 5", got)
			}
		})
	}
}

func TestTornTailTruncatedAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.wal")
	l := openT(t, ref, Options{Mode: ModeSync})
	for i := 1; i <= 4; i++ {
		appendCommit(t, l, "p", payload{N: i})
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	raw, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	var ends []int64
	if _, _, err := Scan(ref, func(_ *Record, end int64) error {
		ends = append(ends, end)
		return nil
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(ends) != 4 {
		t.Fatalf("found %d records, want 4", len(ends))
	}

	for cut := int64(0); cut <= int64(len(raw)); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut-%d.wal", cut))
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got int
		l2, err := Open(path, Options{Replay: func(*Record) error {
			got++
			return nil
		}, Mode: ModeSync})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		want := 0
		for _, e := range ends {
			if e <= cut {
				want++
			}
		}
		if got != want {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, got, want)
		}
		// The torn bytes must be gone: appending after recovery yields a
		// log whose records are the clean prefix plus the new record.
		if _, err := l2.Append("p", payload{N: 99}); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("cut %d: Close: %v", cut, err)
		}
		got = 0
		if _, _, err := Scan(path, func(*Record, int64) error { got++; return nil }); err != nil {
			t.Fatalf("cut %d: rescan: %v", cut, err)
		}
		if got != want+1 {
			t.Fatalf("cut %d: %d records after append, want %d", cut, got, want+1)
		}
	}
}

func TestCorruptPayloadEndsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.wal")
	l := openT(t, path, Options{Mode: ModeSync})
	appendCommit(t, l, "p", payload{N: 1})
	appendCommit(t, l, "p", payload{N: 2})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's payload: CRC fails, the first
	// record still replays.
	raw[len(raw)-2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var got int
	l2 := openT(t, path, Options{Replay: func(*Record) error { got++; return nil }})
	defer l2.Close()
	if got != 1 {
		t.Fatalf("replayed %d records, want 1", got)
	}
}

func TestResetAndMinSeqFloor(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.wal")
	l := openT(t, path, Options{Mode: ModeGroup})
	for i := 0; i < 3; i++ {
		appendCommit(t, l, "p", payload{N: i})
	}
	if err := l.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if l.Records() != 0 || l.Size() != 0 {
		t.Fatalf("after Reset: records=%d size=%d", l.Records(), l.Size())
	}
	// Sequence numbers keep climbing across the reset.
	if seq := appendCommit(t, l, "p", payload{N: 9}); seq != 4 {
		t.Fatalf("post-reset seq = %d, want 4", seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening with the snapshot's watermark floors the next sequence
	// number even when the file holds fewer records than the floor.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	l2 := openT(t, path, Options{MinSeq: 41})
	if seq := appendCommit(t, l2, "p", payload{N: 1}); seq != 42 {
		t.Fatalf("floored seq = %d, want 42", seq)
	}
}

func TestConcurrentGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.wal")
	reg := obs.NewRegistry()
	met := Metrics{
		Fsync:    reg.Endpoint("wal/fsync"),
		Fsyncs:   reg.Counter("wal/fsyncs"),
		Records:  reg.Counter("wal/records"),
		Bytes:    reg.Counter("wal/bytes"),
		BatchMax: reg.Gauge("wal/batch_max"),
	}
	l := openT(t, path, Options{Mode: ModeGroup, Metrics: met})
	const workers, per = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seq, err := l.Append("p", payload{N: w*per + i})
				if err == nil {
					err = l.Commit(seq)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent append/commit: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got int
	if _, _, err := Scan(path, func(*Record, int64) error { got++; return nil }); err != nil {
		t.Fatal(err)
	}
	if got != workers*per {
		t.Fatalf("recovered %d records, want %d", got, workers*per)
	}
	snap := reg.Snapshot()
	if snap.Counters["wal/records"] != workers*per {
		t.Fatalf("wal/records = %d, want %d", snap.Counters["wal/records"], workers*per)
	}
	if snap.Counters["wal/bytes"] == 0 {
		t.Fatal("wal/bytes not reported")
	}
	if snap.Gauges["wal/batch_max"] < 1 {
		t.Fatalf("wal/batch_max = %d, want >= 1", snap.Gauges["wal/batch_max"])
	}
	if snap.Counters["wal/fsyncs"] == 0 {
		t.Fatal("no fsyncs observed")
	}
}

func TestClosedLogRejectsAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.wal")
	l := openT(t, path, Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append("p", payload{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Reset(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Reset after Close = %v, want ErrClosed", err)
	}
}

func TestReplayErrorAbortsOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.wal")
	l := openT(t, path, Options{Mode: ModeSync})
	appendCommit(t, l, "p", payload{N: 1})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if _, err := Open(path, Options{Replay: func(*Record) error { return boom }}); !errors.Is(err, boom) {
		t.Fatalf("Open = %v, want %v", err, boom)
	}
}

func TestParseMode(t *testing.T) {
	cases := map[string]Mode{"": ModeGroup, "group": ModeGroup, "sync": ModeSync, "async": ModeAsync}
	for in, want := range cases {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
		if in != "" && got.String() != in {
			t.Fatalf("Mode(%q).String() = %q", in, got.String())
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("ParseMode(bogus) succeeded")
	}
}

func TestUnsyncedAsyncRecordsFlushOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.wal")
	l := openT(t, path, Options{Mode: ModeAsync})
	for i := 0; i < 10; i++ {
		seq, err := l.Append("p", payload{N: i})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(seq); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got int
	if _, _, err := Scan(path, func(*Record, int64) error { got++; return nil }); err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("recovered %d records, want 10", got)
	}
}
