// Package wal implements the append-only write-ahead log behind the pool's
// trade path. Committed transactions append one small framed record instead
// of rewriting the full market snapshot, turning per-trade durability from
// O(market size) into O(record size) disk work.
//
// Frame format. Each record is
//
//	[4B little-endian payload length][4B little-endian CRC32-IEEE][payload]
//
// where payload is the JSON encoding of Record. The CRC covers the payload
// only; a record whose length or checksum does not verify marks the end of
// the readable prefix. Open truncates everything past that prefix — the
// torn-final-record case after a crash mid-append — so replay always sees a
// clean sequence of fully committed records.
//
// Group commit. Append buffers the record and assigns it a monotonically
// increasing sequence number; Commit makes it durable according to the
// log's mode. In ModeGroup a dedicated syncer goroutine flushes and fsyncs
// on demand: every appender waiting in Commit when an fsync lands is
// released by that single fsync, so concurrent commits amortize the disk
// barrier. ModeSync fsyncs inline per commit; ModeAsync acknowledges
// immediately and lets the syncer flush in the background.
//
// Compaction. Once the caller has persisted a snapshot capturing all
// records up to LastSeq, Reset truncates the file; Options.MinSeq on the
// next Open restores the sequence floor so post-compaction records can
// never be confused with pre-compaction ones.
package wal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"share/internal/obs"
)

// Mode selects how Commit trades durability against latency.
type Mode int

const (
	// ModeGroup (default) batches concurrent commits into one fsync issued
	// by the syncer goroutine; Commit returns once the covering fsync lands.
	ModeGroup Mode = iota
	// ModeSync flushes and fsyncs inline on every Commit.
	ModeSync
	// ModeAsync acknowledges immediately; the syncer fsyncs in the
	// background. A crash can lose the most recently acknowledged records.
	ModeAsync
)

// String names the mode as accepted by ParseMode.
func (m Mode) String() string {
	switch m {
	case ModeSync:
		return "sync"
	case ModeAsync:
		return "async"
	default:
		return "group"
	}
}

// ParseMode maps a mode name onto a Mode ("" → ModeGroup).
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "group":
		return ModeGroup, nil
	case "sync":
		return ModeSync, nil
	case "async":
		return ModeAsync, nil
	}
	return 0, fmt.Errorf("wal: unknown mode %q (want sync, group or async)", s)
}

// Record is one logged entry: a sequence number, a caller-defined kind tag
// and the kind-specific payload.
type Record struct {
	Seq  uint64          `json:"seq"`
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Metrics are the optional observability hooks a Log reports into. Any
// field may be nil.
type Metrics struct {
	// Fsync observes the latency of each fsync barrier.
	Fsync *obs.Endpoint
	// Fsyncs counts fsync barriers issued.
	Fsyncs *obs.Counter
	// Records counts appended records.
	Records *obs.Counter
	// Bytes counts appended bytes (frame headers included).
	Bytes *obs.Counter
	// BatchMax is the high-water mark of commits covered by one fsync.
	BatchMax *obs.Gauge
}

// Options configure Open.
type Options struct {
	// Mode selects the Commit durability protocol.
	Mode Mode
	// MinSeq floors the next assigned sequence number. Pass the WalSeq of
	// the snapshot the log was last compacted into, so records appended
	// after a restart never reuse sequence numbers the snapshot already
	// covers.
	MinSeq uint64
	// Replay, when non-nil, receives every intact record found in the file
	// during Open, in order. An error aborts Open.
	Replay func(*Record) error
	// Metrics receives the log's observability series.
	Metrics Metrics
}

// headerSize is the per-record frame overhead: length + CRC.
const headerSize = 8

// maxRecordBytes bounds a single record's payload. A length prefix above
// this is treated as torn-tail garbage, not an allocation request.
const maxRecordBytes = 64 << 20

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Log is one append-only segment file. Safe for concurrent use.
type Log struct {
	path string
	mode Mode
	met  Metrics

	// mu serializes file writes, sequence assignment and truncation.
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	seq     uint64
	size    int64
	records int
	closed  bool

	// syncMu guards the durability watermark the syncer advances and
	// Commit waits on.
	syncMu   sync.Mutex
	syncCond *sync.Cond
	synced   uint64
	syncErr  error

	syncReq chan struct{}
	stop    chan struct{}
	stopped chan struct{}
}

// Open opens (creating if absent) the segment at path, replays every intact
// record through opts.Replay, truncates any torn tail, and starts the
// syncer goroutine. The caller must Close the returned log.
func Open(path string, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	records := 0
	lastSeq, clean, err := scan(f, func(rec *Record, _ int64) error {
		records++
		if opts.Replay != nil {
			return opts.Replay(rec)
		}
		return nil
	})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: replaying %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err == nil && fi.Size() > clean {
		// Torn tail: a crash mid-append left a partial record. Everything
		// before it is intact; drop the rest.
		err = f.Truncate(clean)
	}
	if err == nil {
		_, err = f.Seek(clean, io.SeekStart)
	}
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: preparing %s for append: %w", path, err)
	}
	seq := lastSeq
	if opts.MinSeq > seq {
		seq = opts.MinSeq
	}
	l := &Log{
		path:    path,
		mode:    opts.Mode,
		met:     opts.Metrics,
		f:       f,
		w:       bufio.NewWriter(f),
		seq:     seq,
		size:    clean,
		records: records,
		synced:  seq,
		syncReq: make(chan struct{}, 1),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	l.syncCond = sync.NewCond(&l.syncMu)
	go l.syncLoop()
	return l, nil
}

// scan reads frames from the start of f, calling fn with each intact record
// and the file offset just past it. It stops — without error — at the first
// frame that is incomplete or fails its checksum, returning the clean
// prefix length. A CRC-valid record that does not decode, or one whose
// sequence number does not increase, is a format error, not a torn tail.
func scan(f *os.File, fn func(*Record, int64) error) (lastSeq uint64, clean int64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, err
	}
	r := bufio.NewReader(f)
	var hdr [headerSize]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return lastSeq, clean, nil // clean end or torn header
			}
			return lastSeq, clean, err
		}
		ln := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if ln == 0 || ln > maxRecordBytes {
			return lastSeq, clean, nil // garbage length: torn tail
		}
		payload := make([]byte, ln)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return lastSeq, clean, nil // torn payload
			}
			return lastSeq, clean, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return lastSeq, clean, nil // corrupt record: end of trusted prefix
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return lastSeq, clean, fmt.Errorf("record at offset %d: %w", clean, err)
		}
		if rec.Seq <= lastSeq {
			return lastSeq, clean, fmt.Errorf("record at offset %d: sequence %d not above %d", clean, rec.Seq, lastSeq)
		}
		end := clean + headerSize + int64(ln)
		if fn != nil {
			if err := fn(&rec, end); err != nil {
				return lastSeq, clean, err
			}
		}
		lastSeq = rec.Seq
		clean = end
	}
}

// Scan reads every intact record of the segment at path without opening it
// for writing. fn receives each record and the byte offset just past its
// frame. Returns the last sequence number and the clean prefix length.
func Scan(path string, fn func(rec *Record, end int64) error) (lastSeq uint64, clean int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	defer f.Close()
	return scan(f, fn)
}

// Append marshals v into a framed record of the given kind and buffers it,
// returning the assigned sequence number. The record is NOT durable until a
// Commit covering the sequence number returns (or, in ModeAsync, until the
// background flush lands).
func (l *Log) Append(kind string, v any) (uint64, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return 0, fmt.Errorf("wal: encoding %s record: %w", kind, err)
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	payload, err := json.Marshal(Record{Seq: l.seq + 1, Kind: kind, Data: data})
	if err != nil {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: framing %s record: %w", kind, err)
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(hdr[:]); err == nil {
		_, err = l.w.Write(payload)
	}
	if err != nil {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: appending to %s: %w", l.path, err)
	}
	l.seq++
	l.size += headerSize + int64(len(payload))
	l.records++
	seq := l.seq
	l.mu.Unlock()
	if l.met.Records != nil {
		l.met.Records.Add(1)
	}
	if l.met.Bytes != nil {
		l.met.Bytes.Add(headerSize + uint64(len(payload)))
	}
	return seq, nil
}

// Commit makes the record at seq durable according to the log's mode:
// ModeSync flushes and fsyncs inline, ModeGroup waits for the syncer's next
// covering fsync, ModeAsync schedules a background flush and returns
// immediately. An fsync failure is sticky — once the log has failed to make
// data durable, every subsequent Commit reports it.
func (l *Log) Commit(seq uint64) error {
	switch l.mode {
	case ModeSync:
		return l.syncNow()
	case ModeAsync:
		l.kick()
		return nil
	default:
		l.kick()
		return l.waitSynced(seq)
	}
}

// kick schedules one syncer pass; a pass already pending covers this
// request too.
func (l *Log) kick() {
	select {
	case l.syncReq <- struct{}{}:
	default:
	}
}

// waitSynced blocks until the durability watermark covers seq or the log
// fails.
func (l *Log) waitSynced(seq uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	for l.synced < seq && l.syncErr == nil {
		l.syncCond.Wait()
	}
	if l.synced >= seq {
		return nil
	}
	return l.syncErr
}

// syncNow flushes the buffer and fsyncs, then advances the watermark to
// every sequence number the barrier covered.
func (l *Log) syncNow() error {
	l.mu.Lock()
	target := l.seq
	err := l.w.Flush()
	f := l.f
	l.mu.Unlock()
	if err == nil {
		t0 := time.Now()
		err = f.Sync()
		if l.met.Fsync != nil {
			l.met.Fsync.Observe(time.Since(t0))
		}
		if l.met.Fsyncs != nil {
			l.met.Fsyncs.Add(1)
		}
	}
	l.finishSync(target, err)
	return err
}

// finishSync publishes a completed barrier: on success the watermark
// advances to target and every waiting Commit at or below it is released;
// on failure the error is recorded sticky.
func (l *Log) finishSync(target uint64, err error) {
	l.syncMu.Lock()
	if err != nil {
		if l.syncErr == nil {
			l.syncErr = err
		}
	} else if target > l.synced {
		if l.met.BatchMax != nil {
			l.met.BatchMax.SetMax(int64(target - l.synced))
		}
		l.synced = target
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
}

// syncLoop is the group-commit syncer: each requested pass fsyncs once,
// covering every record appended before the flush — concurrent committers
// share the barrier.
func (l *Log) syncLoop() {
	defer close(l.stopped)
	for {
		select {
		case <-l.stop:
			return
		case <-l.syncReq:
			l.syncNow() // failure is recorded sticky by finishSync
		}
	}
}

// Reset truncates the log. Call only after a durable snapshot captures
// every record up to LastSeq — compaction. Waiting committers are released:
// the snapshot that justified the reset covers them. Sequence numbers keep
// climbing; they are never reused.
func (l *Log) Reset() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	// Buffered-but-unflushed records are superseded by the snapshot too;
	// drop them with the file contents.
	l.w.Reset(l.f)
	err := l.f.Truncate(0)
	if err == nil {
		_, err = l.f.Seek(0, io.SeekStart)
	}
	if err == nil {
		err = l.f.Sync()
	}
	l.size, l.records = 0, 0
	target := l.seq
	l.mu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: resetting %s: %w", l.path, err)
	}
	l.finishSync(target, nil)
	return nil
}

// Close stops the syncer, flushes and fsyncs any buffered records, and
// closes the file. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	<-l.stopped
	err := l.syncNow()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// LastSeq returns the most recently assigned sequence number (or the MinSeq
// floor if nothing has been appended).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Size returns the byte length of the log's record prefix, buffered writes
// included.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Records returns the number of records in the current segment (since the
// last Reset), buffered writes included.
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Path returns the segment's file path.
func (l *Log) Path() string { return l.path }
