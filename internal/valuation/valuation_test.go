package valuation

import (
	"math"
	"testing"

	"share/internal/dataset"
	"share/internal/regress"
	"share/internal/shapley"
	"share/internal/stat"
)

// cleanAndNoisy builds a training set whose first half is clean linear data
// and second half is pure noise — so point quality is separable by
// construction.
func cleanAndNoisy(nClean, nNoisy int, seed int64) (*dataset.Dataset, *dataset.Dataset) {
	rng := stat.NewRand(seed)
	mk := func(n int, noisy bool) *dataset.Dataset {
		d := &dataset.Dataset{Features: []string{"x"}, Target: "y"}
		for i := 0; i < n; i++ {
			x := stat.Uniform(rng, 0, 10)
			y := 2 * x
			if noisy {
				y = stat.Uniform(rng, -20, 20)
			}
			d.X = append(d.X, []float64{x})
			d.Y = append(d.Y, y)
		}
		return d
	}
	train, _ := dataset.Concat(mk(nClean, false), mk(nNoisy, true))
	test := mk(200, false)
	return train, test
}

func TestPointShapleyRanksCleanAboveNoise(t *testing.T) {
	train, test := cleanAndNoisy(30, 30, 1)
	rng := stat.NewRand(2)
	scores, err := PointShapley(train, test, PointShapleyOptions{Permutations: 60}, rng)
	if err != nil {
		t.Fatalf("PointShapley: %v", err)
	}
	var cleanMean, noisyMean float64
	for i := 0; i < 30; i++ {
		cleanMean += scores[i]
	}
	for i := 30; i < 60; i++ {
		noisyMean += scores[i]
	}
	cleanMean /= 30
	noisyMean /= 30
	if cleanMean <= noisyMean {
		t.Errorf("clean mean SV %v should exceed noisy mean SV %v", cleanMean, noisyMean)
	}
}

func TestPointShapleyEfficiency(t *testing.T) {
	// Permutation sampling preserves efficiency: Σ SV = U(full) − U(∅).
	train, test := cleanAndNoisy(20, 10, 3)
	rng := stat.NewRand(4)
	scores, err := PointShapley(train, test, PointShapleyOptions{Permutations: 25, EvalSample: -1}, rng)
	if err != nil {
		t.Fatalf("PointShapley: %v", err)
	}
	var total float64
	for _, s := range scores {
		total += s
	}
	// The estimator's internal utility uses the ridge-damped incremental
	// solver, so it matches the QR batch fit only to ~1e-7.
	full := regress.ExplainedVariance(train, test)
	if math.Abs(total-full) > 1e-6 {
		t.Errorf("Σ SV = %v, want U(full) = %v (efficiency)", total, full)
	}
}

func TestPointShapleyValidation(t *testing.T) {
	train, test := cleanAndNoisy(5, 5, 5)
	if _, err := PointShapley(&dataset.Dataset{}, test, PointShapleyOptions{}, stat.NewRand(1)); err == nil {
		t.Error("accepted empty train")
	}
	if _, err := PointShapley(train, &dataset.Dataset{}, PointShapleyOptions{}, stat.NewRand(1)); err == nil {
		t.Error("accepted empty test")
	}
	if _, err := PointShapley(train, test, PointShapleyOptions{}, nil); err == nil {
		t.Error("accepted nil rng")
	}
}

func TestQualitySortOrdersDescending(t *testing.T) {
	train, test := cleanAndNoisy(25, 25, 6)
	rng := stat.NewRand(7)
	scores, err := QualitySort(train, test, PointShapleyOptions{Permutations: 40}, rng)
	if err != nil {
		t.Fatalf("QualitySort: %v", err)
	}
	for i := 1; i < len(scores); i++ {
		if scores[i] > scores[i-1]+1e-12 {
			t.Fatalf("scores not descending at %d: %v > %v", i, scores[i], scores[i-1])
		}
	}
	// The front of the sorted set should be dominated by clean points:
	// an OLS fit on the top half should beat one on the bottom half.
	top := train.Head(25)
	bottomIdx := make([]int, 25)
	for i := range bottomIdx {
		bottomIdx[i] = 25 + i
	}
	bottom := train.Subset(bottomIdx)
	evTop := regress.ExplainedVariance(top, test)
	evBottom := regress.ExplainedVariance(bottom, test)
	if evTop <= evBottom {
		t.Errorf("top-half EV %v should beat bottom-half EV %v", evTop, evBottom)
	}
}

func TestChunkUtilityMemoizes(t *testing.T) {
	train, test := cleanAndNoisy(20, 0, 8)
	chunks, err := dataset.PartitionEqual(train, 4)
	if err != nil {
		t.Fatalf("PartitionEqual: %v", err)
	}
	u := ChunkUtility(chunks, test)
	a := u([]int{0, 2})
	b := u([]int{0, 2})
	if a != b {
		t.Errorf("memoized utility differs: %v vs %v", a, b)
	}
	if u(nil) != u(nil) {
		t.Error("empty coalition unstable")
	}
	full := u([]int{0, 1, 2, 3})
	if full < 0.95 {
		t.Errorf("full-coalition EV = %v, want ≈1 on clean data", full)
	}
}

func TestSellerShapleyIdentifiesGoodSeller(t *testing.T) {
	// Seller 0 holds clean data, sellers 1–3 hold noise.
	clean, test := cleanAndNoisy(30, 0, 9)
	noisy, _ := cleanAndNoisy(0, 90, 10)
	chunks := []*dataset.Dataset{clean}
	parts, err := dataset.PartitionEqual(noisy, 3)
	if err != nil {
		t.Fatalf("PartitionEqual: %v", err)
	}
	chunks = append(chunks, parts...)
	rng := stat.NewRand(11)
	sv, err := SellerShapley(chunks, test, 40, rng)
	if err != nil {
		t.Fatalf("SellerShapley: %v", err)
	}
	for i := 1; i < 4; i++ {
		if sv[0] <= sv[i] {
			t.Errorf("clean seller SV %v should exceed noisy seller %d SV %v", sv[0], i, sv[i])
		}
	}
}

func TestSellerShapleyTMCMatchesGeneric(t *testing.T) {
	train, test := cleanAndNoisy(40, 20, 12)
	chunks, err := dataset.PartitionEqual(train, 6)
	if err != nil {
		t.Fatalf("PartitionEqual: %v", err)
	}
	generic, err := shapley.MonteCarlo(6, ChunkUtility(chunks, test), 400, stat.NewRand(13))
	if err != nil {
		t.Fatalf("generic MC: %v", err)
	}
	fast, err := SellerShapleyTMC(chunks, test, 400, 0, stat.NewRand(14))
	if err != nil {
		t.Fatalf("SellerShapleyTMC: %v", err)
	}
	for i := range generic {
		if math.Abs(generic[i]-fast[i]) > 0.05 {
			t.Errorf("seller %d: generic %v vs incremental %v", i, generic[i], fast[i])
		}
	}
}

func TestSellerShapleyTMCTruncationPreservesRanking(t *testing.T) {
	clean, test := cleanAndNoisy(30, 0, 15)
	noisy, _ := cleanAndNoisy(0, 60, 16)
	parts, _ := dataset.PartitionEqual(noisy, 2)
	chunks := append([]*dataset.Dataset{clean}, parts...)
	sv, err := SellerShapleyTMC(chunks, test, 60, 0.01, stat.NewRand(17))
	if err != nil {
		t.Fatalf("SellerShapleyTMC: %v", err)
	}
	if sv[0] <= sv[1] || sv[0] <= sv[2] {
		t.Errorf("truncated TMC lost the ranking: %v", sv)
	}
}

func TestSellerShapleyTMCValidation(t *testing.T) {
	_, test := cleanAndNoisy(5, 0, 18)
	if _, err := SellerShapleyTMC(nil, test, 10, 0, stat.NewRand(1)); err == nil {
		t.Error("accepted no chunks")
	}
	empty := []*dataset.Dataset{{}}
	if _, err := SellerShapleyTMC(empty, test, 10, 0, stat.NewRand(1)); err == nil {
		t.Error("accepted all-empty chunks")
	}
	train, _ := cleanAndNoisy(4, 0, 19)
	chunks, _ := dataset.PartitionEqual(train, 2)
	if _, err := SellerShapleyTMC(chunks, &dataset.Dataset{}, 10, 0, stat.NewRand(1)); err == nil {
		t.Error("accepted empty test set")
	}
	if _, err := SellerShapleyTMC(chunks, test, 10, 0, nil); err == nil {
		t.Error("accepted nil rng")
	}
}
