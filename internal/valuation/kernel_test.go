package valuation

import (
	"context"
	"math"
	"testing"

	"share/internal/dataset"
	"share/internal/product"
	"share/internal/stat"
)

// kernelFixture builds a CCPP-backed chunk set: realistic feature scales so
// the moment-vs-row-streaming comparison exercises genuine cancellation.
func kernelFixture(t *testing.T, m, rowsPerChunk, testRows int, seed int64) ([]*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	rng := stat.NewRand(seed)
	train := dataset.SyntheticCCPP(m*rowsPerChunk, rng)
	test := dataset.SyntheticCCPP(testRows, rng)
	chunks, err := dataset.PartitionEqual(train, m)
	if err != nil {
		t.Fatal(err)
	}
	return chunks, test
}

// TestKernelEquivalence is the cross-estimator agreement gate: the seed-era
// row-streaming estimator (SellerShapleyTMC), the moment-cached kernel on
// the same permutation stream, and the parallel kernel across worker counts
// must agree — the first two to ≤1e-9 per seller, the parallel path
// bit-identically across workers — with and without truncation.
func TestKernelEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		tol  float64
	}{
		{"plain", 0},
		{"truncated", 0.01},
	} {
		t.Run(tc.name, func(t *testing.T) {
			chunks, test := kernelFixture(t, 12, 30, 300, 21)
			const perms = 50

			seedPath, err := SellerShapleyTMC(chunks, test, perms, tc.tol, stat.NewRand(9))
			if err != nil {
				t.Fatalf("seed-path estimator: %v", err)
			}
			moment, err := SellerShapleyMoments(chunks, test, perms, tc.tol, stat.NewRand(9))
			if err != nil {
				t.Fatalf("moment kernel: %v", err)
			}
			for i := range seedPath {
				if d := math.Abs(seedPath[i] - moment[i]); d > 1e-9 {
					t.Errorf("seller %d: seed path %v vs moment kernel %v (Δ=%g)", i, seedPath[i], moment[i], d)
				}
			}

			var first []float64
			for _, workers := range []int{1, 2, 8} {
				sv, err := SellerShapleyKernelCtx(context.Background(), chunks, test, perms, tc.tol, 9, workers)
				if err != nil {
					t.Fatalf("kernel workers=%d: %v", workers, err)
				}
				if first == nil {
					first = sv
					continue
				}
				for i := range sv {
					if sv[i] != first[i] {
						t.Errorf("workers changed result at seller %d: %v vs %v", i, sv[i], first[i])
					}
				}
			}
		})
	}
}

// TestMomentKernelMatchesSeedPathUnderTruncation drives a fixture where
// truncation genuinely fires (one dominant clean chunk) and checks the two
// serial estimators still walk the same truncation decisions.
func TestMomentKernelMatchesSeedPathUnderTruncation(t *testing.T) {
	clean, test := cleanAndNoisy(40, 0, 31)
	noisy, _ := cleanAndNoisy(0, 80, 32)
	parts, err := dataset.PartitionEqual(noisy, 3)
	if err != nil {
		t.Fatal(err)
	}
	chunks := append([]*dataset.Dataset{clean}, parts...)
	seedPath, err := SellerShapleyTMC(chunks, test, 40, 0.02, stat.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	moment, err := SellerShapleyMoments(chunks, test, 40, 0.02, stat.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range seedPath {
		if d := math.Abs(seedPath[i] - moment[i]); d > 1e-9 {
			t.Errorf("seller %d: %v vs %v under truncation (Δ=%g)", i, seedPath[i], moment[i], d)
		}
	}
	if moment[0] <= moment[1] || moment[0] <= moment[2] {
		t.Errorf("clean chunk not ranked first: %v", moment)
	}
}

func TestKernelCancellation(t *testing.T) {
	chunks, test := kernelFixture(t, 8, 20, 100, 22)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SellerShapleyKernelCtx(ctx, chunks, test, 200, 0, 1, 4); err == nil {
		t.Error("canceled kernel returned no error")
	}
	if _, err := SellerShapleyMomentsCtx(ctx, chunks, test, 200, 0, stat.NewRand(1)); err == nil {
		t.Error("canceled serial kernel returned no error")
	}
	if _, err := SellerShapleyBuilderParallelCtx(ctx, chunks, test, product.OLS{}, 200, 0, 1, 4); err == nil {
		t.Error("canceled parallel builder estimator returned no error")
	}
}

func TestKernelValidation(t *testing.T) {
	chunks, test := kernelFixture(t, 4, 10, 50, 23)
	if _, err := SellerShapleyKernelCtx(context.Background(), nil, test, 10, 0, 1, 2); err == nil {
		t.Error("accepted no chunks")
	}
	if _, err := SellerShapleyKernelCtx(context.Background(), chunks, &dataset.Dataset{}, 10, 0, 1, 2); err == nil {
		t.Error("accepted empty test set")
	}
	if _, err := SellerShapleyKernelCtx(context.Background(), []*dataset.Dataset{{}, {}}, test, 10, 0, 1, 2); err == nil {
		t.Error("accepted all-empty chunks")
	}
	if _, err := SellerShapleyMomentsCtx(context.Background(), chunks, test, 10, 0, nil); err == nil {
		t.Error("accepted nil rng")
	}
	if _, err := SellerShapleyBuilderParallelCtx(context.Background(), chunks, test, nil, 10, 0, 1, 2); err == nil {
		t.Error("accepted nil builder")
	}
}

// TestBuilderParallelDeterministicAcrossWorkers pins the builder-generic
// parallel path to the repo determinism convention.
func TestBuilderParallelDeterministicAcrossWorkers(t *testing.T) {
	chunks, test := kernelFixture(t, 6, 15, 80, 24)
	var first []float64
	for _, workers := range []int{1, 2, 8} {
		sv, err := SellerShapleyBuilderParallelCtx(context.Background(), chunks, test, product.MeanVector{}, 20, 0, 7, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if first == nil {
			first = sv
			continue
		}
		for i := range sv {
			if sv[i] != first[i] {
				t.Errorf("workers=%d changed result at %d: %v vs %v", workers, i, sv[i], first[i])
			}
		}
	}
}

// TestBuilderParallelMatchesSerialEstimate: same estimator family, different
// permutation streams — statistical agreement on a well-separated fixture.
func TestBuilderParallelMatchesSerialEstimate(t *testing.T) {
	chunks, test := kernelFixture(t, 5, 20, 100, 25)
	par, err := SellerShapleyBuilderParallelCtx(context.Background(), chunks, test, product.OLS{}, 400, 0, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := SellerShapleyBuilder(chunks, test, product.OLS{}, 400, 0, stat.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range par {
		if math.Abs(par[i]-seq[i]) > 0.1 {
			t.Errorf("seller %d: parallel %v vs serial %v", i, par[i], seq[i])
		}
	}
}
