package valuation

import (
	"context"
	"math"
	"testing"

	"share/internal/dataset"
	"share/internal/regress"
	"share/internal/stat"
)

// cloneRows builds a dataset from explicit rows.
func rowsDataset(x [][]float64, y []float64) *dataset.Dataset {
	return &dataset.Dataset{X: x, Y: y}
}

// TestRedundancyDuplicatesScoreHigh: two sellers holding copies of the
// same data are fully redundant against each other while an independent
// third seller scores lower; empty sellers score zero.
func TestRedundancyDuplicatesScoreHigh(t *testing.T) {
	rng := stat.NewRand(11)
	base := make([][]float64, 60)
	y := make([]float64, 60)
	other := make([][]float64, 60)
	oy := make([]float64, 60)
	for i := range base {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		base[i] = []float64{a, b}
		y[i] = 2*a - b
		// Independent structure: different covariance and response map.
		c, d := rng.NormFloat64(), rng.NormFloat64()
		other[i] = []float64{3 * c, 0.2 * d}
		oy[i] = -c + 4*d
	}
	chunks := []*dataset.Dataset{
		rowsDataset(base, y),
		rowsDataset(base, y), // exact duplicate of seller 0
		rowsDataset(other, oy),
		rowsDataset(nil, nil), // empty
	}
	moments := make([]*regress.Moments, len(chunks))
	for i, c := range chunks {
		moments[i] = regress.DatasetMoments(c, 2)
	}
	red := Redundancy(moments)
	if red[0] < 0.999999 || red[1] < 0.999999 {
		t.Fatalf("duplicate sellers redundancy = %v, want ~1", red[:2])
	}
	if red[2] >= red[0] {
		t.Fatalf("independent seller redundancy %v not below duplicates' %v", red[2], red[0])
	}
	if red[3] != 0 {
		t.Fatalf("empty seller redundancy = %v, want 0", red[3])
	}
	for i, r := range red {
		if r < 0 || r > 1 || math.IsNaN(r) {
			t.Fatalf("redundancy[%d] = %v out of [0,1]", i, r)
		}
	}

	// The dataset-direct path agrees with the moments path.
	direct := DatasetRedundancy(chunks)
	for i := range red {
		if math.Abs(direct[i]-red[i]) > 1e-15 {
			t.Fatalf("DatasetRedundancy[%d] = %v, Redundancy = %v", i, direct[i], red[i])
		}
	}
}

// TestRedundancyScaleFree: the same distribution at different row counts
// is still near-duplicate — the per-row normalization removes size.
func TestRedundancyScaleFree(t *testing.T) {
	rng := stat.NewRand(7)
	mk := func(n int) *dataset.Dataset {
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			a, b := rng.NormFloat64(), rng.NormFloat64()
			x[i] = []float64{a, b}
			y[i] = a + b
		}
		return rowsDataset(x, y)
	}
	red := DatasetRedundancy([]*dataset.Dataset{mk(2000), mk(200)})
	if red[0] < 0.95 || red[1] < 0.95 {
		t.Fatalf("same-distribution sellers at different sizes: redundancy = %v, want > 0.95", red)
	}
}

// TestDatasetRedundancyAllEmpty: no rows anywhere yields all zeros, not a
// panic.
func TestDatasetRedundancyAllEmpty(t *testing.T) {
	red := DatasetRedundancy([]*dataset.Dataset{rowsDataset(nil, nil), rowsDataset(nil, nil)})
	for i, r := range red {
		if r != 0 {
			t.Fatalf("empty redundancy[%d] = %v", i, r)
		}
	}
}

// TestKernelRedundancyMatchesShapley: the combined entry point returns the
// same Shapley values as the plain kernel (bit-identical — same seed, same
// reduction) plus the redundancy vector from the cached moments.
func TestKernelRedundancyMatchesShapley(t *testing.T) {
	rng := stat.NewRand(3)
	n := 120
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x[i] = []float64{a, b}
		y[i] = 3*a - 2*b + 0.1*rng.NormFloat64()
	}
	full := rowsDataset(x, y)
	chunks, err := dataset.PartitionEqual(full.Head(90), 3)
	if err != nil {
		t.Fatal(err)
	}
	test := rowsDataset(x[90:], y[90:])

	const seed, perms = 42, 16
	sv, err := SellerShapleyKernelCtx(context.Background(), chunks, test, perms, 0, seed, 2)
	if err != nil {
		t.Fatal(err)
	}
	sv2, red, err := SellerShapleyKernelRedundancyCtx(context.Background(), chunks, test, perms, 0, seed, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sv {
		if sv[i] != sv2[i] {
			t.Fatalf("shapley[%d]: %v != %v (redundancy variant diverged)", i, sv[i], sv2[i])
		}
	}
	want := DatasetRedundancy(chunks)
	for i := range red {
		if math.Abs(red[i]-want[i]) > 1e-12 {
			t.Fatalf("redundancy[%d] = %v, want %v", i, red[i], want[i])
		}
	}
}
