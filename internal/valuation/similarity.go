package valuation

import (
	"math"

	"share/internal/dataset"
	"share/internal/regress"
)

// Redundancy scores how substitutable each seller's data is: rᵢ is the
// maximum cosine similarity between seller i's normalized moment profile
// (regress.Moments.Vector — [XᵀX/n ; Xᵀy/n]) and any other seller's,
// clamped to [0, 1]. Near-duplicate sellers (same underlying distribution)
// score close to 1 against each other; sellers contributing genuinely
// different covariance structure score lower. Sellers with empty moments
// (or a mismatched feature count) score 0 — they duplicate nobody.
//
// The measure is symmetric and pairwise, following the data-similarity
// treatment in Pandey et al.: payouts should reward marginal information,
// and two mutually redundant sellers are both discounted rather than
// arbitrarily picking a "first" owner of the shared signal.
func Redundancy(moments []*regress.Moments) []float64 {
	m := len(moments)
	red := make([]float64, m)
	vecs := make([][]float64, m)
	norms := make([]float64, m)
	for i, mo := range moments {
		if mo == nil {
			continue
		}
		v := mo.Vector()
		var n2 float64
		for _, x := range v {
			n2 += x * x
		}
		if n2 > 0 {
			vecs[i] = v
			norms[i] = math.Sqrt(n2)
		}
	}
	for i := 0; i < m; i++ {
		if vecs[i] == nil {
			continue
		}
		for j := i + 1; j < m; j++ {
			if vecs[j] == nil || len(vecs[j]) != len(vecs[i]) {
				continue
			}
			var dot float64
			for t, x := range vecs[i] {
				dot += x * vecs[j][t]
			}
			c := dot / (norms[i] * norms[j])
			if c > 1 {
				c = 1
			}
			if c < 0 {
				c = 0
			}
			if c > red[i] {
				red[i] = c
			}
			if c > red[j] {
				red[j] = c
			}
		}
	}
	return red
}

// DatasetRedundancy computes Redundancy straight from seller chunks for
// valuation paths that never build the moment kernel (builder-generic and
// legacy estimators): one O(rows·k²) pass per chunk, then the pairwise
// cosines. All-empty chunk sets return all zeros.
func DatasetRedundancy(chunks []*dataset.Dataset) []float64 {
	k := 0
	for _, c := range chunks {
		if c.Len() > 0 {
			k = c.NumFeatures()
			break
		}
	}
	if k == 0 {
		return make([]float64, len(chunks))
	}
	moments := make([]*regress.Moments, len(chunks))
	for i, c := range chunks {
		moments[i] = regress.DatasetMoments(c, k)
	}
	return Redundancy(moments)
}
