package valuation

import (
	"context"
	"fmt"
	"testing"

	"share/internal/dataset"
	"share/internal/stat"
)

// benchChunks builds m CCPP chunks of rows each plus a 500-row test set.
func benchChunks(b *testing.B, m, rows int) ([]*dataset.Dataset, *dataset.Dataset) {
	b.Helper()
	rng := stat.NewRand(42)
	train := dataset.SyntheticCCPP(m*rows, rng)
	test := dataset.SyntheticCCPP(500, rng)
	chunks, err := dataset.PartitionEqual(train, m)
	if err != nil {
		b.Fatal(err)
	}
	return chunks, test
}

// BenchmarkSellerShapley compares the seed-era row-streaming estimator
// against the moment-cached kernel at several (m, rows, permutations)
// points. The rows axis is the kernel's headline: its prefix step is O(k²)
// regardless of chunk size, while the streaming path re-ingests every row.
func BenchmarkSellerShapley(b *testing.B) {
	points := []struct {
		m, rows, perms int
	}{
		{20, 50, 50},
		{100, 60, 100},
		{100, 240, 100},
	}
	for _, p := range points {
		chunks, test := benchChunks(b, p.m, p.rows)
		label := fmt.Sprintf("m%d_rows%d_p%d", p.m, p.rows, p.perms)
		b.Run("seed/"+label, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SellerShapleyTMC(chunks, test, p.perms, 0, stat.NewRand(1)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("kernel/"+label, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SellerShapleyKernelCtx(context.Background(), chunks, test, p.perms, 0, 1, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSellerShapleyWorkers probes permutation fan-out scaling of the
// kernel at the acceptance point (m=100, 100 permutations). On a single-core
// host all widths coincide; the outputs are bitwise identical regardless.
func BenchmarkSellerShapleyWorkers(b *testing.B) {
	chunks, test := benchChunks(b, 100, 60)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SellerShapleyKernelCtx(context.Background(), chunks, test, 100, 0, 1, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
