package valuation

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"share/internal/dataset"
	"share/internal/regress"
	"share/internal/stat"
)

// SellerShapleyTMC is the production estimator for per-seller Shapley
// values: truncated Monte Carlo permutation sampling with an incremental OLS
// accumulator, so each permutation costs O(total rows) in Gram updates plus
// one O(k³) solve per chunk, independent of how the permutation interleaves
// sellers. This is what keeps the paper's Fig. 3(a) efficiency experiment
// (m up to 10,000 sellers) tractable.
//
// truncateTol stops scanning a permutation once the prefix utility is within
// the tolerance of the grand coalition's (0 disables truncation);
// permutations ≤ 0 defaults to the paper's 100.
func SellerShapleyTMC(chunks []*dataset.Dataset, test *dataset.Dataset, permutations int, truncateTol float64, rng *rand.Rand) ([]float64, error) {
	return SellerShapleyTMCCtx(context.Background(), chunks, test, permutations, truncateTol, rng)
}

// SellerShapleyTMCCtx is SellerShapleyTMC with cooperative cancellation,
// checked once per permutation.
func SellerShapleyTMCCtx(ctx context.Context, chunks []*dataset.Dataset, test *dataset.Dataset, permutations int, truncateTol float64, rng *rand.Rand) ([]float64, error) {
	m := len(chunks)
	if m == 0 {
		return nil, errors.New("valuation: no seller chunks")
	}
	if test.Len() == 0 {
		return nil, errors.New("valuation: empty test set")
	}
	if rng == nil {
		return nil, errors.New("valuation: nil random source")
	}
	if permutations <= 0 {
		permutations = 100
	}
	k := 0
	for _, c := range chunks {
		if c.Len() > 0 {
			k = c.NumFeatures()
			break
		}
	}
	if k == 0 {
		return nil, errors.New("valuation: all seller chunks are empty")
	}
	inc := regress.NewIncremental(k)

	var grand float64
	if truncateTol > 0 {
		for _, c := range chunks {
			inc.AddDataset(c)
		}
		grand = evalModel(inc, test)
		inc.Reset()
	}

	sv := make([]float64, m)
	for p := 0; p < permutations; p++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("valuation: canceled after %d/%d permutations: %w", p, permutations, err)
		}
		perm := stat.Perm(rng, m)
		inc.Reset()
		prev := 0.0
		for _, idx := range perm {
			inc.AddDataset(chunks[idx])
			cur := evalModel(inc, test)
			sv[idx] += cur - prev
			prev = cur
			if truncateTol > 0 && math.Abs(grand-cur) <= truncateTol {
				break
			}
		}
	}
	inv := 1 / float64(permutations)
	for i := range sv {
		sv[i] *= inv
	}
	return sv, nil
}
