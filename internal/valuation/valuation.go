// Package valuation scores data for the market pipeline: point-level Shapley
// values used to build the quality-sorted seller partition (§6.1), and
// chunk-level (per-seller) Shapley utilities used by the broker to update
// dataset weights after each transaction (§5.2).
//
// Point-level valuation uses truncated Monte Carlo permutation sampling with
// an incremental OLS accumulator, so scanning a 9,568-point permutation costs
// O(n·k³) instead of O(n²·k²) — this is what makes the paper's "sort data by
// Shapley-measured quality with 100 permutations" preprocessing tractable.
package valuation

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"share/internal/dataset"
	"share/internal/regress"
	"share/internal/shapley"
	"share/internal/stat"
)

// PointShapleyOptions tune PointShapley; the zero value uses the paper's
// 100 permutations with a small evaluation subsample and no truncation.
type PointShapleyOptions struct {
	// Permutations is the Monte Carlo permutation count (default 100, the
	// paper's setting).
	Permutations int
	// EvalSample caps the number of test rows used to score each prefix
	// model (default 128; 0 keeps the default, negative uses all rows).
	EvalSample int
	// TruncateTol stops scanning a permutation once the prefix utility is
	// within this tolerance of the full-data utility (0 disables).
	TruncateTol float64
}

// PointShapley estimates each training point's Shapley contribution to the
// explained variance of an OLS model evaluated on test. The returned slice
// is aligned with train's rows.
func PointShapley(train, test *dataset.Dataset, opt PointShapleyOptions, rng *rand.Rand) ([]float64, error) {
	if train.Len() == 0 {
		return nil, errors.New("valuation: empty training set")
	}
	if test.Len() == 0 {
		return nil, errors.New("valuation: empty test set")
	}
	if rng == nil {
		return nil, errors.New("valuation: nil random source")
	}
	if opt.Permutations <= 0 {
		opt.Permutations = 100
	}
	eval := test
	if opt.EvalSample == 0 {
		opt.EvalSample = 128
	}
	if opt.EvalSample > 0 && test.Len() > opt.EvalSample {
		idx := stat.Perm(rng, test.Len())[:opt.EvalSample]
		eval = test.Subset(idx)
	}

	n := train.Len()
	k := train.NumFeatures()
	inc := regress.NewIncremental(k)

	// Utility of the grand coalition, for truncation.
	var grand float64
	if opt.TruncateTol > 0 {
		inc.AddDataset(train)
		grand = evalModel(inc, eval)
		inc.Reset()
	}

	sv := make([]float64, n)
	for p := 0; p < opt.Permutations; p++ {
		perm := stat.Perm(rng, n)
		inc.Reset()
		prev := 0.0
		for _, idx := range perm {
			inc.Add(train.X[idx], train.Y[idx])
			cur := evalModel(inc, eval)
			sv[idx] += cur - prev
			prev = cur
			if opt.TruncateTol > 0 && math.Abs(grand-cur) <= opt.TruncateTol {
				// Remaining points in this permutation get zero marginal.
				break
			}
		}
	}
	inv := 1 / float64(opt.Permutations)
	for i := range sv {
		sv[i] *= inv
	}
	return sv, nil
}

// evalModel scores the accumulator's current model on eval by explained
// variance, returning 0 when the model cannot be solved or scored.
func evalModel(inc *regress.Incremental, eval *dataset.Dataset) float64 {
	m, err := inc.Solve()
	if err != nil {
		return 0
	}
	met, err := regress.Evaluate(m, eval)
	if err != nil {
		return 0
	}
	ev := met.ExplainedVariance
	if math.IsNaN(ev) || math.IsInf(ev, 0) {
		return 0
	}
	return ev
}

// QualitySort reorders train in place from highest to lowest point-level
// Shapley quality and returns the scores in the new row order.
func QualitySort(train, test *dataset.Dataset, opt PointShapleyOptions, rng *rand.Rand) ([]float64, error) {
	scores, err := PointShapley(train, test, opt, rng)
	if err != nil {
		return nil, err
	}
	// Capture scores in sorted order before the rows move.
	sorted := append([]float64(nil), scores...)
	if err := train.SortByScore(scores); err != nil {
		return nil, err
	}
	// SortByScore reorders rows by descending score; replicate the order
	// for the returned scores.
	// (Sorting a copy descending matches SortByScore's stable descending
	// order on distinct values; ties keep row order, which is fine for
	// quality bucketing.)
	sortDescending(sorted)
	return sorted, nil
}

func sortDescending(a []float64) {
	// Insertion-free: use sort via wrapper to avoid importing sort twice.
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] < v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// ChunkUtility returns a Shapley utility over seller chunks: the explained
// variance of a model trained on the union of the coalition's chunks and
// scored on test. Coalition evaluations are memoized, since Monte Carlo
// permutations revisit prefixes rarely but Exact revisits subsets never —
// the memo mostly serves the grand/empty coalitions and tests.
func ChunkUtility(chunks []*dataset.Dataset, test *dataset.Dataset) shapley.Utility {
	memo := make(map[string]float64)
	return func(coalition []int) float64 {
		key := coalitionKey(coalition)
		if v, ok := memo[key]; ok {
			return v
		}
		parts := make([]*dataset.Dataset, len(coalition))
		for i, c := range coalition {
			parts[i] = chunks[c]
		}
		joined, err := dataset.Concat(parts...)
		if err != nil || joined.Len() == 0 {
			memo[key] = 0
			return 0
		}
		v := regress.ExplainedVariance(joined, test)
		memo[key] = v
		return v
	}
}

func coalitionKey(coalition []int) string {
	// Coalitions arrive sorted; a compact textual key suffices.
	b := make([]byte, 0, len(coalition)*3)
	for _, c := range coalition {
		b = append(b, byte(c), byte(c>>8), byte(c>>16))
	}
	return string(b)
}

// SellerShapley computes per-seller Shapley values of the trained product's
// explained variance using Monte Carlo permutations (Def. 3.2 instantiated
// at chunk granularity). permutations ≤ 0 defaults to the paper's 100.
func SellerShapley(chunks []*dataset.Dataset, test *dataset.Dataset, permutations int, rng *rand.Rand) ([]float64, error) {
	if len(chunks) == 0 {
		return nil, errors.New("valuation: no seller chunks")
	}
	if permutations <= 0 {
		permutations = 100
	}
	u := ChunkUtility(chunks, test)
	sv, err := shapley.MonteCarlo(len(chunks), u, permutations, rng)
	if err != nil {
		return nil, fmt.Errorf("valuation: seller Shapley: %w", err)
	}
	return sv, nil
}
