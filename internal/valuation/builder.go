package valuation

import (
	"context"
	"errors"
	"math"
	"math/rand"

	"share/internal/dataset"
	"share/internal/product"
	"share/internal/shapley"
)

// SellerShapleyBuilder estimates per-seller Shapley values for an arbitrary
// product.Builder: the coalition utility is the performance of the product
// manufactured from the union of the coalition's chunks. Unlike
// SellerShapleyTMC it cannot exploit incremental sufficient statistics (the
// builder is opaque), so each prefix retrains from scratch — use it for
// non-OLS products and modest seller counts; the market engine picks the
// incremental path automatically when the product is OLS.
func SellerShapleyBuilder(chunks []*dataset.Dataset, test *dataset.Dataset, b product.Builder, permutations int, truncateTol float64, rng *rand.Rand) ([]float64, error) {
	return SellerShapleyBuilderCtx(context.Background(), chunks, test, b, permutations, truncateTol, rng)
}

// SellerShapleyBuilderCtx is SellerShapleyBuilder with cooperative
// cancellation, checked once per permutation.
func SellerShapleyBuilderCtx(ctx context.Context, chunks []*dataset.Dataset, test *dataset.Dataset, b product.Builder, permutations int, truncateTol float64, rng *rand.Rand) ([]float64, error) {
	m := len(chunks)
	if m == 0 {
		return nil, errors.New("valuation: no seller chunks")
	}
	if b == nil {
		return nil, errors.New("valuation: nil product builder")
	}
	if test.Len() == 0 {
		return nil, errors.New("valuation: empty test set")
	}
	if rng == nil {
		return nil, errors.New("valuation: nil random source")
	}
	if permutations <= 0 {
		permutations = 100
	}

	utility := func(coalition []int) float64 {
		parts := make([]*dataset.Dataset, len(coalition))
		for i, c := range coalition {
			parts[i] = chunks[c]
		}
		joined, err := dataset.Concat(parts...)
		if err != nil {
			return 0
		}
		rep, err := b.Build(joined, test)
		if err != nil || math.IsNaN(rep.Performance) {
			return 0
		}
		return rep.Performance
	}
	if truncateTol > 0 {
		return shapley.TruncatedMonteCarloCtx(ctx, m, utility, permutations, truncateTol, rng)
	}
	return shapley.MonteCarloCtx(ctx, m, utility, permutations, rng)
}

// SellerShapley computes Shapley values with the builder-generic path but a
// dedicated, faster estimator when the builder is the OLS product. It is the
// single entry point the market engine calls.
func SellerShapleyFor(b product.Builder, chunks []*dataset.Dataset, test *dataset.Dataset, permutations int, truncateTol float64, rng *rand.Rand) ([]float64, error) {
	return SellerShapleyForCtx(context.Background(), b, chunks, test, permutations, truncateTol, rng)
}

// SellerShapleyForCtx is SellerShapleyFor with cooperative cancellation:
// ctx is checked between permutations, so a canceled weight update aborts
// within one permutation's work instead of running minutes to completion.
// With a background context the results (and the rng stream) are
// bit-identical to SellerShapleyFor.
func SellerShapleyForCtx(ctx context.Context, b product.Builder, chunks []*dataset.Dataset, test *dataset.Dataset, permutations int, truncateTol float64, rng *rand.Rand) ([]float64, error) {
	if _, isOLS := b.(product.OLS); isOLS || b == nil {
		return SellerShapleyTMCCtx(ctx, chunks, test, permutations, truncateTol, rng)
	}
	return SellerShapleyBuilderCtx(ctx, chunks, test, b, permutations, truncateTol, rng)
}
