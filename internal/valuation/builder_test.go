package valuation

import (
	"math"
	"testing"

	"share/internal/dataset"
	"share/internal/product"
	"share/internal/stat"
)

func TestSellerShapleyBuilderMatchesTMCForOLS(t *testing.T) {
	train, test := cleanAndNoisy(40, 20, 30)
	chunks, err := dataset.PartitionEqual(train, 6)
	if err != nil {
		t.Fatal(err)
	}
	generic, err := SellerShapleyBuilder(chunks, test, product.OLS{}, 200, 0, stat.NewRand(31))
	if err != nil {
		t.Fatalf("SellerShapleyBuilder: %v", err)
	}
	fast, err := SellerShapleyTMC(chunks, test, 200, 0, stat.NewRand(32))
	if err != nil {
		t.Fatalf("SellerShapleyTMC: %v", err)
	}
	for i := range generic {
		if math.Abs(generic[i]-fast[i]) > 0.08 {
			t.Errorf("seller %d: builder path %v vs incremental %v", i, generic[i], fast[i])
		}
	}
}

func TestSellerShapleyForDispatch(t *testing.T) {
	train, test := cleanAndNoisy(30, 10, 33)
	chunks, err := dataset.PartitionEqual(train, 4)
	if err != nil {
		t.Fatal(err)
	}
	// OLS dispatches to the incremental estimator (same stream, same
	// values).
	viaFor, err := SellerShapleyFor(product.OLS{}, chunks, test, 50, 0, stat.NewRand(34))
	if err != nil {
		t.Fatalf("SellerShapleyFor(OLS): %v", err)
	}
	direct, err := SellerShapleyTMC(chunks, test, 50, 0, stat.NewRand(34))
	if err != nil {
		t.Fatalf("SellerShapleyTMC: %v", err)
	}
	for i := range viaFor {
		if viaFor[i] != direct[i] {
			t.Errorf("OLS dispatch diverged at %d: %v vs %v", i, viaFor[i], direct[i])
		}
	}
	// A non-OLS product goes through the generic path and still returns
	// one value per seller.
	mv, err := SellerShapleyFor(product.MeanVector{}, chunks, test, 20, 0, stat.NewRand(35))
	if err != nil {
		t.Fatalf("SellerShapleyFor(MeanVector): %v", err)
	}
	if len(mv) != 4 {
		t.Errorf("got %d values", len(mv))
	}
}

func TestSellerShapleyBuilderValidation(t *testing.T) {
	train, test := cleanAndNoisy(10, 0, 36)
	chunks, _ := dataset.PartitionEqual(train, 2)
	if _, err := SellerShapleyBuilder(nil, test, product.OLS{}, 10, 0, stat.NewRand(1)); err == nil {
		t.Error("accepted no chunks")
	}
	if _, err := SellerShapleyBuilder(chunks, test, nil, 10, 0, stat.NewRand(1)); err == nil {
		t.Error("accepted nil builder")
	}
	if _, err := SellerShapleyBuilder(chunks, &dataset.Dataset{}, product.OLS{}, 10, 0, stat.NewRand(1)); err == nil {
		t.Error("accepted empty test set")
	}
	if _, err := SellerShapleyBuilder(chunks, test, product.OLS{}, 10, 0, nil); err == nil {
		t.Error("accepted nil rng")
	}
}
