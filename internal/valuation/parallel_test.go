package valuation

import (
	"math"
	"testing"

	"share/internal/dataset"
	"share/internal/stat"
)

func TestParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	train, test := cleanAndNoisy(60, 30, 50)
	chunks, err := dataset.PartitionEqual(train, 9)
	if err != nil {
		t.Fatal(err)
	}
	var first []float64
	for _, workers := range []int{1, 2, 4, 16} {
		sv, err := SellerShapleyParallel(chunks, test, 40, 0, 77, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if first == nil {
			first = sv
			continue
		}
		for i := range sv {
			if sv[i] != first[i] {
				t.Fatalf("workers=%d changed result at %d: %v vs %v", workers, i, sv[i], first[i])
			}
		}
	}
}

func TestParallelMatchesSequentialEstimate(t *testing.T) {
	// Different permutation streams, so only statistical agreement is
	// expected — both are unbiased estimators of the same values.
	train, test := cleanAndNoisy(60, 30, 51)
	chunks, err := dataset.PartitionEqual(train, 6)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SellerShapleyParallel(chunks, test, 400, 0, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := SellerShapleyTMC(chunks, test, 400, 0, stat.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range par {
		if math.Abs(par[i]-seq[i]) > 0.06 {
			t.Errorf("seller %d: parallel %v vs sequential %v", i, par[i], seq[i])
		}
	}
}

func TestParallelTruncationStillRanks(t *testing.T) {
	clean, test := cleanAndNoisy(30, 0, 52)
	noisy, _ := cleanAndNoisy(0, 60, 53)
	parts, err := dataset.PartitionEqual(noisy, 2)
	if err != nil {
		t.Fatal(err)
	}
	chunks := append([]*dataset.Dataset{clean}, parts...)
	sv, err := SellerShapleyParallel(chunks, test, 60, 0.01, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sv[0] <= sv[1] || sv[0] <= sv[2] {
		t.Errorf("ranking lost under parallel truncation: %v", sv)
	}
}

func TestParallelValidation(t *testing.T) {
	_, test := cleanAndNoisy(5, 0, 54)
	if _, err := SellerShapleyParallel(nil, test, 10, 0, 1, 2); err == nil {
		t.Error("accepted no chunks")
	}
	train, _ := cleanAndNoisy(4, 0, 55)
	chunks, _ := dataset.PartitionEqual(train, 2)
	if _, err := SellerShapleyParallel(chunks, &dataset.Dataset{}, 10, 0, 1, 2); err == nil {
		t.Error("accepted empty test set")
	}
	if _, err := SellerShapleyParallel([]*dataset.Dataset{{}, {}}, test, 10, 0, 1, 2); err == nil {
		t.Error("accepted all-empty chunks")
	}
}
