package valuation

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"share/internal/dataset"
	"share/internal/parallel"
	"share/internal/product"
	"share/internal/regress"
	"share/internal/stat"
)

// momentKernel is the moment-cached valuation engine for OLS products.
// Built once per trading round, it precomputes every seller chunk's Gram
// sufficient statistics and the test set's centered evaluation moments, so
// one permutation-prefix step costs O(k²) to merge a chunk, O(k³) to refit,
// and O(k²) to score — independent of chunk rows and test-set size. The
// seed-era estimator paid O(rows·k²) per merge and O(n_test·k) per score.
type momentKernel struct {
	moments []*regress.Moments
	eval    *regress.EvalMoments
	m       int
	k       int
}

// newMomentKernel validates the inputs and precomputes all per-round
// statistics. Empty chunks yield zero moments and merge as no-ops, matching
// the row-streaming estimator's treatment of zero-allocation sellers.
func newMomentKernel(chunks []*dataset.Dataset, test *dataset.Dataset) (*momentKernel, error) {
	m := len(chunks)
	if m == 0 {
		return nil, errors.New("valuation: no seller chunks")
	}
	k := 0
	for _, c := range chunks {
		if c.Len() > 0 {
			k = c.NumFeatures()
			break
		}
	}
	if k == 0 {
		return nil, errors.New("valuation: all seller chunks are empty")
	}
	if test.Len() == 0 {
		return nil, errors.New("valuation: empty test set")
	}
	eval, err := regress.NewEvalMoments(test)
	if err != nil {
		return nil, fmt.Errorf("valuation: caching test-set moments: %w", err)
	}
	kn := &momentKernel{
		moments: make([]*regress.Moments, m),
		eval:    eval,
		m:       m,
		k:       k,
	}
	for i, c := range chunks {
		kn.moments[i] = regress.DatasetMoments(c, k)
	}
	return kn, nil
}

// kernelScratch is one worker's reusable state: the coalition accumulator
// and an allocation-free solve workspace. One pair per worker keeps the
// permutation scan free of per-step heap traffic.
type kernelScratch struct {
	inc *regress.Incremental
	sol *regress.Solver
}

func (kn *momentKernel) newScratch() *kernelScratch {
	return &kernelScratch{
		inc: regress.NewIncremental(kn.k),
		sol: regress.NewSolver(kn.k),
	}
}

// utility scores the accumulator's current coalition: solve the ridge-damped
// normal equations and evaluate explained variance against the cached test
// moments. Unsolvable (empty) coalitions score 0, like evalModel.
func (kn *momentKernel) utility(sc *kernelScratch) float64 {
	mdl, err := sc.sol.Solve(sc.inc)
	if err != nil {
		return 0
	}
	return kn.eval.ExplainedVariance(mdl)
}

// grand returns the grand coalition's utility (for truncation).
func (kn *momentKernel) grand() float64 {
	sc := kn.newScratch()
	for _, mo := range kn.moments {
		sc.inc.AddMoments(mo)
	}
	return kn.utility(sc)
}

// scan credits one permutation's marginal contributions into credit
// (len m), reusing sc as scratch. grand/tol enable truncated Monte Carlo
// (tol ≤ 0 disables).
func (kn *momentKernel) scan(sc *kernelScratch, perm []int, credit []float64, grand, tol float64) {
	sc.inc.Reset()
	prev := 0.0
	for _, idx := range perm {
		sc.inc.AddMoments(kn.moments[idx])
		cur := kn.utility(sc)
		credit[idx] += cur - prev
		prev = cur
		if tol > 0 && math.Abs(grand-cur) <= tol {
			break
		}
	}
}

// SellerShapleyMoments is the moment-cached drop-in for SellerShapleyTMC:
// the same truncated Monte Carlo estimator over the same permutation stream
// (one stat.Perm draw from rng per permutation), but with each prefix step
// reduced from O(rows·k²)+O(n_test·k) to O(k²)+O(k³). On identical (rng
// seed, permutations) it agrees with SellerShapleyTMC to ≲1e-9 — the only
// difference is floating-point association order in the Gram sums and the
// fused evaluation.
func SellerShapleyMoments(chunks []*dataset.Dataset, test *dataset.Dataset, permutations int, truncateTol float64, rng *rand.Rand) ([]float64, error) {
	return SellerShapleyMomentsCtx(context.Background(), chunks, test, permutations, truncateTol, rng)
}

// SellerShapleyMomentsCtx is SellerShapleyMoments with cooperative
// cancellation, checked once per permutation.
func SellerShapleyMomentsCtx(ctx context.Context, chunks []*dataset.Dataset, test *dataset.Dataset, permutations int, truncateTol float64, rng *rand.Rand) ([]float64, error) {
	if rng == nil {
		return nil, errors.New("valuation: nil random source")
	}
	if permutations <= 0 {
		permutations = 100
	}
	kn, err := newMomentKernel(chunks, test)
	if err != nil {
		return nil, err
	}
	var grand float64
	if truncateTol > 0 {
		grand = kn.grand()
	}
	sc := kn.newScratch()
	sv := make([]float64, kn.m)
	for p := 0; p < permutations; p++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("valuation: canceled after %d/%d permutations: %w", p, permutations, err)
		}
		kn.scan(sc, stat.Perm(rng, kn.m), sv, grand, truncateTol)
	}
	inv := 1 / float64(permutations)
	for i := range sv {
		sv[i] *= inv
	}
	return sv, nil
}

// SellerShapleyKernelCtx is the production trade-round estimator: the
// moment-cached kernel with its permutations fanned out across a worker
// pool. It follows the repo-wide determinism convention (internal/parallel):
// each permutation draws from its own rand.Rand seeded as seed+perm-index
// and writes into its own arena row, and the final reduction runs in
// permutation order — so the result depends only on (seed, permutations),
// bit-identically for every worker count. workers ≤ 0 uses GOMAXPROCS.
//
// ctx is checked before each permutation: a canceled round stops dispatching
// new permutations, drains the pool within one permutation's work per
// worker, and returns ctx.Err().
func SellerShapleyKernelCtx(ctx context.Context, chunks []*dataset.Dataset, test *dataset.Dataset, permutations int, truncateTol float64, seed int64, workers int) ([]float64, error) {
	kn, err := newMomentKernel(chunks, test)
	if err != nil {
		return nil, err
	}
	return kn.shapley(ctx, permutations, truncateTol, seed, workers)
}

// SellerShapleyKernelRedundancyCtx runs the kernel estimator and also
// returns each seller's pairwise redundancy computed from the very Gram
// sufficient statistics the kernel already cached for the round — the
// similarity signal costs no extra pass over seller data.
func SellerShapleyKernelRedundancyCtx(ctx context.Context, chunks []*dataset.Dataset, test *dataset.Dataset, permutations int, truncateTol float64, seed int64, workers int) (sv, redundancy []float64, err error) {
	kn, err := newMomentKernel(chunks, test)
	if err != nil {
		return nil, nil, err
	}
	sv, err = kn.shapley(ctx, permutations, truncateTol, seed, workers)
	if err != nil {
		return nil, nil, err
	}
	return sv, Redundancy(kn.moments), nil
}

// shapley is the shared fan-out body of the kernel entry points.
func (kn *momentKernel) shapley(ctx context.Context, permutations int, truncateTol float64, seed int64, workers int) ([]float64, error) {
	if permutations <= 0 {
		permutations = 100
	}
	var grand float64
	if truncateTol > 0 {
		grand = kn.grand()
	}

	workers = parallel.Resolve(workers, permutations)
	arena := make([]float64, permutations*kn.m)
	scratch := make([]*kernelScratch, workers)
	for w := range scratch {
		scratch[w] = kn.newScratch()
	}
	var canceled atomic.Bool
	parallel.ForWorker(workers, permutations, func(w, p int) {
		if canceled.Load() {
			return
		}
		if ctx.Err() != nil {
			canceled.Store(true)
			return
		}
		rng := stat.NewRand(seed + int64(p))
		kn.scan(scratch[w], stat.Perm(rng, kn.m), arena[p*kn.m:(p+1)*kn.m], grand, truncateTol)
	})
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("valuation: kernel canceled: %w", err)
	}

	sv := make([]float64, kn.m)
	for p := 0; p < permutations; p++ {
		part := arena[p*kn.m : (p+1)*kn.m]
		for i, v := range part {
			sv[i] += v
		}
	}
	inv := 1 / float64(permutations)
	for i := range sv {
		sv[i] *= inv
	}
	return sv, nil
}

// SellerShapleyBuilderParallelCtx fans the permutations of the
// builder-generic estimator (SellerShapleyBuilderCtx) across a worker pool
// for non-OLS products. The builder is opaque, so each prefix still retrains
// from scratch — the win here is wall-clock only, near-linear in workers
// because permutations are independent. Determinism and cancellation follow
// the same contract as SellerShapleyKernelCtx: per-permutation rngs seeded
// seed+index, in-order reduction, ctx checked before each permutation. The
// builder must be safe for concurrent Build calls (all in-tree builders are
// stateless).
func SellerShapleyBuilderParallelCtx(ctx context.Context, chunks []*dataset.Dataset, test *dataset.Dataset, b product.Builder, permutations int, truncateTol float64, seed int64, workers int) ([]float64, error) {
	m := len(chunks)
	if m == 0 {
		return nil, errors.New("valuation: no seller chunks")
	}
	if b == nil {
		return nil, errors.New("valuation: nil product builder")
	}
	if test.Len() == 0 {
		return nil, errors.New("valuation: empty test set")
	}
	if permutations <= 0 {
		permutations = 100
	}

	utility := func(coalition []int) float64 {
		parts := make([]*dataset.Dataset, len(coalition))
		for i, c := range coalition {
			parts[i] = chunks[c]
		}
		joined, err := dataset.Concat(parts...)
		if err != nil {
			return 0
		}
		rep, err := b.Build(joined, test)
		if err != nil || math.IsNaN(rep.Performance) {
			return 0
		}
		return rep.Performance
	}
	var grand float64
	if truncateTol > 0 {
		full := make([]int, m)
		for i := range full {
			full[i] = i
		}
		grand = utility(full)
	}
	empty := utility(nil)

	workers = parallel.Resolve(workers, permutations)
	arena := make([]float64, permutations*m)
	var canceled atomic.Bool
	parallel.For(workers, permutations, func(p int) {
		if canceled.Load() {
			return
		}
		if ctx.Err() != nil {
			canceled.Store(true)
			return
		}
		rng := stat.NewRand(seed + int64(p))
		perm := stat.Perm(rng, m)
		credit := arena[p*m : (p+1)*m]
		coalition := make([]int, 0, m)
		prev := empty
		for _, idx := range perm {
			coalition = insertSorted(coalition, idx)
			cur := utility(coalition)
			credit[idx] += cur - prev
			prev = cur
			if truncateTol > 0 && math.Abs(grand-cur) <= truncateTol {
				break
			}
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("valuation: kernel canceled: %w", err)
	}

	sv := make([]float64, m)
	for p := 0; p < permutations; p++ {
		part := arena[p*m : (p+1)*m]
		for i, v := range part {
			sv[i] += v
		}
	}
	inv := 1 / float64(permutations)
	for i := range sv {
		sv[i] *= inv
	}
	return sv, nil
}

// insertSorted inserts v into sorted slice a, keeping it sorted (coalition
// utilities expect ascending player indices).
func insertSorted(a []int, v int) []int {
	a = append(a, v)
	i := len(a) - 1
	for i > 0 && a[i-1] > v {
		a[i] = a[i-1]
		i--
	}
	a[i] = v
	return a
}
