package valuation

import (
	"errors"
	"math"
	"runtime"
	"sync"

	"share/internal/dataset"
	"share/internal/regress"
	"share/internal/stat"
)

// SellerShapleyParallel is SellerShapleyTMC with the permutations fanned out
// across a worker pool. Permutation sampling is embarrassingly parallel —
// each permutation scan is independent and the estimator just averages them
// — so the speedup is near-linear until memory bandwidth saturates.
//
// Determinism: results depend only on (seed, permutations), not on worker
// count or scheduling, because each permutation gets its own rand.Rand
// seeded as seed+perm-index. workers ≤ 0 uses GOMAXPROCS.
func SellerShapleyParallel(chunks []*dataset.Dataset, test *dataset.Dataset, permutations int, truncateTol float64, seed int64, workers int) ([]float64, error) {
	m := len(chunks)
	if m == 0 {
		return nil, errors.New("valuation: no seller chunks")
	}
	if test.Len() == 0 {
		return nil, errors.New("valuation: empty test set")
	}
	if permutations <= 0 {
		permutations = 100
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > permutations {
		workers = permutations
	}
	k := 0
	for _, c := range chunks {
		if c.Len() > 0 {
			k = c.NumFeatures()
			break
		}
	}
	if k == 0 {
		return nil, errors.New("valuation: all seller chunks are empty")
	}

	// Grand-coalition utility for truncation, computed once up front.
	var grand float64
	if truncateTol > 0 {
		inc := regress.NewIncremental(k)
		for _, c := range chunks {
			inc.AddDataset(c)
		}
		grand = evalModel(inc, test)
	}

	// Each permutation writes its own marginal vector; the final reduction
	// runs in permutation order so the result is bit-for-bit identical for
	// any worker count (floating-point addition is not associative — a
	// grouped reduction would drift in the last bits).
	perPerm := make([][]float64, permutations)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inc := regress.NewIncremental(k)
			for p := range jobs {
				rng := stat.NewRand(seed + int64(p))
				perm := stat.Perm(rng, m)
				inc.Reset()
				sum := make([]float64, m)
				prev := 0.0
				for _, idx := range perm {
					inc.AddDataset(chunks[idx])
					cur := evalModel(inc, test)
					sum[idx] += cur - prev
					prev = cur
					if truncateTol > 0 && math.Abs(grand-cur) <= truncateTol {
						break
					}
				}
				perPerm[p] = sum
			}
		}()
	}
	for p := 0; p < permutations; p++ {
		jobs <- p
	}
	close(jobs)
	wg.Wait()

	sv := make([]float64, m)
	for _, part := range perPerm {
		for i, v := range part {
			sv[i] += v
		}
	}
	inv := 1 / float64(permutations)
	for i := range sv {
		sv[i] *= inv
	}
	return sv, nil
}
