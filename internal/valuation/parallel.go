package valuation

import (
	"context"

	"share/internal/dataset"
)

// SellerShapleyParallel is SellerShapleyTMC with the permutations fanned out
// across a worker pool. Permutation sampling is embarrassingly parallel —
// each permutation scan is independent and the estimator just averages them
// — so the speedup is near-linear until memory bandwidth saturates.
//
// Since the moment-cached kernel landed it is a thin wrapper over
// SellerShapleyKernelCtx: per-chunk Gram statistics and the fused test-set
// evaluation make each permutation step O(k²)+O(k³) on top of the fan-out.
//
// Determinism: results depend only on (seed, permutations), not on worker
// count or scheduling, because each permutation gets its own rand.Rand
// seeded as seed+perm-index. workers ≤ 0 uses GOMAXPROCS.
func SellerShapleyParallel(chunks []*dataset.Dataset, test *dataset.Dataset, permutations int, truncateTol float64, seed int64, workers int) ([]float64, error) {
	return SellerShapleyKernelCtx(context.Background(), chunks, test, permutations, truncateTol, seed, workers)
}
