package valuation

import (
	"errors"
	"math"

	"share/internal/dataset"
	"share/internal/parallel"
	"share/internal/regress"
	"share/internal/stat"
)

// SellerShapleyParallel is SellerShapleyTMC with the permutations fanned out
// across a worker pool. Permutation sampling is embarrassingly parallel —
// each permutation scan is independent and the estimator just averages them
// — so the speedup is near-linear until memory bandwidth saturates.
//
// Determinism: results depend only on (seed, permutations), not on worker
// count or scheduling, because each permutation gets its own rand.Rand
// seeded as seed+perm-index. workers ≤ 0 uses GOMAXPROCS.
func SellerShapleyParallel(chunks []*dataset.Dataset, test *dataset.Dataset, permutations int, truncateTol float64, seed int64, workers int) ([]float64, error) {
	m := len(chunks)
	if m == 0 {
		return nil, errors.New("valuation: no seller chunks")
	}
	if test.Len() == 0 {
		return nil, errors.New("valuation: empty test set")
	}
	if permutations <= 0 {
		permutations = 100
	}
	workers = parallel.Resolve(workers, permutations)
	k := 0
	for _, c := range chunks {
		if c.Len() > 0 {
			k = c.NumFeatures()
			break
		}
	}
	if k == 0 {
		return nil, errors.New("valuation: all seller chunks are empty")
	}

	// Grand-coalition utility for truncation, computed once up front.
	var grand float64
	if truncateTol > 0 {
		inc := regress.NewIncremental(k)
		for _, c := range chunks {
			inc.AddDataset(c)
		}
		grand = evalModel(inc, test)
	}

	// Each permutation writes into its own row of one pre-zeroed arena (one
	// allocation for the whole run instead of one marginal vector per
	// permutation); the final reduction runs in permutation order so the
	// result is bit-for-bit identical for any worker count (floating-point
	// addition is not associative — a grouped or per-worker reduction would
	// drift in the last bits). Each worker keeps one incremental regressor
	// as scratch, Reset between permutations; each permutation draws from
	// its own rand.Rand seeded as seed+perm-index, so results depend only
	// on (seed, permutations).
	arena := make([]float64, permutations*m)
	scratch := make([]*regress.Incremental, workers)
	for w := range scratch {
		scratch[w] = regress.NewIncremental(k)
	}
	parallel.ForWorker(workers, permutations, func(w, p int) {
		inc := scratch[w]
		rng := stat.NewRand(seed + int64(p))
		perm := stat.Perm(rng, m)
		inc.Reset()
		sum := arena[p*m : (p+1)*m]
		prev := 0.0
		for _, idx := range perm {
			inc.AddDataset(chunks[idx])
			cur := evalModel(inc, test)
			sum[idx] += cur - prev
			prev = cur
			if truncateTol > 0 && math.Abs(grand-cur) <= truncateTol {
				break
			}
		}
	})

	sv := make([]float64, m)
	for p := 0; p < permutations; p++ {
		part := arena[p*m : (p+1)*m]
		for i, v := range part {
			sv[i] += v
		}
	}
	inv := 1 / float64(permutations)
	for i := range sv {
		sv[i] *= inv
	}
	return sv, nil
}
