// Package numeric provides the scalar numerical routines Share depends on:
// root finding, one-dimensional maximization, numerical differentiation, and
// polynomial solving. The Go standard library ships no numerical toolkit, so
// this package implements the classical algorithms (bisection, Newton, Brent,
// golden-section search) from scratch on float64.
//
// All routines are deterministic and allocation-free on the hot path; they are
// used both by the analytic equilibrium derivations in internal/core (to
// verify first-order conditions) and by the generic Nash solver in
// internal/nash (as the inner best-response optimizer).
package numeric

import (
	"errors"
	"fmt"
	"math"
)

// Common errors returned by the root finders.
var (
	// ErrNoBracket reports that the supplied interval does not bracket a
	// sign change of the target function.
	ErrNoBracket = errors.New("numeric: interval does not bracket a root")
	// ErrMaxIterations reports that the iteration budget was exhausted
	// before the convergence tolerance was met.
	ErrMaxIterations = errors.New("numeric: maximum iterations exceeded")
	// ErrZeroDerivative reports that Newton's method encountered a
	// vanishing derivative and cannot continue.
	ErrZeroDerivative = errors.New("numeric: derivative vanished during Newton iteration")
)

// DefaultTol is the default absolute convergence tolerance used when a caller
// passes a non-positive tolerance.
const DefaultTol = 1e-12

// DefaultMaxIter is the default iteration budget for the iterative solvers.
const DefaultMaxIter = 200

// Bisect finds a root of f in [a, b] by bisection. It requires f(a) and f(b)
// to have opposite signs and converges linearly but unconditionally. tol is
// the absolute tolerance on the bracket width; pass 0 for DefaultTol.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	for i := 0; i < 10_000; i++ {
		mid := a + (b-a)/2
		fm := f(mid)
		if fm == 0 || (b-a)/2 < tol {
			return mid, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = mid, fm
		} else {
			b = mid
		}
	}
	return 0, ErrMaxIterations
}

// Newton finds a root of f starting from x0 using Newton-Raphson iteration
// with the analytic derivative df. It converges quadratically near simple
// roots. tol bounds |f(x)|; pass 0 for DefaultTol.
func Newton(f, df func(float64) float64, x0, tol float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	x := x0
	for i := 0; i < DefaultMaxIter; i++ {
		fx := f(x)
		if math.Abs(fx) < tol {
			return x, nil
		}
		d := df(x)
		if d == 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return 0, ErrZeroDerivative
		}
		step := fx / d
		x -= step
		if math.Abs(step) < tol*(1+math.Abs(x)) {
			return x, nil
		}
	}
	return 0, ErrMaxIterations
}

// Brent finds a root of f in the bracketing interval [a, b] using Brent's
// method, which combines bisection, secant steps and inverse quadratic
// interpolation. It is the workhorse root finder: superlinear when the
// function cooperates, never worse than bisection when it does not.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	c, fc := a, fa
	d, e := b-a, b-a
	for i := 0; i < 10_000; i++ {
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		tol1 := 2*math.SmallestNonzeroFloat64*math.Abs(b) + tol/2
		xm := (c - b) / 2
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			s := fb / fa
			var p, q float64
			if a == c {
				// Secant step.
				p = 2 * xm * s
				q = 1 - s
			} else {
				// Inverse quadratic interpolation.
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			min1 := 3*xm*q - math.Abs(tol1*q)
			min2 := math.Abs(e * q)
			if 2*p < math.Min(min1, min2) {
				e, d = d, p/q
			} else {
				d, e = xm, xm
			}
		} else {
			d, e = xm, xm
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else {
			b += math.Copysign(tol1, xm)
		}
		fb = f(b)
		if math.Signbit(fb) == math.Signbit(fc) {
			c, fc = a, fa
			d, e = b-a, b-a
		}
	}
	return 0, ErrMaxIterations
}

// SolveQuadratic returns the real roots of ax²+bx+c = 0 in ascending order.
// It returns 0, 1 or 2 roots; a == 0 degrades gracefully to the linear case.
// The computation uses the numerically stable citardauq formulation to avoid
// catastrophic cancellation when b² >> 4ac.
func SolveQuadratic(a, b, c float64) []float64 {
	if a == 0 {
		if b == 0 {
			return nil
		}
		return []float64{-c / b}
	}
	disc := b*b - 4*a*c
	if disc < 0 {
		return nil
	}
	if disc == 0 {
		return []float64{-b / (2 * a)}
	}
	sq := math.Sqrt(disc)
	// q has the sign of b to keep b+sign(b)·sq away from cancellation.
	q := -(b + math.Copysign(sq, b)) / 2
	r1, r2 := q/a, c/q
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	return []float64{r1, r2}
}

// FixedPoint iterates x ← g(x) with damping factor damp in (0, 1] until
// successive iterates differ by less than tol, returning the fixed point.
// Damping (x ← (1−damp)·x + damp·g(x)) stabilizes oscillatory maps such as
// simultaneous best-response updates.
func FixedPoint(g func(float64) float64, x0, damp, tol float64, maxIter int) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	if damp <= 0 || damp > 1 {
		damp = 1
	}
	x := x0
	for i := 0; i < maxIter; i++ {
		next := (1-damp)*x + damp*g(x)
		if math.Abs(next-x) < tol*(1+math.Abs(next)) {
			return next, nil
		}
		x = next
	}
	return x, ErrMaxIterations
}
