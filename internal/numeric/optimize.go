package numeric

import "math"

// InvPhi is 1/φ, the inverse golden ratio: the bracket shrink factor of
// golden-section search. Exported so callers scheduling per-evaluation
// accuracy can reproduce the bracket trajectory (width after k steps is
// InvPhi^k of the initial bracket).
var InvPhi = (math.Sqrt(5) - 1) / 2

// invPhi is the internal alias.
var invPhi = InvPhi

// GoldenMax maximizes a unimodal function f on the closed interval [a, b]
// using golden-section search and returns the maximizing abscissa. The search
// shrinks the bracket by the inverse golden ratio each step, needing one
// function evaluation per iteration. tol is the absolute tolerance on the
// bracket width; pass 0 for DefaultTol (note golden-section cannot do better
// than ~sqrt(machine epsilon) in x, so tol is floored at 1e-10).
func GoldenMax(f func(float64) float64, a, b, tol float64) float64 {
	if tol <= 0 || tol < 1e-10 {
		tol = 1e-10
	}
	if a > b {
		a, b = b, a
	}
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc > fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	return (a + b) / 2
}

// GoldenMin minimizes a unimodal function on [a, b]; it is GoldenMax applied
// to -f.
func GoldenMin(f func(float64) float64, a, b, tol float64) float64 {
	return GoldenMax(func(x float64) float64 { return -f(x) }, a, b, tol)
}

// GoldenMaxErr is GoldenMax with an error-returning objective: the first
// error aborts the search immediately and is returned with a zero abscissa.
// Expensive objectives (an objective evaluation that is itself an iterative
// solve) use it to propagate cancellation and solver failures out of the
// search instead of masking them behind a sentinel value that silently
// corrupts the bracket.
func GoldenMaxErr(f func(float64) (float64, error), a, b, tol float64) (float64, error) {
	if tol <= 0 || tol < 1e-10 {
		tol = 1e-10
	}
	if a > b {
		a, b = b, a
	}
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, err := f(c)
	if err != nil {
		return 0, err
	}
	fd, err := f(d)
	if err != nil {
		return 0, err
	}
	for b-a > tol {
		if fc > fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			if fc, err = f(c); err != nil {
				return 0, err
			}
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			if fd, err = f(d); err != nil {
				return 0, err
			}
		}
	}
	return (a + b) / 2, nil
}

// PairFunc evaluates an objective at two abscissae and returns the values in
// argument order. width is the current bracket width, for callers that
// schedule the accuracy of each evaluation against the search's progress
// (coarse while the bracket is wide, tight as it closes). Implementations
// may evaluate the two points concurrently; GoldenMaxSpec never depends on
// their evaluation order, only on the returned values.
type PairFunc func(x1, x2, width float64) (f1, f2 float64, err error)

// GoldenMaxSpec is the speculative form of GoldenMaxErr: probe points are
// issued in pairs. The initial pair is the two interior golden points; each
// subsequent pair holds the two candidate successors of the bracket step —
// only one survives the fc/fd comparison, so a concurrent PairFunc overlaps
// the evaluation the sequential search would do next with the one it might
// need after that. The abscissa trajectory is identical to GoldenMaxErr's
// on the same objective values: speculation changes who computes what when,
// never what the bracket does.
func GoldenMaxSpec(pair PairFunc, a, b, tol float64) (float64, error) {
	if tol <= 0 || tol < 1e-10 {
		tol = 1e-10
	}
	if a > b {
		a, b = b, a
	}
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd, err := pair(c, d, b-a)
	if err != nil {
		return 0, err
	}
	for b-a > tol {
		// u succeeds c if the bracket keeps [a, d]; v succeeds d if it
		// keeps [c, b]. Both are evaluated before the branch resolves.
		u := d - invPhi*(d-a)
		v := c + invPhi*(b-c)
		fu, fv, err := pair(u, v, b-a)
		if err != nil {
			return 0, err
		}
		if fc > fd {
			b, d, fd = d, c, fc
			c, fc = u, fu
		} else {
			a, c, fc = c, d, fd
			d, fd = v, fv
		}
	}
	return (a + b) / 2, nil
}

// cgold is 2 − φ, the golden-section step fraction of Brent's method.
const cgold = 0.3819660112501051

// BrentMax maximizes a unimodal function on [a, b] by Brent's method:
// successive parabolic interpolation safeguarded by golden-section steps.
// On smooth objectives it converges superlinearly — typically 8–15
// evaluations against golden section's ~ln(width/tol)/0.48 — while the
// golden fallback keeps worst-case behavior comparable to GoldenMax. tol is
// the absolute localization tolerance on the returned abscissa, floored at
// 1e-10 like GoldenMax. Best-response searches inside the equilibrium
// cascade use it; it is deterministic (a pure function of f's values), so
// results stay bit-identical for every worker count.
func BrentMax(f func(float64) float64, a, b, tol float64) float64 {
	if tol <= 0 || tol < 1e-10 {
		tol = 1e-10
	}
	if a > b {
		a, b = b, a
	}
	x := a + cgold*(b-a)
	w, v := x, x
	fx := -f(x)
	fw, fv := fx, fx
	var d, e float64
	for iter := 0; iter < 200; iter++ {
		m := 0.5 * (a + b)
		tol1 := 1e-12*math.Abs(x) + tol
		tol2 := 2 * tol1
		if math.Abs(x-m) <= tol2-0.5*(b-a) {
			break
		}
		useGolden := true
		if math.Abs(e) > tol1 {
			// Parabola through (x, fx), (w, fw), (v, fv); accept its vertex
			// only if it falls inside the bracket and halves the
			// step-before-last (the classic convergence guard).
			r := (x - w) * (fx - fv)
			q := (x - v) * (fx - fw)
			p := (x-v)*q - (x-w)*r
			q = 2 * (q - r)
			if q > 0 {
				p = -p
			}
			q = math.Abs(q)
			etmp := e
			e = d
			if math.Abs(p) < math.Abs(0.5*q*etmp) && p > q*(a-x) && p < q*(b-x) {
				d = p / q
				u := x + d
				if u-a < tol2 || b-u < tol2 {
					d = tol1
					if x > m {
						d = -tol1
					}
				}
				useGolden = false
			}
		}
		if useGolden {
			if x < m {
				e = b - x
			} else {
				e = a - x
			}
			d = cgold * e
		}
		var u float64
		switch {
		case math.Abs(d) >= tol1:
			u = x + d
		case d > 0:
			u = x + tol1
		default:
			u = x - tol1
		}
		fu := -f(u)
		if fu <= fx {
			if u < x {
				b = x
			} else {
				a = x
			}
			v, fv = w, fw
			w, fw = x, fx
			x, fx = u, fu
		} else {
			if u < x {
				a = u
			} else {
				b = u
			}
			if fu <= fw || w == x {
				v, fv = w, fw
				w, fw = u, fu
			} else if fu <= fv || v == x || v == w {
				v, fv = u, fu
			}
		}
	}
	return x
}

// Derivative estimates f'(x) by central differences with step h; pass h <= 0
// for an automatic step scaled to x (cube root of machine epsilon, the
// accuracy-optimal choice for central differences).
func Derivative(f func(float64) float64, x, h float64) float64 {
	if h <= 0 {
		h = 6.055e-6 * (1 + math.Abs(x)) // cbrt(eps) ≈ 6.055e-6
	}
	return (f(x+h) - f(x-h)) / (2 * h)
}

// SecondDerivative estimates f”(x) by the three-point central stencil.
// Pass h <= 0 for an automatic step (fourth root of machine epsilon).
func SecondDerivative(f func(float64) float64, x, h float64) float64 {
	if h <= 0 {
		h = 1.221e-4 * (1 + math.Abs(x)) // eps^(1/4) ≈ 1.221e-4
	}
	return (f(x+h) - 2*f(x) + f(x-h)) / (h * h)
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}

// Linspace returns n evenly spaced points from a to b inclusive. n must be at
// least 2; n == 1 returns just a.
func Linspace(a, b float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{a}
	}
	out := make([]float64, n)
	step := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*step
	}
	out[n-1] = b
	return out
}

// Logspace returns n points spaced evenly on a log scale between a and b
// inclusive (both must be positive).
func Logspace(a, b float64, n int) []float64 {
	pts := Linspace(math.Log(a), math.Log(b), n)
	for i, p := range pts {
		pts[i] = math.Exp(p)
	}
	if n >= 1 {
		pts[0] = a
	}
	if n >= 2 {
		pts[n-1] = b
	}
	return pts
}

// AlmostEqual reports whether a and b are equal within absolute tolerance
// absTol or relative tolerance relTol (whichever is looser).
func AlmostEqual(a, b, absTol, relTol float64) bool {
	diff := math.Abs(a - b)
	if diff <= absTol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= relTol*scale
}
