package numeric

import "math"

// invPhi is 1/φ, the inverse golden ratio used by golden-section search.
var invPhi = (math.Sqrt(5) - 1) / 2

// GoldenMax maximizes a unimodal function f on the closed interval [a, b]
// using golden-section search and returns the maximizing abscissa. The search
// shrinks the bracket by the inverse golden ratio each step, needing one
// function evaluation per iteration. tol is the absolute tolerance on the
// bracket width; pass 0 for DefaultTol (note golden-section cannot do better
// than ~sqrt(machine epsilon) in x, so tol is floored at 1e-10).
func GoldenMax(f func(float64) float64, a, b, tol float64) float64 {
	if tol <= 0 || tol < 1e-10 {
		tol = 1e-10
	}
	if a > b {
		a, b = b, a
	}
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc > fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	return (a + b) / 2
}

// GoldenMin minimizes a unimodal function on [a, b]; it is GoldenMax applied
// to -f.
func GoldenMin(f func(float64) float64, a, b, tol float64) float64 {
	return GoldenMax(func(x float64) float64 { return -f(x) }, a, b, tol)
}

// Derivative estimates f'(x) by central differences with step h; pass h <= 0
// for an automatic step scaled to x (cube root of machine epsilon, the
// accuracy-optimal choice for central differences).
func Derivative(f func(float64) float64, x, h float64) float64 {
	if h <= 0 {
		h = 6.055e-6 * (1 + math.Abs(x)) // cbrt(eps) ≈ 6.055e-6
	}
	return (f(x+h) - f(x-h)) / (2 * h)
}

// SecondDerivative estimates f”(x) by the three-point central stencil.
// Pass h <= 0 for an automatic step (fourth root of machine epsilon).
func SecondDerivative(f func(float64) float64, x, h float64) float64 {
	if h <= 0 {
		h = 1.221e-4 * (1 + math.Abs(x)) // eps^(1/4) ≈ 1.221e-4
	}
	return (f(x+h) - 2*f(x) + f(x-h)) / (h * h)
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}

// Linspace returns n evenly spaced points from a to b inclusive. n must be at
// least 2; n == 1 returns just a.
func Linspace(a, b float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{a}
	}
	out := make([]float64, n)
	step := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*step
	}
	out[n-1] = b
	return out
}

// Logspace returns n points spaced evenly on a log scale between a and b
// inclusive (both must be positive).
func Logspace(a, b float64, n int) []float64 {
	pts := Linspace(math.Log(a), math.Log(b), n)
	for i, p := range pts {
		pts[i] = math.Exp(p)
	}
	if n >= 1 {
		pts[0] = a
	}
	if n >= 2 {
		pts[n-1] = b
	}
	return pts
}

// AlmostEqual reports whether a and b are equal within absolute tolerance
// absTol or relative tolerance relTol (whichever is looser).
func AlmostEqual(a, b, absTol, relTol float64) bool {
	diff := math.Abs(a - b)
	if diff <= absTol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= relTol*scale
}
