package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBisectFindsSimpleRoot(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	root, err := Bisect(f, 0, 2, 1e-12)
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Errorf("Bisect root = %v, want √2 = %v", root, math.Sqrt2)
	}
}

func TestBisectExactEndpoints(t *testing.T) {
	f := func(x float64) float64 { return x }
	if root, err := Bisect(f, 0, 1, 0); err != nil || root != 0 {
		t.Errorf("Bisect with f(a)=0: root=%v err=%v, want 0, nil", root, err)
	}
	if root, err := Bisect(f, -1, 0, 0); err != nil || root != 0 {
		t.Errorf("Bisect with f(b)=0: root=%v err=%v, want 0, nil", root, err)
	}
}

func TestBisectRejectsNonBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Bisect(f, -1, 1, 0); err == nil {
		t.Error("Bisect accepted an interval with no sign change")
	}
}

func TestNewtonQuadraticConvergence(t *testing.T) {
	f := func(x float64) float64 { return x*x*x - 8 }
	df := func(x float64) float64 { return 3 * x * x }
	root, err := Newton(f, df, 3, 1e-13)
	if err != nil {
		t.Fatalf("Newton: %v", err)
	}
	if math.Abs(root-2) > 1e-10 {
		t.Errorf("Newton root = %v, want 2", root)
	}
}

func TestNewtonZeroDerivative(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	df := func(x float64) float64 { return 2 * x }
	if _, err := Newton(f, df, 0, 0); err == nil {
		t.Error("Newton accepted a vanishing derivative at the start point")
	}
}

func TestBrentAgainstKnownRoots(t *testing.T) {
	cases := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"sqrt2", func(x float64) float64 { return x*x - 2 }, 0, 2, math.Sqrt2},
		{"cosx-x", func(x float64) float64 { return math.Cos(x) - x }, 0, 1, 0.7390851332151607},
		{"cubic", func(x float64) float64 { return (x - 1) * (x - 4) * (x + 5) }, 0, 2, 1},
		{"exp", func(x float64) float64 { return math.Exp(x) - 3 }, 0, 2, math.Log(3)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			root, err := Brent(c.f, c.a, c.b, 1e-13)
			if err != nil {
				t.Fatalf("Brent: %v", err)
			}
			if math.Abs(root-c.want) > 1e-9 {
				t.Errorf("Brent root = %v, want %v", root, c.want)
			}
		})
	}
}

func TestBrentRejectsNonBracket(t *testing.T) {
	if _, err := Brent(func(x float64) float64 { return 1 }, 0, 1, 0); err == nil {
		t.Error("Brent accepted an interval with no sign change")
	}
}

func TestSolveQuadraticCases(t *testing.T) {
	cases := []struct {
		a, b, c float64
		want    []float64
	}{
		{1, 0, -4, []float64{-2, 2}},
		{1, -2, 1, []float64{1}},
		{1, 0, 1, nil},
		{0, 2, -4, []float64{2}},
		{0, 0, 1, nil},
		{2, -10, 12, []float64{2, 3}},
	}
	for _, c := range cases {
		got := SolveQuadratic(c.a, c.b, c.c)
		if len(got) != len(c.want) {
			t.Errorf("SolveQuadratic(%g,%g,%g) = %v, want %v", c.a, c.b, c.c, got, c.want)
			continue
		}
		for i := range got {
			if math.Abs(got[i]-c.want[i]) > 1e-9 {
				t.Errorf("SolveQuadratic(%g,%g,%g)[%d] = %v, want %v", c.a, c.b, c.c, i, got[i], c.want[i])
			}
		}
	}
}

// Property: any real roots returned by SolveQuadratic satisfy the equation,
// and they are sorted ascending.
func TestSolveQuadraticProperty(t *testing.T) {
	prop := func(a, b, c float64) bool {
		// Confine coefficients to a sane range.
		a = math.Mod(a, 100)
		b = math.Mod(b, 100)
		c = math.Mod(c, 100)
		roots := SolveQuadratic(a, b, c)
		prev := math.Inf(-1)
		for _, r := range roots {
			if r < prev {
				return false
			}
			prev = r
			val := a*r*r + b*r + c
			scale := math.Abs(a*r*r) + math.Abs(b*r) + math.Abs(c) + 1
			if math.Abs(val) > 1e-7*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSolveQuadraticNoCancellation(t *testing.T) {
	// b² >> 4ac: naive formula loses the small root to cancellation.
	roots := SolveQuadratic(1, -1e8, 1)
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2", len(roots))
	}
	small := roots[0]
	if math.Abs(small-1e-8) > 1e-15 {
		t.Errorf("small root = %v, want 1e-8 (catastrophic cancellation?)", small)
	}
}

func TestFixedPointConverges(t *testing.T) {
	// x = cos(x) has the Dottie fixed point.
	got, err := FixedPoint(math.Cos, 1, 1, 1e-12, 500)
	if err != nil {
		t.Fatalf("FixedPoint: %v", err)
	}
	if math.Abs(got-0.7390851332151607) > 1e-9 {
		t.Errorf("FixedPoint = %v, want Dottie number", got)
	}
}

func TestFixedPointDampingStabilizesOscillation(t *testing.T) {
	// x ← 3.2 − x oscillates forever undamped; damping converges to 1.6.
	g := func(x float64) float64 { return 3.2 - x }
	got, err := FixedPoint(g, 0, 0.5, 1e-12, 500)
	if err != nil {
		t.Fatalf("FixedPoint with damping: %v", err)
	}
	if math.Abs(got-1.6) > 1e-9 {
		t.Errorf("FixedPoint = %v, want 1.6", got)
	}
}
