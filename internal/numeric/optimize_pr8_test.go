package numeric

import (
	"errors"
	"math"
	"testing"
)

// A flat objective gives golden section no gradient to follow; the search
// must still terminate and return a point inside the bracket.
func TestGoldenMaxFlatObjective(t *testing.T) {
	evals := 0
	x := GoldenMax(func(float64) float64 { evals++; return 3.5 }, -2, 5, 1e-8)
	if x < -2 || x > 5 {
		t.Fatalf("flat objective argmax %g escaped [-2, 5]", x)
	}
	// ~ln(7/1e-8)/ln(φ) ≈ 42 shrink steps plus the two initial probes.
	if evals > 60 {
		t.Fatalf("flat objective took %d evaluations; want bounded by the bracket schedule", evals)
	}
}

// Tolerances below the 1e-10 floor (including zero and negative) are clamped,
// not honored: golden section cannot localize better than ~sqrt(eps).
func TestGoldenMaxTolClamp(t *testing.T) {
	f := func(x float64) float64 { return -(x - 0.3) * (x - 0.3) }
	ref := GoldenMax(f, 0, 1, 1e-10)
	for _, tol := range []float64{0, -1, 1e-300, 1e-11} {
		got := GoldenMax(f, 0, 1, tol)
		if got != ref {
			t.Fatalf("tol=%g: got %g, want the 1e-10-clamped trajectory's %g", tol, got, ref)
		}
	}
}

func TestGoldenMaxErrMatchesGoldenMax(t *testing.T) {
	f := func(x float64) float64 { return math.Sin(x) - 0.1*x*x }
	want := GoldenMax(f, -1, 3, 1e-9)
	got, err := GoldenMaxErr(func(x float64) (float64, error) { return f(x), nil }, -1, 3, 1e-9)
	if err != nil {
		t.Fatalf("GoldenMaxErr: %v", err)
	}
	if got != want {
		t.Fatalf("GoldenMaxErr = %g, GoldenMax = %g; identical trajectories must agree exactly", got, want)
	}
}

// The first error aborts the search immediately — no further evaluations,
// the error out verbatim.
func TestGoldenMaxErrShortCircuits(t *testing.T) {
	sentinel := errors.New("stage 3 exploded")
	evals := 0
	_, err := GoldenMaxErr(func(x float64) (float64, error) {
		evals++
		if evals == 3 {
			return 0, sentinel
		}
		return -x * x, nil
	}, 0, 1, 1e-9)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the sentinel", err)
	}
	if evals != 3 {
		t.Fatalf("search continued after the error: %d evaluations", evals)
	}
}

func TestGoldenMaxErrInvertedBounds(t *testing.T) {
	got, err := GoldenMaxErr(func(x float64) (float64, error) {
		return -(x - 2) * (x - 2), nil
	}, 5, 0, 1e-9) // hi before lo
	if err != nil {
		t.Fatalf("GoldenMaxErr: %v", err)
	}
	if math.Abs(got-2) > 1e-6 {
		t.Fatalf("argmax with inverted bounds = %g, want 2", got)
	}
}

// GoldenMaxSpec promises the same abscissa trajectory as GoldenMaxErr: the
// speculative pair evaluation changes who computes what when, never what the
// bracket does.
func TestGoldenMaxSpecMatchesGoldenMaxErr(t *testing.T) {
	f := func(x float64) float64 { return -(x - 0.7) * (x - 0.7) * (1 + 0.3*math.Cos(5*x)) }
	want, err := GoldenMaxErr(func(x float64) (float64, error) { return f(x), nil }, 0, 2, 1e-8)
	if err != nil {
		t.Fatalf("GoldenMaxErr: %v", err)
	}
	got, err := GoldenMaxSpec(func(x1, x2, _ float64) (float64, float64, error) {
		return f(x1), f(x2), nil
	}, 0, 2, 1e-8)
	if err != nil {
		t.Fatalf("GoldenMaxSpec: %v", err)
	}
	if got != want {
		t.Fatalf("GoldenMaxSpec = %g, GoldenMaxErr = %g; trajectories must be identical", got, want)
	}
}

func TestGoldenMaxSpecPropagatesError(t *testing.T) {
	sentinel := errors.New("probe failed")
	pairs := 0
	_, err := GoldenMaxSpec(func(x1, x2, _ float64) (float64, float64, error) {
		pairs++
		if pairs == 2 {
			return 0, 0, sentinel
		}
		return -x1 * x1, -x2 * x2, nil
	}, 0, 1, 1e-9)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the sentinel", err)
	}
	if pairs != 2 {
		t.Fatalf("search continued after the error: %d pairs", pairs)
	}
}

// BrentMax must land on the same optimum as golden section, in fewer
// evaluations on smooth objectives.
func TestBrentMaxAgreesWithGoldenMax(t *testing.T) {
	cases := []struct {
		name   string
		f      func(float64) float64
		lo, hi float64
		want   float64
	}{
		{"parabola", func(x float64) float64 { return -(x - 0.42) * (x - 0.42) }, 0, 1, 0.42},
		{"sin", math.Sin, 0, 3, math.Pi / 2},
		{"boundary-left", func(x float64) float64 { return -x }, 0, 1, 0},
		{"boundary-right", func(x float64) float64 { return x }, 0, 1, 1},
		{"sharp", func(x float64) float64 { return -math.Abs(x - 0.25) }, 0, 1, 0.25},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got := BrentMax(c.f, c.lo, c.hi, 1e-9)
			if math.Abs(got-c.want) > 1e-6 {
				t.Fatalf("BrentMax = %g, want %g", got, c.want)
			}
		})
	}
}

func TestBrentMaxInvertedBoundsAndFlat(t *testing.T) {
	got := BrentMax(func(x float64) float64 { return -(x - 1) * (x - 1) }, 3, -1, 1e-9)
	if math.Abs(got-1) > 1e-6 {
		t.Fatalf("inverted bounds: BrentMax = %g, want 1", got)
	}
	evals := 0
	flat := BrentMax(func(float64) float64 { evals++; return 7 }, 0, 1, 1e-8)
	if flat < 0 || flat > 1 {
		t.Fatalf("flat objective argmax %g escaped [0, 1]", flat)
	}
	if evals > 100 {
		t.Fatalf("flat objective took %d evaluations", evals)
	}
}

// Brent's parabolic steps are the whole point: on a smooth objective it must
// beat golden section's ~ln(width/tol)/0.48 evaluation count.
func TestBrentMaxFewerEvalsThanGolden(t *testing.T) {
	f := func(x float64) float64 { return -(x - 0.37) * (x - 0.37) * (1 + 0.1*x) }
	brent, golden := 0, 0
	BrentMax(func(x float64) float64 { brent++; return f(x) }, 0, 1, 1e-9)
	GoldenMax(func(x float64) float64 { golden++; return f(x) }, 0, 1, 1e-9)
	if brent >= golden {
		t.Fatalf("BrentMax took %d evaluations vs golden's %d; want fewer", brent, golden)
	}
}
