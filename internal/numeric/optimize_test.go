package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGoldenMaxQuadratic(t *testing.T) {
	f := func(x float64) float64 { return -(x - 3) * (x - 3) }
	got := GoldenMax(f, 0, 10, 0)
	if math.Abs(got-3) > 1e-8 {
		t.Errorf("GoldenMax = %v, want 3", got)
	}
}

func TestGoldenMaxBoundaryMaximum(t *testing.T) {
	// Monotone increasing: maximum at the right endpoint.
	got := GoldenMax(func(x float64) float64 { return x }, 0, 1, 0)
	if math.Abs(got-1) > 1e-8 {
		t.Errorf("GoldenMax of increasing f = %v, want 1", got)
	}
	// Monotone decreasing: maximum at the left endpoint.
	got = GoldenMax(func(x float64) float64 { return -x }, 0, 1, 0)
	if math.Abs(got) > 1e-8 {
		t.Errorf("GoldenMax of decreasing f = %v, want 0", got)
	}
}

func TestGoldenMaxSwappedInterval(t *testing.T) {
	f := func(x float64) float64 { return -(x - 2) * (x - 2) }
	got := GoldenMax(f, 5, 0, 0) // reversed bounds
	if math.Abs(got-2) > 1e-8 {
		t.Errorf("GoldenMax with swapped interval = %v, want 2", got)
	}
}

func TestGoldenMinLogCoshlike(t *testing.T) {
	f := func(x float64) float64 { return math.Cosh(x - 1) }
	got := GoldenMin(f, -5, 5, 0)
	if math.Abs(got-1) > 1e-7 {
		t.Errorf("GoldenMin = %v, want 1", got)
	}
}

// Property: for a concave parabola with a vertex inside the interval,
// GoldenMax locates the vertex.
func TestGoldenMaxProperty(t *testing.T) {
	prop := func(v float64) bool {
		vertex := math.Mod(math.Abs(v), 8) + 1 // in [1, 9)
		f := func(x float64) float64 { return -(x - vertex) * (x - vertex) }
		got := GoldenMax(f, 0, 10, 1e-10)
		return math.Abs(got-vertex) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDerivativeKnownFunctions(t *testing.T) {
	cases := []struct {
		name string
		f    func(float64) float64
		x    float64
		want float64
	}{
		{"sin at 0", math.Sin, 0, 1},
		{"exp at 1", math.Exp, 1, math.E},
		{"x^2 at 3", func(x float64) float64 { return x * x }, 3, 6},
		{"log at 2", math.Log, 2, 0.5},
	}
	for _, c := range cases {
		got := Derivative(c.f, c.x, 0)
		if math.Abs(got-c.want) > 1e-6*(1+math.Abs(c.want)) {
			t.Errorf("Derivative(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSecondDerivativeKnownFunctions(t *testing.T) {
	got := SecondDerivative(func(x float64) float64 { return x * x * x }, 2, 0)
	if math.Abs(got-12) > 1e-3 {
		t.Errorf("SecondDerivative(x³ at 2) = %v, want 12", got)
	}
	got = SecondDerivative(math.Exp, 0, 0)
	if math.Abs(got-1) > 1e-4 {
		t.Errorf("SecondDerivative(exp at 0) = %v, want 1", got)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 10, 0},
		{10, 0, 10, 10},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%g, %g, %g) = %g, want %g", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(got) != len(want) {
		t.Fatalf("Linspace length = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("Linspace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := Linspace(3, 7, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("Linspace n=1 = %v, want [3]", got)
	}
	if got := Linspace(0, 1, 0); got != nil {
		t.Errorf("Linspace n=0 = %v, want nil", got)
	}
}

func TestLinspaceEndpointsExact(t *testing.T) {
	got := Linspace(0.1, 0.9, 17)
	if got[0] != 0.1 || got[16] != 0.9 {
		t.Errorf("Linspace endpoints = %v, %v; want exact 0.1, 0.9", got[0], got[16])
	}
}

func TestLogspace(t *testing.T) {
	got := Logspace(1, 1000, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*want[i] {
			t.Errorf("Logspace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1.0, 1.0+1e-13, 1e-12, 0) {
		t.Error("AlmostEqual rejected values within absolute tolerance")
	}
	if !AlmostEqual(1e6, 1e6*(1+1e-10), 0, 1e-9) {
		t.Error("AlmostEqual rejected values within relative tolerance")
	}
	if AlmostEqual(1, 2, 1e-12, 1e-12) {
		t.Error("AlmostEqual accepted clearly different values")
	}
}
