package ldp

import (
	"math"
	"testing"

	"share/internal/stat"
)

// trueDist is the category distribution used by the estimation tests.
var trueDist = []float64{0.5, 0.3, 0.15, 0.05}

func drawCategory(rng interface{ Float64() float64 }, dist []float64) int {
	u := rng.Float64()
	for i, p := range dist {
		u -= p
		if u <= 0 {
			return i
		}
	}
	return len(dist) - 1
}

func TestGRRValidation(t *testing.T) {
	if _, err := NewGRR(1, 1); err == nil {
		t.Error("accepted k=1")
	}
	if _, err := NewGRR(4, -1); err == nil {
		t.Error("accepted negative ε")
	}
	g, err := NewGRR(4, 2)
	if err != nil {
		t.Fatalf("NewGRR: %v", err)
	}
	if _, err := g.Privatize(stat.NewRand(1), 4); err == nil {
		t.Error("accepted out-of-range category")
	}
	if _, err := g.EstimateFrequencies(nil); err == nil {
		t.Error("accepted empty reports")
	}
	if _, err := g.EstimateFrequencies([]int{9}); err == nil {
		t.Error("accepted out-of-range report")
	}
}

func TestGRRUnbiasedEstimation(t *testing.T) {
	rng := stat.NewRand(42)
	g, err := NewGRR(len(trueDist), 1.5)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200_000
	reports := make([]int, n)
	for i := range reports {
		v := drawCategory(rng, trueDist)
		reports[i], err = g.Privatize(rng, v)
		if err != nil {
			t.Fatal(err)
		}
	}
	est, err := g.EstimateFrequencies(reports)
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range trueDist {
		if math.Abs(est[j]-want) > 0.02 {
			t.Errorf("GRR f[%d] = %v, want %v", j, est[j], want)
		}
	}
}

// TestGRRSatisfiesLDP checks the ε-LDP ratio empirically on the report
// distribution: P[report=z | true=a] / P[report=z | true=b] ≤ e^ε.
func TestGRRSatisfiesLDP(t *testing.T) {
	rng := stat.NewRand(7)
	eps := 1.0
	g, err := NewGRR(3, eps)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300_000
	countGiven := func(truth int) []float64 {
		counts := make([]float64, 3)
		for i := 0; i < n; i++ {
			r, err := g.Privatize(rng, truth)
			if err != nil {
				t.Fatal(err)
			}
			counts[r]++
		}
		for j := range counts {
			counts[j] /= n
		}
		return counts
	}
	pa, pb := countGiven(0), countGiven(1)
	for z := 0; z < 3; z++ {
		ratio := pa[z] / pb[z]
		if ratio > math.Exp(eps)*1.05 || 1/ratio > math.Exp(eps)*1.05 {
			t.Errorf("LDP violated at z=%d: ratio %v vs e^ε=%v", z, ratio, math.Exp(eps))
		}
	}
}

func TestOUEUnbiasedEstimation(t *testing.T) {
	rng := stat.NewRand(9)
	o, err := NewOUE(len(trueDist), 1.5)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100_000
	reports := make([][]bool, n)
	for i := range reports {
		v := drawCategory(rng, trueDist)
		reports[i], err = o.Privatize(rng, v)
		if err != nil {
			t.Fatal(err)
		}
	}
	est, err := o.EstimateFrequencies(reports)
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range trueDist {
		if math.Abs(est[j]-want) > 0.02 {
			t.Errorf("OUE f[%d] = %v, want %v", j, est[j], want)
		}
	}
}

func TestOUEValidation(t *testing.T) {
	if _, err := NewOUE(1, 1); err == nil {
		t.Error("accepted k=1")
	}
	if _, err := NewOUE(4, 0); err == nil {
		t.Error("accepted ε=0")
	}
	o, _ := NewOUE(4, 1)
	if _, err := o.Privatize(stat.NewRand(1), -1); err == nil {
		t.Error("accepted negative category")
	}
	if _, err := o.EstimateFrequencies(nil); err == nil {
		t.Error("accepted empty reports")
	}
	if _, err := o.EstimateFrequencies([][]bool{{true}}); err == nil {
		t.Error("accepted short report")
	}
}

func TestOUEBeatsGRRAtLargeK(t *testing.T) {
	// At large k and moderate ε, OUE's estimation error is much smaller
	// than GRR's — the reason both protocols exist.
	rng := stat.NewRand(11)
	const k, n = 64, 40_000
	eps := 1.0
	dist := make([]float64, k)
	dist[0] = 0.5
	for j := 1; j < k; j++ {
		dist[j] = 0.5 / float64(k-1)
	}

	grr, _ := NewGRR(k, eps)
	grrReports := make([]int, n)
	for i := range grrReports {
		grrReports[i], _ = grr.Privatize(rng, drawCategory(rng, dist))
	}
	grrEst, _ := grr.EstimateFrequencies(grrReports)

	oue, _ := NewOUE(k, eps)
	oueReports := make([][]bool, n)
	for i := range oueReports {
		oueReports[i], _ = oue.Privatize(rng, drawCategory(rng, dist))
	}
	oueEst, _ := oue.EstimateFrequencies(oueReports)

	mse := func(est []float64) float64 {
		var s float64
		for j := range est {
			d := est[j] - dist[j]
			s += d * d
		}
		return s / float64(k)
	}
	if mse(oueEst) >= mse(grrEst) {
		t.Errorf("OUE MSE %v should beat GRR MSE %v at k=%d", mse(oueEst), mse(grrEst), k)
	}
}

func TestClampDistribution(t *testing.T) {
	out := ClampDistribution([]float64{0.6, -0.1, 0.5})
	if out[1] != 0 {
		t.Errorf("negative estimate not clamped: %v", out)
	}
	var total float64
	for _, v := range out {
		total += v
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("clamped distribution sums to %v", total)
	}
	uniform := ClampDistribution([]float64{-1, -2})
	if uniform[0] != 0.5 || uniform[1] != 0.5 {
		t.Errorf("all-negative clamp = %v, want uniform", uniform)
	}
}
