package ldp

import "math/rand"

// ChargeHook observes one LDP application: eps is the budget the record
// was perturbed under, records the number of records in the call (always 1
// for Mechanism.Perturb). The privacy-budget ledger hangs off this hook —
// a charge is recorded for exactly the perturbations that actually ran,
// not for what a caller planned to run.
type ChargeHook func(eps float64, records int)

// metered wraps a Mechanism so every Perturb reports to a ChargeHook. It
// draws no randomness of its own and forwards the inner mechanism's rng
// stream untouched, so metering never changes a trade's outputs.
type metered struct {
	inner Mechanism
	hook  ChargeHook
}

// Metered wraps m so hook observes every Perturb call. A nil hook returns
// m unchanged.
func Metered(m Mechanism, hook ChargeHook) Mechanism {
	if hook == nil {
		return m
	}
	return &metered{inner: m, hook: hook}
}

// Name implements Mechanism.
func (w *metered) Name() string { return w.inner.Name() }

// Attrs forwards the inner mechanism's calibration width when it has one;
// -1 mirrors what callers infer for mechanisms without an Attrs method.
func (w *metered) Attrs() int {
	if a, ok := w.inner.(interface{ Attrs() int }); ok {
		return a.Attrs()
	}
	return -1
}

// Perturb implements Mechanism: apply the inner mechanism, then report.
func (w *metered) Perturb(rng *rand.Rand, record []float64, eps float64) []float64 {
	out := w.inner.Perturb(rng, record, eps)
	w.hook(eps, 1)
	return out
}
