package ldp

import (
	"math"
	"testing"

	"share/internal/stat"
)

func TestBitMeanValidation(t *testing.T) {
	if _, err := NewBitMean(1, 1, 1); err == nil {
		t.Error("accepted empty range")
	}
	if _, err := NewBitMean(0, 1, 0); err == nil {
		t.Error("accepted ε=0")
	}
	if _, err := NewBitMean(0, 1, -1); err == nil {
		t.Error("accepted negative ε")
	}
	b, err := NewBitMean(0, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.EstimateMean(5, 0); err == nil {
		t.Error("accepted zero reports")
	}
	if _, err := b.EstimateMean(11, 10); err == nil {
		t.Error("accepted more ones than reports")
	}
}

func TestBitMeanUnbiased(t *testing.T) {
	rng := stat.NewRand(60)
	b, err := NewBitMean(100, 300, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	// Population with known mean 180.
	const n = 400_000
	values := make([]float64, n)
	for i := range values {
		values[i] = stat.Uniform(rng, 120, 240)
	}
	est, err := b.EstimateFromValues(rng, values)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-180) > 2 {
		t.Errorf("estimated mean = %v, want ≈180", est)
	}
}

func TestBitMeanErrorShrinksWithEpsilon(t *testing.T) {
	rng := stat.NewRand(61)
	const n = 60_000
	values := make([]float64, n)
	for i := range values {
		values[i] = stat.Uniform(rng, 0, 1)
	}
	errAt := func(eps float64) float64 {
		var total float64
		const trials = 8
		for tr := 0; tr < trials; tr++ {
			b, err := NewBitMean(0, 1, eps)
			if err != nil {
				t.Fatal(err)
			}
			est, err := b.EstimateFromValues(rng, values)
			if err != nil {
				t.Fatal(err)
			}
			total += math.Abs(est - 0.5)
		}
		return total / trials
	}
	low, high := errAt(0.2), errAt(4)
	if high >= low {
		t.Errorf("error should shrink with ε: %v (ε=0.2) vs %v (ε=4)", low, high)
	}
}

// TestBitMeanSatisfiesLDP: the report distribution's odds ratio between the
// two extreme inputs equals e^ε.
func TestBitMeanSatisfiesLDP(t *testing.T) {
	rng := stat.NewRand(62)
	eps := 1.0
	b, err := NewBitMean(0, 1, eps)
	if err != nil {
		t.Fatal(err)
	}
	const n = 400_000
	count := func(v float64) float64 {
		ones := 0
		for i := 0; i < n; i++ {
			if b.Privatize(rng, v) {
				ones++
			}
		}
		return float64(ones) / n
	}
	pHi, pLo := count(1), count(0)
	ratio := pHi / pLo
	if ratio > math.Exp(eps)*1.05 {
		t.Errorf("P[1|hi]/P[1|lo] = %v exceeds e^ε = %v", ratio, math.Exp(eps))
	}
	ratio0 := (1 - pLo) / (1 - pHi)
	if ratio0 > math.Exp(eps)*1.05 {
		t.Errorf("P[0|lo]/P[0|hi] = %v exceeds e^ε = %v", ratio0, math.Exp(eps))
	}
}

func TestBitMeanClampsOutOfRange(t *testing.T) {
	rng := stat.NewRand(63)
	b, _ := NewBitMean(0, 1, 2)
	// Way-out-of-range values behave like the endpoints, not NaN/panic.
	for i := 0; i < 1000; i++ {
		b.Privatize(rng, -1e9)
		b.Privatize(rng, 1e9)
	}
}
