// Package ldp implements the local differential privacy substrate of Share:
// the fidelity map between a seller's privacy budget ε and the data fidelity
// τ she offers on the market (Eq. 10 of the paper), and the standard LDP
// perturbation mechanisms (Laplace, Gaussian, randomized response, and the
// exponential/index mechanism) each seller applies locally before handing
// data to the broker.
//
// In Share every seller is her own curator: she picks τᵢ as her Nash-game
// strategy, converts it to a privacy budget εᵢ via EpsilonForFidelity, and
// perturbs her χᵢ data pieces with an ε-LDP mechanism before sale.
package ldp

import (
	"fmt"
	"math"
)

// MaxEpsilon caps the privacy budget produced by EpsilonForFidelity. The
// fidelity map sends τ → 1 to ε → ∞ (no noise); budgets beyond this cap are
// indistinguishable from no perturbation at float64 precision.
const MaxEpsilon = 1e9

// Fidelity returns τ = (2/π)·arcsec(ε+1) for ε >= 0 (Eq. 10). The map
// satisfies the Inada-style conditions the paper requires: Fidelity(0) = 0,
// it is strictly increasing, strictly concave, and approaches (but never
// exceeds) 1 as ε → ∞.
func Fidelity(eps float64) float64 {
	if eps < 0 {
		return 0
	}
	if math.IsInf(eps, 1) {
		return 1
	}
	// arcsec(x) = arccos(1/x) for x >= 1.
	return 2 / math.Pi * math.Acos(1/(eps+1))
}

// EpsilonForFidelity inverts Eq. 10: ε = sec(πτ/2) − 1 for τ in [0, 1).
// τ = 1 means "no noise" per the paper; it maps to MaxEpsilon. Values outside
// [0, 1] are clamped.
func EpsilonForFidelity(tau float64) float64 {
	if tau <= 0 {
		return 0
	}
	if tau >= 1 {
		return MaxEpsilon
	}
	eps := 1/math.Cos(math.Pi*tau/2) - 1
	if eps > MaxEpsilon || math.IsNaN(eps) {
		return MaxEpsilon
	}
	return eps
}

// ValidateEpsilon returns an error if eps is not a usable privacy budget
// (negative, NaN, or infinite).
func ValidateEpsilon(eps float64) error {
	if math.IsNaN(eps) || math.IsInf(eps, 0) || eps < 0 {
		return fmt.Errorf("ldp: invalid privacy budget ε = %v", eps)
	}
	return nil
}
