package ldp_test

import (
	"fmt"

	"share/internal/ldp"
)

// The fidelity map (Eq. 10) converts a seller's privacy budget into the
// data fidelity she offers on the market: ε = 0 is pure noise (τ = 0), and
// fidelity saturates toward 1 as the budget grows.
func ExampleFidelity() {
	for _, eps := range []float64{0, 1, 10, 100} {
		fmt.Printf("ε=%-4g τ=%.4f\n", eps, ldp.Fidelity(eps))
	}
	// Output:
	// ε=0    τ=0.0000
	// ε=1    τ=0.6667
	// ε=10   τ=0.9420
	// ε=100  τ=0.9937
}

// EpsilonForFidelity inverts the map: given the equilibrium fidelity τᵢ*
// from Stage 3, it yields the LDP budget the seller must spend (Algorithm 1,
// Line 12).
func ExampleEpsilonForFidelity() {
	tau := 0.5
	eps := ldp.EpsilonForFidelity(tau)
	fmt.Printf("τ=%.2f needs ε=%.4f\n", tau, eps)
	fmt.Printf("round trip: %.2f\n", ldp.Fidelity(eps))
	// Output:
	// τ=0.50 needs ε=0.4142
	// round trip: 0.50
}
