package ldp

import (
	"math"
	"testing"
	"testing/quick"

	"share/internal/stat"
)

func TestFidelityEndpoints(t *testing.T) {
	if got := Fidelity(0); got != 0 {
		t.Errorf("Fidelity(0) = %v, want 0 (pure noise)", got)
	}
	if got := Fidelity(math.Inf(1)); got != 1 {
		t.Errorf("Fidelity(∞) = %v, want 1 (no noise)", got)
	}
	if got := Fidelity(-1); got != 0 {
		t.Errorf("Fidelity(-1) = %v, want 0 (clamped)", got)
	}
}

func TestFidelityKnownValue(t *testing.T) {
	// arcsec(2) = π/3, so Fidelity(1) = (2/π)(π/3) = 2/3.
	if got := Fidelity(1); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Fidelity(1) = %v, want 2/3", got)
	}
}

// Property: the Inada-style conditions of Eq. 10 — Fidelity is within [0,1),
// strictly increasing, and concave (increments shrink).
func TestFidelityShapeProperty(t *testing.T) {
	prop := func(raw float64) bool {
		eps := math.Mod(math.Abs(raw), 50)
		const h = 1e-4
		f0, f1, f2 := Fidelity(eps), Fidelity(eps+h), Fidelity(eps+2*h)
		if f0 < 0 || f0 >= 1 {
			return false
		}
		if f1 <= f0 { // strictly increasing
			return false
		}
		return (f2 - f1) <= (f1-f0)+1e-12 // concave
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: EpsilonForFidelity inverts Fidelity on [0, 1).
func TestFidelityRoundTripProperty(t *testing.T) {
	prop := func(raw float64) bool {
		tau := math.Mod(math.Abs(raw), 0.999)
		eps := EpsilonForFidelity(tau)
		back := Fidelity(eps)
		return math.Abs(back-tau) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEpsilonForFidelityEdges(t *testing.T) {
	if got := EpsilonForFidelity(0); got != 0 {
		t.Errorf("EpsilonForFidelity(0) = %v, want 0", got)
	}
	if got := EpsilonForFidelity(1); got != MaxEpsilon {
		t.Errorf("EpsilonForFidelity(1) = %v, want MaxEpsilon", got)
	}
	if got := EpsilonForFidelity(-0.5); got != 0 {
		t.Errorf("EpsilonForFidelity(-0.5) = %v, want 0 (clamped)", got)
	}
	if got := EpsilonForFidelity(1.5); got != MaxEpsilon {
		t.Errorf("EpsilonForFidelity(1.5) = %v, want MaxEpsilon (clamped)", got)
	}
}

func TestValidateEpsilon(t *testing.T) {
	if err := ValidateEpsilon(1.0); err != nil {
		t.Errorf("ValidateEpsilon(1) = %v", err)
	}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if err := ValidateEpsilon(bad); err == nil {
			t.Errorf("ValidateEpsilon(%v) accepted", bad)
		}
	}
}

func TestNewBoundsValidation(t *testing.T) {
	if _, err := NewBounds([]float64{0, 0}, []float64{1}); err == nil {
		t.Error("NewBounds accepted mismatched lengths")
	}
	if _, err := NewBounds([]float64{1}, []float64{1}); err == nil {
		t.Error("NewBounds accepted an empty range")
	}
	b, err := NewBounds([]float64{0, -5}, []float64{10, 5})
	if err != nil {
		t.Fatalf("NewBounds: %v", err)
	}
	if b.Width(0) != 10 || b.Width(1) != 10 || b.Attrs() != 2 {
		t.Error("Bounds accessors wrong")
	}
}

func TestLaplaceMechanismUnbiased(t *testing.T) {
	rng := stat.NewRand(42)
	b, _ := NewBounds([]float64{0}, []float64{10})
	mech := NewLaplace(b)
	const n = 100_000
	var sum float64
	for i := 0; i < n; i++ {
		out := mech.Perturb(rng, []float64{4}, 2.0)
		sum += out[0]
	}
	if mean := sum / n; math.Abs(mean-4) > 0.1 {
		t.Errorf("Laplace mechanism mean = %v, want 4 (unbiased)", mean)
	}
}

func TestLaplaceMechanismNoiseShrinksWithEpsilon(t *testing.T) {
	rng := stat.NewRand(1)
	b, _ := NewBounds([]float64{0}, []float64{1})
	mech := NewLaplace(b)
	mad := func(eps float64) float64 {
		var s float64
		const n = 20_000
		for i := 0; i < n; i++ {
			out := mech.Perturb(rng, []float64{0.5}, eps)
			s += math.Abs(out[0] - 0.5)
		}
		return s / n
	}
	low, high := mad(0.5), mad(8)
	if low <= high {
		t.Errorf("noise should shrink with ε: MAD(ε=0.5)=%v vs MAD(ε=8)=%v", low, high)
	}
}

func TestLaplaceMechanismZeroEpsilonIsUniform(t *testing.T) {
	rng := stat.NewRand(9)
	b, _ := NewBounds([]float64{0}, []float64{10})
	mech := NewLaplace(b)
	for i := 0; i < 1000; i++ {
		out := mech.Perturb(rng, []float64{5}, 0)
		if out[0] < 0 || out[0] >= 10 {
			t.Fatalf("ε=0 output %v outside bounds", out[0])
		}
	}
}

func TestGaussianMechanism(t *testing.T) {
	b, _ := NewBounds([]float64{0}, []float64{1})
	if _, err := NewGaussian(b, 0); err == nil {
		t.Error("NewGaussian accepted δ=0")
	}
	if _, err := NewGaussian(b, 1); err == nil {
		t.Error("NewGaussian accepted δ=1")
	}
	mech, err := NewGaussian(b, 1e-5)
	if err != nil {
		t.Fatalf("NewGaussian: %v", err)
	}
	rng := stat.NewRand(3)
	var sum float64
	const n = 50_000
	for i := 0; i < n; i++ {
		sum += mech.Perturb(rng, []float64{0.3}, 4)[0]
	}
	if mean := sum / n; math.Abs(mean-0.3) > 0.05 {
		t.Errorf("Gaussian mechanism mean = %v, want 0.3", mean)
	}
}

func TestPiecewiseMechanismUnbiasedAndBounded(t *testing.T) {
	rng := stat.NewRand(21)
	b, _ := NewBounds([]float64{0}, []float64{10})
	mech := NewPiecewise(b)
	const n = 200_000
	eps := 2.0
	truth := 7.0
	var sum float64
	expHalf := math.Exp(eps / 2)
	c := (expHalf + 1) / (expHalf - 1)
	// Output (normalized) lies in [-C, C] → denormalized in a known band.
	loBand := 0 + (-c+1)*10/2
	hiBand := 0 + (c+1)*10/2
	for i := 0; i < n; i++ {
		out := mech.Perturb(rng, []float64{truth}, eps)[0]
		if out < loBand-1e-9 || out > hiBand+1e-9 {
			t.Fatalf("piecewise output %v outside [%v, %v]", out, loBand, hiBand)
		}
		sum += out
	}
	if mean := sum / n; math.Abs(mean-truth) > 0.15 {
		t.Errorf("piecewise mean = %v, want %v (unbiased)", mean, truth)
	}
}

// TestRandomizedResponseSatisfiesLDP empirically verifies the ε-LDP
// inequality P[A(y)=z] ≤ e^ε·P[A(y')=z] for the binary mechanism, the one
// mechanism whose output distribution we can estimate exactly.
func TestRandomizedResponseSatisfiesLDP(t *testing.T) {
	rng := stat.NewRand(33)
	eps := 1.2
	const n = 400_000
	trueCount := 0 // P[report true | input true]
	for i := 0; i < n; i++ {
		if RandomizedResponse(rng, true, eps) {
			trueCount++
		}
	}
	pTrueGivenTrue := float64(trueCount) / n
	pTrueGivenFalse := 1 - pTrueGivenTrue // by symmetry of the mechanism
	ratio := pTrueGivenTrue / pTrueGivenFalse
	if ratio > math.Exp(eps)*1.05 {
		t.Errorf("LDP ratio %v exceeds e^ε = %v", ratio, math.Exp(eps))
	}
	// The mechanism should actually use its budget (ratio ≈ e^ε).
	if ratio < math.Exp(eps)*0.9 {
		t.Errorf("LDP ratio %v far below e^ε = %v (over-noising)", ratio, math.Exp(eps))
	}
}

func TestExponentialMechanismPrefersHighScores(t *testing.T) {
	rng := stat.NewRand(8)
	scores := []float64{0, 0, 5, 0}
	counts := make([]int, 4)
	for i := 0; i < 20_000; i++ {
		counts[Exponential(rng, scores, 4, 1)]++
	}
	if counts[2] < counts[0]+counts[1]+counts[3] {
		t.Errorf("exponential mechanism did not favor the high-score index: %v", counts)
	}
	if got := Exponential(rng, nil, 1, 1); got != -1 {
		t.Errorf("Exponential on empty scores = %d, want -1", got)
	}
}

func TestExponentialMechanismUniformAtZeroEpsilon(t *testing.T) {
	rng := stat.NewRand(15)
	scores := []float64{0, 10}
	hi := 0
	const n = 50_000
	for i := 0; i < n; i++ {
		if Exponential(rng, scores, 0, 1) == 1 {
			hi++
		}
	}
	frac := float64(hi) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("ε=0 exponential mechanism selection frequency = %v, want 0.5", frac)
	}
}
