package ldp

import (
	"math"
	"testing"
)

// FuzzFidelityRoundTrip hammers the fidelity map with arbitrary floats: it
// must never panic, always land in [0, 1], and invert exactly on the
// interior.
func FuzzFidelityRoundTrip(f *testing.F) {
	f.Add(0.0)
	f.Add(1.0)
	f.Add(0.5)
	f.Add(-3.7)
	f.Add(1e300)
	f.Add(math.Inf(1))
	f.Add(math.NaN())
	f.Fuzz(func(t *testing.T, eps float64) {
		tau := Fidelity(eps)
		if math.IsNaN(eps) {
			return // NaN in, anything defensible out; just no panic
		}
		if tau < 0 || tau > 1 || math.IsNaN(tau) {
			t.Fatalf("Fidelity(%v) = %v outside [0,1]", eps, tau)
		}
		back := EpsilonForFidelity(tau)
		if back < 0 || math.IsNaN(back) {
			t.Fatalf("EpsilonForFidelity(%v) = %v", tau, back)
		}
		// Interior round trip: ε in a representable range must invert.
		if eps > 1e-9 && eps < 1e8 {
			if rel := math.Abs(back-eps) / eps; rel > 1e-6 {
				t.Fatalf("round trip ε=%v → τ=%v → %v (rel err %v)", eps, tau, back, rel)
			}
		}
	})
}
