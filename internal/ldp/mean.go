package ldp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// One-bit mean estimation under ε-LDP (after Duchi, Jordan & Wainwright):
// each user holds a bounded value, reports a single biased coin flip, and
// the aggregator debiases the flip frequencies into an unbiased mean
// estimate. It is the minimal-communication counterpart to the Laplace and
// piecewise value perturbations — one bit per user instead of a float — and
// powers aggregate mean products when bandwidth or auditability matters.

// BitMean is a one-bit mean estimator for values in [Lo, Hi] under budget
// Eps.
type BitMean struct {
	Lo, Hi float64
	Eps    float64
}

// NewBitMean validates and builds the estimator.
func NewBitMean(lo, hi, eps float64) (*BitMean, error) {
	if !(lo < hi) {
		return nil, fmt.Errorf("ldp: empty value range [%g, %g]", lo, hi)
	}
	if err := ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	if eps == 0 {
		return nil, errors.New("ldp: one-bit mean estimation requires ε > 0")
	}
	return &BitMean{Lo: lo, Hi: hi, Eps: eps}, nil
}

// Privatize reports one bit for the value v (clamped into range). With
// t = (v−lo)/(hi−lo) ∈ [0, 1], the bit is 1 with probability
// q + t·(p − q) where p = e^ε/(e^ε+1), q = 1−p — so flipping the bit for
// the extreme inputs satisfies the ε ratio exactly, and intermediate values
// interpolate linearly (keeping the debiasing linear too).
func (b *BitMean) Privatize(rng *rand.Rand, v float64) bool {
	t := (v - b.Lo) / (b.Hi - b.Lo)
	t = math.Max(0, math.Min(1, t))
	p := math.Exp(b.Eps) / (math.Exp(b.Eps) + 1)
	q := 1 - p
	return rng.Float64() < q+t*(p-q)
}

// EstimateMean debiases the aggregated bits into an unbiased estimate of
// the population mean. ones is the count of 1-bits among n reports.
func (b *BitMean) EstimateMean(ones, n int) (float64, error) {
	if n <= 0 {
		return 0, errors.New("ldp: no reports")
	}
	if ones < 0 || ones > n {
		return 0, fmt.Errorf("ldp: %d ones among %d reports", ones, n)
	}
	p := math.Exp(b.Eps) / (math.Exp(b.Eps) + 1)
	q := 1 - p
	share := float64(ones) / float64(n)
	// E[share] = q + t̄(p−q) ⇒ t̄ = (share − q)/(p − q).
	tBar := (share - q) / (p - q)
	return b.Lo + tBar*(b.Hi-b.Lo), nil
}

// EstimateFromValues runs the whole protocol over values and returns the
// debiased mean — a convenience for tests and the aggregate products.
func (b *BitMean) EstimateFromValues(rng *rand.Rand, values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, errors.New("ldp: no values")
	}
	ones := 0
	for _, v := range values {
		if b.Privatize(rng, v) {
			ones++
		}
	}
	return b.EstimateMean(ones, len(values))
}
