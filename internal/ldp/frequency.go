package ldp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Frequency estimation under ε-LDP: each user holds one category in
// [0, k); the aggregator recovers an unbiased estimate of the category
// frequencies from privatized reports. Two standard protocols are
// implemented — generalized (k-ary) randomized response, best at small k,
// and optimized unary encoding (symmetric RAPPOR), better at large k — plus
// the shared debiasing step. They power the histogram-style aggregate
// products and double as a second, categorical test bed for the ε-LDP
// guarantee.

// GRR is generalized randomized response over k categories: report the true
// category with probability e^ε/(e^ε+k−1), otherwise a uniformly random
// other category.
type GRR struct {
	K   int
	Eps float64
}

// NewGRR validates and builds a k-ary randomized responder.
func NewGRR(k int, eps float64) (*GRR, error) {
	if k < 2 {
		return nil, fmt.Errorf("ldp: GRR needs at least 2 categories, got %d", k)
	}
	if err := ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	return &GRR{K: k, Eps: eps}, nil
}

// pTruth is the probability of reporting the true category.
func (g *GRR) pTruth() float64 {
	e := math.Exp(g.Eps)
	return e / (e + float64(g.K) - 1)
}

// Privatize reports a privatized category for the true value v ∈ [0, K).
func (g *GRR) Privatize(rng *rand.Rand, v int) (int, error) {
	if v < 0 || v >= g.K {
		return 0, fmt.Errorf("ldp: category %d outside [0,%d)", v, g.K)
	}
	if rng.Float64() < g.pTruth() {
		return v, nil
	}
	// Uniform over the other k−1 categories.
	r := rng.Intn(g.K - 1)
	if r >= v {
		r++
	}
	return r, nil
}

// EstimateFrequencies debiases a histogram of privatized reports into
// unbiased frequency estimates (may be slightly negative; callers clamp if
// they need a distribution).
func (g *GRR) EstimateFrequencies(reports []int) ([]float64, error) {
	n := len(reports)
	if n == 0 {
		return nil, errors.New("ldp: no reports")
	}
	counts := make([]float64, g.K)
	for i, r := range reports {
		if r < 0 || r >= g.K {
			return nil, fmt.Errorf("ldp: report %d has category %d outside [0,%d)", i, r, g.K)
		}
		counts[r]++
	}
	p := g.pTruth()
	q := (1 - p) / float64(g.K-1)
	est := make([]float64, g.K)
	for j, c := range counts {
		// E[observed share] = p·f + q·(1−f) ⇒ f = (share − q)/(p − q).
		share := c / float64(n)
		est[j] = (share - q) / (p - q)
	}
	return est, nil
}

// OUE is optimized unary encoding: each user sends a k-bit vector where her
// own bit stays 1 with probability ½ and every other bit flips on with
// probability 1/(e^ε+1). Estimation variance is O(1/ε²) independent of k.
type OUE struct {
	K   int
	Eps float64
}

// NewOUE validates and builds an optimized-unary-encoding responder.
func NewOUE(k int, eps float64) (*OUE, error) {
	if k < 2 {
		return nil, fmt.Errorf("ldp: OUE needs at least 2 categories, got %d", k)
	}
	if err := ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	if eps == 0 {
		return nil, errors.New("ldp: OUE requires ε > 0")
	}
	return &OUE{K: k, Eps: eps}, nil
}

// Privatize reports the perturbed bit vector for true category v.
func (o *OUE) Privatize(rng *rand.Rand, v int) ([]bool, error) {
	if v < 0 || v >= o.K {
		return nil, fmt.Errorf("ldp: category %d outside [0,%d)", v, o.K)
	}
	q := 1 / (math.Exp(o.Eps) + 1)
	bits := make([]bool, o.K)
	for j := range bits {
		if j == v {
			bits[j] = rng.Float64() < 0.5
		} else {
			bits[j] = rng.Float64() < q
		}
	}
	return bits, nil
}

// EstimateFrequencies debiases aggregated bit vectors into frequency
// estimates.
func (o *OUE) EstimateFrequencies(reports [][]bool) ([]float64, error) {
	n := len(reports)
	if n == 0 {
		return nil, errors.New("ldp: no reports")
	}
	counts := make([]float64, o.K)
	for i, bits := range reports {
		if len(bits) != o.K {
			return nil, fmt.Errorf("ldp: report %d has %d bits, want %d", i, len(bits), o.K)
		}
		for j, b := range bits {
			if b {
				counts[j]++
			}
		}
	}
	p := 0.5
	q := 1 / (math.Exp(o.Eps) + 1)
	est := make([]float64, o.K)
	for j, c := range counts {
		share := c / float64(n)
		est[j] = (share - q) / (p - q)
	}
	return est, nil
}

// ClampDistribution projects raw frequency estimates onto the probability
// simplex by clamping negatives to zero and renormalizing; a degenerate
// all-zero clamp returns the uniform distribution.
func ClampDistribution(est []float64) []float64 {
	out := make([]float64, len(est))
	var total float64
	for i, v := range est {
		if v > 0 {
			out[i] = v
			total += v
		}
	}
	if total <= 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i := range out {
		out[i] /= total
	}
	return out
}
