package ldp

import (
	"fmt"
	"math"
	"math/rand"

	"share/internal/stat"
)

// Mechanism perturbs a numeric record in place under ε-local differential
// privacy. Implementations are stateless; randomness comes from the supplied
// rng so experiments stay reproducible.
type Mechanism interface {
	// Name identifies the mechanism in logs and experiment output.
	Name() string
	// Perturb returns a privatized copy of the record under budget eps.
	// The record's values are assumed to lie within the bounds the
	// mechanism was constructed with.
	Perturb(rng *rand.Rand, record []float64, eps float64) []float64
}

// Bounds describe the per-attribute value ranges a mechanism must assume to
// calibrate its noise (the L1/L∞ sensitivity of the identity query).
type Bounds struct {
	Lo []float64
	Hi []float64
}

// NewBounds builds per-attribute bounds; lo and hi must have equal length and
// satisfy lo[j] < hi[j] for every attribute j.
func NewBounds(lo, hi []float64) (Bounds, error) {
	if len(lo) != len(hi) {
		return Bounds{}, fmt.Errorf("ldp: bounds length mismatch: %d vs %d", len(lo), len(hi))
	}
	for j := range lo {
		if !(lo[j] < hi[j]) {
			return Bounds{}, fmt.Errorf("ldp: attribute %d has empty range [%g, %g]", j, lo[j], hi[j])
		}
	}
	return Bounds{Lo: lo, Hi: hi}, nil
}

// Width returns hi[j]−lo[j] for attribute j.
func (b Bounds) Width(j int) float64 { return b.Hi[j] - b.Lo[j] }

// Attrs returns the number of attributes the bounds describe.
func (b Bounds) Attrs() int { return len(b.Lo) }

// LaplaceMechanism adds Laplace(0, Δ/ε) noise to each attribute, where Δ is
// that attribute's range width. With the budget split evenly across k
// attributes, each attribute receives ε/k, giving ε-LDP for the whole record
// by sequential composition. This is the mechanism the paper's experiments
// use (§6.1).
type LaplaceMechanism struct {
	bounds Bounds
}

// NewLaplace constructs a Laplace mechanism calibrated to the given bounds.
func NewLaplace(b Bounds) *LaplaceMechanism { return &LaplaceMechanism{bounds: b} }

// Name implements Mechanism.
func (l *LaplaceMechanism) Name() string { return "laplace" }

// Attrs reports the attribute count the mechanism is calibrated for.
func (l *LaplaceMechanism) Attrs() int { return l.bounds.Attrs() }

// Perturb implements Mechanism. eps <= 0 degrades to uniformly random values
// within bounds (total distortion), matching the paper's "τ = 0 means random
// noise" convention.
func (l *LaplaceMechanism) Perturb(rng *rand.Rand, record []float64, eps float64) []float64 {
	out := make([]float64, len(record))
	if eps <= 0 {
		for j := range out {
			out[j] = stat.Uniform(rng, l.bounds.Lo[j], l.bounds.Hi[j])
		}
		return out
	}
	perAttr := eps / float64(len(record))
	for j, v := range record {
		scale := l.bounds.Width(j) / perAttr
		out[j] = v + stat.Laplace(rng, 0, scale)
	}
	return out
}

// GaussianMechanism adds N(0, σ²) noise with σ = Δ·√(2·ln(1.25/δ))/ε,
// providing (ε, δ)-LDP per attribute. It is offered as an alternative
// mechanism (§3.1 lists it among the widely used ones).
type GaussianMechanism struct {
	bounds Bounds
	delta  float64
}

// NewGaussian constructs a Gaussian mechanism with failure probability delta
// in (0, 1).
func NewGaussian(b Bounds, delta float64) (*GaussianMechanism, error) {
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("ldp: delta must be in (0,1), got %g", delta)
	}
	return &GaussianMechanism{bounds: b, delta: delta}, nil
}

// Name implements Mechanism.
func (g *GaussianMechanism) Name() string { return "gaussian" }

// Attrs reports the attribute count the mechanism is calibrated for.
func (g *GaussianMechanism) Attrs() int { return g.bounds.Attrs() }

// Perturb implements Mechanism.
func (g *GaussianMechanism) Perturb(rng *rand.Rand, record []float64, eps float64) []float64 {
	out := make([]float64, len(record))
	if eps <= 0 {
		for j := range out {
			out[j] = stat.Uniform(rng, g.bounds.Lo[j], g.bounds.Hi[j])
		}
		return out
	}
	perAttr := eps / float64(len(record))
	c := math.Sqrt(2 * math.Log(1.25/g.delta))
	for j, v := range record {
		sigma := g.bounds.Width(j) * c / perAttr
		out[j] = v + stat.Gaussian(rng, 0, sigma)
	}
	return out
}

// PiecewiseMechanism implements the piecewise mechanism for one-dimensional
// numeric values (Wang et al.), an ε-LDP mechanism with bounded output and
// lower variance than Laplace at moderate ε. Values are normalized to [-1, 1]
// per attribute before perturbation and de-normalized after.
type PiecewiseMechanism struct {
	bounds Bounds
}

// NewPiecewise constructs a piecewise mechanism over the given bounds.
func NewPiecewise(b Bounds) *PiecewiseMechanism { return &PiecewiseMechanism{bounds: b} }

// Name implements Mechanism.
func (p *PiecewiseMechanism) Name() string { return "piecewise" }

// Attrs reports the attribute count the mechanism is calibrated for.
func (p *PiecewiseMechanism) Attrs() int { return p.bounds.Attrs() }

// Perturb implements Mechanism.
func (p *PiecewiseMechanism) Perturb(rng *rand.Rand, record []float64, eps float64) []float64 {
	out := make([]float64, len(record))
	if eps <= 0 {
		for j := range out {
			out[j] = stat.Uniform(rng, p.bounds.Lo[j], p.bounds.Hi[j])
		}
		return out
	}
	perAttr := eps / float64(len(record))
	for j, v := range record {
		// Normalize to t ∈ [-1, 1].
		lo, w := p.bounds.Lo[j], p.bounds.Width(j)
		t := 2*(v-lo)/w - 1
		t = math.Max(-1, math.Min(1, t))
		tp := perturbPiecewise(rng, t, perAttr)
		// De-normalize. tp lies in [-C, C] with C >= 1; keep it as-is so
		// the output stays unbiased.
		out[j] = lo + (tp+1)*w/2
	}
	return out
}

// perturbPiecewise perturbs t ∈ [-1,1] under ε-LDP with the piecewise
// mechanism, returning a value in [-C, C] where C = (e^{ε/2}+1)/(e^{ε/2}−1).
func perturbPiecewise(rng *rand.Rand, t, eps float64) float64 {
	expHalf := math.Exp(eps / 2)
	c := (expHalf + 1) / (expHalf - 1)
	l := (c+1)/2*t - (c-1)/2
	r := l + c - 1
	if rng.Float64() < expHalf/(expHalf+1) {
		// High-probability region [l, r] around the true value.
		return stat.Uniform(rng, l, r)
	}
	// Low-probability tails.
	leftWidth := l + c
	rightWidth := c - r
	total := leftWidth + rightWidth
	if total <= 0 {
		return stat.Uniform(rng, -c, c)
	}
	if rng.Float64() < leftWidth/total {
		return stat.Uniform(rng, -c, l)
	}
	return stat.Uniform(rng, r, c)
}

// RandomizedResponse perturbs a single bit under ε-LDP: it reports the truth
// with probability e^ε/(e^ε+1) and flips otherwise. It is exposed for
// categorical payloads and for testing the LDP inequality directly.
func RandomizedResponse(rng *rand.Rand, bit bool, eps float64) bool {
	pTruth := math.Exp(eps) / (math.Exp(eps) + 1)
	if rng.Float64() < pTruth {
		return bit
	}
	return !bit
}

// Exponential selects an index from scores under the exponential (index)
// mechanism with budget eps and utility sensitivity delta: index i is chosen
// with probability proportional to exp(ε·uᵢ/(2Δ)).
func Exponential(rng *rand.Rand, scores []float64, eps, delta float64) int {
	if len(scores) == 0 {
		return -1
	}
	if delta <= 0 {
		delta = 1
	}
	// Subtract the max score for numerical stability.
	maxS := scores[0]
	for _, s := range scores[1:] {
		if s > maxS {
			maxS = s
		}
	}
	weights := make([]float64, len(scores))
	var total float64
	for i, s := range scores {
		w := math.Exp(eps * (s - maxS) / (2 * delta))
		weights[i] = w
		total += w
	}
	u := rng.Float64() * total
	for i, w := range weights {
		u -= w
		if u <= 0 {
			return i
		}
	}
	return len(scores) - 1
}
