package regress

import (
	"math"
	"testing"
	"testing/quick"

	"share/internal/dataset"
	"share/internal/stat"
)

func linearData(n int, seed int64, noise float64) *dataset.Dataset {
	rng := stat.NewRand(seed)
	d := &dataset.Dataset{Features: []string{"x1", "x2"}, Target: "y"}
	for i := 0; i < n; i++ {
		x1 := stat.Uniform(rng, -5, 5)
		x2 := stat.Uniform(rng, 0, 10)
		y := 3 + 2*x1 - 0.5*x2 + stat.Gaussian(rng, 0, noise)
		d.X = append(d.X, []float64{x1, x2})
		d.Y = append(d.Y, y)
	}
	return d
}

func TestFitRecoversCoefficients(t *testing.T) {
	d := linearData(500, 1, 0)
	m, err := Fit(d)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if math.Abs(m.Intercept-3) > 1e-8 {
		t.Errorf("intercept = %v, want 3", m.Intercept)
	}
	if math.Abs(m.Coef[0]-2) > 1e-8 || math.Abs(m.Coef[1]+0.5) > 1e-8 {
		t.Errorf("coefficients = %v, want [2 -0.5]", m.Coef)
	}
}

func TestFitRejectsEmptyAndInvalid(t *testing.T) {
	if _, err := Fit(&dataset.Dataset{}); err == nil {
		t.Error("Fit accepted an empty dataset")
	}
	bad := &dataset.Dataset{X: [][]float64{{1}}, Y: []float64{1, 2}}
	if _, err := Fit(bad); err == nil {
		t.Error("Fit accepted an inconsistent dataset")
	}
}

func TestFitFewerRowsThanFeatures(t *testing.T) {
	// 1 row, 2 features: rank-deficient; ridge fallback must succeed.
	d := &dataset.Dataset{X: [][]float64{{1, 2}}, Y: []float64{5}}
	m, err := Fit(d)
	if err != nil {
		t.Fatalf("Fit on underdetermined data: %v", err)
	}
	if pred := m.Predict([]float64{1, 2}); math.Abs(pred-5) > 0.1 {
		t.Errorf("underdetermined fit should interpolate its one row: pred = %v", pred)
	}
}

func TestPredictAll(t *testing.T) {
	d := linearData(10, 2, 0)
	m, _ := Fit(d)
	preds := m.PredictAll(d)
	if len(preds) != d.Len() {
		t.Fatalf("PredictAll length = %d", len(preds))
	}
	for i := range preds {
		if math.Abs(preds[i]-d.Y[i]) > 1e-6 {
			t.Errorf("pred[%d] = %v, want %v", i, preds[i], d.Y[i])
		}
	}
}

func TestEvaluatePerfectFit(t *testing.T) {
	d := linearData(200, 3, 0)
	m, _ := Fit(d)
	met, err := Evaluate(m, d)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if met.R2 < 1-1e-10 || met.ExplainedVariance < 1-1e-10 {
		t.Errorf("perfect fit: R²=%v EV=%v, want 1", met.R2, met.ExplainedVariance)
	}
	if met.MSE > 1e-12 || met.RMSE > 1e-6 || met.MAE > 1e-6 {
		t.Errorf("perfect fit errors nonzero: %+v", met)
	}
}

func TestEvaluateNoisyFitReasonable(t *testing.T) {
	train := linearData(1000, 4, 1.0)
	test := linearData(500, 5, 1.0)
	m, _ := Fit(train)
	met, err := Evaluate(m, test)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	// Signal variance ≈ var(2x1) + var(0.5x2) = 4·(100/12) + 0.25·(100/12)
	// ≈ 35.4; noise variance 1 → EV ≈ 0.97.
	if met.ExplainedVariance < 0.9 || met.ExplainedVariance > 1 {
		t.Errorf("EV = %v, want ≈0.97", met.ExplainedVariance)
	}
	if met.RMSE < 0.8 || met.RMSE > 1.3 {
		t.Errorf("RMSE = %v, want ≈1", met.RMSE)
	}
	if math.Abs(met.RMSE*met.RMSE-met.MSE) > 1e-9 {
		t.Error("RMSE² != MSE")
	}
}

func TestEvaluateConstantTarget(t *testing.T) {
	d := &dataset.Dataset{X: [][]float64{{1}, {2}, {3}}, Y: []float64{7, 7, 7}}
	m := &Model{Intercept: 7}
	met, err := Evaluate(m, d)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if met.R2 != 0 || met.ExplainedVariance != 0 {
		t.Errorf("constant target should yield 0 scores, got %+v", met)
	}
	if _, err := Evaluate(m, &dataset.Dataset{}); err == nil {
		t.Error("Evaluate accepted an empty test set")
	}
}

func TestExplainedVarianceHelperNeverErrors(t *testing.T) {
	test := linearData(50, 6, 0.5)
	if v := ExplainedVariance(&dataset.Dataset{}, test); v != 0 {
		t.Errorf("EV on empty train = %v, want 0", v)
	}
	train := linearData(100, 7, 0.5)
	if v := ExplainedVariance(train, test); v < 0.8 {
		t.Errorf("EV = %v, want high", v)
	}
}

func TestSyntheticCCPPReachesPaperEV(t *testing.T) {
	// The substitution contract (DESIGN.md §2): OLS on synthetic CCPP
	// reaches explained variance ≈ 0.93 like the real dataset.
	rng := stat.NewRand(8)
	full := dataset.SyntheticCCPP(0, rng)
	train, test := full.Split(9000)
	m, err := Fit(train)
	if err != nil {
		t.Fatalf("Fit CCPP: %v", err)
	}
	met, err := Evaluate(m, test)
	if err != nil {
		t.Fatalf("Evaluate CCPP: %v", err)
	}
	if met.ExplainedVariance < 0.90 || met.ExplainedVariance > 0.96 {
		t.Errorf("synthetic CCPP EV = %v, want ≈0.93 (calibration drifted)", met.ExplainedVariance)
	}
}

// Property: the incremental accumulator matches the batch fit on random
// datasets.
func TestIncrementalMatchesBatchProperty(t *testing.T) {
	prop := func(seed int64) bool {
		d := linearData(60, seed, 0.7)
		batch, err := Fit(d)
		if err != nil {
			return false
		}
		inc := NewIncremental(d.NumFeatures())
		inc.AddDataset(d)
		m, err := inc.Solve()
		if err != nil {
			return false
		}
		if math.Abs(m.Intercept-batch.Intercept) > 1e-6*(1+math.Abs(batch.Intercept)) {
			return false
		}
		for j := range m.Coef {
			if math.Abs(m.Coef[j]-batch.Coef[j]) > 1e-6*(1+math.Abs(batch.Coef[j])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIncrementalResetAndN(t *testing.T) {
	inc := NewIncremental(2)
	if _, err := inc.Solve(); err == nil {
		t.Error("Solve on empty accumulator should error")
	}
	inc.Add([]float64{1, 2}, 3)
	inc.Add([]float64{2, 1}, 4)
	if inc.N() != 2 {
		t.Errorf("N = %d, want 2", inc.N())
	}
	inc.Reset()
	if inc.N() != 0 {
		t.Errorf("N after reset = %d", inc.N())
	}
	if _, err := inc.Solve(); err == nil {
		t.Error("Solve after reset should error")
	}
}

func TestIncrementalSingleRow(t *testing.T) {
	inc := NewIncremental(2)
	inc.Add([]float64{1, 1}, 10)
	m, err := inc.Solve()
	if err != nil {
		t.Fatalf("Solve on one row: %v", err)
	}
	if pred := m.Predict([]float64{1, 1}); math.Abs(pred-10) > 0.5 {
		t.Errorf("single-row model should fit its row: pred = %v", pred)
	}
}
