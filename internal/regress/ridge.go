package regress

import (
	"errors"
	"fmt"

	"share/internal/dataset"
	"share/internal/linalg"
)

// FitRidge trains an L2-regularized linear model: it minimizes
// ‖y − β₀ − Xβ‖² + α‖β‖², leaving the intercept unpenalized (the standard
// convention — penalizing β₀ would make the fit depend on target offsets).
// Ridge is the natural product for Share's heavily LDP-noised purchases:
// measurement error in X biases OLS coefficients toward zero erratically,
// and the ridge's variance reduction often nets out ahead on held-out data.
func FitRidge(d *dataset.Dataset, alpha float64) (*Model, error) {
	if d.Len() == 0 {
		return nil, ErrEmptyTrainingSet
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("regress: invalid training set: %w", err)
	}
	if alpha < 0 {
		return nil, errors.New("regress: ridge penalty must be non-negative")
	}
	if alpha == 0 {
		return Fit(d)
	}
	k := d.NumFeatures()
	// Center the target and features so the intercept absorbs the means
	// and stays unpenalized.
	xMean := make([]float64, k)
	var yMean float64
	for i, row := range d.X {
		for j, v := range row {
			xMean[j] += v
		}
		yMean += d.Y[i]
	}
	n := float64(d.Len())
	for j := range xMean {
		xMean[j] /= n
	}
	yMean /= n

	// Normal equations on centered data: (XcᵀXc + αI)β = Xcᵀyc.
	gram := linalg.NewMatrix(k, k)
	xty := make([]float64, k)
	cRow := make([]float64, k)
	for i, row := range d.X {
		for j, v := range row {
			cRow[j] = v - xMean[j]
		}
		yc := d.Y[i] - yMean
		for a := 0; a < k; a++ {
			ca := cRow[a]
			if ca == 0 {
				continue
			}
			gRow := gram.Row(a)
			for b := 0; b < k; b++ {
				gRow[b] += ca * cRow[b]
			}
			xty[a] += ca * yc
		}
	}
	for j := 0; j < k; j++ {
		gram.Set(j, j, gram.At(j, j)+alpha)
	}
	beta, err := linalg.SolveSPD(gram, xty)
	if err != nil {
		return nil, fmt.Errorf("regress: ridge solve: %w", err)
	}
	intercept := yMean
	for j, b := range beta {
		intercept -= b * xMean[j]
	}
	return &Model{Intercept: intercept, Coef: beta}, nil
}
