// Package regress implements the data product of the paper's evaluation: an
// ordinary-least-squares linear regression model, together with the metrics
// the market mechanism consumes — explained variance (the paper's product
// performance indicator v), R², MSE and RMSE.
//
// Training uses the QR-based least-squares driver from internal/linalg with
// an automatic intercept column; prediction is a dense dot product.
package regress

import (
	"errors"
	"fmt"
	"math"

	"share/internal/dataset"
	"share/internal/linalg"
)

// ErrEmptyTrainingSet reports an attempt to fit a model on no rows.
var ErrEmptyTrainingSet = errors.New("regress: empty training set")

// Model is a fitted linear regression: ŷ = Intercept + Σ Coef[j]·x[j].
type Model struct {
	// Intercept is the fitted bias term.
	Intercept float64
	// Coef holds one coefficient per feature column.
	Coef []float64
}

// Fit trains an OLS model on d. It requires at least one row; with fewer
// rows than features the rank-deficient fallback in linalg produces the
// minimum-norm ridge solution, so tiny Shapley coalitions still train.
func Fit(d *dataset.Dataset) (*Model, error) {
	if d.Len() == 0 {
		return nil, ErrEmptyTrainingSet
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("regress: invalid training set: %w", err)
	}
	k := d.NumFeatures()
	design := linalg.NewMatrix(d.Len(), k+1)
	for i, row := range d.X {
		dr := design.Row(i)
		dr[0] = 1
		copy(dr[1:], row)
	}
	beta, err := linalg.LeastSquares(design, d.Y)
	if err != nil {
		return nil, fmt.Errorf("regress: solving least squares: %w", err)
	}
	return &Model{Intercept: beta[0], Coef: beta[1:]}, nil
}

// Predict returns the model's prediction for one feature vector.
func (m *Model) Predict(x []float64) float64 {
	s := m.Intercept
	for j, c := range m.Coef {
		s += c * x[j]
	}
	return s
}

// PredictAll returns predictions for every row of d.
func (m *Model) PredictAll(d *dataset.Dataset) []float64 {
	out := make([]float64, d.Len())
	for i, row := range d.X {
		out[i] = m.Predict(row)
	}
	return out
}

// Metrics summarizes model performance on a held-out set.
type Metrics struct {
	// ExplainedVariance is 1 − Var(y−ŷ)/Var(y), the paper's performance
	// indicator v for regression products.
	ExplainedVariance float64
	// R2 is the coefficient of determination 1 − SS_res/SS_tot.
	R2 float64
	// MSE is the mean squared error.
	MSE float64
	// RMSE is sqrt(MSE).
	RMSE float64
	// MAE is the mean absolute error.
	MAE float64
}

// Evaluate computes Metrics for the model on test data. A test set whose
// target is constant yields ExplainedVariance and R² of 0 (no variance to
// explain) rather than NaN.
func Evaluate(m *Model, test *dataset.Dataset) (Metrics, error) {
	if test.Len() == 0 {
		return Metrics{}, errors.New("regress: empty test set")
	}
	n := float64(test.Len())
	var meanY float64
	for _, y := range test.Y {
		meanY += y
	}
	meanY /= n

	var ssRes, ssTot, sumErr, sumAbs, sumErrSq float64
	for i, row := range test.X {
		err := test.Y[i] - m.Predict(row)
		ssRes += err * err
		sumErr += err
		sumErrSq += err * err
		sumAbs += math.Abs(err)
		d := test.Y[i] - meanY
		ssTot += d * d
	}
	mse := ssRes / n
	met := Metrics{
		MSE:  mse,
		RMSE: math.Sqrt(mse),
		MAE:  sumAbs / n,
	}
	if ssTot > 0 {
		met.R2 = 1 - ssRes/ssTot
		meanErr := sumErr / n
		varErr := sumErrSq/n - meanErr*meanErr
		met.ExplainedVariance = 1 - varErr/(ssTot/n)
	}
	return met, nil
}

// ExplainedVariance is a convenience wrapper: fit on train, score on test,
// return the explained-variance metric (0 when the fit fails, so Shapley
// coalition evaluation treats untrainable coalitions as worthless rather
// than erroring out).
func ExplainedVariance(train, test *dataset.Dataset) float64 {
	m, err := Fit(train)
	if err != nil {
		return 0
	}
	met, err := Evaluate(m, test)
	if err != nil {
		return 0
	}
	if math.IsNaN(met.ExplainedVariance) || math.IsInf(met.ExplainedVariance, 0) {
		return 0
	}
	return met.ExplainedVariance
}
