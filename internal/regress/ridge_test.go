package regress

import (
	"math"
	"testing"

	"share/internal/dataset"
	"share/internal/stat"
)

func TestFitRidgeZeroAlphaEqualsOLS(t *testing.T) {
	d := linearData(300, 30, 0.5)
	ols, err := Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	ridge, err := FitRidge(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ols.Intercept-ridge.Intercept) > 1e-9 {
		t.Errorf("intercepts differ: %v vs %v", ols.Intercept, ridge.Intercept)
	}
	for j := range ols.Coef {
		if math.Abs(ols.Coef[j]-ridge.Coef[j]) > 1e-9 {
			t.Errorf("coef[%d] differs: %v vs %v", j, ols.Coef[j], ridge.Coef[j])
		}
	}
}

func TestFitRidgeSmallAlphaNearOLS(t *testing.T) {
	d := linearData(500, 31, 0.3)
	ols, _ := Fit(d)
	ridge, err := FitRidge(d, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for j := range ols.Coef {
		if math.Abs(ols.Coef[j]-ridge.Coef[j]) > 1e-6*(1+math.Abs(ols.Coef[j])) {
			t.Errorf("coef[%d]: %v vs %v", j, ols.Coef[j], ridge.Coef[j])
		}
	}
}

func TestFitRidgeShrinksCoefficients(t *testing.T) {
	d := linearData(200, 32, 1)
	small, _ := FitRidge(d, 0.1)
	large, err := FitRidge(d, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	normSmall := math.Abs(small.Coef[0]) + math.Abs(small.Coef[1])
	normLarge := math.Abs(large.Coef[0]) + math.Abs(large.Coef[1])
	if normLarge >= normSmall {
		t.Errorf("large α should shrink: ‖β‖ %v vs %v", normLarge, normSmall)
	}
	// At huge α, the model predicts ~the mean everywhere.
	var yMean float64
	for _, y := range d.Y {
		yMean += y
	}
	yMean /= float64(d.Len())
	if math.Abs(large.Intercept-yMean) > 0.5 {
		t.Errorf("heavily shrunk intercept = %v, want ≈ ȳ = %v", large.Intercept, yMean)
	}
}

func TestFitRidgeHandlesCollinearity(t *testing.T) {
	// Duplicate column: OLS normal equations are singular; ridge is fine.
	rng := stat.NewRand(33)
	d := &dataset.Dataset{Features: []string{"a", "b"}, Target: "y"}
	for i := 0; i < 100; i++ {
		x := stat.Uniform(rng, 0, 10)
		d.X = append(d.X, []float64{x, x}) // perfectly collinear
		d.Y = append(d.Y, 3*x+stat.Gaussian(rng, 0, 0.1))
	}
	m, err := FitRidge(d, 1.0)
	if err != nil {
		t.Fatalf("FitRidge on collinear data: %v", err)
	}
	// The two coefficients share the signal symmetrically.
	if math.Abs(m.Coef[0]-m.Coef[1]) > 1e-6 {
		t.Errorf("collinear coefficients not symmetric: %v vs %v", m.Coef[0], m.Coef[1])
	}
	if pred := m.Predict([]float64{5, 5}); math.Abs(pred-15) > 0.5 {
		t.Errorf("prediction = %v, want ≈15", pred)
	}
}

func TestFitRidgeValidation(t *testing.T) {
	if _, err := FitRidge(&dataset.Dataset{}, 1); err == nil {
		t.Error("accepted empty dataset")
	}
	d := linearData(10, 34, 0)
	if _, err := FitRidge(d, -1); err == nil {
		t.Error("accepted negative penalty")
	}
}

func TestFitRidgeIntercceptUnpenalized(t *testing.T) {
	// Shift the target by a constant: the ridge solution's coefficients
	// must not change, only the intercept (which is unpenalized).
	d := linearData(200, 35, 0.2)
	before, err := FitRidge(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	shifted := d.Clone()
	for i := range shifted.Y {
		shifted.Y[i] += 1000
	}
	after, err := FitRidge(shifted, 5)
	if err != nil {
		t.Fatal(err)
	}
	for j := range before.Coef {
		if math.Abs(before.Coef[j]-after.Coef[j]) > 1e-9 {
			t.Errorf("coef[%d] moved under target shift: %v vs %v", j, before.Coef[j], after.Coef[j])
		}
	}
	if math.Abs(after.Intercept-before.Intercept-1000) > 1e-6 {
		t.Errorf("intercept shift = %v, want 1000", after.Intercept-before.Intercept)
	}
}
