package regress

import (
	"fmt"

	"share/internal/dataset"
	"share/internal/linalg"
)

// Incremental accumulates the sufficient statistics of an OLS fit — the Gram
// matrix XᵀX and moment vector Xᵀy over the design with intercept — so rows
// can be added one at a time and a model re-solved in O(k³) regardless of how
// many rows have been seen. Monte Carlo data-point Shapley scans permutation
// prefixes; with this accumulator each prefix extension costs O(k²) to
// absorb and O(k³) to refit, instead of refitting from scratch in O(n·k²).
type Incremental struct {
	k    int // features (excluding intercept)
	n    int // rows absorbed
	gram *linalg.Matrix
	xty  []float64
}

// NewIncremental creates an accumulator for k-feature rows.
func NewIncremental(k int) *Incremental {
	return &Incremental{
		k:    k,
		gram: linalg.NewMatrix(k+1, k+1),
		xty:  make([]float64, k+1),
	}
}

// N returns the number of rows absorbed so far.
func (inc *Incremental) N() int { return inc.n }

// Add absorbs one observation (x, y).
func (inc *Incremental) Add(x []float64, y float64) {
	// Augmented row is (1, x...); update upper triangle then mirror on
	// Solve. We update the full matrix directly — k is small in Share.
	aug := make([]float64, inc.k+1)
	aug[0] = 1
	copy(aug[1:], x)
	for i := 0; i <= inc.k; i++ {
		ai := aug[i]
		if ai == 0 {
			continue
		}
		row := inc.gram.Row(i)
		for j := 0; j <= inc.k; j++ {
			row[j] += ai * aug[j]
		}
		inc.xty[i] += ai * y
	}
	inc.n++
}

// AddDataset absorbs every row of d.
func (inc *Incremental) AddDataset(d *dataset.Dataset) {
	for i, row := range d.X {
		inc.Add(row, d.Y[i])
	}
}

// Reset clears the accumulator for reuse without reallocating.
func (inc *Incremental) Reset() {
	for i := range inc.gram.Data {
		inc.gram.Data[i] = 0
	}
	for i := range inc.xty {
		inc.xty[i] = 0
	}
	inc.n = 0
}

// Solve returns the OLS model for the absorbed rows. With fewer rows than
// parameters the normal equations are singular; a small ridge keeps the
// solve defined so Shapley prefix scans work from the first row.
//
// Each call allocates a fresh workspace and model; hot loops that refit the
// same accumulator shape thousands of times should hold a Solver instead.
func (inc *Incremental) Solve() (*Model, error) {
	mdl, err := NewSolver(inc.k).Solve(inc)
	if err != nil {
		return nil, err
	}
	out := &Model{Intercept: mdl.Intercept, Coef: append([]float64(nil), mdl.Coef...)}
	return out, nil
}

// Solver is a reusable workspace for repeated Incremental solves. The
// moment-cached Shapley kernel refits O(m·permutations) models per trade
// round; solving into preallocated scratch removes every per-refit heap
// allocation (gram copy, Cholesky factor, substitution vectors, model).
// A Solver is not safe for concurrent use — give each worker its own.
type Solver struct {
	k     int
	g     *linalg.Matrix // ridge-damped copy of the accumulator's gram
	l     *linalg.Matrix // Cholesky factor
	y     []float64      // forward-substitution intermediate
	beta  []float64      // solution (intercept first)
	model Model
}

// NewSolver creates a workspace for k-feature accumulators.
func NewSolver(k int) *Solver {
	n := k + 1
	return &Solver{
		k:    k,
		g:    linalg.NewMatrix(n, n),
		l:    linalg.NewMatrix(n, n),
		y:    make([]float64, n),
		beta: make([]float64, n),
	}
}

// Solve refits the accumulator's ridge-damped normal equations in the
// workspace. The returned model aliases the workspace and is only valid
// until the next Solve call — callers that retain it must copy. The math is
// identical to Incremental.Solve: same ridge, same factorization order.
func (s *Solver) Solve(inc *Incremental) (*Model, error) {
	if inc.k != s.k {
		return nil, fmt.Errorf("regress: solving %d-feature accumulator with %d-feature workspace", inc.k, s.k)
	}
	if inc.n == 0 {
		return nil, ErrEmptyTrainingSet
	}
	copy(s.g.Data, inc.gram.Data)
	var trace float64
	for i := 0; i <= s.k; i++ {
		trace += s.g.At(i, i)
	}
	ridge := 1e-10 * trace / float64(s.k+1)
	if ridge <= 0 {
		ridge = 1e-12
	}
	for i := 0; i <= s.k; i++ {
		s.g.Set(i, i, s.g.At(i, i)+ridge)
	}
	if err := linalg.CholeskyInto(s.g, s.l); err != nil {
		return nil, err
	}
	if err := linalg.SolveLowerInto(s.l, inc.xty, s.y); err != nil {
		return nil, err
	}
	if err := linalg.SolveLowerTInto(s.l, s.y, s.beta); err != nil {
		return nil, err
	}
	s.model.Intercept = s.beta[0]
	s.model.Coef = s.beta[1:]
	return &s.model, nil
}
