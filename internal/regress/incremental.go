package regress

import (
	"share/internal/dataset"
	"share/internal/linalg"
)

// Incremental accumulates the sufficient statistics of an OLS fit — the Gram
// matrix XᵀX and moment vector Xᵀy over the design with intercept — so rows
// can be added one at a time and a model re-solved in O(k³) regardless of how
// many rows have been seen. Monte Carlo data-point Shapley scans permutation
// prefixes; with this accumulator each prefix extension costs O(k²) to
// absorb and O(k³) to refit, instead of refitting from scratch in O(n·k²).
type Incremental struct {
	k    int // features (excluding intercept)
	n    int // rows absorbed
	gram *linalg.Matrix
	xty  []float64
}

// NewIncremental creates an accumulator for k-feature rows.
func NewIncremental(k int) *Incremental {
	return &Incremental{
		k:    k,
		gram: linalg.NewMatrix(k+1, k+1),
		xty:  make([]float64, k+1),
	}
}

// N returns the number of rows absorbed so far.
func (inc *Incremental) N() int { return inc.n }

// Add absorbs one observation (x, y).
func (inc *Incremental) Add(x []float64, y float64) {
	// Augmented row is (1, x...); update upper triangle then mirror on
	// Solve. We update the full matrix directly — k is small in Share.
	aug := make([]float64, inc.k+1)
	aug[0] = 1
	copy(aug[1:], x)
	for i := 0; i <= inc.k; i++ {
		ai := aug[i]
		if ai == 0 {
			continue
		}
		row := inc.gram.Row(i)
		for j := 0; j <= inc.k; j++ {
			row[j] += ai * aug[j]
		}
		inc.xty[i] += ai * y
	}
	inc.n++
}

// AddDataset absorbs every row of d.
func (inc *Incremental) AddDataset(d *dataset.Dataset) {
	for i, row := range d.X {
		inc.Add(row, d.Y[i])
	}
}

// Reset clears the accumulator for reuse without reallocating.
func (inc *Incremental) Reset() {
	for i := range inc.gram.Data {
		inc.gram.Data[i] = 0
	}
	for i := range inc.xty {
		inc.xty[i] = 0
	}
	inc.n = 0
}

// Solve returns the OLS model for the absorbed rows. With fewer rows than
// parameters the normal equations are singular; a small ridge keeps the
// solve defined so Shapley prefix scans work from the first row.
func (inc *Incremental) Solve() (*Model, error) {
	if inc.n == 0 {
		return nil, ErrEmptyTrainingSet
	}
	g := inc.gram.Clone()
	var trace float64
	for i := 0; i <= inc.k; i++ {
		trace += g.At(i, i)
	}
	ridge := 1e-10 * trace / float64(inc.k+1)
	if ridge <= 0 {
		ridge = 1e-12
	}
	for i := 0; i <= inc.k; i++ {
		g.Set(i, i, g.At(i, i)+ridge)
	}
	beta, err := linalg.SolveSPD(g, inc.xty)
	if err != nil {
		return nil, err
	}
	return &Model{Intercept: beta[0], Coef: beta[1:]}, nil
}
