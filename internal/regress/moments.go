package regress

import (
	"errors"
	"fmt"
	"math"

	"share/internal/dataset"
	"share/internal/linalg"
)

// Moments holds a dataset's OLS sufficient statistics over the augmented
// design (1, x...): the Gram matrix XᵀX, the moment vector Xᵀy, and the row
// count. Computed once per seller chunk, it turns a Shapley coalition-prefix
// extension from an O(rows·k²) row-by-row re-ingest into an O(k²) merge —
// the core of the moment-cached valuation kernel.
type Moments struct {
	k    int
	n    int
	gram *linalg.Matrix
	xty  []float64
}

// DatasetMoments computes the sufficient statistics of d for k-feature
// rows. An empty dataset yields zero moments (merging them is a no-op), so
// zero-allocation sellers flow through the kernel unchanged.
func DatasetMoments(d *dataset.Dataset, k int) *Moments {
	inc := NewIncremental(k)
	if d != nil {
		inc.AddDataset(d)
	}
	return inc.Moments()
}

// Moments snapshots the accumulator's current sufficient statistics.
func (inc *Incremental) Moments() *Moments {
	return &Moments{
		k:    inc.k,
		n:    inc.n,
		gram: inc.gram.Clone(),
		xty:  append([]float64(nil), inc.xty...),
	}
}

// N returns the number of rows the moments summarize.
func (mo *Moments) N() int { return mo.n }

// K returns the feature count (excluding intercept).
func (mo *Moments) K() int { return mo.k }

// Vector flattens the moments into one per-row-normalized profile
// [XᵀX/n ; Xᵀy/n] — the dataset's empirical second-moment signature.
// Two sellers drawing from the same distribution produce nearly parallel
// vectors regardless of how many rows each holds, which is what makes the
// cosine between Vectors a scale-free redundancy measure. Empty moments
// return nil.
func (mo *Moments) Vector() []float64 {
	if mo.n == 0 {
		return nil
	}
	inv := 1 / float64(mo.n)
	out := make([]float64, 0, len(mo.gram.Data)+len(mo.xty))
	for _, v := range mo.gram.Data {
		out = append(out, v*inv)
	}
	for _, v := range mo.xty {
		out = append(out, v*inv)
	}
	return out
}

// AddMoments merges a precomputed chunk into the accumulator in O(k²),
// equivalent (up to floating-point association order) to AddDataset over the
// chunk's rows. It panics on a feature-count mismatch — mixing designs is a
// programming error, matching the linalg dimension conventions.
func (inc *Incremental) AddMoments(mo *Moments) {
	if mo.k != inc.k {
		panic(fmt.Sprintf("regress: merging %d-feature moments into %d-feature accumulator", mo.k, inc.k))
	}
	if mo.n == 0 {
		return
	}
	for i, v := range mo.gram.Data {
		inc.gram.Data[i] += v
	}
	for i, v := range mo.xty {
		inc.xty[i] += v
	}
	inc.n += mo.n
}

// EvalMoments caches a test set's sufficient statistics so a fitted model
// can be scored in O(k²) instead of streaming every test row: with centered
// Gram G = Σ(x−μ)(x−μ)ᵀ, cross-moments b = Σ(x−μ)(y−ȳ) and total variation
// S_yy = Σ(y−ȳ)², the residual statistics of any model θ follow in closed
// form (DESIGN.md §9). The centered formulation is the numerically stable
// equivalent of the raw identity Σerr² = θᵀAθ − 2bᵀθ + yᵀy: raw second
// moments of CCPP-scale targets (y ≈ 450) would cancel ~3 digits against the
// residual sum; centering keeps every term at residual scale.
type EvalMoments struct {
	k     int
	n     float64
	mean  []float64 // feature column means μ
	meanY float64   // target mean ȳ
	gram  *linalg.Matrix
	xty   []float64
	syy   float64
}

// NewEvalMoments computes the centered test-set moments in two passes
// (means first, then centered accumulation).
func NewEvalMoments(test *dataset.Dataset) (*EvalMoments, error) {
	if test == nil || test.Len() == 0 {
		return nil, errors.New("regress: empty test set")
	}
	k := test.NumFeatures()
	em := &EvalMoments{
		k:    k,
		n:    float64(test.Len()),
		mean: make([]float64, k),
		gram: linalg.NewMatrix(k, k),
		xty:  make([]float64, k),
	}
	for i, row := range test.X {
		for j, v := range row {
			em.mean[j] += v
		}
		em.meanY += test.Y[i]
	}
	for j := range em.mean {
		em.mean[j] /= em.n
	}
	em.meanY /= em.n
	c := make([]float64, k)
	for i, row := range test.X {
		for j, v := range row {
			c[j] = v - em.mean[j]
		}
		dy := test.Y[i] - em.meanY
		em.syy += dy * dy
		for a := 0; a < k; a++ {
			ca := c[a]
			em.xty[a] += ca * dy
			if ca == 0 {
				continue
			}
			grow := em.gram.Row(a)
			for b := a; b < k; b++ {
				grow[b] += ca * c[b]
			}
		}
	}
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			em.gram.Set(b, a, em.gram.At(a, b))
		}
	}
	return em, nil
}

// residualStats returns Σ(err − meanErr)² (the centered residual sum) and
// the mean error for model m; both in O(k²).
func (em *EvalMoments) residualStats(m *Model) (centeredSS, meanErr float64) {
	// err_i = (y_i − ȳ) − cᵀ(x_i − μ) − δ with δ = intercept + cᵀμ − ȳ.
	// Centered sums of (x−μ) and (y−ȳ) vanish, so
	// Σ(err − meanErr)² = S_yy − 2cᵀb + cᵀGc and meanErr = −δ.
	var quad, cross, delta float64
	for a, ca := range m.Coef {
		cross += ca * em.xty[a]
		delta += ca * em.mean[a]
		row := em.gram.Row(a)
		var s float64
		for b, cb := range m.Coef {
			s += row[b] * cb
		}
		quad += ca * s
	}
	centeredSS = em.syy - 2*cross + quad
	if centeredSS < 0 {
		centeredSS = 0 // tiny negative from rounding on near-perfect fits
	}
	return centeredSS, -(m.Intercept + delta - em.meanY)
}

// MSE returns the model's mean squared error on the cached test set.
func (em *EvalMoments) MSE(m *Model) float64 {
	ss, meanErr := em.residualStats(m)
	return ss/em.n + meanErr*meanErr
}

// ExplainedVariance returns 1 − Var(y−ŷ)/Var(y) on the cached test set,
// matching Evaluate's conventions: 0 for a constant-target test set and 0
// for non-finite results (so Shapley prefix scans treat unscorable models as
// worthless rather than erroring).
func (em *EvalMoments) ExplainedVariance(m *Model) float64 {
	if em.syy <= 0 {
		return 0
	}
	ss, _ := em.residualStats(m)
	ev := 1 - ss/em.syy
	if math.IsNaN(ev) || math.IsInf(ev, 0) {
		return 0
	}
	return ev
}

// N returns the number of cached test rows.
func (em *EvalMoments) N() int { return int(em.n) }

// K returns the feature count the moments were built for.
func (em *EvalMoments) K() int { return em.k }
