package regress

import (
	"math"
	"testing"

	"share/internal/dataset"
	"share/internal/stat"
)

// TestAddMomentsMatchesAddDataset: merging per-chunk moments must reproduce
// the row-by-row accumulator — same Gram, same Xᵀy, same solved model.
func TestAddMomentsMatchesAddDataset(t *testing.T) {
	rng := stat.NewRand(1)
	full := dataset.SyntheticCCPP(300, rng)
	chunks, err := dataset.PartitionEqual(full, 5)
	if err != nil {
		t.Fatal(err)
	}
	k := full.NumFeatures()

	rows := NewIncremental(k)
	merged := NewIncremental(k)
	for _, c := range chunks {
		rows.AddDataset(c)
		merged.AddMoments(DatasetMoments(c, k))
	}
	if rows.N() != merged.N() {
		t.Fatalf("row counts diverge: %d vs %d", rows.N(), merged.N())
	}
	mRows, err := rows.Solve()
	if err != nil {
		t.Fatal(err)
	}
	mMerged, err := merged.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Coefficients pass through ridge-damped normal equations, so compare
	// at relative precision; the downstream quantity (explained variance)
	// is checked at the kernel's 1e-9 absolute bar.
	if d := math.Abs(mRows.Intercept - mMerged.Intercept); d > 1e-9*(1+math.Abs(mRows.Intercept)) {
		t.Errorf("intercepts diverge: %v vs %v", mRows.Intercept, mMerged.Intercept)
	}
	for j := range mRows.Coef {
		if d := math.Abs(mRows.Coef[j] - mMerged.Coef[j]); d > 1e-9*(1+math.Abs(mRows.Coef[j])) {
			t.Errorf("coef %d diverges: %v vs %v", j, mRows.Coef[j], mMerged.Coef[j])
		}
	}
	test := dataset.SyntheticCCPP(200, rng)
	em, err := NewEvalMoments(test)
	if err != nil {
		t.Fatal(err)
	}
	if evA, evB := em.ExplainedVariance(mRows), em.ExplainedVariance(mMerged); math.Abs(evA-evB) > 1e-9 {
		t.Errorf("explained variance diverges: %v vs %v", evA, evB)
	}
}

func TestAddMomentsEmptyChunkIsNoOp(t *testing.T) {
	inc := NewIncremental(3)
	inc.Add([]float64{1, 2, 3}, 4)
	before := inc.Moments()
	inc.AddMoments(DatasetMoments(&dataset.Dataset{}, 3))
	if inc.N() != 1 {
		t.Errorf("empty merge changed row count to %d", inc.N())
	}
	after := inc.Moments()
	for i := range before.gram.Data {
		if before.gram.Data[i] != after.gram.Data[i] {
			t.Fatalf("empty merge changed gram at %d", i)
		}
	}
}

func TestAddMomentsDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched merge did not panic")
		}
	}()
	NewIncremental(3).AddMoments(DatasetMoments(&dataset.Dataset{}, 4))
}

func TestMomentsSnapshotIsIndependent(t *testing.T) {
	inc := NewIncremental(2)
	inc.Add([]float64{1, 2}, 3)
	snap := inc.Moments()
	inc.Add([]float64{4, 5}, 6)
	if snap.N() != 1 {
		t.Errorf("snapshot row count tracked the accumulator: %d", snap.N())
	}
	fresh := NewIncremental(2)
	fresh.Add([]float64{1, 2}, 3)
	want := fresh.Moments()
	for i := range want.gram.Data {
		if snap.gram.Data[i] != want.gram.Data[i] {
			t.Fatalf("snapshot gram aliased the accumulator at %d", i)
		}
	}
}

// TestEvalMomentsMatchesEvaluate: the fused O(k²) scoring path must agree
// with the row-streaming Evaluate on both metrics, across good and terrible
// models.
func TestEvalMomentsMatchesEvaluate(t *testing.T) {
	rng := stat.NewRand(2)
	train := dataset.SyntheticCCPP(400, rng)
	test := dataset.SyntheticCCPP(250, rng)
	em, err := NewEvalMoments(test)
	if err != nil {
		t.Fatal(err)
	}
	good, err := Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	bad := &Model{Intercept: 100, Coef: make([]float64, train.NumFeatures())}
	skew := &Model{Intercept: -3, Coef: []float64{2, -1, 0.5, 4}}
	for name, m := range map[string]*Model{"fitted": good, "constant": bad, "skewed": skew} {
		want, err := Evaluate(m, test)
		if err != nil {
			t.Fatal(err)
		}
		if got := em.ExplainedVariance(m); math.Abs(got-want.ExplainedVariance) > 1e-9 {
			t.Errorf("%s: EV %v via moments, %v streaming", name, got, want.ExplainedVariance)
		}
		if got := em.MSE(m); math.Abs(got-want.MSE) > 1e-6*(1+want.MSE) {
			t.Errorf("%s: MSE %v via moments, %v streaming", name, got, want.MSE)
		}
	}
}

func TestEvalMomentsConstantTarget(t *testing.T) {
	test := &dataset.Dataset{
		X: [][]float64{{1, 2}, {3, 4}, {5, 6}},
		Y: []float64{7, 7, 7},
	}
	em, err := NewEvalMoments(test)
	if err != nil {
		t.Fatal(err)
	}
	m := &Model{Intercept: 7, Coef: []float64{0, 0}}
	if ev := em.ExplainedVariance(m); ev != 0 {
		t.Errorf("constant-target EV = %v, want 0 (Evaluate's convention)", ev)
	}
}

func TestEvalMomentsRejectsEmptyTestSet(t *testing.T) {
	if _, err := NewEvalMoments(&dataset.Dataset{}); err == nil {
		t.Error("accepted empty test set")
	}
	if _, err := NewEvalMoments(nil); err == nil {
		t.Error("accepted nil test set")
	}
}
