package httpapi

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func doDelete(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, raw
}

// TestRemoveSellerEndpoint exercises DELETE /v2/markets/{id}/sellers/{sid}
// through both roster phases: pre-trade unregistration and a mid-life leave
// after trading has started.
func TestRemoveSellerEndpoint(t *testing.T) {
	ts := newTestServer(t)
	registerSynthetic(t, ts.URL, 3)

	// Pre-trade: releasing a registered seller shrinks the listing.
	resp, body := doDelete(t, ts.URL+"/v2/markets/default/sellers/S1")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("pre-trade remove = %d (%s), want 204", resp.StatusCode, body)
	}
	var infos []SellerInfo
	getJSON(t, ts.URL+"/v1/sellers", &infos)
	if len(infos) != 2 || infos[0].ID != "S0" || infos[1].ID != "S2" {
		t.Fatalf("roster after remove = %+v", infos)
	}

	// Unknown seller: 404 seller_not_found, the same envelope every seller
	// sub-resource answers.
	resp, body = doDelete(t, ts.URL+"/v2/markets/default/sellers/ghost")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown seller remove = %d, want 404", resp.StatusCode)
	}
	if e := decodeErrorEnvelope(t, body); e.Code != CodeSellerNotFound || e.Field != "sid" {
		t.Errorf("unknown seller envelope = %+v", e)
	}

	// Mid-life: trade, then release one of the survivors incrementally.
	if resp, body := postJSON(t, ts.URL+"/v1/trades", Demand{N: 60, V: 0.8}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("trade: %d (%s)", resp.StatusCode, body)
	}
	resp, body = doDelete(t, ts.URL+"/v2/markets/default/sellers/S0")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("mid-life remove = %d (%s), want 204", resp.StatusCode, body)
	}
	var weights []float64
	getJSON(t, ts.URL+"/v1/weights", &weights)
	if len(weights) != 1 {
		t.Fatalf("post-leave weights = %v, want one entry", weights)
	}
	// The last seller is load-bearing: removing it mid-life is refused.
	resp, body = doDelete(t, ts.URL+"/v2/markets/default/sellers/S2")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("last-seller remove = %d (%s), want 400", resp.StatusCode, body)
	}
	// Quotes still solve over the shrunken roster.
	resp, body = postJSON(t, ts.URL+"/v1/quote", Demand{N: 50, V: 0.8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quote after churn = %d (%s)", resp.StatusCode, body)
	}
}

// TestStreamDeliversEvents subscribes to the SSE stream via the typed
// client and walks a churn sequence: the initial state snapshot, a join, a
// committed trade's weight event, and a leave.
func TestStreamDeliversEvents(t *testing.T) {
	srv := NewServer(Options{Seed: 3, Logf: func(string, ...any) {}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	registerSynthetic(t, ts.URL, 2)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := make(chan StreamEvent, 32)
	done := make(chan error, 1)
	c := NewClient(ts.URL, nil)
	go func() {
		done <- c.Watch(ctx, "default", func(ev StreamEvent) error {
			events <- ev
			return nil
		})
	}()
	next := func(want string) StreamEvent {
		t.Helper()
		select {
		case ev := <-events:
			if ev.Type != want {
				t.Fatalf("event type = %q (%+v), want %q", ev.Type, ev, want)
			}
			return ev
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for %q event", want)
			return StreamEvent{}
		}
	}

	state := next("state")
	if len(state.Sellers) != 2 || state.Market != "default" {
		t.Fatalf("state snapshot = %+v", state)
	}

	if resp, body := postJSON(t, ts.URL+"/v1/sellers", SellerRegistration{ID: "J1", Lambda: 0.4, SyntheticRows: 80}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("join: %d (%s)", resp.StatusCode, body)
	}
	join := next("roster")
	if join.Action != "join" || join.Seller != "J1" || len(join.Sellers) != 3 {
		t.Fatalf("join event = %+v", join)
	}
	if !(join.PM > 0 && join.PD > 0) {
		t.Errorf("join event carries no prototype prices: %+v", join)
	}

	if resp, body := postJSON(t, ts.URL+"/v1/trades", Demand{N: 60, V: 0.8}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("trade: %d (%s)", resp.StatusCode, body)
	}
	wev := next("weights")
	if wev.Round != 1 || len(wev.Weights) != 3 || !(wev.PM > 0) {
		t.Fatalf("weights event = %+v", wev)
	}

	resp, body := doDelete(t, ts.URL+"/v2/markets/default/sellers/S0")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("leave: %d (%s)", resp.StatusCode, body)
	}
	leave := next("roster")
	if leave.Action != "leave" || leave.Seller != "S0" || len(leave.Sellers) != 2 {
		t.Fatalf("leave event = %+v", leave)
	}
	if leave.Epoch <= join.Epoch {
		t.Errorf("leave epoch %d did not advance past join epoch %d", leave.Epoch, join.Epoch)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil && err != context.Canceled {
			t.Errorf("Watch returned %v, want nil or context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Watch did not return after cancel")
	}
}

// TestStreamUnknownMarket verifies the stream endpoint answers the standard
// envelope, not an event stream, for missing markets.
func TestStreamUnknownMarket(t *testing.T) {
	ts := newTestServer(t)
	c := NewClient(ts.URL, nil)
	err := c.Watch(context.Background(), "nope", func(StreamEvent) error { return nil })
	se, ok := err.(*StatusError)
	if !ok || se.Code != http.StatusNotFound || se.APICode != CodeMarketNotFound {
		t.Fatalf("Watch(unknown) = %v, want 404 market_not_found StatusError", err)
	}
}
