package httpapi

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"share/internal/dataset"
	"share/internal/product"
)

// blockingBuilder parks the trade inside product manufacturing — while it
// blocks, the trade holds the server's write path — so the test can probe
// what the read endpoints do in exactly that window.
type blockingBuilder struct {
	once    sync.Once
	started chan struct{} // closed when Build is first entered
	release chan struct{} // Build proceeds once closed
}

func (b *blockingBuilder) Name() string { return "blocking" }

// Build blocks on first entry; the Shapley weight update re-invokes it per
// coalition afterwards, so subsequent calls pass straight through (release
// stays closed).
func (b *blockingBuilder) Build(train, test *dataset.Dataset) (product.Report, error) {
	b.once.Do(func() { close(b.started) })
	<-b.release
	return product.OLS{}.Build(train, test)
}

// TestQuotesDoNotBlockOnInFlightTrade is the tentpole's contract: reads run
// lock-free against the published view, so quotes, health, sellers, weights
// and metrics all complete while a trade is wedged mid-round holding the
// write path. Run under -race this also proves the copy-on-write view is
// data-race free. Before the RWMutex/view split, every one of these reads
// deadlocked until the trade finished.
func TestQuotesDoNotBlockOnInFlightTrade(t *testing.T) {
	srv := NewServer(Options{Seed: 1, Logf: func(string, ...any) {}})
	bb := &blockingBuilder{started: make(chan struct{}), release: make(chan struct{})}
	srv.testHookTradeBuilder = bb
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	registerSynthetic(t, ts.URL, 3)

	// Launch the trade; it will park inside Build holding writeMu.
	tradeDone := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/trades", Demand{N: 90, V: 0.8})
		tradeDone <- resp.StatusCode
	}()
	select {
	case <-bb.started:
	case <-time.After(10 * time.Second):
		t.Fatal("trade never reached manufacturing")
	}

	// With the trade still in flight, every read endpoint must answer.
	reads := []struct {
		method, path string
		body         any
		want         int
	}{
		{http.MethodPost, "/v1/quote", Demand{N: 120, V: 0.8}, http.StatusOK},
		{http.MethodGet, "/v1/health", nil, http.StatusOK},
		{http.MethodGet, "/v1/sellers", nil, http.StatusOK},
		{http.MethodGet, "/v1/weights", nil, http.StatusOK},
		{http.MethodGet, "/v1/trades", nil, http.StatusOK},
		{http.MethodGet, "/v1/metrics", nil, http.StatusOK},
	}
	const perEndpoint = 8
	var wg sync.WaitGroup
	errs := make(chan string, len(reads)*perEndpoint)
	for _, rd := range reads {
		for i := 0; i < perEndpoint; i++ {
			wg.Add(1)
			go func(method, path string, body any, want int) {
				defer wg.Done()
				var code int
				if method == http.MethodGet {
					resp := getJSON(t, ts.URL+path, nil)
					code = resp.StatusCode
				} else {
					resp, _ := postJSON(t, ts.URL+path, body)
					code = resp.StatusCode
				}
				if code != want {
					errs <- path
				}
			}(rd.method, rd.path, rd.body, rd.want)
		}
	}
	allDone := make(chan struct{})
	go func() { wg.Wait(); close(allDone) }()
	select {
	case <-allDone:
	case <-time.After(30 * time.Second):
		t.Fatal("read endpoints blocked behind the in-flight trade")
	}
	close(errs)
	for path := range errs {
		t.Errorf("read %s failed while trade was in flight", path)
	}

	// Release the trade; it must complete normally.
	close(bb.release)
	select {
	case code := <-tradeDone:
		if code != http.StatusCreated {
			t.Errorf("released trade status = %d, want 201", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("trade never completed after release")
	}

	// The view published by the finished trade is what readers now see.
	var trades []TradeResult
	getJSON(t, ts.URL+"/v1/trades", &trades)
	if len(trades) != 1 {
		t.Errorf("ledger after trade = %d entries, want 1", len(trades))
	}
}

// TestConcurrentQuotesAndTrades hammers the service from many goroutines —
// the -race gate for the whole read-view/write-lock design under churn,
// with trades republishing the view while quotes read it.
func TestConcurrentQuotesAndTrades(t *testing.T) {
	srv := NewServer(Options{Seed: 1, Logf: func(string, ...any) {}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	registerSynthetic(t, ts.URL, 3)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				resp, body := postJSON(t, ts.URL+"/v1/trades", Demand{N: 60, V: 0.8})
				if resp.StatusCode != http.StatusCreated {
					t.Errorf("trade: %d (%s)", resp.StatusCode, body)
				}
			}
		}()
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, body := postJSON(t, ts.URL+"/v1/quote", Demand{N: 100, V: 0.8})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("quote: %d (%s)", resp.StatusCode, body)
				}
				getJSON(t, ts.URL+"/v1/weights", nil)
				getJSON(t, ts.URL+"/v1/metrics", nil)
			}
		}()
	}
	wg.Wait()

	var trades []TradeResult
	getJSON(t, ts.URL+"/v1/trades", &trades)
	if len(trades) != 12 {
		t.Errorf("ledger = %d trades, want 12", len(trades))
	}
	for i, tr := range trades {
		if tr.Round != i+1 {
			t.Errorf("trade %d has round %d", i, tr.Round)
		}
	}
}
