package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"share/internal/dataset"
	"share/internal/product"
)

// failingBuilder simulates a product-training fault — an internal error
// that must NOT be blamed on the client.
type failingBuilder struct{}

func (failingBuilder) Name() string { return "failing" }
func (failingBuilder) Build(train, test *dataset.Dataset) (product.Report, error) {
	return product.Report{}, errors.New("synthetic training failure")
}

func TestDemandValidation(t *testing.T) {
	ts := newTestServer(t)
	registerSynthetic(t, ts.URL, 2)
	cases := []struct {
		name      string
		d         Demand
		want      int
		wantField string
	}{
		{"theta1 too large", Demand{N: 100, V: 0.8, Theta1: 1.5}, http.StatusBadRequest, "theta1"},
		{"theta1 negative", Demand{N: 100, V: 0.8, Theta1: -0.2}, http.StatusBadRequest, "theta1"},
		{"theta2 too large", Demand{N: 100, V: 0.8, Theta2: 1.0}, http.StatusBadRequest, "theta2"},
		{"conflicting pair", Demand{N: 100, V: 0.8, Theta1: 0.7, Theta2: 0.2}, http.StatusBadRequest, "theta1"},
		{"negative n", Demand{N: -5, V: 0.8}, http.StatusBadRequest, "n"},
		{"negative v", Demand{N: 100, V: -0.8}, http.StatusBadRequest, "v"},
		{"negative rho1", Demand{N: 100, V: 0.8, Rho1: -1}, http.StatusBadRequest, "rho1"},
		{"negative rho2", Demand{N: 100, V: 0.8, Rho2: -1}, http.StatusBadRequest, "rho2"},
		{"consistent pair ok", Demand{N: 100, V: 0.8, Theta1: 0.3, Theta2: 0.7}, http.StatusOK, ""},
		{"theta1 alone ok", Demand{N: 100, V: 0.8, Theta1: 0.3}, http.StatusOK, ""},
		{"theta2 alone ok", Demand{N: 100, V: 0.8, Theta2: 0.7}, http.StatusOK, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/quote", c.d)
			if resp.StatusCode != c.want {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, c.want, body)
			}
			if c.wantField != "" && !strings.Contains(string(body), c.wantField) {
				t.Errorf("error %q does not name field %q", body, c.wantField)
			}
		})
	}
}

// TestThetaPairNotSilentlyOverwritten pins the fixed bug: sending both
// θ₁ and θ₂ must honor both (when consistent), not let θ₂ clobber the
// θ₁-derived pairing. A consistent asymmetric pair yields the same quote as
// sending θ₁ alone.
func TestThetaPairNotSilentlyOverwritten(t *testing.T) {
	ts := newTestServer(t)
	registerSynthetic(t, ts.URL, 3)
	_, bodyPair := postJSON(t, ts.URL+"/v1/quote", Demand{N: 100, V: 0.8, Theta1: 0.3, Theta2: 0.7})
	_, bodySingle := postJSON(t, ts.URL+"/v1/quote", Demand{N: 100, V: 0.8, Theta1: 0.3})
	var qPair, qSingle Quote
	if err := json.Unmarshal(bodyPair, &qPair); err != nil {
		t.Fatalf("decoding pair quote: %v (%s)", err, bodyPair)
	}
	if err := json.Unmarshal(bodySingle, &qSingle); err != nil {
		t.Fatalf("decoding single quote: %v (%s)", err, bodySingle)
	}
	if qPair.ProductPrice != qSingle.ProductPrice || qPair.DataPrice != qSingle.DataPrice {
		t.Errorf("pair quote %+v != single-theta1 quote %+v", qPair, qSingle)
	}
}

func TestBodyLimitReturns413(t *testing.T) {
	srv := NewServer(Options{Seed: 1, Logf: func(string, ...any) {}, MaxBodyBytes: 1024})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	big := make([]byte, 4096)
	for i := range big {
		big[i] = ' '
	}
	copy(big, []byte(`{"n": 100, "v": 0.8}`))
	resp, err := http.Post(ts.URL+"/v1/quote", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status = %d, want 413", resp.StatusCode)
	}
	// An in-budget request on the same server still works.
	resp, body := postJSON(t, ts.URL+"/v1/sellers", SellerRegistration{ID: "s", Lambda: 0.5, SyntheticRows: 50})
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("small body after 413: %d (%s)", resp.StatusCode, body)
	}
}

func TestTradeInternalErrorReturns500(t *testing.T) {
	srv := NewServer(Options{Seed: 1, Logf: func(string, ...any) {}})
	srv.testHookTradeBuilder = failingBuilder{}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	registerSynthetic(t, ts.URL, 2)

	resp, body := postJSON(t, ts.URL+"/v1/trades", Demand{N: 60, V: 0.8})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("training failure status = %d, want 500 (%s)", resp.StatusCode, body)
	}
	// The failed round must not have committed anything.
	var trades []TradeResult
	getJSON(t, ts.URL+"/v1/trades", &trades)
	if len(trades) != 0 {
		t.Errorf("failed trade reached the ledger: %d entries", len(trades))
	}
}

func TestTradeBadDemandStill400(t *testing.T) {
	ts := newTestServer(t)
	registerSynthetic(t, ts.URL, 2)
	resp, body := postJSON(t, ts.URL+"/v1/trades", Demand{N: 60, V: 0.8, Theta1: 2})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad demand trade status = %d, want 400 (%s)", resp.StatusCode, body)
	}
}

func TestTradeDeadlineReturns504(t *testing.T) {
	srv := NewServer(Options{Seed: 1, Logf: func(string, ...any) {}, TradeTimeout: time.Nanosecond})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	registerSynthetic(t, ts.URL, 2)

	resp, body := postJSON(t, ts.URL+"/v1/trades", Demand{N: 60, V: 0.8})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("expired trade status = %d, want 504 (%s)", resp.StatusCode, body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	registerSynthetic(t, ts.URL, 2)
	postJSON(t, ts.URL+"/v1/quote", Demand{N: 100, V: 0.8})
	postJSON(t, ts.URL+"/v1/quote", Demand{N: -1, V: 0.8}) // one error
	getJSON(t, ts.URL+"/v1/health", nil)

	var snap struct {
		UptimeSeconds float64 `json:"uptime_seconds"`
		Endpoints     map[string]struct {
			Count    uint64 `json:"count"`
			Errors   uint64 `json:"errors"`
			InFlight int64  `json:"in_flight"`
			Latency  struct {
				P50 float64 `json:"p50_seconds"`
				P99 float64 `json:"p99_seconds"`
				Max float64 `json:"max_seconds"`
			} `json:"latency"`
		} `json:"endpoints"`
	}
	resp := getJSON(t, ts.URL+"/v1/metrics", &snap)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	q, ok := snap.Endpoints["POST /v1/quote"]
	if !ok {
		t.Fatalf("metrics missing POST /v1/quote: %v", snap.Endpoints)
	}
	if q.Count != 2 || q.Errors != 1 {
		t.Errorf("quote count/errors = %d/%d, want 2/1", q.Count, q.Errors)
	}
	if q.InFlight != 0 {
		t.Errorf("quote in-flight = %d, want 0", q.InFlight)
	}
	if !(q.Latency.Max > 0) || q.Latency.P99 < q.Latency.P50 {
		t.Errorf("quote latency stats malformed: %+v", q.Latency)
	}
	if reg, ok := snap.Endpoints["POST /v1/sellers"]; !ok || reg.Count != 2 {
		t.Errorf("seller registration metrics = %+v, want count 2", reg)
	}
}

// TestValuationLatencyMetric: every trade with a weight update must record a
// sample in the standalone "trade/valuation" latency series, and the Workers
// option must not change the trade's outcome (the kernel is deterministic in
// the worker count).
func TestValuationLatencyMetric(t *testing.T) {
	srv := NewServer(Options{Seed: 1, Logf: func(string, ...any) {}, Workers: 4})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	registerSynthetic(t, ts.URL, 3)

	resp, body := postJSON(t, ts.URL+"/v1/trades", Demand{N: 90, V: 0.8})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("trade status = %d (%s)", resp.StatusCode, body)
	}

	var snap struct {
		Endpoints map[string]struct {
			Count   uint64 `json:"count"`
			Latency struct {
				P50 float64 `json:"p50_seconds"`
				Max float64 `json:"max_seconds"`
			} `json:"latency"`
		} `json:"endpoints"`
	}
	getJSON(t, ts.URL+"/v1/metrics", &snap)
	val, ok := snap.Endpoints["trade/valuation"]
	if !ok {
		t.Fatalf("metrics missing trade/valuation: %v", snap.Endpoints)
	}
	if !(val.Latency.Max > 0) {
		t.Errorf("valuation latency not recorded: %+v", val.Latency)
	}
	// No HTTP requests hit this label — only Observe samples.
	if val.Count != 0 {
		t.Errorf("trade/valuation request count = %d, want 0", val.Count)
	}
}
