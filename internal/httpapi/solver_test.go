package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"share/internal/obs"
)

func TestQuoteSolverSelection(t *testing.T) {
	ts := newTestServer(t)
	registerSynthetic(t, ts.URL, 4)

	// Default: the analytic backend, exact, no error bound.
	resp, body := postJSON(t, ts.URL+"/v1/quote", Demand{N: 200, V: 0.8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default quote: %d %s", resp.StatusCode, body)
	}
	var def Quote
	if err := json.Unmarshal(body, &def); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if def.Solver != "analytic" {
		t.Errorf("default quote solver = %q, want analytic", def.Solver)
	}
	if def.Approx != nil {
		t.Error("analytic quote carries an approx bound")
	}

	// Per-request mean-field: same prices (shared Stage 1–2 closed forms),
	// Theorem 5.1 bound attached.
	resp, body = postJSON(t, ts.URL+"/v1/quote", Demand{N: 200, V: 0.8, Solver: "meanfield"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("meanfield quote: %d %s", resp.StatusCode, body)
	}
	var mf Quote
	if err := json.Unmarshal(body, &mf); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if mf.Solver != "meanfield" {
		t.Errorf("quote solver = %q, want meanfield", mf.Solver)
	}
	if mf.Approx == nil {
		t.Fatal("mean-field quote carries no Theorem 5.1 bound")
	}
	if mf.Approx.ErrorLo >= 0 || mf.Approx.ErrorHi <= 0 {
		t.Errorf("degenerate error interval (%v, %v)", mf.Approx.ErrorLo, mf.Approx.ErrorHi)
	}
	if mf.ProductPrice != def.ProductPrice || mf.DataPrice != def.DataPrice {
		t.Errorf("mean-field prices (%v, %v) differ from analytic (%v, %v)",
			mf.ProductPrice, mf.DataPrice, def.ProductPrice, def.DataPrice)
	}

	// Unknown backend: a 400 naming the field, not a 500.
	resp, body = postJSON(t, ts.URL+"/v1/quote", Demand{N: 200, V: 0.8, Solver: "simplex"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown solver: %d %s, want 400", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "solver") {
		t.Errorf("error %s does not name the solver field", body)
	}
}

func TestTradeSolverSelection(t *testing.T) {
	ts := newTestServer(t)
	registerSynthetic(t, ts.URL, 4)

	resp, body := postJSON(t, ts.URL+"/v1/trades", Demand{N: 200, V: 0.8, Solver: "meanfield"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("trade: %d %s", resp.StatusCode, body)
	}
	var tr TradeResult
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if tr.Solver != "meanfield" || tr.Quote.Solver != "meanfield" {
		t.Errorf("trade solver = %q / quote %q, want meanfield", tr.Solver, tr.Quote.Solver)
	}
	if tr.Quote.Approx == nil {
		t.Error("mean-field trade quote carries no Theorem 5.1 bound")
	}

	// The override is per-trade: the next plain trade is analytic again.
	resp, body = postJSON(t, ts.URL+"/v1/trades", Demand{N: 200, V: 0.8})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("second trade: %d %s", resp.StatusCode, body)
	}
	tr = TradeResult{}
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if tr.Solver != "analytic" {
		t.Errorf("post-override trade solver = %q, want analytic", tr.Solver)
	}

	// Per-backend latency series in /v1/metrics. Like trade/valuation, the
	// solve series record samples via Observe (request counters stay with
	// the HTTP endpoints), so presence is the contract; the mean-field trade
	// above must have left a sample in its series.
	var snap obs.Snapshot
	getJSON(t, ts.URL+"/v1/metrics", &snap)
	for _, name := range []string{"solve/analytic", "solve/general", "solve/meanfield"} {
		if _, ok := snap.Endpoints[name]; !ok {
			t.Errorf("metrics omit the %s series", name)
		}
	}
}

// TestServerDefaultSolver: booting with -solver meanfield makes it the
// default for unqualified requests, while "analytic" stays reachable
// per-request.
func TestServerDefaultSolver(t *testing.T) {
	srv := NewServer(Options{Seed: 1, Logf: func(string, ...any) {}, Solver: "meanfield"})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	registerSynthetic(t, ts.URL, 4)

	resp, body := postJSON(t, ts.URL+"/v1/quote", Demand{N: 200, V: 0.8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quote: %d %s", resp.StatusCode, body)
	}
	var q Quote
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if q.Solver != "meanfield" || q.Approx == nil {
		t.Errorf("server-default quote solver = %q (approx %v), want meanfield with bound", q.Solver, q.Approx)
	}

	resp, body = postJSON(t, ts.URL+"/v1/quote", Demand{N: 200, V: 0.8, Solver: "analytic"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analytic quote: %d %s", resp.StatusCode, body)
	}
	q = Quote{}
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if q.Solver != "analytic" || q.Approx != nil {
		t.Errorf("per-request analytic override returned solver %q (approx %v)", q.Solver, q.Approx)
	}
}

// TestSnapshotRoundTripKeepsSolver: a server snapshot taken under a
// non-default backend restores with that backend still active.
func TestSnapshotRoundTripKeepsSolver(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/market.json"

	srv := NewServer(Options{Seed: 1, Logf: func(string, ...any) {}, Solver: "meanfield"})
	ts := httptest.NewServer(srv.Handler())
	registerSynthetic(t, ts.URL, 4)
	resp, body := postJSON(t, ts.URL+"/v1/trades", Demand{N: 200, V: 0.8})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("trade: %d %s", resp.StatusCode, body)
	}
	if err := srv.SaveSnapshot(path); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	ts.Close()

	// Restore into a server booted with the analytic default.
	srv2 := NewServer(Options{Seed: 1, Logf: func(string, ...any) {}})
	if err := srv2.RestoreSnapshot(path); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)

	resp, body = postJSON(t, ts2.URL+"/v1/trades", Demand{N: 200, V: 0.8})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-restore trade: %d %s", resp.StatusCode, body)
	}
	var tr TradeResult
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if tr.Solver != "meanfield" {
		t.Errorf("post-restore trade solver = %q, want the snapshot's meanfield", tr.Solver)
	}
}
