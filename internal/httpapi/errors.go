package httpapi

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"share/internal/budget"
	"share/internal/market"
	"share/internal/pool"
)

// Error is the typed API error behind every non-2xx response, v1 and v2
// alike. It renders as the unified envelope
//
//	{"error": {"code": "...", "field": "...", "message": "..."}}
//
// Code is machine-readable and stable across releases; Field names the
// offending request field for validation failures; Message is
// human-readable and free to change.
type Error struct {
	// Status is the HTTP status the error responds with (not serialized —
	// it is the response's status line).
	Status int `json:"-"`
	// Code is the stable machine-readable classification.
	Code string `json:"code"`
	// Field names the request field at fault, when one is identifiable.
	Field string `json:"field,omitempty"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// RetryAfter, when positive, is the server's backoff hint in seconds
	// (429 overloaded / 503 draining). It is also emitted as the standard
	// Retry-After response header.
	RetryAfter int `json:"retry_after_seconds,omitempty"`
}

// Error implements error.
func (e *Error) Error() string {
	if e.Field != "" {
		return fmt.Sprintf("%s: field %q: %s", e.Code, e.Field, e.Message)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// Stable error codes. Every non-2xx response carries exactly one of these.
const (
	CodeInvalidBody     = "invalid_body"     // 400: body not decodable as the endpoint's request type
	CodeBodyTooLarge    = "body_too_large"   // 413: body exceeds the server cap
	CodeInvalidField    = "invalid_field"    // 400: a named field failed validation
	CodeInvalidDemand   = "invalid_demand"   // 400: the demand was rejected by the game (wraps market.ErrDemand)
	CodeMarketNotFound  = "market_not_found" // 404: no such market
	CodeMarketExists    = "market_exists"    // 409: market ID already hosted
	CodeMarketClosed    = "market_closed"    // 409: market is draining for deletion
	CodeMarketProtected = "market_protected" // 409: the default market cannot be deleted (v1 aliases onto it)
	CodeNoSellers       = "no_sellers"       // 409: quote/trade before any registration
	CodeRosterMismatch  = "roster_mismatch"  // 400: a roster change or replayed roster state was inconsistent
	CodeSellerExists    = "seller_exists"    // 409: duplicate seller ID
	CodeSellerNotFound  = "seller_not_found" // 404: no such seller in the market's roster
	CodeBudgetExhausted = "budget_exhausted" // 409: a trade's ε charge would overrun a seller's privacy budget
	CodeTimeout         = "timeout"          // 504: the round outran its deadline
	CodeCanceled        = "canceled"         // 503: the client disconnected mid-round
	CodeOverloaded      = "overloaded"       // 429: the market's trade queue is full; honor Retry-After
	CodeDraining        = "draining"         // 503: the server is shutting down; retry against a healthy instance
	CodeInternal        = "internal"         // 500: market-side fault
)

// drainRetryAfterSeconds is the Retry-After hint attached to 503 draining
// responses: long enough for a load balancer to fail the client over,
// short enough that a restarting single instance is retried promptly.
const drainRetryAfterSeconds = 5

// apiErrorf builds a typed Error in one line.
func apiErrorf(status int, code, format string, args ...any) *Error {
	return &Error{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// fieldErrorf builds a field-level 400.
func fieldErrorf(field, format string, args ...any) *Error {
	return &Error{Status: http.StatusBadRequest, Code: CodeInvalidField, Field: field, Message: fmt.Sprintf(format, args...)}
}

// classifyError coerces any error into a typed *Error: typed errors pass
// through, pool/market/context sentinels map onto their stable codes, and
// anything unrecognized is an internal fault. A BatchError localizes the
// classified inner error to its demand index.
func classifyError(err error) *Error {
	// BatchError first: it wraps the real error, and the index prefix must
	// survive even when the inner error is already a typed *Error.
	var be *pool.BatchError
	if errors.As(err, &be) {
		inner := classifyError(be.Err)
		out := *inner
		if out.Field != "" {
			out.Field = fmt.Sprintf("demands[%d].%s", be.Index, out.Field)
		} else {
			out.Field = fmt.Sprintf("demands[%d]", be.Index)
		}
		return &out
	}
	var apiErr *Error
	if errors.As(err, &apiErr) {
		return apiErr
	}
	var fe *pool.FieldError
	if errors.As(err, &fe) {
		return &Error{Status: http.StatusBadRequest, Code: CodeInvalidField, Field: fe.Field, Message: fe.Msg}
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return apiErrorf(http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
			"request body exceeds %d bytes", tooBig.Limit)
	}
	// Budget exhaustion before the roster check: the typed error names the
	// refused seller, and a 409 with the ledger numbers is actionable (top
	// up or wait) where a generic roster 400 would not be.
	var ee *budget.ExhaustedError
	if errors.As(err, &ee) {
		return &Error{Status: http.StatusConflict, Code: CodeBudgetExhausted, Field: "sid", Message: err.Error()}
	}
	var re *market.RosterError
	if errors.As(err, &re) {
		e := &Error{Status: http.StatusBadRequest, Code: CodeRosterMismatch, Message: err.Error()}
		if re.SellerID != "" {
			e.Field = "seller_id"
		}
		return e
	}
	var oe *pool.OverloadError
	if errors.As(err, &oe) {
		secs := int((oe.RetryAfter + time.Second - 1) / time.Second) // ceil: never hint "0"
		if secs < 1 {
			secs = 1
		}
		e := apiErrorf(http.StatusTooManyRequests, CodeOverloaded, "%v", err)
		e.RetryAfter = secs
		return e
	}
	switch {
	case errors.Is(err, pool.ErrOverloaded):
		// An overload rejection without the typed wrapper still answers 429
		// with the floor hint.
		e := apiErrorf(http.StatusTooManyRequests, CodeOverloaded, "%v", err)
		e.RetryAfter = 1
		return e
	case errors.Is(err, pool.ErrDraining):
		e := apiErrorf(http.StatusServiceUnavailable, CodeDraining, "%v", err)
		e.RetryAfter = drainRetryAfterSeconds
		return e
	case errors.Is(err, pool.ErrMarketNotFound):
		return apiErrorf(http.StatusNotFound, CodeMarketNotFound, "%v", err)
	case errors.Is(err, pool.ErrMarketExists):
		return apiErrorf(http.StatusConflict, CodeMarketExists, "%v", err)
	case errors.Is(err, pool.ErrMarketClosed):
		return apiErrorf(http.StatusConflict, CodeMarketClosed, "%v", err)
	case errors.Is(err, pool.ErrNoSellers):
		return apiErrorf(http.StatusConflict, CodeNoSellers, "%v", err)
	case errors.Is(err, pool.ErrSellerExists):
		return apiErrorf(http.StatusConflict, CodeSellerExists, "%v", err)
	case errors.Is(err, pool.ErrSellerNotFound):
		return &Error{Status: http.StatusNotFound, Code: CodeSellerNotFound, Field: "sid", Message: err.Error()}
	case errors.Is(err, market.ErrDemand):
		return apiErrorf(http.StatusBadRequest, CodeInvalidDemand, "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		return apiErrorf(http.StatusGatewayTimeout, CodeTimeout, "%v", err)
	case errors.Is(err, context.Canceled):
		return apiErrorf(http.StatusServiceUnavailable, CodeCanceled, "%v", err)
	default:
		return apiErrorf(http.StatusInternalServerError, CodeInternal, "%v", err)
	}
}

// errorEnvelope is the wire shape of every non-2xx response.
type errorEnvelope struct {
	Error *Error `json:"error"`
}

// writeError classifies err and writes the unified envelope. Backoff hints
// ride both in the envelope (retry_after_seconds) and the standard
// Retry-After header, so header-only clients and body-parsing clients see
// the same hint.
func writeError(w http.ResponseWriter, err error) {
	e := classifyError(err)
	if e.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfter))
	}
	writeJSON(w, e.Status, errorEnvelope{Error: e})
}

// writeDecodeError maps body-decoding failures: a tripped MaxBytesReader
// classifies as 413, everything else (malformed JSON, unknown fields) is a
// 400 invalid_body.
func writeDecodeError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeError(w, err)
		return
	}
	writeError(w, apiErrorf(http.StatusBadRequest, CodeInvalidBody, "%v", err))
}
