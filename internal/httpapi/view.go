package httpapi

import (
	"share/internal/core"
	"share/internal/solve"
)

// marketView is an immutable snapshot of everything the read-only endpoints
// serve: the seller roster, the current weights, the rendered trade ledger,
// and per-backend prepared game prototypes for lock-free quoting. Writers
// (registration, trades) build a fresh view under the write lock and
// publish it atomically; readers load the pointer and never block, even
// while a multi-minute trade holds the write path.
//
// Invariant: nothing reachable from a published view is ever mutated. The
// slices are rebuilt (not appended in place) on every publish, and the
// prototypes are only read via Clone.
type marketView struct {
	// protos holds one validated, precomputed prototype per registered
	// solver backend over the current sellers and weights (nil until the
	// first seller registers). A quote Clones the requested backend's
	// prototype — the seller-side aggregate snapshot carries over, so each
	// quote costs O(m) copying plus the backend's own solve cost.
	protos map[string]solve.Prepared
	// sellers is the rendered GET /v1/sellers response.
	sellers []SellerInfo
	// weights is the rendered GET /v1/weights response.
	weights []float64
	// trades is the rendered GET /v1/trades response.
	trades []TradeResult
	// trading reports whether the market has executed its first round
	// (registration closes at that point).
	trading bool
}

// buildView renders the server's mutable state into a fresh immutable view.
// Must be called with s.writeMu held (it reads s.sellers and s.mkt).
func (s *Server) buildView() (*marketView, error) {
	v := &marketView{trading: s.mkt != nil}

	weights := core.UniformWeights(max(1, len(s.sellers)))
	if s.mkt != nil {
		weights = s.mkt.Weights()
	}
	v.weights = weights

	v.sellers = make([]SellerInfo, len(s.sellers))
	for i, sel := range s.sellers {
		v.sellers[i] = SellerInfo{ID: sel.ID, Lambda: sel.Lambda, Rows: sel.Data.Len(), Weight: weights[i]}
	}

	if s.mkt != nil {
		ledger := s.mkt.Ledger()
		v.trades = make([]TradeResult, len(ledger))
		for i, tx := range ledger {
			v.trades[i] = tradeResult(tx)
		}
	}

	if len(s.sellers) > 0 {
		lambdas := make([]float64, len(s.sellers))
		for i, sel := range s.sellers {
			lambdas[i] = sel.Lambda
		}
		g := &core.Game{
			Buyer:   core.PaperBuyer(), // placeholder; quotes overwrite it
			Broker:  core.Broker{Cost: s.cfg.Cost, Weights: append([]float64(nil), weights...)},
			Sellers: core.Sellers{Lambda: lambdas},
		}
		names := solve.Names()
		v.protos = make(map[string]solve.Prepared, len(names))
		for _, name := range names {
			b, err := solve.Lookup(name)
			if err != nil {
				return nil, err
			}
			p, err := b.Precompute(g)
			if err != nil {
				return nil, err
			}
			v.protos[name] = p
		}
	}
	return v, nil
}

// publishView renders and atomically publishes a new view. Must be called
// with s.writeMu held. Publish failures are impossible for state that
// passed registration/trade validation, so errors are surfaced loudly.
func (s *Server) publishView() error {
	v, err := s.buildView()
	if err != nil {
		return err
	}
	s.view.Store(v)
	return nil
}
