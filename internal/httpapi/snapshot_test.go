package httpapi

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func mustUnmarshal(t *testing.T, raw []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
}

// TestSnapshotSaveRestoreRoundTrip is the crash-safety contract: a server
// saved after trading and "killed" (discarded), then restored into a fresh
// process-equivalent server, serves the same ledger, weights and quotes,
// and continues the round numbering.
func TestSnapshotSaveRestoreRoundTrip(t *testing.T) {
	opts := Options{Seed: 42, Logf: func(string, ...any) {}}
	path := filepath.Join(t.TempDir(), "market.json")

	// Session 1: register, trade twice, persist, die.
	srvA := NewServer(opts)
	tsA := httptest.NewServer(srvA.Handler())
	registerSynthetic(t, tsA.URL, 3)
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, tsA.URL+"/v1/trades", Demand{N: 90, V: 0.8})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("trade %d: %d (%s)", i, resp.StatusCode, body)
		}
	}
	var weightsA []float64
	getJSON(t, tsA.URL+"/v1/weights", &weightsA)
	var quoteA Quote
	getJSON(t, tsA.URL+"/v1/health", nil)
	{
		resp, body := postJSON(t, tsA.URL+"/v1/quote", Demand{N: 150, V: 0.8})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("quote A: %d (%s)", resp.StatusCode, body)
		}
		mustUnmarshal(t, body, &quoteA)
	}
	if err := srvA.SaveSnapshot(path); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	tsA.Close()

	// No stray temp files: the write-temp-then-rename must clean up.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".share-snapshot-") {
			t.Errorf("leftover snapshot temp file %s", e.Name())
		}
	}

	// Session 2: fresh server, restore, verify.
	srvB := NewServer(opts)
	if err := srvB.RestoreSnapshot(path); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	tsB := httptest.NewServer(srvB.Handler())
	t.Cleanup(tsB.Close)

	var weightsB []float64
	getJSON(t, tsB.URL+"/v1/weights", &weightsB)
	if !reflect.DeepEqual(weightsA, weightsB) {
		t.Errorf("weights after restore = %v, want %v", weightsB, weightsA)
	}
	var trades []TradeResult
	getJSON(t, tsB.URL+"/v1/trades", &trades)
	if len(trades) != 2 {
		t.Fatalf("restored ledger = %d trades, want 2", len(trades))
	}
	var quoteB Quote
	{
		resp, body := postJSON(t, tsB.URL+"/v1/quote", Demand{N: 150, V: 0.8})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("quote B: %d (%s)", resp.StatusCode, body)
		}
		mustUnmarshal(t, body, &quoteB)
	}
	if quoteA.ProductPrice != quoteB.ProductPrice || quoteA.DataPrice != quoteB.DataPrice {
		t.Errorf("restored quote %+v != original %+v", quoteB, quoteA)
	}

	// Trading resumes with continued round numbering, and registration is
	// still open: a late seller joins the restored market mid-life.
	resp, body := postJSON(t, tsB.URL+"/v1/trades", Demand{N: 90, V: 0.8})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-restore trade: %d (%s)", resp.StatusCode, body)
	}
	var tr TradeResult
	mustUnmarshal(t, body, &tr)
	if tr.Round != 3 {
		t.Errorf("post-restore round = %d, want 3", tr.Round)
	}
	resp, _ = postJSON(t, tsB.URL+"/v1/sellers", SellerRegistration{ID: "late", Lambda: 0.5, SyntheticRows: 10})
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("registration after restored trades = %d, want 201", resp.StatusCode)
	}
}

func TestSnapshotRestorePreTrading(t *testing.T) {
	// A snapshot taken before any trade restores the roster alone.
	opts := Options{Seed: 7, Logf: func(string, ...any) {}}
	path := filepath.Join(t.TempDir(), "market.json")
	srvA := NewServer(opts)
	tsA := httptest.NewServer(srvA.Handler())
	registerSynthetic(t, tsA.URL, 2)
	if err := srvA.SaveSnapshot(path); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	tsA.Close()

	srvB := NewServer(opts)
	if err := srvB.RestoreSnapshot(path); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	tsB := httptest.NewServer(srvB.Handler())
	t.Cleanup(tsB.Close)
	var infos []SellerInfo
	getJSON(t, tsB.URL+"/v1/sellers", &infos)
	if len(infos) != 2 {
		t.Fatalf("restored sellers = %d, want 2", len(infos))
	}
	var health map[string]any
	getJSON(t, tsB.URL+"/v1/health", &health)
	if health["trading"] != false {
		t.Errorf("restored pre-trading server reports trading: %v", health)
	}
}

func TestSnapshotRestoreRequiresFreshServer(t *testing.T) {
	opts := Options{Seed: 7, Logf: func(string, ...any) {}}
	path := filepath.Join(t.TempDir(), "market.json")
	srvA := NewServer(opts)
	tsA := httptest.NewServer(srvA.Handler())
	t.Cleanup(tsA.Close)
	registerSynthetic(t, tsA.URL, 2)
	if err := srvA.SaveSnapshot(path); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	if err := srvA.RestoreSnapshot(path); err == nil {
		t.Error("restore into a non-fresh server succeeded")
	}
}

func TestSnapshotRestoreMissingFile(t *testing.T) {
	srv := NewServer(Options{Seed: 1, Logf: func(string, ...any) {}})
	err := srv.RestoreSnapshot(filepath.Join(t.TempDir(), "absent.json"))
	if err == nil {
		t.Fatal("restore of missing file succeeded")
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing-file error not classified as os.ErrNotExist: %v", err)
	}
}
