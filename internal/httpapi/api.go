// Package httpapi exposes a Share market as a JSON-over-HTTP service — the
// "large-scale data trading center" of the paper's market assumptions, made
// operational. A server owns one broker (one market): sellers register with
// their privacy sensitivity and data, buyers post demands, and each demand
// runs one full round of Algorithm 1 (strategy decision, LDP data
// transaction, product manufacture, Shapley weight update, settlement).
//
// Endpoints (all JSON):
//
//	GET  /v1/health    liveness and market state
//	POST /v1/sellers   register a seller (before the first trade)
//	GET  /v1/sellers   list registered sellers
//	POST /v1/quote     solve the game for a demand without trading
//	POST /v1/trades    run one trading round for a buyer demand
//	GET  /v1/trades    list executed transactions
//	GET  /v1/weights   current broker dataset weights
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"

	"share/internal/core"
	"share/internal/dataset"
	"share/internal/market"
	"share/internal/product"
	"share/internal/stat"
	"share/internal/translog"
)

// Server is the HTTP facade over one market. It serializes all market
// operations behind a mutex (the market engine itself is single-threaded,
// matching the paper's one-buyer-at-a-time assumption).
type Server struct {
	mu      sync.Mutex
	cfg     market.Config
	sellers []*market.Seller
	mkt     *market.Market
	logf    func(format string, args ...any)
}

// Options configure a Server.
type Options struct {
	// Cost is the broker's translog cost model (zero value: paper
	// defaults).
	Cost *translog.Params
	// TestRows sizes the held-out synthetic CCPP test set used to score
	// products (0 → 500).
	TestRows int
	// Update enables Shapley weight updates (nil → the paper's
	// ω' = 0.2ω + 0.8·SV with 20 permutations).
	Update *market.WeightUpdate
	// Seed seeds the server's market randomness.
	Seed int64
	// Logf receives request-level log lines (nil → log.Printf).
	Logf func(format string, args ...any)
}

// NewServer builds an empty market service: sellers register over HTTP.
func NewServer(opt Options) *Server {
	cost := translog.PaperDefaults()
	if opt.Cost != nil {
		cost = *opt.Cost
	}
	testRows := opt.TestRows
	if testRows <= 0 {
		testRows = 500
	}
	upd := opt.Update
	if upd == nil {
		upd = &market.WeightUpdate{Retain: 0.2, Permutations: 20, TruncateTol: 0.005}
	}
	logf := opt.Logf
	if logf == nil {
		logf = log.Printf
	}
	rng := stat.NewRand(opt.Seed + 7)
	return &Server{
		cfg: market.Config{
			Cost:    cost,
			TestSet: dataset.SyntheticCCPP(testRows, rng),
			Update:  upd,
			Seed:    opt.Seed,
		},
		logf: logf,
	}
}

// Handler returns the routed http.Handler for the service.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/health", s.handleHealth)
	mux.HandleFunc("POST /v1/sellers", s.handleRegisterSeller)
	mux.HandleFunc("GET /v1/sellers", s.handleListSellers)
	mux.HandleFunc("POST /v1/quote", s.handleQuote)
	mux.HandleFunc("POST /v1/trades", s.handleTrade)
	mux.HandleFunc("GET /v1/trades", s.handleListTrades)
	mux.HandleFunc("GET /v1/weights", s.handleWeights)
	return mux
}

// --- wire types ---

// SellerRegistration is the POST /v1/sellers request body. Exactly one of
// Rows/Targets or SyntheticRows must supply data.
type SellerRegistration struct {
	// ID labels the seller; must be unique and non-empty.
	ID string `json:"id"`
	// Lambda is the seller's privacy sensitivity λ > 0.
	Lambda float64 `json:"lambda"`
	// Rows and Targets carry the seller's dataset inline.
	Rows    [][]float64 `json:"rows,omitempty"`
	Targets []float64   `json:"targets,omitempty"`
	// SyntheticRows asks the server to mint a CCPP-like dataset of this
	// size for the seller (demo mode).
	SyntheticRows int `json:"synthetic_rows,omitempty"`
}

// SellerInfo is one entry of GET /v1/sellers.
type SellerInfo struct {
	ID     string  `json:"id"`
	Lambda float64 `json:"lambda"`
	Rows   int     `json:"rows"`
	Weight float64 `json:"weight"`
}

// Demand is a buyer's product demand (POST /v1/quote and /v1/trades). Zero
// utility fields default to the paper's values.
type Demand struct {
	// N is the requested manufacturing data quantity.
	N float64 `json:"n"`
	// V is the required product performance.
	V float64 `json:"v"`
	// Theta1/Theta2/Rho1/Rho2 are the buyer's utility parameters.
	Theta1 float64 `json:"theta1,omitempty"`
	Theta2 float64 `json:"theta2,omitempty"`
	Rho1   float64 `json:"rho1,omitempty"`
	Rho2   float64 `json:"rho2,omitempty"`
	// Product selects this trade's data product: "" or "ols", "ridge",
	// "logistic", "mean", "histogram". Quotes ignore it (the equilibrium
	// is product-agnostic).
	Product string `json:"product,omitempty"`
}

// builderFor resolves a demand's product name against the pooled training
// data available to the server (needed for the logistic median threshold).
func builderFor(name string, ref *dataset.Dataset) (product.Builder, error) {
	switch name {
	case "", "ols":
		return product.OLS{}, nil
	case "ridge":
		return product.Ridge{Alpha: 1}, nil
	case "logistic":
		return product.Logistic{Threshold: product.MedianThreshold(ref)}, nil
	case "mean":
		return product.MeanVector{}, nil
	case "histogram":
		return product.Histogram{}, nil
	default:
		return nil, fmt.Errorf("unknown product %q (want ols|ridge|logistic|mean|histogram)", name)
	}
}

func (d Demand) buyer() core.Buyer {
	b := core.PaperBuyer()
	if d.N > 0 {
		b.N = d.N
	}
	if d.V > 0 {
		b.V = d.V
	}
	if d.Theta1 > 0 {
		b.Theta1 = d.Theta1
		b.Theta2 = 1 - d.Theta1
	}
	if d.Theta2 > 0 {
		b.Theta2 = d.Theta2
		b.Theta1 = 1 - d.Theta2
	}
	if d.Rho1 > 0 {
		b.Rho1 = d.Rho1
	}
	if d.Rho2 > 0 {
		b.Rho2 = d.Rho2
	}
	return b
}

// Quote is the POST /v1/quote response: the equilibrium without a trade.
type Quote struct {
	ProductPrice float64   `json:"product_price"`
	DataPrice    float64   `json:"data_price"`
	Fidelities   []float64 `json:"fidelities"`
	Allocations  []float64 `json:"allocations"`
	BuyerProfit  float64   `json:"buyer_profit"`
	BrokerProfit float64   `json:"broker_profit"`
	SellerProfit []float64 `json:"seller_profits"`
	DatasetQ     float64   `json:"dataset_quality"`
	ProductQ     float64   `json:"product_quality"`
}

// TradeResult is the POST /v1/trades response.
type TradeResult struct {
	Round             int       `json:"round"`
	Product           string    `json:"product"`
	Quote             Quote     `json:"quote"`
	Pieces            []int     `json:"pieces"`
	Compensations     []float64 `json:"compensations"`
	Payment           float64   `json:"payment"`
	ManufacturingCost float64   `json:"manufacturing_cost"`
	Performance       float64   `json:"performance"`
	ExplainedVariance float64   `json:"explained_variance"`
	RMSE              float64   `json:"rmse"`
	Weights           []float64 `json:"weights"`
	TotalSeconds      float64   `json:"total_seconds"`
}

// apiError is the error envelope for every non-2xx response.
type apiError struct {
	Error string `json:"error"`
}

// --- handlers ---

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"sellers": len(s.sellers),
		"trades":  s.tradeCount(),
		"trading": s.mkt != nil,
	})
}

func (s *Server) tradeCount() int {
	if s.mkt == nil {
		return 0
	}
	return len(s.mkt.Ledger())
}

func (s *Server) handleRegisterSeller(w http.ResponseWriter, r *http.Request) {
	var reg SellerRegistration
	if err := decodeJSON(r, &reg); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mkt != nil {
		writeError(w, http.StatusConflict, errors.New("market already trading; registration is closed"))
		return
	}
	if reg.ID == "" {
		writeError(w, http.StatusBadRequest, errors.New("seller id is required"))
		return
	}
	for _, existing := range s.sellers {
		if existing.ID == reg.ID {
			writeError(w, http.StatusConflict, fmt.Errorf("seller %q already registered", reg.ID))
			return
		}
	}
	if !(reg.Lambda > 0) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("lambda must be positive, got %g", reg.Lambda))
		return
	}
	data, err := s.sellerData(reg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.sellers = append(s.sellers, &market.Seller{ID: reg.ID, Lambda: reg.Lambda, Data: data})
	s.logf("httpapi: registered seller %q (%d rows, λ=%g)", reg.ID, data.Len(), reg.Lambda)
	writeJSON(w, http.StatusCreated, SellerInfo{ID: reg.ID, Lambda: reg.Lambda, Rows: data.Len()})
}

func (s *Server) sellerData(reg SellerRegistration) (*dataset.Dataset, error) {
	switch {
	case reg.SyntheticRows > 0 && reg.Rows != nil:
		return nil, errors.New("provide either inline rows or synthetic_rows, not both")
	case reg.SyntheticRows > 0:
		return dataset.SyntheticCCPP(reg.SyntheticRows, stat.NewRand(s.cfg.Seed+int64(len(s.sellers)))), nil
	case len(reg.Rows) > 0:
		if len(reg.Rows) != len(reg.Targets) {
			return nil, fmt.Errorf("%d rows but %d targets", len(reg.Rows), len(reg.Targets))
		}
		d := &dataset.Dataset{X: reg.Rows, Y: reg.Targets}
		if err := d.Validate(); err != nil {
			return nil, err
		}
		return d, nil
	default:
		return nil, errors.New("seller data required: inline rows or synthetic_rows")
	}
}

func (s *Server) handleListSellers(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var weights []float64
	if s.mkt != nil {
		weights = s.mkt.Weights()
	}
	out := make([]SellerInfo, len(s.sellers))
	for i, sel := range s.sellers {
		out[i] = SellerInfo{ID: sel.ID, Lambda: sel.Lambda, Rows: sel.Data.Len()}
		if weights != nil {
			out[i].Weight = weights[i]
		} else {
			out[i].Weight = 1 / float64(len(s.sellers))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// game assembles a core.Game for the current seller pool.
func (s *Server) game(b core.Buyer) (*core.Game, error) {
	if len(s.sellers) == 0 {
		return nil, errors.New("no sellers registered")
	}
	lambdas := make([]float64, len(s.sellers))
	for i, sel := range s.sellers {
		lambdas[i] = sel.Lambda
	}
	weights := core.UniformWeights(len(s.sellers))
	if s.mkt != nil {
		weights = s.mkt.Weights()
	}
	return &core.Game{
		Buyer:   b,
		Broker:  core.Broker{Cost: s.cfg.Cost, Weights: weights},
		Sellers: core.Sellers{Lambda: lambdas},
	}, nil
}

func quoteFromProfile(p *core.Profile) Quote {
	return Quote{
		ProductPrice: p.PM,
		DataPrice:    p.PD,
		Fidelities:   p.Tau,
		Allocations:  p.Chi,
		BuyerProfit:  p.BuyerProfit,
		BrokerProfit: p.BrokerProfit,
		SellerProfit: p.SellerProfits,
		DatasetQ:     p.QD,
		ProductQ:     p.QM,
	}
}

func (s *Server) handleQuote(w http.ResponseWriter, r *http.Request) {
	var d Demand
	if err := decodeJSON(r, &d); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	g, err := s.game(d.buyer())
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	p, err := g.Solve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, quoteFromProfile(p))
}

func (s *Server) handleTrade(w http.ResponseWriter, r *http.Request) {
	var d Demand
	if err := decodeJSON(r, &d); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mkt == nil {
		if len(s.sellers) == 0 {
			writeError(w, http.StatusConflict, errors.New("no sellers registered"))
			return
		}
		mkt, err := market.New(s.sellers, s.cfg)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		s.mkt = mkt
	}
	builder, err := builderFor(d.Product, s.cfg.TestSet)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tx, err := s.mkt.RunRoundWith(d.buyer(), builder)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.logf("httpapi: trade %d executed (p^M=%g, p^D=%g, EV=%.4f)",
		tx.Round, tx.Profile.PM, tx.Profile.PD, tx.Metrics.Performance)
	writeJSON(w, http.StatusCreated, tradeResult(tx))
}

func tradeResult(tx *market.Transaction) TradeResult {
	return TradeResult{
		Round:             tx.Round,
		Product:           tx.Product,
		Quote:             quoteFromProfile(tx.Profile),
		Pieces:            tx.Pieces,
		Compensations:     tx.Compensations,
		Payment:           tx.Payment,
		ManufacturingCost: tx.ManufacturingCost,
		Performance:       tx.Metrics.Performance,
		ExplainedVariance: tx.Metrics.Detail["explained_variance"],
		RMSE:              tx.Metrics.Detail["rmse"],
		Weights:           tx.Weights,
		TotalSeconds:      tx.Timings.Total.Seconds(),
	}
}

func (s *Server) handleListTrades(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mkt == nil {
		writeJSON(w, http.StatusOK, []TradeResult{})
		return
	}
	ledger := s.mkt.Ledger()
	out := make([]TradeResult, len(ledger))
	for i, tx := range ledger {
		out[i] = tradeResult(tx)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleWeights(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mkt == nil {
		writeJSON(w, http.StatusOK, core.UniformWeights(max(1, len(s.sellers))))
		return
	}
	writeJSON(w, http.StatusOK, s.mkt.Weights())
}

// --- plumbing ---

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is already out; nothing more to do than log via
		// the default logger.
		log.Printf("httpapi: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}
