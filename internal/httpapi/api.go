// Package httpapi exposes a pool of Share markets as a JSON-over-HTTP
// service — the "large-scale data trading center" of the paper's market
// assumptions, made operational and multi-tenant. A server hosts many
// named markets (internal/pool); in each, sellers register with their
// privacy sensitivity and data, buyers post demands, and each demand runs
// one full round of Algorithm 1 (strategy decision, LDP data transaction,
// product manufacture, Shapley weight update, settlement).
//
// The resource-oriented /v2 API (all JSON):
//
//	POST   /v2/markets                     create a market {"id", "solver"?, "seed"?}
//	GET    /v2/markets                     list hosted markets
//	GET    /v2/markets/{id}                one market's state
//	DELETE /v2/markets/{id}                drain in-flight rounds, delete
//	POST   /v2/markets/{id}/sellers        register a seller (before or after trading starts)
//	GET    /v2/markets/{id}/sellers        list sellers (limit/offset)
//	GET    /v2/markets/{id}/sellers/{sid}  one seller's state (weight, ε budget, discount)
//	DELETE /v2/markets/{id}/sellers/{sid}  release a seller from the roster
//	POST   /v2/markets/{id}/sellers/{sid}/budget  top up the seller's ε budget {"add"}
//	POST   /v2/markets/{id}/quotes         solve a BATCH of demands concurrently
//	POST   /v2/markets/{id}/trades         run one trading round
//	GET    /v2/markets/{id}/trades         list the ledger (limit/offset)
//	GET    /v2/markets/{id}/weights        broker dataset weights
//	GET    /v2/markets/{id}/stream         live SSE event stream (state, roster, weights)
//	GET    /v1/metrics                     request counters, latency quantiles, per-market series
//
// The flat /v1 routes (health, sellers, quote, trades, weights) survive as
// thin aliases onto the server's default market, so every pre-pool client
// keeps working unchanged.
//
// Errors: every non-2xx response, v1 and v2, carries the unified envelope
// {"error": {"code", "field", "message"}} with a stable machine-readable
// code (see the Code* constants).
//
// Concurrency model: reads are lock-free against each market's immutable
// copy-on-write view; only registration and trades serialize, per market.
// A trade holding one market's write path for minutes never delays a quote
// anywhere, nor a trade in any other market.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"share/internal/core"
	"share/internal/dataset"
	"share/internal/market"
	"share/internal/obs"
	"share/internal/pool"
	"share/internal/product"
	"share/internal/solve"
	"share/internal/translog"
)

// defaultMaxBodyBytes caps request bodies when Options.MaxBodyBytes is
// unset: 8 MiB comfortably fits realistic inline datasets while bounding
// the memory an abusive payload can pin.
const defaultMaxBodyBytes = 8 << 20

// DefaultMarketID is the market the /v1 alias routes operate on when
// Options.DefaultMarket is unset.
const DefaultMarketID = "default"

// Server is the HTTP facade over a market pool. The default market backs
// the /v1 alias routes; /v2 addresses any hosted market by ID.
type Server struct {
	pool      *pool.Pool
	defaultID string

	logf    func(format string, args ...any)
	metrics *obs.Registry
	maxBody int64
	reqSeq  atomic.Uint64

	// testHookTradeBuilder, when set, replaces the resolved product builder
	// on every trade. Tests use it to inject blocking or failing builders;
	// it is never set in production.
	testHookTradeBuilder product.Builder
}

// Options configure a Server.
type Options struct {
	// Cost is the broker's translog cost model (zero value: paper
	// defaults).
	Cost *translog.Params
	// TestRows sizes the held-out synthetic CCPP test set used to score
	// products, per market (0 → 500).
	TestRows int
	// Update enables Shapley weight updates (nil → the paper's
	// ω' = 0.2ω + 0.8·SV with 20 permutations).
	Update *market.WeightUpdate
	// Workers is the shared worker budget: Shapley valuation fan-out per
	// trade and batch-quote fan-out (0 keeps the Update's own setting; the
	// moment-cached kernel's output is identical for every worker count,
	// so this is purely a latency knob).
	Workers int
	// Solver names the default equilibrium backend ("" → analytic).
	// Markets may override it at creation, and individual quotes and
	// trades via the demand's `solver` field. An unknown name falls back
	// to the analytic default (CLI entry points validate the flag before
	// getting here).
	Solver string
	// Seed seeds the server's default market; other markets derive their
	// seeds from it unless created with an explicit one.
	Seed int64
	// Logf receives request-level log lines (nil → log.Printf).
	Logf func(format string, args ...any)
	// MaxBodyBytes caps request body size; oversized bodies get 413
	// (0 → 8 MiB).
	MaxBodyBytes int64
	// TradeTimeout bounds one trading round beyond the request's own
	// context; expired rounds return 504 (0 → no server-side deadline).
	TradeTimeout time.Duration
	// TradeConcurrency caps in-flight trades per market (0 → the pool
	// default, one). Markets may override it at creation.
	TradeConcurrency int
	// TradeQueue sizes each market's trade waiting room (0 → the pool
	// default, 64; negative → no waiting room). Trades past the queue
	// answer 429 with a Retry-After hint. Markets may override it at
	// creation.
	TradeQueue int
	// SnapshotDir enables per-market snapshot persistence under this
	// directory ("" → disabled). See Server.RestoreMarkets / SaveMarkets.
	SnapshotDir string
	// Durability is the default persistence mode for markets: "snapshot"
	// (legacy full snapshot per trade), "sync" (per-commit fsync), "group"
	// (batched fsync, the default) or "async" (background flush). Markets
	// may override it at creation. Unknown names fall back to the default
	// (CLI entry points validate the flag before getting here).
	Durability string
	// DefaultMarket names the market the /v1 aliases operate on
	// ("" → "default").
	DefaultMarket string
	// EpsilonBudget is the default per-seller privacy budget (total ε a
	// seller's data may absorb across rounds) for markets on this server.
	// 0 disables budgeting; markets may override it at creation.
	EpsilonBudget float64
	// Composition selects how per-round ε charges compose into a seller's
	// spent total: "basic" (plain sum, the default) or "advanced" (the
	// strong-composition bound). Markets may override it at creation.
	Composition string
	// DiscountFactor enables similarity-aware pricing: the maximum fraction
	// shaved off a fully redundant seller's Shapley payout (0 disables,
	// must be ≤ 1).
	DiscountFactor float64
	// DiscountThreshold is the pairwise-redundancy level below which no
	// discount applies (default 0 discounts any redundancy; must be < 1).
	DiscountThreshold float64
}

// NewServer builds a service hosting one empty default market; further
// markets are created over HTTP (POST /v2/markets) or restored from the
// snapshot directory.
func NewServer(opt Options) *Server {
	logf := opt.Logf
	if logf == nil {
		logf = log.Printf
	}
	maxBody := opt.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = defaultMaxBodyBytes
	}
	defaultID := opt.DefaultMarket
	if defaultID == "" {
		defaultID = DefaultMarketID
	}
	s := &Server{
		defaultID: defaultID,
		logf:      logf,
		metrics:   obs.NewRegistry(),
		maxBody:   maxBody,
	}
	s.pool = pool.New(pool.Options{
		Cost:              opt.Cost,
		TestRows:          opt.TestRows,
		Update:            opt.Update,
		Workers:           opt.Workers,
		Solver:            opt.Solver,
		Seed:              opt.Seed,
		TradeTimeout:      opt.TradeTimeout,
		TradeConcurrency:  opt.TradeConcurrency,
		TradeQueue:        opt.TradeQueue,
		SnapshotDir:       opt.SnapshotDir,
		Durability:        opt.Durability,
		EpsilonBudget:     opt.EpsilonBudget,
		Composition:       opt.Composition,
		DiscountFactor:    opt.DiscountFactor,
		DiscountThreshold: opt.DiscountThreshold,
		Metrics:           s.metrics,
		Logf:              logf,
	})
	seed := opt.Seed
	if _, err := s.pool.Create(pool.Spec{ID: defaultID, Seed: &seed}); err != nil {
		// Unreachable: the pool is empty and the ID was validated above by
		// construction; fail loudly rather than serve without the alias
		// target.
		panic(fmt.Sprintf("httpapi: creating default market: %v", err))
	}
	return s
}

// Metrics exposes the server's observability registry (for embedding or
// custom exporters).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Pool exposes the underlying market pool (for embedding and lifecycle
// hooks in cmd/share-server).
func (s *Server) Pool() *pool.Pool { return s.pool }

// DefaultMarket names the market the /v1 aliases operate on.
func (s *Server) DefaultMarket() string { return s.defaultID }

// Handler returns the routed http.Handler for the service. Every route is
// instrumented: per-endpoint counters/latency/in-flight in the metrics
// registry, request-ID structured logging, and a request body cap.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	// v1: flat aliases onto the default market.
	route("GET /v1/health", s.onDefault(s.handleHealth))
	route("POST /v1/sellers", s.onDefault(s.handleRegisterSeller))
	route("GET /v1/sellers", s.onDefault(s.handleListSellers))
	route("POST /v1/quote", s.onDefault(s.handleQuote))
	route("POST /v1/trades", s.onDefault(s.handleTrade))
	route("GET /v1/trades", s.onDefault(s.handleListTrades))
	route("GET /v1/weights", s.onDefault(s.handleWeights))
	route("GET /v1/metrics", s.handleMetrics)
	// v2: resource-oriented, any market by ID.
	route("POST /v2/markets", s.handleCreateMarket)
	route("GET /v2/markets", s.handleListMarkets)
	route("GET /v2/markets/{id}", s.onMarket(s.handleGetMarket))
	route("DELETE /v2/markets/{id}", s.handleDeleteMarket)
	route("POST /v2/markets/{id}/sellers", s.onMarket(s.handleRegisterSeller))
	route("GET /v2/markets/{id}/sellers", s.onMarket(s.handleListSellers))
	route("GET /v2/markets/{id}/sellers/{sid}", s.onMarket(s.handleGetSeller))
	route("DELETE /v2/markets/{id}/sellers/{sid}", s.onMarket(s.handleRemoveSeller))
	route("POST /v2/markets/{id}/sellers/{sid}/budget", s.onMarket(s.handleTopUpBudget))
	route("POST /v2/markets/{id}/quotes", s.onMarket(s.handleQuoteBatch))
	route("POST /v2/markets/{id}/trades", s.onMarket(s.handleTrade))
	route("GET /v2/markets/{id}/trades", s.onMarket(s.handleListTrades))
	route("GET /v2/markets/{id}/weights", s.onMarket(s.handleWeights))
	route("GET /v2/markets/{id}/stream", s.onMarket(s.handleStream))
	return mux
}

// marketHandler is a handler bound to a resolved market.
type marketHandler func(w http.ResponseWriter, r *http.Request, m *pool.Market)

// onMarket resolves the {id} path segment against the pool, answering 404
// with a market_not_found envelope for unknown IDs.
func (s *Server) onMarket(h marketHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m, err := s.pool.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		h(w, r, m)
	}
}

// onDefault binds a handler to the default market — the /v1 alias path.
func (s *Server) onDefault(h marketHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m, err := s.pool.Get(s.defaultID)
		if err != nil {
			writeError(w, err)
			return
		}
		h(w, r, m)
	}
}

// statusWriter captures the response status for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap exposes the underlying writer so http.NewResponseController can
// reach Flush and SetWriteDeadline through the status-capturing wrapper —
// the SSE stream handler needs both.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps a handler with the request body cap, per-endpoint
// metrics, and request-ID structured logging.
func (s *Server) instrument(label string, h http.HandlerFunc) http.HandlerFunc {
	ep := s.metrics.Endpoint(label)
	return func(w http.ResponseWriter, r *http.Request) {
		id := s.reqSeq.Add(1)
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		ep.Begin()
		start := time.Now()
		h(sw, r)
		d := time.Since(start)
		ep.End(sw.status, d)
		s.logf("httpapi: req=%d method=%s path=%s status=%d dur=%s remote=%s",
			id, r.Method, r.URL.Path, sw.status, d.Round(time.Microsecond), r.RemoteAddr)
	}
}

// --- wire types ---

// MarketSpec is the POST /v2/markets request body.
type MarketSpec struct {
	// ID names the market: 1–64 characters from [A-Za-z0-9._-], starting
	// with a letter or digit.
	ID string `json:"id"`
	// Solver overrides the server's default equilibrium backend for this
	// market.
	Solver string `json:"solver,omitempty"`
	// Seed pins the market's random seed (absent → derived from the
	// server seed and the ID).
	Seed *int64 `json:"seed,omitempty"`
	// Durability overrides the server's default persistence mode for this
	// market: "snapshot", "sync", "group" or "async" ("" → server
	// default). Unknown names are a field-level error.
	Durability string `json:"durability,omitempty"`
	// TradeConcurrency overrides the server's in-flight trade cap for this
	// market (absent → server default; must be ≥ 1).
	TradeConcurrency *int `json:"trade_concurrency,omitempty"`
	// TradeQueue overrides the server's trade waiting-room size for this
	// market (absent → server default; an explicit 0 rejects the moment
	// every slot is busy; must be ≥ 0). Trades past the queue answer 429
	// with a Retry-After hint.
	TradeQueue *int `json:"trade_queue,omitempty"`
	// EpsilonBudget overrides the server's default per-seller privacy
	// budget for this market (absent → server default; an explicit 0
	// disables budgeting; negative or non-finite values are a field-level
	// error). When set, every trade charges each participating seller's
	// ledger with the round's ε and refuses with 409 budget_exhausted once
	// a charge would overrun a seller's budget.
	EpsilonBudget *float64 `json:"epsilon_budget,omitempty"`
	// Composition selects this market's ε-composition rule: "basic" (plain
	// sum) or "advanced" (the strong-composition bound). "" inherits the
	// server default; unknown names are a field-level error.
	Composition string `json:"composition,omitempty"`
}

// MarketInfo is the market resource representation (POST/GET /v2/markets).
type MarketInfo = pool.Info

// StreamEvent is one frame of a market's live event stream: the initial
// "state" snapshot, then "roster" (join/leave) and "weights" (committed
// trade) deltas.
type StreamEvent = pool.Event

// SellerRegistration is the seller-registration request body. Exactly one
// of Rows/Targets or SyntheticRows must supply data.
type SellerRegistration struct {
	// ID labels the seller; must be unique and non-empty.
	ID string `json:"id"`
	// Lambda is the seller's privacy sensitivity λ > 0.
	Lambda float64 `json:"lambda"`
	// Rows and Targets carry the seller's dataset inline.
	Rows    [][]float64 `json:"rows,omitempty"`
	Targets []float64   `json:"targets,omitempty"`
	// SyntheticRows asks the server to mint a CCPP-like dataset of this
	// size for the seller (demo mode).
	SyntheticRows int `json:"synthetic_rows,omitempty"`
}

// SellerInfo is the seller resource representation, shared by the seller
// listings and GET /v2/markets/{id}/sellers/{sid}. The budget and discount
// fields are omitted when the market has no privacy-budget ledger (resp. no
// similarity discounting) configured.
type SellerInfo struct {
	ID     string  `json:"id"`
	Lambda float64 `json:"lambda"`
	Rows   int     `json:"rows"`
	Weight float64 `json:"weight"`
	// RosterEpoch is the roster epoch the state was read at.
	RosterEpoch uint64 `json:"roster_epoch,omitempty"`
	// EpsilonBudget and EpsilonSpent are the seller's total privacy budget
	// and the ε composed across the rounds she sold into so far.
	EpsilonBudget float64 `json:"epsilon_budget,omitempty"`
	EpsilonSpent  float64 `json:"epsilon_spent,omitempty"`
	// Discount is the similarity factor applied to the seller's payout in
	// the last committed round (1 = undiscounted).
	Discount float64 `json:"discount,omitempty"`
}

// sellerInfo renders one roster entry read at the given epoch.
func sellerInfo(st pool.SellerState, epoch uint64) SellerInfo {
	return SellerInfo{
		ID:            st.ID,
		Lambda:        st.Lambda,
		Rows:          st.Rows,
		Weight:        st.Weight,
		RosterEpoch:   epoch,
		EpsilonBudget: st.Budget,
		EpsilonSpent:  st.Spent,
		Discount:      st.Discount,
	}
}

// TopUpRequest is the POST /v2/markets/{id}/sellers/{sid}/budget body.
type TopUpRequest struct {
	// Add is the ε granted on top of the seller's current budget; must be
	// positive and finite.
	Add float64 `json:"add"`
}

// Demand is a buyer's product demand. Zero utility fields default to the
// paper's values.
type Demand struct {
	// N is the requested manufacturing data quantity.
	N float64 `json:"n"`
	// V is the required product performance.
	V float64 `json:"v"`
	// Theta1/Theta2/Rho1/Rho2 are the buyer's utility parameters.
	Theta1 float64 `json:"theta1,omitempty"`
	Theta2 float64 `json:"theta2,omitempty"`
	Rho1   float64 `json:"rho1,omitempty"`
	Rho2   float64 `json:"rho2,omitempty"`
	// Product selects this trade's data product: "" or "ols", "ridge",
	// "logistic", "mean", "histogram". Quotes ignore it (the equilibrium
	// is product-agnostic).
	Product string `json:"product,omitempty"`
	// Solver selects the equilibrium backend for this request: "" (the
	// market's default), "analytic", "meanfield" or "general". Approximate
	// backends attach their error guarantee to the quote.
	Solver string `json:"solver,omitempty"`
}

// QuoteBatchRequest is the POST /v2/markets/{id}/quotes body: a batch of
// demands solved concurrently against one consistent market view.
type QuoteBatchRequest struct {
	Demands []Demand `json:"demands"`
}

// QuoteBatchResult is the batch-quote response; Quotes[i] answers
// Demands[i].
type QuoteBatchResult struct {
	Quotes []Quote `json:"quotes"`
}

// builderFor resolves a demand's product name against the pooled training
// data available to the market (needed for the logistic median threshold).
func builderFor(name string, ref *dataset.Dataset) (product.Builder, error) {
	switch name {
	case "", "ols":
		return product.OLS{}, nil
	case "ridge":
		return product.Ridge{Alpha: 1}, nil
	case "logistic":
		return product.Logistic{Threshold: product.MedianThreshold(ref)}, nil
	case "mean":
		return product.MeanVector{}, nil
	case "histogram":
		return product.Histogram{}, nil
	default:
		return nil, fieldErrorf("product", "unknown product %q (want ols|ridge|logistic|mean|histogram)", name)
	}
}

// buyer maps the demand onto the paper's buyer, validating every supplied
// field: absent (zero) fields fall back to the paper defaults, present
// fields must satisfy the model's constraints — θ₁, θ₂ ∈ (0,1) and summing
// to 1 when both are given, ρ/n/v positive. Sending only one of θ₁/θ₂
// pins the other to its complement.
func (d Demand) buyer() (core.Buyer, error) {
	b := core.PaperBuyer()
	if d.N != 0 {
		if !(d.N > 0) {
			return b, fieldErrorf("n", "data quantity must be positive, got %g", d.N)
		}
		b.N = d.N
	}
	if d.V != 0 {
		if !(d.V > 0) {
			return b, fieldErrorf("v", "required performance must be positive, got %g", d.V)
		}
		b.V = d.V
	}
	if d.Theta1 != 0 && !(d.Theta1 > 0 && d.Theta1 < 1) {
		return b, fieldErrorf("theta1", "must lie in (0,1), got %g", d.Theta1)
	}
	if d.Theta2 != 0 && !(d.Theta2 > 0 && d.Theta2 < 1) {
		return b, fieldErrorf("theta2", "must lie in (0,1), got %g", d.Theta2)
	}
	switch {
	case d.Theta1 != 0 && d.Theta2 != 0:
		if diff := d.Theta1 + d.Theta2 - 1; diff < -1e-9 || diff > 1e-9 {
			return b, fieldErrorf("theta1", "theta1+theta2 must sum to 1, got %g", d.Theta1+d.Theta2)
		}
		b.Theta1, b.Theta2 = d.Theta1, d.Theta2
	case d.Theta1 != 0:
		b.Theta1, b.Theta2 = d.Theta1, 1-d.Theta1
	case d.Theta2 != 0:
		b.Theta1, b.Theta2 = 1-d.Theta2, d.Theta2
	}
	if d.Rho1 != 0 {
		if !(d.Rho1 > 0) {
			return b, fieldErrorf("rho1", "must be positive, got %g", d.Rho1)
		}
		b.Rho1 = d.Rho1
	}
	if d.Rho2 != 0 {
		if !(d.Rho2 > 0) {
			return b, fieldErrorf("rho2", "must be positive, got %g", d.Rho2)
		}
		b.Rho2 = d.Rho2
	}
	return b, nil
}

// ApproxInfo reports an approximate backend's error guarantee: the
// Theorem 5.1 interval bounding the mean-fidelity error, and whether the
// theorem's ω-scaling precondition held (when false the interval is a
// heuristic, not a guarantee).
type ApproxInfo struct {
	ErrorLo        float64 `json:"error_lo"`
	ErrorHi        float64 `json:"error_hi"`
	ConditionHolds bool    `json:"condition_holds"`
}

// Quote is one solved equilibrium without a trade.
type Quote struct {
	Solver       string      `json:"solver"`
	ProductPrice float64     `json:"product_price"`
	DataPrice    float64     `json:"data_price"`
	Fidelities   []float64   `json:"fidelities"`
	Allocations  []float64   `json:"allocations"`
	BuyerProfit  float64     `json:"buyer_profit"`
	BrokerProfit float64     `json:"broker_profit"`
	SellerProfit []float64   `json:"seller_profits"`
	DatasetQ     float64     `json:"dataset_quality"`
	ProductQ     float64     `json:"product_quality"`
	Approx       *ApproxInfo `json:"approx,omitempty"`
}

// TradeResult is the trade-execution response.
type TradeResult struct {
	Round             int       `json:"round"`
	Product           string    `json:"product"`
	Solver            string    `json:"solver"`
	Quote             Quote     `json:"quote"`
	Pieces            []int     `json:"pieces"`
	Compensations     []float64 `json:"compensations"`
	Payment           float64   `json:"payment"`
	ManufacturingCost float64   `json:"manufacturing_cost"`
	Performance       float64   `json:"performance"`
	ExplainedVariance float64   `json:"explained_variance"`
	RMSE              float64   `json:"rmse"`
	Weights           []float64 `json:"weights"`
	TotalSeconds      float64   `json:"total_seconds"`
}

// --- market lifecycle handlers (v2) ---

func (s *Server) handleCreateMarket(w http.ResponseWriter, r *http.Request) {
	var spec MarketSpec
	if err := decodeJSON(r, &spec); err != nil {
		writeDecodeError(w, err)
		return
	}
	m, err := s.pool.Create(pool.Spec{
		ID:               spec.ID,
		Solver:           spec.Solver,
		Seed:             spec.Seed,
		Durability:       spec.Durability,
		TradeConcurrency: spec.TradeConcurrency,
		TradeQueue:       spec.TradeQueue,
		EpsilonBudget:    spec.EpsilonBudget,
		Composition:      spec.Composition,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	s.logf("httpapi: created market %q (solver=%s, seed=%d, durability=%s)", m.ID(), m.Solver(), m.Seed(), m.Durability())
	writeJSON(w, http.StatusCreated, m.Info())
}

func (s *Server) handleListMarkets(w http.ResponseWriter, r *http.Request) {
	infos := s.pool.List()
	w.Header().Set("X-Total-Count", strconv.Itoa(len(infos)))
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleGetMarket(w http.ResponseWriter, r *http.Request, m *pool.Market) {
	writeJSON(w, http.StatusOK, m.Info())
}

func (s *Server) handleDeleteMarket(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if id == s.defaultID {
		writeError(w, apiErrorf(http.StatusConflict, CodeMarketProtected,
			"market %q is the /v1 alias target and cannot be deleted", id))
		return
	}
	if err := s.pool.Delete(r.Context(), id); err != nil {
		writeError(w, err)
		return
	}
	s.logf("httpapi: deleted market %q", id)
	w.WriteHeader(http.StatusNoContent)
}

// --- per-market handlers (v1 alias + v2) ---

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request, m *pool.Market) {
	v := m.View()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"sellers": len(v.Sellers),
		"trades":  len(v.Trades),
		"trading": v.Trading,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

func (s *Server) handleRegisterSeller(w http.ResponseWriter, r *http.Request, m *pool.Market) {
	var reg SellerRegistration
	if err := decodeJSON(r, &reg); err != nil {
		writeDecodeError(w, err)
		return
	}
	st, err := m.RegisterSeller(pool.Registration{
		ID:            reg.ID,
		Lambda:        reg.Lambda,
		Rows:          reg.Rows,
		Targets:       reg.Targets,
		SyntheticRows: reg.SyntheticRows,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	// Serve the full resource shape: the published view carries the
	// admission's budget state (a concurrent removal can race the lookup,
	// in which case the registration-time state stands).
	if fresh, epoch, err := m.Seller(st.ID); err == nil {
		writeJSON(w, http.StatusCreated, sellerInfo(fresh, epoch))
		return
	}
	writeJSON(w, http.StatusCreated, SellerInfo{ID: st.ID, Lambda: st.Lambda, Rows: st.Rows, Weight: st.Weight})
}

func (s *Server) handleGetSeller(w http.ResponseWriter, r *http.Request, m *pool.Market) {
	st, epoch, err := m.Seller(r.PathValue("sid"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sellerInfo(st, epoch))
}

// handleTopUpBudget raises one seller's privacy budget. The grant is
// persisted like any other ledger mutation and the refreshed seller
// resource is returned.
func (s *Server) handleTopUpBudget(w http.ResponseWriter, r *http.Request, m *pool.Market) {
	var req TopUpRequest
	if err := decodeJSON(r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	sid := r.PathValue("sid")
	st, err := m.TopUpBudget(sid, req.Add)
	if err != nil {
		writeError(w, err)
		return
	}
	s.logf("httpapi: market %q topped up seller %q budget by ε=%g", m.ID(), sid, req.Add)
	writeJSON(w, http.StatusOK, sellerInfo(st, m.View().Epoch))
}

func (s *Server) handleRemoveSeller(w http.ResponseWriter, r *http.Request, m *pool.Market) {
	sid := r.PathValue("sid")
	if err := m.RemoveSeller(sid); err != nil {
		writeError(w, err)
		return
	}
	s.logf("httpapi: market %q released seller %q", m.ID(), sid)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleListSellers(w http.ResponseWriter, r *http.Request, m *pool.Market) {
	v := m.View()
	lo, hi, err := paginate(w, r, len(v.Sellers))
	if err != nil {
		writeError(w, err)
		return
	}
	out := make([]SellerInfo, 0, hi-lo)
	for _, st := range v.Sellers[lo:hi] {
		out = append(out, sellerInfo(st, v.Epoch))
	}
	writeJSON(w, http.StatusOK, out)
}

func quoteFromProfile(p *core.Profile, solver string) Quote {
	q := Quote{
		Solver:       solver,
		ProductPrice: p.PM,
		DataPrice:    p.PD,
		Fidelities:   p.Tau,
		Allocations:  p.Chi,
		BuyerProfit:  p.BuyerProfit,
		BrokerProfit: p.BrokerProfit,
		SellerProfit: p.SellerProfits,
		DatasetQ:     p.QD,
		ProductQ:     p.QM,
	}
	if p.Approx != nil {
		q.Approx = &ApproxInfo{
			ErrorLo:        p.Approx.Lo,
			ErrorHi:        p.Approx.Hi,
			ConditionHolds: p.Approx.ConditionHolds,
		}
	}
	return q
}

// solveError classifies an equilibrium-solve failure: the prepared game was
// assembled from the market's own validated sellers and weights, so any
// failure other than cancellation is attributable to the buyer's demand
// parameters.
func solveError(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return apiErrorf(http.StatusBadRequest, CodeInvalidDemand, "%v", err)
}

// handleQuote solves one demand against the market's published view — no
// locks, so quotes stay responsive while a trade holds the write path.
func (s *Server) handleQuote(w http.ResponseWriter, r *http.Request, m *pool.Market) {
	var d Demand
	if err := decodeJSON(r, &d); err != nil {
		writeDecodeError(w, err)
		return
	}
	b, err := d.buyer()
	if err != nil {
		writeError(w, err)
		return
	}
	prof, name, err := m.Quote(r.Context(), b, d.Solver)
	if err != nil {
		var fe *pool.FieldError
		if errors.As(err, &fe) || errors.Is(err, pool.ErrNoSellers) {
			writeError(w, err)
			return
		}
		writeError(w, solveError(err))
		return
	}
	writeJSON(w, http.StatusOK, quoteFromProfile(prof, name))
}

// handleQuoteBatch solves a batch of demands concurrently against one
// consistent view snapshot, fanned across the pool's shared worker budget.
// The response is byte-identical for every worker count.
func (s *Server) handleQuoteBatch(w http.ResponseWriter, r *http.Request, m *pool.Market) {
	var req QuoteBatchRequest
	if err := decodeJSON(r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if len(req.Demands) == 0 {
		writeError(w, fieldErrorf("demands", "at least one demand is required"))
		return
	}
	batch := make([]pool.BatchDemand, len(req.Demands))
	for i, d := range req.Demands {
		b, err := d.buyer()
		if err != nil {
			writeError(w, &pool.BatchError{Index: i, Err: err})
			return
		}
		batch[i] = pool.BatchDemand{Buyer: b, Solver: d.Solver}
	}
	profiles, names, err := m.QuoteBatch(r.Context(), batch)
	if err != nil {
		var be *pool.BatchError
		if errors.As(err, &be) {
			var fe *pool.FieldError
			if !errors.As(be.Err, &fe) && !errors.Is(be.Err, pool.ErrNoSellers) {
				err = &pool.BatchError{Index: be.Index, Err: solveError(be.Err)}
			}
		}
		writeError(w, err)
		return
	}
	out := QuoteBatchResult{Quotes: make([]Quote, len(profiles))}
	for i, p := range profiles {
		out.Quotes[i] = quoteFromProfile(p, names[i])
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleTrade(w http.ResponseWriter, r *http.Request, m *pool.Market) {
	var d Demand
	if err := decodeJSON(r, &d); err != nil {
		writeDecodeError(w, err)
		return
	}
	b, err := d.buyer()
	if err != nil {
		writeError(w, err)
		return
	}
	builder, err := builderFor(d.Product, m.TestSet())
	if err != nil {
		writeError(w, err)
		return
	}
	if s.testHookTradeBuilder != nil {
		builder = s.testHookTradeBuilder
	}
	var backend solve.Backend // nil = the market's configured default
	if d.Solver != "" {
		backend, err = solve.Lookup(d.Solver)
		if err != nil {
			writeError(w, &pool.FieldError{Field: "solver", Msg: err.Error()})
			return
		}
	}
	tx, err := m.Trade(r.Context(), b, builder, backend)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, tradeResult(tx))
}

func tradeResult(tx *market.Transaction) TradeResult {
	return TradeResult{
		Round:             tx.Round,
		Product:           tx.Product,
		Solver:            tx.Solver,
		Quote:             quoteFromProfile(tx.Profile, tx.Solver),
		Pieces:            tx.Pieces,
		Compensations:     tx.Compensations,
		Payment:           tx.Payment,
		ManufacturingCost: tx.ManufacturingCost,
		Performance:       tx.Metrics.Performance,
		ExplainedVariance: tx.Metrics.Detail["explained_variance"],
		RMSE:              tx.Metrics.Detail["rmse"],
		Weights:           tx.Weights,
		TotalSeconds:      tx.Timings.Total.Seconds(),
	}
}

func (s *Server) handleListTrades(w http.ResponseWriter, r *http.Request, m *pool.Market) {
	v := m.View()
	lo, hi, err := paginate(w, r, len(v.Trades))
	if err != nil {
		writeError(w, err)
		return
	}
	out := make([]TradeResult, 0, hi-lo)
	for _, tx := range v.Trades[lo:hi] {
		out = append(out, tradeResult(tx))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleWeights(w http.ResponseWriter, r *http.Request, m *pool.Market) {
	writeJSON(w, http.StatusOK, m.View().Weights)
}

// streamHeartbeat is the SSE keep-alive cadence: a comment frame often
// enough to defeat idle-connection reaping by proxies, rare enough to cost
// nothing.
const streamHeartbeat = 15 * time.Second

// handleStream serves the market's live event stream as Server-Sent Events.
// The first frame is a "state" snapshot of the current roster, weights and
// epoch, so a subscriber needs no separate GET to establish a baseline;
// every committed roster change and trade then pushes a "roster" or
// "weights" delta (see pool.Event for the payload). A slow consumer falls
// behind (the pool drops frames past its buffer) but never stalls the
// market's write path.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request, m *pool.Market) {
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	ch, cancel := m.Subscribe(0)
	defer cancel()
	v := m.View()
	init := StreamEvent{Type: "state", Market: m.ID(), Epoch: v.Epoch, Weights: v.Weights}
	init.Sellers = make([]string, len(v.Sellers))
	for i, st := range v.Sellers {
		init.Sellers[i] = st.ID
	}
	if err := writeSSE(w, init); err != nil {
		return
	}
	if err := rc.Flush(); err != nil {
		// The underlying writer cannot stream; an SSE endpoint that
		// buffers forever is useless, so give up loudly.
		s.logf("httpapi: market %q stream: flush unsupported: %v", m.ID(), err)
		return
	}
	// Streams are long-lived: lift any server-side write deadline and let
	// the heartbeat keep the connection alive instead. Failure means the
	// server has no deadline to lift.
	_ = rc.SetWriteDeadline(time.Time{})
	hb := time.NewTicker(streamHeartbeat)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if writeSSE(w, ev) != nil || rc.Flush() != nil {
				return
			}
		case <-hb.C:
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			if rc.Flush() != nil {
				return
			}
		}
	}
}

// writeSSE renders one event as an SSE frame: an `event:` line naming the
// type (so EventSource listeners can filter) and a `data:` line carrying
// the JSON payload.
func writeSSE(w io.Writer, ev StreamEvent) error {
	raw, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, raw)
	return err
}

// --- plumbing ---

// paginate applies the limit/offset query parameters to a listing of
// `total` items, returning the [lo, hi) window and stamping the
// X-Total-Count header. Absent parameters return the full range; an
// explicit limit=0 is a valid empty page (the header still carries the
// total); an offset past the end is an empty page, not an error; bad
// values are a field-level 400.
func paginate(w http.ResponseWriter, r *http.Request, total int) (lo, hi int, err error) {
	q := r.URL.Query()
	lo, hi = 0, total
	if raw := q.Get("offset"); raw != "" {
		n, perr := strconv.Atoi(raw)
		if perr != nil || n < 0 {
			return 0, 0, fieldErrorf("offset", "must be a non-negative integer, got %q", raw)
		}
		lo = min(n, total)
		if hi < lo {
			hi = lo
		}
	}
	if raw := q.Get("limit"); raw != "" {
		n, perr := strconv.Atoi(raw)
		if perr != nil || n < 0 {
			return 0, 0, fieldErrorf("limit", "must be a non-negative integer, got %q", raw)
		}
		// Overflow-safe: lo+n wraps negative for n near MaxInt, and a
		// negative hi panics the [lo:hi] slice below — compare against the
		// remaining span instead of adding.
		if n < total-lo {
			hi = lo + n
		} else {
			hi = total
		}
	}
	w.Header().Set("X-Total-Count", strconv.Itoa(total))
	return lo, hi, nil
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	// Drain past the value: rejects trailing garbage and ensures an
	// oversized body trips the MaxBytesReader cap even when the leading
	// JSON value itself was small.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		if err == nil {
			return errors.New("invalid request body: unexpected trailing data")
		}
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is already out; nothing more to do than log via
		// the default logger.
		log.Printf("httpapi: encoding response: %v", err)
	}
}
