// Package httpapi exposes a Share market as a JSON-over-HTTP service — the
// "large-scale data trading center" of the paper's market assumptions, made
// operational. A server owns one broker (one market): sellers register with
// their privacy sensitivity and data, buyers post demands, and each demand
// runs one full round of Algorithm 1 (strategy decision, LDP data
// transaction, product manufacture, Shapley weight update, settlement).
//
// Endpoints (all JSON):
//
//	GET  /v1/health    liveness and market state
//	POST /v1/sellers   register a seller (before the first trade)
//	GET  /v1/sellers   list registered sellers
//	POST /v1/quote     solve the game for a demand without trading
//	POST /v1/trades    run one trading round for a buyer demand
//	GET  /v1/trades    list executed transactions
//	GET  /v1/weights   current broker dataset weights
//	GET  /v1/metrics   request counters, latency quantiles, in-flight gauges
//
// Concurrency model: reads are lock-free against an immutable copy-on-write
// view (see marketView); only registration and trades serialize behind the
// write mutex. A trade holding the write path for minutes never delays a
// quote.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"share/internal/core"
	"share/internal/dataset"
	"share/internal/market"
	"share/internal/obs"
	"share/internal/product"
	"share/internal/solve"
	"share/internal/stat"
	"share/internal/translog"
)

// defaultMaxBodyBytes caps request bodies when Options.MaxBodyBytes is
// unset: 8 MiB comfortably fits realistic inline datasets while bounding
// the memory an abusive payload can pin.
const defaultMaxBodyBytes = 8 << 20

// Server is the HTTP facade over one market.
//
// Locking: writeMu serializes the mutating endpoints (seller registration,
// trades) and snapshot save/restore. Read-only endpoints never take it —
// they load the atomically-published marketView. After every successful
// mutation the writer rebuilds and republishes the view.
type Server struct {
	writeMu sync.Mutex
	view    atomic.Pointer[marketView]

	cfg     market.Config
	sellers []*market.Seller // guarded by writeMu
	mkt     *market.Market   // guarded by writeMu

	logf         func(format string, args ...any)
	metrics      *obs.Registry
	valuation    *obs.Endpoint            // Shapley weight-update latency per trade
	solveObs     map[string]*obs.Endpoint // per-backend equilibrium-solve latency
	solver       solve.Backend            // default equilibrium backend
	maxBody      int64
	tradeTimeout time.Duration
	reqSeq       atomic.Uint64

	// testHookTradeBuilder, when set, replaces the resolved product builder
	// on every trade. Tests use it to inject blocking or failing builders;
	// it is never set in production.
	testHookTradeBuilder product.Builder
}

// Options configure a Server.
type Options struct {
	// Cost is the broker's translog cost model (zero value: paper
	// defaults).
	Cost *translog.Params
	// TestRows sizes the held-out synthetic CCPP test set used to score
	// products (0 → 500).
	TestRows int
	// Update enables Shapley weight updates (nil → the paper's
	// ω' = 0.2ω + 0.8·SV with 20 permutations).
	Update *market.WeightUpdate
	// Workers caps the Shapley valuation worker pool per trade (0 keeps
	// the Update's own setting). The moment-cached kernel's output is
	// identical for every worker count, so this is purely a latency knob.
	Workers int
	// Solver names the default equilibrium backend ("" → analytic).
	// Individual quotes and trades may override it via the demand's
	// `solver` field. An unknown name falls back to the analytic default
	// (CLI entry points validate the flag before getting here).
	Solver string
	// Seed seeds the server's market randomness.
	Seed int64
	// Logf receives request-level log lines (nil → log.Printf).
	Logf func(format string, args ...any)
	// MaxBodyBytes caps request body size; oversized bodies get 413
	// (0 → 8 MiB).
	MaxBodyBytes int64
	// TradeTimeout bounds one trading round beyond the request's own
	// context; expired rounds return 504 (0 → no server-side deadline).
	TradeTimeout time.Duration
}

// NewServer builds an empty market service: sellers register over HTTP.
func NewServer(opt Options) *Server {
	cost := translog.PaperDefaults()
	if opt.Cost != nil {
		cost = *opt.Cost
	}
	testRows := opt.TestRows
	if testRows <= 0 {
		testRows = 500
	}
	upd := opt.Update
	if upd == nil {
		upd = &market.WeightUpdate{Retain: 0.2, Permutations: 20, TruncateTol: 0.005}
	}
	if opt.Workers != 0 {
		u := *upd // don't mutate the caller's struct
		u.Workers = opt.Workers
		upd = &u
	}
	logf := opt.Logf
	if logf == nil {
		logf = log.Printf
	}
	maxBody := opt.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = defaultMaxBodyBytes
	}
	backend, err := solve.Lookup(opt.Solver)
	if err != nil {
		logf("httpapi: %v; falling back to %q", err, solve.DefaultName)
		backend, _ = solve.Lookup(solve.DefaultName)
	}
	rng := stat.NewRand(opt.Seed + 7)
	s := &Server{
		cfg: market.Config{
			Cost:    cost,
			TestSet: dataset.SyntheticCCPP(testRows, rng),
			Update:  upd,
			Solver:  backend,
			Seed:    opt.Seed,
		},
		logf:         logf,
		metrics:      obs.NewRegistry(),
		solver:       backend,
		maxBody:      maxBody,
		tradeTimeout: opt.TradeTimeout,
	}
	// Standalone latency series (no request counters): how long the Shapley
	// valuation phase of each trade took. Surfaces in /v1/metrics alongside
	// the endpoint stats.
	s.valuation = s.metrics.Endpoint("trade/valuation")
	// Per-backend equilibrium-solve latency: every quote and every trade's
	// strategy phase lands in the solve/<name> series of the backend that
	// ran it, making backend cost differences directly observable at
	// GET /v1/metrics.
	s.solveObs = make(map[string]*obs.Endpoint, len(solve.Names()))
	for _, name := range solve.Names() {
		s.solveObs[name] = s.metrics.Endpoint("solve/" + name)
	}
	// The empty market still has a well-defined view.
	s.view.Store(&marketView{weights: core.UniformWeights(1)})
	return s
}

// Metrics exposes the server's observability registry (for embedding or
// custom exporters).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Handler returns the routed http.Handler for the service. Every route is
// instrumented: per-endpoint counters/latency/in-flight in the metrics
// registry, request-ID structured logging, and a request body cap.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	route("GET /v1/health", s.handleHealth)
	route("POST /v1/sellers", s.handleRegisterSeller)
	route("GET /v1/sellers", s.handleListSellers)
	route("POST /v1/quote", s.handleQuote)
	route("POST /v1/trades", s.handleTrade)
	route("GET /v1/trades", s.handleListTrades)
	route("GET /v1/weights", s.handleWeights)
	route("GET /v1/metrics", s.handleMetrics)
	return mux
}

// statusWriter captures the response status for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the request body cap, per-endpoint
// metrics, and request-ID structured logging.
func (s *Server) instrument(label string, h http.HandlerFunc) http.HandlerFunc {
	ep := s.metrics.Endpoint(label)
	return func(w http.ResponseWriter, r *http.Request) {
		id := s.reqSeq.Add(1)
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		ep.Begin()
		start := time.Now()
		h(sw, r)
		d := time.Since(start)
		ep.End(sw.status, d)
		s.logf("httpapi: req=%d method=%s path=%s status=%d dur=%s remote=%s",
			id, r.Method, r.URL.Path, sw.status, d.Round(time.Microsecond), r.RemoteAddr)
	}
}

// --- wire types ---

// SellerRegistration is the POST /v1/sellers request body. Exactly one of
// Rows/Targets or SyntheticRows must supply data.
type SellerRegistration struct {
	// ID labels the seller; must be unique and non-empty.
	ID string `json:"id"`
	// Lambda is the seller's privacy sensitivity λ > 0.
	Lambda float64 `json:"lambda"`
	// Rows and Targets carry the seller's dataset inline.
	Rows    [][]float64 `json:"rows,omitempty"`
	Targets []float64   `json:"targets,omitempty"`
	// SyntheticRows asks the server to mint a CCPP-like dataset of this
	// size for the seller (demo mode).
	SyntheticRows int `json:"synthetic_rows,omitempty"`
}

// SellerInfo is one entry of GET /v1/sellers.
type SellerInfo struct {
	ID     string  `json:"id"`
	Lambda float64 `json:"lambda"`
	Rows   int     `json:"rows"`
	Weight float64 `json:"weight"`
}

// Demand is a buyer's product demand (POST /v1/quote and /v1/trades). Zero
// utility fields default to the paper's values.
type Demand struct {
	// N is the requested manufacturing data quantity.
	N float64 `json:"n"`
	// V is the required product performance.
	V float64 `json:"v"`
	// Theta1/Theta2/Rho1/Rho2 are the buyer's utility parameters.
	Theta1 float64 `json:"theta1,omitempty"`
	Theta2 float64 `json:"theta2,omitempty"`
	Rho1   float64 `json:"rho1,omitempty"`
	Rho2   float64 `json:"rho2,omitempty"`
	// Product selects this trade's data product: "" or "ols", "ridge",
	// "logistic", "mean", "histogram". Quotes ignore it (the equilibrium
	// is product-agnostic).
	Product string `json:"product,omitempty"`
	// Solver selects the equilibrium backend for this request: "" (the
	// server's default), "analytic", "meanfield" or "general". Approximate
	// backends attach their error guarantee to the quote.
	Solver string `json:"solver,omitempty"`
}

// builderFor resolves a demand's product name against the pooled training
// data available to the server (needed for the logistic median threshold).
func builderFor(name string, ref *dataset.Dataset) (product.Builder, error) {
	switch name {
	case "", "ols":
		return product.OLS{}, nil
	case "ridge":
		return product.Ridge{Alpha: 1}, nil
	case "logistic":
		return product.Logistic{Threshold: product.MedianThreshold(ref)}, nil
	case "mean":
		return product.MeanVector{}, nil
	case "histogram":
		return product.Histogram{}, nil
	default:
		return nil, fmt.Errorf("unknown product %q (want ols|ridge|logistic|mean|histogram)", name)
	}
}

// fieldError reports a request field that failed validation, rendered as a
// field-level 400 message.
type fieldError struct {
	field string
	msg   string
}

func (e *fieldError) Error() string { return fmt.Sprintf("field %q: %s", e.field, e.msg) }

// buyer maps the demand onto the paper's buyer, validating every supplied
// field: absent (zero) fields fall back to the paper defaults, present
// fields must satisfy the model's constraints — θ₁, θ₂ ∈ (0,1) and summing
// to 1 when both are given, ρ/n/v positive. Sending only one of θ₁/θ₂
// pins the other to its complement.
func (d Demand) buyer() (core.Buyer, error) {
	b := core.PaperBuyer()
	if d.N != 0 {
		if !(d.N > 0) {
			return b, &fieldError{"n", fmt.Sprintf("data quantity must be positive, got %g", d.N)}
		}
		b.N = d.N
	}
	if d.V != 0 {
		if !(d.V > 0) {
			return b, &fieldError{"v", fmt.Sprintf("required performance must be positive, got %g", d.V)}
		}
		b.V = d.V
	}
	if d.Theta1 != 0 && !(d.Theta1 > 0 && d.Theta1 < 1) {
		return b, &fieldError{"theta1", fmt.Sprintf("must lie in (0,1), got %g", d.Theta1)}
	}
	if d.Theta2 != 0 && !(d.Theta2 > 0 && d.Theta2 < 1) {
		return b, &fieldError{"theta2", fmt.Sprintf("must lie in (0,1), got %g", d.Theta2)}
	}
	switch {
	case d.Theta1 != 0 && d.Theta2 != 0:
		if diff := d.Theta1 + d.Theta2 - 1; diff < -1e-9 || diff > 1e-9 {
			return b, &fieldError{"theta1", fmt.Sprintf("theta1+theta2 must sum to 1, got %g", d.Theta1+d.Theta2)}
		}
		b.Theta1, b.Theta2 = d.Theta1, d.Theta2
	case d.Theta1 != 0:
		b.Theta1, b.Theta2 = d.Theta1, 1-d.Theta1
	case d.Theta2 != 0:
		b.Theta1, b.Theta2 = 1-d.Theta2, d.Theta2
	}
	if d.Rho1 != 0 {
		if !(d.Rho1 > 0) {
			return b, &fieldError{"rho1", fmt.Sprintf("must be positive, got %g", d.Rho1)}
		}
		b.Rho1 = d.Rho1
	}
	if d.Rho2 != 0 {
		if !(d.Rho2 > 0) {
			return b, &fieldError{"rho2", fmt.Sprintf("must be positive, got %g", d.Rho2)}
		}
		b.Rho2 = d.Rho2
	}
	return b, nil
}

// ApproxInfo reports an approximate backend's error guarantee: the
// Theorem 5.1 interval bounding the mean-fidelity error, and whether the
// theorem's ω-scaling precondition held (when false the interval is a
// heuristic, not a guarantee).
type ApproxInfo struct {
	ErrorLo        float64 `json:"error_lo"`
	ErrorHi        float64 `json:"error_hi"`
	ConditionHolds bool    `json:"condition_holds"`
}

// Quote is the POST /v1/quote response: the equilibrium without a trade.
type Quote struct {
	Solver       string      `json:"solver"`
	ProductPrice float64     `json:"product_price"`
	DataPrice    float64     `json:"data_price"`
	Fidelities   []float64   `json:"fidelities"`
	Allocations  []float64   `json:"allocations"`
	BuyerProfit  float64     `json:"buyer_profit"`
	BrokerProfit float64     `json:"broker_profit"`
	SellerProfit []float64   `json:"seller_profits"`
	DatasetQ     float64     `json:"dataset_quality"`
	ProductQ     float64     `json:"product_quality"`
	Approx       *ApproxInfo `json:"approx,omitempty"`
}

// TradeResult is the POST /v1/trades response.
type TradeResult struct {
	Round             int       `json:"round"`
	Product           string    `json:"product"`
	Solver            string    `json:"solver"`
	Quote             Quote     `json:"quote"`
	Pieces            []int     `json:"pieces"`
	Compensations     []float64 `json:"compensations"`
	Payment           float64   `json:"payment"`
	ManufacturingCost float64   `json:"manufacturing_cost"`
	Performance       float64   `json:"performance"`
	ExplainedVariance float64   `json:"explained_variance"`
	RMSE              float64   `json:"rmse"`
	Weights           []float64 `json:"weights"`
	TotalSeconds      float64   `json:"total_seconds"`
}

// apiError is the error envelope for every non-2xx response.
type apiError struct {
	Error string `json:"error"`
}

// --- handlers ---

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	v := s.view.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"sellers": len(v.sellers),
		"trades":  len(v.trades),
		"trading": v.trading,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

func (s *Server) handleRegisterSeller(w http.ResponseWriter, r *http.Request) {
	var reg SellerRegistration
	if err := decodeJSON(r, &reg); err != nil {
		writeDecodeError(w, err)
		return
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.mkt != nil {
		writeError(w, http.StatusConflict, errors.New("market already trading; registration is closed"))
		return
	}
	if reg.ID == "" {
		writeError(w, http.StatusBadRequest, &fieldError{"id", "seller id is required"})
		return
	}
	for _, existing := range s.sellers {
		if existing.ID == reg.ID {
			writeError(w, http.StatusConflict, fmt.Errorf("seller %q already registered", reg.ID))
			return
		}
	}
	if !(reg.Lambda > 0) {
		writeError(w, http.StatusBadRequest, &fieldError{"lambda", fmt.Sprintf("must be positive, got %g", reg.Lambda)})
		return
	}
	data, err := s.sellerData(reg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.sellers = append(s.sellers, &market.Seller{ID: reg.ID, Lambda: reg.Lambda, Data: data})
	if err := s.publishView(); err != nil {
		// Roll the registration back: a roster the game rejects (e.g. a
		// pathological λ passing the > 0 check but failing validation)
		// must not be half-admitted.
		s.sellers = s.sellers[:len(s.sellers)-1]
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.logf("httpapi: registered seller %q (%d rows, λ=%g)", reg.ID, data.Len(), reg.Lambda)
	writeJSON(w, http.StatusCreated, SellerInfo{ID: reg.ID, Lambda: reg.Lambda, Rows: data.Len()})
}

func (s *Server) sellerData(reg SellerRegistration) (*dataset.Dataset, error) {
	switch {
	case reg.SyntheticRows > 0 && reg.Rows != nil:
		return nil, errors.New("provide either inline rows or synthetic_rows, not both")
	case reg.SyntheticRows > 0:
		return dataset.SyntheticCCPP(reg.SyntheticRows, stat.NewRand(s.cfg.Seed+int64(len(s.sellers)))), nil
	case len(reg.Rows) > 0:
		if len(reg.Rows) != len(reg.Targets) {
			return nil, fmt.Errorf("%d rows but %d targets", len(reg.Rows), len(reg.Targets))
		}
		d := &dataset.Dataset{X: reg.Rows, Y: reg.Targets}
		if err := d.Validate(); err != nil {
			return nil, err
		}
		return d, nil
	default:
		return nil, errors.New("seller data required: inline rows or synthetic_rows")
	}
}

func (s *Server) handleListSellers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.view.Load().sellers)
}

func quoteFromProfile(p *core.Profile, solver string) Quote {
	q := Quote{
		Solver:       solver,
		ProductPrice: p.PM,
		DataPrice:    p.PD,
		Fidelities:   p.Tau,
		Allocations:  p.Chi,
		BuyerProfit:  p.BuyerProfit,
		BrokerProfit: p.BrokerProfit,
		SellerProfit: p.SellerProfits,
		DatasetQ:     p.QD,
		ProductQ:     p.QM,
	}
	if p.Approx != nil {
		q.Approx = &ApproxInfo{
			ErrorLo:        p.Approx.Lo,
			ErrorHi:        p.Approx.Hi,
			ConditionHolds: p.Approx.ConditionHolds,
		}
	}
	return q
}

// resolveSolver maps a request's solver field to the view's prepared
// prototype for it, defaulting to the server's configured backend.
func (s *Server) resolveSolver(v *marketView, requested string) (string, solve.Prepared, error) {
	name := requested
	if name == "" {
		name = s.solver.Name()
	}
	proto, ok := v.protos[name]
	if !ok {
		if _, err := solve.Lookup(name); err != nil {
			return name, nil, &fieldError{"solver", err.Error()}
		}
		return name, nil, errors.New("no sellers registered")
	}
	return name, proto, nil
}

// handleQuote solves the game against the published view — no locks, so
// quotes stay responsive while a trade holds the write path. The clone
// carries the view's Precompute snapshot: the seller-side aggregates are
// reused and only the buyer parameters are re-validated per quote. The
// demand's solver field picks any registered backend; the solve lands in
// that backend's solve/<name> latency series.
func (s *Server) handleQuote(w http.ResponseWriter, r *http.Request) {
	var d Demand
	if err := decodeJSON(r, &d); err != nil {
		writeDecodeError(w, err)
		return
	}
	b, err := d.buyer()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	v := s.view.Load()
	name, proto, err := s.resolveSolver(v, d.Solver)
	if err != nil {
		var fe *fieldError
		if errors.As(err, &fe) {
			writeError(w, http.StatusBadRequest, err)
		} else {
			writeError(w, http.StatusConflict, err)
		}
		return
	}
	prep := proto.Clone()
	prep.SetBuyer(b)
	t0 := time.Now()
	p, err := prep.Solve(r.Context())
	if err != nil {
		status := http.StatusBadRequest
		if r.Context().Err() != nil {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	if ep := s.solveObs[name]; ep != nil {
		ep.Observe(time.Since(t0))
	}
	writeJSON(w, http.StatusOK, quoteFromProfile(p, name))
}

func (s *Server) handleTrade(w http.ResponseWriter, r *http.Request) {
	var d Demand
	if err := decodeJSON(r, &d); err != nil {
		writeDecodeError(w, err)
		return
	}
	b, err := d.buyer()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.mkt == nil {
		if len(s.sellers) == 0 {
			writeError(w, http.StatusConflict, errors.New("no sellers registered"))
			return
		}
		mkt, err := market.New(s.sellers, s.cfg)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		s.mkt = mkt
	}
	builder, err := builderFor(d.Product, s.cfg.TestSet)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.testHookTradeBuilder != nil {
		builder = s.testHookTradeBuilder
	}
	var backend solve.Backend // nil = the market's configured default
	if d.Solver != "" {
		backend, err = solve.Lookup(d.Solver)
		if err != nil {
			writeError(w, http.StatusBadRequest, &fieldError{"solver", err.Error()})
			return
		}
	}
	ctx := r.Context()
	if s.tradeTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.tradeTimeout)
		defer cancel()
	}
	tx, err := s.mkt.RunRoundBackend(ctx, b, builder, backend)
	if err != nil {
		writeError(w, tradeErrorStatus(err), err)
		return
	}
	if err := s.publishView(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if tx.Timings.WeightUpdate > 0 {
		s.valuation.Observe(tx.Timings.WeightUpdate)
	}
	if ep := s.solveObs[tx.Solver]; ep != nil {
		ep.Observe(tx.Timings.Strategy)
	}
	s.logf("httpapi: trade %d executed (p^M=%g, p^D=%g, EV=%.4f)",
		tx.Round, tx.Profile.PM, tx.Profile.PD, tx.Metrics.Performance)
	writeJSON(w, http.StatusCreated, tradeResult(tx))
}

// tradeErrorStatus classifies a RunRoundContext failure: demand-caused
// errors are the client's fault (400), deadline expiry is 504, client
// disconnection 503, and anything else — product training, valuation — is
// an internal fault (500).
func tradeErrorStatus(err error) int {
	switch {
	case errors.Is(err, market.ErrDemand):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func tradeResult(tx *market.Transaction) TradeResult {
	return TradeResult{
		Round:             tx.Round,
		Product:           tx.Product,
		Solver:            tx.Solver,
		Quote:             quoteFromProfile(tx.Profile, tx.Solver),
		Pieces:            tx.Pieces,
		Compensations:     tx.Compensations,
		Payment:           tx.Payment,
		ManufacturingCost: tx.ManufacturingCost,
		Performance:       tx.Metrics.Performance,
		ExplainedVariance: tx.Metrics.Detail["explained_variance"],
		RMSE:              tx.Metrics.Detail["rmse"],
		Weights:           tx.Weights,
		TotalSeconds:      tx.Timings.Total.Seconds(),
	}
}

func (s *Server) handleListTrades(w http.ResponseWriter, r *http.Request) {
	v := s.view.Load()
	if v.trades == nil {
		writeJSON(w, http.StatusOK, []TradeResult{})
		return
	}
	writeJSON(w, http.StatusOK, v.trades)
}

func (s *Server) handleWeights(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.view.Load().weights)
}

// --- plumbing ---

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	// Drain past the value: rejects trailing garbage and ensures an
	// oversized body trips the MaxBytesReader cap even when the leading
	// JSON value itself was small.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		if err == nil {
			return errors.New("invalid request body: unexpected trailing data")
		}
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}

// writeDecodeError maps body-decoding failures: a tripped MaxBytesReader is
// 413, everything else (malformed JSON, unknown fields) is 400.
func writeDecodeError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
		return
	}
	writeError(w, http.StatusBadRequest, err)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is already out; nothing more to do than log via
		// the default logger.
		log.Printf("httpapi: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}
