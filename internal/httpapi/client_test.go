package httpapi

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
)

func newClientPair(t *testing.T) *Client {
	t.Helper()
	srv := NewServer(Options{Seed: 5, Logf: func(string, ...any) {}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, nil)
}

func TestClientFullLifecycle(t *testing.T) {
	c := newClientPair(t)
	ctx := context.Background()

	health, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if health["status"] != "ok" {
		t.Errorf("health = %v", health)
	}

	for i, lambda := range []float64{0.3, 0.5, 0.7} {
		info, err := c.RegisterSeller(ctx, SellerRegistration{
			ID: string(rune('a' + i)), Lambda: lambda, SyntheticRows: 100,
		})
		if err != nil {
			t.Fatalf("RegisterSeller %d: %v", i, err)
		}
		if info.Rows != 100 {
			t.Errorf("registered rows = %d", info.Rows)
		}
	}

	sellers, err := c.Sellers(ctx)
	if err != nil {
		t.Fatalf("Sellers: %v", err)
	}
	if len(sellers) != 3 {
		t.Fatalf("sellers = %d", len(sellers))
	}

	q, err := c.Quote(ctx, Demand{N: 120, V: 0.8})
	if err != nil {
		t.Fatalf("Quote: %v", err)
	}
	if !(q.ProductPrice > 0) || len(q.Fidelities) != 3 {
		t.Errorf("quote = %+v", q)
	}

	tr, err := c.Trade(ctx, Demand{N: 120, V: 0.8})
	if err != nil {
		t.Fatalf("Trade: %v", err)
	}
	if tr.Round != 1 || tr.Payment <= 0 {
		t.Errorf("trade = %+v", tr)
	}

	trades, err := c.Trades(ctx)
	if err != nil {
		t.Fatalf("Trades: %v", err)
	}
	if len(trades) != 1 {
		t.Errorf("trades = %d", len(trades))
	}

	weights, err := c.Weights(ctx)
	if err != nil {
		t.Fatalf("Weights: %v", err)
	}
	if len(weights) != 3 {
		t.Errorf("weights = %v", weights)
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if st, ok := metrics.Endpoints["POST /v1/trades"]; !ok || st.Count != 1 {
		t.Errorf("trade metrics = %+v, want count 1", metrics.Endpoints)
	}
}

func TestClientSurfacesServerErrors(t *testing.T) {
	c := newClientPair(t)
	ctx := context.Background()
	// Quote with no sellers → 409 with a typed StatusError.
	_, err := c.Quote(ctx, Demand{N: 10, V: 0.5})
	if err == nil {
		t.Fatal("expected an error")
	}
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("error type = %T, want *StatusError", err)
	}
	if se.Code != 409 || se.Message == "" {
		t.Errorf("status error = %+v", se)
	}
}

func TestClientContextCancellation(t *testing.T) {
	c := newClientPair(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Health(ctx); err == nil {
		t.Error("cancelled context should fail")
	}
}

func TestClientBadBaseURL(t *testing.T) {
	c := NewClient("http://127.0.0.1:1", nil) // nothing listens on port 1
	if _, err := c.Health(context.Background()); err == nil {
		t.Error("unreachable server should error")
	}
}
