package httpapi

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func newClientPair(t *testing.T) *Client {
	t.Helper()
	srv := NewServer(Options{Seed: 5, Logf: func(string, ...any) {}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, nil)
}

func TestClientFullLifecycle(t *testing.T) {
	c := newClientPair(t)
	ctx := context.Background()

	health, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if health["status"] != "ok" {
		t.Errorf("health = %v", health)
	}

	for i, lambda := range []float64{0.3, 0.5, 0.7} {
		info, err := c.RegisterSeller(ctx, SellerRegistration{
			ID: string(rune('a' + i)), Lambda: lambda, SyntheticRows: 100,
		})
		if err != nil {
			t.Fatalf("RegisterSeller %d: %v", i, err)
		}
		if info.Rows != 100 {
			t.Errorf("registered rows = %d", info.Rows)
		}
	}

	sellers, err := c.Sellers(ctx)
	if err != nil {
		t.Fatalf("Sellers: %v", err)
	}
	if len(sellers) != 3 {
		t.Fatalf("sellers = %d", len(sellers))
	}

	q, err := c.Quote(ctx, Demand{N: 120, V: 0.8})
	if err != nil {
		t.Fatalf("Quote: %v", err)
	}
	if !(q.ProductPrice > 0) || len(q.Fidelities) != 3 {
		t.Errorf("quote = %+v", q)
	}

	tr, err := c.Trade(ctx, Demand{N: 120, V: 0.8})
	if err != nil {
		t.Fatalf("Trade: %v", err)
	}
	if tr.Round != 1 || tr.Payment <= 0 {
		t.Errorf("trade = %+v", tr)
	}

	trades, err := c.Trades(ctx)
	if err != nil {
		t.Fatalf("Trades: %v", err)
	}
	if len(trades) != 1 {
		t.Errorf("trades = %d", len(trades))
	}

	weights, err := c.Weights(ctx)
	if err != nil {
		t.Fatalf("Weights: %v", err)
	}
	if len(weights) != 3 {
		t.Errorf("weights = %v", weights)
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if st, ok := metrics.Endpoints["POST /v1/trades"]; !ok || st.Count != 1 {
		t.Errorf("trade metrics = %+v, want count 1", metrics.Endpoints)
	}
}

func TestClientSurfacesServerErrors(t *testing.T) {
	c := newClientPair(t)
	ctx := context.Background()
	// Quote with no sellers → 409 with a typed StatusError.
	_, err := c.Quote(ctx, Demand{N: 10, V: 0.5})
	if err == nil {
		t.Fatal("expected an error")
	}
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("error type = %T, want *StatusError", err)
	}
	if se.Code != 409 || se.Message == "" {
		t.Errorf("status error = %+v", se)
	}
}

func TestClientContextCancellation(t *testing.T) {
	c := newClientPair(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Health(ctx); err == nil {
		t.Error("cancelled context should fail")
	}
}

func TestClientBadBaseURL(t *testing.T) {
	c := NewClient("http://127.0.0.1:1", nil) // nothing listens on port 1
	if _, err := c.Health(context.Background()); err == nil {
		t.Error("unreachable server should error")
	}
}

// TestParseRetryAfter covers both RFC 9110 header forms plus the junk the
// parser must shrug off.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"7", 7 * time.Second},
		{" 2 ", 2 * time.Second},
		{"0", 0},
		{"-3", 0},
		{now.Add(10 * time.Second).Format(http.TimeFormat), 10 * time.Second},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0}, // past dates mean "now"
		{"soon", 0},
		{"", 0},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in, now); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestStatusErrorCarriesRetryAfter pins the client-side half of the
// overload contract: the backoff hint must survive into StatusError from
// the header (either form), or failing that from the envelope — pre-fix it
// was dropped on the floor and Retry had nothing to honor.
func TestStatusErrorCarriesRetryAfter(t *testing.T) {
	cases := []struct {
		name    string
		handler http.HandlerFunc
		wantMin time.Duration
		wantMax time.Duration
	}{
		{"delta-seconds header", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "7")
			writeJSON(w, http.StatusTooManyRequests, errorEnvelope{Error: &Error{Code: CodeOverloaded, Message: "full"}})
		}, 7 * time.Second, 7 * time.Second},
		{"http-date header", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", time.Now().Add(10*time.Second).UTC().Format(http.TimeFormat))
			writeJSON(w, http.StatusServiceUnavailable, errorEnvelope{Error: &Error{Code: CodeDraining, Message: "bye"}})
		}, 8 * time.Second, 10 * time.Second},
		{"envelope fallback", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusTooManyRequests, errorEnvelope{Error: &Error{Code: CodeOverloaded, Message: "full", RetryAfter: 3}})
		}, 3 * time.Second, 3 * time.Second},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ts := httptest.NewServer(c.handler)
			t.Cleanup(ts.Close)
			_, err := NewClient(ts.URL, nil).Quote(context.Background(), Demand{N: 10, V: 0.5})
			var se *StatusError
			if !errors.As(err, &se) {
				t.Fatalf("error = %v (%T), want *StatusError", err, err)
			}
			if !se.Temporary() {
				t.Errorf("Temporary() = false for status %d", se.Code)
			}
			if se.RetryAfter < c.wantMin || se.RetryAfter > c.wantMax {
				t.Errorf("RetryAfter = %v, want in [%v, %v]", se.RetryAfter, c.wantMin, c.wantMax)
			}
		})
	}
}

// TestRetryBackoff drives the Retry helper against a canned error sequence:
// temporary failures are retried honoring the server hint, terminal ones
// and exhausted budgets are returned as-is.
func TestRetryBackoff(t *testing.T) {
	t.Run("succeeds after temporary failures", func(t *testing.T) {
		calls := 0
		err := Retry(context.Background(), RetryPolicy{Attempts: 4, Base: time.Millisecond, Max: 5 * time.Millisecond}, func(context.Context) error {
			calls++
			if calls < 3 {
				return &StatusError{Code: http.StatusTooManyRequests, RetryAfter: 2 * time.Millisecond}
			}
			return nil
		})
		if err != nil || calls != 3 {
			t.Errorf("err = %v, calls = %d, want nil after 3", err, calls)
		}
	})
	t.Run("terminal errors are not retried", func(t *testing.T) {
		calls := 0
		want := &StatusError{Code: http.StatusBadRequest}
		err := Retry(context.Background(), RetryPolicy{Base: time.Millisecond}, func(context.Context) error {
			calls++
			return want
		})
		if !errors.Is(err, want) || calls != 1 {
			t.Errorf("err = %v, calls = %d, want the 400 after 1 call", err, calls)
		}
	})
	t.Run("budget exhausted returns last error", func(t *testing.T) {
		calls := 0
		err := Retry(context.Background(), RetryPolicy{Attempts: 3, Base: time.Millisecond, Max: 2 * time.Millisecond}, func(context.Context) error {
			calls++
			return &StatusError{Code: http.StatusServiceUnavailable}
		})
		var se *StatusError
		if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable || calls != 3 {
			t.Errorf("err = %v, calls = %d, want the 503 after 3 calls", err, calls)
		}
	})
	t.Run("context cancels the sleep", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		calls := 0
		done := make(chan error, 1)
		go func() {
			done <- Retry(ctx, RetryPolicy{Attempts: 2, Base: time.Hour}, func(context.Context) error {
				calls++
				cancel() // cancel while Retry sleeps after this failure
				return &StatusError{Code: http.StatusTooManyRequests}
			})
		}()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) || calls != 1 {
				t.Errorf("err = %v, calls = %d, want context.Canceled after 1", err, calls)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("Retry ignored context cancellation mid-sleep")
		}
	})
}
