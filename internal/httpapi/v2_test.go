package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// decodeErrorEnvelope asserts the body is the unified error envelope and
// returns it.
func decodeErrorEnvelope(t *testing.T, body []byte) *Error {
	t.Helper()
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
		t.Fatalf("body is not the error envelope: %s", body)
	}
	return env.Error
}

func deleteURL(t *testing.T, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE %s: %v", url, err)
	}
	resp.Body.Close()
	return resp
}

// TestV2MarketLifecycle drives the full resource flow: create → register →
// batch quote → trade → list → delete.
func TestV2MarketLifecycle(t *testing.T) {
	ts := newTestServer(t)

	resp, body := postJSON(t, ts.URL+"/v2/markets", MarketSpec{ID: "alpha"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create market: %d %s", resp.StatusCode, body)
	}
	var info MarketInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.ID != "alpha" || info.Solver != "analytic" || info.Trading {
		t.Fatalf("created market info = %+v", info)
	}

	// Duplicate ID conflicts with a stable code.
	resp, body = postJSON(t, ts.URL+"/v2/markets", MarketSpec{ID: "alpha"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create: %d %s", resp.StatusCode, body)
	}
	if e := decodeErrorEnvelope(t, body); e.Code != CodeMarketExists {
		t.Fatalf("duplicate create code = %q", e.Code)
	}

	// The listing covers the default market plus ours, sorted.
	var markets []MarketInfo
	lresp := getJSON(t, ts.URL+"/v2/markets", &markets)
	if len(markets) != 2 || markets[0].ID != "alpha" || markets[1].ID != "default" {
		t.Fatalf("market listing = %+v", markets)
	}
	if got := lresp.Header.Get("X-Total-Count"); got != "2" {
		t.Fatalf("X-Total-Count = %q", got)
	}

	// Register sellers and run a batch of quotes.
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v2/markets/alpha/sellers", SellerRegistration{
			ID: fmt.Sprintf("S%d", i), Lambda: 0.3 + 0.1*float64(i), SyntheticRows: 80,
		})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("register: %d %s", resp.StatusCode, body)
		}
	}
	resp, body = postJSON(t, ts.URL+"/v2/markets/alpha/quotes", QuoteBatchRequest{
		Demands: []Demand{{N: 100, V: 0.8}, {N: 200, V: 0.85, Solver: "meanfield"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch quote: %d %s", resp.StatusCode, body)
	}
	var batch QuoteBatchResult
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Quotes) != 2 || batch.Quotes[0].Solver != "analytic" || batch.Quotes[1].Solver != "meanfield" {
		t.Fatalf("batch quotes = %+v", batch.Quotes)
	}
	if batch.Quotes[1].Approx == nil {
		t.Fatal("mean-field quote lost its approximation guarantee")
	}

	// Trade, then confirm it shows in the market resource and ledger.
	resp, body = postJSON(t, ts.URL+"/v2/markets/alpha/trades", Demand{N: 90, V: 0.8})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("trade: %d %s", resp.StatusCode, body)
	}
	getJSON(t, ts.URL+"/v2/markets/alpha", &info)
	if info.Trades != 1 || !info.Trading || info.Sellers != 3 {
		t.Fatalf("market info after trade = %+v", info)
	}
	var weights []float64
	getJSON(t, ts.URL+"/v2/markets/alpha/weights", &weights)
	if len(weights) != 3 {
		t.Fatalf("weights = %v", weights)
	}

	// Delete, confirm 204 then 404.
	if resp := deleteURL(t, ts.URL+"/v2/markets/alpha"); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	resp = getJSON(t, ts.URL+"/v2/markets/alpha", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: %d", resp.StatusCode)
	}
}

// TestV2DefaultMarketProtected: the /v1 alias target cannot be deleted.
func TestV2DefaultMarketProtected(t *testing.T) {
	ts := newTestServer(t)
	resp := deleteURL(t, ts.URL+"/v2/markets/default")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("delete default: %d, want 409", resp.StatusCode)
	}
}

// TestV1AliasEquivalence: the flat v1 routes and the /v2 default-market
// routes are the same handlers over the same market — the response bodies
// must be byte-identical.
func TestV1AliasEquivalence(t *testing.T) {
	ts := newTestServer(t)
	registerSynthetic(t, ts.URL, 3)
	resp, body := postJSON(t, ts.URL+"/v1/trades", Demand{N: 90, V: 0.8})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("trade: %d %s", resp.StatusCode, body)
	}

	read := func(url string) []byte {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", url, resp.StatusCode)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	for _, pair := range [][2]string{
		{"/v1/sellers", "/v2/markets/default/sellers"},
		{"/v1/trades", "/v2/markets/default/trades"},
		{"/v1/weights", "/v2/markets/default/weights"},
	} {
		v1, v2 := read(ts.URL+pair[0]), read(ts.URL+pair[1])
		if !bytes.Equal(v1, v2) {
			t.Errorf("%s and %s differ:\n  v1: %s\n  v2: %s", pair[0], pair[1], v1, v2)
		}
	}

	// A v1 quote and a single-demand v2 batch agree on the equilibrium.
	_, qbody := postJSON(t, ts.URL+"/v1/quote", Demand{N: 150, V: 0.8})
	var q1 Quote
	if err := json.Unmarshal(qbody, &q1); err != nil {
		t.Fatal(err)
	}
	_, bbody := postJSON(t, ts.URL+"/v2/markets/default/quotes", QuoteBatchRequest{Demands: []Demand{{N: 150, V: 0.8}}})
	var batch QuoteBatchResult
	if err := json.Unmarshal(bbody, &batch); err != nil {
		t.Fatalf("batch decode: %v (%s)", err, bbody)
	}
	b1, _ := json.Marshal(q1)
	b2, _ := json.Marshal(batch.Quotes[0])
	if !bytes.Equal(b1, b2) {
		t.Errorf("v1 quote and v2 batch disagree:\n  v1: %s\n  v2: %s", b1, b2)
	}
}

// rawBody marks a request body that must be sent verbatim (not marshaled).
type rawBody string

// TestErrorEnvelope pins the unified error contract on both API versions:
// every failure mode answers with {"error": {code, field, message}} and its
// stable code.
func TestErrorEnvelope(t *testing.T) {
	ts := newTestServer(t)
	registerSynthetic(t, ts.URL, 2)

	cases := []struct {
		name       string
		method     string
		path       string
		body       any
		wantStatus int
		wantCode   string
		wantField  string
	}{
		{"v1 bad demand field", http.MethodPost, "/v1/quote", Demand{N: -5, V: 0.8}, 400, CodeInvalidField, "n"},
		{"v1 malformed body", http.MethodPost, "/v1/quote", rawBody(`{"n":`), 400, CodeInvalidBody, ""},
		{"v1 unknown product", http.MethodPost, "/v1/trades", Demand{N: 90, V: 0.8, Product: "nope"}, 400, CodeInvalidField, "product"},
		{"v1 unknown solver", http.MethodPost, "/v1/quote", Demand{N: 90, V: 0.8, Solver: "nope"}, 400, CodeInvalidField, "solver"},
		{"v2 market missing", http.MethodGet, "/v2/markets/ghost", nil, 404, CodeMarketNotFound, ""},
		{"v2 bad market id", http.MethodPost, "/v2/markets", MarketSpec{ID: "bad id"}, 400, CodeInvalidField, "id"},
		{"v2 empty batch", http.MethodPost, "/v2/markets/default/quotes", QuoteBatchRequest{}, 400, CodeInvalidField, "demands"},
		{"v2 batch bad demand", http.MethodPost, "/v2/markets/default/quotes",
			QuoteBatchRequest{Demands: []Demand{{N: 100, V: 0.8}, {N: -1, V: 0.8}}}, 400, CodeInvalidField, "demands[1].n"},
		{"v2 batch bad solver", http.MethodPost, "/v2/markets/default/quotes",
			QuoteBatchRequest{Demands: []Demand{{N: 100, V: 0.8, Solver: "nope"}}}, 400, CodeInvalidField, "demands[0].solver"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var body []byte
			if tc.method == http.MethodGet {
				r, err := http.Get(ts.URL + tc.path)
				if err != nil {
					t.Fatal(err)
				}
				body, _ = io.ReadAll(r.Body)
				r.Body.Close()
				resp = r
			} else if raw, ok := tc.body.(rawBody); ok {
				r, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(string(raw)))
				if err != nil {
					t.Fatal(err)
				}
				body, _ = io.ReadAll(r.Body)
				r.Body.Close()
				resp = r
			} else {
				resp, body = postJSON(t, ts.URL+tc.path, tc.body)
			}
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.wantStatus, body)
			}
			e := decodeErrorEnvelope(t, body)
			if e.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", e.Code, tc.wantCode)
			}
			if e.Field != tc.wantField {
				t.Errorf("field = %q, want %q", e.Field, tc.wantField)
			}
			if e.Message == "" {
				t.Error("empty message")
			}
		})
	}

	// Quote before any seller registers: 409 no_sellers on a fresh market.
	_, body := postJSON(t, ts.URL+"/v2/markets", MarketSpec{ID: "empty"})
	if e := func() *Error {
		resp, b := postJSON(t, ts.URL+"/v2/markets/empty/quotes", QuoteBatchRequest{Demands: []Demand{{N: 100, V: 0.8}}})
		_ = resp
		return decodeErrorEnvelope(t, b)
	}(); e.Code != CodeNoSellers {
		t.Fatalf("quote on empty market: %+v (create said %s)", e, body)
	}
}

// TestPagination covers limit/offset windows, the X-Total-Count header and
// field-level 400s on bad values, for sellers and trades.
func TestPagination(t *testing.T) {
	ts := newTestServer(t)
	registerSynthetic(t, ts.URL, 5)

	get := func(url string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp, raw
	}

	for _, base := range []string{"/v1/sellers", "/v2/markets/default/sellers"} {
		resp, body := get(ts.URL + base + "?offset=1&limit=2")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d %s", base, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Total-Count"); got != "5" {
			t.Errorf("%s: X-Total-Count = %q, want 5", base, got)
		}
		var sellers []SellerInfo
		if err := json.Unmarshal(body, &sellers); err != nil {
			t.Fatal(err)
		}
		if len(sellers) != 2 || sellers[0].ID != "S1" || sellers[1].ID != "S2" {
			t.Errorf("%s: page = %+v", base, sellers)
		}

		// Past-the-end offset: empty page, total still reported.
		resp, body = get(ts.URL + base + "?offset=99")
		var empty []SellerInfo
		json.Unmarshal(body, &empty)
		if len(empty) != 0 || resp.Header.Get("X-Total-Count") != "5" {
			t.Errorf("%s: past-the-end page = %s (total %q)", base, body, resp.Header.Get("X-Total-Count"))
		}

		// Bad values are field-level 400s and never stamp the header.
		for _, q := range []string{"?limit=-1", "?offset=-2", "?limit=abc", "?offset=1.5"} {
			resp, body := get(ts.URL + base + q)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("%s%s: %d, want 400", base, q, resp.StatusCode)
			}
			e := decodeErrorEnvelope(t, body)
			if e.Code != CodeInvalidField || (e.Field != "limit" && e.Field != "offset") {
				t.Errorf("%s%s: envelope = %+v", base, q, e)
			}
			if resp.Header.Get("X-Total-Count") != "" {
				t.Errorf("%s%s: X-Total-Count stamped on error", base, q)
			}
		}
	}

	// limit=0 is a valid empty page.
	resp, body := get(ts.URL + "/v1/trades?limit=0")
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "[]" {
		t.Errorf("limit=0 trades = %d %s", resp.StatusCode, body)
	}
}

// TestPaginationOverflowSafe pins the paginate arithmetic fix: an offset
// combined with a limit near MaxInt64 used to compute lo+limit, wrap
// negative, and panic the slice expression — killing the connection instead
// of returning the page. Both paginated collections (sellers and trades) are
// exercised, each with an offset so lo+limit actually overflows.
func TestPaginationOverflowSafe(t *testing.T) {
	ts := newTestServer(t)
	registerSynthetic(t, ts.URL, 5)
	if resp, body := postJSON(t, ts.URL+"/v2/markets/default/trades", Demand{N: 90, V: 0.8}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("seeding trade: %d %s", resp.StatusCode, body)
	}

	const hugeLimit = "9223372036854775807" // MaxInt64
	cases := []struct {
		path      string
		wantTotal string
		wantLen   int
	}{
		{"/v2/markets/default/sellers?offset=1&limit=" + hugeLimit, "5", 4},
		{"/v2/markets/default/trades?offset=1&limit=" + hugeLimit, "1", 0},
		{"/v1/sellers?offset=5&limit=" + hugeLimit, "5", 0},
	}
	for _, c := range cases {
		resp, err := http.Get(ts.URL + c.path)
		if err != nil {
			// Pre-fix the handler panicked and the server reset the
			// connection, which surfaces here as a transport error.
			t.Fatalf("GET %s: %v", c.path, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d %s", c.path, resp.StatusCode, raw)
		}
		if got := resp.Header.Get("X-Total-Count"); got != c.wantTotal {
			t.Errorf("%s: X-Total-Count = %q, want %q", c.path, got, c.wantTotal)
		}
		var page []json.RawMessage
		if err := json.Unmarshal(raw, &page); err != nil {
			t.Fatalf("%s: body not a JSON array: %s", c.path, raw)
		}
		if len(page) != c.wantLen {
			t.Errorf("%s: page length = %d, want %d", c.path, len(page), c.wantLen)
		}
	}

	// Explicit limit=0 after an offset is still a valid empty page with the
	// total intact, on trades as well as sellers.
	for _, path := range []string{"/v2/markets/default/trades?offset=1&limit=0", "/v2/markets/default/sellers?limit=0"} {
		resp, raw := func() (*http.Response, []byte) {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			return resp, raw
		}()
		if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(raw)) != "[]" {
			t.Errorf("%s = %d %s, want 200 []", path, resp.StatusCode, raw)
		}
		if resp.Header.Get("X-Total-Count") == "" {
			t.Errorf("%s: X-Total-Count missing", path)
		}
	}
}

// TestBatchQuoteDeterministicAcrossWorkers runs the same batch through
// servers configured with different worker budgets; the HTTP response body
// must be byte-identical.
func TestBatchQuoteDeterministicAcrossWorkers(t *testing.T) {
	demands := make([]Demand, 6)
	for i := range demands {
		demands[i] = Demand{N: 100 + 50*float64(i), V: 0.8}
		if i%2 == 1 {
			demands[i].Solver = "meanfield"
		}
	}
	var want []byte
	for _, workers := range []int{1, 4, 8} {
		srv := NewServer(Options{Seed: 1, Workers: workers, Logf: func(string, ...any) {}})
		ts := httptest.NewServer(srv.Handler())
		registerSynthetic(t, ts.URL, 4)
		resp, body := postJSON(t, ts.URL+"/v2/markets/default/quotes", QuoteBatchRequest{Demands: demands})
		ts.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("workers=%d: %d %s", workers, resp.StatusCode, body)
		}
		if want == nil {
			want = body
		} else if !bytes.Equal(body, want) {
			t.Fatalf("workers=%d: batch response differs from workers=1", workers)
		}
	}
}

// TestClientV2 exercises the Go client's market lifecycle and batch-quote
// methods, and the enriched StatusError.
func TestClientV2(t *testing.T) {
	ts := newTestServer(t)
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	info, err := c.CreateMarket(ctx, MarketSpec{ID: "alpha", Solver: "meanfield"})
	if err != nil {
		t.Fatalf("CreateMarket: %v", err)
	}
	if info.ID != "alpha" || info.Solver != "meanfield" {
		t.Fatalf("CreateMarket info = %+v", info)
	}

	// Duplicate create: the StatusError surfaces status, code and message.
	_, err = c.CreateMarket(ctx, MarketSpec{ID: "alpha"})
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("duplicate CreateMarket error = %T %v", err, err)
	}
	if se.Code != http.StatusConflict || se.APICode != CodeMarketExists || se.Message == "" {
		t.Fatalf("StatusError = %+v", se)
	}

	// Field-level validation error carries the field through.
	_, err = c.CreateMarket(ctx, MarketSpec{ID: "bad id"})
	if !errors.As(err, &se) || se.APICode != CodeInvalidField || se.Field != "id" {
		t.Fatalf("bad-id StatusError = %+v", err)
	}

	for i := 0; i < 3; i++ {
		if _, err := c.RegisterSellerIn(ctx, "alpha", SellerRegistration{
			ID: fmt.Sprintf("S%d", i), Lambda: 0.4, SyntheticRows: 60,
		}); err != nil {
			t.Fatalf("RegisterSellerIn: %v", err)
		}
	}
	sellers, err := c.SellersIn(ctx, "alpha", Page{Offset: 1})
	if err != nil || len(sellers) != 2 {
		t.Fatalf("SellersIn page = %+v, %v", sellers, err)
	}

	quotes, err := c.QuoteBatch(ctx, "alpha", []Demand{{N: 100, V: 0.8}, {N: 200, V: 0.85}})
	if err != nil || len(quotes) != 2 {
		t.Fatalf("QuoteBatch = %d quotes, %v", len(quotes), err)
	}
	if quotes[0].Solver != "meanfield" {
		t.Fatalf("market default solver not honored: %+v", quotes[0])
	}

	tr, err := c.TradeIn(ctx, "alpha", Demand{N: 90, V: 0.8})
	if err != nil || tr.Round != 1 {
		t.Fatalf("TradeIn = %+v, %v", tr, err)
	}
	trades, err := c.TradesIn(ctx, "alpha", Page{})
	if err != nil || len(trades) != 1 {
		t.Fatalf("TradesIn = %d, %v", len(trades), err)
	}
	w, err := c.WeightsIn(ctx, "alpha")
	if err != nil || len(w) != 3 {
		t.Fatalf("WeightsIn = %v, %v", w, err)
	}

	markets, err := c.Markets(ctx)
	if err != nil || len(markets) != 2 {
		t.Fatalf("Markets = %+v, %v", markets, err)
	}
	if err := c.DeleteMarket(ctx, "alpha"); err != nil {
		t.Fatalf("DeleteMarket: %v", err)
	}
	if _, err := c.Market(ctx, "alpha"); !errors.As(err, &se) || se.APICode != CodeMarketNotFound {
		t.Fatalf("Market after delete = %v", err)
	}
}

// TestMarketDurabilityField covers the /v2 "durability" spec field: it is
// validated on create, echoed in the market resource, and defaults to the
// server-wide mode when omitted.
func TestMarketDurabilityField(t *testing.T) {
	srv := NewServer(Options{
		Seed:        1,
		Logf:        func(string, ...any) {},
		SnapshotDir: t.TempDir(),
		Durability:  "group",
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	info, err := c.CreateMarket(ctx, MarketSpec{ID: "synced", Durability: "sync"})
	if err != nil {
		t.Fatalf("CreateMarket with durability: %v", err)
	}
	if info.Durability != "sync" {
		t.Fatalf("Durability = %q, want %q", info.Durability, "sync")
	}

	// Omitted durability inherits the pool default.
	info, err = c.CreateMarket(ctx, MarketSpec{ID: "defaulted"})
	if err != nil {
		t.Fatalf("CreateMarket without durability: %v", err)
	}
	if info.Durability != "group" {
		t.Fatalf("default Durability = %q, want %q", info.Durability, "group")
	}

	// GET echoes the mode back too.
	got, err := c.Market(ctx, "synced")
	if err != nil || got.Durability != "sync" {
		t.Fatalf("Market(synced) = %+v, %v", got, err)
	}

	// Unknown mode fails field validation with the unified envelope.
	var se *StatusError
	_, err = c.CreateMarket(ctx, MarketSpec{ID: "bad", Durability: "fsync-maybe"})
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest ||
		se.APICode != CodeInvalidField || se.Field != "durability" {
		t.Fatalf("bad durability error = %+v", err)
	}
}
