package httpapi

import (
	"fmt"
	"io"
	"net/http"
	"testing"
)

func doGet(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, raw
}

// createBudgetMarket creates a market with the given per-seller ε budget and
// registers n synthetic sellers in it.
func createBudgetMarket(t *testing.T, base, id string, eps float64, n int) {
	t.Helper()
	resp, body := postJSON(t, base+"/v2/markets", MarketSpec{ID: id, EpsilonBudget: &eps})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create market: %d %s", resp.StatusCode, body)
	}
	for i := 0; i < n; i++ {
		resp, body := postJSON(t, base+"/v2/markets/"+id+"/sellers", SellerRegistration{
			ID:            fmt.Sprintf("S%d", i),
			Lambda:        0.2 + 0.1*float64(i),
			SyntheticRows: 120,
		})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("register seller %d: %d %s", i, resp.StatusCode, body)
		}
	}
}

func TestSellerResourceEndpoint(t *testing.T) {
	ts := newTestServer(t)
	createBudgetMarket(t, ts.URL, "bm", 1e15, 2)

	var info MarketInfo
	getJSON(t, ts.URL+"/v2/markets/bm", &info)
	if info.EpsilonBudget != 1e15 || info.Composition != "basic" {
		t.Fatalf("market info = %+v, want epsilon_budget 1e15 composition basic", info)
	}

	var got SellerInfo
	if resp := getJSON(t, ts.URL+"/v2/markets/bm/sellers/S1", &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET seller = %d", resp.StatusCode)
	}
	if got.ID != "S1" || got.Rows != 120 || got.EpsilonBudget != 1e15 || got.EpsilonSpent != 0 || got.RosterEpoch == 0 {
		t.Fatalf("seller resource = %+v", got)
	}

	// The listing serves the exact same object shape.
	var listed []SellerInfo
	getJSON(t, ts.URL+"/v2/markets/bm/sellers", &listed)
	if len(listed) != 2 || listed[1] != got {
		t.Fatalf("listing entry %+v diverges from GET %+v", listed, got)
	}

	// A trade charges every participating seller's ledger; the resource
	// reflects it.
	if resp, body := postJSON(t, ts.URL+"/v2/markets/bm/trades", Demand{N: 60, V: 0.8}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("trade: %d %s", resp.StatusCode, body)
	}
	getJSON(t, ts.URL+"/v2/markets/bm/sellers/S1", &got)
	if !(got.EpsilonSpent > 0) {
		t.Fatalf("epsilon_spent = %g after a trade, want > 0", got.EpsilonSpent)
	}

	// Budget-free markets omit the budget fields entirely.
	registerSynthetic(t, ts.URL, 1)
	var plain SellerInfo
	getJSON(t, ts.URL+"/v2/markets/default/sellers/S0", &plain)
	if plain.EpsilonBudget != 0 || plain.EpsilonSpent != 0 || plain.Discount != 0 {
		t.Fatalf("budget-free seller = %+v, want zero budget fields", plain)
	}
}

// TestSellerSubResourceErrorEnvelopes pins the unified envelope across every
// seller sub-resource's unknown-seller path: same status, code and field for
// GET, DELETE and POST budget.
func TestSellerSubResourceErrorEnvelopes(t *testing.T) {
	ts := newTestServer(t)
	createBudgetMarket(t, ts.URL, "env", 1e15, 1)

	check := func(op string, resp *http.Response, body []byte) {
		t.Helper()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s unknown seller = %d (%s), want 404", op, resp.StatusCode, body)
		}
		if e := decodeErrorEnvelope(t, body); e.Code != CodeSellerNotFound || e.Field != "sid" {
			t.Errorf("%s unknown seller envelope = %+v, want seller_not_found on sid", op, e)
		}
	}
	resp, body := doGet(t, ts.URL+"/v2/markets/env/sellers/ghost")
	check("GET", resp, body)
	resp, body = doDelete(t, ts.URL+"/v2/markets/env/sellers/ghost")
	check("DELETE", resp, body)
	resp, body = postJSON(t, ts.URL+"/v2/markets/env/sellers/ghost/budget", TopUpRequest{Add: 1})
	check("POST budget", resp, body)
}

func TestBudgetTopUpEndpoint(t *testing.T) {
	ts := newTestServer(t)
	createBudgetMarket(t, ts.URL, "topup", 5, 1)

	resp, body := postJSON(t, ts.URL+"/v2/markets/topup/sellers/S0/budget", TopUpRequest{Add: 2.5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("top-up = %d (%s), want 200", resp.StatusCode, body)
	}
	var st SellerInfo
	getJSON(t, ts.URL+"/v2/markets/topup/sellers/S0", &st)
	if st.EpsilonBudget != 7.5 {
		t.Fatalf("budget after top-up = %g, want 7.5", st.EpsilonBudget)
	}

	// Invalid grants and budget-free markets are field-level 400s.
	resp, body = postJSON(t, ts.URL+"/v2/markets/topup/sellers/S0/budget", TopUpRequest{Add: -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative top-up = %d, want 400", resp.StatusCode)
	}
	if e := decodeErrorEnvelope(t, body); e.Code != CodeInvalidField || e.Field != "add" {
		t.Errorf("negative top-up envelope = %+v", e)
	}
	registerSynthetic(t, ts.URL, 1)
	resp, body = postJSON(t, ts.URL+"/v2/markets/default/sellers/S0/budget", TopUpRequest{Add: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("top-up on budget-free market = %d, want 400", resp.StatusCode)
	}
	if e := decodeErrorEnvelope(t, body); e.Code != CodeInvalidField || e.Field != "add" {
		t.Errorf("budget-free top-up envelope = %+v", e)
	}
}

func TestBudgetExhaustedTradeAnswers409(t *testing.T) {
	ts := newTestServer(t)
	// A budget far below any realistic per-round ε: the first trade's charge
	// is refused before a single record is perturbed.
	createBudgetMarket(t, ts.URL, "tiny", 1e-9, 2)
	resp, body := postJSON(t, ts.URL+"/v2/markets/tiny/trades", Demand{N: 60, V: 0.8})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("exhausted trade = %d (%s), want 409", resp.StatusCode, body)
	}
	if e := decodeErrorEnvelope(t, body); e.Code != CodeBudgetExhausted || e.Field != "sid" {
		t.Errorf("exhausted envelope = %+v, want budget_exhausted on sid", e)
	}
	// The refusal committed nothing.
	var trades []TradeResult
	getJSON(t, ts.URL+"/v2/markets/tiny/trades", &trades)
	if len(trades) != 0 {
		t.Errorf("refused round committed %d trades", len(trades))
	}
	// Quotes on the exhausted market keep answering.
	if resp, body := postJSON(t, ts.URL+"/v2/markets/tiny/quotes", QuoteBatchRequest{
		Demands: []Demand{{N: 50, V: 0.8}},
	}); resp.StatusCode != http.StatusOK {
		t.Errorf("quote on exhausted market = %d (%s)", resp.StatusCode, body)
	}
}

func TestCreateMarketBudgetValidation(t *testing.T) {
	ts := newTestServer(t)
	neg := -1.0
	resp, body := postJSON(t, ts.URL+"/v2/markets", MarketSpec{ID: "badb", EpsilonBudget: &neg})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative epsilon_budget = %d, want 400", resp.StatusCode)
	}
	if e := decodeErrorEnvelope(t, body); e.Code != CodeInvalidField || e.Field != "epsilon_budget" {
		t.Errorf("epsilon_budget envelope = %+v", e)
	}
	five := 5.0
	resp, body = postJSON(t, ts.URL+"/v2/markets", MarketSpec{ID: "badc", EpsilonBudget: &five, Composition: "fancy"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown composition = %d, want 400", resp.StatusCode)
	}
	if e := decodeErrorEnvelope(t, body); e.Code != CodeInvalidField || e.Field != "composition" {
		t.Errorf("composition envelope = %+v", e)
	}
	resp, body = postJSON(t, ts.URL+"/v2/markets", MarketSpec{ID: "adv", EpsilonBudget: &five, Composition: "advanced"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("advanced market = %d (%s), want 201", resp.StatusCode, body)
	}
	var info MarketInfo
	getJSON(t, ts.URL+"/v2/markets/adv", &info)
	if info.EpsilonBudget != 5 || info.Composition != "advanced" {
		t.Errorf("advanced market info = %+v", info)
	}
}
