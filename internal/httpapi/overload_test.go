package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// TestOverloadIsolationAcrossMarkets is the admission-control contract under
// saturation: a market with a full trade queue answers 429 (with a
// Retry-After hint in both the header and the envelope) without degrading a
// sibling market's quote path, and the parked trades drain normally once the
// wedge clears. Run under -race this also gates the admission bookkeeping.
func TestOverloadIsolationAcrossMarkets(t *testing.T) {
	srv := NewServer(Options{Seed: 1, Logf: func(string, ...any) {}})
	bb := &blockingBuilder{started: make(chan struct{}), release: make(chan struct{})}
	srv.testHookTradeBuilder = bb
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Market "hot" has the smallest possible admission envelope: one slot,
	// a one-deep waiting room. Market "cold" keeps the server defaults.
	one := 1
	resp, body := postJSON(t, ts.URL+"/v2/markets", MarketSpec{ID: "hot", TradeConcurrency: &one, TradeQueue: &one})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create hot: %d %s", resp.StatusCode, body)
	}
	var info MarketInfo
	getJSON(t, ts.URL+"/v2/markets/hot", &info)
	if info.TradeConcurrency != 1 || info.TradeQueue != 1 {
		t.Fatalf("hot admission config = conc %d queue %d, want 1/1", info.TradeConcurrency, info.TradeQueue)
	}
	if resp, body := postJSON(t, ts.URL+"/v2/markets", MarketSpec{ID: "cold"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create cold: %d %s", resp.StatusCode, body)
	}
	for _, m := range []string{"hot", "cold"} {
		for i := 0; i < 3; i++ {
			resp, body := postJSON(t, ts.URL+"/v2/markets/"+m+"/sellers", SellerRegistration{
				ID: "S" + strconv.Itoa(i), Lambda: 0.3 + 0.1*float64(i), SyntheticRows: 80,
			})
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("register %s/S%d: %d %s", m, i, resp.StatusCode, body)
			}
		}
	}

	// Saturate hot: six concurrent trades against one slot plus one queue
	// position. Exactly one parks inside Build, one waits for the slot, and
	// the remaining four must be rejected immediately.
	const floods = 6
	type outcome struct {
		status     int
		env        *Error
		retryAfter string
	}
	results := make(chan outcome, floods)
	for i := 0; i < floods; i++ {
		go func() {
			resp, body := postJSON(t, ts.URL+"/v2/markets/hot/trades", Demand{N: 90, V: 0.8})
			out := outcome{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
			if resp.StatusCode >= 400 {
				// Decode without t.Fatal — this is not the test goroutine.
				var env errorEnvelope
				if err := json.Unmarshal(body, &env); err == nil {
					out.env = env.Error
				}
			}
			results <- out
		}()
	}
	select {
	case <-bb.started:
	case <-time.After(10 * time.Second):
		t.Fatal("no trade reached manufacturing")
	}

	// The four rejections return while the wedge holds.
	for i := 0; i < floods-2; i++ {
		select {
		case out := <-results:
			if out.status != http.StatusTooManyRequests {
				t.Fatalf("flooded trade status = %d, want 429 (%+v)", out.status, out.env)
			}
			if out.env == nil {
				t.Fatal("429 response did not carry the error envelope")
			}
			if out.env.Code != CodeOverloaded {
				t.Errorf("429 envelope code = %q, want %q", out.env.Code, CodeOverloaded)
			}
			if out.env.RetryAfter < 1 {
				t.Errorf("429 retry_after_seconds = %d, want >= 1", out.env.RetryAfter)
			}
			if secs, err := strconv.Atoi(out.retryAfter); err != nil || secs < 1 {
				t.Errorf("429 Retry-After header = %q, want integer >= 1", out.retryAfter)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d overload rejections arrived, want %d", i, floods-2)
		}
	}

	// With hot saturated, cold's quote path must still answer promptly —
	// admission is per market, and quotes are never gated at all.
	const quotes = 8
	var wg sync.WaitGroup
	quoteErrs := make(chan int, quotes)
	for i := 0; i < quotes; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postJSON(t, ts.URL+"/v2/markets/cold/quotes", QuoteBatchRequest{Demands: []Demand{{N: 100, V: 0.8}}})
			if resp.StatusCode != http.StatusOK {
				quoteErrs <- resp.StatusCode
			}
		}()
	}
	quotesDone := make(chan struct{})
	go func() { wg.Wait(); close(quotesDone) }()
	select {
	case <-quotesDone:
	case <-time.After(10 * time.Second):
		t.Fatal("cold-market quotes blocked behind hot-market saturation")
	}
	close(quoteErrs)
	for code := range quoteErrs {
		t.Errorf("cold quote status = %d, want 200", code)
	}

	// The rejections are visible as admission counters and the waiter as
	// queue depth.
	var metrics struct {
		Counters map[string]uint64 `json:"counters"`
		Gauges   map[string]int64  `json:"gauges"`
	}
	getJSON(t, ts.URL+"/v1/metrics", &metrics)
	if got := metrics.Counters["market/hot/trades_rejected"]; got != floods-2 {
		t.Errorf("trades_rejected = %d, want %d", got, floods-2)
	}
	if got := metrics.Gauges["market/hot/queue_depth"]; got != 1 {
		t.Errorf("queue_depth while one trade waits = %d, want 1", got)
	}

	// Release the wedge: the slot holder and the queued waiter both land.
	close(bb.release)
	for i := 0; i < 2; i++ {
		select {
		case out := <-results:
			if out.status != http.StatusCreated {
				t.Errorf("admitted trade status = %d, want 201 (%+v)", out.status, out.env)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("admitted trades never completed after release")
		}
	}
	getJSON(t, ts.URL+"/v2/markets/hot", &info)
	if info.Trades != 2 {
		t.Errorf("hot ledger = %d trades, want 2", info.Trades)
	}
	getJSON(t, ts.URL+"/v1/metrics", &metrics)
	if got := metrics.Counters["market/hot/trades_admitted"]; got != 2 {
		t.Errorf("trades_admitted = %d, want 2", got)
	}
}

// TestDrainAnswers503: once the pool is draining for shutdown, writes answer
// 503 with the draining code and a Retry-After hint, while the ungated quote
// path keeps serving so in-flight readers finish cleanly.
func TestDrainAnswers503(t *testing.T) {
	srv := NewServer(Options{Seed: 1, Logf: func(string, ...any) {}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	registerSynthetic(t, ts.URL, 3)

	srv.Pool().Drain()

	resp, body := postJSON(t, ts.URL+"/v1/trades", Demand{N: 90, V: 0.8})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("trade during drain = %d, want 503 (%s)", resp.StatusCode, body)
	}
	env := decodeErrorEnvelope(t, body)
	if env.Code != CodeDraining {
		t.Errorf("drain envelope code = %q, want %q", env.Code, CodeDraining)
	}
	if env.RetryAfter != drainRetryAfterSeconds {
		t.Errorf("drain retry_after_seconds = %d, want %d", env.RetryAfter, drainRetryAfterSeconds)
	}
	if got := resp.Header.Get("Retry-After"); got != strconv.Itoa(drainRetryAfterSeconds) {
		t.Errorf("drain Retry-After header = %q, want %q", got, strconv.Itoa(drainRetryAfterSeconds))
	}

	// Registration is a write too.
	resp, _ = postJSON(t, ts.URL+"/v1/sellers", SellerRegistration{ID: "late", Lambda: 0.5, SyntheticRows: 10})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("register during drain = %d, want 503", resp.StatusCode)
	}
	// Creating a market is refused at the pool.
	resp, _ = postJSON(t, ts.URL+"/v2/markets", MarketSpec{ID: "late"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("create during drain = %d, want 503", resp.StatusCode)
	}

	// Quotes are read-only against the published view and keep answering.
	resp, body = postJSON(t, ts.URL+"/v1/quote", Demand{N: 100, V: 0.8})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("quote during drain = %d, want 200 (%s)", resp.StatusCode, body)
	}
}
