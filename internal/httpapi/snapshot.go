package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"share/internal/dataset"
	"share/internal/market"
)

// ServerSnapshot is the crash-safe persisted state of one server: the full
// seller roster (the market.Snapshot alone deliberately omits seller data —
// the HTTP server owns the registrations, so it persists them) plus the
// market's learned weights, ledger and cost log. A server restored from a
// snapshot quotes and trades exactly as the one that saved it.
type ServerSnapshot struct {
	// Version guards the wire format.
	Version int `json:"version"`
	// Sellers is the registered roster in order.
	Sellers []StoredSeller `json:"sellers"`
	// Market is the trading state; nil when no trade has executed yet.
	Market *market.Snapshot `json:"market,omitempty"`
}

// StoredSeller serializes one registration.
type StoredSeller struct {
	ID      string      `json:"id"`
	Lambda  float64     `json:"lambda"`
	Rows    [][]float64 `json:"rows"`
	Targets []float64   `json:"targets"`
}

// serverSnapshotVersion is the current wire-format version.
const serverSnapshotVersion = 1

// Snapshot captures the server's full persistent state. It takes the write
// lock, so the snapshot is consistent with respect to concurrent trades.
func (s *Server) Snapshot() *ServerSnapshot {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	snap := &ServerSnapshot{Version: serverSnapshotVersion}
	for _, sel := range s.sellers {
		snap.Sellers = append(snap.Sellers, StoredSeller{
			ID:      sel.ID,
			Lambda:  sel.Lambda,
			Rows:    sel.Data.X,
			Targets: sel.Data.Y,
		})
	}
	if s.mkt != nil {
		snap.Market = s.mkt.Snapshot()
	}
	return snap
}

// SaveSnapshot atomically persists the server state to path: the JSON is
// written to a temp file in the same directory, synced, and renamed over
// the target, so a crash mid-save never corrupts an existing snapshot.
func (s *Server) SaveSnapshot(path string) error {
	snap := s.Snapshot()
	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("httpapi: encoding snapshot: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".share-snapshot-*")
	if err != nil {
		return fmt.Errorf("httpapi: creating snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	// Any failure from here on removes the temp file; the target is only
	// ever replaced by a complete, synced rename.
	if _, err := tmp.Write(raw); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("httpapi: writing snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("httpapi: publishing snapshot: %w", err)
	}
	return nil
}

// RestoreSnapshot loads a SaveSnapshot file into a freshly-built server
// (one with no registrations and no trades). The roster is re-registered
// from the stored data and, when the snapshot was trading, the market is
// rebuilt and its weights/ledger/cost log restored.
func (s *Server) RestoreSnapshot(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("httpapi: reading snapshot: %w", err)
	}
	var snap ServerSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("httpapi: decoding snapshot: %w", err)
	}
	if snap.Version != serverSnapshotVersion {
		return fmt.Errorf("httpapi: unsupported snapshot version %d", snap.Version)
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if len(s.sellers) > 0 || s.mkt != nil {
		return errors.New("httpapi: snapshot restore requires a fresh server")
	}
	sellers := make([]*market.Seller, len(snap.Sellers))
	for i, st := range snap.Sellers {
		d := &dataset.Dataset{X: st.Rows, Y: st.Targets}
		if err := d.Validate(); err != nil {
			return fmt.Errorf("httpapi: snapshot seller %q: %w", st.ID, err)
		}
		sellers[i] = &market.Seller{ID: st.ID, Lambda: st.Lambda, Data: d}
	}
	var mkt *market.Market
	if snap.Market != nil {
		mkt, err = market.New(sellers, s.cfg)
		if err != nil {
			return fmt.Errorf("httpapi: rebuilding market from snapshot: %w", err)
		}
		if err := mkt.Restore(snap.Market); err != nil {
			return err
		}
	}
	s.sellers = sellers
	s.mkt = mkt
	if err := s.publishView(); err != nil {
		s.sellers, s.mkt = nil, nil
		return fmt.Errorf("httpapi: snapshot state rejected: %w", err)
	}
	return nil
}
