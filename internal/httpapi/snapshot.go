package httpapi

import (
	"share/internal/pool"
)

// ServerSnapshot is the persisted state of the server's default market.
// It is the pool's per-market snapshot format, which is a strict superset
// of the historical single-market file: old files (no id/solver/seed)
// restore unchanged.
type ServerSnapshot = pool.MarketSnapshot

// StoredSeller serializes one registration.
type StoredSeller = pool.StoredSeller

// Snapshot captures the default market's full persistent state. It takes
// that market's write lock, so the snapshot is consistent with respect to
// concurrent trades.
func (s *Server) Snapshot() *ServerSnapshot {
	return s.mustDefault().Snapshot()
}

// SaveSnapshot atomically persists the default market's state to path
// (temp file + sync + rename — a crash mid-save never corrupts an
// existing snapshot). This is the legacy single-file persistence mode;
// multi-market servers use Options.SnapshotDir and the pool's
// SaveAll/RestoreAll instead.
func (s *Server) SaveSnapshot(path string) error {
	return s.mustDefault().Save(path)
}

// RestoreSnapshot loads a SaveSnapshot file into a freshly-built server
// (one whose default market has no registrations and no trades). The
// roster is re-registered from the stored data and, when the snapshot was
// trading, the market is rebuilt and its weights/ledger/cost log restored.
func (s *Server) RestoreSnapshot(path string) error {
	snap, err := pool.ReadSnapshotFile(path)
	if err != nil {
		return err
	}
	return s.mustDefault().RestoreSnapshot(snap)
}

// mustDefault resolves the default market; it exists from boot and is
// protected from deletion, so failure is a programming error.
func (s *Server) mustDefault() *pool.Market {
	m, err := s.pool.Get(s.defaultID)
	if err != nil {
		panic(err)
	}
	return m
}
