package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := NewServer(Options{Seed: 1, Logf: func(string, ...any) {}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func registerSynthetic(t *testing.T, base string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		resp, body := postJSON(t, base+"/v1/sellers", SellerRegistration{
			ID:            fmt.Sprintf("S%d", i),
			Lambda:        0.2 + 0.1*float64(i),
			SyntheticRows: 120,
		})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("register seller %d: %d %s", i, resp.StatusCode, body)
		}
	}
}

func TestHealthEmptyMarket(t *testing.T) {
	ts := newTestServer(t)
	var health map[string]any
	resp := getJSON(t, ts.URL+"/v1/health", &health)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health status = %d", resp.StatusCode)
	}
	if health["status"] != "ok" || health["trading"] != false {
		t.Errorf("health = %v", health)
	}
}

func TestRegisterValidation(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name string
		reg  SellerRegistration
		want int
	}{
		{"missing id", SellerRegistration{Lambda: 0.5, SyntheticRows: 10}, http.StatusBadRequest},
		{"bad lambda", SellerRegistration{ID: "x", Lambda: 0, SyntheticRows: 10}, http.StatusBadRequest},
		{"no data", SellerRegistration{ID: "x", Lambda: 0.5}, http.StatusBadRequest},
		{"both data kinds", SellerRegistration{ID: "x", Lambda: 0.5, SyntheticRows: 5, Rows: [][]float64{{1}}, Targets: []float64{1}}, http.StatusBadRequest},
		{"row/target mismatch", SellerRegistration{ID: "x", Lambda: 0.5, Rows: [][]float64{{1}}, Targets: []float64{1, 2}}, http.StatusBadRequest},
		{"ok inline", SellerRegistration{ID: "inline", Lambda: 0.5, Rows: [][]float64{{1, 2}, {3, 4}}, Targets: []float64{1, 2}}, http.StatusCreated},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/sellers", c.reg)
			if resp.StatusCode != c.want {
				t.Errorf("status = %d, want %d (%s)", resp.StatusCode, c.want, body)
			}
		})
	}
	// Duplicate ID.
	resp, _ := postJSON(t, ts.URL+"/v1/sellers", SellerRegistration{ID: "inline", Lambda: 0.5, SyntheticRows: 5})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate registration status = %d, want 409", resp.StatusCode)
	}
}

func TestQuoteWithoutSellers(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/v1/quote", Demand{N: 100, V: 0.8})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("quote with no sellers = %d, want 409", resp.StatusCode)
	}
}

func TestQuoteReturnsEquilibrium(t *testing.T) {
	ts := newTestServer(t)
	registerSynthetic(t, ts.URL, 4)
	resp, body := postJSON(t, ts.URL+"/v1/quote", Demand{N: 200, V: 0.8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quote status = %d (%s)", resp.StatusCode, body)
	}
	var q Quote
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatalf("decoding quote: %v", err)
	}
	if !(q.ProductPrice > 0) || !(q.DataPrice > 0) {
		t.Errorf("non-positive prices: %+v", q)
	}
	if len(q.Fidelities) != 4 || len(q.Allocations) != 4 {
		t.Errorf("wrong vector sizes: %+v", q)
	}
	var total float64
	for _, chi := range q.Allocations {
		total += chi
	}
	if total < 199.9 || total > 200.1 {
		t.Errorf("Σχ = %v, want 200", total)
	}
}

func TestTradeLifecycle(t *testing.T) {
	ts := newTestServer(t)
	registerSynthetic(t, ts.URL, 3)

	// Execute two trades.
	for round := 1; round <= 2; round++ {
		resp, body := postJSON(t, ts.URL+"/v1/trades", Demand{N: 90, V: 0.8})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("trade status = %d (%s)", resp.StatusCode, body)
		}
		var tr TradeResult
		if err := json.Unmarshal(body, &tr); err != nil {
			t.Fatalf("decoding trade: %v", err)
		}
		if tr.Round != round {
			t.Errorf("round = %d, want %d", tr.Round, round)
		}
		sum := 0
		for _, p := range tr.Pieces {
			sum += p
		}
		if sum != 90 {
			t.Errorf("Σ pieces = %d, want 90", sum)
		}
		if tr.Payment <= 0 {
			t.Errorf("payment = %v", tr.Payment)
		}
	}

	// Ledger reflects both trades.
	var trades []TradeResult
	getJSON(t, ts.URL+"/v1/trades", &trades)
	if len(trades) != 2 {
		t.Fatalf("ledger length = %d", len(trades))
	}

	// Registration stays open after trading starts: the late seller joins
	// mid-life at the mean of the current weights.
	resp, _ := postJSON(t, ts.URL+"/v1/sellers", SellerRegistration{ID: "late", Lambda: 0.5, SyntheticRows: 10})
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("late registration = %d, want 201", resp.StatusCode)
	}

	// Weights endpoint returns one weight per seller (including the
	// mid-life joiner).
	var weights []float64
	getJSON(t, ts.URL+"/v1/weights", &weights)
	if len(weights) != 4 {
		t.Fatalf("weights length = %d", len(weights))
	}

	// Health reports trading state.
	var health map[string]any
	getJSON(t, ts.URL+"/v1/health", &health)
	if health["trading"] != true || health["trades"].(float64) != 2 {
		t.Errorf("health = %v", health)
	}
}

func TestSellerListShowsWeights(t *testing.T) {
	ts := newTestServer(t)
	registerSynthetic(t, ts.URL, 2)
	var infos []SellerInfo
	getJSON(t, ts.URL+"/v1/sellers", &infos)
	if len(infos) != 2 {
		t.Fatalf("sellers = %d", len(infos))
	}
	for _, info := range infos {
		if info.Weight != 0.5 {
			t.Errorf("pre-trade weight = %v, want uniform 0.5", info.Weight)
		}
		if info.Rows != 120 {
			t.Errorf("rows = %d", info.Rows)
		}
	}
}

func TestMalformedJSON(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/quote", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d, want 400", resp.StatusCode)
	}
	// Unknown fields are rejected (DisallowUnknownFields).
	resp, _ = postJSON(t, ts.URL+"/v1/quote", map[string]any{"n": 10, "bogus": true})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown-field status = %d, want 400", resp.StatusCode)
	}
}

func TestMethodRouting(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/trades")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /v1/trades = %d", resp.StatusCode)
	}
	// DELETE on a POST-only route.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/trades", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed && resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE /v1/trades = %d, want 405/404", resp.StatusCode)
	}
}

func TestTradeWithProductSelection(t *testing.T) {
	ts := newTestServer(t)
	registerSynthetic(t, ts.URL, 3)
	for _, prod := range []string{"", "ols", "ridge", "logistic", "mean", "histogram"} {
		resp, body := postJSON(t, ts.URL+"/v1/trades", Demand{N: 60, V: 0.8, Product: prod})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("product %q: status %d (%s)", prod, resp.StatusCode, body)
		}
		var tr TradeResult
		if err := json.Unmarshal(body, &tr); err != nil {
			t.Fatalf("decoding: %v", err)
		}
		if tr.Product == "" {
			t.Errorf("product %q: transaction did not record the builder", prod)
		}
	}
	// Unknown product is rejected.
	resp, _ := postJSON(t, ts.URL+"/v1/trades", Demand{N: 60, V: 0.8, Product: "neural-net"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown product status = %d, want 400", resp.StatusCode)
	}
}
