package httpapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"share/internal/obs"
)

// Client is a typed Go client for a share-server instance. The flat
// methods (Health, Quote, Trade, ...) address the /v1 aliases — the
// server's default market; the *In variants and the market-lifecycle
// methods address any market through /v2. The zero value is not usable;
// construct with NewClient.
type Client struct {
	base string
	http *http.Client
}

// NewClient builds a client for the server at baseURL (e.g.
// "http://localhost:8080"). Pass nil to use a default http.Client with a
// five-minute timeout (Shapley-heavy trades can be slow).
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Minute}
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: hc}
}

// Page selects a window of a listing; the zero value means "everything".
type Page struct {
	// Offset skips the first Offset items.
	Offset int
	// Limit caps the returned items; 0 means no explicit limit. To request
	// an empty page (just the X-Total-Count header), use a negative Limit.
	Limit int
}

// query renders the page as URL query parameters ("" when zero).
func (p Page) query() string {
	q := url.Values{}
	if p.Offset > 0 {
		q.Set("offset", strconv.Itoa(p.Offset))
	}
	if p.Limit > 0 {
		q.Set("limit", strconv.Itoa(p.Limit))
	} else if p.Limit < 0 {
		q.Set("limit", "0")
	}
	if len(q) == 0 {
		return ""
	}
	return "?" + q.Encode()
}

// --- v1 aliases (default market) ---

// Health reports the server's liveness and the default market's state.
func (c *Client) Health(ctx context.Context) (map[string]any, error) {
	var out map[string]any
	return out, c.do(ctx, http.MethodGet, "/v1/health", nil, &out)
}

// RegisterSeller registers a seller in the default market. Registration is
// open over the market's whole life: a seller joining after trading starts
// enters at the mean of the current weights.
func (c *Client) RegisterSeller(ctx context.Context, reg SellerRegistration) (SellerInfo, error) {
	var out SellerInfo
	return out, c.do(ctx, http.MethodPost, "/v1/sellers", reg, &out)
}

// Sellers lists the default market's sellers with their current weights.
func (c *Client) Sellers(ctx context.Context) ([]SellerInfo, error) {
	var out []SellerInfo
	return out, c.do(ctx, http.MethodGet, "/v1/sellers", nil, &out)
}

// Quote solves the game for a demand in the default market without
// executing a trade.
func (c *Client) Quote(ctx context.Context, d Demand) (Quote, error) {
	var out Quote
	return out, c.do(ctx, http.MethodPost, "/v1/quote", d, &out)
}

// Trade executes one full trading round in the default market.
func (c *Client) Trade(ctx context.Context, d Demand) (TradeResult, error) {
	var out TradeResult
	return out, c.do(ctx, http.MethodPost, "/v1/trades", d, &out)
}

// Trades returns the default market's executed-transaction ledger.
func (c *Client) Trades(ctx context.Context) ([]TradeResult, error) {
	var out []TradeResult
	return out, c.do(ctx, http.MethodGet, "/v1/trades", nil, &out)
}

// Weights returns the default market's broker dataset weights.
func (c *Client) Weights(ctx context.Context) ([]float64, error) {
	var out []float64
	return out, c.do(ctx, http.MethodGet, "/v1/weights", nil, &out)
}

// Metrics returns the server's observability snapshot: per-endpoint
// request counts, error counts, in-flight gauges and latency quantiles.
func (c *Client) Metrics(ctx context.Context) (obs.Snapshot, error) {
	var out obs.Snapshot
	return out, c.do(ctx, http.MethodGet, "/v1/metrics", nil, &out)
}

// --- v2 market lifecycle ---

// CreateMarket creates a named market on the server.
func (c *Client) CreateMarket(ctx context.Context, spec MarketSpec) (MarketInfo, error) {
	var out MarketInfo
	return out, c.do(ctx, http.MethodPost, "/v2/markets", spec, &out)
}

// Markets lists every market hosted by the server.
func (c *Client) Markets(ctx context.Context) ([]MarketInfo, error) {
	var out []MarketInfo
	return out, c.do(ctx, http.MethodGet, "/v2/markets", nil, &out)
}

// Market fetches one market's state.
func (c *Client) Market(ctx context.Context, id string) (MarketInfo, error) {
	var out MarketInfo
	return out, c.do(ctx, http.MethodGet, c.marketPath(id, ""), nil, &out)
}

// DeleteMarket drains and deletes a market. The server's default market
// cannot be deleted (it backs the /v1 aliases).
func (c *Client) DeleteMarket(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, c.marketPath(id, ""), nil, nil)
}

// --- v2 per-market operations ---

// RegisterSellerIn registers a seller in the named market.
func (c *Client) RegisterSellerIn(ctx context.Context, marketID string, reg SellerRegistration) (SellerInfo, error) {
	var out SellerInfo
	return out, c.do(ctx, http.MethodPost, c.marketPath(marketID, "/sellers"), reg, &out)
}

// RemoveSellerIn releases a seller from the named market's roster. Before
// the market's first trade the seller is simply unregistered; mid-life the
// market applies the incremental leave (the last seller cannot be removed).
func (c *Client) RemoveSellerIn(ctx context.Context, marketID, sellerID string) error {
	return c.do(ctx, http.MethodDelete, c.marketPath(marketID, "/sellers/"+url.PathEscape(sellerID)), nil, nil)
}

// Watch subscribes to the named market's live SSE stream, invoking fn for
// every event — the initial "state" snapshot, then "roster" and "weights"
// deltas — until ctx is canceled, the server closes the stream, or fn
// returns a non-nil error (which Watch returns verbatim). A canceled ctx
// returns ctx.Err(); a server-side close returns nil.
func (c *Client) Watch(ctx context.Context, marketID string, fn func(StreamEvent) error) error {
	path := c.marketPath(marketID, "/stream")
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return fmt.Errorf("httpapi: building request: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	// The stream is deliberately long-lived: strip the client's request
	// timeout (sized for unary calls) while keeping its transport.
	hc := *c.http
	hc.Timeout = 0
	resp, err := hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("httpapi: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return statusError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data bytes.Buffer
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "": // frame boundary: dispatch accumulated data
			if data.Len() == 0 {
				continue // heartbeat comment frame
			}
			var ev StreamEvent
			if err := json.Unmarshal(data.Bytes(), &ev); err != nil {
				return fmt.Errorf("httpapi: decoding stream event: %w", err)
			}
			data.Reset()
			if err := fn(ev); err != nil {
				return err
			}
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
			// "event:" lines duplicate the payload's type field and ":"
			// lines are heartbeats — both fall through untouched.
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("httpapi: reading stream: %w", err)
	}
	return nil
}

// SellerIn fetches one seller's state in the named market: weight, roster
// epoch and, on budgeted markets, the ε budget, spend and last similarity
// discount. Unknown sellers answer 404 seller_not_found.
func (c *Client) SellerIn(ctx context.Context, marketID, sellerID string) (SellerInfo, error) {
	var out SellerInfo
	return out, c.do(ctx, http.MethodGet, c.marketPath(marketID, "/sellers/"+url.PathEscape(sellerID)), nil, &out)
}

// TopUpBudgetIn raises a seller's privacy budget in the named market by add
// (ε) and returns the refreshed seller resource. Markets without a budget
// answer a field-level 400; unknown sellers 404 seller_not_found.
func (c *Client) TopUpBudgetIn(ctx context.Context, marketID, sellerID string, add float64) (SellerInfo, error) {
	var out SellerInfo
	path := c.marketPath(marketID, "/sellers/"+url.PathEscape(sellerID)+"/budget")
	return out, c.do(ctx, http.MethodPost, path, TopUpRequest{Add: add}, &out)
}

// SellersIn lists a page of the named market's sellers.
func (c *Client) SellersIn(ctx context.Context, marketID string, page Page) ([]SellerInfo, error) {
	var out []SellerInfo
	return out, c.do(ctx, http.MethodGet, c.marketPath(marketID, "/sellers")+page.query(), nil, &out)
}

// QuoteBatch solves a batch of demands concurrently against one consistent
// view of the named market. Results[i] answers demands[i]; the response is
// deterministic regardless of the server's worker count.
func (c *Client) QuoteBatch(ctx context.Context, marketID string, demands []Demand) ([]Quote, error) {
	var out QuoteBatchResult
	err := c.do(ctx, http.MethodPost, c.marketPath(marketID, "/quotes"), QuoteBatchRequest{Demands: demands}, &out)
	return out.Quotes, err
}

// QuoteIn solves one demand in the named market — a batch of one on the
// /v2 quotes endpoint.
func (c *Client) QuoteIn(ctx context.Context, marketID string, d Demand) (Quote, error) {
	qs, err := c.QuoteBatch(ctx, marketID, []Demand{d})
	if err != nil {
		return Quote{}, err
	}
	if len(qs) != 1 {
		return Quote{}, fmt.Errorf("httpapi: batch of one answered %d quotes", len(qs))
	}
	return qs[0], nil
}

// TradeIn executes one full trading round in the named market.
func (c *Client) TradeIn(ctx context.Context, marketID string, d Demand) (TradeResult, error) {
	var out TradeResult
	return out, c.do(ctx, http.MethodPost, c.marketPath(marketID, "/trades"), d, &out)
}

// TradesIn returns a page of the named market's ledger.
func (c *Client) TradesIn(ctx context.Context, marketID string, page Page) ([]TradeResult, error) {
	var out []TradeResult
	return out, c.do(ctx, http.MethodGet, c.marketPath(marketID, "/trades")+page.query(), nil, &out)
}

// WeightsIn returns the named market's broker dataset weights.
func (c *Client) WeightsIn(ctx context.Context, marketID string) ([]float64, error) {
	var out []float64
	return out, c.do(ctx, http.MethodGet, c.marketPath(marketID, "/weights"), nil, &out)
}

func (c *Client) marketPath(id, suffix string) string {
	return "/v2/markets/" + url.PathEscape(id) + suffix
}

// StatusError is returned for non-2xx responses, carrying the HTTP status
// and the server's decoded error envelope.
type StatusError struct {
	// Code is the HTTP status code.
	Code int
	// APICode is the server's stable machine-readable error code (one of
	// the httpapi.Code* constants), "" when the body was not the standard
	// envelope.
	APICode string
	// Field names the request field at fault for validation failures.
	Field string
	// Message is the server's human-readable description; for non-envelope
	// bodies it falls back to the raw body or the HTTP status text.
	Message string
	// RetryAfter is the server's backoff hint on 429/503 responses, parsed
	// from the Retry-After header (delta-seconds or HTTP-date form) with
	// the envelope's retry_after_seconds as fallback; 0 when the server
	// sent none. Retry honors it over its own exponential schedule.
	RetryAfter time.Duration
}

// Temporary reports whether the failure is worth retrying: 429 (the market
// queue was full) and 503 (draining or a dropped round). Everything else —
// validation, conflicts, timeouts the server already waited out — is not.
func (e *StatusError) Temporary() bool {
	return e.Code == http.StatusTooManyRequests || e.Code == http.StatusServiceUnavailable
}

// Error implements error.
func (e *StatusError) Error() string {
	switch {
	case e.APICode != "" && e.Field != "":
		return fmt.Sprintf("httpapi: server returned %d (%s, field %q): %s", e.Code, e.APICode, e.Field, e.Message)
	case e.APICode != "":
		return fmt.Sprintf("httpapi: server returned %d (%s): %s", e.Code, e.APICode, e.Message)
	default:
		return fmt.Sprintf("httpapi: server returned %d: %s", e.Code, e.Message)
	}
}

// statusError decodes a non-2xx response body into a StatusError: the
// unified envelope when present, the raw body as a fallback so no error
// detail is ever silently dropped.
func statusError(resp *http.Response) *StatusError {
	se := &StatusError{Code: resp.StatusCode, Message: resp.Status}
	se.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || len(bytes.TrimSpace(raw)) == 0 {
		return se
	}
	var env errorEnvelope
	if err := json.Unmarshal(raw, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		se.APICode = env.Error.Code
		se.Field = env.Error.Field
		se.Message = env.Error.Message
		if se.RetryAfter == 0 && env.Error.RetryAfter > 0 {
			se.RetryAfter = time.Duration(env.Error.RetryAfter) * time.Second
		}
		return se
	}
	se.Message = string(bytes.TrimSpace(raw))
	return se
}

// parseRetryAfter decodes a Retry-After header value in either RFC 9110
// form — delta-seconds ("7") or an HTTP-date ("Wed, 21 Oct 2015 07:28:00
// GMT", relative to now). Unparseable or past values report 0.
func parseRetryAfter(v string, now time.Time) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// RetryPolicy bounds Retry's exponential backoff. The zero value selects
// the defaults noted per field.
type RetryPolicy struct {
	// Attempts is the total try budget including the first call (0 → 4).
	Attempts int
	// Base is the first backoff sleep, doubled after each retry (0 → 100ms).
	Base time.Duration
	// Max caps every individual sleep, including server Retry-After hints
	// (0 → 5s).
	Max time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 4
	}
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	return p
}

// Retry runs fn with bounded exponential backoff until it succeeds, fails
// terminally, or the attempt budget is spent. Only temporary StatusErrors
// — 429 overloaded and 503 draining/canceled — are retried; each sleep is
// the longer of the exponential schedule and the server's Retry-After
// hint, capped at the policy's Max.
//
// Retry is opt-in by design: the Client never retries on its own, and
// callers must not wrap non-idempotent calls like Trade or TradeIn — a
// request that died on the wire may still have committed server-side, and
// replaying it would execute a second round. Quotes, listings and metrics
// reads are safe.
func Retry(ctx context.Context, p RetryPolicy, fn func(ctx context.Context) error) error {
	p = p.withDefaults()
	delay := p.Base
	for attempt := 1; ; attempt++ {
		err := fn(ctx)
		if err == nil || attempt >= p.Attempts {
			return err
		}
		var se *StatusError
		if !errors.As(err, &se) || !se.Temporary() {
			return err
		}
		sleep := delay
		if se.RetryAfter > sleep {
			sleep = se.RetryAfter
		}
		if sleep > p.Max {
			sleep = p.Max
		}
		timer := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
		delay *= 2
	}
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("httpapi: encoding request: %w", err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("httpapi: building request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("httpapi: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return statusError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("httpapi: decoding %s %s response: %w", method, path, err)
	}
	return nil
}
