package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"share/internal/obs"
)

// Client is a typed Go client for a share-server instance. The zero value is
// not usable; construct with NewClient.
type Client struct {
	base string
	http *http.Client
}

// NewClient builds a client for the server at baseURL (e.g.
// "http://localhost:8080"). Pass nil to use a default http.Client with a
// five-minute timeout (Shapley-heavy trades can be slow).
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Minute}
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: hc}
}

// Health reports the server's liveness and market state.
func (c *Client) Health(ctx context.Context) (map[string]any, error) {
	var out map[string]any
	return out, c.do(ctx, http.MethodGet, "/v1/health", nil, &out)
}

// RegisterSeller registers a seller; the server rejects registrations after
// the first trade.
func (c *Client) RegisterSeller(ctx context.Context, reg SellerRegistration) (SellerInfo, error) {
	var out SellerInfo
	return out, c.do(ctx, http.MethodPost, "/v1/sellers", reg, &out)
}

// Sellers lists registered sellers with their current weights.
func (c *Client) Sellers(ctx context.Context) ([]SellerInfo, error) {
	var out []SellerInfo
	return out, c.do(ctx, http.MethodGet, "/v1/sellers", nil, &out)
}

// Quote solves the game for a demand without executing a trade.
func (c *Client) Quote(ctx context.Context, d Demand) (Quote, error) {
	var out Quote
	return out, c.do(ctx, http.MethodPost, "/v1/quote", d, &out)
}

// Trade executes one full trading round for the demand.
func (c *Client) Trade(ctx context.Context, d Demand) (TradeResult, error) {
	var out TradeResult
	return out, c.do(ctx, http.MethodPost, "/v1/trades", d, &out)
}

// Trades returns the executed-transaction ledger.
func (c *Client) Trades(ctx context.Context) ([]TradeResult, error) {
	var out []TradeResult
	return out, c.do(ctx, http.MethodGet, "/v1/trades", nil, &out)
}

// Weights returns the broker's current dataset weights.
func (c *Client) Weights(ctx context.Context) ([]float64, error) {
	var out []float64
	return out, c.do(ctx, http.MethodGet, "/v1/weights", nil, &out)
}

// Metrics returns the server's observability snapshot: per-endpoint
// request counts, error counts, in-flight gauges and latency quantiles.
func (c *Client) Metrics(ctx context.Context) (obs.Snapshot, error) {
	var out obs.Snapshot
	return out, c.do(ctx, http.MethodGet, "/v1/metrics", nil, &out)
}

// StatusError is returned for non-2xx responses, carrying the server's
// error message.
type StatusError struct {
	Code    int
	Message string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("httpapi: server returned %d: %s", e.Code, e.Message)
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("httpapi: encoding request: %w", err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("httpapi: building request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("httpapi: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var apiErr apiError
		msg := resp.Status
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return &StatusError{Code: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("httpapi: decoding %s %s response: %w", method, path, err)
	}
	return nil
}
