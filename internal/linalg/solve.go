package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite reports that Cholesky factorization failed because
// the matrix is not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// ErrSingular reports a (numerically) singular system.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// Cholesky computes the lower-triangular factor L with a = L·Lᵀ for a
// symmetric positive-definite matrix. Only the lower triangle of a is read.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	l := NewMatrix(a.Rows, a.Cols)
	if err := CholeskyInto(a, l); err != nil {
		return nil, err
	}
	return l, nil
}

// CholeskyInto factors a into the caller-provided matrix l, writing the
// lower-triangular factor in place. Only the lower triangles of a and l are
// touched, so l can be reused across calls without clearing. This is the
// allocation-free core of Cholesky for hot loops that refit many small
// systems (the Shapley valuation kernel solves O(m·permutations) of them per
// trade round).
func CholeskyInto(a, l *Matrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("linalg: Cholesky requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if l.Rows != a.Rows || l.Cols != a.Cols {
		return fmt.Errorf("linalg: CholeskyInto factor is %dx%d, want %dx%d", l.Rows, l.Cols, a.Rows, a.Cols)
	}
	n := a.Rows
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return ErrNotPositiveDefinite
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	return nil
}

// SolveLower solves L·x = b for lower-triangular L by forward substitution.
func SolveLower(l *Matrix, b []float64) ([]float64, error) {
	x := make([]float64, l.Rows)
	if err := SolveLowerInto(l, b, x); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveLowerInto solves L·x = b by forward substitution into the
// caller-provided x (which may not alias b).
func SolveLowerInto(l *Matrix, b, x []float64) error {
	n := l.Rows
	if len(b) != n || len(x) != n {
		return fmt.Errorf("linalg: SolveLower dimension mismatch: %d vs %d, %d", n, len(b), len(x))
	}
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		if row[i] == 0 {
			return ErrSingular
		}
		x[i] = s / row[i]
	}
	return nil
}

// SolveLowerTInto solves Lᵀ·x = b by back substitution into the
// caller-provided x, reading the lower-triangular factor directly — the
// allocation-free equivalent of SolveUpper(l.T(), b). x may not alias b.
func SolveLowerTInto(l *Matrix, b, x []float64) error {
	n := l.Rows
	if len(b) != n || len(x) != n {
		return fmt.Errorf("linalg: SolveLowerT dimension mismatch: %d vs %d, %d", n, len(b), len(x))
	}
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= l.At(j, i) * x[j]
		}
		d := l.At(i, i)
		if d == 0 {
			return ErrSingular
		}
		x[i] = s / d
	}
	return nil
}

// SolveUpper solves U·x = b for upper-triangular U by back substitution.
func SolveUpper(u *Matrix, b []float64) ([]float64, error) {
	n := u.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: SolveUpper dimension mismatch: %d vs %d", n, len(b))
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		row := u.Row(i)
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		if row[i] == 0 {
			return nil, ErrSingular
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// SolveSPD solves a·x = b for symmetric positive-definite a via Cholesky.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	y, err := SolveLower(l, b)
	if err != nil {
		return nil, err
	}
	x := make([]float64, l.Rows)
	if err := SolveLowerTInto(l, y, x); err != nil {
		return nil, err
	}
	return x, nil
}

// QR holds the compact Householder QR factorization of an m×n matrix with
// m >= n: R is the n×n upper-triangular factor and qtb applies Qᵀ to vectors.
type QR struct {
	v []float64 // stacked Householder vectors (m per column)
	r *Matrix   // n×n upper triangular
	m int
	n int
}

// QRFactor computes the Householder QR factorization of a (m×n, m >= n).
func QRFactor(a *Matrix) (*QR, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, fmt.Errorf("linalg: QRFactor requires rows >= cols, got %dx%d", m, n)
	}
	work := a.Clone()
	qr := &QR{v: make([]float64, m*n), m: m, n: n}
	for k := 0; k < n; k++ {
		// Build the Householder vector for column k.
		col := make([]float64, m-k)
		for i := k; i < m; i++ {
			col[i-k] = work.At(i, k)
		}
		alpha := Norm2(col)
		if col[0] > 0 {
			alpha = -alpha
		}
		if alpha == 0 {
			return nil, ErrSingular
		}
		v := qr.v[k*m : (k+1)*m]
		for i := range v {
			v[i] = 0
		}
		v[k] = col[0] - alpha
		for i := k + 1; i < m; i++ {
			v[i] = work.At(i, k)
		}
		vnorm := Norm2(v[k:])
		if vnorm == 0 {
			return nil, ErrSingular
		}
		for i := k; i < m; i++ {
			v[i] /= vnorm
		}
		// Apply H = I − 2vvᵀ to the trailing submatrix.
		for j := k; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i] * work.At(i, j)
			}
			dot *= 2
			for i := k; i < m; i++ {
				work.Set(i, j, work.At(i, j)-dot*v[i])
			}
		}
	}
	qr.r = NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			qr.r.Set(i, j, work.At(i, j))
		}
	}
	return qr, nil
}

// applyQT overwrites b with Qᵀ·b.
func (qr *QR) applyQT(b []float64) {
	for k := 0; k < qr.n; k++ {
		v := qr.v[k*qr.m : (k+1)*qr.m]
		var dot float64
		for i := k; i < qr.m; i++ {
			dot += v[i] * b[i]
		}
		dot *= 2
		for i := k; i < qr.m; i++ {
			b[i] -= dot * v[i]
		}
	}
}

// Solve returns the least-squares solution x minimizing ‖a·x − b‖₂ using the
// factorization.
func (qr *QR) Solve(b []float64) ([]float64, error) {
	if len(b) != qr.m {
		return nil, fmt.Errorf("linalg: QR solve dimension mismatch: %d vs %d", qr.m, len(b))
	}
	work := make([]float64, qr.m)
	copy(work, b)
	qr.applyQT(work)
	return SolveUpper(qr.r, work[:qr.n])
}

// LeastSquares solves min ‖a·x − b‖₂. It first tries the numerically stable
// QR path; if the design matrix is rank deficient it retries on the normal
// equations with a small Tikhonov ridge (damping 1e-10·trace/n) so callers
// always receive a usable solution on degenerate workloads.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != len(b) {
		return nil, fmt.Errorf("linalg: LeastSquares dimension mismatch: %d rows vs %d observations", a.Rows, len(b))
	}
	if qr, err := QRFactor(a); err == nil {
		if x, err := qr.Solve(b); err == nil {
			return x, nil
		}
	}
	// Rank-deficient fallback: damped normal equations.
	g := a.Gram()
	var trace float64
	for i := 0; i < g.Rows; i++ {
		trace += g.At(i, i)
	}
	ridge := 1e-10 * trace / float64(g.Rows)
	if ridge == 0 {
		ridge = 1e-12
	}
	for i := 0; i < g.Rows; i++ {
		g.Set(i, i, g.At(i, i)+ridge)
	}
	atb, err := a.T().MulVec(b)
	if err != nil {
		return nil, err
	}
	return SolveSPD(g, atb)
}
