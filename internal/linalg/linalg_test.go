package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFromRowsAndAccessors(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("dims = %dx%d, want 3x2", m.Rows, m.Cols)
	}
	if m.At(1, 0) != 3 || m.At(2, 1) != 6 {
		t.Error("At returned wrong elements")
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Error("Set did not stick")
	}
	if got := m.Row(1); got[0] != 3 || got[1] != 4 {
		t.Errorf("Row(1) = %v", got)
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("FromRows accepted ragged input")
	}
	if _, err := FromRows(nil); err == nil {
		t.Error("FromRows accepted nil input")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose dims = %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := Mul(a, b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := Mul(a, NewMatrix(3, 2)); err == nil {
		t.Error("Mul accepted mismatched dimensions")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	got, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", got)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Error("MulVec accepted wrong length")
	}
}

func TestGramMatchesExplicitProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(7, 4)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	g := a.Gram()
	explicit, err := Mul(a.T(), a)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	for i := range g.Data {
		if !almost(g.Data[i], explicit.Data[i], 1e-12) {
			t.Fatalf("Gram differs from AᵀA at flat index %d: %v vs %v", i, g.Data[i], explicit.Data[i])
		}
	}
}

func TestDotAndNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	if !almost(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Error("Norm2 wrong")
	}
	if Norm2(nil) != 0 {
		t.Error("Norm2 of empty should be 0")
	}
	// Overflow guard: naive sum of squares would overflow.
	if got := Norm2([]float64{1e200, 1e200}); math.IsInf(got, 0) {
		t.Error("Norm2 overflowed on large inputs")
	}
}

func TestCholeskySolveSPD(t *testing.T) {
	a, _ := FromRows([][]float64{
		{4, 2, 0},
		{2, 5, 1},
		{0, 1, 3},
	})
	x := []float64{1, -2, 3}
	b, _ := a.MulVec(x)
	got, err := SolveSPD(a, b)
	if err != nil {
		t.Fatalf("SolveSPD: %v", err)
	}
	for i := range x {
		if !almost(got[i], x[i], 1e-10) {
			t.Errorf("SolveSPD x[%d] = %v, want %v", i, got[i], x[i])
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Error("Cholesky accepted an indefinite matrix")
	}
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Error("Cholesky accepted a non-square matrix")
	}
}

func TestTriangularSolves(t *testing.T) {
	l, _ := FromRows([][]float64{{2, 0}, {1, 3}})
	x, err := SolveLower(l, []float64{4, 10})
	if err != nil {
		t.Fatalf("SolveLower: %v", err)
	}
	if !almost(x[0], 2, 1e-12) || !almost(x[1], 8.0/3, 1e-12) {
		t.Errorf("SolveLower = %v", x)
	}
	u, _ := FromRows([][]float64{{2, 1}, {0, 3}})
	x, err = SolveUpper(u, []float64{5, 6})
	if err != nil {
		t.Fatalf("SolveUpper: %v", err)
	}
	if !almost(x[1], 2, 1e-12) || !almost(x[0], 1.5, 1e-12) {
		t.Errorf("SolveUpper = %v", x)
	}
}

func TestQRSolveExact(t *testing.T) {
	a, _ := FromRows([][]float64{
		{1, 1},
		{1, 2},
		{1, 3},
	})
	// y = 2 + 3x exactly.
	b := []float64{5, 8, 11}
	qr, err := QRFactor(a)
	if err != nil {
		t.Fatalf("QRFactor: %v", err)
	}
	x, err := qr.Solve(b)
	if err != nil {
		t.Fatalf("QR solve: %v", err)
	}
	if !almost(x[0], 2, 1e-10) || !almost(x[1], 3, 1e-10) {
		t.Errorf("QR solution = %v, want [2 3]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Noisy linear data; LS must satisfy the normal equations Aᵀ(Ax−b)=0.
	rng := rand.New(rand.NewSource(7))
	n, k := 50, 3
	a := NewMatrix(n, k)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		row := a.Row(i)
		row[0] = 1
		row[1] = rng.Float64() * 10
		row[2] = rng.Float64() * 5
		b[i] = 2 + 0.5*row[1] - 1.5*row[2] + rng.NormFloat64()*0.1
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	ax, _ := a.MulVec(x)
	resid := make([]float64, n)
	for i := range resid {
		resid[i] = ax[i] - b[i]
	}
	grad, _ := a.T().MulVec(resid)
	for i, gi := range grad {
		if math.Abs(gi) > 1e-8 {
			t.Errorf("normal equations violated: grad[%d] = %v", i, gi)
		}
	}
}

func TestLeastSquaresRankDeficientFallback(t *testing.T) {
	// Duplicate column: rank deficient; the ridge fallback must still
	// return a finite solution that reproduces b.
	a, _ := FromRows([][]float64{
		{1, 1, 2},
		{1, 2, 4},
		{1, 3, 6},
		{1, 4, 8},
	})
	b := []float64{1, 2, 3, 4}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatalf("LeastSquares on rank-deficient design: %v", err)
	}
	ax, _ := a.MulVec(x)
	for i := range b {
		if !almost(ax[i], b[i], 1e-4) {
			t.Errorf("fallback fit: ax[%d] = %v, want %v", i, ax[i], b[i])
		}
	}
}

// Property: for random SPD systems, SolveSPD reproduces the known solution.
func TestSolveSPDProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		base := NewMatrix(n, n)
		for i := range base.Data {
			base.Data[i] = r.NormFloat64()
		}
		spd := base.Gram() // BᵀB is PSD; add ridge for strict PD
		for i := 0; i < n; i++ {
			spd.Set(i, i, spd.At(i, i)+float64(n))
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b, _ := spd.MulVec(x)
		got, err := SolveSPD(spd, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almost(got[i], x[i], 1e-8*(1+math.Abs(x[i]))) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: QR least-squares residuals are orthogonal to the column space.
func TestQROrthogonalResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 6 + r.Intn(20)
		k := 2 + r.Intn(4)
		a := NewMatrix(n, k)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return false
		}
		ax, _ := a.MulVec(x)
		for i := range ax {
			ax[i] -= b[i]
		}
		grad, _ := a.T().MulVec(ax)
		for _, gi := range grad {
			if math.Abs(gi) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Error(err)
	}
}
